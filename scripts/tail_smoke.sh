#!/bin/sh
# End-to-end crash-recovery smoke (make tail-smoke): a simulated feeder
# publishes a ~60-day collector window one day at a time while a live
# tail ingests it with durable checkpoints; mid-run the tailer is killed
# with SIGKILL (no chance to clean up), then restarted with
# -verify-batch, which requires the resumed tail to finish the window
# and produce a snapshot byte-identical to a one-shot batch build.
set -eu
cd "$(dirname "$0")/.."

# The window must span more than ~41 days (worldsim plants its large
# leaks inside Intn(days-40)); 2006-06-01..2006-07-31 is 61 days.
START=2006-06-01
END=2006-07-31
SCALE=0.01

dir="$(mktemp -d)"
feed_pid=""
cleanup() {
    [ -n "$feed_pid" ] && kill "$feed_pid" 2>/dev/null || true
    rm -rf "$dir"
}
trap cleanup EXIT

echo "== build asnwatch"
go build -o "$dir/asnwatch" ./cmd/asnwatch

common="-scale $SCALE -start $START -end $END"

echo "== start the simulated feed (one day per 50ms)"
"$dir/asnwatch" -sim-feed -tail-dir "$dir/days" $common \
    -feed-interval 50ms >"$dir/feed.log" 2>&1 &
feed_pid=$!

echo "== start the tail, then kill -9 it mid-window"
"$dir/asnwatch" -tail -tail-dir "$dir/days" -checkpoint "$dir/ckpt" $common \
    -snapshot-every 10 >"$dir/tail1.log" 2>&1 &
tail_pid=$!
sleep 2
kill -9 "$tail_pid" 2>/dev/null || true
wait "$tail_pid" 2>/dev/null || true
echo "   killed tailer after 2s; last checkpointed position survives in $dir/ckpt"

echo "== wait for the feed to finish publishing the window"
wait "$feed_pid"
feed_pid=""

echo "== restart the tail from its checkpoint with -verify-batch"
"$dir/asnwatch" -tail -tail-dir "$dir/days" -checkpoint "$dir/ckpt" $common \
    -snapshot-every 10 -verify-batch 2>&1 | tee "$dir/tail2.log"

grep -q "resuming from checkpoint" "$dir/tail2.log" || {
    echo "tail-smoke: FAIL (restart did not resume from the checkpoint)"
    exit 1
}
grep -q "verify-batch OK" "$dir/tail2.log" || {
    echo "tail-smoke: FAIL (no byte-identical batch verification)"
    exit 1
}
echo "tail-smoke: OK (kill -9 + restart converged to the batch-identical snapshot)"
