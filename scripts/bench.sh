#!/bin/sh
# Benchmark harness: runs the Pipeline/Lifestore/Serve benchmarks with
# -benchmem and distills the output into BENCH_pipeline.json (benchmark
# name -> ns/op, B/op, allocs/op; best of the repeated counts), so the
# perf trajectory is machine-readable PR over PR. The sequential vs
# -workers=N pipeline.Run comparison lands here as the
# BenchmarkPipelineRun/workers=* rows.
#
# Knobs (for CI smoke): BENCH_COUNT (default 3) and BENCH_TIME (go test
# -benchtime; empty = the go default).
set -eu
cd "$(dirname "$0")/.."

COUNT="${BENCH_COUNT:-3}"
BENCHTIME="${BENCH_TIME:-}"
OUT="BENCH_pipeline.json"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "== go test -bench 'Pipeline|Lifestore|Serve' -benchmem -count $COUNT ${BENCHTIME:+-benchtime $BENCHTIME}"
if [ -n "$BENCHTIME" ]; then
    go test -run '^$' -bench 'Pipeline|Lifestore|Serve' -benchmem \
        -count "$COUNT" -benchtime "$BENCHTIME" ./... | tee "$tmp"
else
    go test -run '^$' -bench 'Pipeline|Lifestore|Serve' -benchmem \
        -count "$COUNT" ./... | tee "$tmp"
fi

awk '
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i-1)
        else if ($i == "B/op") bytes = $(i-1)
        else if ($i == "allocs/op") allocs = $(i-1)
    }
    if (ns == "") next
    if (!(name in best)) order[++n] = name
    if (!(name in best) || ns + 0 < best[name] + 0) {
        best[name] = ns; bop[name] = bytes; aop[name] = allocs
    }
}
END {
    printf "{\n"
    for (i = 1; i <= n; i++) {
        name = order[i]
        b = bop[name]; if (b == "") b = "null"
        a = aop[name]; if (a == "") a = "null"
        printf "  \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
            name, best[name], b, a, (i < n ? "," : "")
    }
    printf "}\n"
}' "$tmp" > "$OUT"

echo "bench: wrote $OUT"
