#!/bin/sh
# Benchmark harness: runs the Pipeline/Lifestore/Serve benchmarks with
# -benchmem and distills the output into BENCH_pipeline.json (benchmark
# name -> ns/op, B/op, allocs/op; best of the repeated counts), so the
# perf trajectory is machine-readable PR over PR. The sequential vs
# -workers=N pipeline.Run comparison lands here as the
# BenchmarkPipelineRun/workers=* rows.
#
# Alongside the rows it also writes:
#   - BENCH_delta.txt: per-benchmark ns/op and allocs/op % change vs the
#     committed (HEAD) BENCH_pipeline.json, so a perf regression is one
#     diff line in the PR rather than two JSON blobs to eyeball;
#   - BENCH_profiles/{cpu,heap,allocs}.pprof: pprof captures of a small
#     profiled pipeline run (cmd/parallellives -profile-out), committed
#     so `go tool pprof` can diff memory shape PR over PR.
#
# Knobs (for CI smoke): BENCH_COUNT (default 3) and BENCH_TIME (go test
# -benchtime; empty = the go default).
set -eu
cd "$(dirname "$0")/.."

COUNT="${BENCH_COUNT:-3}"
BENCHTIME="${BENCH_TIME:-}"
OUT="BENCH_pipeline.json"
DELTA="BENCH_delta.txt"
PROFDIR="BENCH_profiles"

tmp="$(mktemp)"
prev="$(mktemp)"
trap 'rm -f "$tmp" "$prev"' EXIT

# The baseline is what's committed, not what's on disk: a rerun after an
# uncommitted bench still compares against the last recorded trajectory.
have_prev=0
if git show "HEAD:$OUT" > "$prev" 2>/dev/null; then
    have_prev=1
fi

# BENCH_TIME caps only the root-package pipeline runs (seconds per
# iteration); the micro-benchmarks in internal/ always run at the go
# default benchtime — at -benchtime 1x their single iteration would be
# all first-request setup cost, which would trip the allocs/op gate on
# numbers that mean nothing.
echo "== go test -bench 'Pipeline|Lifestore|Serve' -benchmem -count $COUNT ${BENCHTIME:+-benchtime $BENCHTIME (root pkg only)}"
if [ -n "$BENCHTIME" ]; then
    go test -run '^$' -bench 'Pipeline|Lifestore|Serve' -benchmem \
        -count "$COUNT" -benchtime "$BENCHTIME" . | tee "$tmp"
else
    go test -run '^$' -bench 'Pipeline|Lifestore|Serve' -benchmem \
        -count "$COUNT" . | tee "$tmp"
fi
go test -run '^$' -bench 'Pipeline|Lifestore|Serve' -benchmem \
    -count "$COUNT" ./internal/... | tee -a "$tmp"

# distill_rows: go test -bench output on stdin -> one JSON row per
# benchmark (best ns/op of the repeated counts) on stdout.
distill_rows() {
    awk '
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i-1)
        else if ($i == "B/op") bytes = $(i-1)
        else if ($i == "allocs/op") allocs = $(i-1)
    }
    if (ns == "") next
    if (!(name in best)) order[++n] = name
    if (!(name in best) || ns + 0 < best[name] + 0) {
        best[name] = ns; bop[name] = bytes; aop[name] = allocs
    }
}
END {
    printf "{\n"
    for (i = 1; i <= n; i++) {
        name = order[i]
        b = bop[name]; if (b == "") b = "null"
        a = aop[name]; if (a == "") a = "null"
        printf "  \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
            name, best[name], b, a, (i < n ? "," : "")
    }
    printf "}\n"
}'
}

distill_rows < "$tmp" > "$OUT"

echo "bench: wrote $OUT"

if [ "$have_prev" = 1 ]; then
    awk '
    # Both files are one benchmark per line:
    #   "name": {"ns_per_op": N, "bytes_per_op": N, "allocs_per_op": N},
    /ns_per_op/ {
        split($0, q, "\""); name = q[2]
        ns = $0; sub(/.*"ns_per_op": /, "", ns); sub(/,.*/, "", ns)
        al = $0; sub(/.*"allocs_per_op": /, "", al); sub(/[},].*/, "", al)
        if (FNR == NR) { pns[name] = ns; pal[name] = al; next }
        if (!(name in pns)) {
            printf "BENCH_delta %s new benchmark (%s ns/op, %s allocs/op)\n", name, ns, al
            next
        }
        nd = (pns[name] + 0 > 0) ? (ns - pns[name]) * 100.0 / pns[name] : 0
        ad = (al == "null" || pal[name] == "null") ? "n/a" : \
            sprintf("%+.1f%%", (pal[name] + 0 > 0) ? (al - pal[name]) * 100.0 / pal[name] : 0)
        printf "BENCH_delta %s ns/op %s -> %s (%+.1f%%) allocs/op %s -> %s (%s)\n", \
            name, pns[name], ns, nd, pal[name], al, ad
    }' "$prev" "$OUT" > "$DELTA"
    cat "$DELTA"
    echo "bench: wrote $DELTA (vs committed $OUT)"

    # Allocation regression gate: allocs/op is deterministic enough to
    # gate on (unlike ns/op on a noisy box). Any benchmark whose
    # allocs/op grew more than 5% over the committed rows fails the run;
    # BENCH_ALLOW_REGRESS=1 records the new rows anyway, for PRs that
    # knowingly trade allocations for something else.
    bad="$(awk '
    /ns_per_op/ {
        split($0, q, "\""); name = q[2]
        al = $0; sub(/.*"allocs_per_op": /, "", al); sub(/[},].*/, "", al)
        if (FNR == NR) { pal[name] = al; next }
        if (!(name in pal) || al == "null" || pal[name] == "null") next
        if (pal[name] + 0 > 0 && (al - pal[name]) * 100.0 / pal[name] > 5)
            printf "  %s allocs/op %s -> %s (%+.1f%%)\n", \
                name, pal[name], al, (al - pal[name]) * 100.0 / pal[name]
    }' "$prev" "$OUT")"
    if [ -n "$bad" ]; then
        if [ "${BENCH_ALLOW_REGRESS:-0}" = 1 ]; then
            echo "bench: allocs/op regression >5% ALLOWED (BENCH_ALLOW_REGRESS=1):"
            echo "$bad"
        else
            echo "bench: FAIL — allocs/op regression >5% vs committed $OUT:"
            echo "$bad"
            echo "bench: rerun with BENCH_ALLOW_REGRESS=1 to record anyway"
            exit 1
        fi
    fi
else
    echo "BENCH_delta no committed $OUT to compare against" > "$DELTA"
    echo "bench: no committed $OUT; skipped delta"
fi

echo "== profiled pipeline run -> $PROFDIR"
go run ./cmd/parallellives -scale 0.01 -start 2004-01-01 -end 2007-01-01 \
    -experiments "" -profile-out "$PROFDIR" >/dev/null
echo "bench: wrote $PROFDIR/{cpu,heap,allocs}.pprof"

# --- Scale ladder --------------------------------------------------------
# BenchmarkScaleLadder grows the pipeline toward the paper's 106,873
# ASNs x 6,354 days: rung=3k and rung=30k run the full window,
# rung=106873 runs paper-scale ASNs over a reduced window. One iteration
# per rung x worker count, distilled into BENCH_scale.json, so both
# regressions and the remaining paper-scale gap stay visible PR over PR.
# Knobs: BENCH_SKIP_SCALE=1 skips the ladder entirely;
# BENCH_SCALE_SHORT=1 (CI smoke) runs only the reduced 3k rung to prove
# the harness still works, without overwriting the committed ladder.
SCALE_OUT="BENCH_scale.json"
if [ "${BENCH_SKIP_SCALE:-0}" = 1 ]; then
    echo "bench: BENCH_SKIP_SCALE=1; skipped scale ladder"
elif [ "${BENCH_SCALE_SHORT:-0}" = 1 ]; then
    echo "== go test -bench ScaleLadder -short (smoke: reduced 3k rung only)"
    go test -run '^$' -bench 'ScaleLadder' -benchmem -count 1 -benchtime 1x -short -timeout 1h . | tee "$tmp"
    rows="$(distill_rows < "$tmp" | grep -c ns_per_op || true)"
    if [ "$rows" -lt 1 ]; then
        echo "bench: FAIL — scale ladder smoke produced no rows"
        exit 1
    fi
    echo "bench: scale ladder smoke OK ($rows row(s)); committed $SCALE_OUT untouched"
else
    echo "== go test -bench ScaleLadder -benchmem -count 1 -benchtime 1x"
    go test -run '^$' -bench 'ScaleLadder' -benchmem -count 1 -benchtime 1x -timeout 6h . | tee "$tmp"
    distill_rows < "$tmp" > "$SCALE_OUT"
    echo "bench: wrote $SCALE_OUT"
fi
