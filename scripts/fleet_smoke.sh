#!/bin/sh
# Fleet-observability smoke: build a small snapshot, cut it 2 ways,
# serve the shards behind asnroute with a fast federation scrape, and
# prove the cross-process story end to end — one traced request must
# come back with a span tree stitched across router and shard, the
# router's /metrics must grow the parallellives_fleet_* rollup for both
# shards, /v1/debug/slow must aggregate both shards' exemplar rings, and
# the asnstat dashboard must render a row per shard from one scrape.
set -eu
cd "$(dirname "$0")/.."

PORT="${FLEET_SMOKE_PORT:-19180}"
work="$(mktemp -d)"
pids=""
cleanup() {
    # shellcheck disable=SC2086
    [ -n "$pids" ] && kill $pids 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$work" ./cmd/asnserve ./cmd/asnroute ./cmd/asnshard ./cmd/asnstat ./cmd/parallellives

echo "== snapshot + 2-way cut"
"$work/parallellives" -scale 0.01 -start 2004-01-01 -end 2007-01-01 \
    -experiments "" -snapshot-out "$work/lives.snap" >/dev/null 2>&1
"$work/asnshard" -snapshot "$work/lives.snap" -shards 2 -out "$work/lives.%d.snap" -verify 2>&1 | tail -1

wait_ready() { # url
    _tries=0
    while ! curl -sf -o /dev/null "$1/readyz"; do
        _tries=$((_tries + 1))
        [ "$_tries" -gt 100 ] && { echo "fleet-smoke: $1 never became ready" >&2; exit 1; }
        sleep 0.1
    done
}

echo "== start 2 shards + router (scrape every 300ms)"
shard_urls=""
n=0
while [ "$n" -lt 2 ]; do
    "$work/asnserve" -listen "127.0.0.1:$((PORT + 1 + n))" \
        -snapshot "$work/lives.$n.snap" -mmap >/dev/null 2>&1 &
    pids="$pids $!"
    shard_urls="$shard_urls${shard_urls:+,}http://127.0.0.1:$((PORT + 1 + n))"
    n=$((n + 1))
done
n=0
while [ "$n" -lt 2 ]; do
    wait_ready "http://127.0.0.1:$((PORT + 1 + n))"
    n=$((n + 1))
done
"$work/asnroute" -listen "127.0.0.1:$PORT" -shards "$shard_urls" \
    -scrape-interval 300ms >/dev/null 2>&1 &
pids="$pids $!"
R="http://127.0.0.1:$PORT"
wait_ready "$R"

echo "== stitched trace"
# A scatter endpoint so the trace fans out; the traceparent opts in.
tp="00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
span="$(curl -sf -D - -o /dev/null -H "traceparent: $tp" "$R/v1/taxonomy" \
    | tr -d '\r' | awk -F': ' 'tolower($1) == "x-parallellives-span" {print $2}')"
[ -n "$span" ] || { echo "fleet-smoke: traced request returned no X-Parallellives-Span header" >&2; exit 1; }
echo "$span" | jq -e '.traceId == "4bf92f3577b34da6a3ce929d0e0e4736"' >/dev/null \
    || { echo "fleet-smoke: router span does not join the caller trace: $span" >&2; exit 1; }
stitched="$(echo "$span" | jq '[.children[]? | select(.name | startswith("shard[")) | .children[]? | select(.name | startswith("serve "))] | length')"
[ "$stitched" = 2 ] || { echo "fleet-smoke: want 2 stitched shard-side serve spans, got $stitched: $span" >&2; exit 1; }
echo "   trace joined, $stitched shard-side spans stitched in"

# An untraced request must stay clean of the span header.
plain="$(curl -sf -D - -o /dev/null "$R/v1/taxonomy" | grep -ic x-parallellives-span || true)"
[ "$plain" = 0 ] || { echo "fleet-smoke: untraced request leaked a span header" >&2; exit 1; }

echo "== federated metrics"
_tries=0
while :; do
    up="$(curl -sf "$R/metrics" | grep -c '^parallellives_fleet_shard_up{[^}]*} 1$' || true)"
    [ "$up" = 2 ] && break
    _tries=$((_tries + 1))
    [ "$_tries" -gt 50 ] && { echo "fleet-smoke: fleet rollup never saw both shards up" >&2; exit 1; }
    sleep 0.1
done
metrics="$(curl -sf "$R/metrics")"
echo "$metrics" | grep -q '^parallellives_fleet_shards 2$' \
    || { echo "fleet-smoke: parallellives_fleet_shards != 2" >&2; exit 1; }
echo "$metrics" | grep -q '^parallellives_fleet_generation_skew 0$' \
    || { echo "fleet-smoke: generation skew != 0 on a fresh fleet" >&2; exit 1; }
echo "$metrics" | grep -q '^parallellives_fleet_requests{shard="0",replica="0"}' \
    || { echo "fleet-smoke: no per-replica request rollup" >&2; exit 1; }
echo "   both shards up, skew 0, per-replica rollup present"

echo "== slow-request exemplars"
curl -sf "$R/v1/debug/slow" | jq -e \
    '(.router.seen >= 1) and (.shards | length == 2) and ([.shards[] | select(.error == null or .error == "")] | length == 2)' >/dev/null \
    || { echo "fleet-smoke: /v1/debug/slow aggregation failed: $(curl -s "$R/v1/debug/slow")" >&2; exit 1; }
echo "   router + both shard rings aggregated"

echo "== asnstat dashboard"
stat="$("$work/asnstat" -url "$R")"
echo "$stat" | sed 's/^/   /'
rows="$(echo "$stat" | awk '$1 == "0" || $1 == "1"' | grep -c closed)"
[ "$rows" = 2 ] || { echo "fleet-smoke: asnstat rendered $rows shard rows, want 2" >&2; exit 1; }

echo "fleet-smoke: OK (stitched trace + federated metrics + exemplars + dashboard)"
