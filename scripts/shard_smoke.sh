#!/bin/sh
# Sharded-tier smoke: build a small snapshot, cut it 4 ways, serve the
# shards behind asnroute, and prove the degradation story end to end —
# kill one shard process, watch its range fail fast (503 + Retry-After)
# while every other range and the aggregates (with the partial header)
# keep answering, then restart it and watch the breaker close again.
set -eu
cd "$(dirname "$0")/.."

PORT="${SHARD_SMOKE_PORT:-19080}"
work="$(mktemp -d)"
pids=""
cleanup() {
    # shellcheck disable=SC2086
    [ -n "$pids" ] && kill $pids 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$work" ./cmd/asnserve ./cmd/asnroute ./cmd/asnshard ./cmd/parallellives

echo "== snapshot + 4-way cut"
"$work/parallellives" -scale 0.01 -start 2004-01-01 -end 2007-01-01 \
    -experiments "" -snapshot-out "$work/lives.snap" >/dev/null 2>&1
"$work/asnshard" -snapshot "$work/lives.snap" -shards 4 -out "$work/lives.%d.snap" -verify 2>&1 | tail -1

wait_ready() { # url
    _tries=0
    while ! curl -sf -o /dev/null "$1/readyz"; do
        _tries=$((_tries + 1))
        [ "$_tries" -gt 100 ] && { echo "shard-smoke: $1 never became ready" >&2; exit 1; }
        sleep 0.1
    done
}

start_shard() { # index -> echoes pid
    "$work/asnserve" -listen "127.0.0.1:$((PORT + 1 + $1))" \
        -snapshot "$work/lives.$1.snap" -mmap >/dev/null 2>&1 &
    echo $!
}

echo "== start 4 shards + router"
shard_urls=""
n=0
while [ "$n" -lt 4 ]; do
    pid="$(start_shard "$n")"
    pids="$pids $pid"
    [ "$n" = 3 ] && victim_pid="$pid"
    shard_urls="$shard_urls${shard_urls:+,}http://127.0.0.1:$((PORT + 1 + n))"
    n=$((n + 1))
done
n=0
while [ "$n" -lt 4 ]; do
    wait_ready "http://127.0.0.1:$((PORT + 1 + n))"
    n=$((n + 1))
done
# Cache disabled: a cached aggregate revalidates against its winner
# shard only, so it would (correctly) keep serving the complete cached
# body while shard 3 is down — this smoke wants the live scatter path
# and its partial header instead.
"$work/asnroute" -listen "127.0.0.1:$PORT" -shards "$shard_urls" -cache -1 \
    -breaker-threshold 2 -breaker-cooldown 500ms -probe-interval 300ms >/dev/null 2>&1 &
pids="$pids $!"
R="http://127.0.0.1:$PORT"
wait_ready "$R"

# An ASN owned by the last shard: its range starts at the shard's lo.
victim_lo="$(curl -sf "$R/v1/shards" | jq '.shards[3].lo')"
live_asn="$(curl -sf "$R/v1/shards" | jq '.shards[0].hi')" # any shard-0 ASN; a 404 is fine, it must just answer

expect() { # label want_code url
    got="$(curl -s -o /dev/null -w '%{http_code}' "$3")"
    [ "$got" = "$2" ] || { echo "shard-smoke: $1: got $got, want $2 ($3)" >&2; exit 1; }
    echo "   $1: $got"
}

echo "== healthy tier"
expect "taxonomy" 200 "$R/v1/taxonomy"
expect "victim-range ASN" "$(curl -s -o /dev/null -w '%{http_code}' "$R/v1/asn/$victim_lo")" "$R/v1/asn/$victim_lo"

echo "== kill shard 3 (pid $victim_pid)"
kill -9 "$victim_pid"
# Trip the breaker: threshold 2, so two failing requests open it.
curl -s -o /dev/null "$R/v1/asn/$victim_lo"
curl -s -o /dev/null "$R/v1/asn/$victim_lo"
expect "dead range fails fast" 503 "$R/v1/asn/$victim_lo"
ra="$(curl -s -o /dev/null -w '%{header{retry-after}}' "$R/v1/asn/$victim_lo" 2>/dev/null || true)"
[ -n "$ra" ] || echo "   (no Retry-After readable from this curl; skipping header check)"
expect "other ranges keep serving" "$(curl -s -o /dev/null -w '%{http_code}' "$R/v1/asn/$live_asn")" "$R/v1/asn/$live_asn"
expect "aggregates stay up (partial)" 200 "$R/v1/taxonomy"
partial="$(curl -s -D - -o /dev/null "$R/v1/taxonomy" | grep -i x-parallellives-partial | tr -d '\r' | awk '{print $2}')"
[ "$partial" = "3" ] || { echo "shard-smoke: partial header = '$partial', want 3" >&2; exit 1; }
echo "   partial header: $partial"

echo "== restart shard 3"
pid="$(start_shard 3)"
pids="$pids $pid"
wait_ready "http://127.0.0.1:$((PORT + 4))"
# Cooldown 500ms + probe every 300ms: the breaker half-opens and the
# probe's identity fetch closes it without burning a client request.
_tries=0
while :; do
    code="$(curl -s -o /dev/null -w '%{http_code}' "$R/v1/asn/$victim_lo")"
    [ "$code" != 503 ] && break
    _tries=$((_tries + 1))
    [ "$_tries" -gt 50 ] && { echo "shard-smoke: shard 3 never recovered" >&2; exit 1; }
    sleep 0.1
done
expect "recovered range" "$code" "$R/v1/asn/$victim_lo"
partial="$(curl -s -D - -o /dev/null "$R/v1/taxonomy" | grep -ic x-parallellives-partial || true)"
[ "$partial" = "0" ] || { echo "shard-smoke: partial header still present after recovery" >&2; exit 1; }
echo "   partial header gone"

echo "shard-smoke: OK (degraded-then-recovered)"
