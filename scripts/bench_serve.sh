#!/bin/sh
# Serving-tier benchmark: single-process asnserve vs the 4-shard tier,
# measured with the open-loop asnload generator, distilled into
# BENCH_serve.json.
#
# Methodology (also recorded in the output):
#   - capacity rows drive the target far above saturation (open loop);
#     achieved_rps is then the target's capacity. Latency percentiles in
#     capacity rows include queueing by design and are not the latency
#     claim.
#   - nominal rows drive a fixed moderate rate; their p50/p99/p999 are
#     the latency claim.
#   - per-shard rows drive each shard process directly and in isolation
#     over the ASN range it owns. The fleet row sums those capacities:
#     shard processes are deployed one per node, so the sum is the
#     tier's aggregate throughput, measured per-process on this host to
#     keep the processes from contending for the bench machine's CPU.
#     The router rows measure the in-line front on the same single host
#     (router + 4 shards + the generator all sharing it), which bounds
#     the tier's correctness overhead rather than its scale.
#   - the overload rows drive the router past saturation and with a
#     shard killed, proving sheds (503 + Retry-After) and breaker
#     fast-fails keep the error taxonomy clean and latency bounded.
#
# Knobs: BENCH_SNAPSHOT (reuse an existing snapshot file),
# BENCH_SCALE (default 0.05), BENCH_DURATION (15s), BENCH_NOMINAL
# (2000 rps), BENCH_OVERDRIVE (12000 rps), BENCH_CACHE (256),
# BENCH_SMOKE=1 (tiny rates/durations, temp output, no acceptance
# gate — for CI).
set -eu
cd "$(dirname "$0")/.."

SCALE="${BENCH_SCALE:-0.05}"
DURATION="${BENCH_DURATION:-15s}"
NOMINAL="${BENCH_NOMINAL:-2000}"
OVERDRIVE="${BENCH_OVERDRIVE:-12000}"
CACHE="${BENCH_CACHE:-256}"
SHARDS=4
MIX="asn=70,series=20,taxonomy=8,stages=2"
STRIDES="7,30,90"
WORKING=2000
PORT=18080
OUT="BENCH_serve.json"

if [ "${BENCH_SMOKE:-0}" = "1" ]; then
    SCALE=0.01
    DURATION=2s
    NOMINAL=300
    OVERDRIVE=2000
    WORKING=200
    OUT="${TMPDIR:-/tmp}/BENCH_serve.smoke.json"
fi

work="$(mktemp -d)"
pids=""
cleanup() {
    # shellcheck disable=SC2086
    [ -n "$pids" ] && kill $pids 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$work" ./cmd/asnserve ./cmd/asnroute ./cmd/asnshard ./cmd/asnload

SNAP="${BENCH_SNAPSHOT:-}"
if [ -z "$SNAP" ]; then
    SNAP="$work/lives.snap"
    echo "== snapshot (scale $SCALE; set BENCH_SNAPSHOT to skip)"
    if [ "${BENCH_SMOKE:-0}" = "1" ]; then
        go run ./cmd/parallellives -scale "$SCALE" -start 2004-01-01 -end 2007-01-01 \
            -experiments "" -snapshot-out "$SNAP" >/dev/null 2>&1
    else
        go run ./cmd/parallellives -scale "$SCALE" -experiments "" \
            -snapshot-out "$SNAP" >/dev/null 2>&1
    fi
fi

echo "== shard ($SHARDS-way)"
"$work/asnshard" -snapshot "$SNAP" -shards "$SHARDS" -out "$work/lives.%d.snap" -verify 2>&1 | tail -1

wait_ready() { # url
    _tries=0
    while ! curl -sf -o /dev/null "$1/readyz"; do
        _tries=$((_tries + 1))
        [ "$_tries" -gt 100 ] && { echo "bench: $1 never became ready" >&2; exit 1; }
        sleep 0.1
    done
}

# load LABEL TARGET RATE SNAPSHOT [extra asnload args...]
load() {
    _label="$1" _target="$2" _rate="$3" _snap="$4"
    shift 4
    echo "== $_label (rate $_rate, $DURATION)"
    "$work/asnload" -target "$_target" -snapshot "$_snap" -rate "$_rate" \
        -duration "$DURATION" -mix "$MIX" -strides "$STRIDES" \
        -working-set "$WORKING" -label "$_label" "$@" \
        >"$work/row.$_label.json" 2>/dev/null
    jq -c '{label: .label, achieved_rps: .achieved_rps, p50_ms: .p50_ms, p99_ms: .p99_ms, errors: .errors}' \
        "$work/row.$_label.json"
}

# ---- single process ----------------------------------------------------
"$work/asnserve" -listen "127.0.0.1:$PORT" -snapshot "$SNAP" -cache "$CACHE" >/dev/null 2>&1 &
pids="$pids $!"
wait_ready "http://127.0.0.1:$PORT"
load single_capacity "http://127.0.0.1:$PORT" "$OVERDRIVE" "$SNAP"
load single_nominal "http://127.0.0.1:$PORT" "$NOMINAL" "$SNAP"

# ---- shard fleet -------------------------------------------------------
shard_urls=""
i=0
while [ "$i" -lt "$SHARDS" ]; do
    p=$((PORT + 1 + i))
    "$work/asnserve" -listen "127.0.0.1:$p" -snapshot "$work/lives.$i.snap" \
        -cache "$CACHE" -mmap >/dev/null 2>&1 &
    pids="$pids $!"
    last_shard_pid=$!
    shard_urls="$shard_urls${shard_urls:+,}http://127.0.0.1:$p"
    i=$((i + 1))
done
i=0
while [ "$i" -lt "$SHARDS" ]; do
    wait_ready "http://127.0.0.1:$((PORT + 1 + i))"
    i=$((i + 1))
done

# Per-shard rows, one at a time so the processes don't contend for this
# host's CPU: each shard is driven directly over the range it owns (its
# own file is the sampled population).
i=0
while [ "$i" -lt "$SHARDS" ]; do
    p=$((PORT + 1 + i))
    load "shard${i}_capacity" "http://127.0.0.1:$p" "$OVERDRIVE" "$work/lives.$i.snap" \
        -working-set $((WORKING / SHARDS))
    load "shard${i}_nominal" "http://127.0.0.1:$p" $((NOMINAL / SHARDS)) "$work/lives.$i.snap" \
        -working-set $((WORKING / SHARDS))
    i=$((i + 1))
done

# ---- router in line ----------------------------------------------------
"$work/asnroute" -listen "127.0.0.1:$((PORT + 10))" -shards "$shard_urls" \
    -aggregate hash -cache "$CACHE" >/dev/null 2>&1 &
router_pid=$!
pids="$pids $router_pid"
wait_ready "http://127.0.0.1:$((PORT + 10))"
load router4_capacity "http://127.0.0.1:$((PORT + 10))" "$OVERDRIVE" "$SNAP"
load router4_nominal "http://127.0.0.1:$((PORT + 10))" "$NOMINAL" "$SNAP"

# ---- overload: sheds, then a dead shard --------------------------------
# A second router with a tight admission gate, driven with a client
# concurrency cap well above it: the router's gate trips and the row's
# taxonomy shows sheds (503 + Retry-After) with bounded in-server
# latency instead of an unbounded queue.
"$work/asnroute" -listen "127.0.0.1:$((PORT + 11))" -shards "$shard_urls" \
    -aggregate hash -cache "$CACHE" -max-inflight 64 >/dev/null 2>&1 &
pids="$pids $!"
wait_ready "http://127.0.0.1:$((PORT + 11))"
load overload_shed "http://127.0.0.1:$((PORT + 11))" $((OVERDRIVE * 2)) "$SNAP" -inflight 2048

# Kill the last shard outright: its range fast-fails through the open
# breaker (503 + Retry-After → "shed" in the taxonomy), aggregates stay
# partial, everything else keeps serving.
kill -9 "$last_shard_pid" 2>/dev/null || true
sleep 0.5
load overload_shard_down "http://127.0.0.1:$((PORT + 10))" "$NOMINAL" "$SNAP"

# ---- assemble ----------------------------------------------------------
jq -s --arg snap "$(basename "$SNAP")" --arg mix "$MIX" --arg strides "$STRIDES" \
    --arg duration "$DURATION" --argjson cache "$CACHE" --argjson working "$WORKING" \
    --argjson shards "$SHARDS" --argjson cpus "$(nproc)" '
  # Pool latency histograms (identical fixed bounds across runs) and
  # read the p99 off the pooled distribution: the first bucket whose
  # cumulative count reaches 99% of the pooled total. Both sides of the
  # acceptance gate use this, so bucket quantization biases them
  # equally — unlike max-of-per-shard-p99s, which is biased high.
  def pooled_p99($runs):
    ($runs | map(.hist_counts) | transpose | map(add)) as $c
    | ($runs[0].hist_le_ms) as $le
    | ($c | add) as $total
    | (0.99 * $total) as $need
    | reduce range(0; $c | length) as $i ({cum: 0, ans: null};
        .cum += $c[$i]
        | if .ans == null and .cum >= $need then .ans = $le[$i] else . end)
    | .ans;
  {
    config: {
      snapshot: $snap, shards: $shards, cache_per_process: $cache,
      mix: $mix, strides: $strides, working_set: $working,
      duration: $duration, bench_cpus: $cpus,
      method: "capacity rows are open-loop overdrive (achieved_rps = capacity); nominal rows carry the latency claim; per-shard rows run in isolation and the fleet row sums them (one shard process per node); router rows run the whole tier in line on this one host"
    },
    rows: map({(.label): del(.label)}) | add
  }
  | pooled_p99([.rows | to_entries[] | select(.key | test("^shard[0-9]+_nominal$")) | .value]) as $fleet_p99
  | pooled_p99([.rows.single_nominal]) as $single_p99
  | .rows.fleet_aggregate = {
      achieved_rps: ([.rows | to_entries[] | select(.key | test("^shard[0-9]+_capacity$")) | .value.achieved_rps] | add),
      p99_ms: $fleet_p99,
      method: "sum of isolated per-shard capacities; p99 pools the per-shard nominal latency histograms"
    }
  | .acceptance = {
      speedup: ((.rows.fleet_aggregate.achieved_rps / .rows.single_capacity.achieved_rps * 100 | round) / 100),
      fleet_p99_ms: $fleet_p99,
      single_p99_ms: $single_p99,
      p99_note: "both p99s read from pooled fixed-bound histograms (bucket upper bounds) so quantization biases both sides equally",
      pass: ((.rows.fleet_aggregate.achieved_rps >= 2 * .rows.single_capacity.achieved_rps)
             and ($fleet_p99 <= $single_p99))
    }
  | .rows = (.rows | map_values(del(.hist_le_ms, .hist_counts)))
' "$work"/row.*.json >"$OUT"

echo "bench: wrote $OUT"
jq '.acceptance' "$OUT"
if [ "${BENCH_SMOKE:-0}" != "1" ]; then
    jq -e '.acceptance.pass' "$OUT" >/dev/null ||
        { echo "bench: acceptance gate FAILED (want >=2x aggregate RPS at equal-or-better p99)" >&2; exit 1; }
fi
