#!/bin/sh
# Replicated-tier smoke: build a small snapshot, cut it 2 ways, serve
# every range with 2 replicas behind asnroute, and prove the failover
# story over live HTTP — under sustained asnload traffic, kill -9 and
# restart EVERY replica in turn (retire + readmit via POST
# /v1/admin/topology/reload), and require the load report to show zero
# client-visible errors with failovers > 0: the fleet absorbed a full
# rolling restart.
set -eu
cd "$(dirname "$0")/.."

PORT="${REPLICA_SMOKE_PORT:-19280}"
RANGES=2
REPLICAS=2
work="$(mktemp -d)"
pids=""
cleanup() {
    # shellcheck disable=SC2086
    [ -n "$pids" ] && kill $pids 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$work" ./cmd/asnserve ./cmd/asnroute ./cmd/asnshard ./cmd/asnload ./cmd/parallellives

echo "== snapshot + ${RANGES}-way cut"
"$work/parallellives" -scale 0.01 -start 2004-01-01 -end 2007-01-01 \
    -experiments "" -snapshot-out "$work/lives.snap" >/dev/null 2>&1
"$work/asnshard" -snapshot "$work/lives.snap" -shards "$RANGES" -out "$work/lives.%d.snap" -verify 2>&1 | tail -1

wait_ready() { # url
    _tries=0
    while ! curl -sf -o /dev/null "$1/readyz"; do
        _tries=$((_tries + 1))
        [ "$_tries" -gt 100 ] && { echo "replica-smoke: $1 never became ready" >&2; exit 1; }
        sleep 0.1
    done
}

# Replica j of range i listens on PORT + 1 + i*REPLICAS + j.
replica_port() { echo $((PORT + 1 + $1 * REPLICAS + $2)); }

start_replica() { # range ordinal -> echoes pid
    "$work/asnserve" -listen "127.0.0.1:$(replica_port "$1" "$2")" \
        -snapshot "$work/lives.$1.snap" -mmap -replica "r$1-$2" >/dev/null 2>&1 &
    echo $!
}

echo "== start ${RANGES}x${REPLICAS} fleet + router"
route_args=""
i=0
while [ "$i" -lt "$RANGES" ]; do
    range_urls=""
    j=0
    while [ "$j" -lt "$REPLICAS" ]; do
        pid="$(start_replica "$i" "$j")"
        pids="$pids $pid"
        eval "pid_${i}_${j}=$pid"
        range_urls="$range_urls${range_urls:+,}http://127.0.0.1:$(replica_port "$i" "$j")"
        j=$((j + 1))
    done
    route_args="$route_args -shards $range_urls"
    i=$((i + 1))
done
i=0
while [ "$i" -lt "$RANGES" ]; do
    j=0
    while [ "$j" -lt "$REPLICAS" ]; do
        wait_ready "http://127.0.0.1:$(replica_port "$i" "$j")"
        j=$((j + 1))
    done
    i=$((i + 1))
done
# Cache off so every read exercises the live replica-pick path; breaker
# threshold 1 so a killed replica costs at most one failover per range
# before its breaker opens.
# shellcheck disable=SC2086
"$work/asnroute" -listen "127.0.0.1:$PORT" $route_args -cache -1 \
    -breaker-threshold 1 -breaker-cooldown 300ms -probe-interval 200ms \
    -handshake-timeout 3s >/dev/null 2>&1 &
pids="$pids $!"
R="http://127.0.0.1:$PORT"
wait_ready "$R"

reps="$(curl -sf "$R/v1/shards" | jq '[.shards[].replicas | length] | unique')"
[ "$(echo "$reps" | jq -c .)" = "[$REPLICAS]" ] \
    || { echo "replica-smoke: want $REPLICAS replicas per range, got $reps" >&2; exit 1; }
echo "   $RANGES ranges x $REPLICAS replicas up"

echo "== rolling restart under load"
"$work/asnload" -target "$R" -snapshot "$work/lives.snap" \
    -rate 300 -duration 20s -seed 7 -label replica-smoke \
    >"$work/load.json" 2>"$work/load.log" &
load_pid=$!
sleep 1 # let the generator settle before the first kill

reload() { # expect_field expect_count
    out="$(curl -sf -X POST "$R/v1/admin/topology/reload")" \
        || { echo "replica-smoke: topology reload failed" >&2; exit 1; }
    got="$(echo "$out" | jq ".$1 | length")"
    [ "$got" = "$2" ] || { echo "replica-smoke: reload $1 = $got, want $2 ($out)" >&2; exit 1; }
}

i=0
while [ "$i" -lt "$RANGES" ]; do
    j=0
    while [ "$j" -lt "$REPLICAS" ]; do
        eval "victim=\$pid_${i}_${j}"
        kill -9 "$victim"
        sleep 0.4 # traffic lands on the dead replica: failovers, no errors
        reload retired 1
        pid="$(start_replica "$i" "$j")"
        pids="$pids $pid"
        eval "pid_${i}_${j}=$pid"
        wait_ready "http://127.0.0.1:$(replica_port "$i" "$j")"
        reload admitted 1
        echo "   replica r$i-$j killed, retired, restarted, readmitted"
        j=$((j + 1))
    done
    i=$((i + 1))
done

wait "$load_pid" || { echo "replica-smoke: asnload failed"; cat "$work/load.log" >&2; exit 1; }

echo "== load report"
jq -C 'del(.hist_le_ms, .hist_counts)' "$work/load.json" | sed 's/^/   /'
hard="$(jq '(.errors.http_5xx // 0) + (.errors.transport // 0) + (.errors.timeout // 0) + (.errors.shed // 0)' "$work/load.json")"
[ "$hard" = 0 ] || { echo "replica-smoke: $hard client-visible error(s) during the rolling restart" >&2; exit 1; }
jq -e '.failovers > 0' "$work/load.json" >/dev/null \
    || { echo "replica-smoke: rolling restart produced no failovers — was the dead replica ever picked?" >&2; exit 1; }
jq -e '.completed > 0 and .errors.ok > 0' "$work/load.json" >/dev/null \
    || { echo "replica-smoke: load run completed nothing" >&2; exit 1; }

echo "== final topology"
final="$(curl -sf "$R/v1/shards")"
echo "$final" | jq -e "[.shards[].replicas | length] | all(. == $REPLICAS)" >/dev/null \
    || { echo "replica-smoke: fleet not fully restored: $final" >&2; exit 1; }
gen="$(echo "$final" | jq .generation)"
echo "   all ranges back to $REPLICAS replicas (topology generation $gen)"

echo "replica-smoke: OK (rolling restart absorbed: 0 errors, $(jq .failovers "$work/load.json") failovers, $(jq '.errors.ok' "$work/load.json") ok)"
