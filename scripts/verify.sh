#!/bin/sh
# Tier-1 verification: build, vet, the full test suite, and a race pass
# over the fault-handling packages. Run from the repo root (make verify).
set -eu

echo "== go build"
go build ./...
echo "== go vet"
go vet ./...
echo "== go test"
go test ./...
echo "== go test -race (faults, bgpscan, serve, obs incl. exemplar-ring hammer, parallel)"
go test -race ./internal/faults/ ./internal/bgpscan/ ./internal/serve/ ./internal/obs/ ./internal/parallel/
echo "== go test -race (pool/arena aliasing properties: bgpscan, registry, delegation, collector, core, intervals)"
go test -race -count=1 -run 'TestPooledScratch|TestTextSourceFilesDoNotAliasScratch|TestParsedFileDoesNotAliasInput|TestIterArenaRecyclingPreservesObservations|TestRunScratchDoesNotAliasLifetimes|TestActivityColumnsReuseDoesNotAliasIndex|TestColumnsMatchSetAlgebra' \
	./internal/bgpscan/ ./internal/registry/ ./internal/delegation/ ./internal/collector/ ./internal/core/ ./internal/intervals/
echo "== go test -race -short (pipeline)"
go test -race -short ./internal/pipeline/
echo "== go test -race (parallel/sequential equivalence property)"
go test -race -count=1 -run TestParallelEquivalence ./internal/pipeline/
echo "== go test -race -short (serve chaos soak + lifecycle)"
go test -race -short -count=1 -run 'TestChaosSoak|TestGracefulShutdown|TestReload|TestAdmissionGate|TestBreaker' ./internal/serve/
echo "== go test -race -short (stream: checkpoints, tailer, dir source)"
go test -race -short ./internal/stream/
echo "== go test -race (stream crash-equivalence property)"
go test -race -count=1 -run TestCrashEquivalence ./internal/stream/
echo "== go test -race (lifestore shard plan + shard files)"
go test -race -count=1 -run 'TestShard|TestSaveSharded|TestOneShardPlan|TestOpenShard|TestOpenMapped' ./internal/lifestore/
echo "== go test -race (router: unit + replica failover/hedging/topology + byte-equivalence + stitched traces + federated metrics)"
go test -race -count=1 ./internal/router/
echo "== go test -race (loadgen: open-loop taxonomy + failover/hedge accounting)"
go test -race -count=1 ./internal/loadgen/
echo "verify: OK"
