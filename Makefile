.PHONY: build test vet race verify fuzz snapshot-smoke chaos-serve stage-report bench bench-smoke tail-smoke shard-smoke fleet-smoke replica-smoke bench-serve bench-serve-smoke

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

# Race-check the concurrency-sensitive and fault-handling packages.
race:
	go test -race ./internal/faults/ ./internal/bgpscan/ ./internal/serve/ ./internal/obs/ ./internal/parallel/ ./internal/stream/ ./internal/router/ ./internal/loadgen/
	go test -race -short ./internal/pipeline/
	go test -race -count=1 -run 'TestShard|TestSaveSharded|TestOneShardPlan|TestOpenShard|TestOpenMapped' ./internal/lifestore/

# Short fuzz pass over the parser no-panic targets.
fuzz:
	go test ./internal/delegation/ -fuzz FuzzLenientParse -fuzztime 15s
	go test ./internal/mrt/ -fuzz FuzzDecodeMRT -fuzztime 15s
	go test ./internal/lifestore/ -fuzz FuzzOpenBytes -fuzztime 15s
	go test ./internal/stream/ -fuzz FuzzCheckpointDecode -fuzztime 15s

verify:
	./scripts/verify.sh

# End-to-end snapshot proof: build a small snapshot with asnserve, reopen
# it, and diff it against the in-memory dataset (-verify does the diff).
snapshot-smoke:
	go run ./cmd/asnserve -build -verify \
		-snapshot $${TMPDIR:-/tmp}/parallellives-smoke.snap \
		-scale 0.01 -start 2007-01-01 -end 2010-01-01
	rm -f $${TMPDIR:-/tmp}/parallellives-smoke.snap

# Serving-resilience smoke: the chaos soak under the race detector —
# fault window over a flaky store, breaker trip and recovery, mid-soak
# hot reload, zero corrupt 200 bodies.
chaos-serve:
	go test -race -short -count=1 -run TestChaosSoak ./internal/serve/ -v

# Machine-readable perf trajectory: Pipeline/Lifestore/Serve benchmarks
# (3 counts, -benchmem) distilled into BENCH_pipeline.json, including the
# sequential vs -workers=N pipeline.Run comparison rows; plus
# BENCH_delta.txt (% change vs the committed rows, failing on a >5%
# allocs/op regression unless BENCH_ALLOW_REGRESS=1), committed pprof
# profiles of a small pipeline run under BENCH_profiles/, and the scale
# ladder (3k -> 30k -> 106,873 ASNs) into BENCH_scale.json.
bench:
	./scripts/bench.sh

# One-iteration bench pass so the harness can't rot (CI): full rows +
# delta + regression gate, ladder reduced to the short 3k rung.
bench-smoke:
	BENCH_COUNT=1 BENCH_TIME=1x BENCH_SCALE_SHORT=1 ./scripts/bench.sh

# Sharded-tier smoke: snapshot → 4 shards → router, kill one shard and
# prove degraded-then-recovered behaviour over live HTTP.
shard-smoke:
	./scripts/shard_smoke.sh

# Fleet-observability smoke: router + 2 shards, one traced request must
# yield a span tree stitched across processes, the federated /metrics
# rollup must cover both shards, /v1/debug/slow must aggregate both
# exemplar rings, and asnstat must render a row per shard.
fleet-smoke:
	./scripts/fleet_smoke.sh

# Replicated-tier smoke: 2 ranges x 2 replicas behind asnroute; under
# sustained asnload traffic, kill -9 and restart every replica in turn
# (retire + readmit via topology reload) and require zero client-visible
# errors with failovers > 0.
replica-smoke:
	./scripts/replica_smoke.sh

# Serving-tier benchmark: single asnserve vs the 4-shard tier under the
# asnload open-loop generator, distilled into BENCH_serve.json.
bench-serve:
	./scripts/bench_serve.sh

# Tiny bench-serve pass so the load harness can't rot (CI).
bench-serve-smoke:
	BENCH_SMOKE=1 ./scripts/bench_serve.sh

# Streaming-ingestion smoke: feed a ~60-day simulated collector window
# one day at a time, kill -9 the live tail mid-window, restart it from
# its checkpoint, and require the resumed tail's final snapshot to be
# byte-identical to a one-shot batch build (-verify-batch).
tail-smoke:
	./scripts/tail_smoke.sh

# Observability smoke: a small instrumented run must print a stage table
# with the scan stage in it.
stage-report:
	go run ./cmd/parallellives -scale 0.01 -start 2006-01-01 -end 2007-01-01 \
		-experiments none -stage-report | grep -q bgpscan
	@echo "stage-report: OK"
