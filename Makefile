.PHONY: build test vet race verify fuzz

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

# Race-check the concurrency-sensitive and fault-handling packages.
race:
	go test -race ./internal/faults/ ./internal/bgpscan/
	go test -race -short ./internal/pipeline/

# Short fuzz pass over the parser no-panic targets.
fuzz:
	go test ./internal/delegation/ -fuzz FuzzLenientParse -fuzztime 15s
	go test ./internal/mrt/ -fuzz FuzzDecodeMRT -fuzztime 15s

verify:
	./scripts/verify.sh
