// Package bench holds the experiment harness: one benchmark per table
// and figure of the paper's evaluation, each regenerating the experiment
// from a shared full-window dataset, plus ablation benchmarks for the
// design choices DESIGN.md calls out (inactivity timeout, peer-visibility
// threshold, restoration on/off).
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Add -v to also print each experiment's rows (the b.Log output).
package bench

import (
	"fmt"
	"sync"
	"testing"

	"parallellives/internal/asn"
	"parallellives/internal/core"
	"parallellives/internal/dates"
	"parallellives/internal/pipeline"
	"parallellives/internal/registry"
	"parallellives/internal/report"
	"parallellives/internal/restore"
)

var (
	dsOnce sync.Once
	ds     *pipeline.Dataset
	dsErr  error
)

// dataset lazily builds the shared full-window dataset (2003-10-09 to
// 2021-03-01 at the default scale). The first benchmark to run pays the
// construction cost outside its timer.
func dataset(b *testing.B) *pipeline.Dataset {
	b.Helper()
	dsOnce.Do(func() {
		ds, dsErr = pipeline.Run(pipeline.DefaultOptions())
	})
	if dsErr != nil {
		b.Fatal(dsErr)
	}
	return ds
}

func BenchmarkTable1DelegationInventory(b *testing.B) {
	d := dataset(b)
	b.ResetTimer()
	var t report.Table1
	for i := 0; i < b.N; i++ {
		t = report.BuildTable1(d.Archive)
	}
	b.StopTimer()
	b.Log("\n" + t.Text())
}

func BenchmarkFigure3TimeoutSensitivity(b *testing.B) {
	d := dataset(b)
	timeouts := []int{1, 5, 15, 30, 50, 100, 365}
	b.ResetTimer()
	var f report.Figure3
	for i := 0; i < b.N; i++ {
		f = report.BuildFigure3(d.Activity, d.Admin, timeouts, 30)
	}
	b.StopTimer()
	b.Log("\n" + f.Text())
}

func BenchmarkFigure4AliveSeries(b *testing.B) {
	d := dataset(b)
	start, end := d.World.Config.Start, d.World.Config.End
	b.ResetTimer()
	var f report.Figure4
	for i := 0; i < b.N; i++ {
		f = report.BuildFigure4(d.Joint, start, end, 365)
	}
	b.StopTimer()
	b.Log("\n" + f.Text())
}

func BenchmarkTable2LifetimesPerASN(b *testing.B) {
	d := dataset(b)
	b.ResetTimer()
	var t report.Table2
	for i := 0; i < b.N; i++ {
		t = report.BuildTable2(d.Joint)
	}
	b.StopTimer()
	b.Log("\n" + t.Text())
}

func BenchmarkFigure5AdminDurationCDF(b *testing.B) {
	d := dataset(b)
	b.ResetTimer()
	var f report.Figure5
	for i := 0; i < b.N; i++ {
		f = report.BuildFigure5(d.Admin)
	}
	b.StopTimer()
	b.Log("\n" + f.Text())
}

func BenchmarkTable3Taxonomy(b *testing.B) {
	d := dataset(b)
	b.ResetTimer()
	var t report.Table3
	for i := 0; i < b.N; i++ {
		t = report.BuildTable3(d.Joint)
	}
	b.StopTimer()
	b.Log("\n" + t.Text())
}

func BenchmarkFigure7UsageCDF(b *testing.B) {
	d := dataset(b)
	b.ResetTimer()
	var f report.Figure7
	for i := 0; i < b.N; i++ {
		f = report.BuildFigure7(d.Joint)
	}
	b.StopTimer()
	b.Log("\n" + f.Text())
}

func BenchmarkFigure8DormantSquats(b *testing.B) {
	d := dataset(b)
	start, end := d.World.Config.Start, d.World.Config.End
	b.ResetTimer()
	var f report.Figure8
	for i := 0; i < b.N; i++ {
		findings := d.Joint.DetectDormantSquats(core.DefaultSquatParams())
		f = report.BuildFigure8(d.Joint, findings, 6, 30, start, end)
	}
	b.StopTimer()
	b.Log("\n" + f.Text())
}

func BenchmarkFigure9UnusedDurationCDF(b *testing.B) {
	d := dataset(b)
	b.ResetTimer()
	var f report.Figure9
	for i := 0; i < b.N; i++ {
		f = report.BuildFigure9(d.Joint.Unused())
	}
	b.StopTimer()
	b.Log("\n" + f.Text())
}

func BenchmarkFigure10BirthRate(b *testing.B) {
	d := dataset(b)
	b.ResetTimer()
	var f report.Figure10
	for i := 0; i < b.N; i++ {
		f = report.BuildFigure10(d.Admin)
	}
	b.StopTimer()
	peak, n := f.PeakQuarter(asn.RIPENCC)
	b.Logf("RIPE NCC peak birth quarter: %s (%d births)", peak, n)
}

func BenchmarkFigure11BirthDeathBalance(b *testing.B) {
	d := dataset(b)
	start, end := d.World.Config.Start, d.World.Config.End
	b.ResetTimer()
	var f report.Figure11
	for i := 0; i < b.N; i++ {
		f = report.BuildFigure11(d.Admin, start, end)
	}
	b.StopTimer()
	_ = f
}

func BenchmarkFigure12BitSplit(b *testing.B) {
	d := dataset(b)
	start, end := d.World.Config.Start, d.World.Config.End
	b.ResetTimer()
	var f report.Figure12
	for i := 0; i < b.N; i++ {
		f = report.BuildFigure12(d.Restored, start, end, 365)
	}
	b.StopTimer()
	b.Log("\n" + f.Text())
}

func BenchmarkFigure14LifeByBirthYear(b *testing.B) {
	d := dataset(b)
	b.ResetTimer()
	var f report.Figure14
	for i := 0; i < b.N; i++ {
		f = report.BuildFigure14(d.Admin, 2004, 2021)
	}
	b.StopTimer()
	_ = f
}

func BenchmarkTable4APNICCountries(b *testing.B) {
	d := dataset(b)
	snaps := []dates.Day{
		dates.MustParse("2010-01-01"),
		dates.MustParse("2015-01-01"),
		dates.MustParse("2021-03-01"),
	}
	b.ResetTimer()
	var t report.Table4
	for i := 0; i < b.N; i++ {
		t = report.BuildTable4(d.Joint, snaps, 5)
	}
	b.StopTimer()
	b.Log("\n" + t.Text())
}

func BenchmarkTable5TimeoutTaxonomy(b *testing.B) {
	d := dataset(b)
	b.ResetTimer()
	var t report.Table5
	for i := 0; i < b.N; i++ {
		t = report.BuildTable5(d.Admin, d.Activity, []int{15, 30, 50}, 30)
	}
	b.StopTimer()
	b.Log("\n" + t.Text())
}

func BenchmarkSection61Overlap(b *testing.B) {
	d := dataset(b)
	end := d.World.Config.End
	b.ResetTimer()
	var s report.Section61
	for i := 0; i < b.N; i++ {
		s = report.BuildSection61(d.Joint, end, core.DefaultSquatParams())
	}
	b.StopTimer()
	b.Log("\n" + s.Text())
}

func BenchmarkSection62PartialOverlap(b *testing.B) {
	d := dataset(b)
	cones := d.Cones()
	b.ResetTimer()
	var s report.Section62
	for i := 0; i < b.N; i++ {
		s = report.BuildSection62(d.Joint, cones)
	}
	b.StopTimer()
	b.Log("\n" + s.Text())
}

func BenchmarkSection63Unused(b *testing.B) {
	d := dataset(b)
	b.ResetTimer()
	var s report.Section63
	for i := 0; i < b.N; i++ {
		s = report.BuildSection63(d.Joint)
	}
	b.StopTimer()
	b.Log("\n" + s.Text())
}

func BenchmarkSection64Outside(b *testing.B) {
	d := dataset(b)
	b.ResetTimer()
	var s report.Section64
	for i := 0; i < b.N; i++ {
		s = report.BuildSection64(d.Joint)
	}
	b.StopTimer()
	b.Log("\n" + s.Text())
}

func BenchmarkAppendixA16BitExhaustion(b *testing.B) {
	d := dataset(b)
	start, end := d.World.Config.Start, d.World.Config.End
	b.ResetTimer()
	var a report.AppendixA16Bit
	for i := 0; i < b.N; i++ {
		a = report.BuildAppendixA16Bit(d.Restored, start, end)
	}
	b.StopTimer()
	b.Log("\n" + a.Text())
}

func BenchmarkExtensionRolesAndPrefixAware(b *testing.B) {
	d := dataset(b)
	b.ResetTimer()
	var e report.Extensions
	for i := 0; i < b.N; i++ {
		e = report.BuildExtensions(d.Activity, d.Ops)
	}
	b.StopTimer()
	b.Log("\n" + e.Text())
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationVisibilityThreshold re-runs the joint classification
// with the >1-peer rule disabled (minPeers=1): spurious single-peer
// observations inflate the ASN population, which the paper's threshold
// exists to prevent.
func BenchmarkAblationVisibilityThreshold(b *testing.B) {
	d := dataset(b)
	naiveOnce.Do(func() {
		opts := d.Options
		opts.Visibility = 1
		naiveDS, naiveErr = pipeline.Run(opts)
	})
	if naiveErr != nil {
		b.Fatal(naiveErr)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.Analyze(naiveDS.Admin, naiveDS.Ops).Taxonomy()
	}
	b.StopTimer()
	b.Logf("ASNs in BGP: visibility>=2: %d, visibility>=1: %d (spurious inflation: %d)",
		len(d.Activity.ASNs), len(naiveDS.Activity.ASNs),
		len(naiveDS.Activity.ASNs)-len(d.Activity.ASNs))
}

var (
	naiveOnce sync.Once
	naiveDS   *pipeline.Dataset
	naiveErr  error

	rawOnce sync.Once
	rawRes  *restore.Result
)

// BenchmarkAblationRestorationOff rebuilds administrative lifetimes with
// the §3.1 repairs disabled: lifetime fragmentation and spurious
// reallocations appear.
func BenchmarkAblationRestorationOff(b *testing.B) {
	d := dataset(b)
	rawOnce.Do(func() {
		rawRes = restore.RestoreWithOptions(naiveSources(d), nil, restore.Options{
			NoRegularRecovery: true,
			NoDateRepair:      true,
			NoInterRIRFix:     true,
		})
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lifetimes, _ := core.BuildAdminLifetimes(rawRes)
		_ = lifetimes
	}
	b.StopTimer()
	rawLifetimes, _ := core.BuildAdminLifetimes(rawRes)
	restoredLifetimes := d.Admin.Lifetimes
	b.Logf("lifetimes with restoration: %d, without: %d (spurious extra: %d)",
		len(restoredLifetimes), len(rawLifetimes), len(rawLifetimes)-len(restoredLifetimes))
}

func naiveSources(d *pipeline.Dataset) []registry.Source {
	out := make([]registry.Source, 0, asn.NumRIRs)
	for _, r := range asn.All() {
		out = append(out, d.Archive.Source(r))
	}
	return out
}

// pipelineBenchOptions is the end-to-end pipeline benchmark
// configuration: the default scale over a reduced window, so one full
// Run fits a benchmark iteration while exercising every stage at real
// per-day cost.
func pipelineBenchOptions(workers int) pipeline.Options {
	opts := pipeline.DefaultOptions()
	opts.World.Start = dates.MustParse("2004-01-01")
	opts.World.End = dates.MustParse("2005-12-31")
	opts.Workers = workers
	return opts
}

// BenchmarkPipelineRun measures the end-to-end pipeline, sequential
// (workers=1) versus sharded (workers=4 and 8) — the before/after rows
// scripts/bench.sh records into BENCH_pipeline.json. The outputs are
// bit-for-bit identical across worker counts (pinned by
// TestParallelEquivalence); this benchmark tracks the wall-clock side of
// that contract on whatever hardware it runs on, and the 4-vs-8 pair
// shows where sharding stops paying on a given core count.
func BenchmarkPipelineRun(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := pipelineBenchOptions(workers)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d, err := pipeline.Run(opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(d.Admin.Lifetimes) == 0 || len(d.Ops.Lifetimes) == 0 {
					b.Fatal("benchmark run produced an empty dataset")
				}
			}
		})
	}
}

// --- Scale ladder --------------------------------------------------------

// ladderRung is one rung of the scale ladder: a worldsim scale chosen to
// hit a target ASN population, over a day window.
type ladderRung struct {
	name       string
	scale      float64
	start, end string
}

// ladderRungs grows the pipeline toward the paper's full product of
// 106,873 ASNs × 6,354 days. Scales are calibrated against worldsim
// seed 1 over the full window: 0.024 → 3,163 distinct ASNs, 0.238 →
// 30,191, 1.048 → 106,951 (the paper count within 0.1%). The 3k and
// 30k rungs run the full 6,354-day window; the 106873 rung keeps the
// paper's allocation intensity but runs a reduced two-year window so a
// single iteration stays benchmarkable — it instantiates the subset of
// those ASNs alive in the window, at full per-day density.
var ladderRungs = []ladderRung{
	{name: "3k", scale: 0.024, start: "2003-10-09", end: "2021-03-01"},
	{name: "30k", scale: 0.238, start: "2003-10-09", end: "2021-03-01"},
	{name: "106873", scale: 1.048, start: "2004-01-01", end: "2005-12-31"},
}

// BenchmarkScaleLadder runs the end-to-end pipeline at every rung and
// worker count — the rows scripts/bench.sh distills into
// BENCH_scale.json. Under -short (CI smoke) only the 3k rung runs, over
// the reduced window, to keep the harness honest without paying the
// ladder.
func BenchmarkScaleLadder(b *testing.B) {
	rungs := ladderRungs
	if testing.Short() {
		rungs = []ladderRung{{name: "3k", scale: 0.024, start: "2004-01-01", end: "2005-12-31"}}
	}
	for _, r := range rungs {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("rung=%s/workers=%d", r.name, workers), func(b *testing.B) {
				opts := pipeline.DefaultOptions()
				opts.World.Scale = r.scale
				opts.World.Start = dates.MustParse(r.start)
				opts.World.End = dates.MustParse(r.end)
				opts.Workers = workers
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					d, err := pipeline.Run(opts)
					if err != nil {
						b.Fatal(err)
					}
					if len(d.Admin.Lifetimes) == 0 || len(d.Ops.Lifetimes) == 0 {
						b.Fatal("scale rung produced an empty dataset")
					}
				}
			})
		}
	}
}
