// Command asnserve builds and serves ASN-lives snapshots: the bridge
// from the batch pipeline to a long-running query service.
//
// Build mode runs the full pipeline once and persists the dataset:
//
//	asnserve -build -snapshot lives.snap [-scale 0.04 -seed 1 ...]
//	asnserve -build -snapshot lives.snap -verify   # reopen + diff after writing
//
// Listen mode serves an existing snapshot over HTTP, cold-starting
// without any recomputation:
//
//	asnserve -listen :8080 -snapshot lives.snap [-cache 256]
//
// Both modes together (-build -listen ...) build, save, then serve —
// and because one observability core spans both, /metrics then carries
// the build's pipeline counters next to live serving metrics, and
// /v1/stages serves the build's stage trace.
//
// Endpoints: /v1/asn/{n}, /v1/rir/{r}/series, /v1/taxonomy, /v1/health,
// /v1/stages, /metrics, and with -pprof the /debug/pprof/* profiles.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"parallellives/internal/core"
	"parallellives/internal/dates"
	"parallellives/internal/faults"
	"parallellives/internal/lifestore"
	"parallellives/internal/obs"
	"parallellives/internal/pipeline"
	"parallellives/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "asnserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		snapshot = flag.String("snapshot", "lives.snap", "snapshot file path")
		build    = flag.Bool("build", false, "run the pipeline and write the snapshot")
		verify   = flag.Bool("verify", false, "with -build: reopen the written snapshot and diff it against the in-memory dataset")
		listen   = flag.String("listen", "", "serve the snapshot on this address (e.g. :8080)")
		cache    = flag.Int("cache", 256, "LRU response-cache capacity (entries, -1 disables)")
		stride   = flag.Int("stride", 30, "default series downsampling stride (days)")
		pprofOn  = flag.Bool("pprof", false, "also serve /debug/pprof/* profiling endpoints")

		scale       = flag.Float64("scale", 0.04, "world scale")
		seed        = flag.Int64("seed", 1, "simulation seed")
		start       = flag.String("start", "2003-10-09", "window start")
		end         = flag.String("end", "2021-03-01", "window end")
		wire        = flag.Bool("wire", false, "route BGP data through MRT encode/decode")
		directFiles = flag.Bool("direct-files", false, "skip the delegation text round trip")
		timeout     = flag.Int("timeout", core.DefaultInactivityTimeout, "inactivity timeout (days)")
		visibility  = flag.Int("visibility", 2, "minimum distinct peers per ASN-day")
		faultPolicy = flag.String("fault-policy", "failfast", "input damage handling: failfast or degrade")
		chaos       = flag.Bool("chaos", false, "inject the default deterministic fault storm (implies -wire)")
		chaosSeed   = flag.Int64("chaos-seed", 1, "fault injection seed for -chaos")
	)
	flag.Parse()

	if !*build && *listen == "" {
		return fmt.Errorf("nothing to do: pass -build to write a snapshot, -listen to serve one, or both")
	}

	// One observability core spans build and serve: the pipeline's
	// counters and stage trace land on the same registry /metrics
	// exposes later.
	o := obs.New()

	if *build {
		opts := pipeline.DefaultOptions()
		opts.World.Scale = *scale
		opts.World.Seed = *seed
		opts.Wire = *wire
		opts.TextFiles = !*directFiles
		opts.Timeout = *timeout
		opts.Visibility = *visibility
		var err error
		if opts.FaultPolicy, err = pipeline.ParseFaultPolicy(*faultPolicy); err != nil {
			return err
		}
		if *chaos {
			plan := faults.DefaultStorm(*chaosSeed)
			opts.Inject = &plan
			opts.Wire = true
		}
		if opts.World.Start, err = dates.Parse(*start); err != nil {
			return err
		}
		if opts.World.End, err = dates.Parse(*end); err != nil {
			return err
		}

		opts.Obs = o
		t0 := time.Now()
		fmt.Fprintf(os.Stderr, "asnserve: building dataset (scale=%g, %s..%s)...\n", *scale, *start, *end)
		ds, err := pipeline.Run(opts)
		if err != nil {
			return err
		}
		snap := lifestore.Capture(ds)
		if err := lifestore.SaveSnapshot(snap, *snapshot); err != nil {
			return err
		}
		info, err := os.Stat(*snapshot)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "asnserve: snapshot %s written in %v: %d ASNs, %d admin + %d op lives, %d bytes\n",
			*snapshot, time.Since(t0).Round(time.Millisecond),
			snap.Meta.ASNCount, snap.Meta.AdminLives, snap.Meta.OpLives, info.Size())

		if *verify {
			if err := verifySnapshot(snap, *snapshot); err != nil {
				return err
			}
			fmt.Fprintln(os.Stderr, "asnserve: verify OK (reopened snapshot is identical to the in-memory dataset)")
		}
	}

	if *listen == "" {
		return nil
	}
	st, err := lifestore.OpenObserved(*snapshot, o.Registry)
	if err != nil {
		return err
	}
	defer st.Close()
	m := st.Meta()
	fmt.Fprintf(os.Stderr, "asnserve: serving %s (%s..%s, %d ASNs) on %s\n",
		*snapshot, m.Start, m.End, m.ASNCount, *listen)
	srv := serve.New(st, serve.Options{CacheSize: *cache, DefaultStride: *stride, Obs: o})
	handler := http.Handler(srv)
	if *pprofOn {
		// The profiling handlers live on an outer mux so the serve
		// package itself stays free of pprof's global side effects.
		mux := http.NewServeMux()
		mux.Handle("/", srv)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		fmt.Fprintf(os.Stderr, "asnserve: pprof enabled on %s/debug/pprof/\n", *listen)
	}
	return http.ListenAndServe(*listen, handler)
}

// verifySnapshot proves the round trip: the file just written decodes to
// exactly the snapshot captured from the in-memory dataset.
func verifySnapshot(want *lifestore.Snapshot, path string) error {
	st, err := lifestore.Open(path)
	if err != nil {
		return err
	}
	defer st.Close()
	got, err := st.Snapshot()
	if err != nil {
		return err
	}
	if diffs := lifestore.Diff(want, got); len(diffs) > 0 {
		for i, d := range diffs {
			if i >= 10 {
				fmt.Fprintf(os.Stderr, "asnserve: ... and %d more differences\n", len(diffs)-i)
				break
			}
			fmt.Fprintln(os.Stderr, "asnserve: diff:", d)
		}
		return fmt.Errorf("verify failed: reopened snapshot differs from the in-memory dataset in %d places", len(diffs))
	}
	return nil
}
