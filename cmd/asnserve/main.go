// Command asnserve builds and serves ASN-lives snapshots: the bridge
// from the batch pipeline to a long-running query service.
//
// Build mode runs the full pipeline once and persists the dataset:
//
//	asnserve -build -snapshot lives.snap [-scale 0.04 -seed 1 ...]
//	asnserve -build -snapshot lives.snap -verify   # reopen + diff after writing
//
// Listen mode serves an existing snapshot over HTTP, cold-starting
// without any recomputation:
//
//	asnserve -listen :8080 -snapshot lives.snap [-cache 256]
//
// Both modes together (-build -listen ...) build, save, then serve —
// and because one observability core spans both, /metrics then carries
// the build's pipeline counters next to live serving metrics, and
// /v1/stages serves the build's stage trace.
//
// The server runs with a full lifecycle: every http.Server timeout is
// set, SIGINT/SIGTERM trigger a graceful drain (bounded by -drain),
// and SIGHUP — or POST /v1/admin/reload — hot-reloads the snapshot
// file after verifying every block, atomically swapping generations
// without dropping in-flight requests. With -follow the file is polled
// for changes and reloaded automatically, pairing the server with a
// live tail (asnwatch -tail -snapshot) that rewrites it as days land.
//
// Endpoints: /v1/asn/{n}, /v1/rir/{r}/series, /v1/taxonomy, /v1/health,
// /v1/stages, /v1/admin/reload, /healthz, /readyz, /metrics, and with
// -pprof the /debug/pprof/* profiles.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"parallellives/internal/core"
	"parallellives/internal/dates"
	"parallellives/internal/faults"
	"parallellives/internal/lifestore"
	"parallellives/internal/obs"
	"parallellives/internal/pipeline"
	"parallellives/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "asnserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		snapshot = flag.String("snapshot", "lives.snap", "snapshot file path")
		build    = flag.Bool("build", false, "run the pipeline and write the snapshot")
		verify   = flag.Bool("verify", false, "with -build: reopen the written snapshot and diff it against the in-memory dataset")
		listen   = flag.String("listen", "", "serve the snapshot on this address (e.g. :8080)")
		cache    = flag.Int("cache", 256, "LRU response-cache capacity (entries, -1 disables)")
		stride   = flag.Int("stride", 30, "default series downsampling stride (days)")
		pprofOn  = flag.Bool("pprof", false, "also serve /debug/pprof/* profiling endpoints")
		exempl   = flag.Int("exemplars", 32, "slow/error request exemplars kept for /v1/debug/slow (-1 disables capture)")
		mmapOn   = flag.Bool("mmap", false, "memory-map the snapshot instead of reading through the descriptor (shares page cache across shard processes)")
		replica  = flag.String("replica", "", "replica identity reported on /v1/shard so a fronting router can tell same-range replicas apart (default: random per process)")

		follow     = flag.Duration("follow", 0, "poll the snapshot file at this interval and hot-reload when it changes (0 disables) — pairs with a live tail writing -snapshot")
		drain      = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline for in-flight requests")
		maxInfl    = flag.Int("max-inflight", 512, "concurrent-request admission cap (-1 disables shedding)")
		reqTimeout = flag.Duration("request-timeout", 10*time.Second, "per-request deadline propagated into lookups (-1ns disables)")

		scale       = flag.Float64("scale", 0.04, "world scale")
		seed        = flag.Int64("seed", 1, "simulation seed")
		start       = flag.String("start", "2003-10-09", "window start")
		end         = flag.String("end", "2021-03-01", "window end")
		wire        = flag.Bool("wire", false, "route BGP data through MRT encode/decode")
		directFiles = flag.Bool("direct-files", false, "skip the delegation text round trip")
		timeout     = flag.Int("timeout", core.DefaultInactivityTimeout, "inactivity timeout (days)")
		visibility  = flag.Int("visibility", 2, "minimum distinct peers per ASN-day")
		workers     = flag.Int("workers", 0, "worker goroutines per pipeline stage (0 = GOMAXPROCS); output is identical for any value)")
		faultPolicy = flag.String("fault-policy", "failfast", "input damage handling: failfast or degrade")
		chaos       = flag.Bool("chaos", false, "inject the default deterministic fault storm (implies -wire)")
		chaosSeed   = flag.Int64("chaos-seed", 1, "fault injection seed for -chaos")
	)
	flag.Parse()

	if !*build && *listen == "" {
		return fmt.Errorf("nothing to do: pass -build to write a snapshot, -listen to serve one, or both")
	}

	// One observability core spans build and serve: the pipeline's
	// counters and stage trace land on the same registry /metrics
	// exposes later.
	o := obs.New()

	if *build {
		opts := pipeline.DefaultOptions()
		opts.World.Scale = *scale
		opts.World.Seed = *seed
		opts.Wire = *wire
		opts.TextFiles = !*directFiles
		opts.Timeout = *timeout
		opts.Visibility = *visibility
		opts.Workers = *workers
		var err error
		if opts.FaultPolicy, err = pipeline.ParseFaultPolicy(*faultPolicy); err != nil {
			return err
		}
		if *chaos {
			plan := faults.DefaultStorm(*chaosSeed)
			opts.Inject = &plan
			opts.Wire = true
		}
		if opts.World.Start, err = dates.Parse(*start); err != nil {
			return err
		}
		if opts.World.End, err = dates.Parse(*end); err != nil {
			return err
		}

		opts.Obs = o
		t0 := time.Now()
		fmt.Fprintf(os.Stderr, "asnserve: building dataset (scale=%g, %s..%s)...\n", *scale, *start, *end)
		ds, err := pipeline.Run(opts)
		if err != nil {
			return err
		}
		snap := lifestore.Capture(ds)
		if err := lifestore.SaveSnapshot(snap, *snapshot); err != nil {
			return err
		}
		info, err := os.Stat(*snapshot)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "asnserve: snapshot %s written in %v: %d ASNs, %d admin + %d op lives, %d bytes\n",
			*snapshot, time.Since(t0).Round(time.Millisecond),
			snap.Meta.ASNCount, snap.Meta.AdminLives, snap.Meta.OpLives, info.Size())

		if *verify {
			if err := verifySnapshot(snap, *snapshot); err != nil {
				return err
			}
			fmt.Fprintln(os.Stderr, "asnserve: verify OK (reopened snapshot is identical to the in-memory dataset)")
		}
	}

	if *listen == "" {
		return nil
	}
	return serveSnapshot(o, *snapshot, *listen, serveConfig{
		cache: *cache, stride: *stride, pprofOn: *pprofOn, mmapOn: *mmapOn,
		drain: *drain, maxInFlight: *maxInfl, requestTimeout: *reqTimeout,
		follow: *follow, exemplars: *exempl, replica: *replica,
	})
}

// serveConfig carries the listen-mode knobs from flags into the server.
type serveConfig struct {
	cache, stride  int
	pprofOn        bool
	mmapOn         bool
	drain          time.Duration
	maxInFlight    int
	requestTimeout time.Duration
	follow         time.Duration
	exemplars      int
	replica        string
}

// serveSnapshot opens and fully verifies the snapshot, binds the
// listener (surfacing bind errors before any "serving" output), and
// runs the hardened HTTP server until SIGINT/SIGTERM, draining
// in-flight requests before returning. SIGHUP hot-reloads the snapshot
// file in place.
func serveSnapshot(o *obs.Obs, snapshot, listen string, cfg serveConfig) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	open := serve.FileOpener(snapshot, o.Registry)
	if cfg.mmapOn {
		open = serve.MappedFileOpener(snapshot, o.Registry)
	}
	src, closer, source, err := open(ctx)
	if err != nil {
		return err
	}
	sw := serve.NewSwappable(src, closer, source)
	rel := serve.NewReloader(sw, open, o.Registry)
	srv := serve.New(sw, serve.Options{
		CacheSize: cfg.cache, DefaultStride: cfg.stride, Obs: o,
		MaxInFlight: cfg.maxInFlight, RequestTimeout: cfg.requestTimeout,
		Reloader: rel, ExemplarCapacity: cfg.exemplars, Replica: cfg.replica,
	})
	handler := http.Handler(srv)
	if cfg.pprofOn {
		// The profiling handlers live on an outer mux so the serve
		// package itself stays free of pprof's global side effects.
		mux := http.NewServeMux()
		mux.Handle("/", srv)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}

	// Bind first: a taken port or bad address fails here, before any
	// "serving" line suggests the process is up.
	ln, err := serve.Listen(listen)
	if err != nil {
		return err
	}
	m := src.Meta()
	fmt.Fprintf(os.Stderr, "asnserve: serving %s (%s..%s, %d ASNs) on %s\n",
		snapshot, m.Start, m.End, m.ASNCount, ln.Addr())
	if cfg.pprofOn {
		fmt.Fprintf(os.Stderr, "asnserve: pprof enabled on %s/debug/pprof/\n", listen)
	}

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			if info, err := rel.Reload(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "asnserve: reload failed, previous snapshot still serving:", err)
			} else {
				fmt.Fprintf(os.Stderr, "asnserve: reloaded %s (generation %d, %d ASNs)\n",
					info.Source, info.Gen, info.ASNCount)
			}
		}
	}()
	if cfg.follow > 0 {
		// Follow mode: a live tail (asnwatch -tail -snapshot) rewrites
		// the snapshot atomically; a changed mtime or size triggers the
		// same verified hot reload SIGHUP would. A half-interesting
		// stat race is harmless — the reload re-verifies every block
		// before swapping, and a failed reload keeps the old generation.
		go func() {
			tick := time.NewTicker(cfg.follow)
			defer tick.Stop()
			var lastMod time.Time
			var lastSize int64
			if info, err := os.Stat(snapshot); err == nil {
				lastMod, lastSize = info.ModTime(), info.Size()
			}
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
				info, err := os.Stat(snapshot)
				if err != nil || (info.ModTime().Equal(lastMod) && info.Size() == lastSize) {
					continue
				}
				lastMod, lastSize = info.ModTime(), info.Size()
				if gen, err := rel.Reload(ctx); err != nil {
					if ctx.Err() == nil {
						fmt.Fprintln(os.Stderr, "asnserve: follow reload failed, previous snapshot still serving:", err)
					}
				} else {
					fmt.Fprintf(os.Stderr, "asnserve: followed %s (generation %d, %d ASNs)\n",
						gen.Source, gen.Gen, gen.ASNCount)
				}
			}
		}()
		fmt.Fprintf(os.Stderr, "asnserve: following %s for changes every %v\n", snapshot, cfg.follow)
	}

	err = serve.Run(ctx, ln, handler, serve.HTTPOptions{DrainTimeout: cfg.drain})
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "asnserve: shut down after drain")
	}
	return err
}

// verifySnapshot proves the round trip: the file just written decodes to
// exactly the snapshot captured from the in-memory dataset.
func verifySnapshot(want *lifestore.Snapshot, path string) error {
	st, err := lifestore.Open(path)
	if err != nil {
		return err
	}
	defer st.Close()
	got, err := st.Snapshot()
	if err != nil {
		return err
	}
	if diffs := lifestore.Diff(want, got); len(diffs) > 0 {
		for i, d := range diffs {
			if i >= 10 {
				fmt.Fprintf(os.Stderr, "asnserve: ... and %d more differences\n", len(diffs)-i)
				break
			}
			fmt.Fprintln(os.Stderr, "asnserve: diff:", d)
		}
		return fmt.Errorf("verify failed: reopened snapshot differs from the in-memory dataset in %d places", len(diffs))
	}
	return nil
}
