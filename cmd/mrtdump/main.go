// Command mrtdump prints MRT archives (RFC 6396) in a human-readable
// form, in the spirit of bgpdump: TABLE_DUMP_V2 peer index tables and RIB
// entries, and BGP4MP update messages.
//
// Usage:
//
//	mrtdump [-brief] [-count] file.mrt [file2.mrt ...]
//	cat file.mrt | mrtdump
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"parallellives/internal/asn"
	"parallellives/internal/bgp"
	"parallellives/internal/mrt"
)

var (
	brief = flag.Bool("brief", false, "one line per route")
	count = flag.Bool("count", false, "print record counts only")
)

func main() {
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		if err := dump(os.Stdin, "stdin"); err != nil {
			fail(err)
		}
		return
	}
	for _, path := range args {
		f, err := os.Open(path)
		if err != nil {
			fail(err)
		}
		err = dump(f, path)
		f.Close()
		if err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mrtdump:", err)
	os.Exit(1)
}

func dump(r io.Reader, name string) error {
	reader := mrt.NewReader(r)
	var tbl mrt.PeerIndexTable
	var rec mrt.RIBRecord
	var msg mrt.BGP4MPMessage
	var upd bgp.Update
	havePeers := false
	counts := map[string]int{}

	for {
		h, body, err := reader.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		ts := time.Unix(int64(h.Timestamp), 0).UTC().Format("2006-01-02 15:04:05")
		switch h.Type {
		case mrt.TypeTableDumpV2:
			switch h.Subtype {
			case mrt.SubtypePeerIndexTable:
				counts["peer-index-table"]++
				if err := mrt.DecodePeerIndexTable(&tbl, body); err != nil {
					return err
				}
				havePeers = true
				if *count {
					continue
				}
				fmt.Printf("%s PEER_INDEX_TABLE view=%q peers=%d\n", ts, tbl.ViewName, len(tbl.Peers))
				if !*brief {
					for i, p := range tbl.Peers {
						fmt.Printf("  peer %d: AS%s %s\n", i, p.AS, p.Addr)
					}
				}
			case mrt.SubtypeRIBIPv4Unicast, mrt.SubtypeRIBIPv6Unicast:
				counts["rib-entry"]++
				v6 := h.Subtype == mrt.SubtypeRIBIPv6Unicast
				if err := mrt.DecodeRIBRecord(&rec, body, v6); err != nil {
					return err
				}
				if *count {
					continue
				}
				for _, e := range rec.Entries {
					upd.Reset()
					if err := bgp.DecodeAttrs(&upd, e.Attrs, true); err != nil {
						fmt.Printf("%s RIB %v peer=%d <attr decode error: %v>\n",
							ts, rec.Prefix, e.PeerIndex, err)
						continue
					}
					peer := "?"
					if havePeers && int(e.PeerIndex) < len(tbl.Peers) {
						peer = "AS" + tbl.Peers[e.PeerIndex].AS.String()
					}
					fmt.Printf("%s RIB %v from=%s path=%s\n", ts, rec.Prefix, peer, pathString(&upd))
				}
			}
		case mrt.TypeBGP4MP, mrt.TypeBGP4MPET:
			if h.Subtype != mrt.SubtypeBGP4MPMessage && h.Subtype != mrt.SubtypeBGP4MPMessageAS4 {
				counts["bgp4mp-other"]++
				continue
			}
			counts["bgp4mp-message"]++
			if err := mrt.DecodeBGP4MPMessage(&msg, body, h.Subtype); err != nil {
				return err
			}
			if *count {
				continue
			}
			if err := bgp.DecodeUpdate(&upd, msg.Data, msg.FourByte); err != nil {
				fmt.Printf("%s UPDATE peer=AS%s <decode error: %v>\n", ts, msg.PeerAS, err)
				continue
			}
			fmt.Printf("%s UPDATE peer=AS%s announce=%v withdraw=%v path=%s\n",
				ts, msg.PeerAS, upd.Announced, upd.Withdrawn, pathString(&upd))
		default:
			counts[fmt.Sprintf("type-%d", h.Type)]++
		}
	}
	if *count {
		fmt.Printf("%s:\n", name)
		for k, v := range counts {
			fmt.Printf("  %-18s %d\n", k, v)
		}
	}
	return nil
}

func pathString(u *bgp.Update) string {
	var flat [64]asn.ASN
	parts := make([]string, 0, 8)
	for _, a := range u.FlatPath(flat[:0]) {
		parts = append(parts, a.String())
	}
	return strings.Join(parts, " ")
}
