// Command delegdump inspects, validates and diffs RIR delegation files.
//
// Usage:
//
//	delegdump file                 summarize one file
//	delegdump -records file        also list the asn records
//	delegdump -strict file         fail on the first malformed line
//	delegdump -diff fileA fileB    show asn record differences
package main

import (
	"flag"
	"fmt"
	"os"

	"parallellives/internal/asn"
	"parallellives/internal/delegation"
)

var (
	records = flag.Bool("records", false, "list asn records")
	strict  = flag.Bool("strict", false, "fail on the first malformed line")
	diff    = flag.Bool("diff", false, "diff two files' asn records")
)

func main() {
	flag.Parse()
	args := flag.Args()
	switch {
	case *diff && len(args) == 2:
		if err := runDiff(args[0], args[1]); err != nil {
			fail(err)
		}
	case len(args) >= 1:
		for _, path := range args {
			if err := runSummary(path); err != nil {
				fail(err)
			}
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: delegdump [-records|-strict] file ... | delegdump -diff fileA fileB")
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "delegdump:", err)
	os.Exit(1)
}

func parse(path string) (*delegation.File, []delegation.LineError, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	if *strict {
		parsed, err := delegation.Parse(f)
		return parsed, nil, err
	}
	parsed, errs := delegation.ParseLenient(f)
	if parsed == nil {
		return nil, errs, fmt.Errorf("%s: unusable file (%d errors)", path, len(errs))
	}
	return parsed, errs, nil
}

func runSummary(path string) error {
	f, errs, err := parse(path)
	if err != nil {
		return err
	}
	format := "regular"
	if f.Extended {
		format = "extended"
	}
	fmt.Printf("%s: %s %s file, serial %s, window %s..%s\n",
		path, f.Registry, format, f.Serial, f.Start, f.End)
	var byStatus [4]int
	units := 0
	for _, rec := range f.ASNs {
		byStatus[rec.Status] += rec.Count
		units += rec.Count
	}
	fmt.Printf("  asn records: %d (%d ASNs) — allocated %d, assigned %d, reserved %d, available %d\n",
		len(f.ASNs), units,
		byStatus[delegation.StatusAllocated], byStatus[delegation.StatusAssigned],
		byStatus[delegation.StatusReserved], byStatus[delegation.StatusAvailable])
	if len(f.Other) > 0 {
		fmt.Printf("  other resource lines: %d\n", len(f.Other))
	}
	for _, e := range errs {
		fmt.Printf("  malformed: %v\n", e)
	}
	if *records {
		for _, rec := range f.ASNs {
			fmt.Printf("  %s\n", rec.Line(f.Extended))
		}
	}
	return nil
}

func runDiff(pathA, pathB string) error {
	fa, _, err := parse(pathA)
	if err != nil {
		return err
	}
	fb, _, err := parse(pathB)
	if err != nil {
		return err
	}
	a := index(fa)
	b := index(fb)
	added, removed, changed := 0, 0, 0
	for x, rb := range b {
		ra, ok := a[x]
		switch {
		case !ok:
			fmt.Printf("+ %s\n", rb.Line(true))
			added++
		case ra != rb:
			fmt.Printf("~ %s -> %s\n", ra.Line(true), rb.Line(true))
			changed++
		}
	}
	for x, ra := range a {
		if _, ok := b[x]; !ok {
			fmt.Printf("- %s\n", ra.Line(true))
			removed++
		}
	}
	fmt.Printf("diff: %d added, %d removed, %d changed\n", added, removed, changed)
	return nil
}

func index(f *delegation.File) map[asn.ASN]delegation.Record {
	out := make(map[asn.ASN]delegation.Record, len(f.ASNs))
	for _, rec := range f.Expand() {
		rec.Registry = f.Registry
		out[rec.ASN] = rec
	}
	return out
}
