// Command parallellives runs the full reproduction pipeline (Figure 1 of
// the paper): it simulates the ground-truth world, renders and restores
// the delegation archive, scans the simulated collectors, builds both
// lifetime dimensions, and regenerates the paper's tables and figures.
//
// Usage:
//
//	parallellives [flags]
//
// Useful flags:
//
//	-scale 0.04          world scale (fraction of real allocation volume)
//	-seed 1              simulation seed
//	-start/-end          observation window (YYYY-MM-DD)
//	-wire                route BGP data through binary MRT encode/decode
//	-direct-files        skip the delegation text round trip
//	-timeout 30          operational inactivity timeout (days)
//	-visibility 2        minimum distinct peers per active ASN-day
//	-experiments all     comma list: table1..table5, figure3..figure14,
//	                     s61..s64, appendixa, extensions, restoration, health
//	-fault-policy MODE   failfast (default) or degrade: quarantine damaged
//	                     inputs and finish, reporting them in the health block
//	-chaos               inject the default deterministic fault storm
//	-chaos-seed N        fault injection seed for -chaos
//	-stage-report        print a per-stage duration and record-flow table
//	-datasets DIR        write Listing-1 JSON datasets into DIR
//	-snapshot-out FILE   write a lifestore snapshot (servable by asnserve)
//	-export-mrt DATE     write one day's MRT archives into -out
//	-export-files DATE   write one day's delegation files into -out
//	-out DIR             output directory for exports (default ".")
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	rpprof "runtime/pprof"
	"strings"
	"time"

	"parallellives/internal/asn"
	"parallellives/internal/collector"
	"parallellives/internal/core"
	"parallellives/internal/dates"
	"parallellives/internal/faults"
	"parallellives/internal/lifestore"
	"parallellives/internal/obs"
	"parallellives/internal/pipeline"
	"parallellives/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "parallellives:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scale       = flag.Float64("scale", 0.04, "world scale")
		seed        = flag.Int64("seed", 1, "simulation seed")
		start       = flag.String("start", "2003-10-09", "window start")
		end         = flag.String("end", "2021-03-01", "window end")
		wire        = flag.Bool("wire", false, "route BGP data through MRT encode/decode")
		directFiles = flag.Bool("direct-files", false, "skip the delegation text round trip")
		timeout     = flag.Int("timeout", core.DefaultInactivityTimeout, "inactivity timeout (days)")
		visibility  = flag.Int("visibility", 2, "minimum distinct peers per ASN-day")
		workers     = flag.Int("workers", 0, "worker goroutines per pipeline stage (0 = GOMAXPROCS); output is identical for any value)")
		experiments = flag.String("experiments", "all", "comma list of experiments, or 'all'")
		datasets    = flag.String("datasets", "", "directory for Listing-1 JSON datasets")
		snapshotOut = flag.String("snapshot-out", "", "write a lifestore snapshot to this path")
		exportMRT   = flag.String("export-mrt", "", "export one day's MRT archives (YYYY-MM-DD)")
		exportFiles = flag.String("export-files", "", "export one day's delegation files (YYYY-MM-DD)")
		outDir      = flag.String("out", ".", "output directory for exports")
		lookupASN   = flag.Uint64("asn", 0, "print one ASN's parallel lives and exit")
		faultPolicy = flag.String("fault-policy", "failfast", "input damage handling: failfast or degrade")
		chaos       = flag.Bool("chaos", false, "inject the default deterministic fault storm (implies -wire)")
		chaosSeed   = flag.Int64("chaos-seed", 1, "fault injection seed for -chaos")
		stageReport = flag.Bool("stage-report", false, "print a per-stage duration and record-flow table after the run")
		profileOut  = flag.String("profile-out", "", "write cpu.pprof, heap.pprof and allocs.pprof into this directory (the build is profiled; reporting is not)")
	)
	flag.Parse()

	opts := pipeline.DefaultOptions()
	opts.World.Scale = *scale
	opts.World.Seed = *seed
	opts.Wire = *wire
	opts.TextFiles = !*directFiles
	opts.Timeout = *timeout
	opts.Visibility = *visibility
	opts.Workers = *workers
	var err error
	if opts.FaultPolicy, err = pipeline.ParseFaultPolicy(*faultPolicy); err != nil {
		return err
	}
	if *chaos {
		plan := faults.DefaultStorm(*chaosSeed)
		opts.Inject = &plan
		opts.Wire = true // MRT faults only exist on the wire
	}
	if opts.World.Start, err = dates.Parse(*start); err != nil {
		return err
	}
	if opts.World.End, err = dates.Parse(*end); err != nil {
		return err
	}
	if *stageReport {
		opts.Obs = obs.New()
	}

	var stopProfiles func() error
	if *profileOut != "" {
		if stopProfiles, err = startProfiles(*profileOut); err != nil {
			return err
		}
	}

	t0 := time.Now()
	fmt.Fprintf(os.Stderr, "building dataset (scale=%g, %s..%s, wire=%v)...\n",
		*scale, *start, *end, opts.Wire)
	ds, err := pipeline.Run(opts)
	if stopProfiles != nil {
		// Profiles cover exactly the build, success or failure: the CPU
		// profile stops here and the heap/allocs profiles capture the
		// dataset while it is still fully resident.
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dataset ready in %v: %d admin lifetimes (%d ASNs), %d op lifetimes (%d ASNs)\n",
		time.Since(t0).Round(time.Millisecond),
		len(ds.Admin.Lifetimes), ds.AdminStats.ASNs,
		len(ds.Ops.Lifetimes), ds.Ops.ASNs())
	fmt.Fprintln(os.Stderr, ds.Health.Summary())
	if *stageReport {
		fmt.Print(obs.StageTable(ds.Trace))
	}

	if *datasets != "" {
		if err := writeDatasets(ds, *datasets); err != nil {
			return err
		}
	}
	if *snapshotOut != "" {
		if err := lifestore.Save(ds, *snapshotOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "snapshot written to %s (serve it with: asnserve -listen :8080 -snapshot %s)\n",
			*snapshotOut, *snapshotOut)
	}
	if *exportMRT != "" {
		if err := doExportMRT(ds, *exportMRT, *outDir); err != nil {
			return err
		}
	}
	if *exportFiles != "" {
		if err := doExportFiles(ds, *exportFiles, *outDir); err != nil {
			return err
		}
	}

	if *lookupASN != 0 {
		printASN(ds, asn.ASN(*lookupASN))
		return nil
	}

	want := map[string]bool{}
	all := *experiments == "all"
	for _, e := range strings.Split(*experiments, ",") {
		want[strings.TrimSpace(e)] = true
	}
	sel := func(name string) bool { return all || want[name] }
	printExperiments(ds, sel)
	return nil
}

// startProfiles begins a CPU profile in dir and returns the stop func
// that ends it and writes the heap and allocs profiles next to it.
// Profiles pair with the bench harness: scripts/bench.sh commits them
// alongside BENCH_pipeline.json so allocation regressions carry their
// own evidence.
func startProfiles(dir string) (func() error, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cpu, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, err
	}
	if err := rpprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return nil, err
	}
	return func() error {
		rpprof.StopCPUProfile()
		if err := cpu.Close(); err != nil {
			return err
		}
		// A GC first, so the heap profile shows live retention rather
		// than garbage awaiting collection.
		runtime.GC()
		for _, p := range []string{"heap", "allocs"} {
			f, err := os.Create(filepath.Join(dir, p+".pprof"))
			if err != nil {
				return err
			}
			if err := rpprof.Lookup(p).WriteTo(f, 0); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "profiles written to %s (cpu.pprof, heap.pprof, allocs.pprof)\n", dir)
		return nil
	}, nil
}

func printExperiments(ds *pipeline.Dataset, sel func(string) bool) {
	wStart, wEnd := ds.World.Config.Start, ds.World.Config.End
	out := os.Stdout
	p := func(s string) { fmt.Fprintln(out, s) }

	if sel("table1") {
		p(report.BuildTable1(ds.Archive).Text())
	}
	if sel("figure3") {
		f := report.BuildFigure3(ds.Activity, ds.Admin,
			[]int{1, 2, 5, 10, 15, 20, 30, 50, 75, 100, 150, 365}, ds.Options.Timeout)
		p(f.Text())
	}
	if sel("figure4") {
		p(report.BuildFigure4(ds.Joint, wStart, wEnd, 180).Text())
	}
	if sel("table2") {
		p(report.BuildTable2(ds.Joint).Text())
	}
	if sel("figure5") {
		p(report.BuildFigure5(ds.Admin).Text())
	}
	if sel("table3") {
		p(report.BuildTable3(ds.Joint).Text())
	}
	if sel("figure7") {
		p(report.BuildFigure7(ds.Joint).Text())
	}
	if sel("figure8") {
		findings := ds.Joint.DetectDormantSquats(core.DefaultSquatParams())
		p(report.BuildFigure8(ds.Joint, findings, 6, 30, wStart, wEnd).Text())
	}
	if sel("figure9") {
		p(report.BuildFigure9(ds.Joint.Unused()).Text())
	}
	if sel("figure10") {
		p(report.BuildFigure10(ds.Admin).Text())
	}
	if sel("figure11") {
		p(report.BuildFigure11(ds.Admin, wStart, wEnd).Text())
	}
	if sel("figure12") {
		p(report.BuildFigure12(ds.Restored, wStart, wEnd, 180).Text())
	}
	if sel("figure14") {
		p(report.BuildFigure14(ds.Admin, wStart.Year(), wEnd.Year()).Text())
	}
	if sel("table4") {
		snaps := table4Snapshots(wStart, wEnd)
		p(report.BuildTable4(ds.Joint, snaps, 5).Text())
	}
	if sel("table5") {
		p(report.BuildTable5(ds.Admin, ds.Activity, []int{15, 30, 50}, 30).Text())
	}
	if sel("s61") {
		p(report.BuildSection61(ds.Joint, wEnd, core.DefaultSquatParams()).Text())
	}
	if sel("s62") {
		p(report.BuildSection62(ds.Joint, ds.Cones()).Text())
	}
	if sel("s63") {
		p(report.BuildSection63(ds.Joint).Text())
	}
	if sel("s64") {
		p(report.BuildSection64(ds.Joint).Text())
	}
	if sel("appendixa") {
		p(report.BuildAppendixA16Bit(ds.Restored, wStart, wEnd).Text())
	}
	if sel("extensions") {
		p(report.BuildExtensions(ds.Activity, ds.Ops).Text())
	}
	if sel("restoration") {
		fmt.Fprintf(out, "Restoration report: %+v\n\n", ds.Restored.Report)
	}
	if sel("health") {
		p(ds.Health.Text())
	}
}

// printASN prints one ASN's parallel lives — the Listing 1 view.
func printASN(ds *pipeline.Dataset, a asn.ASN) {
	admins := ds.Admin.Of(a)
	ops := ds.Ops.Of(a)
	if len(admins) == 0 && len(ops) == 0 {
		fmt.Printf("AS%s: never allocated and never seen in BGP\n", a)
		return
	}
	fmt.Printf("AS%s\n", a)
	for _, ai := range admins {
		al := ds.Admin.Lifetimes[ai]
		fmt.Printf("  administrative life (%s, %s): regDate=%s, %s .. %s, open=%v, category=%s\n",
			al.RIR, al.CC, al.RegDate, al.Span.Start, al.Span.End, al.Open,
			ds.Joint.AdminCat[ai])
	}
	for _, oi := range ops {
		ol := ds.Ops.Lifetimes[oi]
		fmt.Printf("  operational life: %s .. %s (%d days), category=%s\n",
			ol.Span.Start, ol.Span.End, ol.Span.Days(), ds.Joint.OpCat[oi])
	}
	if act := ds.Activity.ASNs[a]; act != nil && len(act.Upstreams) > 0 {
		fmt.Printf("  observed upstreams:")
		for up := range act.Upstreams {
			fmt.Printf(" AS%s", up)
		}
		fmt.Println()
	}
}

// table4Snapshots picks the paper's 2010/2015/2021 snapshots when they
// fall inside the window, else three evenly spaced dates.
func table4Snapshots(start, end dates.Day) []dates.Day {
	paper := []dates.Day{
		dates.MustParse("2010-01-01"),
		dates.MustParse("2015-01-01"),
		dates.MustParse("2021-03-01"),
	}
	var out []dates.Day
	for _, d := range paper {
		if d >= start && d <= end {
			out = append(out, d)
		}
	}
	if len(out) >= 2 {
		return out
	}
	span := end.Sub(start)
	return []dates.Day{start.AddDays(span / 3), start.AddDays(2 * span / 3), end}
}

func writeDatasets(ds *pipeline.Dataset, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	admin, err := os.Create(filepath.Join(dir, "administrative.jsonl"))
	if err != nil {
		return err
	}
	defer admin.Close()
	if err := ds.WriteAdminJSON(admin); err != nil {
		return err
	}
	op, err := os.Create(filepath.Join(dir, "operational.jsonl"))
	if err != nil {
		return err
	}
	defer op.Close()
	if err := ds.WriteOpJSON(op); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "datasets written to %s\n", dir)
	return nil
}

func doExportMRT(ds *pipeline.Dataset, dateStr, dir string) error {
	day, err := dates.Parse(dateStr)
	if err != nil {
		return err
	}
	inf := collector.New(ds.World)
	it := inf.Iter()
	for it.Next() {
		if it.Day() != day {
			continue
		}
		ribs, updates, err := it.MRT()
		if err != nil {
			return err
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		for i := range ribs {
			name := fmt.Sprintf("rrc%02d.rib.%s.mrt", i, day.Compact())
			if err := os.WriteFile(filepath.Join(dir, name), ribs[i], 0o644); err != nil {
				return err
			}
			name = fmt.Sprintf("rrc%02d.updates.%s.mrt", i, day.Compact())
			if err := os.WriteFile(filepath.Join(dir, name), updates[i], 0o644); err != nil {
				return err
			}
		}
		fmt.Fprintf(os.Stderr, "MRT archives for %s written to %s\n", day, dir)
		return nil
	}
	return fmt.Errorf("day %s outside the window", day)
}

func doExportFiles(ds *pipeline.Dataset, dateStr, dir string) error {
	day, err := dates.Parse(dateStr)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, r := range asn.All() {
		for _, ext := range []bool{false, true} {
			f := ds.Archive.File(r, day, ext)
			if f == nil {
				continue
			}
			suffix := ""
			if ext {
				suffix = "-extended"
			}
			name := fmt.Sprintf("delegated-%s%s-%s", r.Token(), suffix, day.Compact())
			out, err := os.Create(filepath.Join(dir, name))
			if err != nil {
				return err
			}
			if _, err := f.WriteTo(out); err != nil {
				out.Close()
				return err
			}
			out.Close()
		}
	}
	fmt.Fprintf(os.Stderr, "delegation files for %s written to %s\n", day, dir)
	return nil
}
