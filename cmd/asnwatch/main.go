// Command asnwatch emits the chronological anomaly feed the paper's §9
// proposes building on its datasets: dormant-ASN awakenings,
// post-deallocation use, never-delegated origins, lookalike (fat-finger)
// origins and large internal-ASN leaks, each tagged with the §6 evidence
// behind it.
//
// Batch mode (the default) builds the dataset once and prints the feed:
//
//	asnwatch [flags]
//
//	-kinds dormant-awakening,post-deallocation-use   filter event kinds
//	-limit 50                                        stop after N events
//	-check ASN:YYYY-MM-DD                            one delegation check and exit
//	-progress 2s                                     periodic build progress line
//
// Live-tail mode runs asnwatch as a crash-safe streaming daemon: it
// follows a growing day directory (one complete collector day at a
// time), folds each day into the running dataset without recomputing
// prior days, and checkpoints its position after every day so a crash —
// or kill -9 — resumes exactly where it left off:
//
//	asnwatch -tail -tail-dir days/ -checkpoint ckpt/ [-listen :8080]
//
//	-snapshot lives.snap      write each published snapshot here
//	-snapshot-every 7         publish cadence in days (default 1)
//	-listen :8080             serve the latest snapshot over HTTP with
//	                          generation-swap hot reload per publish
//	-notify-url URL           POST a JSON line after each publish
//	-read-timeout 30s         staleness deadline per day read
//	-reconnect-attempts 4     reconnect ladder bound after staleness
//	-verify-batch             after the window completes, run the batch
//	                          pipeline and require byte-identical output
//
// The paired feeder simulates the growing collector directory:
//
//	asnwatch -sim-feed -tail-dir days/ -feed-interval 100ms
//
// A first SIGINT/SIGTERM cancels cleanly everywhere — including mid
// build, mid tail (the in-flight day is committed and published) and
// mid drain; a second signal kills the process immediately.
//
// World/pipeline flags mirror cmd/parallellives (-scale, -seed, -start,
// -end, -workers, -chaos).
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"parallellives/internal/asn"
	"parallellives/internal/collector"
	"parallellives/internal/core"
	"parallellives/internal/dates"
	"parallellives/internal/faults"
	"parallellives/internal/lifestore"
	"parallellives/internal/obs"
	"parallellives/internal/pipeline"
	"parallellives/internal/serve"
	"parallellives/internal/stream"
	"parallellives/internal/worldsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "asnwatch:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scale    = flag.Float64("scale", 0.04, "world scale")
		seed     = flag.Int64("seed", 1, "simulation seed")
		start    = flag.String("start", "2003-10-09", "window start")
		end      = flag.String("end", "2021-03-01", "window end")
		workers  = flag.Int("workers", 0, "worker goroutines per pipeline stage (0 = GOMAXPROCS)")
		kinds    = flag.String("kinds", "", "comma list of event kinds (default: all)")
		limit    = flag.Int("limit", 0, "stop after N events (0 = all)")
		check    = flag.String("check", "", "one delegation check, ASN:YYYY-MM-DD")
		policy   = flag.String("fault-policy", "failfast", "input damage handling: failfast or degrade")
		progress = flag.Duration("progress", 0, "print a build progress line every interval, e.g. 2s (0 disables)")

		chaos     = flag.Bool("chaos", false, "inject the default deterministic fault storm (implies wire mode)")
		chaosSeed = flag.Int64("chaos-seed", 1, "fault injection seed for -chaos")

		tail      = flag.Bool("tail", false, "run the live-tail ingestion daemon instead of a batch build")
		simFeed   = flag.Bool("sim-feed", false, "publish simulated collector days into -tail-dir and exit")
		tailDir   = flag.String("tail-dir", "days", "day directory the tail follows (and -sim-feed fills)")
		ckptDir   = flag.String("checkpoint", "checkpoint", "checkpoint journal directory for -tail")
		snapshot  = flag.String("snapshot", "", "with -tail: write each published snapshot to this path")
		snapEvery = flag.Int("snapshot-every", 1, "with -tail: publish a full snapshot every N committed days")
		listen    = flag.String("listen", "", "with -tail: serve the latest snapshot on this address")
		exempl    = flag.Int("exemplars", 32, "with -tail -listen: slow/error request exemplars kept for /v1/debug/slow (-1 disables capture)")
		notifyURL = flag.String("notify-url", "", "with -tail: POST a JSON notification here after each publish")

		readTimeout = flag.Duration("read-timeout", 30*time.Second, "staleness deadline waiting for the next complete day")
		poll        = flag.Duration("poll", 25*time.Millisecond, "day-directory poll interval")
		reconnects  = flag.Int("reconnect-attempts", 4, "reconnect attempts after staleness before giving up")
		feedEvery   = flag.Duration("feed-interval", 100*time.Millisecond, "with -sim-feed: delay between published days")
		verifyBatch = flag.Bool("verify-batch", false, "with -tail: after the window completes, run the batch pipeline and require a byte-identical snapshot")
	)
	flag.Parse()

	opts := pipeline.DefaultOptions()
	opts.World.Scale = *scale
	opts.World.Seed = *seed
	opts.Workers = *workers
	var err error
	if opts.FaultPolicy, err = pipeline.ParseFaultPolicy(*policy); err != nil {
		return err
	}
	if opts.World.Start, err = dates.Parse(*start); err != nil {
		return err
	}
	if opts.World.End, err = dates.Parse(*end); err != nil {
		return err
	}
	if *chaos {
		plan := faults.DefaultStorm(*chaosSeed)
		opts.Inject = &plan
		opts.Wire = true
		if opts.FaultPolicy == pipeline.FailFast {
			opts.FaultPolicy = pipeline.Degrade
		}
	}

	// One cancellation root for every mode: the first SIGINT/SIGTERM
	// cancels ctx (the build aborts between days, the tail commits its
	// in-flight day and drains, the server stops accepting); a second
	// signal force-exits. Installed before any long-running work so an
	// interrupt during the initial build cancels promptly instead of
	// waiting for the 17-year window to finish.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "asnwatch: signal received, shutting down (send again to force)")
		cancel()
		<-sigc
		fmt.Fprintln(os.Stderr, "asnwatch: forced exit")
		os.Exit(1)
	}()

	switch {
	case *simFeed && *tail:
		return errors.New("-sim-feed and -tail are separate processes; run one of each")
	case *simFeed:
		return runSimFeed(ctx, opts.World, *tailDir, *feedEvery)
	case *tail:
		opts.Wire = true // the tail consumes MRT bytes; batch-verify must match
		return runTail(ctx, opts, tailConfig{
			dir: *tailDir, ckptDir: *ckptDir,
			snapshot: *snapshot, snapshotEvery: *snapEvery,
			listen: *listen, notifyURL: *notifyURL,
			exemplars:   *exempl,
			readTimeout: *readTimeout, poll: *poll,
			reconnectAttempts: *reconnects,
			verifyBatch:       *verifyBatch,
		})
	}
	return runBatch(ctx, opts, *kinds, *limit, *check, *progress)
}

// runBatch is the original one-shot mode: build the dataset, print the
// anomaly feed (or answer one -check query).
func runBatch(ctx context.Context, opts pipeline.Options, kinds string, limit int, check string, progress time.Duration) error {
	fmt.Fprintln(os.Stderr, "asnwatch: building dataset...")
	var stopProgress func()
	if progress > 0 {
		opts.Obs = obs.New()
		stopProgress = watchProgress(opts.Obs.Registry, progress)
	}
	ds, err := pipeline.RunContext(ctx, opts)
	if stopProgress != nil {
		stopProgress()
	}
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "asnwatch: build cancelled")
		return nil
	}
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "asnwatch:", ds.Health.Summary())

	if check != "" {
		return runCheck(ds, check)
	}

	want := map[string]bool{}
	for _, k := range strings.Split(kinds, ",") {
		if k = strings.TrimSpace(k); k != "" {
			want[k] = true
		}
	}
	events := ds.Joint.WatchEvents(core.DefaultSquatParams())
	printed := 0
	for _, e := range events {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "asnwatch: interrupted")
			break
		}
		if len(want) > 0 && !want[e.Kind.String()] {
			continue
		}
		victim := ""
		if e.Victim != 0 {
			victim = " victim=AS" + e.Victim.String()
		}
		fmt.Printf("%s  %-22s AS%-11s %s..%s%s  %s\n",
			e.Day, e.Kind, e.ASN, e.Span.Start, e.Span.End, victim, e.Detail)
		printed++
		if limit > 0 && printed >= limit {
			break
		}
	}
	fmt.Fprintf(os.Stderr, "asnwatch: %d events (%d total in feed)\n", printed, len(events))
	return nil
}

// runSimFeed renders the window's collector days into the day directory
// one at a time — the stand-in for a growing real-world archive that
// the tail daemon (a separate process) follows.
func runSimFeed(ctx context.Context, cfg worldsim.Config, dir string, every time.Duration) error {
	w, err := stream.NewDirWriter(dir)
	if err != nil {
		return err
	}
	inf := collector.New(worldsim.Generate(cfg))
	fmt.Fprintf(os.Stderr, "asnwatch: feeding %s..%s into %s every %v\n", cfg.Start, cfg.End, dir, every)
	tick := time.NewTicker(every)
	defer tick.Stop()
	n := 0
	it := inf.IterRange(cfg.Start, cfg.End)
	for it.Next() {
		ribs, upds, err := it.MRT()
		if err != nil {
			return fmt.Errorf("rendering day %s: %w", it.Day(), err)
		}
		if err := w.WriteDay(stream.DayFromMRT(it.Day(), ribs, upds)); err != nil {
			return err
		}
		n++
		select {
		case <-ctx.Done():
			fmt.Fprintf(os.Stderr, "asnwatch: feed stopped after %d days\n", n)
			return nil
		case <-tick.C:
		}
	}
	fmt.Fprintf(os.Stderr, "asnwatch: feed complete, %d days published\n", n)
	return nil
}

// tailConfig carries the -tail flags into the daemon.
type tailConfig struct {
	dir, ckptDir      string
	snapshot          string
	snapshotEvery     int
	listen, notifyURL string
	exemplars         int
	readTimeout, poll time.Duration
	reconnectAttempts int
	verifyBatch       bool
}

// runTail is the streaming daemon: tail the day directory with durable
// checkpoints, optionally serving the latest snapshot over HTTP (each
// publish swaps a new generation in without dropping requests) and
// optionally proving batch equivalence once the window completes.
func runTail(ctx context.Context, opts pipeline.Options, cfg tailConfig) error {
	o := obs.New()
	src := stream.NewDirSource(cfg.dir, stream.DirOptions{ReadTimeout: cfg.readTimeout, Poll: cfg.poll})

	// Serving state: created lazily on the first published snapshot
	// (there is nothing to serve before it), then hot-swapped per
	// publish via the reloader's verified generation swap.
	var (
		tl       *stream.Tailer
		serveMu  sync.Mutex
		reloader *serve.Reloader
		serveErr = make(chan error, 1)
	)
	onSnapshot := func(day dates.Day, snap *lifestore.Snapshot) {
		fmt.Fprintf(os.Stderr, "asnwatch: published snapshot through %s (%d ASNs)\n", day, snap.Meta.ASNCount)
		if cfg.listen != "" {
			serveMu.Lock()
			if reloader == nil {
				rl, err := startTailServer(ctx, o, tl, snap, day, cfg, serveErr)
				if err != nil {
					fmt.Fprintln(os.Stderr, "asnwatch: serving disabled:", err)
					cfg.listen = "" // don't retry every publish
				} else {
					reloader = rl
				}
			} else if _, err := reloader.Reload(ctx); err != nil && ctx.Err() == nil {
				fmt.Fprintln(os.Stderr, "asnwatch: snapshot reload failed, previous generation still serving:", err)
			}
			serveMu.Unlock()
		}
		if cfg.notifyURL != "" {
			notify(cfg.notifyURL, day, snap)
		}
	}

	tl, err := stream.NewTailer(stream.Options{
		Pipeline:      opts,
		Source:        src,
		CheckpointDir: cfg.ckptDir,
		SnapshotPath:  cfg.snapshot,
		SnapshotEvery: cfg.snapshotEvery,
		Reconnect:     faults.RetryPolicy{MaxAttempts: cfg.reconnectAttempts},
		Obs:           o,
		OnSnapshot:    onSnapshot,
	})
	if err != nil {
		return err
	}
	if rec := tl.Recovery(); rec.Fresh {
		fmt.Fprintln(os.Stderr, "asnwatch: no checkpoint, tailing from the start of the window")
	} else {
		fmt.Fprintf(os.Stderr, "asnwatch: resuming from checkpoint (last day %s, torn temps %d, corrupt %d, used prev %t)\n",
			tl.Status().LastCommittedDay, rec.TornTemps, rec.CorruptCheckpoints, rec.UsedPrev)
	}

	if err := tl.Run(ctx); err != nil {
		return err
	}
	st := tl.Status()
	fmt.Fprintf(os.Stderr, "asnwatch: tail stopped: %d days committed, lag %d days, %d stale reads, %d reconnects\n",
		st.DaysCommitted, st.IngestLagDays, st.StaleReads, st.Reconnects)

	if cfg.verifyBatch {
		if st.IngestLagDays != 0 {
			return fmt.Errorf("verify-batch: window incomplete, %d days of lag", st.IngestLagDays)
		}
		return verifyAgainstBatch(ctx, opts, tl)
	}

	// Window complete (or drained) with a live server: keep serving
	// until the shutdown signal.
	serveMu.Lock()
	serving := reloader != nil
	serveMu.Unlock()
	if serving && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "asnwatch: window complete, serving until shutdown")
		return <-serveErr
	}
	if serving {
		return <-serveErr // drain the server goroutine on shutdown
	}
	return nil
}

// startTailServer brings up the HTTP side on the first snapshot: a
// Swappable over the in-memory snapshot, a Reloader whose opener always
// adopts the tailer's latest publication, and the hardened server with
// the tailer's Status wired into /v1/health as "ingest".
func startTailServer(ctx context.Context, o *obs.Obs, tl *stream.Tailer, snap *lifestore.Snapshot, day dates.Day, cfg tailConfig, serveErr chan error) (*serve.Reloader, error) {
	open := serve.OpenFunc(func(context.Context) (serve.Source, io.Closer, string, error) {
		cur, curDay := tl.Snapshot()
		if cur == nil {
			return nil, nil, "", errors.New("no snapshot published yet")
		}
		return lifestore.NewInMemory(cur), nil, fmt.Sprintf("tail@%s", curDay), nil
	})
	sw := serve.NewSwappable(lifestore.NewInMemory(snap), nil, fmt.Sprintf("tail@%s", day))
	rl := serve.NewReloader(sw, open, o.Registry)
	srv := serve.New(sw, serve.Options{
		Obs:              o,
		Reloader:         rl,
		Ingest:           func() any { return tl.Status() },
		ExemplarCapacity: cfg.exemplars,
	})
	ln, err := serve.Listen(cfg.listen)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "asnwatch: serving live snapshot on %s\n", ln.Addr())
	go func() { serveErr <- serve.Run(ctx, ln, srv, serve.HTTPOptions{}) }()
	return rl, nil
}

// verifyAgainstBatch runs the whole-window batch pipeline and requires
// its snapshot to be byte-identical to the tail's final publication —
// the crash-equivalence property, checked live (make tail-smoke).
func verifyAgainstBatch(ctx context.Context, opts pipeline.Options, tl *stream.Tailer) error {
	snap, day := tl.Snapshot()
	if snap == nil {
		return errors.New("verify-batch: the tail published no snapshot")
	}
	got, err := lifestore.Encode(snap)
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "asnwatch: verify-batch: running the batch pipeline...")
	ds, err := pipeline.RunContext(ctx, opts)
	if err != nil {
		return err
	}
	want, err := lifestore.Encode(lifestore.Capture(ds))
	if err != nil {
		return err
	}
	if !bytes.Equal(got, want) {
		return fmt.Errorf("verify-batch: tailed snapshot through %s differs from the batch build (%d vs %d bytes)", day, len(got), len(want))
	}
	fmt.Fprintf(os.Stderr, "asnwatch: verify-batch OK: tailed snapshot is byte-identical to the batch build (%d bytes)\n", len(got))
	return nil
}

// notify POSTs a small JSON record after a publish — the hook an
// alerting pipeline or cache warmer listens on. Best-effort: a dead
// receiver must not stall ingestion.
func notify(url string, day dates.Day, snap *lifestore.Snapshot) {
	body := fmt.Sprintf(`{"day":%q,"asns":%d,"adminLives":%d,"opLives":%d}`,
		day, snap.Meta.ASNCount, snap.Meta.AdminLives, snap.Meta.OpLives)
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		fmt.Fprintln(os.Stderr, "asnwatch: notify failed:", err)
		return
	}
	resp.Body.Close()
}

// watchProgress samples the build's registry counters every interval
// and prints a liveness line: the scan publishes per-day deltas, so
// days, route records and quarantines all move while the run is going.
// The returned stop function ends the sampler and waits for it.
func watchProgress(reg *obs.Registry, every time.Duration) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(every)
		defer tick.Stop()
		var lastRoutes float64
		last := time.Now()
		for {
			select {
			case <-done:
				return
			case now := <-tick.C:
				days, _ := reg.Value(pipeline.MetricDaysProcessed)
				routes, _ := reg.Value(pipeline.MetricRoutes)
				quar, _ := reg.Sum(pipeline.MetricQuarantined)
				rate := (routes - lastRoutes) / now.Sub(last).Seconds()
				fmt.Fprintf(os.Stderr, "asnwatch: progress days=%d routes=%d (%.0f records/s) quarantined=%d\n",
					int64(days), int64(routes), rate, int64(quar))
				lastRoutes, last = routes, now
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

// runCheck answers one "was this ASN delegated on this day" query — the
// §9 filtering primitive.
func runCheck(ds *pipeline.Dataset, query string) error {
	parts := strings.SplitN(query, ":", 2)
	if len(parts) != 2 {
		return fmt.Errorf("bad -check %q, want ASN:YYYY-MM-DD", query)
	}
	a, err := asn.Parse(parts[0])
	if err != nil {
		return err
	}
	day, err := dates.Parse(parts[1])
	if err != nil {
		return err
	}
	v := core.NewValidator(ds.Admin)
	switch {
	case a.Reserved():
		fmt.Printf("AS%s on %s: BOGON (special-purpose AS number)\n", a, day)
	case v.DelegatedOn(a, day):
		fmt.Printf("AS%s on %s: DELEGATED\n", a, day)
	case v.EverDelegated(a):
		fmt.Printf("AS%s on %s: NOT DELEGATED on this day (but delegated at another time)\n", a, day)
	default:
		fmt.Printf("AS%s on %s: NEVER DELEGATED\n", a, day)
	}
	return nil
}
