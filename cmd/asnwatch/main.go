// Command asnwatch emits the chronological anomaly feed the paper's §9
// proposes building on its datasets: dormant-ASN awakenings,
// post-deallocation use, never-delegated origins, lookalike (fat-finger)
// origins and large internal-ASN leaks, each tagged with the §6 evidence
// behind it.
//
// Usage:
//
//	asnwatch [flags]
//
//	-kinds dormant-awakening,post-deallocation-use   filter event kinds
//	-limit 50                                        stop after N events
//	-check ASN:YYYY-MM-DD                            one delegation check and exit
//	-progress 2s                                     periodic build progress line
//
// World/pipeline flags mirror cmd/parallellives (-scale, -seed, -start,
// -end).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"parallellives/internal/asn"
	"parallellives/internal/core"
	"parallellives/internal/dates"
	"parallellives/internal/obs"
	"parallellives/internal/pipeline"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "asnwatch:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scale    = flag.Float64("scale", 0.04, "world scale")
		seed     = flag.Int64("seed", 1, "simulation seed")
		start    = flag.String("start", "2003-10-09", "window start")
		end      = flag.String("end", "2021-03-01", "window end")
		kinds    = flag.String("kinds", "", "comma list of event kinds (default: all)")
		limit    = flag.Int("limit", 0, "stop after N events (0 = all)")
		check    = flag.String("check", "", "one delegation check, ASN:YYYY-MM-DD")
		policy   = flag.String("fault-policy", "failfast", "input damage handling: failfast or degrade")
		progress = flag.Duration("progress", 0, "print a build progress line every interval, e.g. 2s (0 disables)")
	)
	flag.Parse()

	opts := pipeline.DefaultOptions()
	opts.World.Scale = *scale
	opts.World.Seed = *seed
	var err error
	if opts.FaultPolicy, err = pipeline.ParseFaultPolicy(*policy); err != nil {
		return err
	}
	if opts.World.Start, err = dates.Parse(*start); err != nil {
		return err
	}
	if opts.World.End, err = dates.Parse(*end); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "asnwatch: building dataset...")
	var stopProgress func()
	if *progress > 0 {
		opts.Obs = obs.New()
		stopProgress = watchProgress(opts.Obs.Registry, *progress)
	}
	ds, err := pipeline.Run(opts)
	if stopProgress != nil {
		stopProgress()
	}
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "asnwatch:", ds.Health.Summary())

	if *check != "" {
		return runCheck(ds, *check)
	}

	want := map[string]bool{}
	for _, k := range strings.Split(*kinds, ",") {
		if k = strings.TrimSpace(k); k != "" {
			want[k] = true
		}
	}
	// A watch feed can be long; let Ctrl-C cut it off cleanly with the
	// summary line instead of killing the process mid-write.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	events := ds.Joint.WatchEvents(core.DefaultSquatParams())
	printed := 0
	for _, e := range events {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "asnwatch: interrupted")
			break
		}
		if len(want) > 0 && !want[e.Kind.String()] {
			continue
		}
		victim := ""
		if e.Victim != 0 {
			victim = " victim=AS" + e.Victim.String()
		}
		fmt.Printf("%s  %-22s AS%-11s %s..%s%s  %s\n",
			e.Day, e.Kind, e.ASN, e.Span.Start, e.Span.End, victim, e.Detail)
		printed++
		if *limit > 0 && printed >= *limit {
			break
		}
	}
	fmt.Fprintf(os.Stderr, "asnwatch: %d events (%d total in feed)\n", printed, len(events))
	return nil
}

// watchProgress samples the build's registry counters every interval
// and prints a liveness line: the scan publishes per-day deltas, so
// days, route records and quarantines all move while the run is going.
// The returned stop function ends the sampler and waits for it.
func watchProgress(reg *obs.Registry, every time.Duration) (stop func()) {
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(every)
		defer tick.Stop()
		var lastRoutes float64
		last := time.Now()
		for {
			select {
			case <-done:
				return
			case now := <-tick.C:
				days, _ := reg.Value(pipeline.MetricDaysProcessed)
				routes, _ := reg.Value(pipeline.MetricRoutes)
				quar, _ := reg.Sum(pipeline.MetricQuarantined)
				rate := (routes - lastRoutes) / now.Sub(last).Seconds()
				fmt.Fprintf(os.Stderr, "asnwatch: progress days=%d routes=%d (%.0f records/s) quarantined=%d\n",
					int64(days), int64(routes), rate, int64(quar))
				lastRoutes, last = routes, now
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

// runCheck answers one "was this ASN delegated on this day" query — the
// §9 filtering primitive.
func runCheck(ds *pipeline.Dataset, query string) error {
	parts := strings.SplitN(query, ":", 2)
	if len(parts) != 2 {
		return fmt.Errorf("bad -check %q, want ASN:YYYY-MM-DD", query)
	}
	a, err := asn.Parse(parts[0])
	if err != nil {
		return err
	}
	day, err := dates.Parse(parts[1])
	if err != nil {
		return err
	}
	v := core.NewValidator(ds.Admin)
	switch {
	case a.Reserved():
		fmt.Printf("AS%s on %s: BOGON (special-purpose AS number)\n", a, day)
	case v.DelegatedOn(a, day):
		fmt.Printf("AS%s on %s: DELEGATED\n", a, day)
	case v.EverDelegated(a):
		fmt.Printf("AS%s on %s: NOT DELEGATED on this day (but delegated at another time)\n", a, day)
	default:
		fmt.Printf("AS%s on %s: NEVER DELEGATED\n", a, day)
	}
	return nil
}
