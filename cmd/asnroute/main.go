// Command asnroute fronts a set of shard servers (asnserve processes,
// each serving one asnshard-cut file) as a single HTTP surface:
//
//	asnroute -listen :8080 -shards http://127.0.0.1:8081,http://127.0.0.1:8082
//
// The router handshakes with every shard at startup (/v1/shard),
// verifies the set forms one complete plan, and then routes: per-ASN
// reads to the owning range, aggregate reads by scatter-gather with a
// deterministic lowest-index winner (or -aggregate hash to pin each
// request key to one shard), /v1/stages to the lowest healthy shard.
// Each shard sits behind its own circuit breaker; -policy picks what
// aggregates do when shards are down (partial responses with the
// X-Parallellives-Partial header, or strict 503s). POST /v1/admin/reload
// fans out to every shard. See the router package docs and DESIGN.md
// §12 for the full semantics.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"parallellives/internal/obs"
	"parallellives/internal/router"
	"parallellives/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "asnroute:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen     = flag.String("listen", ":8080", "address to serve on")
		shards     = flag.String("shards", "", "comma-separated shard base URLs (required)")
		policy     = flag.String("policy", router.PolicyPartial, "aggregate degradation policy: partial or strict")
		aggregate  = flag.String("aggregate", router.AggregateScatter, "aggregate routing: scatter or hash")
		cacheSize  = flag.Int("cache", 256, "router response-cache capacity (entries, -1 disables)")
		maxInfl    = flag.Int("max-inflight", 512, "concurrent-request admission cap (-1 disables shedding)")
		reqTimeout = flag.Duration("request-timeout", 10*time.Second, "per-request deadline (-1ns disables)")
		brkThresh  = flag.Int("breaker-threshold", 5, "consecutive failures that open a shard's breaker")
		brkCool    = flag.Duration("breaker-cooldown", 5*time.Second, "breaker open time before a half-open probe")
		handshake  = flag.Duration("handshake-timeout", 10*time.Second, "startup window for every shard to report its identity")
		probe      = flag.Duration("probe-interval", 2*time.Second, "background shard probe cadence")
		scrape     = flag.Duration("scrape-interval", 5*time.Second, "federation scrape cadence: how often each shard's /metrics folds into the fleet rollup (-1s disables)")
		exempl     = flag.Int("exemplars", 32, "slow/error request exemplars kept for /v1/debug/slow (-1 disables capture)")
		drain      = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
	)
	flag.Parse()

	if *shards == "" {
		return fmt.Errorf("pass -shards with at least one shard URL")
	}
	var urls []string
	for _, u := range strings.Split(*shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	o := obs.New()
	fmt.Fprintf(os.Stderr, "asnroute: handshaking with %d shard(s)...\n", len(urls))
	rt, err := router.New(ctx, router.Options{
		Shards:           urls,
		Policy:           *policy,
		Aggregate:        *aggregate,
		CacheSize:        *cacheSize,
		MaxInFlight:      *maxInfl,
		RequestTimeout:   *reqTimeout,
		BreakerThreshold: *brkThresh,
		BreakerCooldown:  *brkCool,
		HandshakeTimeout: *handshake,
		ScrapeInterval:   *scrape,
		ExemplarCapacity: *exempl,
		Obs:              o,
	})
	if err != nil {
		return err
	}

	ln, err := serve.Listen(*listen)
	if err != nil {
		return err
	}
	stopProbes := rt.Start(ctx, *probe)
	defer stopProbes()
	fmt.Fprintf(os.Stderr, "asnroute: routing %d shard(s) on %s (policy=%s, aggregate=%s)\n",
		len(urls), ln.Addr(), *policy, *aggregate)

	err = serve.Run(ctx, ln, rt, serve.HTTPOptions{DrainTimeout: *drain})
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "asnroute: shut down after drain")
	}
	return err
}
