// Command asnroute fronts a fleet of shard servers (asnserve
// processes, each serving one asnshard-cut file, optionally several
// replicas per cut) as a single HTTP surface:
//
//	asnroute -listen :8080 -shards http://127.0.0.1:8081,http://127.0.0.1:8082
//	asnroute -listen :8080 \
//	    -shards http://127.0.0.1:8081,http://127.0.0.1:8082 \
//	    -shards http://127.0.0.1:9081,http://127.0.0.1:9082   # second replica of each range
//
// The router handshakes with every URL at startup (/v1/shard), groups
// replicas by their self-reported shard index, verifies the set forms
// one complete plan, and then routes: per-ASN reads to the owning
// range's replica set (round-robin across healthy replicas, failing
// over before surfacing any error), aggregate reads by scatter-gather
// with a deterministic lowest-index winner (or -aggregate hash to pin
// each request key to one range), /v1/stages to the lowest healthy
// range. Each replica sits behind its own circuit breaker; -policy
// picks what aggregates do when whole ranges are dark (partial
// responses with the X-Parallellives-Partial header, or strict 503s).
// -hedge-after arms hedged reads against the next replica. POST
// /v1/admin/reload fans the snapshot reload out to every replica; POST
// /v1/admin/topology/reload — or SIGHUP — re-runs the handshake and
// swaps the routing table, admitting new replicas and retiring dead
// ones without dropping a request. See the router package docs and
// DESIGN.md §12/§14 for the full semantics.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"parallellives/internal/obs"
	"parallellives/internal/router"
	"parallellives/internal/serve"
)

// shardList collects -shards values: the flag is repeatable and each
// value may itself be comma-separated, so replica groups can be listed
// per line in scripts without building one giant argument.
type shardList []string

func (s *shardList) String() string { return strings.Join(*s, ",") }

func (s *shardList) Set(v string) error {
	for _, u := range strings.Split(v, ",") {
		if u = strings.TrimSpace(u); u != "" {
			*s = append(*s, u)
		}
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "asnroute:", err)
		os.Exit(1)
	}
}

func run() error {
	var shards shardList
	flag.Var(&shards, "shards", "shard/replica base URLs, comma-separated; repeatable (several URLs reporting the same shard index form that range's replica set)")
	var (
		listen      = flag.String("listen", ":8080", "address to serve on")
		policy      = flag.String("policy", router.PolicyPartial, "aggregate degradation policy: partial or strict")
		aggregate   = flag.String("aggregate", router.AggregateScatter, "aggregate routing: scatter or hash")
		replicasMin = flag.Int("replicas-min", 1, "minimum replicas per shard range for a topology to be accepted")
		hedgeAfter  = flag.Duration("hedge-after", 0, "launch a hedged read against the next replica after this latency (0 disables)")
		cacheSize   = flag.Int("cache", 256, "router response-cache capacity (entries, -1 disables)")
		maxInfl     = flag.Int("max-inflight", 512, "concurrent-request admission cap (-1 disables shedding)")
		reqTimeout  = flag.Duration("request-timeout", 10*time.Second, "per-request deadline (-1ns disables)")
		brkThresh   = flag.Int("breaker-threshold", 5, "consecutive failures that open a replica's breaker")
		brkCool     = flag.Duration("breaker-cooldown", 5*time.Second, "breaker open time before a half-open probe")
		handshake   = flag.Duration("handshake-timeout", 10*time.Second, "startup window for every replica to report its identity (topology reloads retire replicas that miss it)")
		probe       = flag.Duration("probe-interval", 2*time.Second, "background replica probe cadence")
		scrape      = flag.Duration("scrape-interval", 5*time.Second, "federation scrape cadence: how often each replica's /metrics folds into the fleet rollup (-1s disables)")
		exempl      = flag.Int("exemplars", 32, "slow/error request exemplars kept for /v1/debug/slow (-1 disables capture)")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain deadline")
	)
	flag.Parse()

	if len(shards) == 0 {
		return fmt.Errorf("pass -shards with at least one shard URL")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	o := obs.New()
	fmt.Fprintf(os.Stderr, "asnroute: handshaking with %d replica(s)...\n", len(shards))
	rt, err := router.New(ctx, router.Options{
		Shards:           shards,
		Policy:           *policy,
		Aggregate:        *aggregate,
		ReplicasMin:      *replicasMin,
		HedgeAfter:       *hedgeAfter,
		CacheSize:        *cacheSize,
		MaxInFlight:      *maxInfl,
		RequestTimeout:   *reqTimeout,
		BreakerThreshold: *brkThresh,
		BreakerCooldown:  *brkCool,
		HandshakeTimeout: *handshake,
		ScrapeInterval:   *scrape,
		ExemplarCapacity: *exempl,
		Obs:              o,
	})
	if err != nil {
		return err
	}

	ln, err := serve.Listen(*listen)
	if err != nil {
		return err
	}
	stopProbes := rt.Start(ctx, *probe)
	defer stopProbes()

	// SIGHUP re-runs the handshake and swaps the routing table — the
	// signal face of POST /v1/admin/topology/reload.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			if report, err := rt.RebuildTopology(ctx); err != nil {
				if ctx.Err() == nil {
					fmt.Fprintln(os.Stderr, "asnroute: topology reload failed, previous topology retained:", err)
				}
			} else {
				fmt.Fprintf(os.Stderr, "asnroute: topology generation %d: %d range(s), %d replica(s) (%d admitted, %d retired)\n",
					report.Generation, report.Ranges, report.Replicas, len(report.Admitted), len(report.Retired))
			}
		}
	}()

	fmt.Fprintf(os.Stderr, "asnroute: routing %d replica(s) on %s (policy=%s, aggregate=%s)\n",
		len(shards), ln.Addr(), *policy, *aggregate)

	err = serve.Run(ctx, ln, rt, serve.HTTPOptions{DrainTimeout: *drain})
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "asnroute: shut down after drain")
	}
	return err
}
