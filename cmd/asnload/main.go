// Command asnload drives an open-loop load test against a serving tier
// (one asnserve, or an asnroute front) and prints one JSON result row:
//
//	asnload -target http://127.0.0.1:8080 -snapshot lives.snap \
//	        -rate 2000 -duration 30s
//
// The arrival schedule is fixed up front (open loop): latency is
// measured from each request's scheduled start, so an overloaded
// server shows its queueing delay in p99/p999 instead of slowing the
// generator down. The per-ASN population is sampled from the snapshot
// file (-working-set caps the hot set); -mix reweights the endpoint
// classes; the error taxonomy separates sheds (503 + Retry-After) from
// hard failures. Against a replicated asnroute, replica failovers and
// hedge wins absorbed by the fleet are counted too — the numbers a
// chaos drill asserts on ("failovers > 0, errors == 0").
// scripts/bench_serve.sh assembles rows from this command into
// BENCH_serve.json.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"parallellives/internal/lifestore"
	"parallellives/internal/loadgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "asnload:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		target   = flag.String("target", "http://127.0.0.1:8080", "base URL of the tier under test")
		snapshot = flag.String("snapshot", "", "snapshot file to sample the ASN population from (required when the mix has ASN traffic)")
		rate     = flag.Float64("rate", 1000, "scheduled arrival rate (requests/second)")
		duration = flag.Duration("duration", 10*time.Second, "scheduled load duration")
		inflight = flag.Int("inflight", 512, "client-side concurrent-request cap; arrivals beyond it are counted dropped")
		mixFlag  = flag.String("mix", "asn=70,series=20,taxonomy=8,stages=2", "endpoint class weights")
		working  = flag.Int("working-set", 0, "sample only the first N ASNs of the population (0 = all)")
		miss     = flag.Float64("miss", 0.02, "fraction of ASN lookups aimed at uniformly random (absent) ASNs")
		strides  = flag.String("strides", "1,7,30", "series stride variants to rotate through")
		seed     = flag.Int64("seed", 1, "request-sequence seed")
		label    = flag.String("label", "", "row label copied into the output")
	)
	flag.Parse()

	mix, err := parseMix(*mixFlag)
	if err != nil {
		return err
	}
	strideList, err := parseInts(*strides)
	if err != nil {
		return fmt.Errorf("bad -strides: %w", err)
	}

	opts := loadgen.Options{
		Target:      strings.TrimRight(*target, "/"),
		Rate:        *rate,
		Duration:    *duration,
		MaxInFlight: *inflight,
		Mix:         mix,
		WorkingSet:  *working,
		MissRatio:   *miss,
		Strides:     strideList,
		Seed:        *seed,
	}
	if mix.ASN > 0 && *miss < 1 {
		if *snapshot == "" {
			return fmt.Errorf("the mix has ASN traffic: pass -snapshot to sample a population (or -miss 1)")
		}
		st, err := lifestore.Open(*snapshot)
		if err != nil {
			return err
		}
		opts.ASNs = st.ASNs()
		st.Close()
		fmt.Fprintf(os.Stderr, "asnload: sampling %d ASNs from %s", len(opts.ASNs), *snapshot)
		if *working > 0 && *working < len(opts.ASNs) {
			fmt.Fprintf(os.Stderr, " (working set %d)", *working)
		}
		fmt.Fprintln(os.Stderr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(os.Stderr, "asnload: %s rate=%g duration=%s mix=%s\n", opts.Target, *rate, *duration, *mixFlag)
	res, err := loadgen.Run(ctx, opts)
	if err != nil {
		return err
	}
	if res.Failovers > 0 || res.HedgeWins > 0 {
		fmt.Fprintf(os.Stderr, "asnload: fleet absorbed %d failover(s), %d hedge win(s)\n",
			res.Failovers, res.HedgeWins)
	}

	row := struct {
		Label string `json:"label,omitempty"`
		*loadgen.Result
	}{Label: *label, Result: res}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(row)
}

// parseMix reads "asn=70,series=20,taxonomy=8,stages=2" (missing keys
// are zero).
func parseMix(s string) (loadgen.Mix, error) {
	var m loadgen.Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("bad -mix entry %q (want key=weight)", part)
		}
		w, err := strconv.Atoi(v)
		if err != nil || w < 0 {
			return m, fmt.Errorf("bad -mix weight %q", part)
		}
		switch k {
		case "asn":
			m.ASN = w
		case "series":
			m.Series = w
		case "taxonomy":
			m.Taxonomy = w
		case "stages":
			m.Stages = w
		default:
			return m, fmt.Errorf("unknown -mix class %q (want asn, series, taxonomy or stages)", k)
		}
	}
	return m, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("%q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
