// Command asnshard cuts an unsharded snapshot into N self-contained
// shard files, each carrying one contiguous ASN range plus the global
// sections (taxonomy, series, health) whole:
//
//	asnshard -snapshot lives.snap -shards 4 -out shards/lives.%d.snap
//
// The cut is deterministic for a given snapshot and count — the plan's
// fingerprint is recorded in every shard file, and the router refuses
// to assemble shards from different plans. Each output is itself a
// valid snapshot: asnserve serves a shard file unmodified, reporting
// its range on /v1/shard.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"parallellives/internal/lifestore"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "asnshard:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		snapshot = flag.String("snapshot", "lives.snap", "unsharded snapshot to cut")
		shards   = flag.Int("shards", 4, "number of shard files to write")
		out      = flag.String("out", "lives.%d.snap", "output path pattern; %d becomes the shard index")
		verify   = flag.Bool("verify", false, "reopen every shard and verify block checksums after writing")
	)
	flag.Parse()

	if !strings.Contains(*out, "%d") {
		return fmt.Errorf("-out %q must contain %%d for the shard index", *out)
	}
	if dir := filepath.Dir(*out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}

	t0 := time.Now()
	st, err := lifestore.Open(*snapshot)
	if err != nil {
		return err
	}
	snap, err := st.Snapshot()
	st.Close()
	if err != nil {
		return err
	}
	if snap.Shard != nil {
		return fmt.Errorf("%s is already shard %d/%d; cut from the unsharded snapshot", *snapshot, snap.Shard.Index, snap.Shard.Count)
	}

	plan, paths, err := lifestore.SaveSharded(snap, *shards, *out)
	if err != nil {
		return err
	}
	for i, path := range paths {
		info, err := os.Stat(path)
		if err != nil {
			return err
		}
		r := plan.Ranges[i]
		fmt.Fprintf(os.Stderr, "asnshard: %s shard %d/%d AS%s-AS%s (%d ASNs, %d bytes)\n",
			path, i, plan.Count, r.Lo, r.Hi, r.ASNs, info.Size())
	}
	if *verify {
		for _, path := range paths {
			sst, si, err := lifestore.OpenShard(path)
			if err != nil {
				return fmt.Errorf("verifying %s: %w", path, err)
			}
			if err := sst.VerifyBlocks(); err != nil {
				sst.Close()
				return fmt.Errorf("verifying %s: %w", path, err)
			}
			sst.Close()
			if si.Sum != plan.Sum {
				return fmt.Errorf("%s carries fingerprint %08x, plan is %08x", path, si.Sum, plan.Sum)
			}
		}
		fmt.Fprintln(os.Stderr, "asnshard: verify OK (all shards reopen and checksum clean)")
	}
	fmt.Fprintf(os.Stderr, "asnshard: %d shards (plan %08x) written in %v\n",
		plan.Count, plan.Sum, time.Since(t0).Round(time.Millisecond))
	return nil
}
