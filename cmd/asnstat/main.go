// Command asnstat is the fleet dashboard: a one-shot (or polling)
// terminal view of a sharded serving tier, read entirely from one
// /metrics scrape of an asnroute router — or of a single asnserve
// process, which renders as a one-row fleet.
//
//	asnstat -url http://127.0.0.1:8080             # one shot
//	asnstat -url http://127.0.0.1:8080 -interval 2s # live, qps from deltas
//
// Against a router with federation enabled (the default), one row per
// replica comes from the parallellives_fleet_* rollup the router
// re-exports after scraping its fleet, plus the router's own per-replica
// breaker gauges:
//
//	SHARD  REPLICA  UP  BREAKER  GEN  REQS  QPS  P99(ms)  ERRS  LAG(d)
//
// REPLICA is the ordinal within the range's replica set (a 1-replica
// fleet shows ordinal 0 everywhere; a bare asnserve shows "-"). QPS
// needs two scrapes to difference, so it shows "-" on the first poll
// and in one-shot mode. Replicas whose last federation scrape failed
// show UP 0 with their last-known numbers. Run with -interval against a
// fresh router and the first row may be empty for one federation cycle
// (default 5s) — the rollup does not exist until the router has scraped
// its fleet once.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"parallellives/internal/obs"
	"parallellives/internal/router"
	"parallellives/internal/serve"
	"parallellives/internal/stream"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "asnstat:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		url      = flag.String("url", "http://127.0.0.1:8080", "router (or single asnserve) base URL")
		interval = flag.Duration("interval", 0, "poll cadence; 0 renders once and exits")
		count    = flag.Int("count", 0, "with -interval: stop after N renders (0 = until interrupted)")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-scrape HTTP timeout")
	)
	flag.Parse()

	client := &http.Client{Timeout: *timeout}
	base := strings.TrimRight(*url, "/")
	var prev map[string]float64
	var prevAt time.Time
	renders := 0
	for {
		samples, err := scrape(client, base+"/metrics")
		if err != nil {
			if *interval <= 0 {
				return err
			}
			fmt.Fprintf(os.Stderr, "asnstat: %v\n", err)
		} else {
			now := time.Now()
			rows := buildRows(samples)
			render(os.Stdout, base, rows, prev, now.Sub(prevAt))
			prev, prevAt = requestTotals(rows), now
		}
		renders++
		if *interval <= 0 || (*count > 0 && renders >= *count) {
			return nil
		}
		time.Sleep(*interval)
	}
}

func scrape(client *http.Client, url string) (obs.Samples, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s answered %d", url, resp.StatusCode)
	}
	return obs.ParseExposition(body)
}

// row is one line of the dashboard: one replica of the fleet, or the
// single process itself when asnstat points at a bare asnserve.
type row struct {
	shard      string
	replica    string
	up         float64
	upKnown    bool
	breaker    string
	gen        float64
	genKnown   bool
	reqs, errs float64
	p99        float64
	lag        float64
	lagKnown   bool
}

// key identifies a row across scrapes (QPS differencing).
func (r row) key() string { return r.shard + "/" + r.replica }

// buildRows reads the fleet from one exposition. A router exports
// fleet_* series per (shard, replica) slot plus its own per-replica
// breaker gauges; a single asnserve exports serve_* series, which
// become one synthetic row.
func buildRows(samples obs.Samples) []row {
	replicas := map[string]*row{}
	get := func(shard, replica string) *row {
		k := shard + "/" + replica
		r, ok := replicas[k]
		if !ok {
			r = &row{shard: shard, replica: replica, breaker: "-"}
			replicas[k] = r
		}
		return r
	}
	for _, s := range samples {
		shard, hasShard := s.Labels["shard"]
		if !hasShard {
			continue
		}
		rep, hasRep := s.Labels["replica"]
		if !hasRep {
			rep = "-"
		}
		switch s.Name {
		case router.MetricFleetUp:
			r := get(shard, rep)
			r.up, r.upKnown = s.Value, true
		case router.MetricFleetGen:
			r := get(shard, rep)
			r.gen, r.genKnown = s.Value, true
		case router.MetricFleetRequests:
			get(shard, rep).reqs = s.Value
		case router.MetricFleetErrors:
			get(shard, rep).errs = s.Value
		case router.MetricFleetP99:
			get(shard, rep).p99 = s.Value
		case router.MetricFleetLag:
			r := get(shard, rep)
			r.lag, r.lagKnown = s.Value, true
		case router.MetricBreakerState:
			get(shard, rep).breaker = breakerName(s.Value)
		}
	}
	if len(replicas) == 0 {
		// Not a router (or federation off): render the process itself.
		r := &row{shard: "-", replica: "-", breaker: "-", up: 1, upKnown: true}
		r.reqs = samples.Sum(serve.MetricRequests, nil)
		r.errs = samples.Sum(serve.MetricErrors, nil)
		r.p99 = samples.Quantile(serve.MetricLatency, 0.99, nil)
		if v, ok := samples.Value(serve.MetricGeneration, nil); ok {
			r.gen, r.genKnown = v, true
		}
		if v, ok := samples.Value(stream.MetricIngestLagDays, nil); ok {
			r.lag, r.lagKnown = v, true
		}
		if r.reqs == 0 && r.errs == 0 {
			return nil
		}
		return []row{*r}
	}
	out := make([]row, 0, len(replicas))
	for _, r := range replicas {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		a, _ := strconv.Atoi(out[i].shard)
		b, _ := strconv.Atoi(out[j].shard)
		if a != b {
			return a < b
		}
		c, _ := strconv.Atoi(out[i].replica)
		d, _ := strconv.Atoi(out[j].replica)
		return c < d
	})
	return out
}

func breakerName(v float64) string {
	switch v {
	case 0:
		return "closed"
	case 1:
		return "open"
	case 2:
		return "half-open"
	}
	return fmt.Sprintf("?%g", v)
}

func requestTotals(rows []row) map[string]float64 {
	t := make(map[string]float64, len(rows))
	for _, r := range rows {
		t[r.key()] = r.reqs
	}
	return t
}

func render(w io.Writer, target string, rows []row, prev map[string]float64, dt time.Duration) {
	fmt.Fprintf(w, "%s  %s\n", target, time.Now().Format("15:04:05"))
	if len(rows) == 0 {
		fmt.Fprintln(w, "  (no fleet or serve metrics yet — federation may not have scraped)")
		return
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SHARD\tREPLICA\tUP\tBREAKER\tGEN\tREQS\tQPS\tP99(ms)\tERRS\tLAG(d)")
	for _, r := range rows {
		qps := "-"
		if prev != nil && dt > 0 {
			if p, ok := prev[r.key()]; ok && r.reqs >= p {
				qps = fmt.Sprintf("%.1f", (r.reqs-p)/dt.Seconds())
			}
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%.0f\t%s\t%.2f\t%.0f\t%s\n",
			r.shard, r.replica, optional(r.up, r.upKnown), r.breaker, optional(r.gen, r.genKnown),
			r.reqs, qps, r.p99*1000, r.errs, optional(r.lag, r.lagKnown))
	}
	tw.Flush()
}

func optional(v float64, known bool) string {
	if !known {
		return "-"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
