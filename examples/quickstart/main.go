// Quickstart: build a small dual-lens dataset and look at one ASN the
// way the paper's Listing 1 does — its administrative lifetime from the
// (restored) delegation files next to its operational lifetimes from BGP.
package main

import (
	"fmt"
	"log"

	"parallellives/internal/core"
	"parallellives/internal/dates"
	"parallellives/internal/pipeline"
	"parallellives/internal/report"
)

func main() {
	opts := pipeline.DefaultOptions()
	opts.World.Scale = 0.01
	opts.World.Start = dates.MustParse("2004-01-01")
	opts.World.End = dates.MustParse("2008-12-31")

	ds, err := pipeline.Run(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("dataset: %d administrative lifetimes (%d ASNs), %d operational lifetimes (%d ASNs)\n\n",
		len(ds.Admin.Lifetimes), ds.AdminStats.ASNs, len(ds.Ops.Lifetimes), ds.Ops.ASNs())

	// The four-way taxonomy of §6.
	fmt.Println(report.BuildTable3(ds.Joint).Text())

	// Walk one ASN through both dimensions, like the paper's Listing 1.
	// Pick the first complete-overlap lifetime with more than one
	// operational life — the interesting case.
	for ai, cat := range ds.Joint.AdminCat {
		if cat != core.CatComplete || len(ds.Joint.ContainedOps[ai]) < 2 {
			continue
		}
		al := ds.Admin.Lifetimes[ai]
		fmt.Printf("ASN %s — administrative life (%s):\n", al.ASN, al.RIR)
		fmt.Printf("  regDate=%s allocated %s .. %s (open=%v)\n",
			al.RegDate, al.Span.Start, al.Span.End, al.Open)
		fmt.Println("  operational lives in BGP:")
		for _, oi := range ds.Joint.ContainedOps[ai] {
			ol := ds.Ops.Lifetimes[oi]
			fmt.Printf("    %s .. %s (%d days)\n", ol.Span.Start, ol.Span.End, ol.Span.Days())
		}
		util := ds.Joint.Utilization()
		_ = util
		break
	}

	// How the restoration pipeline earned its keep on this archive.
	fmt.Printf("\nrestoration report: %+v\n", ds.Restored.Report)
}
