// RIR trends: the §5 bird's-eye view — per-registry alive counts in both
// dimensions (Figure 4), the RIPE-overtakes-ARIN crossovers, lifetime
// duration contrasts (Figure 5), re-allocation behaviour (Table 2), and
// the 16→32-bit transition (Figure 12).
package main

import (
	"fmt"
	"log"

	"parallellives/internal/asn"
	"parallellives/internal/pipeline"
	"parallellives/internal/report"
)

func main() {
	opts := pipeline.DefaultOptions()
	opts.World.Scale = 0.02
	ds, err := pipeline.Run(opts)
	if err != nil {
		log.Fatal(err)
	}
	start, end := ds.World.Config.Start, ds.World.Config.End

	f4 := report.BuildFigure4(ds.Joint, start, end, 365)
	fmt.Println(f4.Text())

	fmt.Println(report.BuildTable2(ds.Joint).Text())
	fmt.Println(report.BuildFigure5(ds.Admin).Text())

	// The 32-bit transition, sampled yearly: watch ARIN lag the younger
	// registries.
	f12 := report.BuildFigure12(ds.Restored, start, end, 365)
	last := len(f12.Days) - 1
	fmt.Println("32-bit share of allocated ASNs at window end:")
	for _, r := range asn.All() {
		n16, n32 := f12.Bit16[r][last], f12.Bit32[r][last]
		share := 0.0
		if n16+n32 > 0 {
			share = float64(n32) / float64(n16+n32)
		}
		fmt.Printf("  %-9s 16-bit %5d  32-bit %5d  (32-bit share %.1f%%)\n",
			r, n16, n32, 100*share)
	}

	fmt.Println()
	fmt.Println(report.BuildFigure10(ds.Admin).Text())
}
