// Archive: exercise the on-disk archive path end to end — export a
// simulated delegation archive to a directory in the RIR FTP naming
// convention, then run the §3.1 restoration over the files read back
// from disk with registry.NewDirSource, exactly as one would over a real
// downloaded archive. The reconstructed lifetimes must match the
// in-memory run.
package main

import (
	"fmt"
	"log"
	"os"

	"parallellives/internal/asn"
	"parallellives/internal/core"
	"parallellives/internal/dates"
	"parallellives/internal/registry"
	"parallellives/internal/restore"
	"parallellives/internal/worldsim"
)

func main() {
	cfg := worldsim.DefaultConfig()
	cfg.Scale = 0.01
	cfg.Start = dates.MustParse("2004-01-01")
	cfg.End = dates.MustParse("2006-12-31")
	world := worldsim.Generate(cfg)
	archive := registry.Build(world)

	dir, err := os.MkdirTemp("", "parallellives-archive-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	if err := archive.ExportDir(dir, cfg.Start, cfg.End); err != nil {
		log.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	fmt.Printf("exported %d delegation files to %s\n", len(entries), dir)

	// Restore from disk.
	var diskSources []registry.Source
	for _, r := range asn.All() {
		src, err := registry.NewDirSource(dir, r)
		if err != nil {
			log.Fatal(err)
		}
		diskSources = append(diskSources, src)
	}
	fromDisk := restore.Restore(diskSources, archive.ERXReference())
	diskLifetimes, diskStats := core.BuildAdminLifetimes(fromDisk)

	// Restore in memory for comparison.
	var memSources []registry.Source
	for _, r := range asn.All() {
		memSources = append(memSources, archive.TextSource(r))
	}
	fromMem := restore.Restore(memSources, archive.ERXReference())
	memLifetimes, _ := core.BuildAdminLifetimes(fromMem)

	fmt.Printf("lifetimes from disk: %d (%d ASNs); from memory: %d\n",
		len(diskLifetimes), diskStats.ASNs, len(memLifetimes))
	fmt.Printf("restoration report (disk): %+v\n", fromDisk.Report)

	if len(diskLifetimes) != len(memLifetimes) {
		log.Fatalf("MISMATCH: disk and in-memory restorations disagree")
	}
	for i := range diskLifetimes {
		if diskLifetimes[i] != memLifetimes[i] {
			log.Fatalf("MISMATCH at lifetime %d: %+v vs %+v",
				i, diskLifetimes[i], memLifetimes[i])
		}
	}
	fmt.Println("disk and in-memory restorations agree lifetime-for-lifetime")
}
