// Misconfig: the §6.4 outside-delegation walkthrough — classify every
// operational life with no administrative life into post-deallocation
// abuse, fat-finger origins (failed prepends and mistyped MOAS origins),
// large internal-ASN leaks, and leftovers, then verify each class against
// the simulation's planted ground truth.
package main

import (
	"fmt"
	"log"

	"parallellives/internal/core"
	"parallellives/internal/pipeline"
	"parallellives/internal/worldsim"
)

func main() {
	opts := pipeline.DefaultOptions()
	opts.World.Scale = 0.02
	ds, err := pipeline.Run(opts)
	if err != nil {
		log.Fatal(err)
	}

	out := ds.Joint.Outside()
	fmt.Printf("outside-delegation operational lives: %d findings\n", len(out.Findings))
	fmt.Printf("  post-deallocation ASNs: %d (hijack pattern: %d)\n",
		out.ASNsPostDealloc, out.HijackEvents)
	fmt.Printf("  never-allocated ASNs:   %d\n\n", out.ASNsNeverAllocated)

	fmt.Println("sample classified findings:")
	shown := map[core.OutsideKind]int{}
	for _, f := range out.Findings {
		if f.Bogon || shown[f.Kind] >= 3 {
			continue
		}
		shown[f.Kind]++
		switch f.Kind {
		case core.OutPostDealloc:
			flag := ""
			if f.Hijack {
				flag = "  ** hijack pattern"
			}
			fmt.Printf("  AS%-11s %s  %s..%s  dealloc+%dd, quiet %dd%s\n",
				f.ASN, f.Kind, f.Span.Start, f.Span.End,
				f.DaysSinceDealloc, f.DaysSincePrevOp, flag)
		case core.OutFatFingerPrepend, core.OutFatFingerMOAS:
			fmt.Printf("  AS%-11s %s  %s..%s  resembles AS%s\n",
				f.ASN, f.Kind, f.Span.Start, f.Span.End, f.Victim)
		default:
			fmt.Printf("  AS%-11s %s  %s..%s\n", f.ASN, f.Kind, f.Span.Start, f.Span.End)
		}
	}

	// Ground-truth comparison per class.
	fmt.Println("\nplanted vs classified:")
	checkClass(ds, out, "post-dealloc hijacks", ds.World.PostDeallocHijacks,
		func(f core.OutsideFinding) bool { return f.Kind == core.OutPostDealloc && f.Hijack })
	var planted []worldsim.Segment
	for _, s := range ds.World.FatFingers {
		if s.VictimASN != 0 {
			planted = append(planted, s)
		}
	}
	checkClass(ds, out, "fat-finger origins", planted,
		func(f core.OutsideFinding) bool {
			return f.Kind == core.OutFatFingerPrepend || f.Kind == core.OutFatFingerMOAS
		})
	checkClass(ds, out, "large internal leaks", ds.World.LargeLeaks,
		func(f core.OutsideFinding) bool { return f.Kind == core.OutLargeLeak })
}

func checkClass(ds *pipeline.Dataset, out core.OutsideProfile, name string,
	planted []worldsim.Segment, match func(core.OutsideFinding) bool) {
	hit := 0
	for _, seg := range planted {
		for _, f := range out.Findings {
			if f.ASN == seg.ASN && match(f) {
				hit++
				break
			}
		}
	}
	fmt.Printf("  %-22s planted %3d, classified %3d\n", name, len(planted), hit)
}
