// Squatting: apply the paper's §6.1.2 dormant-ASN squat filter — 1000+
// days of dormancy followed by an operational life under 5% of the
// administrative life — and inspect the findings: prefix spikes, shared
// upstreams (the hijack-factory pattern), and recall against the
// simulation's planted ground truth.
package main

import (
	"fmt"
	"log"
	"sort"

	"parallellives/internal/core"
	"parallellives/internal/pipeline"
)

func main() {
	opts := pipeline.DefaultOptions()
	opts.World.Scale = 0.02
	ds, err := pipeline.Run(opts)
	if err != nil {
		log.Fatal(err)
	}

	params := core.DefaultSquatParams()
	findings := ds.Joint.DetectDormantSquats(params)
	fmt.Printf("filter (dormancy >= %dd, relative duration <= %.0f%%) matched %d operational lives\n\n",
		params.MinDormancyDays, params.MaxRelDuration*100, len(findings))

	// Rank by prefix spike, the Figure 8 visual.
	sort.Slice(findings, func(i, j int) bool {
		return findings[i].PeakPrefixCount > findings[j].PeakPrefixCount
	})
	fmt.Println("top findings by daily prefix spike:")
	for i, f := range findings {
		if i >= 8 {
			break
		}
		up := "-"
		if len(f.Upstreams) > 0 {
			up = "AS" + f.Upstreams[0].String()
		}
		fmt.Printf("  AS%-10s woke %s after %4d dormant days, active %3d days (%.1f%% of life), peak %3d prefixes/day, upstream %s\n",
			f.ASN, f.OpSpan.Start, f.DormantDays, f.OpSpan.Days(), 100*f.RelDuration,
			f.PeakPrefixCount, up)
	}

	// Coordination: multiple squats sharing the same dominant upstream.
	groups := core.CoordinatedGroups(findings, 2)
	fmt.Printf("\ncoordinated groups (same dominant upstream, >=2 members): %d\n", len(groups))
	for up, group := range groups {
		fmt.Printf("  upstream AS%s carries %d squatted origins", up, len(group))
		if up == ds.World.HijackFactory {
			fmt.Printf("  <- the simulation's hijack factory")
		}
		fmt.Println()
	}

	// Recall against the planted ground truth (available only because
	// this is a simulation; the paper cross-validated against NANOG,
	// Spamhaus and BGPmon reports instead).
	detected := 0
	for _, seg := range ds.World.DormantSquats {
		for _, f := range findings {
			if f.ASN == seg.ASN && f.OpSpan.Overlaps(seg.Span) {
				detected++
				break
			}
		}
	}
	fmt.Printf("\nground truth: %d squats planted, %d recovered by the filter (%.0f%% recall)\n",
		len(ds.World.DormantSquats), detected,
		100*float64(detected)/float64(max(1, len(ds.World.DormantSquats))))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
