package delegation

import (
	"bytes"
	"testing"
)

// TestParsedFileDoesNotAliasInput pins the Parser contract: the parsed
// File (including its interned strings) must be fully independent of the
// input buffer, which callers like the registry text source recycle as a
// renderer scratch. We parse, render the file once, scribble the whole
// input buffer, and assert the file still renders identically.
func TestParsedFileDoesNotAliasInput(t *testing.T) {
	input := []byte("2|ripencc|20200101|4|19930101|20200101|+0000\n" +
		"ripencc|*|asn|*|3|summary\n" +
		"ripencc|FR|asn|3215|1|19950401|allocated|opaque-one\n" +
		"ripencc|DE|asn|3320|2|19950601|allocated|opaque-two\n" +
		"ripencc|ZZ|asn|64496|1||reserved\n")

	var p Parser
	f, errs := p.ParseLenient(input)
	if f == nil || len(errs) != 0 {
		t.Fatalf("parse failed: %v", errs)
	}
	var rd Renderer
	before := append([]byte(nil), rd.Render(f)...)

	for i := range input {
		input[i] = '#'
	}
	// The parser's interning map and field scratch are also reused across
	// files; push several other files through to recycle them.
	for i := 0; i < 5; i++ {
		p.ParseLenient([]byte("2|arin|20200102|1|19930101|20200102|+0000\n" +
			"arin|US|asn|701|1|19900801|assigned|other-org\n"))
	}

	after := rd.Render(f)
	if !bytes.Equal(before, after) {
		t.Fatal("parsed file changed after input buffer was scribbled and parser reused")
	}
}
