package delegation

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParseLenientSurvivesRandomMutation mutates a valid file at random
// and asserts the lenient parser never panics and keeps whatever lines
// still parse.
func TestParseLenientSurvivesRandomMutation(t *testing.T) {
	base := `2|ripencc|20210301|3|19930901|20210301|+0100
ripencc|*|asn|*|3|summary
ripencc|FR|asn|2200|1|19930901|allocated|opq-001
ripencc|IT|asn|205334|1|20170920|allocated|opq-002
ripencc||asn|205335|1|00000000|available|
`
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		b := []byte(base)
		for k := 0; k < 1+r.Intn(8); k++ {
			b[r.Intn(len(b))] = byte(r.Intn(128))
		}
		if r.Intn(4) == 0 {
			b = b[:r.Intn(len(b))]
		}
		f, errs := ParseLenient(strings.NewReader(string(b)))
		if f == nil && len(errs) == 0 {
			t.Fatal("nil file must come with errors")
		}
	}
}

// TestParseLenientHugeLine exercises the scanner's buffer limits.
func TestParseLenientHugeLine(t *testing.T) {
	input := "2|arin|20040101|1|19840101|20040101|-0500\n" +
		"arin|US|asn|701|1|19900801|allocated\n" +
		strings.Repeat("x", 1<<19) + "\n"
	f, errs := ParseLenient(strings.NewReader(input))
	if f == nil || len(f.ASNs) != 1 {
		t.Fatalf("file = %v", f)
	}
	if len(errs) == 0 {
		t.Error("the huge junk line should report an error")
	}
}
