// Package delegation implements the RIR statistics-exchange ("delegation
// file") formats: the regular format the RIRs unified in 2004 and the NRO
// extended format they adopted between 2008 and 2013 (§2 of the paper).
//
// A file is a header line, summary lines, and one record per resource:
//
//	header:  version|registry|serial|records|startdate|enddate|UTCoffset
//	summary: registry|*|type|*|count|summary
//	regular: registry|cc|type|start|value|date|status
//	extended:registry|cc|type|start|value|date|status|opaque-id
//
// Records describe asn, ipv4 and ipv6 resources; this project analyzes
// ASNs, so asn records are parsed into typed Records while ipv4/ipv6 rows
// are preserved as opaque lines for faithful round-tripping.
//
// The package offers a strict parser (any malformed line is an error) and
// a lenient parser that collects per-line errors and keeps going — the
// mode the restoration pipeline uses, since real archives contain
// corrupted files (§3.1).
package delegation

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"parallellives/internal/asn"
	"parallellives/internal/dates"
)

// Status is the delegation status of a resource.
type Status uint8

// Resource statuses. Regular files use only Allocated/Assigned; the
// extended format adds Available and Reserved.
const (
	StatusAvailable Status = iota
	StatusAllocated
	StatusAssigned
	StatusReserved
)

var statusNames = [...]string{"available", "allocated", "assigned", "reserved"}

// String returns the lower-case file token for the status.
func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// ParseStatus maps a file token to a Status.
func ParseStatus(tok string) (Status, error) {
	for i, n := range statusNames {
		if n == tok {
			return Status(i), nil
		}
	}
	return 0, fmt.Errorf("delegation: unknown status %q", tok)
}

// Delegated reports whether the status represents a resource held by an
// organization (allocated or assigned), the paper's notion of an
// administrative life being open.
func (s Status) Delegated() bool { return s == StatusAllocated || s == StatusAssigned }

// Record is one asn resource line.
type Record struct {
	Registry asn.RIR
	CC       string  // ISO country code, empty for available/reserved
	ASN      asn.ASN // first ASN of the block
	Count    int     // block size (value column); 1 for single delegations
	Date     dates.Day
	Status   Status
	OpaqueID string // extended format only
}

// Line renders the record in the given format.
func (r Record) Line(extended bool) string {
	var b strings.Builder
	b.WriteString(r.Registry.Token())
	b.WriteByte('|')
	b.WriteString(r.CC)
	b.WriteString("|asn|")
	b.WriteString(r.ASN.String())
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(r.Count))
	b.WriteByte('|')
	if r.Date == dates.None && (r.Status == StatusAvailable || r.Status == StatusReserved) {
		// Available/reserved rows conventionally carry an empty date in
		// some registries' files; we emit the zero placeholder.
		b.WriteString("00000000")
	} else {
		b.WriteString(r.Date.Compact())
	}
	b.WriteByte('|')
	b.WriteString(r.Status.String())
	if extended {
		b.WriteByte('|')
		b.WriteString(r.OpaqueID)
	}
	return b.String()
}

// Summary is one per-type summary line.
type Summary struct {
	Registry asn.RIR
	Type     string
	Count    int
}

// File is a parsed delegation file.
type File struct {
	Version   string
	Registry  asn.RIR
	Serial    string // conventionally the file date, YYYYMMDD
	Records   int    // record count declared in the header
	Start     dates.Day
	End       dates.Day
	UTCOffset string
	Extended  bool
	Summaries []Summary
	ASNs      []Record
	Other     []string // ipv4/ipv6 lines, preserved verbatim
}

// LineError describes one malformed line encountered by ParseLenient.
type LineError struct {
	Line int
	Text string
	Err  error
}

func (e LineError) Error() string {
	return fmt.Sprintf("line %d: %v (%q)", e.Line, e.Err, e.Text)
}

// Parse reads a delegation file strictly: the first malformed line aborts
// with an error identifying it.
func Parse(r io.Reader) (*File, error) {
	f, errs := ParseLenient(r)
	if len(errs) > 0 {
		return nil, errs[0]
	}
	return f, nil
}

// ParseLenient reads a delegation file, collecting per-line errors rather
// than stopping. The returned file contains every line that parsed. A nil
// file is returned only when the header itself is unusable.
func ParseLenient(r io.Reader) (*File, []LineError) {
	var errs []LineError
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var f *File
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if f == nil {
			hdr, err := parseHeader(line)
			if err != nil {
				errs = append(errs, LineError{Line: lineNo, Text: line, Err: err})
				continue
			}
			f = hdr
			continue
		}
		if err := parseLine(f, line); err != nil {
			errs = append(errs, LineError{Line: lineNo, Text: line, Err: err})
		}
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, LineError{Line: lineNo, Err: err})
	}
	if f == nil {
		errs = append(errs, LineError{Line: 0, Err: fmt.Errorf("delegation: no header line")})
	}
	return f, errs
}

func parseHeader(line string) (*File, error) {
	fields := strings.Split(line, "|")
	if len(fields) != 7 {
		return nil, fmt.Errorf("delegation: header has %d fields, want 7", len(fields))
	}
	rir, err := asn.ParseRIR(fields[1])
	if err != nil {
		return nil, err
	}
	records, err := strconv.Atoi(fields[3])
	if err != nil {
		return nil, fmt.Errorf("delegation: bad record count: %w", err)
	}
	start, err := dates.ParseCompact(fields[4])
	if err != nil {
		return nil, fmt.Errorf("delegation: bad start date: %w", err)
	}
	end, err := dates.ParseCompact(fields[5])
	if err != nil {
		return nil, fmt.Errorf("delegation: bad end date: %w", err)
	}
	return &File{
		Version:   fields[0],
		Registry:  rir,
		Serial:    fields[2],
		Records:   records,
		Start:     start,
		End:       end,
		UTCOffset: fields[6],
	}, nil
}

func parseLine(f *File, line string) error {
	fields := strings.Split(line, "|")
	if len(fields) >= 6 && fields[1] == "*" && fields[3] == "*" {
		// Summary line: registry|*|type|*|count|summary
		count, err := strconv.Atoi(fields[4])
		if err != nil {
			return fmt.Errorf("delegation: bad summary count: %w", err)
		}
		rir, err := asn.ParseRIR(fields[0])
		if err != nil {
			return err
		}
		f.Summaries = append(f.Summaries, Summary{Registry: rir, Type: fields[2], Count: count})
		return nil
	}
	if len(fields) < 7 {
		return fmt.Errorf("delegation: record has %d fields, want >= 7", len(fields))
	}
	typ := fields[2]
	if typ != "asn" {
		if typ != "ipv4" && typ != "ipv6" {
			return fmt.Errorf("delegation: unknown resource type %q", typ)
		}
		f.Other = append(f.Other, line)
		return nil
	}
	rir, err := asn.ParseRIR(fields[0])
	if err != nil {
		return err
	}
	a, err := asn.Parse(fields[3])
	if err != nil {
		return err
	}
	count, err := strconv.Atoi(fields[4])
	if err != nil || count < 1 {
		return fmt.Errorf("delegation: bad value column %q", fields[4])
	}
	var date dates.Day
	if fields[5] == "" {
		date = dates.None
	} else if date, err = dates.ParseCompact(fields[5]); err != nil {
		return err
	}
	status, err := ParseStatus(fields[6])
	if err != nil {
		return err
	}
	rec := Record{
		Registry: rir,
		CC:       fields[1],
		ASN:      a,
		Count:    count,
		Date:     date,
		Status:   status,
	}
	if len(fields) >= 8 {
		rec.OpaqueID = fields[7]
		f.Extended = true
	}
	f.ASNs = append(f.ASNs, rec)
	return nil
}

// WriteTo serializes the file. Records are emitted in ascending ASN order
// for determinism; the header record count is recomputed from contents.
func (f *File) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(s string) error {
		m, err := bw.WriteString(s)
		n += int64(m)
		if err != nil {
			return err
		}
		m, err = bw.WriteString("\n")
		n += int64(m)
		return err
	}

	recs := make([]Record, len(f.ASNs))
	copy(recs, f.ASNs)
	sort.Slice(recs, func(i, j int) bool { return recs[i].ASN < recs[j].ASN })

	total := len(recs) + len(f.Other)
	header := fmt.Sprintf("%s|%s|%s|%d|%s|%s|%s",
		f.Version, f.Registry.Token(), f.Serial, total,
		f.Start.Compact(), f.End.Compact(), f.UTCOffset)
	if err := write(header); err != nil {
		return n, err
	}
	if len(f.Summaries) == 0 {
		// Synthesize the asn summary when the caller did not provide one.
		if err := write(fmt.Sprintf("%s|*|asn|*|%d|summary", f.Registry.Token(), len(recs))); err != nil {
			return n, err
		}
	}
	for _, s := range f.Summaries {
		if err := write(fmt.Sprintf("%s|*|%s|*|%d|summary", s.Registry.Token(), s.Type, s.Count)); err != nil {
			return n, err
		}
	}
	for _, r := range recs {
		if err := write(r.Line(f.Extended)); err != nil {
			return n, err
		}
	}
	for _, line := range f.Other {
		if err := write(line); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// DelegatedASNs returns the individual ASNs covered by delegated
// (allocated or assigned) records, expanding blocks. The slice is sorted.
func (f *File) DelegatedASNs() []asn.ASN {
	var out []asn.ASN
	for _, r := range f.ASNs {
		if !r.Status.Delegated() {
			continue
		}
		for i := 0; i < r.Count; i++ {
			out = append(out, r.ASN+asn.ASN(i))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Expand returns one Record per individual ASN, splitting block records
// (Count > 1, as APNIC emits for NIR block delegations) into unit records
// sharing date, status and opaque id.
func (f *File) Expand() []Record {
	out := make([]Record, 0, len(f.ASNs))
	for _, r := range f.ASNs {
		for i := 0; i < r.Count; i++ {
			unit := r
			unit.ASN = r.ASN + asn.ASN(i)
			unit.Count = 1
			out = append(out, unit)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}
