// Package delegation implements the RIR statistics-exchange ("delegation
// file") formats: the regular format the RIRs unified in 2004 and the NRO
// extended format they adopted between 2008 and 2013 (§2 of the paper).
//
// A file is a header line, summary lines, and one record per resource:
//
//	header:  version|registry|serial|records|startdate|enddate|UTCoffset
//	summary: registry|*|type|*|count|summary
//	regular: registry|cc|type|start|value|date|status
//	extended:registry|cc|type|start|value|date|status|opaque-id
//
// Records describe asn, ipv4 and ipv6 resources; this project analyzes
// ASNs, so asn records are parsed into typed Records while ipv4/ipv6 rows
// are preserved as opaque lines for faithful round-tripping.
//
// The package offers a strict parser (any malformed line is an error) and
// a lenient parser that collects per-line errors and keeps going — the
// mode the restoration pipeline uses, since real archives contain
// corrupted files (§3.1).
package delegation

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"

	"parallellives/internal/asn"
	"parallellives/internal/dates"
)

// Status is the delegation status of a resource.
type Status uint8

// Resource statuses. Regular files use only Allocated/Assigned; the
// extended format adds Available and Reserved.
const (
	StatusAvailable Status = iota
	StatusAllocated
	StatusAssigned
	StatusReserved
)

var statusNames = [...]string{"available", "allocated", "assigned", "reserved"}

// String returns the lower-case file token for the status.
func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// ParseStatus maps a file token to a Status.
func ParseStatus(tok string) (Status, error) {
	for i, n := range statusNames {
		if n == tok {
			return Status(i), nil
		}
	}
	return 0, fmt.Errorf("delegation: unknown status %q", tok)
}

// Delegated reports whether the status represents a resource held by an
// organization (allocated or assigned), the paper's notion of an
// administrative life being open.
func (s Status) Delegated() bool { return s == StatusAllocated || s == StatusAssigned }

// Record is one asn resource line.
type Record struct {
	Registry asn.RIR
	CC       string  // ISO country code, empty for available/reserved
	ASN      asn.ASN // first ASN of the block
	Count    int     // block size (value column); 1 for single delegations
	Date     dates.Day
	Status   Status
	OpaqueID string // extended format only
}

// Line renders the record in the given format.
func (r Record) Line(extended bool) string {
	return string(r.AppendLine(nil, extended))
}

// AppendLine appends the record's file line (without trailing newline) to
// dst and returns the extended slice. This is the allocation-free form of
// Line the render loop uses: one day's file serializes into a single
// reused buffer.
func (r Record) AppendLine(dst []byte, extended bool) []byte {
	dst = append(dst, r.Registry.Token()...)
	dst = append(dst, '|')
	dst = append(dst, r.CC...)
	dst = append(dst, "|asn|"...)
	dst = strconv.AppendUint(dst, uint64(r.ASN), 10)
	dst = append(dst, '|')
	dst = strconv.AppendInt(dst, int64(r.Count), 10)
	dst = append(dst, '|')
	// Available/reserved rows conventionally carry an empty date in some
	// registries' files; AppendCompact emits the zero placeholder for None.
	dst = r.Date.AppendCompact(dst)
	dst = append(dst, '|')
	dst = append(dst, r.Status.String()...)
	if extended {
		dst = append(dst, '|')
		dst = append(dst, r.OpaqueID...)
	}
	return dst
}

// Summary is one per-type summary line.
type Summary struct {
	Registry asn.RIR
	Type     string
	Count    int
}

// File is a parsed delegation file.
type File struct {
	Version   string
	Registry  asn.RIR
	Serial    string // conventionally the file date, YYYYMMDD
	Records   int    // record count declared in the header
	Start     dates.Day
	End       dates.Day
	UTCOffset string
	Extended  bool
	Summaries []Summary
	ASNs      []Record
	Other     []string // ipv4/ipv6 lines, preserved verbatim
}

// LineError describes one malformed line encountered by ParseLenient.
type LineError struct {
	Line int
	Text string
	Err  error
}

func (e LineError) Error() string {
	return fmt.Sprintf("line %d: %v (%q)", e.Line, e.Err, e.Text)
}

// Parse reads a delegation file strictly: the first malformed line aborts
// with an error identifying it.
func Parse(r io.Reader) (*File, error) {
	f, errs := ParseLenient(r)
	if len(errs) > 0 {
		return nil, errs[0]
	}
	return f, nil
}

// ParseLenient reads a delegation file, collecting per-line errors rather
// than stopping. The returned file contains every line that parsed. A nil
// file is returned only when the header itself is unusable.
func ParseLenient(r io.Reader) (*File, []LineError) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, []LineError{{Line: 0, Err: err}}
	}
	return ParseLenientBytes(data)
}

// ParseLenientBytes is ParseLenient over an in-memory file, the form the
// render→reparse round trip feeds. A fresh Parser is used; callers
// re-parsing many files should hold a Parser to share its interned
// strings across calls.
func ParseLenientBytes(data []byte) (*File, []LineError) {
	var p Parser
	return p.ParseLenient(data)
}

// Parser parses delegation files from bytes, interning the small repeated
// string fields (country codes, opaque org ids, header tokens) so that
// re-parsing a day series allocates per *distinct* string, not per record.
// The zero value is ready to use; a Parser must not be shared between
// goroutines. Parsed files never alias the input bytes — every retained
// string is a copy — so callers may reuse their input buffer immediately.
type Parser struct {
	intern map[string]string
	fields [][]byte
}

// str interns one field, allocating only the first time a value is seen.
func (p *Parser) str(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := p.intern[string(b)]; ok { // no-alloc map lookup
		return s
	}
	if p.intern == nil {
		p.intern = make(map[string]string, 64)
	}
	s := string(b)
	p.intern[s] = s
	return s
}

// split cuts line into '|'-separated fields in p's reused scratch.
func (p *Parser) split(line []byte) [][]byte {
	f := p.fields[:0]
	for {
		i := bytes.IndexByte(line, '|')
		if i < 0 {
			f = append(f, line)
			break
		}
		f = append(f, line[:i])
		line = line[i+1:]
	}
	p.fields = f
	return f
}

// ParseLenient parses one in-memory delegation file leniently, collecting
// per-line errors rather than stopping; see the package-level ParseLenient.
func (p *Parser) ParseLenient(data []byte) (*File, []LineError) {
	var errs []LineError
	var f *File
	lineNo := 0
	for len(data) > 0 {
		lineNo++
		var line []byte
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			line, data = data, nil
		}
		for len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		if f == nil {
			hdr, err := p.parseHeader(line)
			if err != nil {
				errs = append(errs, LineError{Line: lineNo, Text: string(line), Err: err})
				continue
			}
			f = hdr
			// Size the record slice off the line count left: every
			// remaining line is at most one record.
			f.ASNs = make([]Record, 0, bytes.Count(data, []byte{'\n'})+1)
			continue
		}
		if err := p.parseLine(f, line); err != nil {
			errs = append(errs, LineError{Line: lineNo, Text: string(line), Err: err})
		}
	}
	if f == nil {
		errs = append(errs, LineError{Line: 0, Err: fmt.Errorf("delegation: no header line")})
	}
	return f, errs
}

// parseRIR maps a registry token field to an RIR without allocating.
func parseRIR(tok []byte) (asn.RIR, error) {
	for _, r := range asn.All() {
		if string(tok) == r.Token() {
			return r, nil
		}
	}
	return 0, fmt.Errorf("asn: unknown registry %q", tok)
}

// parseStatus maps a status token field to a Status without allocating.
func parseStatus(tok []byte) (Status, error) {
	for i, n := range statusNames {
		if string(tok) == n {
			return Status(i), nil
		}
	}
	return 0, fmt.Errorf("delegation: unknown status %q", tok)
}

// atoi parses a decimal field without allocating; it accepts exactly what
// strconv.Atoi accepts for the non-negative values delegation files carry.
func atoi(b []byte) (int, bool) {
	if len(b) == 0 || len(b) > 18 {
		return 0, false
	}
	neg := false
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		b = b[1:]
		if len(b) == 0 {
			return 0, false
		}
	}
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	if neg {
		n = -n
	}
	return n, true
}

// parseASN parses the start column as an unsigned 32-bit AS number,
// rejecting signs and overflow exactly as asn.Parse does.
func parseASN(b []byte) (asn.ASN, bool) {
	if len(b) == 0 || len(b) > 10 {
		return 0, false
	}
	var n uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + uint64(c-'0')
	}
	if n > 0xffffffff {
		return 0, false
	}
	return asn.ASN(n), true
}

func (p *Parser) parseHeader(line []byte) (*File, error) {
	fields := p.split(line)
	if len(fields) != 7 {
		return nil, fmt.Errorf("delegation: header has %d fields, want 7", len(fields))
	}
	rir, err := parseRIR(fields[1])
	if err != nil {
		return nil, err
	}
	records, ok := atoi(fields[3])
	if !ok {
		return nil, fmt.Errorf("delegation: bad record count %q", fields[3])
	}
	start, err := dates.ParseCompactBytes(fields[4])
	if err != nil {
		return nil, fmt.Errorf("delegation: bad start date: %w", err)
	}
	end, err := dates.ParseCompactBytes(fields[5])
	if err != nil {
		return nil, fmt.Errorf("delegation: bad end date: %w", err)
	}
	return &File{
		Version:   p.str(fields[0]),
		Registry:  rir,
		Serial:    p.str(fields[2]),
		Records:   records,
		Start:     start,
		End:       end,
		UTCOffset: p.str(fields[6]),
	}, nil
}

func (p *Parser) parseLine(f *File, line []byte) error {
	fields := p.split(line)
	if len(fields) >= 6 && string(fields[1]) == "*" && string(fields[3]) == "*" {
		// Summary line: registry|*|type|*|count|summary
		count, ok := atoi(fields[4])
		if !ok {
			return fmt.Errorf("delegation: bad summary count %q", fields[4])
		}
		rir, err := parseRIR(fields[0])
		if err != nil {
			return err
		}
		f.Summaries = append(f.Summaries, Summary{Registry: rir, Type: p.str(fields[2]), Count: count})
		return nil
	}
	if len(fields) < 7 {
		return fmt.Errorf("delegation: record has %d fields, want >= 7", len(fields))
	}
	typ := fields[2]
	if string(typ) != "asn" {
		if string(typ) != "ipv4" && string(typ) != "ipv6" {
			return fmt.Errorf("delegation: unknown resource type %q", typ)
		}
		f.Other = append(f.Other, string(line))
		return nil
	}
	rir, err := parseRIR(fields[0])
	if err != nil {
		return err
	}
	av, ok := parseASN(fields[3])
	if !ok {
		return fmt.Errorf("asn: invalid ASN %q", fields[3])
	}
	count, ok := atoi(fields[4])
	if !ok || count < 1 {
		return fmt.Errorf("delegation: bad value column %q", fields[4])
	}
	var date dates.Day
	if len(fields[5]) == 0 {
		date = dates.None
	} else if date, err = dates.ParseCompactBytes(fields[5]); err != nil {
		return err
	}
	status, err := parseStatus(fields[6])
	if err != nil {
		return err
	}
	rec := Record{
		Registry: rir,
		CC:       p.str(fields[1]),
		ASN:      asn.ASN(av),
		Count:    count,
		Date:     date,
		Status:   status,
	}
	if len(fields) >= 8 {
		rec.OpaqueID = p.str(fields[7])
		f.Extended = true
	}
	f.ASNs = append(f.ASNs, rec)
	return nil
}

// WriteTo serializes the file. Records are emitted in ascending ASN order
// for determinism; the header record count is recomputed from contents.
func (f *File) WriteTo(w io.Writer) (int64, error) {
	var rd Renderer
	n, err := w.Write(rd.Render(f))
	return int64(n), err
}

// Renderer serializes files into a reused buffer. The render→reparse
// round trip serializes every file-day of a registry; holding one
// Renderer makes that loop allocation-free after warm-up. The zero value
// is ready to use; a Renderer must not be shared between goroutines.
type Renderer struct {
	buf  []byte
	recs []Record
}

// Render returns f in its textual delegation-file form. The returned
// slice is the Renderer's internal buffer: it is valid only until the
// next Render call and must not be retained or mutated.
func (rd *Renderer) Render(f *File) []byte {
	rd.recs = append(rd.recs[:0], f.ASNs...)
	recs := rd.recs
	sort.Slice(recs, func(i, j int) bool { return recs[i].ASN < recs[j].ASN })

	b := rd.buf[:0]
	// header: version|registry|serial|records|startdate|enddate|UTCoffset
	b = append(b, f.Version...)
	b = append(b, '|')
	b = append(b, f.Registry.Token()...)
	b = append(b, '|')
	b = append(b, f.Serial...)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(len(recs)+len(f.Other)), 10)
	b = append(b, '|')
	b = f.Start.AppendCompact(b)
	b = append(b, '|')
	b = f.End.AppendCompact(b)
	b = append(b, '|')
	b = append(b, f.UTCOffset...)
	b = append(b, '\n')
	appendSummary := func(b []byte, r asn.RIR, typ string, count int) []byte {
		b = append(b, r.Token()...)
		b = append(b, "|*|"...)
		b = append(b, typ...)
		b = append(b, "|*|"...)
		b = strconv.AppendInt(b, int64(count), 10)
		b = append(b, "|summary\n"...)
		return b
	}
	if len(f.Summaries) == 0 {
		// Synthesize the asn summary when the caller did not provide one.
		b = appendSummary(b, f.Registry, "asn", len(recs))
	}
	for _, s := range f.Summaries {
		b = appendSummary(b, s.Registry, s.Type, s.Count)
	}
	for _, r := range recs {
		b = r.AppendLine(b, f.Extended)
		b = append(b, '\n')
	}
	for _, line := range f.Other {
		b = append(b, line...)
		b = append(b, '\n')
	}
	rd.buf = b
	return b
}

// DelegatedASNs returns the individual ASNs covered by delegated
// (allocated or assigned) records, expanding blocks. The slice is sorted.
func (f *File) DelegatedASNs() []asn.ASN {
	var out []asn.ASN
	for _, r := range f.ASNs {
		if !r.Status.Delegated() {
			continue
		}
		for i := 0; i < r.Count; i++ {
			out = append(out, r.ASN+asn.ASN(i))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Expand returns one Record per individual ASN, splitting block records
// (Count > 1, as APNIC emits for NIR block delegations) into unit records
// sharing date, status and opaque id.
func (f *File) Expand() []Record {
	out := make([]Record, 0, len(f.ASNs))
	for _, r := range f.ASNs {
		for i := 0; i < r.Count; i++ {
			unit := r
			unit.ASN = r.ASN + asn.ASN(i)
			unit.Count = 1
			out = append(out, unit)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}
