package delegation

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"parallellives/internal/asn"
	"parallellives/internal/dates"
)

func benchFile(b *testing.B, records int) string {
	b.Helper()
	var sb strings.Builder
	fmt.Fprintf(&sb, "2|ripencc|20210301|%d|19930901|20210301|+0000\n", records)
	fmt.Fprintf(&sb, "ripencc|*|asn|*|%d|summary\n", records)
	for i := 0; i < records; i++ {
		fmt.Fprintf(&sb, "ripencc|DE|asn|%d|1|20100101|allocated|o-%08x\n", 20000+i, i)
	}
	return sb.String()
}

func BenchmarkParse1kRecords(b *testing.B) {
	text := benchFile(b, 1000)
	b.ReportAllocs()
	b.SetBytes(int64(len(text)))
	for i := 0; i < b.N; i++ {
		if _, err := Parse(strings.NewReader(text)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWrite1kRecords(b *testing.B) {
	f := &File{
		Version: "2", Registry: asn.RIPENCC, Serial: "20210301",
		Start: dates.MustParse("1993-09-01"), End: dates.MustParse("2021-03-01"),
		UTCOffset: "+0000", Extended: true,
	}
	for i := 0; i < 1000; i++ {
		f.ASNs = append(f.ASNs, Record{
			Registry: asn.RIPENCC, CC: "DE", ASN: asn.ASN(20000 + i), Count: 1,
			Date: dates.MustParse("2010-01-01"), Status: StatusAllocated,
			OpaqueID: "o-0000",
		})
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if _, err := f.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
