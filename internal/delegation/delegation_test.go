package delegation

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"parallellives/internal/asn"
	"parallellives/internal/dates"
)

const sampleExtended = `2|ripencc|20210301|5|19930901|20210301|+0100
# a comment line
ripencc|*|asn|*|3|summary
ripencc|FR|asn|2200|1|19930901|allocated|opq-001
ripencc|IT|asn|205334|1|20170920|allocated|opq-002
ripencc||asn|205335|1|00000000|available|
ripencc|DE|ipv4|192.0.2.0|256|20000101|allocated|opq-003
ripencc|NL|asn|205336|1|20180101|reserved|opq-004
`

func TestParseExtended(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleExtended))
	if err != nil {
		t.Fatal(err)
	}
	if f.Registry != asn.RIPENCC || f.Serial != "20210301" || f.Records != 5 {
		t.Errorf("header = %+v", f)
	}
	if f.Start != dates.MustParse("1993-09-01") || f.End != dates.MustParse("2021-03-01") {
		t.Errorf("dates = %v %v", f.Start, f.End)
	}
	if !f.Extended {
		t.Error("file should be detected as extended")
	}
	if len(f.ASNs) != 4 {
		t.Fatalf("ASNs = %d", len(f.ASNs))
	}
	if len(f.Other) != 1 || !strings.Contains(f.Other[0], "ipv4") {
		t.Errorf("Other = %v", f.Other)
	}
	if len(f.Summaries) != 1 || f.Summaries[0].Count != 3 {
		t.Errorf("Summaries = %v", f.Summaries)
	}
	rec := f.ASNs[1]
	if rec.ASN != 205334 || rec.CC != "IT" || rec.Date != dates.MustParse("2017-09-20") ||
		rec.Status != StatusAllocated || rec.OpaqueID != "opq-002" {
		t.Errorf("record = %+v", rec)
	}
	avail := f.ASNs[2]
	if avail.Status != StatusAvailable || avail.Date != dates.None || avail.CC != "" {
		t.Errorf("available record = %+v", avail)
	}
}

const sampleRegular = `2|arin|20040101|2|19840101|20040101|-0500
arin|*|asn|*|2|summary
arin|US|asn|701|1|19900801|allocated
arin|US|asn|702|1|19910301|assigned
`

func TestParseRegular(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleRegular))
	if err != nil {
		t.Fatal(err)
	}
	if f.Extended {
		t.Error("regular file misdetected as extended")
	}
	if len(f.ASNs) != 2 {
		t.Fatalf("ASNs = %d", len(f.ASNs))
	}
	if f.ASNs[1].Status != StatusAssigned {
		t.Errorf("status = %v", f.ASNs[1].Status)
	}
	if got := f.DelegatedASNs(); len(got) != 2 || got[0] != 701 || got[1] != 702 {
		t.Errorf("DelegatedASNs = %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"not|a|header",
		"2|nowhere|20040101|1|19840101|20040101|-0500",
		"2|arin|20040101|x|19840101|20040101|-0500",
		"2|arin|20040101|1|1984|20040101|-0500",
	}
	for _, h := range bad {
		if _, err := Parse(strings.NewReader(h + "\n")); err == nil {
			t.Errorf("header %q should fail", h)
		}
	}
	badRecords := []string{
		"arin|US|asn|70x|1|19900801|allocated",
		"arin|US|asn|701|0|19900801|allocated",
		"arin|US|asn|701|1|19900801|borrowed",
		"arin|US|mystery|701|1|19900801|allocated",
		"arin|US|asn|701|1|19901301|allocated",
		"arin|US|asn",
	}
	for _, rec := range badRecords {
		input := "2|arin|20040101|1|19840101|20040101|-0500\n" + rec + "\n"
		if _, err := Parse(strings.NewReader(input)); err == nil {
			t.Errorf("record %q should fail strict parse", rec)
		}
		f, errs := ParseLenient(strings.NewReader(input))
		if f == nil || len(errs) != 1 {
			t.Errorf("lenient parse of %q: file=%v errs=%v", rec, f != nil, errs)
		}
	}
}

func TestParseLenientKeepsGoodLines(t *testing.T) {
	input := `2|arin|20040101|3|19840101|20040101|-0500
arin|US|asn|701|1|19900801|allocated
arin|US|asn|garbage|1|19900801|allocated
arin|US|asn|702|1|19910301|allocated
`
	f, errs := ParseLenient(strings.NewReader(input))
	if len(errs) != 1 {
		t.Fatalf("errs = %v", errs)
	}
	if len(f.ASNs) != 2 {
		t.Errorf("kept %d records, want 2", len(f.ASNs))
	}
	if errs[0].Line != 3 {
		t.Errorf("error line = %d", errs[0].Line)
	}
}

func TestEmptyInput(t *testing.T) {
	f, errs := ParseLenient(strings.NewReader(""))
	if f != nil || len(errs) == 0 {
		t.Error("empty input should yield nil file and an error")
	}
}

func TestWriteToRoundTrip(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleExtended))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	f2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(sortedRecords(f.ASNs), sortedRecords(f2.ASNs)) {
		t.Errorf("records differ:\n%v\n%v", f.ASNs, f2.ASNs)
	}
	if f2.Registry != f.Registry || f2.Start != f.Start || f2.End != f.End {
		t.Error("header fields differ after round trip")
	}
}

func sortedRecords(in []Record) []Record {
	out := make([]Record, len(in))
	copy(out, in)
	for i := range out {
		for j := i + 1; j < len(out); j++ {
			if out[j].ASN < out[i].ASN {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

func TestExpandBlocks(t *testing.T) {
	input := `2|apnic|20100101|1|19930901|20100101|+1000
apnic|JP|asn|131072|4|20100101|allocated|opq-nir
`
	f, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	exp := f.Expand()
	if len(exp) != 4 {
		t.Fatalf("Expand = %d records", len(exp))
	}
	for i, r := range exp {
		if r.ASN != asn.ASN(131072+i) || r.Count != 1 || r.OpaqueID != "opq-nir" {
			t.Errorf("expanded[%d] = %+v", i, r)
		}
	}
	if got := f.DelegatedASNs(); len(got) != 4 {
		t.Errorf("DelegatedASNs = %v", got)
	}
}

func TestStatusParsing(t *testing.T) {
	for _, s := range []Status{StatusAvailable, StatusAllocated, StatusAssigned, StatusReserved} {
		got, err := ParseStatus(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStatus(%q) = %v, %v", s.String(), got, err)
		}
	}
	if StatusAvailable.Delegated() || StatusReserved.Delegated() {
		t.Error("available/reserved are not delegated")
	}
	if !StatusAllocated.Delegated() || !StatusAssigned.Delegated() {
		t.Error("allocated/assigned are delegated")
	}
}

func TestQuickRecordLineRoundTrip(t *testing.T) {
	statuses := []Status{StatusAvailable, StatusAllocated, StatusAssigned, StatusReserved}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rec := Record{
			Registry: asn.RIR(r.Intn(int(asn.NumRIRs))),
			ASN:      asn.ASN(r.Uint32()),
			Count:    1 + r.Intn(8),
			Status:   statuses[r.Intn(len(statuses))],
		}
		if rec.Status.Delegated() {
			rec.CC = string([]byte{byte('A' + r.Intn(26)), byte('A' + r.Intn(26))})
			rec.Date = dates.Day(40000 + r.Intn(20000))
		} else {
			rec.Date = dates.None
		}
		for _, extended := range []bool{false, true} {
			if extended {
				rec.OpaqueID = "opq-" + rec.ASN.String()
			} else {
				rec.OpaqueID = ""
			}
			hdr := "2|" + rec.Registry.Token() + "|20210301|1|19840101|20210301|+0000\n"
			file, err := Parse(strings.NewReader(hdr + rec.Line(extended) + "\n"))
			if err != nil || len(file.ASNs) != 1 {
				return false
			}
			if file.ASNs[0] != rec {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
