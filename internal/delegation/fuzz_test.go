package delegation

import (
	"bytes"
	"io"
	"testing"
)

// FuzzLenientParse drives the lenient parser with arbitrary bytes: it
// must never panic, and any file it does produce must survive
// serialization — the no-crash contract the fault-tolerant ingest layer
// leans on when feeding it corrupt archive content.
func FuzzLenientParse(f *testing.F) {
	f.Add([]byte("2|arin|20100101|3|20100101|20100102|+0000\n" +
		"arin|*|asn|*|1|summary\n" +
		"arin|US|asn|1500|1|20100101|allocated|o-1\n" +
		"arin|US|ipv4|192.0.2.0|256|20100101|allocated\n"))
	f.Add([]byte("2.3|ripencc|20210301|1|19930901|20210301|+0200\nripencc|NL|asn|3333|1|19930901|assigned\n"))
	f.Add([]byte(""))
	f.Add([]byte("# comment only\n\n"))
	f.Add([]byte("2&arin&20100101&1|garbage"))
	f.Add([]byte("2|arin|20100101|1|20100101|20100101|+0000\narin|US|asn|1500|0|20100101|allocated\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, _ := ParseLenient(bytes.NewReader(data))
		if parsed == nil {
			return
		}
		// Whatever survived parsing must serialize without panicking.
		if _, err := parsed.WriteTo(io.Discard); err != nil {
			t.Fatalf("WriteTo of a parsed file failed: %v", err)
		}
	})
}
