package router

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"parallellives/internal/asn"
)

// TestRoutingAndLocal400 proves the basics: every populated ASN
// resolves through its owner shard, a miss inside any range is a clean
// 404, and a malformed ASN is rejected locally with the serving tier's
// exact error envelope.
func TestRoutingAndLocal400(t *testing.T) {
	set := startShards(t, fixtureSnapshot(1), 4)
	rt := newTestRouter(t, set, Options{})

	for _, a := range fixtureASNs {
		w := get(rt, fmt.Sprintf("/v1/asn/%d", a), nil)
		if w.Code != http.StatusOK {
			t.Fatalf("GET /v1/asn/%d = %d: %s", a, w.Code, w.Body)
		}
		var resp struct {
			ASN asn.ASN `json:"asn"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil || resp.ASN != a {
			t.Fatalf("GET /v1/asn/%d returned asn=%v err=%v", a, resp.ASN, err)
		}
		if w.Header().Get("ETag") == "" {
			t.Fatalf("GET /v1/asn/%d carried no ETag", a)
		}
	}

	w := get(rt, "/v1/asn/55", nil)
	if w.Code != http.StatusNotFound {
		t.Fatalf("absent ASN = %d, want 404", w.Code)
	}

	w = get(rt, "/v1/asn/zzz", nil)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad ASN = %d, want 400", w.Code)
	}
	if want := `{"error":"bad ASN \"zzz\""}`; w.Body.String() != want {
		t.Fatalf("bad-ASN body %q, want %q", w.Body.String(), want)
	}
}

// TestDegradedThenRecovered kills one shard and proves per-range
// degradation: its ASN range fails fast with 503 + Retry-After once the
// breaker opens (no more upstream traffic burned), every other range
// keeps serving, aggregates degrade per policy — and after the shard
// comes back, a probe closes the breaker and full service resumes.
func TestDegradedThenRecovered(t *testing.T) {
	set := startShards(t, fixtureSnapshot(1), 4)
	rt := newTestRouter(t, set, Options{BreakerThreshold: 2, BreakerCooldown: 50 * time.Millisecond})

	// AS1000 lives in shard 2 of the golden 4-way plan; AS10 in shard 0.
	set.flakies[2].broken.Store(true)

	// Failures feed the breaker; at threshold it opens.
	for i := 0; i < 2; i++ {
		if w := get(rt, "/v1/asn/1000", nil); w.Code != http.StatusServiceUnavailable {
			t.Fatalf("dead-range request %d = %d, want 503", i, w.Code)
		}
	}
	before := set.flakies[2].hits.Load()
	w := get(rt, "/v1/asn/1000", nil)
	if w.Code != http.StatusServiceUnavailable || w.Header().Get("Retry-After") == "" {
		t.Fatalf("open-breaker request = %d (Retry-After %q), want fast 503", w.Code, w.Header().Get("Retry-After"))
	}
	if got := set.flakies[2].hits.Load(); got != before {
		t.Fatalf("open breaker still sent %d upstream request(s)", got-before)
	}

	// Other ranges are untouched.
	if w := get(rt, "/v1/asn/10", nil); w.Code != http.StatusOK {
		t.Fatalf("healthy range = %d, want 200", w.Code)
	}

	// Aggregates: partial policy answers from the survivors and says so.
	w = get(rt, "/v1/taxonomy", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("partial aggregate = %d, want 200", w.Code)
	}
	if got := w.Header().Get(PartialHeader); got != "2" {
		t.Fatalf("%s = %q, want \"2\"", PartialHeader, got)
	}

	// readyz stays ready under partial policy (3 of 4 ranges serve).
	if w := get(rt, "/readyz", nil); w.Code != http.StatusOK {
		t.Fatalf("partial readyz = %d, want 200", w.Code)
	}

	// Recovery: the shard heals, the cooldown lapses, and a probe closes
	// the breaker without spending a client request.
	set.flakies[2].broken.Store(false)
	time.Sleep(60 * time.Millisecond)
	rt.Probe(context.Background())
	if w := get(rt, "/v1/asn/1000", nil); w.Code != http.StatusOK {
		t.Fatalf("recovered range = %d: %s", w.Code, w.Body)
	}
	w = get(rt, "/v1/taxonomy", nil)
	if w.Code != http.StatusOK || w.Header().Get(PartialHeader) != "" {
		t.Fatalf("recovered aggregate = %d (%s %q), want clean 200", w.Code, PartialHeader, w.Header().Get(PartialHeader))
	}
}

// TestStrictPolicy proves the other degradation contract: any dead
// shard turns aggregates into 503s, and readiness drops with the first
// open breaker.
func TestStrictPolicy(t *testing.T) {
	set := startShards(t, fixtureSnapshot(1), 2)
	rt := newTestRouter(t, set, Options{Policy: PolicyStrict, BreakerThreshold: 1})

	set.flakies[1].broken.Store(true)
	if w := get(rt, "/v1/asn/4200000000", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("dead range = %d, want 503", w.Code)
	}
	w := get(rt, "/v1/taxonomy", nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("strict aggregate = %d, want 503", w.Code)
	}
	if w := get(rt, "/readyz", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("strict readyz = %d, want 503", w.Code)
	}
	// Per-ASN reads for live ranges still work even under strict policy:
	// strictness is about aggregate completeness, not range routing.
	if w := get(rt, "/v1/asn/10", nil); w.Code != http.StatusOK {
		t.Fatalf("healthy range under strict = %d, want 200", w.Code)
	}
}

// TestAggregateHashMode proves hash routing answers correctly and fails
// over to another shard when the hashed-to shard is dark.
func TestAggregateHashMode(t *testing.T) {
	set := startShards(t, fixtureSnapshot(1), 2)
	rt := newTestRouter(t, set, Options{Aggregate: AggregateHash, BreakerThreshold: 1})

	w := get(rt, "/v1/taxonomy", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("hash aggregate = %d", w.Code)
	}
	want := w.Body.String()

	// Whichever shard the key hashes to, kill both in turn and prove the
	// answer survives as long as one shard lives.
	for kill := range set.flakies {
		set.flakies[kill].broken.Store(true)
		// Trip the dead shard's breaker so hash mode skips it.
		get(rt, "/v1/taxonomy", nil)
		w := get(rt, "/v1/taxonomy", nil)
		if w.Code != http.StatusOK || w.Body.String() != want {
			t.Fatalf("hash failover with shard %d dead = %d, body drift %v",
				kill, w.Code, w.Body.String() != want)
		}
		set.flakies[kill].broken.Store(false)
		// Close the breaker for the next round.
		rt.topo.Load().sets[kill].replicas[0].breaker.OnSuccess()
	}
}

// TestCacheRevalidation proves the router cache answers warm traffic
// with one conditional upstream request: the shard's 304 carries no
// body, the client still gets the full cached 200 — and a client
// sending the same validator gets a 304 end to end.
func TestCacheRevalidation(t *testing.T) {
	set := startShards(t, fixtureSnapshot(1), 2)
	rt := newTestRouter(t, set, Options{})

	w1 := get(rt, "/v1/asn/10", nil)
	if w1.Code != http.StatusOK {
		t.Fatalf("first = %d", w1.Code)
	}
	etag := w1.Header().Get("ETag")

	w2 := get(rt, "/v1/asn/10", nil)
	if w2.Code != http.StatusOK || w2.Body.String() != w1.Body.String() || w2.Header().Get("ETag") != etag {
		t.Fatalf("revalidated response drifted: %d, body/etag mismatch", w2.Code)
	}
	if fresh := rt.revalidations.With("fresh").Value(); fresh != 1 {
		t.Fatalf("fresh revalidations = %d, want 1", fresh)
	}

	// End-to-end conditional request.
	w3 := get(rt, "/v1/asn/10", map[string]string{"If-None-Match": etag})
	if w3.Code != http.StatusNotModified || w3.Body.Len() != 0 {
		t.Fatalf("client conditional = %d with %d-byte body, want empty 304", w3.Code, w3.Body.Len())
	}

	// Scatter aggregates revalidate against the winner only.
	a1 := get(rt, "/v1/taxonomy", nil)
	hits0 := set.flakies[0].hits.Load()
	hits1 := set.flakies[1].hits.Load()
	a2 := get(rt, "/v1/taxonomy", nil)
	if a2.Body.String() != a1.Body.String() {
		t.Fatal("cached aggregate body drifted")
	}
	if d0, d1 := set.flakies[0].hits.Load()-hits0, set.flakies[1].hits.Load()-hits1; d0 != 1 || d1 != 0 {
		t.Fatalf("warm aggregate hit shards (%d,%d) times, want (1,0): winner-only revalidation", d0, d1)
	}
}

// TestReloadFanout proves POST /v1/admin/reload swaps every shard's
// generation and rotates the router's cached bodies and validators.
func TestReloadFanout(t *testing.T) {
	set := startShards(t, fixtureSnapshot(1), 2)
	rt := newTestRouter(t, set, Options{})

	w1 := get(rt, "/v1/asn/10", nil)
	etag1 := w1.Header().Get("ETag")

	set.rewriteShards(t, fixtureSnapshot(2))
	w := post(rt, "/v1/admin/reload")
	if w.Code != http.StatusOK {
		t.Fatalf("reload = %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Results []struct {
			Shard int  `json:"shard"`
			OK    bool `json:"ok"`
		} `json:"results"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 || !resp.Results[0].OK || !resp.Results[1].OK {
		t.Fatalf("reload results = %+v", resp.Results)
	}

	w2 := get(rt, "/v1/asn/10", map[string]string{"If-None-Match": etag1})
	if w2.Code != http.StatusOK {
		t.Fatalf("post-reload conditional = %d, want full 200 (validator must rotate)", w2.Code)
	}
	if w2.Header().Get("ETag") == etag1 {
		t.Fatal("ETag did not rotate across reload")
	}
	if w2.Body.String() == w1.Body.String() {
		t.Fatal("body did not change across reload (seed 2 rewrites org IDs)")
	}

	// A failed shard reload reports 502 with per-shard outcomes.
	set.flakies[1].broken.Store(true)
	w = post(rt, "/v1/admin/reload")
	if w.Code != http.StatusBadGateway {
		t.Fatalf("partial reload = %d, want 502", w.Code)
	}
	if !strings.Contains(w.Body.String(), `"ok":true`) || !strings.Contains(w.Body.String(), `"ok":false`) {
		t.Fatalf("partial reload body lacks mixed outcomes: %s", w.Body)
	}
}

// TestHandshakeValidation pins the refusals: a shard set with a missing
// member and a mixed-plan set must not boot.
func TestHandshakeValidation(t *testing.T) {
	set := startShards(t, fixtureSnapshot(1), 4)

	// Subset of a 4-way plan: two ranges have no replica.
	_, err := New(context.Background(), Options{
		Shards:           set.urls[:2],
		HandshakeTimeout: 2 * time.Second,
	})
	if err == nil || !strings.Contains(err.Error(), "has no replica") {
		t.Fatalf("subset handshake error = %v", err)
	}

	// Mixed sets: two shards of one 2-way cut plus two of another seed's.
	a := startShards(t, fixtureSnapshot(1), 2)
	b := startShards(t, fixtureSnapshot(2), 2)
	_, err = New(context.Background(), Options{
		Shards:           []string{a.urls[0], b.urls[1]},
		HandshakeTimeout: 2 * time.Second,
	})
	if err == nil || !strings.Contains(err.Error(), "fingerprints differ") {
		t.Fatalf("mixed-set handshake error = %v", err)
	}

	// Duplicate member: index 0 twice.
	_, err = New(context.Background(), Options{
		Shards:           []string{a.urls[0], a.urls[0]},
		HandshakeTimeout: 2 * time.Second,
	})
	if err == nil {
		t.Fatal("duplicate-shard handshake succeeded")
	}
}

// TestHealthAndTopology sanity-checks the merged health document and
// the /v1/shards topology.
func TestHealthAndTopology(t *testing.T) {
	set := startShards(t, fixtureSnapshot(1), 4)
	rt := newTestRouter(t, set, Options{})

	w := get(rt, "/v1/health", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("health = %d", w.Code)
	}
	var health struct {
		Store    json.RawMessage `json:"store"`
		Pipeline json.RawMessage `json:"pipeline"`
		Router   struct {
			Policy string `json:"policy"`
			Shards []struct {
				Index    int  `json:"index"`
				Dark     bool `json:"dark"`
				Replicas []struct {
					Breaker string `json:"breaker"`
					Gen     int64  `json:"gen"`
				} `json:"replicas"`
			} `json:"shards"`
		} `json:"router"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if len(health.Store) == 0 || len(health.Pipeline) == 0 {
		t.Fatal("health lacks store/pipeline sections from the shards")
	}
	if health.Router.Policy != PolicyPartial || len(health.Router.Shards) != 4 {
		t.Fatalf("router section = %+v", health.Router)
	}
	for _, sh := range health.Router.Shards {
		if sh.Dark || len(sh.Replicas) != 1 {
			t.Fatalf("shard %d state = %+v", sh.Index, sh)
		}
		for _, rep := range sh.Replicas {
			if rep.Breaker != "closed" || rep.Gen != 1 {
				t.Fatalf("shard %d replica state = %+v", sh.Index, rep)
			}
		}
	}

	w = get(rt, "/v1/shards", nil)
	var topo struct {
		Count  int    `json:"count"`
		Sum    string `json:"sum"`
		Shards []struct {
			Lo asn.ASN `json:"lo"`
			Hi asn.ASN `json:"hi"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &topo); err != nil {
		t.Fatal(err)
	}
	if topo.Count != 4 || topo.Sum == "" || len(topo.Shards) != 4 {
		t.Fatalf("topology = %+v", topo)
	}
	if topo.Shards[0].Lo != 0 || topo.Shards[3].Hi != asn.ASN(maxASN) {
		t.Fatalf("topology does not span the ASN space: %+v", topo.Shards)
	}
}

// TestSingleUnshardedBackend proves the degenerate deployment: one
// plain asnserve process behind the router.
func TestSingleUnshardedBackend(t *testing.T) {
	set := startShards(t, fixtureSnapshot(1), 1)
	// A 1-way cut is still sharded; also front a truly plain server.
	rt := newTestRouter(t, set, Options{})
	if w := get(rt, "/v1/asn/10", nil); w.Code != http.StatusOK {
		t.Fatalf("1-way shard routing = %d", w.Code)
	}
}
