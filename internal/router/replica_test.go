package router

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// waitBreakerState spins until the given replica slot's breaker reports
// the wanted state (driven by the test's own traffic), bounded.
func waitBreakerState(t *testing.T, rt *Router, rangeIdx, ordinal int, want string, drive func()) {
	t.Helper()
	for i := 0; i < 100; i++ {
		if rt.topo.Load().sets[rangeIdx].replicas[ordinal].breakerState() == want {
			return
		}
		drive()
	}
	t.Fatalf("range %d ordinal %d breaker never reached %q", rangeIdx, ordinal, want)
}

// TestReplicaFailoverZeroErrors is the tentpole contract: with R=2,
// killing one replica of every range produces zero client-visible
// errors — reads that land on the dead replica fail over to its sibling
// and say so in the X-Parallellives-Failover header.
func TestReplicaFailoverZeroErrors(t *testing.T) {
	fleet := startReplicated(t, fixtureSnapshot(1), 2, 2)
	rt := newRouterOver(t, fleet.urls, Options{BreakerCooldown: time.Minute})

	// Kill ordinal 0 of both ranges.
	for i := 0; i < 2; i++ {
		fleet.flakyAt(t, rt, i, 0).broken.Store(true)
	}

	sawFailover := false
	for round := 0; round < 4; round++ {
		for _, a := range fixtureASNs {
			w := get(rt, fmt.Sprintf("/v1/asn/%d", a), nil)
			if w.Code >= http.StatusInternalServerError {
				t.Fatalf("GET /v1/asn/%d = %d with one replica dead: %s", a, w.Code, w.Body)
			}
			if w.Header().Get(FailoverHeader) != "" {
				sawFailover = true
			}
		}
	}
	if !sawFailover {
		t.Fatal("no response carried the failover header while a replica was dead")
	}
	var failovers int64
	for i := 0; i < 2; i++ {
		failovers += rt.failovers.With(fmt.Sprint(i)).Value()
	}
	if failovers == 0 {
		t.Fatal("failover counter never moved")
	}

	// Aggregates survive too: both ranges still have a live replica, so
	// no range is down and the scatter stays complete (no partial mark).
	w := get(rt, "/v1/taxonomy", nil)
	if w.Code != http.StatusOK || w.Header().Get(PartialHeader) != "" {
		t.Fatalf("aggregate with one replica per range dead = %d (%s %q), want clean 200",
			w.Code, PartialHeader, w.Header().Get(PartialHeader))
	}

	// Revive + probe: the fleet heals and failover marks disappear.
	for i := 0; i < 2; i++ {
		fleet.flakyAt(t, rt, i, 0).broken.Store(false)
	}
	rt.Probe(context.Background())
	// Breakers may still be open (cooldown 1m): the picker must simply
	// not touch them. A clean read proves it either way.
	for _, a := range fixtureASNs {
		if w := get(rt, fmt.Sprintf("/v1/asn/%d", a), nil); w.Code >= http.StatusInternalServerError {
			t.Fatalf("post-revival read = %d", w.Code)
		}
	}
}

// TestOpenBreakerReplicaNeverPicked pins the picker rule: while a
// sibling's breaker is closed, an open-breaker replica receives zero
// upstream traffic — not even as a failover target.
func TestOpenBreakerReplicaNeverPicked(t *testing.T) {
	fleet := startReplicated(t, fixtureSnapshot(1), 1, 2)
	rt := newRouterOver(t, fleet.urls, Options{BreakerCooldown: time.Minute, CacheSize: -1})

	f0 := fleet.flakyAt(t, rt, 0, 0)
	f0.broken.Store(true)
	// Drive reads until the broken replica's breaker opens (round-robin
	// lands on it every other pick; each landing is one failure).
	waitBreakerState(t, rt, 0, 0, "open", func() { get(rt, "/v1/asn/10", nil) })
	f0.broken.Store(false) // alive again, but the breaker stays open for a minute

	before := f0.hits.Load()
	for i := 0; i < 20; i++ {
		for _, a := range fixtureASNs {
			w := get(rt, fmt.Sprintf("/v1/asn/%d", a), nil)
			if w.Code >= http.StatusInternalServerError {
				t.Fatalf("read with one breaker open = %d", w.Code)
			}
			if w.Header().Get(FailoverHeader) != "" {
				t.Fatalf("healthy-sibling read reported a failover")
			}
		}
	}
	if got := f0.hits.Load(); got != before {
		t.Fatalf("open-breaker replica received %d upstream request(s) while its sibling was closed", got-before)
	}
}

// TestHedgedReads arms hedging against a deliberately slow replica: the
// hedge must win (header + counters), and the cancelled slow attempt
// must land breaker-neutral — hedging never trips a healthy replica.
func TestHedgedReads(t *testing.T) {
	fleet := startReplicated(t, fixtureSnapshot(1), 1, 2)
	rt := newRouterOver(t, fleet.urls, Options{
		HedgeAfter:       10 * time.Millisecond,
		BreakerThreshold: 3,
		CacheSize:        -1,
	})

	slow := fleet.flakyAt(t, rt, 0, 0)
	slow.delay.Store(int64(500 * time.Millisecond))

	sawHedgeWin := false
	for i := 0; i < 8 && !sawHedgeWin; i++ {
		w := get(rt, "/v1/asn/10", nil)
		if w.Code != http.StatusOK {
			t.Fatalf("hedged read = %d: %s", w.Code, w.Body)
		}
		sawHedgeWin = w.Header().Get(HedgeHeader) == "win"
	}
	if !sawHedgeWin {
		t.Fatal("no hedge win in 8 reads with a 500ms-slow replica and hedge-after 10ms")
	}
	if rt.hedges.Value() == 0 || rt.hedgeWins.Value() == 0 {
		t.Fatalf("hedge counters = %d launched / %d won, want both > 0",
			rt.hedges.Value(), rt.hedgeWins.Value())
	}
	// The slow replica lost by cancellation, which is breaker-neutral.
	if state := rt.topo.Load().sets[0].replicas[0].breakerState(); state != "closed" {
		t.Fatalf("slow replica's breaker = %s after losing hedges, want closed", state)
	}
}

// TestTopologyReloadRetireReadmit drives the zero-downtime rolling
// cycle: reload with the fleet intact keeps everyone; a dead replica is
// retired (and serving continues); the revived replica is readmitted.
func TestTopologyReloadRetireReadmit(t *testing.T) {
	fleet := startReplicated(t, fixtureSnapshot(1), 2, 2)
	rt := newRouterOver(t, fleet.urls, Options{HandshakeTimeout: time.Second})

	reload := func() (*TopologyReport, int, string) {
		w := post(rt, "/v1/admin/topology/reload")
		var rep TopologyReport
		if w.Code == http.StatusOK {
			if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
				t.Fatal(err)
			}
		}
		return &rep, w.Code, w.Body.String()
	}

	// No-op reload: everyone kept, generation bumps.
	rep, code, _ := reload()
	if code != http.StatusOK || rep.Generation != 2 || rep.Replicas != 4 ||
		len(rep.Kept) != 4 || len(rep.Admitted) != 0 || len(rep.Retired) != 0 {
		t.Fatalf("no-op reload = %d %+v", code, rep)
	}

	// A dead replica is retired; the range keeps serving on its sibling.
	dead := fleet.flakyAt(t, rt, 1, 0)
	dead.broken.Store(true)
	rep, code, _ = reload()
	if code != http.StatusOK || rep.Generation != 3 || rep.Replicas != 3 || len(rep.Retired) != 1 {
		t.Fatalf("retire reload = %d %+v", code, rep)
	}
	var topoDoc struct {
		Generation int64 `json:"generation"`
		Shards     []struct {
			Replicas []struct {
				URL string `json:"url"`
			} `json:"replicas"`
		} `json:"shards"`
	}
	w := get(rt, "/v1/shards", nil)
	if err := json.Unmarshal(w.Body.Bytes(), &topoDoc); err != nil {
		t.Fatal(err)
	}
	if topoDoc.Generation != 3 || len(topoDoc.Shards[1].Replicas) != 1 || len(topoDoc.Shards[0].Replicas) != 2 {
		t.Fatalf("post-retire topology = %+v", topoDoc)
	}
	for _, a := range fixtureASNs {
		if w := get(rt, fmt.Sprintf("/v1/asn/%d", a), nil); w.Code >= http.StatusInternalServerError {
			t.Fatalf("read after retiring a replica = %d", w.Code)
		}
	}

	// The replica comes back: readmitted with a fresh closed breaker.
	dead.broken.Store(false)
	rep, code, _ = reload()
	if code != http.StatusOK || rep.Generation != 4 || rep.Replicas != 4 || len(rep.Admitted) != 1 {
		t.Fatalf("readmit reload = %d %+v", code, rep)
	}
}

// TestTopologyReloadFailureKeepsOld pins the safety half: a rebuild
// that cannot cover every range answers 502 and the old topology keeps
// serving untouched.
func TestTopologyReloadFailureKeepsOld(t *testing.T) {
	fleet := startReplicated(t, fixtureSnapshot(1), 2, 1)
	rt := newRouterOver(t, fleet.urls, Options{HandshakeTimeout: 500 * time.Millisecond})

	// Range 1's only replica dies: the survivors no longer cover every
	// range, so the swap must be refused.
	fleet.flakyAt(t, rt, 1, 0).broken.Store(true)
	w := post(rt, "/v1/admin/topology/reload")
	if w.Code != http.StatusBadGateway || !strings.Contains(w.Body.String(), "previous topology retained") {
		t.Fatalf("impossible reload = %d: %s", w.Code, w.Body)
	}
	if gen := rt.topo.Load().generation; gen != 1 {
		t.Fatalf("failed reload moved the topology to generation %d", gen)
	}
	if v := rt.topoReloads.With("error").Value(); v != 1 {
		t.Fatalf("error reload counter = %d, want 1", v)
	}
	// Range 0 still serves from the retained table.
	if w := get(rt, "/v1/asn/10", nil); w.Code != http.StatusOK {
		t.Fatalf("read on retained topology = %d", w.Code)
	}
}

// TestReplicasMinEnforced pins -replicas-min: a topology (startup or
// reload) where any range falls below the floor is refused.
func TestReplicasMinEnforced(t *testing.T) {
	fleet := startReplicated(t, fixtureSnapshot(1), 2, 2)

	// Startup floor: asking for 3 replicas over an R=2 fleet must fail.
	_, err := New(context.Background(), Options{
		Shards: fleet.urls, ReplicasMin: 3, HandshakeTimeout: 2 * time.Second,
	})
	if err == nil || !strings.Contains(err.Error(), "-replicas-min") {
		t.Fatalf("under-replicated startup error = %v", err)
	}

	// Reload floor: R=2 accepted, then one replica dies — the reload
	// would leave its range at 1 < 2, so the old topology is retained.
	rt := newRouterOver(t, fleet.urls, Options{ReplicasMin: 2, HandshakeTimeout: 500 * time.Millisecond})
	fleet.flakyAt(t, rt, 0, 1).broken.Store(true)
	w := post(rt, "/v1/admin/topology/reload")
	if w.Code != http.StatusBadGateway || !strings.Contains(w.Body.String(), "-replicas-min") {
		t.Fatalf("below-floor reload = %d: %s", w.Code, w.Body)
	}
	if gen := rt.topo.Load().generation; gen != 1 {
		t.Fatalf("below-floor reload moved the topology to generation %d", gen)
	}
}

// TestMixedFingerprintReplicasRefused extends the handshake refusal to
// replica sets: two processes claiming the same range but serving
// different shard cuts must not form a set.
func TestMixedFingerprintReplicasRefused(t *testing.T) {
	a := startShards(t, fixtureSnapshot(1), 2)
	b := startShards(t, fixtureSnapshot(2), 2)
	// a's two shards cover the plan; b.urls[0] claims range 0 again but
	// with a different fingerprint.
	_, err := New(context.Background(), Options{
		Shards:           []string{a.urls[0], a.urls[1], b.urls[0]},
		HandshakeTimeout: 2 * time.Second,
	})
	if err == nil || !strings.Contains(err.Error(), "fingerprints differ") {
		t.Fatalf("mixed-fingerprint replica error = %v", err)
	}
}
