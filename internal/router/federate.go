package router

import (
	"context"
	"net/http"
	"strconv"
	"sync"
	"time"

	"parallellives/internal/obs"
	"parallellives/internal/serve"
	"parallellives/internal/stream"
)

// Fleet rollup metric names. The router scrapes every shard's /metrics
// and re-exports the fleet view under parallellives_fleet_* with a
// bounded `shard` label (one series per shard index — never per ASN or
// per path, per the DESIGN.md §8 cardinality budget). Mirrored counter
// readings are exported as gauges ("the value last scraped"), so only
// the router's own scrape counter keeps the _total suffix.
const (
	MetricFleetRequests = "parallellives_fleet_requests"
	MetricFleetErrors   = "parallellives_fleet_errors"
	MetricFleetP50      = "parallellives_fleet_request_p50_seconds"
	MetricFleetP99      = "parallellives_fleet_request_p99_seconds"
	MetricFleetInflight = "parallellives_fleet_inflight"
	MetricFleetGen      = "parallellives_fleet_generation"
	MetricFleetLag      = "parallellives_fleet_ingest_lag_days"
	MetricFleetUp       = "parallellives_fleet_shard_up"
	MetricFleetLastUnix = "parallellives_fleet_scrape_last_unix_seconds"
	MetricFleetScrapes  = "parallellives_fleet_scrapes_total"

	// Derived fleet-wide gauges (no labels).
	MetricFleetGenSkew      = "parallellives_fleet_generation_skew"
	MetricFleetLagMax       = "parallellives_fleet_ingest_lag_days_max"
	MetricFleetBreakersOpen = "parallellives_fleet_breakers_open"
	MetricFleetShards       = "parallellives_fleet_shards"
)

// sysClock is the federator's default clock; tests swap in a FakeClock
// so the last-scrape timestamp is deterministic.
type sysClock struct{}

func (sysClock) Now() time.Time { return time.Now() }

// federator owns the fleet rollup instruments. Scrapes re-set the
// per-shard gauges wholesale — the rollup is a snapshot of the fleet,
// not an accumulation, so a restarted shard's counters going backwards
// is fine by construction.
type federator struct {
	clock obs.Clock

	reqs     *obs.GaugeVec
	errs     *obs.GaugeVec
	p50      *obs.GaugeVec
	p99      *obs.GaugeVec
	inflight *obs.GaugeVec
	gen      *obs.GaugeVec
	lag      *obs.GaugeVec
	up       *obs.GaugeVec
	lastUnix *obs.GaugeVec
	scrapes  *obs.CounterVec

	genSkew      *obs.Gauge
	lagMax       *obs.Gauge
	breakersOpen *obs.Gauge
	shardsTotal  *obs.Gauge
}

func newFederator(reg *obs.Registry) *federator {
	return &federator{
		clock: sysClock{},
		reqs: reg.GaugeVec(MetricFleetRequests,
			"Per-shard serve_requests_total as last scraped.", "shard"),
		errs: reg.GaugeVec(MetricFleetErrors,
			"Per-shard serve_errors_total as last scraped.", "shard"),
		p50: reg.GaugeVec(MetricFleetP50,
			"Per-shard request latency p50, interpolated from the scraped histogram.", "shard"),
		p99: reg.GaugeVec(MetricFleetP99,
			"Per-shard request latency p99, interpolated from the scraped histogram.", "shard"),
		inflight: reg.GaugeVec(MetricFleetInflight,
			"Per-shard in-flight requests as last scraped.", "shard"),
		gen: reg.GaugeVec(MetricFleetGen,
			"Per-shard snapshot generation from the last probe.", "shard"),
		lag: reg.GaugeVec(MetricFleetLag,
			"Per-shard streaming ingest lag in days, where the shard runs a tailer.", "shard"),
		up: reg.GaugeVec(MetricFleetUp,
			"1 when the last scrape of this shard succeeded, else 0.", "shard"),
		lastUnix: reg.GaugeVec(MetricFleetLastUnix,
			"Unix time of this shard's last successful scrape.", "shard"),
		scrapes: reg.CounterVec(MetricFleetScrapes,
			"Federation scrapes by shard and outcome (ok, error).", "shard", "outcome"),
		genSkew: reg.Gauge(MetricFleetGenSkew,
			"Max minus min shard generation: non-zero while a rollout is in flight."),
		lagMax: reg.Gauge(MetricFleetLagMax,
			"Worst streaming ingest lag across shards reporting one."),
		breakersOpen: reg.Gauge(MetricFleetBreakersOpen,
			"Shard circuit breakers currently open."),
		shardsTotal: reg.Gauge(MetricFleetShards,
			"Shards this router fronts."),
	}
}

// ScrapeFleet scrapes every shard's /metrics concurrently and folds the
// results into the fleet rollup. Shard fetches run through the normal
// breaker-guarded client, so a dark shard costs one fast failure — and
// its scrape outcome, up flag, and stale gauges say so on the router's
// own exposition. No-op when federation is disabled.
func (rt *Router) ScrapeFleet(ctx context.Context) {
	f := rt.fed
	if f == nil {
		return
	}
	type scrape struct {
		samples obs.Samples
		ok      bool
	}
	results := make([]scrape, len(rt.shards))
	var wg sync.WaitGroup
	for i, sc := range rt.shards {
		wg.Add(1)
		go func(i int, sc *shardClient) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			u, err := sc.fetch(sctx, http.MethodGet, "/metrics", "")
			if err != nil || u.status != http.StatusOK {
				return
			}
			samples, err := obs.ParseExposition(u.body)
			if err != nil {
				return
			}
			results[i] = scrape{samples: samples, ok: true}
		}(i, sc)
	}
	wg.Wait()

	now := float64(f.clock.Now().Unix())
	var minGen, maxGen int64
	var lagMax float64
	lagSeen := false
	open := 0
	for i, sc := range rt.shards {
		label := strconv.Itoa(sc.index)
		state, gen, _ := sc.state()
		if state == "open" {
			open++
		}
		if i == 0 || gen < minGen {
			minGen = gen
		}
		if i == 0 || gen > maxGen {
			maxGen = gen
		}
		f.gen.With(label).Set(float64(gen))

		res := results[i]
		if !res.ok {
			f.scrapes.With(label, "error").Inc()
			f.up.With(label).Set(0)
			continue
		}
		f.scrapes.With(label, "ok").Inc()
		f.up.With(label).Set(1)
		f.lastUnix.With(label).Set(now)
		f.reqs.With(label).Set(res.samples.Sum(serve.MetricRequests, nil))
		f.errs.With(label).Set(res.samples.Sum(serve.MetricErrors, nil))
		f.p50.With(label).Set(res.samples.Quantile(serve.MetricLatency, 0.5, nil))
		f.p99.With(label).Set(res.samples.Quantile(serve.MetricLatency, 0.99, nil))
		if v, ok := res.samples.Value(serve.MetricInFlight, nil); ok {
			f.inflight.With(label).Set(v)
		}
		if v, ok := res.samples.Value(stream.MetricIngestLagDays, nil); ok {
			f.lag.With(label).Set(v)
			if !lagSeen || v > lagMax {
				lagMax, lagSeen = v, true
			}
		}
	}
	f.genSkew.Set(float64(maxGen - minGen))
	if lagSeen {
		f.lagMax.Set(lagMax)
	}
	f.breakersOpen.Set(float64(open))
	f.shardsTotal.Set(float64(len(rt.shards)))
}
