package router

import (
	"context"
	"net/http"
	"strconv"
	"sync"
	"time"

	"parallellives/internal/obs"
	"parallellives/internal/serve"
	"parallellives/internal/stream"
)

// Fleet rollup metric names. The router scrapes every replica's
// /metrics and re-exports the fleet view under parallellives_fleet_*
// with bounded `shard` (range index) and `replica` (ordinal within the
// range) labels — one series per replica slot, never per ASN or per
// path, per the DESIGN.md §8 cardinality budget. Ordinals, not replica
// IDs: a range's series count is its replica count no matter how often
// the processes behind it restart. Mirrored counter readings are
// exported as gauges ("the value last scraped"), so only the router's
// own scrape counter keeps the _total suffix.
const (
	MetricFleetRequests = "parallellives_fleet_requests"
	MetricFleetErrors   = "parallellives_fleet_errors"
	MetricFleetP50      = "parallellives_fleet_request_p50_seconds"
	MetricFleetP99      = "parallellives_fleet_request_p99_seconds"
	MetricFleetInflight = "parallellives_fleet_inflight"
	MetricFleetGen      = "parallellives_fleet_generation"
	MetricFleetLag      = "parallellives_fleet_ingest_lag_days"
	MetricFleetUp       = "parallellives_fleet_shard_up"
	MetricFleetLastUnix = "parallellives_fleet_scrape_last_unix_seconds"
	MetricFleetScrapes  = "parallellives_fleet_scrapes_total"

	// Derived fleet-wide gauges (no labels).
	MetricFleetGenSkew      = "parallellives_fleet_generation_skew"
	MetricFleetLagMax       = "parallellives_fleet_ingest_lag_days_max"
	MetricFleetBreakersOpen = "parallellives_fleet_breakers_open"
	MetricFleetShards       = "parallellives_fleet_shards"
	MetricFleetReplicas     = "parallellives_fleet_replicas"
)

// sysClock is the federator's default clock; tests swap in a FakeClock
// so the last-scrape timestamp is deterministic.
type sysClock struct{}

func (sysClock) Now() time.Time { return time.Now() }

// federator owns the fleet rollup instruments. Scrapes re-set the
// per-replica gauges wholesale — the rollup is a snapshot of the fleet,
// not an accumulation, so a restarted replica's counters going
// backwards is fine by construction.
type federator struct {
	clock obs.Clock

	reqs     *obs.GaugeVec
	errs     *obs.GaugeVec
	p50      *obs.GaugeVec
	p99      *obs.GaugeVec
	inflight *obs.GaugeVec
	gen      *obs.GaugeVec
	lag      *obs.GaugeVec
	up       *obs.GaugeVec
	lastUnix *obs.GaugeVec
	scrapes  *obs.CounterVec

	genSkew      *obs.Gauge
	lagMax       *obs.Gauge
	breakersOpen *obs.Gauge
	shardsTotal  *obs.Gauge
	replicas     *obs.Gauge

	// emitted tracks every (shard, replica) pair with live fleet series,
	// so prune can drop the ones a topology swap retired.
	mu      sync.Mutex
	emitted map[[2]string]bool
}

func newFederator(reg *obs.Registry) *federator {
	return &federator{
		clock:   sysClock{},
		emitted: make(map[[2]string]bool),
		reqs: reg.GaugeVec(MetricFleetRequests,
			"Per-replica serve_requests_total as last scraped.", "shard", "replica"),
		errs: reg.GaugeVec(MetricFleetErrors,
			"Per-replica serve_errors_total as last scraped.", "shard", "replica"),
		p50: reg.GaugeVec(MetricFleetP50,
			"Per-replica request latency p50, interpolated from the scraped histogram.", "shard", "replica"),
		p99: reg.GaugeVec(MetricFleetP99,
			"Per-replica request latency p99, interpolated from the scraped histogram.", "shard", "replica"),
		inflight: reg.GaugeVec(MetricFleetInflight,
			"Per-replica in-flight requests as last scraped.", "shard", "replica"),
		gen: reg.GaugeVec(MetricFleetGen,
			"Per-replica snapshot generation from the last probe.", "shard", "replica"),
		lag: reg.GaugeVec(MetricFleetLag,
			"Per-replica streaming ingest lag in days, where the replica runs a tailer.", "shard", "replica"),
		up: reg.GaugeVec(MetricFleetUp,
			"1 when the last scrape of this replica succeeded, else 0.", "shard", "replica"),
		lastUnix: reg.GaugeVec(MetricFleetLastUnix,
			"Unix time of this replica's last successful scrape.", "shard", "replica"),
		scrapes: reg.CounterVec(MetricFleetScrapes,
			"Federation scrapes by shard, replica and outcome (ok, error).", "shard", "replica", "outcome"),
		genSkew: reg.Gauge(MetricFleetGenSkew,
			"Max minus min replica generation: non-zero while a rollout is in flight."),
		lagMax: reg.Gauge(MetricFleetLagMax,
			"Worst streaming ingest lag across replicas reporting one."),
		breakersOpen: reg.Gauge(MetricFleetBreakersOpen,
			"Replica circuit breakers currently open."),
		shardsTotal: reg.Gauge(MetricFleetShards,
			"Shard ranges this router fronts."),
		replicas: reg.Gauge(MetricFleetReplicas,
			"Replica processes this router fronts, across all ranges."),
	}
}

// touch records a (shard, replica) pair as having live fleet series.
func (f *federator) touch(shard, rep string) {
	f.mu.Lock()
	f.emitted[[2]string{shard, rep}] = true
	f.mu.Unlock()
}

// prune drops fleet series for replica slots the given topology no
// longer has, so the exposition reflects the live fleet rather than the
// union of every topology ever served.
func (f *federator) prune(topo *topology) {
	live := map[[2]string]bool{}
	for _, set := range topo.sets {
		for ord := range set.replicas {
			live[[2]string{strconv.Itoa(set.index), strconv.Itoa(ord)}] = true
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for key := range f.emitted {
		if live[key] {
			continue
		}
		shard, rep := key[0], key[1]
		f.reqs.Drop(shard, rep)
		f.errs.Drop(shard, rep)
		f.p50.Drop(shard, rep)
		f.p99.Drop(shard, rep)
		f.inflight.Drop(shard, rep)
		f.gen.Drop(shard, rep)
		f.lag.Drop(shard, rep)
		f.up.Drop(shard, rep)
		f.lastUnix.Drop(shard, rep)
		f.scrapes.Drop(shard, rep, "ok")
		f.scrapes.Drop(shard, rep, "error")
		delete(f.emitted, key)
	}
}

// ScrapeFleet scrapes every replica's /metrics concurrently and folds
// the results into the fleet rollup. Replica fetches run through the
// normal breaker-guarded client, so a dark replica costs one fast
// failure — and its scrape outcome, up flag, and stale gauges say so on
// the router's own exposition. No-op when federation is disabled.
func (rt *Router) ScrapeFleet(ctx context.Context) {
	f := rt.fed
	if f == nil {
		return
	}
	topo := rt.topo.Load()
	type scrape struct {
		samples obs.Samples
		ok      bool
	}
	results := make([]scrape, len(topo.replicas))
	var wg sync.WaitGroup
	for i, sc := range topo.replicas {
		wg.Add(1)
		go func(i int, sc *shardClient) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			u, err := sc.fetch(sctx, http.MethodGet, "/metrics", "")
			if err != nil || u.status != http.StatusOK {
				return
			}
			samples, err := obs.ParseExposition(u.body)
			if err != nil {
				return
			}
			results[i] = scrape{samples: samples, ok: true}
		}(i, sc)
	}
	wg.Wait()

	now := float64(f.clock.Now().Unix())
	var minGen, maxGen int64
	var lagMax float64
	lagSeen := false
	open := 0
	for i, sc := range topo.replicas {
		shard, rep := strconv.Itoa(sc.index), strconv.Itoa(sc.ordinal)
		f.touch(shard, rep)
		state, gen, _ := sc.state()
		if state == "open" {
			open++
		}
		if i == 0 || gen < minGen {
			minGen = gen
		}
		if i == 0 || gen > maxGen {
			maxGen = gen
		}
		f.gen.With(shard, rep).Set(float64(gen))

		res := results[i]
		if !res.ok {
			f.scrapes.With(shard, rep, "error").Inc()
			f.up.With(shard, rep).Set(0)
			continue
		}
		f.scrapes.With(shard, rep, "ok").Inc()
		f.up.With(shard, rep).Set(1)
		f.lastUnix.With(shard, rep).Set(now)
		f.reqs.With(shard, rep).Set(res.samples.Sum(serve.MetricRequests, nil))
		f.errs.With(shard, rep).Set(res.samples.Sum(serve.MetricErrors, nil))
		f.p50.With(shard, rep).Set(res.samples.Quantile(serve.MetricLatency, 0.5, nil))
		f.p99.With(shard, rep).Set(res.samples.Quantile(serve.MetricLatency, 0.99, nil))
		if v, ok := res.samples.Value(serve.MetricInFlight, nil); ok {
			f.inflight.With(shard, rep).Set(v)
		}
		if v, ok := res.samples.Value(stream.MetricIngestLagDays, nil); ok {
			f.lag.With(shard, rep).Set(v)
			if !lagSeen || v > lagMax {
				lagMax, lagSeen = v, true
			}
		}
	}
	f.genSkew.Set(float64(maxGen - minGen))
	if lagSeen {
		f.lagMax.Set(lagMax)
	}
	f.breakersOpen.Set(float64(open))
	f.shardsTotal.Set(float64(len(topo.sets)))
	f.replicas.Set(float64(len(topo.replicas)))
}
