package router

import (
	"context"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"parallellives/internal/asn"
)

// replicaSet is one shard range and every replica serving it. The set
// is immutable once its topology generation is published; only the
// round-robin cursor and the replicas' breakers mutate afterwards, both
// atomically.
type replicaSet struct {
	index    int
	lo, hi   asn.ASN
	asns     int
	replicas []*shardClient
	rr       atomic.Uint64
}

// candidates returns the replicas in the order a read should try them:
// closed-breaker replicas first, rotated round-robin so load spreads,
// then the non-closed ones as a last resort (their breakers still gate
// each attempt in fetch, so an open replica inside its cooldown costs
// nothing). A replica whose breaker is open is therefore never picked
// while a sibling's breaker is closed.
func (set *replicaSet) candidates() []*shardClient {
	n := len(set.replicas)
	if n == 1 {
		return set.replicas
	}
	offset := int(set.rr.Add(1) % uint64(n))
	closed := make([]*shardClient, 0, n)
	var rest []*shardClient
	for i := 0; i < n; i++ {
		sc := set.replicas[(offset+i)%n]
		if sc.breakerState() == "closed" {
			closed = append(closed, sc)
		} else {
			rest = append(rest, sc)
		}
	}
	return append(closed, rest...)
}

// dark reports whether every replica of the range has an open breaker —
// the range equivalent of the old single-process "breaker open".
func (set *replicaSet) dark() bool {
	for _, sc := range set.replicas {
		if sc.breakerState() != "open" {
			return false
		}
	}
	return true
}

// fetchMeta carries what a replica-set read went through on its way to
// an answer, so the response can say so (headers) and drills can assert
// it (loadgen's failover accounting).
type fetchMeta struct {
	failovers int
	hedgeWin  bool
}

// mark stamps the failover/hedge outcome onto the response headers.
// Both headers are additive: an unreplicated fleet never emits them, so
// byte-equivalence against a single process holds whenever no replica
// actually failed.
func (m fetchMeta) mark(h http.Header) {
	if m.failovers > 0 {
		h.Set(FailoverHeader, strconv.Itoa(m.failovers))
	}
	if m.hedgeWin {
		h.Set(HedgeHeader, "win")
	}
}

// fetchSet performs one read against a replica set: candidates in
// breaker-aware order, failing over past transport errors and 5xx, with
// an optional hedged second request per attempt. The error surfaces
// only after every replica has refused — killing one replica of R≥2
// yields a failover, never a client-visible error.
func (rt *Router) fetchSet(ctx context.Context, set *replicaSet, method, pathq, inm string) (*upstream, *shardClient, fetchMeta, error) {
	var meta fetchMeta
	cands := set.candidates()
	var lastErr error
	for i := 0; i < len(cands); i++ {
		primary := cands[i]
		var backup *shardClient
		if rt.hedgeAfter > 0 && i+1 < len(cands) {
			backup = cands[i+1]
		}
		u, served, hedged, triedBackup, err := rt.fetchHedged(ctx, primary, backup, method, pathq, inm)
		if err == nil {
			if hedged {
				meta.hedgeWin = true
				rt.hedgeWins.Inc()
			}
			return u, served, meta, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			// The client's deadline, not the replica's health: failing over
			// would just burn the next replica's time on a dead request.
			return nil, nil, meta, err
		}
		if triedBackup {
			// The hedge already burned the next candidate too.
			i++
		}
		if i+1 < len(cands) {
			meta.failovers++
			rt.failovers.With(strconv.Itoa(set.index)).Inc()
		}
	}
	return nil, nil, meta, lastErr
}

// fetchHedged runs one attempt against primary, launching a hedge
// request against backup if primary has not answered within
// rt.hedgeAfter. The first success wins and the loser is cancelled —
// a cancelled attempt lands as breaker-neutral, so hedging never trips
// a healthy replica's breaker. A primary that fails *before* the hedge
// timer fires returns immediately: the failover loop reaches the next
// replica faster than waiting out the timer would.
func (rt *Router) fetchHedged(ctx context.Context, primary, backup *shardClient, method, pathq, inm string) (u *upstream, served *shardClient, hedgeWon, triedBackup bool, err error) {
	if backup == nil || rt.hedgeAfter <= 0 {
		u, err = rt.fetchOne(ctx, primary, method, pathq, inm)
		return u, primary, false, false, err
	}

	type attempt struct {
		u   *upstream
		sc  *shardClient
		err error
	}
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	bctx, bcancel := context.WithCancel(ctx)
	defer bcancel()

	ch := make(chan attempt, 2)
	go func() {
		u, err := rt.fetchOne(pctx, primary, method, pathq, inm)
		ch <- attempt{u, primary, err}
	}()

	timer := time.NewTimer(rt.hedgeAfter)
	defer timer.Stop()

	pending := 1
	launched := false
	var firstErr error
	for pending > 0 {
		select {
		case a := <-ch:
			pending--
			if a.err == nil {
				// Winner; the deferred cancels reap the loser, whose
				// cancelled fetch records breaker-neutral.
				return a.u, a.sc, a.sc != primary, launched, nil
			}
			if firstErr == nil {
				firstErr = a.err
			}
			if !launched {
				// Primary failed fast: let the failover loop move on
				// instead of waiting for the hedge timer.
				return nil, nil, false, false, a.err
			}
		case <-timer.C:
			if !launched {
				launched = true
				pending++
				rt.hedges.Inc()
				go func() {
					u, err := rt.fetchOne(bctx, backup, method, pathq, inm)
					ch <- attempt{u, backup, err}
				}()
			}
		}
	}
	return nil, nil, false, launched, firstErr
}

// fetchOne is a single replica fetch with per-replica accounting.
func (rt *Router) fetchOne(ctx context.Context, sc *shardClient, method, pathq, inm string) (*upstream, error) {
	if sc.reqs != nil {
		sc.reqs.Inc()
	}
	u, err := sc.fetch(ctx, method, pathq, inm)
	if err != nil && sc.errs != nil {
		sc.errs.Inc()
	}
	return u, err
}
