package router

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"parallellives/internal/obs"
)

// seqIDs is a deterministic span/trace ID source for tests. Scatter
// fetches start spans concurrently, so the counter must be atomic.
func seqIDs() obs.IDSource {
	var n atomic.Int64
	return func() string {
		return fmt.Sprintf("%016x", n.Add(1))
	}
}

// findChild returns the first child (depth 1) whose name has the prefix.
func findChild(sum obs.SpanSummary, prefix string) (obs.SpanSummary, bool) {
	for _, c := range sum.Children {
		if strings.HasPrefix(c.Name, prefix) {
			return c, true
		}
	}
	return obs.SpanSummary{}, false
}

// TestStitchedTraceAcrossShards is the acceptance pin for trace
// propagation: one traced request through the router over four shard
// processes must come back as a single span tree — the router's root,
// its shard-call child, and the shard's own serve span stitched
// underneath, all under the caller's trace ID.
func TestStitchedTraceAcrossShards(t *testing.T) {
	set := startShards(t, fixtureSnapshot(1), 4)
	rt := newTestRouter(t, set, Options{SpanIDs: seqIDs()})
	parent := obs.SpanContext{TraceID: strings.Repeat("ab", 16), SpanID: strings.Repeat("cd", 8)}

	rec := get(rt, "/v1/asn/64496", map[string]string{obs.TraceparentHeader: parent.Traceparent()})
	if rec.Code != 200 {
		t.Fatalf("traced request: status %d: %s", rec.Code, rec.Body)
	}
	hdr := rec.Header().Get(obs.SpanHeader)
	if hdr == "" {
		t.Fatalf("traced response missing %s header", obs.SpanHeader)
	}
	var root obs.SpanSummary
	if err := json.Unmarshal([]byte(hdr), &root); err != nil {
		t.Fatalf("span header is not SpanSummary JSON: %v\n%s", err, hdr)
	}

	// Layer 1: the router's root span joined the caller's trace.
	if root.TraceID != parent.TraceID || root.ParentID != parent.SpanID {
		t.Fatalf("root joined (%s, parent %s), want (%s, %s)", root.TraceID, root.ParentID, parent.TraceID, parent.SpanID)
	}
	if root.Name != "route /v1/asn/{n}" || root.SpanID == "" {
		t.Fatalf("root span = %+v", root)
	}

	// Layer 2: the upstream call to the owning shard is a child span.
	shardSpan, ok := findChild(root, "shard[")
	if !ok {
		t.Fatalf("no shard-call child span in %s", hdr)
	}
	if !strings.Contains(shardSpan.Name, "GET /v1/asn/64496") || shardSpan.SpanID == "" {
		t.Fatalf("shard span = %+v", shardSpan)
	}
	if shardSpan.Attrs["status"] != 200 {
		t.Errorf("shard span status attr = %d", shardSpan.Attrs["status"])
	}

	// Layer 3: the shard process's own serve span, stitched back across
	// the process boundary, parented on the shard-call span.
	serveSpan, ok := findChild(shardSpan, "serve /v1/asn/{n}")
	if !ok {
		t.Fatalf("shard span carries no stitched serve span: %+v", shardSpan)
	}
	if serveSpan.TraceID != parent.TraceID {
		t.Errorf("serve span trace = %q, want %q", serveSpan.TraceID, parent.TraceID)
	}
	if serveSpan.ParentID != shardSpan.SpanID {
		t.Errorf("serve span parent = %q, want the shard-call span %q", serveSpan.ParentID, shardSpan.SpanID)
	}
	if _, ok := findChild(serveSpan, "lifestore.lookup"); !ok {
		t.Errorf("stitched serve span lost its local children: %+v", serveSpan)
	}

	// An untraced request must stay header-free (additivity; the
	// byte-equivalence against a single server is TestShardedEquivalence).
	rec = get(rt, "/v1/asn/64496", nil)
	if h := rec.Header().Get(obs.SpanHeader); h != "" {
		t.Errorf("untraced response grew a span header: %q", h)
	}
}

// TestStitchedScatterTrace pins the fan-out shape: a traced aggregate
// request shows one shard-call child per shard, each carrying that
// shard's stitched serve span.
func TestStitchedScatterTrace(t *testing.T) {
	set := startShards(t, fixtureSnapshot(1), 4)
	rt := newTestRouter(t, set, Options{SpanIDs: seqIDs()})
	parent := obs.SpanContext{TraceID: strings.Repeat("12", 16), SpanID: strings.Repeat("34", 8)}

	rec := get(rt, "/v1/taxonomy", map[string]string{obs.TraceparentHeader: parent.Traceparent()})
	if rec.Code != 200 {
		t.Fatalf("traced scatter: status %d", rec.Code)
	}
	var root obs.SpanSummary
	if err := json.Unmarshal([]byte(rec.Header().Get(obs.SpanHeader)), &root); err != nil {
		t.Fatal(err)
	}
	shardCalls := 0
	for _, c := range root.Children {
		if !strings.HasPrefix(c.Name, "shard[") {
			continue
		}
		shardCalls++
		if _, ok := findChild(c, "serve /v1/taxonomy"); !ok {
			t.Errorf("shard call %q has no stitched serve span", c.Name)
		}
	}
	if shardCalls != 4 {
		t.Errorf("traced scatter shows %d shard calls, want 4", shardCalls)
	}
}

// TestRouterSlowAggregation pins the fleet /v1/debug/slow: the router
// answers with its own exemplar ring plus one row per shard, and a dark
// shard degrades to an error row instead of failing the endpoint.
func TestRouterSlowAggregation(t *testing.T) {
	set := startShards(t, fixtureSnapshot(1), 2)
	rt := newTestRouter(t, set, Options{})

	for i := 0; i < 3; i++ {
		if rec := get(rt, "/v1/asn/64496", nil); rec.Code != 200 {
			t.Fatalf("warmup: status %d", rec.Code)
		}
	}
	rec := get(rt, "/v1/debug/slow", nil)
	if rec.Code != 200 {
		t.Fatalf("/v1/debug/slow: status %d", rec.Code)
	}
	var doc struct {
		Router obs.ExemplarSnapshot `json:"router"`
		Shards []shardSlowJSON      `json:"shards"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("slow body: %v", err)
	}
	if doc.Router.Seen < 3 || len(doc.Router.Slowest) == 0 {
		t.Fatalf("router ring = %+v", doc.Router)
	}
	if doc.Router.Slowest[0].Trace.Name == "" {
		t.Errorf("router exemplar has no span tree")
	}
	if len(doc.Shards) != 2 {
		t.Fatalf("shard rows = %d, want 2", len(doc.Shards))
	}
	for _, row := range doc.Shards {
		if row.Error != "" {
			t.Errorf("shard %d errored: %s", row.Shard, row.Error)
			continue
		}
		var snap obs.ExemplarSnapshot
		if err := json.Unmarshal(row.Exemplars, &snap); err != nil {
			t.Errorf("shard %d exemplars: %v", row.Shard, err)
		}
	}

	// Kill one shard: its row degrades, the endpoint stays 200.
	set.flakies[1].broken.Store(true)
	rec = get(rt, "/v1/debug/slow", nil)
	if rec.Code != 200 {
		t.Fatalf("/v1/debug/slow with a dark shard: status %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Shards[1].Error == "" {
		t.Errorf("dark shard row reports no error: %+v", doc.Shards[1])
	}
}
