package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"parallellives/internal/asn"
	"parallellives/internal/obs"
	"parallellives/internal/serve"
)

// errShardDown classifies a shard that could not answer: breaker open,
// transport failure, or a 5xx. The router degrades instead of failing
// the whole request where its policy allows.
var errShardDown = errors.New("router: shard unavailable")

// upstream is one shard response captured whole, so it can be proxied
// byte-for-byte or parked in the router cache.
type upstream struct {
	status      int
	contentType string
	etag        string
	retryAfter  string
	body        []byte
}

// shardIdentity is the /v1/shard handshake payload.
type shardIdentity struct {
	Sharded bool `json:"sharded"`
	Shard   *struct {
		Index int     `json:"index"`
		Count int     `json:"count"`
		Lo    asn.ASN `json:"lo"`
		Hi    asn.ASN `json:"hi"`
		Sum   string  `json:"sum"`
	} `json:"shard"`
	Generation int64  `json:"generation"`
	ASNCount   int    `json:"asnCount"`
	Replica    string `json:"replica"`
}

// shardClient is the router's handle on one replica process: its base
// URL, the range it serves, a circuit breaker, and the identity the
// last handshake or probe reported. Until the handshake has grouped
// replicas into sets the breaker and counters are nil — fetch treats a
// nil breaker as always-allow with no accounting.
type shardClient struct {
	index   int    // shard range index
	ordinal int    // position within the range's replica set
	replica string // the process's self-reported replica ID
	baseURL string
	client  *http.Client
	breaker *serve.Breaker

	// Pre-resolved (shard, replica) instrument handles, assigned when
	// the topology admits this client.
	reqs *obs.Counter
	errs *obs.Counter

	lo, hi asn.ASN

	mu       sync.Mutex
	gen      int64
	asnCount int
	lastSeen time.Time
}

// identity fetches /v1/shard and records the reported generation. It is
// both the startup handshake and the recurring probe — and because it
// runs through the breaker, a dead shard's recovery is discovered here
// without spending a client request on the half-open probe.
func (sc *shardClient) identity(ctx context.Context) (shardIdentity, error) {
	var id shardIdentity
	resp, err := sc.fetch(ctx, http.MethodGet, "/v1/shard", "")
	if err != nil {
		return id, err
	}
	if resp.status != http.StatusOK {
		return id, fmt.Errorf("router: shard %s /v1/shard = %d", sc.baseURL, resp.status)
	}
	if err := json.Unmarshal(resp.body, &id); err != nil {
		return id, fmt.Errorf("router: shard %s identity: %w", sc.baseURL, err)
	}
	sc.mu.Lock()
	sc.gen = id.Generation
	sc.asnCount = id.ASNCount
	sc.lastSeen = time.Now()
	sc.mu.Unlock()
	return id, nil
}

// state summarises the client for health and topology endpoints.
func (sc *shardClient) state() (breakerState string, gen int64, asnCount int) {
	breakerState = "closed"
	if sc.breaker != nil {
		breakerState, _, _, _ = sc.breaker.Snapshot()
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return breakerState, sc.gen, sc.asnCount
}

// Nil-safe breaker transitions: a handshake-phase client has no breaker
// yet, and its probes must not crash for it.
func (sc *shardClient) onNeutral() {
	if sc.breaker != nil {
		sc.breaker.OnNeutral()
	}
}

func (sc *shardClient) onFailure() {
	if sc.breaker != nil {
		sc.breaker.OnFailure()
	}
}

func (sc *shardClient) onSuccess() {
	if sc.breaker != nil {
		sc.breaker.OnSuccess()
	}
}

// breakerState is the picker's view: "closed" sorts first.
func (sc *shardClient) breakerState() string {
	if sc.breaker == nil {
		return "closed"
	}
	state, _, _, _ := sc.breaker.Snapshot()
	return state
}

// fetch performs one breaker-guarded request against the replica and
// captures the response whole. The breaker's failure taxonomy mirrors
// the serving tier's: transport errors and 5xx are failures, a context
// expiry is neutral (the shard may be fine; the client gave up), and
// everything else — including 4xx, which prove the shard answered — is
// success.
func (sc *shardClient) fetch(ctx context.Context, method, pathq, ifNoneMatch string) (*upstream, error) {
	if sc.breaker != nil && !sc.breaker.Allow() {
		return nil, fmt.Errorf("%w: breaker open for %s", errShardDown, sc.baseURL)
	}
	// One child span per upstream call (no-op unless the request carries
	// a tracer). When the caller's trace crossed a process boundary to
	// reach us, cross the next one too: inject traceparent so the shard
	// joins the same trace, and stitch its span summary back under this
	// span (DESIGN.md §13).
	ctx, sp := obs.StartSpan(ctx, "shard["+strconv.Itoa(sc.index)+"] "+method+" "+pathq)
	defer sp.End()
	// Replica identity rides as an attribute, not in the span name: the
	// name stays stable per range so cross-replica traces aggregate.
	sp.SetAttr("replica", int64(sc.ordinal))
	_, propagate := obs.RemoteParentFrom(ctx)
	req, err := http.NewRequestWithContext(ctx, method, sc.baseURL+pathq, nil)
	if err != nil {
		sc.onNeutral()
		return nil, err
	}
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	if propagate {
		if pc := sp.SpanContext(); pc.Valid() {
			req.Header.Set(obs.TraceparentHeader, pc.Traceparent())
		}
	}
	resp, err := sc.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			sc.onNeutral()
			return nil, ctx.Err()
		}
		sc.onFailure()
		return nil, fmt.Errorf("%w: %v", errShardDown, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		if ctx.Err() != nil {
			sc.onNeutral()
			return nil, ctx.Err()
		}
		sc.onFailure()
		return nil, fmt.Errorf("%w: reading body: %v", errShardDown, err)
	}
	sp.SetAttr("status", int64(resp.StatusCode))
	if resp.StatusCode >= http.StatusInternalServerError {
		sc.onFailure()
		return nil, fmt.Errorf("%w: %s answered %d", errShardDown, sc.baseURL, resp.StatusCode)
	}
	sc.onSuccess()
	if propagate {
		if h := resp.Header.Get(obs.SpanHeader); h != "" {
			var sum obs.SpanSummary
			if json.Unmarshal([]byte(h), &sum) == nil {
				sp.AttachRemote(sum)
			}
		}
	}
	return &upstream{
		status:      resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		etag:        resp.Header.Get("ETag"),
		retryAfter:  resp.Header.Get("Retry-After"),
		body:        body,
	}, nil
}

// relay writes a captured shard response to the client byte-for-byte:
// same status, content type, validator and body. This is what keeps the
// sharded tier indistinguishable from a single process.
func relay(w http.ResponseWriter, u *upstream) {
	if u.contentType != "" {
		w.Header().Set("Content-Type", u.contentType)
	}
	if u.etag != "" {
		w.Header().Set("ETag", u.etag)
	}
	if u.retryAfter != "" {
		w.Header().Set("Retry-After", u.retryAfter)
	}
	if u.status == http.StatusNotModified {
		w.WriteHeader(u.status)
		return
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(u.body)))
	w.WriteHeader(u.status)
	w.Write(u.body)
}
