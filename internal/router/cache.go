package router

import (
	"container/list"
	"sync"
)

// entry is one cached upstream response plus the shard index it came
// from — revalidation must go back to the same shard, whose generation
// counter the entry's validator encodes.
type entry struct {
	shard int
	resp  upstream
}

// cache is a fixed-capacity LRU over whole upstream responses. Same
// discipline as the serving tier's response cache: exact hit/miss
// counts under the structure lock, flush on reload.
type cache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	entries  map[string]*list.Element
	hits     uint64
	misses   uint64
}

type cacheEntry struct {
	key string
	val entry
}

func newCache(capacity int) *cache {
	return &cache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element, capacity),
	}
}

func (c *cache) get(key string) (entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return entry{}, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

func (c *cache) put(key string, val entry) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
}

// drop removes one entry (a failed revalidation must not pin it).
func (c *cache) drop(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.Remove(el)
		delete(c.entries, key)
	}
}

func (c *cache) flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	clear(c.entries)
}

func (c *cache) stats() (hits, misses uint64, size, capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len(), c.capacity
}
