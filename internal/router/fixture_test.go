package router

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"parallellives/internal/asn"
	"parallellives/internal/core"
	"parallellives/internal/dates"
	"parallellives/internal/intervals"
	"parallellives/internal/lifestore"
	"parallellives/internal/obs"
	"parallellives/internal/serve"
)

// fixtureASNs is the ASN population of the router fixture — spread so a
// 4-way plan puts distinct ASNs in every shard, with gaps for misses.
var fixtureASNs = []asn.ASN{10, 20, 30, 100, 200, 300, 1000, 2000, 64496, 4200000000}

// fixtureSnapshot hand-builds a deterministic snapshot over
// fixtureASNs, including a small alive series so the aggregate
// endpoints have real bodies. seed varies the content (org IDs) without
// moving the ASN population, so reloading seed 2 over seed 1 keeps the
// shard plan's ranges stable — the same invariant production reloads
// must hold.
func fixtureSnapshot(seed int64) *lifestore.Snapshot {
	day := dates.MustParse
	start, end := day("2004-01-01"), day("2004-03-01")
	series := &core.AliveSeries{Start: start, End: end}
	n := end.Sub(start) + 1
	series.AdminOverall = make([]int, n)
	series.OpOverall = make([]int, n)
	for r := range series.AdminPerRIR {
		series.AdminPerRIR[r] = make([]int, n)
		series.OpPerRIR[r] = make([]int, n)
	}
	for i := 0; i < n; i++ {
		series.AdminOverall[i] = len(fixtureASNs)
		series.OpOverall[i] = len(fixtureASNs) - 1
		series.AdminPerRIR[asn.RIPENCC][i] = len(fixtureASNs)
	}

	snap := &lifestore.Snapshot{
		Meta: lifestore.Meta{
			FormatVersion: lifestore.FormatVersion,
			Start:         start,
			End:           end,
			Timeout:       365,
			Visibility:    2,
			Scale:         0.01,
			Seed:          seed,
		},
		Taxonomy: core.TaxonomyCounts{AdminComplete: 6, AdminPartial: 4, OpComplete: 5, OpPartial: 5},
		Series:   series,
	}
	for i, a := range fixtureASNs {
		s := day("2004-01-05").AddDays(i)
		snap.Lives = append(snap.Lives, lifestore.ASNLives{
			ASN: a,
			Admin: []lifestore.AdminLife{{
				RIR:      asn.RIPENCC,
				CC:       "NL",
				OpaqueID: fmt.Sprintf("org-%d-%d", seed, i),
				RegDate:  s,
				Span:     intervals.Interval{Start: s, End: s.AddDays(30)},
				Pieces:   1,
				Category: core.CatComplete,
			}},
			Op: []lifestore.OpLife{{
				Span:     intervals.Interval{Start: s.AddDays(2), End: s.AddDays(20)},
				Category: core.CatPartial,
			}},
		})
	}
	snap.Meta.ASNCount = len(snap.Lives)
	snap.Meta.AdminLives = len(snap.Lives)
	snap.Meta.OpLives = len(snap.Lives)
	return snap
}

// flaky wraps a shard server so tests can kill and revive it without
// juggling listeners: while broken, every request answers 500 (which
// the router's breaker treats exactly like a dead process). A non-zero
// delay stalls every response first — the slow-replica half of the
// hedged-read tests.
type flaky struct {
	h      http.Handler
	broken atomic.Bool
	delay  atomic.Int64 // nanoseconds added before answering
	hits   atomic.Int64
}

func (f *flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.hits.Add(1)
	if d := f.delay.Load(); d > 0 {
		select {
		case <-time.After(time.Duration(d)):
		case <-r.Context().Done():
			return
		}
	}
	if f.broken.Load() {
		http.Error(w, "injected shard failure", http.StatusInternalServerError)
		return
	}
	f.h.ServeHTTP(w, r)
}

// shardSet is a running set of shard servers over one sharded fixture.
type shardSet struct {
	urls    []string
	flakies []*flaky
	servers []*httptest.Server
	paths   []string
	plan    lifestore.ShardPlan
}

// startShards cuts the fixture into n shard files and serves each with
// a full serve.Server (reloader wired, so fan-out reload works) behind
// a flaky wrapper.
func startShards(t *testing.T, snap *lifestore.Snapshot, n int) *shardSet {
	t.Helper()
	dir := t.TempDir()
	plan, paths, err := lifestore.SaveSharded(snap, n, filepath.Join(dir, "lives.%d.snap"))
	if err != nil {
		t.Fatal(err)
	}
	set := &shardSet{paths: paths, plan: plan}
	for _, path := range paths {
		o := obs.New()
		open := serve.FileOpener(path, o.Registry)
		src, closer, source, err := open(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		sw := serve.NewSwappable(src, closer, source)
		rel := serve.NewReloader(sw, open, o.Registry)
		s := serve.New(sw, serve.Options{Obs: o, Reloader: rel})
		f := &flaky{h: s}
		ts := httptest.NewServer(f)
		t.Cleanup(ts.Close)
		set.urls = append(set.urls, ts.URL)
		set.flakies = append(set.flakies, f)
		set.servers = append(set.servers, ts)
	}
	return set
}

// rewriteShards overwrites the shard files with a new seed's content,
// for reload tests.
func (s *shardSet) rewriteShards(t *testing.T, snap *lifestore.Snapshot) {
	t.Helper()
	dir := filepath.Dir(s.paths[0])
	_, paths, err := lifestore.SaveSharded(snap, len(s.paths), filepath.Join(dir, "lives.%d.snap"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range paths {
		if paths[i] != s.paths[i] {
			t.Fatalf("rewrite moved shard file %s -> %s", s.paths[i], paths[i])
		}
	}
}

// replicaFleet is a running replicated fleet over one sharded fixture:
// `ranges` shard files, each served by `replicas` independent
// serve.Server processes (distinct replica IDs, shared shard file).
type replicaFleet struct {
	urls  []string
	byURL map[string]*flaky
	paths []string
	plan  lifestore.ShardPlan
}

// startReplicated cuts the fixture into `ranges` shard files and serves
// each with `replicas` full serve.Servers behind flaky wrappers.
func startReplicated(t *testing.T, snap *lifestore.Snapshot, ranges, replicas int) *replicaFleet {
	t.Helper()
	dir := t.TempDir()
	plan, paths, err := lifestore.SaveSharded(snap, ranges, filepath.Join(dir, "lives.%d.snap"))
	if err != nil {
		t.Fatal(err)
	}
	fleet := &replicaFleet{paths: paths, plan: plan, byURL: map[string]*flaky{}}
	for i, path := range paths {
		for j := 0; j < replicas; j++ {
			o := obs.New()
			open := serve.FileOpener(path, o.Registry)
			src, closer, source, err := open(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			sw := serve.NewSwappable(src, closer, source)
			rel := serve.NewReloader(sw, open, o.Registry)
			s := serve.New(sw, serve.Options{Obs: o, Reloader: rel, Replica: fmt.Sprintf("r%d-%d", i, j)})
			f := &flaky{h: s}
			ts := httptest.NewServer(f)
			t.Cleanup(ts.Close)
			fleet.urls = append(fleet.urls, ts.URL)
			fleet.byURL[ts.URL] = f
		}
	}
	return fleet
}

// flakyAt resolves a (range, ordinal) slot of the router's live
// topology back to the flaky wrapper serving it — ordinals are assigned
// by URL sort, so tests must look them up rather than assume start
// order.
func (fl *replicaFleet) flakyAt(t *testing.T, rt *Router, rangeIdx, ordinal int) *flaky {
	t.Helper()
	sc := rt.topo.Load().sets[rangeIdx].replicas[ordinal]
	f, ok := fl.byURL[sc.baseURL]
	if !ok {
		t.Fatalf("no fixture server behind %s", sc.baseURL)
	}
	return f
}

// newRouterOver builds a router over the given URLs with fast breakers.
func newRouterOver(t *testing.T, urls []string, opts Options) *Router {
	t.Helper()
	opts.Shards = urls
	if opts.BreakerThreshold == 0 {
		opts.BreakerThreshold = 2
	}
	if opts.BreakerCooldown == 0 {
		opts.BreakerCooldown = 50 * time.Millisecond
	}
	if opts.HandshakeTimeout == 0 {
		opts.HandshakeTimeout = 5 * time.Second
	}
	rt, err := New(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// newTestRouter builds a router over the set with fast breakers.
func newTestRouter(t *testing.T, set *shardSet, opts Options) *Router {
	t.Helper()
	return newRouterOver(t, set.urls, opts)
}

// get performs one request against the router, returning the recorder.
func get(rt *Router, path string, hdr map[string]string) *httptest.ResponseRecorder {
	r := httptest.NewRequest(http.MethodGet, path, nil)
	for k, v := range hdr {
		r.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	rt.ServeHTTP(w, r)
	return w
}

// post performs one POST against the router.
func post(rt *Router, path string) *httptest.ResponseRecorder {
	r := httptest.NewRequest(http.MethodPost, path, nil)
	w := httptest.NewRecorder()
	rt.ServeHTTP(w, r)
	return w
}
