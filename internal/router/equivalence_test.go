package router

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"

	"parallellives/internal/asn"
	"parallellives/internal/dates"
	"parallellives/internal/faults"
	"parallellives/internal/lifestore"
	"parallellives/internal/obs"
	"parallellives/internal/pipeline"
	"parallellives/internal/serve"
)

// The sharding contract: a router over N shards is byte-for-byte
// indistinguishable from a single asnserve process over the unsharded
// snapshot. This file proves it property-style — pipeline-built
// datasets (clean and chaos-seeded), N ∈ {1, 2, 4}, and a probe set
// that walks every populated ASN, every shard boundary and its
// neighbours, absent ASNs, malformed inputs, and every aggregate
// endpoint with query variants. Status, Content-Type, ETag, and body
// must match exactly; /v1/health is compared semantically (the router
// adds its own section by design).

func equivOptions(seed int64, chaos bool) pipeline.Options {
	opts := pipeline.DefaultOptions()
	opts.World.Scale = 0.02
	opts.World.Seed = seed
	opts.World.Start = dates.MustParse("2004-01-01")
	opts.World.End = dates.MustParse("2005-12-31")
	if chaos {
		opts.FaultPolicy = pipeline.Degrade
		plan := faults.DefaultStorm(seed)
		opts.Inject = &plan
		opts.Wire = true
	}
	return opts
}

var equivCache = map[string]*lifestore.Snapshot{}

func equivSnapshot(t testing.TB, seed int64, chaos bool) *lifestore.Snapshot {
	t.Helper()
	key := fmt.Sprintf("%d/%v", seed, chaos)
	if snap, ok := equivCache[key]; ok {
		return snap
	}
	ds, err := pipeline.Run(equivOptions(seed, chaos))
	if err != nil {
		t.Fatal(err)
	}
	snap := lifestore.Capture(ds)
	equivCache[key] = snap
	return snap
}

// startBaseline serves the unsharded snapshot exactly as cmd/asnserve
// does: saved to disk, opened through FileOpener, behind serve.New.
func startBaseline(t *testing.T, snap *lifestore.Snapshot) *serve.Server {
	t.Helper()
	path := filepath.Join(t.TempDir(), "lives.snap")
	if err := lifestore.SaveSnapshot(snap, path); err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	open := serve.FileOpener(path, o.Registry)
	src, closer, source, err := open(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sw := serve.NewSwappable(src, closer, source)
	t.Cleanup(func() { closer.Close() })
	return serve.New(sw, serve.Options{Obs: o, Reloader: serve.NewReloader(sw, open, o.Registry)})
}

// probePaths builds the request set from the snapshot and the shard
// plan: the full populated population (capped), the exact cut points
// and their neighbours on both sides, known-absent ASNs, malformed
// inputs, and the aggregate endpoints with query variants.
func probePaths(snap *lifestore.Snapshot, plan lifestore.ShardPlan) []string {
	probes := map[asn.ASN]bool{}
	add := func(a asn.ASN) { probes[a] = true }
	// Every populated ASN, capped so the matrix stays fast.
	for i, l := range snap.Lives {
		if i%7 == 0 || i < 32 || i >= len(snap.Lives)-32 {
			add(l.ASN)
		}
	}
	// Cut points and their immediate neighbours: the exact places where
	// off-by-one routing bugs live.
	for _, r := range plan.Ranges {
		add(r.Lo)
		add(r.Hi)
		if r.Lo > 0 {
			add(r.Lo - 1)
		}
		if r.Hi < asn.ASN(maxASN) {
			add(r.Hi + 1)
		}
	}
	// Guaranteed absences inside and outside the populated span.
	for _, a := range []asn.ASN{0, 1, 99999999, 4294967295} {
		add(a)
	}

	var paths []string
	for a := range probes {
		paths = append(paths, fmt.Sprintf("/v1/asn/%d", a))
	}
	paths = append(paths,
		"/v1/asn/AS174", // prefix forms parse identically
		"/v1/asn/as174",
		"/v1/asn/zzz", // malformed → local 400 replicating serve's body
		"/v1/asn/-1",
		"/v1/asn/4294967296", // overflow
		"/v1/asn/",
	)
	for _, r := range []string{"afrinic", "apnic", "arin", "lacnic", "ripencc", "all", "bogus"} {
		paths = append(paths, "/v1/rir/"+r+"/series")
	}
	paths = append(paths,
		"/v1/rir/all/series?stride=1",
		"/v1/rir/all/series?stride=30",
		"/v1/rir/ripencc/series?stride=0",   // bad stride → 400
		"/v1/rir/ripencc/series?stride=abc", // bad stride → 400
		"/v1/taxonomy",
		"/v1/stages",
		"/v1/nosuch", // mux defaults must agree too
	)
	return paths
}

func fetchRec(h http.Handler, path string) *httptest.ResponseRecorder {
	r := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

func compareResponses(t *testing.T, path string, want, got *httptest.ResponseRecorder) {
	t.Helper()
	if got.Code != want.Code {
		t.Errorf("%s: status %d, single-process %d", path, got.Code, want.Code)
		return
	}
	for _, h := range []string{"Content-Type", "ETag", "Retry-After"} {
		if got.Header().Get(h) != want.Header().Get(h) {
			t.Errorf("%s: header %s = %q, single-process %q", path, h, got.Header().Get(h), want.Header().Get(h))
		}
	}
	if got.Body.String() != want.Body.String() {
		g, w := got.Body.String(), want.Body.String()
		if len(g) > 200 {
			g = g[:200] + "..."
		}
		if len(w) > 200 {
			w = w[:200] + "..."
		}
		t.Errorf("%s: body diverged\n  router: %s\n  single: %s", path, g, w)
	}
}

// compareHealth checks the store and pipeline sections semantically:
// the router's health document carries them verbatim from a shard, but
// adds its own "router" section in place of the single process's
// serving internals.
func compareHealth(t *testing.T, want, got *httptest.ResponseRecorder) {
	t.Helper()
	if got.Code != http.StatusOK || want.Code != http.StatusOK {
		t.Fatalf("/v1/health: router %d, single-process %d", got.Code, want.Code)
	}
	var single, routed map[string]json.RawMessage
	if err := json.Unmarshal(want.Body.Bytes(), &single); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(got.Body.Bytes(), &routed); err != nil {
		t.Fatal(err)
	}
	for _, section := range []string{"store", "pipeline"} {
		var a, b any
		if err := json.Unmarshal(single[section], &a); err != nil {
			t.Fatalf("/v1/health %s (single): %v", section, err)
		}
		if err := json.Unmarshal(routed[section], &b); err != nil {
			t.Fatalf("/v1/health %s (router): %v", section, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("/v1/health: section %q diverged\n  router: %s\n  single: %s", section, routed[section], single[section])
		}
	}
	if _, ok := routed["router"]; !ok {
		t.Error("/v1/health: router document lacks its own section")
	}
}

// TestReplicatedEquivalence extends the contract to replica sets: a
// router over R=2 replicas per range is byte-for-byte indistinguishable
// from the single process — and stays so after one replica of every
// range is killed mid-test, because failover absorbs the loss before
// any client sees it. The failover/hedge marker headers are additive
// and deliberately outside the compared set.
func TestReplicatedEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name  string
		seed  int64
		chaos bool
	}{
		{"clean", 1, false},
		{"chaos", 7, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			snap := equivSnapshot(t, tc.seed, tc.chaos)
			baseline := startBaseline(t, snap)

			for _, ranges := range []int{1, 2} {
				t.Run(fmt.Sprintf("ranges=%d", ranges), func(t *testing.T) {
					fleet := startReplicated(t, snap, ranges, 2)
					rt := newRouterOver(t, fleet.urls, Options{CacheSize: 8})

					paths := probePaths(snap, fleet.plan)
					for _, path := range paths {
						want := fetchRec(baseline, path)
						compareResponses(t, path, want, fetchRec(rt, path))
						compareResponses(t, path+" (warm)", want, fetchRec(rt, path))
					}
					compareHealth(t, fetchRec(baseline, "/v1/health"), fetchRec(rt, "/v1/health"))

					// Kill one replica of every range mid-test: the
					// answers must not change by a byte.
					for i := 0; i < ranges; i++ {
						fleet.flakyAt(t, rt, i, 0).broken.Store(true)
					}
					for _, path := range paths {
						want := fetchRec(baseline, path)
						compareResponses(t, path+" (degraded)", want, fetchRec(rt, path))
					}
					compareHealth(t, fetchRec(baseline, "/v1/health"), fetchRec(rt, "/v1/health"))
				})
			}
		})
	}
}

func TestShardedEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name  string
		seed  int64
		chaos bool
	}{
		{"clean", 1, false},
		{"chaos", 7, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			snap := equivSnapshot(t, tc.seed, tc.chaos)
			baseline := startBaseline(t, snap)

			for _, n := range []int{1, 2, 4} {
				t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
					set := startShards(t, snap, n)
					rt := newTestRouter(t, set, Options{CacheSize: 8})

					paths := probePaths(snap, set.plan)
					for _, path := range paths {
						want := fetchRec(baseline, path)
						got := fetchRec(rt, path)
						compareResponses(t, path, want, got)
						// Warm pass: the router's cache-and-revalidate
						// path must stay byte-identical too.
						got2 := fetchRec(rt, path)
						compareResponses(t, path+" (warm)", want, got2)
					}
					compareHealth(t, fetchRec(baseline, "/v1/health"), fetchRec(rt, "/v1/health"))
				})
			}
		})
	}
}
