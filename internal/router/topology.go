package router

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"parallellives/internal/asn"
	"parallellives/internal/lifestore"
	"parallellives/internal/serve"
)

// topology is one published generation of the routing table: the shard
// plan plus a replica set per range. It is immutable after Store — a
// topology change builds a whole new one and swaps the pointer, so
// in-flight requests finish against the table they started with (the
// same generation-swap discipline serve uses for snapshots).
type topology struct {
	generation int64
	sum        string
	plan       lifestore.ShardPlan
	sets       []*replicaSet
	replicas   []*shardClient // flattened, set-major: range 0's replicas first
}

// setFor returns the replica set owning one ASN.
func (t *topology) setFor(a asn.ASN) *replicaSet { return t.sets[t.plan.ShardFor(a)] }

// TopologyReport is the admin-facing outcome of a topology reload.
type TopologyReport struct {
	Generation int64    `json:"generation"`
	Sum        string   `json:"sum"`
	Ranges     int      `json:"ranges"`
	Replicas   int      `json:"replicas"`
	Admitted   []string `json:"admitted,omitempty"`
	Retired    []string `json:"retired,omitempty"`
	Kept       []string `json:"kept,omitempty"`
}

// buildTopology handshakes the configured URL set and assembles a
// validated topology. In strict mode (startup) every URL must answer;
// in lenient mode (reload) unreachable URLs are retired and the
// survivors only need to still cover every range. Handshake fetches run
// on bare clients — breakers and per-replica instruments attach only to
// the replicas the validated topology admits.
func (rt *Router) buildTopology(ctx context.Context, generation int64, lenient bool) (*topology, error) {
	hctx, cancel := context.WithTimeout(ctx, rt.handshakeTimeout)
	defer cancel()

	clients := make([]*shardClient, len(rt.urls))
	for i, base := range rt.urls {
		clients[i] = &shardClient{baseURL: base, client: rt.client}
	}
	ids := make([]shardIdentity, len(clients))
	done := make([]bool, len(clients))
	var lastErr error
	for {
		missing := 0
		for i, sc := range clients {
			if done[i] {
				continue
			}
			id, err := sc.identity(hctx)
			if err != nil {
				missing++
				lastErr = err
				continue
			}
			ids[i], done[i] = id, true
		}
		if missing == 0 {
			break
		}
		select {
		case <-hctx.Done():
			if !lenient {
				return nil, fmt.Errorf("router: handshake incomplete (%d/%d replicas): %w", len(clients)-missing, len(clients), lastErr)
			}
			// Lenient: retire whatever never answered and validate the rest.
			var alive []*shardClient
			var aliveIDs []shardIdentity
			for i := range clients {
				if done[i] {
					alive = append(alive, clients[i])
					aliveIDs = append(aliveIDs, ids[i])
				}
			}
			if len(alive) == 0 {
				return nil, fmt.Errorf("router: no replica answered the handshake: %w", lastErr)
			}
			return rt.assemble(alive, aliveIDs, generation)
		case <-time.After(100 * time.Millisecond):
		}
	}
	return rt.assemble(clients, ids, generation)
}

// assemble groups answered replicas by shard index and validates that
// together they form one complete, consistent plan.
func (rt *Router) assemble(clients []*shardClient, ids []shardIdentity, generation int64) (*topology, error) {
	for i, sc := range clients {
		sc.replica = ids[i].Replica
	}

	// All-unsharded is the degenerate deployment: R plain asnserve
	// processes over the same snapshot form one full-range replica set.
	allUnsharded := true
	for _, id := range ids {
		if id.Sharded {
			allUnsharded = false
			break
		}
	}
	if allUnsharded {
		for i := range clients {
			clients[i].index, clients[i].lo, clients[i].hi = 0, 0, asn.ASN(maxASN)
		}
		set := &replicaSet{index: 0, lo: 0, hi: asn.ASN(maxASN), asns: ids[0].ASNCount, replicas: clients}
		return rt.finish(generation, "unsharded", []*replicaSet{set})
	}

	count := 0
	sum := ""
	groups := map[int][]*shardClient{}
	for i, id := range ids {
		if !id.Sharded || id.Shard == nil {
			return nil, fmt.Errorf("router: %s serves an unsharded snapshot; a replica fleet must be all-sharded or all-unsharded", clients[i].baseURL)
		}
		if sum == "" {
			sum, count = id.Shard.Sum, id.Shard.Count
		}
		if id.Shard.Sum != sum {
			return nil, fmt.Errorf("router: shard fingerprints differ (%s has %s, %s has %s): mixed shard sets",
				clients[0].baseURL, sum, clients[i].baseURL, id.Shard.Sum)
		}
		if id.Shard.Count != count {
			return nil, fmt.Errorf("router: %s says the plan has %d ranges, %s says %d",
				clients[i].baseURL, id.Shard.Count, clients[0].baseURL, count)
		}
		if id.Shard.Index < 0 || id.Shard.Index >= count {
			return nil, fmt.Errorf("router: %s reports shard index %d of a %d-range plan", clients[i].baseURL, id.Shard.Index, count)
		}
		clients[i].index = id.Shard.Index
		clients[i].lo, clients[i].hi = id.Shard.Lo, id.Shard.Hi
		sc := clients[i]
		sc.mu.Lock()
		sc.asnCount = ids[i].ASNCount
		sc.mu.Unlock()
		groups[id.Shard.Index] = append(groups[id.Shard.Index], clients[i])
	}

	sets := make([]*replicaSet, count)
	for idx := 0; idx < count; idx++ {
		members := groups[idx]
		if len(members) == 0 {
			return nil, fmt.Errorf("router: shard range %d has no replica (have replicas for %d of %d ranges)", idx, len(groups), count)
		}
		if len(members) < rt.replicasMin {
			return nil, fmt.Errorf("router: shard range %d has %d replica(s), below -replicas-min %d", idx, len(members), rt.replicasMin)
		}
		sort.Slice(members, func(i, j int) bool { return members[i].baseURL < members[j].baseURL })
		seen := map[string]string{}
		for _, sc := range members {
			if prev, ok := seen[sc.replica]; ok && sc.replica != "" {
				return nil, fmt.Errorf("router: duplicate replica %s for shard range %d (%s and %s are the same process)",
					sc.replica, idx, prev, sc.baseURL)
			}
			seen[sc.replica] = sc.baseURL
			if sc.lo != members[0].lo || sc.hi != members[0].hi {
				return nil, fmt.Errorf("router: replicas of shard range %d disagree on bounds (%s has AS%s-AS%s, %s has AS%s-AS%s)",
					idx, members[0].baseURL, members[0].lo, members[0].hi, sc.baseURL, sc.lo, sc.hi)
			}
		}
		_, _, asns := members[0].state()
		sets[idx] = &replicaSet{index: idx, lo: members[0].lo, hi: members[0].hi, asns: asns, replicas: members}
	}

	// Contiguity over the whole ASN space, exactly as before replication.
	for i, set := range sets {
		if i == 0 && set.lo != 0 {
			return nil, fmt.Errorf("router: shard 0 starts at AS%s, not AS0", set.lo)
		}
		if i > 0 && set.lo != sets[i-1].hi+1 {
			return nil, fmt.Errorf("router: gap between shard %d (ends AS%s) and shard %d (starts AS%s)",
				i-1, sets[i-1].hi, i, set.lo)
		}
		if i == len(sets)-1 && set.hi != asn.ASN(maxASN) {
			return nil, fmt.Errorf("router: last shard ends at AS%s, not the top of the ASN space", set.hi)
		}
	}
	return rt.finish(generation, sum, sets)
}

// finish attaches breakers + per-replica instruments (labelled by shard
// index and replica ordinal — bounded cardinality regardless of how
// often replicas restart) and publishes nothing: the caller decides
// when the topology becomes live.
func (rt *Router) finish(generation int64, sum string, sets []*replicaSet) (*topology, error) {
	topo := &topology{generation: generation, sum: sum, sets: sets}
	topo.plan = lifestore.ShardPlan{Count: len(sets)}
	for _, set := range sets {
		topo.plan.Ranges = append(topo.plan.Ranges, lifestore.ShardRange{Lo: set.lo, Hi: set.hi, ASNs: set.asns})
		for ord, sc := range set.replicas {
			sc.ordinal = ord
			shard, rep := strconv.Itoa(set.index), strconv.Itoa(ord)
			// A fresh breaker per admission is deliberate: the replica just
			// proved alive by answering the handshake, so it re-enters
			// service closed.
			sc.breaker = serve.NewBreaker(rt.breakerThreshold, rt.breakerCooldown,
				rt.breakerState.With(shard, rep), rt.breakerTrips.With(shard, rep), rt.breakerShorts.With(shard, rep))
			sc.reqs = rt.shardRequests.With(shard, rep)
			sc.errs = rt.shardErrors.With(shard, rep)
			topo.replicas = append(topo.replicas, sc)
		}
	}
	return topo, nil
}

// RebuildTopology re-runs the handshake against the configured URL set
// and swaps the routing table: replicas that answer are admitted (with
// fresh closed breakers), replicas that don't are retired, and the swap
// only happens if the survivors still form one complete plan — a failed
// rebuild keeps the old topology serving. The router cache flushes on
// swap, and per-replica metric series that no longer correspond to a
// live replica are dropped.
func (rt *Router) RebuildTopology(ctx context.Context) (*TopologyReport, error) {
	rt.rebuildMu.Lock()
	defer rt.rebuildMu.Unlock()

	old := rt.topo.Load()
	topo, err := rt.buildTopology(ctx, old.generation+1, true)
	if err != nil {
		rt.topoReloads.With("error").Inc()
		return nil, err
	}

	oldURLs := map[string]bool{}
	for _, sc := range old.replicas {
		oldURLs[sc.baseURL] = true
	}
	report := &TopologyReport{
		Generation: topo.generation,
		Sum:        topo.sum,
		Ranges:     len(topo.sets),
		Replicas:   len(topo.replicas),
	}
	newURLs := map[string]bool{}
	for _, sc := range topo.replicas {
		newURLs[sc.baseURL] = true
		if oldURLs[sc.baseURL] {
			report.Kept = append(report.Kept, sc.baseURL)
		} else {
			report.Admitted = append(report.Admitted, sc.baseURL)
		}
	}
	for _, sc := range old.replicas {
		if !newURLs[sc.baseURL] {
			report.Retired = append(report.Retired, sc.baseURL)
		}
	}
	sort.Strings(report.Retired)

	rt.topo.Store(topo)
	rt.cache.flush()
	rt.topoGen.Set(float64(topo.generation))
	rt.topoReloads.With("ok").Inc()
	rt.dropRetiredSeries(old, topo)
	if rt.fed != nil {
		rt.fed.prune(topo)
	}
	return report, nil
}

// dropRetiredSeries removes per-replica router series whose (shard,
// replica) slot no longer exists — the cardinality stays bounded by the
// live topology, not by the union of every topology ever served.
func (rt *Router) dropRetiredSeries(old, cur *topology) {
	live := map[[2]string]bool{}
	for _, set := range cur.sets {
		for ord := range set.replicas {
			live[[2]string{strconv.Itoa(set.index), strconv.Itoa(ord)}] = true
		}
	}
	for _, set := range old.sets {
		for ord := range set.replicas {
			key := [2]string{strconv.Itoa(set.index), strconv.Itoa(ord)}
			if live[key] {
				continue
			}
			rt.shardRequests.Drop(key[0], key[1])
			rt.shardErrors.Drop(key[0], key[1])
			rt.breakerState.Drop(key[0], key[1])
			rt.breakerTrips.Drop(key[0], key[1])
			rt.breakerShorts.Drop(key[0], key[1])
		}
	}
}

// handleTopologyReload is POST /v1/admin/topology/reload: the HTTP face
// of RebuildTopology (SIGHUP in cmd/asnroute is the other). A rebuild
// that cannot produce a valid topology answers 502 and keeps serving
// the old table.
func (rt *Router) handleTopologyReload(w http.ResponseWriter, r *http.Request) {
	report, err := rt.RebuildTopology(r.Context())
	if err != nil {
		writeError(w, http.StatusBadGateway, "topology reload failed (previous topology retained): %v", err)
		return
	}
	writeJSON(w, http.StatusOK, report)
}
