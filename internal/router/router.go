// Package router is the scatter-gather front of the sharded serving
// tier. It speaks the exact same HTTP surface as a single asnserve
// process — that equivalence is tested byte-for-byte — but answers from
// N shard processes, each serving one contiguous ASN range of a sharded
// snapshot (lifestore.SaveSharded).
//
// Routing rules per endpoint:
//
//	/v1/asn/{n}        exactly one shard owns every ASN (the shard plan
//	                   partitions the whole 32-bit space), so the request
//	                   is proxied to its owner; a malformed ASN is
//	                   rejected locally with the serving tier's exact 400
//	/v1/rir/{r}/series every shard carries the global sections whole, so
//	/v1/taxonomy       aggregates either scatter to all shards and keep
//	                   the lowest-index answer (ties-to-lower, the same
//	                   determinism rule parallel.MergeSorted uses) or
//	                   hash the request onto one shard (mode "hash"),
//	                   which partitions the aggregate working set across
//	                   shard caches
//	/v1/stages         proxied to the lowest-index healthy shard
//	/v1/health         router lifecycle + per-shard states, with the
//	                   store/pipeline sections gathered from the lowest
//	                   healthy shard so clients read one merged document
//	/v1/shards         the shard topology: ranges, generations, breakers
//	/v1/admin/reload   fanned out to every shard; the router cache
//	                   flushes after any swap
//
// Degradation is per range: each shard sits behind its own circuit
// breaker (serve.Breaker), so a dead shard fails fast with 503 +
// Retry-After for its ASN range while every other range keeps serving.
// Aggregates follow Options.Policy: "partial" serves from the surviving
// shards and marks the response with the X-Parallellives-Partial
// header; "strict" answers 503 as soon as any shard is down.
//
// The router keeps a small response cache, tagged with each entry's
// upstream ETag. A hit is revalidated against the owning shard with
// If-None-Match: the shard answers 304 from its generation counter
// without rebuilding the body, so a warm router serves mostly 304-sized
// upstream traffic. See DESIGN.md §12.
package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"parallellives/internal/asn"
	"parallellives/internal/lifestore"
	"parallellives/internal/obs"
	"parallellives/internal/serve"
)

// Registry metric names the router publishes. The lifecycle chain's
// gauges keep their serve_* names (the chain is shared code); everything
// router-specific lives under route_*.
const (
	MetricRequests = "parallellives_route_requests_total"
	MetricErrors   = "parallellives_route_errors_total"
	MetricLatency  = "parallellives_route_request_seconds"

	MetricShardRequests = "parallellives_route_shard_requests_total"
	MetricShardErrors   = "parallellives_route_shard_errors_total"

	MetricBreakerState         = "parallellives_route_breaker_state"
	MetricBreakerTrips         = "parallellives_route_breaker_trips_total"
	MetricBreakerShortCircuits = "parallellives_route_breaker_short_circuits_total"

	MetricPartials      = "parallellives_route_partial_total"
	MetricDisagreements = "parallellives_route_disagreements_total"
	MetricRevalidations = "parallellives_route_revalidations_total"

	MetricCacheHits    = "parallellives_route_cache_hits"
	MetricCacheMisses  = "parallellives_route_cache_misses"
	MetricCacheEntries = "parallellives_route_cache_entries"
)

// PartialHeader marks a scatter response assembled without every shard.
// Its value lists the unavailable shard indexes, comma-separated.
const PartialHeader = "X-Parallellives-Partial"

// Policies for aggregate endpoints when shards are down.
const (
	// PolicyPartial serves what the surviving shards can answer and
	// marks the response with PartialHeader.
	PolicyPartial = "partial"
	// PolicyStrict refuses (503) as soon as any shard is down.
	PolicyStrict = "strict"
)

// Aggregate modes for the global endpoints.
const (
	// AggregateScatter queries every shard and keeps the lowest-index
	// answer (after an agreement check).
	AggregateScatter = "scatter"
	// AggregateHash routes each distinct request to one shard by key
	// hash, failing over to the next index; this shards the aggregate
	// working set across the processes' caches.
	AggregateHash = "hash"
)

// Options configures a Router.
type Options struct {
	// Shards lists the shard base URLs (e.g. http://127.0.0.1:8081), in
	// any order: the handshake sorts them by their self-reported index.
	Shards []string
	// Policy is PolicyPartial (default) or PolicyStrict.
	Policy string
	// Aggregate is AggregateScatter (default) or AggregateHash.
	Aggregate string
	// CacheSize is the router response-cache capacity in entries
	// (default 256; negative disables).
	CacheSize int
	// MaxInFlight and RequestTimeout configure the lifecycle chain
	// (defaults 512 and 10s, as in serve.Options).
	MaxInFlight    int
	RequestTimeout time.Duration
	// BreakerThreshold / BreakerCooldown configure each shard's circuit
	// breaker (defaults 5 and 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// HandshakeTimeout bounds the startup handshake during which every
	// shard must report its identity (default 10s).
	HandshakeTimeout time.Duration
	// ProbeInterval is the background re-handshake cadence once serving
	// (default 2s; Start only).
	ProbeInterval time.Duration
	// ScrapeInterval is the federation cadence: how often Start scrapes
	// every shard's /metrics into the fleet rollup (default 5s; negative
	// disables federation).
	ScrapeInterval time.Duration
	// ExemplarCapacity sizes the slow/error exemplar ring serving
	// /v1/debug/slow (default 32; negative disables capture).
	ExemplarCapacity int
	// SpanIDs overrides the trace/span ID source (tests). Nil uses
	// crypto-grade-enough random hex.
	SpanIDs obs.IDSource
	// Client is the HTTP client for shard traffic (default: pooled
	// transport, no client-level timeout — deadlines come from the
	// request context).
	Client *http.Client
	// Obs supplies the observability core. Nil gets a private obs.New().
	Obs *obs.Obs
}

// Router fronts a set of shard servers as one HTTP surface. It is safe
// for concurrent use.
type Router struct {
	shards  []*shardClient
	plan    lifestore.ShardPlan
	sum     string
	policy  string
	aggMode string

	mux     *http.ServeMux
	handler http.Handler
	chain   *serve.Chain
	cache   *cache
	obs     *obs.Obs

	exemplars   *obs.ExemplarRing
	spanIDs     obs.IDSource
	runtime     *obs.RuntimeStats
	fed         *federator
	scrapeEvery time.Duration

	metrics map[string]*endpointMetrics

	shardRequests *obs.CounterVec
	shardErrors   *obs.CounterVec
	partials      *obs.Counter
	disagreements *obs.Counter
	revalidations *obs.CounterVec
	cacheHits     *obs.Gauge
	cacheMisses   *obs.Gauge
	cacheEntries  *obs.Gauge
}

type endpointMetrics struct {
	requests *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
}

// New connects to every shard, verifies they form one complete plan,
// and builds the routing front. It fails rather than serve with holes:
// a router that cannot see every range would turn part of the ASN space
// into silent 404s.
func New(ctx context.Context, opts Options) (*Router, error) {
	if len(opts.Shards) == 0 {
		return nil, errors.New("router: no shard URLs")
	}
	if opts.Policy == "" {
		opts.Policy = PolicyPartial
	}
	if opts.Policy != PolicyPartial && opts.Policy != PolicyStrict {
		return nil, fmt.Errorf("router: unknown policy %q (want %s or %s)", opts.Policy, PolicyPartial, PolicyStrict)
	}
	if opts.Aggregate == "" {
		opts.Aggregate = AggregateScatter
	}
	if opts.Aggregate != AggregateScatter && opts.Aggregate != AggregateHash {
		return nil, fmt.Errorf("router: unknown aggregate mode %q (want %s or %s)", opts.Aggregate, AggregateScatter, AggregateHash)
	}
	if opts.CacheSize == 0 {
		opts.CacheSize = 256
	}
	if opts.CacheSize < 0 {
		opts.CacheSize = 0
	}
	if opts.BreakerThreshold == 0 {
		opts.BreakerThreshold = 5
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 5 * time.Second
	}
	if opts.HandshakeTimeout <= 0 {
		opts.HandshakeTimeout = 10 * time.Second
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 2 * time.Second
	}
	if opts.ScrapeInterval == 0 {
		opts.ScrapeInterval = 5 * time.Second
	}
	if opts.ExemplarCapacity == 0 {
		opts.ExemplarCapacity = 32
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        4 * len(opts.Shards),
			MaxIdleConnsPerHost: 4,
		}}
	}
	if opts.Obs == nil {
		opts.Obs = obs.New()
	}
	reg := opts.Obs.Registry

	rt := &Router{
		policy:  opts.Policy,
		aggMode: opts.Aggregate,
		mux:     http.NewServeMux(),
		chain: serve.NewChain(reg, serve.ChainOptions{
			MaxInFlight:    opts.MaxInFlight,
			RequestTimeout: opts.RequestTimeout,
		}),
		cache:       newCache(opts.CacheSize),
		obs:         opts.Obs,
		exemplars:   obs.NewExemplarRing(opts.ExemplarCapacity),
		spanIDs:     opts.SpanIDs,
		runtime:     obs.RegisterRuntime(reg),
		scrapeEvery: opts.ScrapeInterval,
		metrics:     make(map[string]*endpointMetrics),
		shardRequests: reg.CounterVec(MetricShardRequests,
			"Upstream requests by shard index.", "shard"),
		shardErrors: reg.CounterVec(MetricShardErrors,
			"Upstream failures (transport or 5xx) by shard index.", "shard"),
		partials: reg.Counter(MetricPartials,
			"Aggregate responses served without every shard."),
		disagreements: reg.Counter(MetricDisagreements,
			"Scatter gathers where healthy shards returned different answers."),
		revalidations: reg.CounterVec(MetricRevalidations,
			"Cache revalidations by outcome (fresh = upstream 304, stale = refetched).", "outcome"),
		cacheHits:    reg.Gauge(MetricCacheHits, "Router response-cache hits since start."),
		cacheMisses:  reg.Gauge(MetricCacheMisses, "Router response-cache misses since start."),
		cacheEntries: reg.Gauge(MetricCacheEntries, "Router response-cache entries currently held."),
	}

	stateVec := reg.GaugeVec(MetricBreakerState,
		"Per-shard circuit-breaker state (0 closed, 1 open, 2 half-open).", "shard")
	tripsVec := reg.CounterVec(MetricBreakerTrips,
		"Times a shard's circuit breaker opened.", "shard")
	shortsVec := reg.CounterVec(MetricBreakerShortCircuits,
		"Requests rejected while a shard's breaker was open.", "shard")
	var clients []*shardClient
	for i, base := range opts.Shards {
		label := strconv.Itoa(i) // provisional; relabelled after handshake
		clients = append(clients, &shardClient{
			baseURL: strings.TrimRight(base, "/"),
			client:  opts.Client,
			breaker: serve.NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown,
				stateVec.With(label), tripsVec.With(label), shortsVec.With(label)),
		})
	}
	if opts.ScrapeInterval > 0 {
		rt.fed = newFederator(reg)
	}
	if err := rt.handshake(ctx, clients, opts.HandshakeTimeout); err != nil {
		return nil, err
	}
	// Re-resolve the per-shard instruments now that indexes are known,
	// so the labels mean shard index, not URL order.
	for _, sc := range rt.shards {
		label := strconv.Itoa(sc.index)
		sc.breaker = serve.NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown,
			stateVec.With(label), tripsVec.With(label), shortsVec.With(label))
	}

	rt.mux.HandleFunc("GET /v1/asn/{n}", rt.wrap("/v1/asn/{n}", rt.handleASN))
	rt.mux.HandleFunc("GET /v1/rir/{r}/series", rt.wrap("/v1/rir/{r}/series", rt.handleAggregate))
	rt.mux.HandleFunc("GET /v1/taxonomy", rt.wrap("/v1/taxonomy", rt.handleAggregate))
	rt.mux.HandleFunc("GET /v1/stages", rt.wrap("/v1/stages", rt.handleStages))
	rt.mux.HandleFunc("GET /v1/health", rt.wrap("/v1/health", rt.handleHealth))
	rt.mux.HandleFunc("GET /v1/shards", rt.wrap("/v1/shards", rt.handleShards))
	rt.mux.HandleFunc("GET /v1/debug/slow", rt.wrap("/v1/debug/slow", rt.handleSlow))
	rt.mux.HandleFunc("POST /v1/admin/reload", rt.wrap("/v1/admin/reload", rt.handleReload))
	rt.mux.HandleFunc("GET /metrics", rt.wrap("/metrics", rt.handleMetrics))
	rt.mux.HandleFunc("GET /healthz", rt.wrap("/healthz", rt.handleHealthz))
	rt.mux.HandleFunc("GET /readyz", rt.wrap("/readyz", rt.handleReadyz))
	rt.handler = rt.chain.Wrap(rt.mux)
	return rt, nil
}

// handshake collects every shard's identity, retrying until all answer
// or the timeout lapses, then validates that together they form one
// complete plan: same count, same fingerprint, every index exactly
// once, and ranges that cover the whole ASN space back to back.
func (rt *Router) handshake(ctx context.Context, clients []*shardClient, timeout time.Duration) error {
	hctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	ids := make([]shardIdentity, len(clients))
	done := make([]bool, len(clients))
	var lastErr error
	for {
		missing := 0
		for i, sc := range clients {
			if done[i] {
				continue
			}
			id, err := sc.identity(hctx)
			if err != nil {
				missing++
				lastErr = err
				continue
			}
			ids[i], done[i] = id, true
		}
		if missing == 0 {
			break
		}
		select {
		case <-hctx.Done():
			return fmt.Errorf("router: handshake incomplete (%d/%d shards): %w", len(clients)-missing, len(clients), lastErr)
		case <-time.After(100 * time.Millisecond):
		}
	}

	// A single unsharded server is a valid degenerate deployment: the
	// router fronts it as one full-range shard.
	if len(clients) == 1 && !ids[0].Sharded {
		clients[0].index, clients[0].lo, clients[0].hi = 0, 0, asn.ASN(maxASN)
		rt.shards = clients
		rt.plan = lifestore.ShardPlan{Count: 1, Ranges: []lifestore.ShardRange{{Lo: 0, Hi: asn.ASN(maxASN), ASNs: ids[0].ASNCount}}}
		rt.sum = "unsharded"
		return nil
	}

	for i, id := range ids {
		if !id.Sharded || id.Shard == nil {
			return fmt.Errorf("router: %s serves an unsharded snapshot; point the router at shard files or a single server", clients[i].baseURL)
		}
		if id.Shard.Count != len(clients) {
			return fmt.Errorf("router: %s is shard %d of %d but %d shard URLs were given",
				clients[i].baseURL, id.Shard.Index, id.Shard.Count, len(clients))
		}
		if ids[0].Shard.Sum != id.Shard.Sum {
			return fmt.Errorf("router: shard fingerprints differ (%s has %s, %s has %s): mixed shard sets",
				clients[0].baseURL, ids[0].Shard.Sum, clients[i].baseURL, id.Shard.Sum)
		}
		clients[i].index = id.Shard.Index
		clients[i].lo, clients[i].hi = id.Shard.Lo, id.Shard.Hi
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i].index < clients[j].index })
	plan := lifestore.ShardPlan{Count: len(clients)}
	for i, sc := range clients {
		if sc.index != i {
			return fmt.Errorf("router: shard index %d missing or duplicated", i)
		}
		if i == 0 && sc.lo != 0 {
			return fmt.Errorf("router: shard 0 starts at AS%s, not AS0", sc.lo)
		}
		if i > 0 && sc.lo != clients[i-1].hi+1 {
			return fmt.Errorf("router: gap between shard %d (ends AS%s) and shard %d (starts AS%s)",
				i-1, clients[i-1].hi, i, sc.lo)
		}
		if i == len(clients)-1 && sc.hi != asn.ASN(maxASN) {
			return fmt.Errorf("router: last shard ends at AS%s, not the top of the ASN space", sc.hi)
		}
		sc.mu.Lock()
		count := sc.asnCount
		sc.mu.Unlock()
		plan.Ranges = append(plan.Ranges, lifestore.ShardRange{Lo: sc.lo, Hi: sc.hi, ASNs: count})
	}
	rt.shards = clients
	rt.plan = plan
	rt.sum = ids[0].Shard.Sum
	return nil
}

const maxASN = 1<<32 - 1

// ServeHTTP implements http.Handler behind the shared lifecycle chain.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.handler.ServeHTTP(w, r) }

// Start launches the background probe and federation-scrape loops and
// returns a stop func. Probing keeps generations fresh and — because
// identity requests run through each breaker — turns a recovered shard
// closed again without sacrificing a client request. Scraping folds
// every shard's /metrics into the fleet rollup (DESIGN.md §13).
func (rt *Router) Start(ctx context.Context, interval time.Duration) (stop func()) {
	pctx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-pctx.Done():
				return
			case <-t.C:
				rt.Probe(pctx)
			}
		}
	}()
	if rt.fed != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt.ScrapeFleet(pctx) // first rollup immediately, not one interval in
			t := time.NewTicker(rt.scrapeEvery)
			defer t.Stop()
			for {
				select {
				case <-pctx.Done():
					return
				case <-t.C:
					rt.ScrapeFleet(pctx)
				}
			}
		}()
	}
	return func() { cancel(); wg.Wait() }
}

// Probe re-handshakes every shard once, concurrently.
func (rt *Router) Probe(ctx context.Context) {
	var wg sync.WaitGroup
	for _, sc := range rt.shards {
		wg.Add(1)
		go func(sc *shardClient) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			sc.identity(pctx)
		}(sc)
	}
	wg.Wait()
}

// wrap instruments one endpoint: request count, latency, 5xx error
// count, plus the same per-request tracing and exemplar capture the
// serving tier's wrapper does — the router's root span is where shard
// fan-out spans hang, and where a traced caller's summary comes from.
// Router handlers write their own responses (most are relays).
func (rt *Router) wrap(label string, fn http.HandlerFunc) http.HandlerFunc {
	reg := rt.obs.Registry
	m := &endpointMetrics{
		requests: reg.CounterVec(MetricRequests, "Routed requests by endpoint pattern.", "endpoint").With(label),
		errors:   reg.CounterVec(MetricErrors, "Routed request failures by endpoint pattern.", "endpoint").With(label),
		latency: reg.HistogramVec(MetricLatency, "Routed request latency by endpoint pattern.",
			obs.ExpBuckets(0.000001, 10, 8), "endpoint").With(label),
	}
	rt.metrics[label] = m
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.requests.Inc()
		key := pathq(r)

		remote, traced := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
		if rt.exemplars == nil && !traced {
			defer func() { m.latency.Observe(time.Since(start).Seconds()) }()
			sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
			fn(sw, r)
			if sw.status >= http.StatusInternalServerError {
				m.errors.Inc()
			}
			return
		}

		ctx := obs.WithTracer(r.Context(), obs.NewTracerWithIDs(nil, rt.spanIDs))
		if traced {
			ctx = obs.WithRemoteParent(ctx, remote)
		}
		ctx, span := obs.StartSpan(ctx, "route "+label)
		r = r.WithContext(ctx)
		tw := &traceWriter{status: http.StatusOK}
		tw.ResponseWriter = w
		tw.finish = func(status int) {
			span.SetAttr("status", int64(status))
			span.End()
			if traced {
				if b, err := json.Marshal(obs.Summarize(span)); err == nil {
					w.Header().Set(obs.SpanHeader, string(b))
				}
			}
		}
		defer func() {
			d := time.Since(start)
			m.latency.Observe(d.Seconds())
			status := tw.status
			if !tw.done {
				// Panic unwinding: the lifecycle chain's recovery owns the
				// response on the underlying writer.
				status = http.StatusInternalServerError
				span.SetAttr("status", int64(status))
				span.End()
			}
			if status >= http.StatusInternalServerError {
				m.errors.Inc()
			}
			rt.exemplars.OfferLazy(obs.Exemplar{
				CapturedUnixNs: start.UnixNano(),
				Endpoint:       label,
				Path:           key,
				Status:         status,
				DurationNs:     d.Nanoseconds(),
				TraceID:        span.TraceID(),
			}, func() obs.SpanSummary { return obs.Summarize(span) })
		}()
		fn(tw, r)
	}
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// traceWriter finalizes the request span just before the first response
// byte, exactly like the serving tier's: the span summary travels in a
// header, so the span must end before WriteHeader reaches the wire.
type traceWriter struct {
	http.ResponseWriter
	status int
	done   bool
	finish func(status int)
}

func (w *traceWriter) WriteHeader(code int) {
	if !w.done {
		w.done = true
		w.status = code
		w.finish(code)
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *traceWriter) Write(b []byte) (int, error) {
	if !w.done {
		w.WriteHeader(http.StatusOK)
	}
	return w.ResponseWriter.Write(b)
}

// writeJSON renders a local (non-proxied) JSON response in exactly the
// shape the serving tier uses, Content-Length included.
func writeJSON(w http.ResponseWriter, status int, payload any) {
	body, err := json.Marshal(payload)
	if err != nil {
		http.Error(w, "encoding response: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	w.Write(body)
}

// writeError emits the serving tier's error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// shardUnavailable is the fail-fast answer for a dead range or a
// refused aggregate: 503 + Retry-After, like the serving tier's own
// breaker short-circuit.
func shardUnavailable(w http.ResponseWriter, format string, args ...any) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, format, args...)
}

// pathq is the request's path plus raw query — both the cache key and
// the upstream request target.
func pathq(r *http.Request) string {
	if r.URL.RawQuery != "" {
		return r.URL.Path + "?" + r.URL.RawQuery
	}
	return r.URL.Path
}

// serveVia proxies one request through the router cache against a
// preferred shard: a cached entry is revalidated with If-None-Match
// (upstream 304 keeps the cached body without a byte of payload
// transfer), a miss fetches and caches. fetch runs against whichever
// shard the caller routed to; the cache trusts entries only from the
// same shard index it stored them from.
func (rt *Router) serveVia(w http.ResponseWriter, r *http.Request, sc *shardClient) {
	key := pathq(r)
	clientINM := r.Header.Get("If-None-Match")
	rt.shardRequests.With(strconv.Itoa(sc.index)).Inc()

	if e, ok := rt.cache.get(key); ok && e.shard == sc.index && e.resp.etag != "" {
		u, err := sc.fetch(r.Context(), http.MethodGet, key, e.resp.etag)
		if err == nil && u.status == http.StatusNotModified {
			rt.revalidations.With("fresh").Inc()
			rt.answerCached(w, clientINM, e.resp)
			return
		}
		if err == nil {
			rt.revalidations.With("stale").Inc()
			if u.status == http.StatusOK && u.etag != "" {
				rt.cache.put(key, entry{shard: sc.index, resp: *u})
			} else {
				rt.cache.drop(key)
			}
			rt.answerFetched(w, clientINM, u)
			return
		}
		rt.cache.drop(key)
		rt.shardErrors.With(strconv.Itoa(sc.index)).Inc()
		rt.upstreamError(w, r, sc, err)
		return
	}

	u, err := sc.fetch(r.Context(), http.MethodGet, key, clientINM)
	if err != nil {
		rt.shardErrors.With(strconv.Itoa(sc.index)).Inc()
		rt.upstreamError(w, r, sc, err)
		return
	}
	if u.status == http.StatusOK && u.etag != "" {
		rt.cache.put(key, entry{shard: sc.index, resp: *u})
	}
	relay(w, u)
}

// answerCached serves a cached 200, downgraded to 304 when the client's
// own validator already matches it.
func (rt *Router) answerCached(w http.ResponseWriter, clientINM string, resp upstream) {
	if clientINM != "" && clientINM == resp.etag {
		relay(w, &upstream{status: http.StatusNotModified, etag: resp.etag})
		return
	}
	relay(w, &resp)
}

// answerFetched relays a fresh upstream response, honouring the
// client's validator (the upstream request may have carried the cache's
// validator instead of the client's).
func (rt *Router) answerFetched(w http.ResponseWriter, clientINM string, u *upstream) {
	if u.status == http.StatusOK && clientINM != "" && clientINM == u.etag {
		relay(w, &upstream{status: http.StatusNotModified, etag: u.etag})
		return
	}
	relay(w, u)
}

// upstreamError classifies a failed shard fetch for the client: the
// router's deadline maps to 504 (matching the serving tier's own
// taxonomy), everything else to the fail-fast 503.
func (rt *Router) upstreamError(w http.ResponseWriter, r *http.Request, sc *shardClient, err error) {
	if r.Context().Err() != nil {
		rt.chain.Timeouts().Inc()
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded querying shard %d", sc.index)
		return
	}
	shardUnavailable(w, "shard %d (AS%s-AS%s) unavailable; retrying shortly", sc.index, sc.lo, sc.hi)
}

// handleASN routes a single-ASN read to the one shard whose range owns
// it. Malformed ASNs never cross the network: the router answers the
// serving tier's exact 400 itself.
func (rt *Router) handleASN(w http.ResponseWriter, r *http.Request) {
	raw := strings.TrimPrefix(strings.TrimPrefix(r.PathValue("n"), "AS"), "as")
	a, err := asn.Parse(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad ASN %q", r.PathValue("n"))
		return
	}
	rt.serveVia(w, r, rt.shards[rt.plan.ShardFor(a)])
}

// handleStages proxies the build trace from the lowest-index healthy
// shard (every shard of one build carries the same snapshot metadata).
func (rt *Router) handleStages(w http.ResponseWriter, r *http.Request) {
	sc := rt.firstHealthy()
	if sc == nil {
		shardUnavailable(w, "no shard available")
		return
	}
	rt.serveVia(w, r, sc)
}

// firstHealthy returns the lowest-index shard whose breaker is not
// open, or nil when every range is dark.
func (rt *Router) firstHealthy() *shardClient {
	for _, sc := range rt.shards {
		if state, _, _, _ := sc.breaker.Snapshot(); state != "open" {
			return sc
		}
	}
	return nil
}

// handleAggregate answers the global endpoints (series, taxonomy).
// Every shard carries the global sections whole, so the router needs
// any one authoritative copy — scatter mode asks everyone and keeps the
// lowest-index answer, hash mode deterministically picks one shard per
// request key so each process's cache holds a distinct slice of the
// aggregate working set.
func (rt *Router) handleAggregate(w http.ResponseWriter, r *http.Request) {
	if rt.aggMode == AggregateHash {
		rt.aggregateHash(w, r)
		return
	}
	rt.aggregateScatter(w, r)
}

func (rt *Router) aggregateHash(w http.ResponseWriter, r *http.Request) {
	h := crc32.Checksum([]byte(pathq(r)), crc32.MakeTable(crc32.Castagnoli))
	start := int(h % uint32(len(rt.shards)))
	for i := 0; i < len(rt.shards); i++ {
		sc := rt.shards[(start+i)%len(rt.shards)]
		if state, _, _, _ := sc.breaker.Snapshot(); state == "open" {
			continue
		}
		rt.serveVia(w, r, sc)
		return
	}
	shardUnavailable(w, "no shard available")
}

// aggregateScatter fans the request out to every shard. The winner is
// deterministic — the lowest-index healthy shard, the same
// ties-to-lower rule the pipeline's MergeSorted uses — and an agreement
// check across the other healthy answers feeds a disagreement counter
// (mixed shard generations are legal mid-rollout, but persistent
// disagreement means a mixed shard set and deserves an alert).
func (rt *Router) aggregateScatter(w http.ResponseWriter, r *http.Request) {
	key := pathq(r)
	clientINM := r.Header.Get("If-None-Match")

	// A cached scatter answer revalidates against its winner only — one
	// conditional request, not a full fan-out.
	if e, ok := rt.cache.get(key); ok && e.resp.etag != "" && e.shard < len(rt.shards) {
		sc := rt.shards[e.shard]
		rt.shardRequests.With(strconv.Itoa(sc.index)).Inc()
		u, err := sc.fetch(r.Context(), http.MethodGet, key, e.resp.etag)
		if err == nil && u.status == http.StatusNotModified {
			rt.revalidations.With("fresh").Inc()
			rt.answerCached(w, clientINM, e.resp)
			return
		}
		rt.cache.drop(key)
		if err != nil {
			rt.shardErrors.With(strconv.Itoa(sc.index)).Inc()
		}
		// Fall through to a full gather on any other outcome.
	}

	type result struct {
		u   *upstream
		err error
	}
	results := make([]result, len(rt.shards))
	var wg sync.WaitGroup
	for i, sc := range rt.shards {
		wg.Add(1)
		go func(i int, sc *shardClient) {
			defer wg.Done()
			rt.shardRequests.With(strconv.Itoa(sc.index)).Inc()
			u, err := sc.fetch(r.Context(), http.MethodGet, key, clientINM)
			if err != nil {
				rt.shardErrors.With(strconv.Itoa(sc.index)).Inc()
			}
			results[i] = result{u: u, err: err}
		}(i, sc)
	}
	wg.Wait()

	var winner *upstream
	winnerShard := -1
	var down []string
	for i, res := range results {
		if res.err != nil {
			down = append(down, strconv.Itoa(i))
			continue
		}
		if winner == nil {
			winner, winnerShard = res.u, i
		} else if res.u.status != winner.status || !equalBody(res.u, winner) {
			rt.disagreements.Inc()
		}
	}
	if winner == nil {
		if r.Context().Err() != nil {
			rt.chain.Timeouts().Inc()
			writeError(w, http.StatusGatewayTimeout, "deadline exceeded querying shards")
			return
		}
		shardUnavailable(w, "no shard available")
		return
	}
	if len(down) > 0 {
		if rt.policy == PolicyStrict {
			shardUnavailable(w, "strict policy: shard(s) %s unavailable", strings.Join(down, ","))
			return
		}
		rt.partials.Inc()
		w.Header().Set(PartialHeader, strings.Join(down, ","))
	}
	if winner.status == http.StatusOK && winner.etag != "" && len(down) == 0 {
		rt.cache.put(key, entry{shard: winnerShard, resp: *winner})
	}
	relay(w, winner)
}

// equalBody compares two gathered responses; 304s compare by validator
// (their bodies are empty by construction).
func equalBody(a, b *upstream) bool {
	if a.status == http.StatusNotModified || b.status == http.StatusNotModified {
		return a.etag == b.etag
	}
	return string(a.body) == string(b.body)
}

// shardStateJSON is one shard's row in /v1/shards and /v1/health.
type shardStateJSON struct {
	Index    int     `json:"index"`
	URL      string  `json:"url"`
	Lo       asn.ASN `json:"lo"`
	Hi       asn.ASN `json:"hi"`
	ASNs     int     `json:"asns"`
	Breaker  string  `json:"breaker"`
	Gen      int64   `json:"gen"`
	ASNCount int     `json:"asnCount"`
}

func (rt *Router) shardStates() []shardStateJSON {
	out := make([]shardStateJSON, len(rt.shards))
	for i, sc := range rt.shards {
		state, gen, count := sc.state()
		out[i] = shardStateJSON{
			Index: sc.index, URL: sc.baseURL,
			Lo: sc.lo, Hi: sc.hi, ASNs: rt.plan.Ranges[i].ASNs,
			Breaker: state, Gen: gen, ASNCount: count,
		}
	}
	return out
}

// handleShards is the topology endpoint: the plan the router routes by.
func (rt *Router) handleShards(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"count":     rt.plan.Count,
		"sum":       rt.sum,
		"policy":    rt.policy,
		"aggregate": rt.aggMode,
		"shards":    rt.shardStates(),
	})
}

// routerHealthJSON is the router's own section of /v1/health.
type routerHealthJSON struct {
	Policy    string           `json:"policy"`
	Aggregate string           `json:"aggregate"`
	Lifecycle serve.ChainStats `json:"lifecycle"`
	Cache     cacheStatsJSON   `json:"cache"`
	Partials  int64            `json:"partials"`
	Shards    []shardStateJSON `json:"shards"`
}

type cacheStatsJSON struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Size     int    `json:"size"`
	Capacity int    `json:"capacity"`
}

// handleHealth merges the dataset view (store + pipeline sections,
// gathered live from the lowest-index healthy shard — global sections
// are identical on every shard) with the router's own lifecycle state.
// With every shard down the document still answers 200: the router is
// alive, and the shard table shows exactly what is not.
func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	doc := map[string]json.RawMessage{}
	if sc := rt.firstHealthy(); sc != nil {
		rt.shardRequests.With(strconv.Itoa(sc.index)).Inc()
		if u, err := sc.fetch(r.Context(), http.MethodGet, "/v1/health", ""); err == nil && u.status == http.StatusOK {
			var shardDoc map[string]json.RawMessage
			if json.Unmarshal(u.body, &shardDoc) == nil {
				for _, k := range []string{"store", "pipeline"} {
					if v, ok := shardDoc[k]; ok {
						doc[k] = v
					}
				}
			}
		} else if err != nil {
			rt.shardErrors.With(strconv.Itoa(sc.index)).Inc()
		}
	}
	hits, misses, size, capacity := rt.cache.stats()
	routerSection, err := json.Marshal(routerHealthJSON{
		Policy:    rt.policy,
		Aggregate: rt.aggMode,
		Lifecycle: rt.chain.Stats(),
		Cache:     cacheStatsJSON{Hits: hits, Misses: misses, Size: size, Capacity: capacity},
		Partials:  rt.partials.Value(),
		Shards:    rt.shardStates(),
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding health: %v", err)
		return
	}
	doc["router"] = routerSection
	writeJSON(w, http.StatusOK, doc)
}

// handleReload fans the reload out to every shard concurrently and
// flushes the router cache afterwards — cached bodies must not outlive
// the generations that rendered them. 200 only when every shard
// swapped; any failure reports 502 with the per-shard outcomes (the
// shards that did swap keep their new generation; the document says
// which retry is needed).
func (rt *Router) handleReload(w http.ResponseWriter, r *http.Request) {
	type outcome struct {
		Shard int             `json:"shard"`
		OK    bool            `json:"ok"`
		Gen   json.RawMessage `json:"gen,omitempty"`
		Error string          `json:"error,omitempty"`
	}
	outcomes := make([]outcome, len(rt.shards))
	var wg sync.WaitGroup
	for i, sc := range rt.shards {
		wg.Add(1)
		go func(i int, sc *shardClient) {
			defer wg.Done()
			rt.shardRequests.With(strconv.Itoa(sc.index)).Inc()
			u, err := sc.fetch(r.Context(), http.MethodPost, "/v1/admin/reload", "")
			switch {
			case err != nil:
				rt.shardErrors.With(strconv.Itoa(sc.index)).Inc()
				outcomes[i] = outcome{Shard: sc.index, Error: err.Error()}
			case u.status != http.StatusOK:
				outcomes[i] = outcome{Shard: sc.index, Error: fmt.Sprintf("status %d: %s", u.status, u.body)}
			default:
				outcomes[i] = outcome{Shard: sc.index, OK: true, Gen: u.body}
			}
		}(i, sc)
	}
	wg.Wait()
	rt.cache.flush()
	status := http.StatusOK
	for _, o := range outcomes {
		if !o.OK {
			status = http.StatusBadGateway
		}
	}
	writeJSON(w, status, map[string]any{"results": outcomes})
}

// shardSlowJSON is one shard's row in the router's /v1/debug/slow.
type shardSlowJSON struct {
	Shard     int             `json:"shard"`
	Exemplars json.RawMessage `json:"exemplars,omitempty"`
	Error     string          `json:"error,omitempty"`
}

// handleSlow aggregates slow-request exemplars across the fleet: the
// router's own ring plus each shard's /v1/debug/slow, gathered
// concurrently. A dark shard becomes an error row, never a failure —
// this is a debugging endpoint and partial truth beats none.
func (rt *Router) handleSlow(w http.ResponseWriter, r *http.Request) {
	rows := make([]shardSlowJSON, len(rt.shards))
	var wg sync.WaitGroup
	for i, sc := range rt.shards {
		wg.Add(1)
		go func(i int, sc *shardClient) {
			defer wg.Done()
			rt.shardRequests.With(strconv.Itoa(sc.index)).Inc()
			u, err := sc.fetch(r.Context(), http.MethodGet, "/v1/debug/slow", "")
			switch {
			case err != nil:
				rt.shardErrors.With(strconv.Itoa(sc.index)).Inc()
				rows[i] = shardSlowJSON{Shard: sc.index, Error: err.Error()}
			case u.status != http.StatusOK:
				rows[i] = shardSlowJSON{Shard: sc.index, Error: fmt.Sprintf("status %d", u.status)}
			default:
				rows[i] = shardSlowJSON{Shard: sc.index, Exemplars: u.body}
			}
		}(i, sc)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, map[string]any{
		"router": rt.exemplars.Snapshot(),
		"shards": rows,
	})
}

// handleMetrics is the router's Prometheus scrape.
func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	rt.runtime.Collect()
	hits, misses, size, _ := rt.cache.stats()
	rt.cacheHits.Set(float64(hits))
	rt.cacheMisses.Set(float64(misses))
	rt.cacheEntries.Set(float64(size))
	w.Header().Set("Content-Type", obs.ContentType)
	if err := obs.WritePrometheus(w, rt.obs.Registry); err != nil {
		http.Error(w, "rendering metrics: "+err.Error(), http.StatusInternalServerError)
	}
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n"))
}

// handleReadyz: ready while the router can still answer — every shard
// up under strict policy, at least one under partial. (Single-ASN reads
// for a dead range fail fast either way; readiness is about whether the
// router deserves traffic at all.)
func (rt *Router) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	open := 0
	for _, sc := range rt.shards {
		if state, _, _, _ := sc.breaker.Snapshot(); state == "open" {
			open++
		}
	}
	notReady := (rt.policy == PolicyStrict && open > 0) || open == len(rt.shards)
	if notReady {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "%d/%d shard breakers open\n", open, len(rt.shards))
		return
	}
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ready\n"))
}
