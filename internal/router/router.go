// Package router is the scatter-gather front of the sharded serving
// tier. It speaks the exact same HTTP surface as a single asnserve
// process — that equivalence is tested byte-for-byte — but answers from
// a fleet of shard processes, each serving one contiguous ASN range of
// a sharded snapshot (lifestore.SaveSharded), with up to R replicas per
// range.
//
// Routing rules per endpoint:
//
//	/v1/asn/{n}        exactly one shard range owns every ASN (the shard
//	                   plan partitions the whole 32-bit space), so the
//	                   request is proxied to its owner's replica set; a
//	                   malformed ASN is rejected locally with the serving
//	                   tier's exact 400
//	/v1/rir/{r}/series every shard carries the global sections whole, so
//	/v1/taxonomy       aggregates either scatter to all ranges and keep
//	                   the lowest-index answer (ties-to-lower, the same
//	                   determinism rule parallel.MergeSorted uses) or
//	                   hash the request onto one range (mode "hash"),
//	                   which partitions the aggregate working set across
//	                   shard caches
//	/v1/stages         proxied to the lowest-index healthy range
//	/v1/health         router lifecycle + per-range states, with the
//	                   store/pipeline sections gathered from the lowest
//	                   healthy range so clients read one merged document
//	/v1/shards         the live topology: ranges, replicas, generations,
//	                   breakers
//	/v1/admin/reload   snapshot reload, fanned out to every replica; the
//	                   router cache flushes after any swap
//	/v1/admin/topology/reload
//	                   POST: re-run the handshake against the configured
//	                   URL set and swap the routing table — admit
//	                   replicas that answer, retire ones that don't
//	                   (zero-downtime rolling restarts; §14)
//
// Within a replica set, reads spread round-robin across closed-breaker
// replicas; a replica whose breaker is open is never picked while a
// sibling is closed. A failed read fails over to the next replica
// before any error surfaces — killing one replica of R≥2 produces zero
// client-visible errors, just a failover (marked on the response with
// X-Parallellives-Failover). Options.HedgeAfter additionally arms a
// hedged second request per attempt: if the picked replica has not
// answered within the threshold, the next one is asked too, first
// answer wins, the loser is cancelled (X-Parallellives-Hedge: win).
//
// Degradation is per range: every replica sits behind its own circuit
// breaker (serve.Breaker), and a range is dark only when all its
// replicas' breakers are open — then its ASN range fails fast with
// 503 + Retry-After while every other range keeps serving. Aggregates
// follow Options.Policy: "partial" serves from the surviving ranges and
// marks the response with the X-Parallellives-Partial header; "strict"
// answers 503 as soon as any range is dark.
//
// The router keeps a small response cache, tagged with each entry's
// upstream ETag. A hit is revalidated against the owning range with
// If-None-Match: any same-generation replica answers 304 from its
// generation counter without rebuilding the body, so a warm router
// serves mostly 304-sized upstream traffic. See DESIGN.md §12 and §14.
package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"parallellives/internal/asn"
	"parallellives/internal/obs"
	"parallellives/internal/serve"
)

// Registry metric names the router publishes. The lifecycle chain's
// gauges keep their serve_* names (the chain is shared code); everything
// router-specific lives under route_*.
const (
	MetricRequests = "parallellives_route_requests_total"
	MetricErrors   = "parallellives_route_errors_total"
	MetricLatency  = "parallellives_route_request_seconds"

	MetricShardRequests = "parallellives_route_shard_requests_total"
	MetricShardErrors   = "parallellives_route_shard_errors_total"

	MetricBreakerState         = "parallellives_route_breaker_state"
	MetricBreakerTrips         = "parallellives_route_breaker_trips_total"
	MetricBreakerShortCircuits = "parallellives_route_breaker_short_circuits_total"

	MetricPartials      = "parallellives_route_partial_total"
	MetricDisagreements = "parallellives_route_disagreements_total"
	MetricRevalidations = "parallellives_route_revalidations_total"

	// Replica failover + hedging (§14). Failovers are labelled by shard
	// range; hedges are fleet-wide totals.
	MetricFailovers = "parallellives_route_failovers_total"
	MetricHedges    = "parallellives_route_hedges_total"
	MetricHedgeWins = "parallellives_route_hedge_wins_total"

	// Topology swaps (RebuildTopology).
	MetricTopologyGen     = "parallellives_route_topology_generation"
	MetricTopologyReloads = "parallellives_route_topology_reloads_total"

	MetricCacheHits    = "parallellives_route_cache_hits"
	MetricCacheMisses  = "parallellives_route_cache_misses"
	MetricCacheEntries = "parallellives_route_cache_entries"
)

// PartialHeader marks a scatter response assembled without every shard
// range. Its value lists the unavailable range indexes, comma-separated.
const PartialHeader = "X-Parallellives-Partial"

// FailoverHeader marks a response that survived one or more replica
// failures; its value is how many replicas failed before one answered.
// It never appears when the first-picked replica answers, so responses
// from a healthy fleet stay byte-identical to a single process.
const FailoverHeader = "X-Parallellives-Failover"

// HedgeHeader marks a response won by a hedged second request
// (value "win").
const HedgeHeader = "X-Parallellives-Hedge"

// Policies for aggregate endpoints when shard ranges are down.
const (
	// PolicyPartial serves what the surviving ranges can answer and
	// marks the response with PartialHeader.
	PolicyPartial = "partial"
	// PolicyStrict refuses (503) as soon as any range is down.
	PolicyStrict = "strict"
)

// Aggregate modes for the global endpoints.
const (
	// AggregateScatter queries every range and keeps the lowest-index
	// answer (after an agreement check).
	AggregateScatter = "scatter"
	// AggregateHash routes each distinct request to one range by key
	// hash, failing over to the next index; this shards the aggregate
	// working set across the processes' caches.
	AggregateHash = "hash"
)

// Options configures a Router.
type Options struct {
	// Shards lists the replica base URLs (e.g. http://127.0.0.1:8081),
	// in any order: the handshake groups them by their self-reported
	// shard index, so several URLs serving the same range form that
	// range's replica set.
	Shards []string
	// Policy is PolicyPartial (default) or PolicyStrict.
	Policy string
	// Aggregate is AggregateScatter (default) or AggregateHash.
	Aggregate string
	// ReplicasMin is the minimum replicas every range must have for a
	// topology (startup or reload) to be accepted (default 1).
	ReplicasMin int
	// HedgeAfter, when positive, arms hedged reads: if the picked
	// replica has not answered within this duration, the next healthy
	// replica is asked too — first answer wins, the loser is cancelled.
	// Zero (default) disables hedging.
	HedgeAfter time.Duration
	// CacheSize is the router response-cache capacity in entries
	// (default 256; negative disables).
	CacheSize int
	// MaxInFlight and RequestTimeout configure the lifecycle chain
	// (defaults 512 and 10s, as in serve.Options).
	MaxInFlight    int
	RequestTimeout time.Duration
	// BreakerThreshold / BreakerCooldown configure each replica's
	// circuit breaker (defaults 5 and 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// HandshakeTimeout bounds the startup handshake during which every
	// replica must report its identity (default 10s). Topology reloads
	// reuse it as the window after which unreachable replicas are
	// retired.
	HandshakeTimeout time.Duration
	// ProbeInterval is the background re-handshake cadence once serving
	// (default 2s; Start only).
	ProbeInterval time.Duration
	// ScrapeInterval is the federation cadence: how often Start scrapes
	// every replica's /metrics into the fleet rollup (default 5s;
	// negative disables federation).
	ScrapeInterval time.Duration
	// ExemplarCapacity sizes the slow/error exemplar ring serving
	// /v1/debug/slow (default 32; negative disables capture).
	ExemplarCapacity int
	// SpanIDs overrides the trace/span ID source (tests). Nil uses
	// crypto-grade-enough random hex.
	SpanIDs obs.IDSource
	// Client is the HTTP client for shard traffic (default: pooled
	// transport, no client-level timeout — deadlines come from the
	// request context).
	Client *http.Client
	// Obs supplies the observability core. Nil gets a private obs.New().
	Obs *obs.Obs
}

// Router fronts a fleet of shard replicas as one HTTP surface. It is
// safe for concurrent use. The routing table lives behind an atomic
// pointer: requests load it once and finish against that generation
// even while RebuildTopology swaps in a new one.
type Router struct {
	policy  string
	aggMode string

	// Static fleet configuration, reused by every topology rebuild.
	urls             []string
	replicasMin      int
	hedgeAfter       time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration
	handshakeTimeout time.Duration
	client           *http.Client

	topo      atomic.Pointer[topology]
	rebuildMu sync.Mutex // serializes RebuildTopology

	mux     *http.ServeMux
	handler http.Handler
	chain   *serve.Chain
	cache   *cache
	obs     *obs.Obs

	exemplars   *obs.ExemplarRing
	spanIDs     obs.IDSource
	runtime     *obs.RuntimeStats
	fed         *federator
	scrapeEvery time.Duration

	metrics map[string]*endpointMetrics

	shardRequests *obs.CounterVec
	shardErrors   *obs.CounterVec
	failovers     *obs.CounterVec
	hedges        *obs.Counter
	hedgeWins     *obs.Counter
	partials      *obs.Counter
	disagreements *obs.Counter
	revalidations *obs.CounterVec
	cacheHits     *obs.Gauge
	cacheMisses   *obs.Gauge
	cacheEntries  *obs.Gauge
	topoGen       *obs.Gauge
	topoReloads   *obs.CounterVec
	breakerState  *obs.GaugeVec
	breakerTrips  *obs.CounterVec
	breakerShorts *obs.CounterVec
}

type endpointMetrics struct {
	requests *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
}

// New connects to every replica, verifies that together they form one
// complete plan (every range covered, one fingerprint), and builds the
// routing front. Startup is strict — every listed URL must answer — and
// it fails rather than serve with holes: a router that cannot see every
// range would turn part of the ASN space into silent 404s. Once
// serving, RebuildTopology relaxes that to "every range still covered".
func New(ctx context.Context, opts Options) (*Router, error) {
	if len(opts.Shards) == 0 {
		return nil, errors.New("router: no shard URLs")
	}
	if opts.Policy == "" {
		opts.Policy = PolicyPartial
	}
	if opts.Policy != PolicyPartial && opts.Policy != PolicyStrict {
		return nil, fmt.Errorf("router: unknown policy %q (want %s or %s)", opts.Policy, PolicyPartial, PolicyStrict)
	}
	if opts.Aggregate == "" {
		opts.Aggregate = AggregateScatter
	}
	if opts.Aggregate != AggregateScatter && opts.Aggregate != AggregateHash {
		return nil, fmt.Errorf("router: unknown aggregate mode %q (want %s or %s)", opts.Aggregate, AggregateScatter, AggregateHash)
	}
	if opts.ReplicasMin <= 0 {
		opts.ReplicasMin = 1
	}
	if opts.CacheSize == 0 {
		opts.CacheSize = 256
	}
	if opts.CacheSize < 0 {
		opts.CacheSize = 0
	}
	if opts.BreakerThreshold == 0 {
		opts.BreakerThreshold = 5
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 5 * time.Second
	}
	if opts.HandshakeTimeout <= 0 {
		opts.HandshakeTimeout = 10 * time.Second
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 2 * time.Second
	}
	if opts.ScrapeInterval == 0 {
		opts.ScrapeInterval = 5 * time.Second
	}
	if opts.ExemplarCapacity == 0 {
		opts.ExemplarCapacity = 32
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        4 * len(opts.Shards),
			MaxIdleConnsPerHost: 4,
		}}
	}
	if opts.Obs == nil {
		opts.Obs = obs.New()
	}
	reg := opts.Obs.Registry

	urls := make([]string, 0, len(opts.Shards))
	for _, base := range opts.Shards {
		urls = append(urls, strings.TrimRight(base, "/"))
	}

	rt := &Router{
		policy:  opts.Policy,
		aggMode: opts.Aggregate,

		urls:             urls,
		replicasMin:      opts.ReplicasMin,
		hedgeAfter:       opts.HedgeAfter,
		breakerThreshold: opts.BreakerThreshold,
		breakerCooldown:  opts.BreakerCooldown,
		handshakeTimeout: opts.HandshakeTimeout,
		client:           opts.Client,

		mux: http.NewServeMux(),
		chain: serve.NewChain(reg, serve.ChainOptions{
			MaxInFlight:    opts.MaxInFlight,
			RequestTimeout: opts.RequestTimeout,
		}),
		cache:       newCache(opts.CacheSize),
		obs:         opts.Obs,
		exemplars:   obs.NewExemplarRing(opts.ExemplarCapacity),
		spanIDs:     opts.SpanIDs,
		runtime:     obs.RegisterRuntime(reg),
		scrapeEvery: opts.ScrapeInterval,
		metrics:     make(map[string]*endpointMetrics),
		shardRequests: reg.CounterVec(MetricShardRequests,
			"Upstream requests by shard range and replica ordinal.", "shard", "replica"),
		shardErrors: reg.CounterVec(MetricShardErrors,
			"Upstream failures (transport or 5xx) by shard range and replica ordinal.", "shard", "replica"),
		failovers: reg.CounterVec(MetricFailovers,
			"Reads that failed over to another replica of the same range.", "shard"),
		hedges: reg.Counter(MetricHedges,
			"Hedged second requests launched after the latency threshold."),
		hedgeWins: reg.Counter(MetricHedgeWins,
			"Reads answered by the hedged request instead of the first pick."),
		partials: reg.Counter(MetricPartials,
			"Aggregate responses served without every shard range."),
		disagreements: reg.Counter(MetricDisagreements,
			"Scatter gathers where healthy ranges returned different answers."),
		revalidations: reg.CounterVec(MetricRevalidations,
			"Cache revalidations by outcome (fresh = upstream 304, stale = refetched).", "outcome"),
		cacheHits:    reg.Gauge(MetricCacheHits, "Router response-cache hits since start."),
		cacheMisses:  reg.Gauge(MetricCacheMisses, "Router response-cache misses since start."),
		cacheEntries: reg.Gauge(MetricCacheEntries, "Router response-cache entries currently held."),
		topoGen: reg.Gauge(MetricTopologyGen,
			"Routing-table generation: bumps on every accepted topology reload."),
		topoReloads: reg.CounterVec(MetricTopologyReloads,
			"Topology reloads by outcome (ok, error).", "outcome"),
		breakerState: reg.GaugeVec(MetricBreakerState,
			"Per-replica circuit-breaker state (0 closed, 1 open, 2 half-open).", "shard", "replica"),
		breakerTrips: reg.CounterVec(MetricBreakerTrips,
			"Times a replica's circuit breaker opened.", "shard", "replica"),
		breakerShorts: reg.CounterVec(MetricBreakerShortCircuits,
			"Requests rejected while a replica's breaker was open.", "shard", "replica"),
	}
	if opts.ScrapeInterval > 0 {
		rt.fed = newFederator(reg)
	}
	topo, err := rt.buildTopology(ctx, 1, false)
	if err != nil {
		return nil, err
	}
	rt.topo.Store(topo)
	rt.topoGen.Set(float64(topo.generation))

	rt.mux.HandleFunc("GET /v1/asn/{n}", rt.wrap("/v1/asn/{n}", rt.handleASN))
	rt.mux.HandleFunc("GET /v1/rir/{r}/series", rt.wrap("/v1/rir/{r}/series", rt.handleAggregate))
	rt.mux.HandleFunc("GET /v1/taxonomy", rt.wrap("/v1/taxonomy", rt.handleAggregate))
	rt.mux.HandleFunc("GET /v1/stages", rt.wrap("/v1/stages", rt.handleStages))
	rt.mux.HandleFunc("GET /v1/health", rt.wrap("/v1/health", rt.handleHealth))
	rt.mux.HandleFunc("GET /v1/shards", rt.wrap("/v1/shards", rt.handleShards))
	rt.mux.HandleFunc("GET /v1/debug/slow", rt.wrap("/v1/debug/slow", rt.handleSlow))
	rt.mux.HandleFunc("POST /v1/admin/reload", rt.wrap("/v1/admin/reload", rt.handleReload))
	rt.mux.HandleFunc("POST /v1/admin/topology/reload", rt.wrap("/v1/admin/topology/reload", rt.handleTopologyReload))
	rt.mux.HandleFunc("GET /metrics", rt.wrap("/metrics", rt.handleMetrics))
	rt.mux.HandleFunc("GET /healthz", rt.wrap("/healthz", rt.handleHealthz))
	rt.mux.HandleFunc("GET /readyz", rt.wrap("/readyz", rt.handleReadyz))
	rt.handler = rt.chain.Wrap(rt.mux)
	return rt, nil
}

const maxASN = 1<<32 - 1

// ServeHTTP implements http.Handler behind the shared lifecycle chain.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.handler.ServeHTTP(w, r) }

// Start launches the background probe and federation-scrape loops and
// returns a stop func. Probing keeps generations fresh and — because
// identity requests run through each breaker — turns a recovered
// replica closed again without sacrificing a client request. Scraping
// folds every replica's /metrics into the fleet rollup (DESIGN.md §13).
func (rt *Router) Start(ctx context.Context, interval time.Duration) (stop func()) {
	pctx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-pctx.Done():
				return
			case <-t.C:
				rt.Probe(pctx)
			}
		}
	}()
	if rt.fed != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt.ScrapeFleet(pctx) // first rollup immediately, not one interval in
			t := time.NewTicker(rt.scrapeEvery)
			defer t.Stop()
			for {
				select {
				case <-pctx.Done():
					return
				case <-t.C:
					rt.ScrapeFleet(pctx)
				}
			}
		}()
	}
	return func() { cancel(); wg.Wait() }
}

// Probe re-handshakes every replica of the live topology once,
// concurrently.
func (rt *Router) Probe(ctx context.Context) {
	topo := rt.topo.Load()
	var wg sync.WaitGroup
	for _, sc := range topo.replicas {
		wg.Add(1)
		go func(sc *shardClient) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			sc.identity(pctx)
		}(sc)
	}
	wg.Wait()
}

// wrap instruments one endpoint: request count, latency, 5xx error
// count, plus the same per-request tracing and exemplar capture the
// serving tier's wrapper does — the router's root span is where shard
// fan-out spans hang, and where a traced caller's summary comes from.
// Router handlers write their own responses (most are relays).
func (rt *Router) wrap(label string, fn http.HandlerFunc) http.HandlerFunc {
	reg := rt.obs.Registry
	m := &endpointMetrics{
		requests: reg.CounterVec(MetricRequests, "Routed requests by endpoint pattern.", "endpoint").With(label),
		errors:   reg.CounterVec(MetricErrors, "Routed request failures by endpoint pattern.", "endpoint").With(label),
		latency: reg.HistogramVec(MetricLatency, "Routed request latency by endpoint pattern.",
			obs.ExpBuckets(0.000001, 10, 8), "endpoint").With(label),
	}
	rt.metrics[label] = m
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.requests.Inc()
		key := pathq(r)

		remote, traced := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
		if rt.exemplars == nil && !traced {
			defer func() { m.latency.Observe(time.Since(start).Seconds()) }()
			sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
			fn(sw, r)
			if sw.status >= http.StatusInternalServerError {
				m.errors.Inc()
			}
			return
		}

		ctx := obs.WithTracer(r.Context(), obs.NewTracerWithIDs(nil, rt.spanIDs))
		if traced {
			ctx = obs.WithRemoteParent(ctx, remote)
		}
		ctx, span := obs.StartSpan(ctx, "route "+label)
		r = r.WithContext(ctx)
		tw := &traceWriter{status: http.StatusOK}
		tw.ResponseWriter = w
		tw.finish = func(status int) {
			span.SetAttr("status", int64(status))
			span.End()
			if traced {
				if b, err := json.Marshal(obs.Summarize(span)); err == nil {
					w.Header().Set(obs.SpanHeader, string(b))
				}
			}
		}
		defer func() {
			d := time.Since(start)
			m.latency.Observe(d.Seconds())
			status := tw.status
			if !tw.done {
				// Panic unwinding: the lifecycle chain's recovery owns the
				// response on the underlying writer.
				status = http.StatusInternalServerError
				span.SetAttr("status", int64(status))
				span.End()
			}
			if status >= http.StatusInternalServerError {
				m.errors.Inc()
			}
			rt.exemplars.OfferLazy(obs.Exemplar{
				CapturedUnixNs: start.UnixNano(),
				Endpoint:       label,
				Path:           key,
				Status:         status,
				DurationNs:     d.Nanoseconds(),
				TraceID:        span.TraceID(),
			}, func() obs.SpanSummary { return obs.Summarize(span) })
		}()
		fn(tw, r)
	}
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// traceWriter finalizes the request span just before the first response
// byte, exactly like the serving tier's: the span summary travels in a
// header, so the span must end before WriteHeader reaches the wire.
type traceWriter struct {
	http.ResponseWriter
	status int
	done   bool
	finish func(status int)
}

func (w *traceWriter) WriteHeader(code int) {
	if !w.done {
		w.done = true
		w.status = code
		w.finish(code)
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *traceWriter) Write(b []byte) (int, error) {
	if !w.done {
		w.WriteHeader(http.StatusOK)
	}
	return w.ResponseWriter.Write(b)
}

// writeJSON renders a local (non-proxied) JSON response in exactly the
// shape the serving tier uses, Content-Length included.
func writeJSON(w http.ResponseWriter, status int, payload any) {
	body, err := json.Marshal(payload)
	if err != nil {
		http.Error(w, "encoding response: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	w.Write(body)
}

// writeError emits the serving tier's error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// shardUnavailable is the fail-fast answer for a dead range or a
// refused aggregate: 503 + Retry-After, like the serving tier's own
// breaker short-circuit.
func shardUnavailable(w http.ResponseWriter, format string, args ...any) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, format, args...)
}

// pathq is the request's path plus raw query — both the cache key and
// the upstream request target.
func pathq(r *http.Request) string {
	if r.URL.RawQuery != "" {
		return r.URL.Path + "?" + r.URL.RawQuery
	}
	return r.URL.Path
}

// serveVia proxies one request through the router cache against a
// replica set: a cached entry is revalidated with If-None-Match
// (upstream 304 keeps the cached body without a byte of payload
// transfer), a miss fetches and caches. Fetches run through fetchSet,
// so replica failover and hedging apply to cold and warm paths alike;
// the cache trusts entries only from the same range index it stored
// them from — any same-generation replica of that range validates them.
func (rt *Router) serveVia(w http.ResponseWriter, r *http.Request, set *replicaSet) {
	key := pathq(r)
	clientINM := r.Header.Get("If-None-Match")

	if e, ok := rt.cache.get(key); ok && e.shard == set.index && e.resp.etag != "" {
		u, _, meta, err := rt.fetchSet(r.Context(), set, http.MethodGet, key, e.resp.etag)
		if err == nil && u.status == http.StatusNotModified {
			rt.revalidations.With("fresh").Inc()
			meta.mark(w.Header())
			rt.answerCached(w, clientINM, e.resp)
			return
		}
		if err == nil {
			rt.revalidations.With("stale").Inc()
			if u.status == http.StatusOK && u.etag != "" {
				rt.cache.put(key, entry{shard: set.index, resp: *u})
			} else {
				rt.cache.drop(key)
			}
			meta.mark(w.Header())
			rt.answerFetched(w, clientINM, u)
			return
		}
		rt.cache.drop(key)
		rt.rangeError(w, r, set)
		return
	}

	u, _, meta, err := rt.fetchSet(r.Context(), set, http.MethodGet, key, clientINM)
	if err != nil {
		rt.rangeError(w, r, set)
		return
	}
	if u.status == http.StatusOK && u.etag != "" {
		rt.cache.put(key, entry{shard: set.index, resp: *u})
	}
	meta.mark(w.Header())
	relay(w, u)
}

// answerCached serves a cached 200, downgraded to 304 when the client's
// own validator already matches it.
func (rt *Router) answerCached(w http.ResponseWriter, clientINM string, resp upstream) {
	if clientINM != "" && clientINM == resp.etag {
		relay(w, &upstream{status: http.StatusNotModified, etag: resp.etag})
		return
	}
	relay(w, &resp)
}

// answerFetched relays a fresh upstream response, honouring the
// client's validator (the upstream request may have carried the cache's
// validator instead of the client's).
func (rt *Router) answerFetched(w http.ResponseWriter, clientINM string, u *upstream) {
	if u.status == http.StatusOK && clientINM != "" && clientINM == u.etag {
		relay(w, &upstream{status: http.StatusNotModified, etag: u.etag})
		return
	}
	relay(w, u)
}

// rangeError classifies a range whose every replica refused: the
// router's deadline maps to 504 (matching the serving tier's own
// taxonomy), everything else to the fail-fast 503.
func (rt *Router) rangeError(w http.ResponseWriter, r *http.Request, set *replicaSet) {
	if r.Context().Err() != nil {
		rt.chain.Timeouts().Inc()
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded querying shard %d", set.index)
		return
	}
	shardUnavailable(w, "shard %d (AS%s-AS%s) unavailable; retrying shortly", set.index, set.lo, set.hi)
}

// handleASN routes a single-ASN read to the replica set whose range
// owns it. Malformed ASNs never cross the network: the router answers
// the serving tier's exact 400 itself.
func (rt *Router) handleASN(w http.ResponseWriter, r *http.Request) {
	raw := strings.TrimPrefix(strings.TrimPrefix(r.PathValue("n"), "AS"), "as")
	a, err := asn.Parse(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad ASN %q", r.PathValue("n"))
		return
	}
	rt.serveVia(w, r, rt.topo.Load().setFor(a))
}

// handleStages proxies the build trace from the lowest-index healthy
// range (every shard of one build carries the same snapshot metadata).
func (rt *Router) handleStages(w http.ResponseWriter, r *http.Request) {
	set := rt.firstHealthy(rt.topo.Load())
	if set == nil {
		shardUnavailable(w, "no shard available")
		return
	}
	rt.serveVia(w, r, set)
}

// firstHealthy returns the lowest-index range with at least one
// non-open replica, or nil when every range is dark.
func (rt *Router) firstHealthy(topo *topology) *replicaSet {
	for _, set := range topo.sets {
		if !set.dark() {
			return set
		}
	}
	return nil
}

// handleAggregate answers the global endpoints (series, taxonomy).
// Every shard carries the global sections whole, so the router needs
// any one authoritative copy — scatter mode asks every range and keeps
// the lowest-index answer, hash mode deterministically picks one range
// per request key so each process's cache holds a distinct slice of the
// aggregate working set.
func (rt *Router) handleAggregate(w http.ResponseWriter, r *http.Request) {
	topo := rt.topo.Load()
	if rt.aggMode == AggregateHash {
		rt.aggregateHash(w, r, topo)
		return
	}
	rt.aggregateScatter(w, r, topo)
}

func (rt *Router) aggregateHash(w http.ResponseWriter, r *http.Request, topo *topology) {
	h := crc32.Checksum([]byte(pathq(r)), crc32.MakeTable(crc32.Castagnoli))
	start := int(h % uint32(len(topo.sets)))
	for i := 0; i < len(topo.sets); i++ {
		set := topo.sets[(start+i)%len(topo.sets)]
		if set.dark() {
			continue
		}
		rt.serveVia(w, r, set)
		return
	}
	shardUnavailable(w, "no shard available")
}

// aggregateScatter fans the request out to every range — one
// failover-capable fetch per range, not per replica. The winner is
// deterministic — the lowest-index healthy range, the same
// ties-to-lower rule the pipeline's MergeSorted uses — and an agreement
// check across the other healthy answers feeds a disagreement counter
// (mixed shard generations are legal mid-rollout, but persistent
// disagreement means a mixed shard set and deserves an alert).
func (rt *Router) aggregateScatter(w http.ResponseWriter, r *http.Request, topo *topology) {
	key := pathq(r)
	clientINM := r.Header.Get("If-None-Match")

	// A cached scatter answer revalidates against its winner range only
	// — one conditional request, not a full fan-out.
	if e, ok := rt.cache.get(key); ok && e.resp.etag != "" && e.shard < len(topo.sets) {
		set := topo.sets[e.shard]
		u, _, meta, err := rt.fetchSet(r.Context(), set, http.MethodGet, key, e.resp.etag)
		if err == nil && u.status == http.StatusNotModified {
			rt.revalidations.With("fresh").Inc()
			meta.mark(w.Header())
			rt.answerCached(w, clientINM, e.resp)
			return
		}
		rt.cache.drop(key)
		// Fall through to a full gather on any other outcome.
	}

	type result struct {
		u    *upstream
		meta fetchMeta
		err  error
	}
	results := make([]result, len(topo.sets))
	var wg sync.WaitGroup
	for i, set := range topo.sets {
		wg.Add(1)
		go func(i int, set *replicaSet) {
			defer wg.Done()
			u, _, meta, err := rt.fetchSet(r.Context(), set, http.MethodGet, key, clientINM)
			results[i] = result{u: u, meta: meta, err: err}
		}(i, set)
	}
	wg.Wait()

	var winner *upstream
	winnerSet := -1
	var meta fetchMeta
	var down []string
	for i, res := range results {
		meta.failovers += res.meta.failovers
		meta.hedgeWin = meta.hedgeWin || res.meta.hedgeWin
		if res.err != nil {
			down = append(down, strconv.Itoa(i))
			continue
		}
		if winner == nil {
			winner, winnerSet = res.u, i
		} else if res.u.status != winner.status || !equalBody(res.u, winner) {
			rt.disagreements.Inc()
		}
	}
	if winner == nil {
		if r.Context().Err() != nil {
			rt.chain.Timeouts().Inc()
			writeError(w, http.StatusGatewayTimeout, "deadline exceeded querying shards")
			return
		}
		shardUnavailable(w, "no shard available")
		return
	}
	if len(down) > 0 {
		if rt.policy == PolicyStrict {
			shardUnavailable(w, "strict policy: shard(s) %s unavailable", strings.Join(down, ","))
			return
		}
		rt.partials.Inc()
		w.Header().Set(PartialHeader, strings.Join(down, ","))
	}
	if winner.status == http.StatusOK && winner.etag != "" && len(down) == 0 {
		rt.cache.put(key, entry{shard: winnerSet, resp: *winner})
	}
	meta.mark(w.Header())
	relay(w, winner)
}

// equalBody compares two gathered responses; 304s compare by validator
// (their bodies are empty by construction).
func equalBody(a, b *upstream) bool {
	if a.status == http.StatusNotModified || b.status == http.StatusNotModified {
		return a.etag == b.etag
	}
	return string(a.body) == string(b.body)
}

// replicaStateJSON is one replica's row inside a range's entry in
// /v1/shards and /v1/health.
type replicaStateJSON struct {
	URL      string `json:"url"`
	Replica  string `json:"replica"`
	Ordinal  int    `json:"ordinal"`
	Breaker  string `json:"breaker"`
	Gen      int64  `json:"gen"`
	ASNCount int    `json:"asnCount"`
}

// shardStateJSON is one shard range's row in /v1/shards and /v1/health.
type shardStateJSON struct {
	Index    int                `json:"index"`
	Lo       asn.ASN            `json:"lo"`
	Hi       asn.ASN            `json:"hi"`
	ASNs     int                `json:"asns"`
	Dark     bool               `json:"dark"`
	Replicas []replicaStateJSON `json:"replicas"`
}

func (rt *Router) shardStates(topo *topology) []shardStateJSON {
	out := make([]shardStateJSON, len(topo.sets))
	for i, set := range topo.sets {
		row := shardStateJSON{
			Index: set.index, Lo: set.lo, Hi: set.hi,
			ASNs: topo.plan.Ranges[i].ASNs, Dark: set.dark(),
		}
		for _, sc := range set.replicas {
			state, gen, count := sc.state()
			row.Replicas = append(row.Replicas, replicaStateJSON{
				URL: sc.baseURL, Replica: sc.replica, Ordinal: sc.ordinal,
				Breaker: state, Gen: gen, ASNCount: count,
			})
		}
		out[i] = row
	}
	return out
}

// handleShards is the topology endpoint: the table the router routes by.
func (rt *Router) handleShards(w http.ResponseWriter, r *http.Request) {
	topo := rt.topo.Load()
	writeJSON(w, http.StatusOK, map[string]any{
		"count":       topo.plan.Count,
		"sum":         topo.sum,
		"generation":  topo.generation,
		"policy":      rt.policy,
		"aggregate":   rt.aggMode,
		"replicasMin": rt.replicasMin,
		"shards":      rt.shardStates(topo),
	})
}

// routerHealthJSON is the router's own section of /v1/health.
type routerHealthJSON struct {
	Policy    string           `json:"policy"`
	Aggregate string           `json:"aggregate"`
	Topology  int64            `json:"topologyGeneration"`
	Lifecycle serve.ChainStats `json:"lifecycle"`
	Cache     cacheStatsJSON   `json:"cache"`
	Partials  int64            `json:"partials"`
	Failovers int64            `json:"failovers"`
	HedgeWins int64            `json:"hedgeWins"`
	Shards    []shardStateJSON `json:"shards"`
}

type cacheStatsJSON struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Size     int    `json:"size"`
	Capacity int    `json:"capacity"`
}

// handleHealth merges the dataset view (store + pipeline sections,
// gathered live from the lowest-index healthy range — global sections
// are identical on every shard) with the router's own lifecycle state.
// With every range down the document still answers 200: the router is
// alive, and the shard table shows exactly what is not.
func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	topo := rt.topo.Load()
	doc := map[string]json.RawMessage{}
	if set := rt.firstHealthy(topo); set != nil {
		if u, _, _, err := rt.fetchSet(r.Context(), set, http.MethodGet, "/v1/health", ""); err == nil && u.status == http.StatusOK {
			var shardDoc map[string]json.RawMessage
			if json.Unmarshal(u.body, &shardDoc) == nil {
				for _, k := range []string{"store", "pipeline"} {
					if v, ok := shardDoc[k]; ok {
						doc[k] = v
					}
				}
			}
		}
	}
	var failovers int64
	for _, set := range topo.sets {
		failovers += rt.failovers.With(strconv.Itoa(set.index)).Value()
	}
	hits, misses, size, capacity := rt.cache.stats()
	routerSection, err := json.Marshal(routerHealthJSON{
		Policy:    rt.policy,
		Aggregate: rt.aggMode,
		Topology:  topo.generation,
		Lifecycle: rt.chain.Stats(),
		Cache:     cacheStatsJSON{Hits: hits, Misses: misses, Size: size, Capacity: capacity},
		Partials:  rt.partials.Value(),
		Failovers: failovers,
		HedgeWins: rt.hedgeWins.Value(),
		Shards:    rt.shardStates(topo),
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding health: %v", err)
		return
	}
	doc["router"] = routerSection
	writeJSON(w, http.StatusOK, doc)
}

// handleReload fans the snapshot reload out to every replica of every
// range concurrently and flushes the router cache afterwards — cached
// bodies must not outlive the generations that rendered them. 200 only
// when every replica swapped; any failure reports 502 with the
// per-replica outcomes (the replicas that did swap keep their new
// generation; the document says which retry is needed).
func (rt *Router) handleReload(w http.ResponseWriter, r *http.Request) {
	type outcome struct {
		Shard   int             `json:"shard"`
		Replica int             `json:"replica"`
		URL     string          `json:"url"`
		OK      bool            `json:"ok"`
		Gen     json.RawMessage `json:"gen,omitempty"`
		Error   string          `json:"error,omitempty"`
	}
	topo := rt.topo.Load()
	outcomes := make([]outcome, len(topo.replicas))
	var wg sync.WaitGroup
	for i, sc := range topo.replicas {
		wg.Add(1)
		go func(i int, sc *shardClient) {
			defer wg.Done()
			u, err := rt.fetchOne(r.Context(), sc, http.MethodPost, "/v1/admin/reload", "")
			switch {
			case err != nil:
				outcomes[i] = outcome{Shard: sc.index, Replica: sc.ordinal, URL: sc.baseURL, Error: err.Error()}
			case u.status != http.StatusOK:
				outcomes[i] = outcome{Shard: sc.index, Replica: sc.ordinal, URL: sc.baseURL, Error: fmt.Sprintf("status %d: %s", u.status, u.body)}
			default:
				outcomes[i] = outcome{Shard: sc.index, Replica: sc.ordinal, URL: sc.baseURL, OK: true, Gen: u.body}
			}
		}(i, sc)
	}
	wg.Wait()
	rt.cache.flush()
	status := http.StatusOK
	for _, o := range outcomes {
		if !o.OK {
			status = http.StatusBadGateway
		}
	}
	writeJSON(w, status, map[string]any{"results": outcomes})
}

// shardSlowJSON is one replica's row in the router's /v1/debug/slow.
type shardSlowJSON struct {
	Shard     int             `json:"shard"`
	Replica   int             `json:"replica"`
	URL       string          `json:"url"`
	Exemplars json.RawMessage `json:"exemplars,omitempty"`
	Error     string          `json:"error,omitempty"`
}

// handleSlow aggregates slow-request exemplars across the fleet: the
// router's own ring plus each replica's /v1/debug/slow, gathered
// concurrently. A dark replica becomes an error row, never a failure —
// this is a debugging endpoint and partial truth beats none.
func (rt *Router) handleSlow(w http.ResponseWriter, r *http.Request) {
	topo := rt.topo.Load()
	rows := make([]shardSlowJSON, len(topo.replicas))
	var wg sync.WaitGroup
	for i, sc := range topo.replicas {
		wg.Add(1)
		go func(i int, sc *shardClient) {
			defer wg.Done()
			u, err := rt.fetchOne(r.Context(), sc, http.MethodGet, "/v1/debug/slow", "")
			switch {
			case err != nil:
				rows[i] = shardSlowJSON{Shard: sc.index, Replica: sc.ordinal, URL: sc.baseURL, Error: err.Error()}
			case u.status != http.StatusOK:
				rows[i] = shardSlowJSON{Shard: sc.index, Replica: sc.ordinal, URL: sc.baseURL, Error: fmt.Sprintf("status %d", u.status)}
			default:
				rows[i] = shardSlowJSON{Shard: sc.index, Replica: sc.ordinal, URL: sc.baseURL, Exemplars: u.body}
			}
		}(i, sc)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, map[string]any{
		"router": rt.exemplars.Snapshot(),
		"shards": rows,
	})
}

// handleMetrics is the router's Prometheus scrape.
func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	rt.runtime.Collect()
	hits, misses, size, _ := rt.cache.stats()
	rt.cacheHits.Set(float64(hits))
	rt.cacheMisses.Set(float64(misses))
	rt.cacheEntries.Set(float64(size))
	w.Header().Set("Content-Type", obs.ContentType)
	if err := obs.WritePrometheus(w, rt.obs.Registry); err != nil {
		http.Error(w, "rendering metrics: "+err.Error(), http.StatusInternalServerError)
	}
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n"))
}

// handleReadyz: ready while the router can still answer — every range
// lit under strict policy, at least one under partial. A range is dark
// only when all of its replicas' breakers are open. (Single-ASN reads
// for a dark range fail fast either way; readiness is about whether the
// router deserves traffic at all.)
func (rt *Router) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	topo := rt.topo.Load()
	dark := 0
	for _, set := range topo.sets {
		if set.dark() {
			dark++
		}
	}
	notReady := (rt.policy == PolicyStrict && dark > 0) || dark == len(topo.sets)
	if notReady {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "%d/%d shard ranges dark\n", dark, len(topo.sets))
		return
	}
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ready\n"))
}
