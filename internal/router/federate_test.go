package router

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"parallellives/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fakeShard runs a hand-scripted shard: a real /v1/shard handshake plus
// a fixed /metrics exposition. Everything the federator derives from it
// is therefore known in advance, which is what makes the rollup
// golden-testable.
func fakeShard(t *testing.T, index, count int, lo, hi uint32, gen int64, metrics string) (*httptest.Server, *flaky) {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/shard", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"sharded":true,"shard":{"index":%d,"count":%d,"lo":%d,"hi":%d,"sum":"feedface"},"generation":%d,"asnCount":5}`,
			index, count, lo, hi, gen)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.ContentType)
		w.Write([]byte(metrics))
	})
	f := &flaky{h: mux}
	ts := httptest.NewServer(f)
	t.Cleanup(ts.Close)
	return ts, f
}

const fakeShardMetrics0 = `# HELP parallellives_serve_requests_total API requests.
# TYPE parallellives_serve_requests_total counter
parallellives_serve_requests_total{endpoint="/v1/asn/{n}"} 100
parallellives_serve_requests_total{endpoint="/v1/taxonomy"} 20
parallellives_serve_errors_total{endpoint="/v1/asn/{n}"} 3
parallellives_serve_inflight 2
parallellives_stream_ingest_lag_days 2
parallellives_serve_request_seconds_bucket{endpoint="/v1/asn/{n}",le="0.001"} 80
parallellives_serve_request_seconds_bucket{endpoint="/v1/asn/{n}",le="0.01"} 118
parallellives_serve_request_seconds_bucket{endpoint="/v1/asn/{n}",le="+Inf"} 120
parallellives_serve_request_seconds_sum{endpoint="/v1/asn/{n}"} 0.5
parallellives_serve_request_seconds_count{endpoint="/v1/asn/{n}"} 120
`

const fakeShardMetrics1 = `parallellives_serve_requests_total{endpoint="/v1/asn/{n}"} 40
parallellives_serve_errors_total{endpoint="/v1/asn/{n}"} 0
parallellives_serve_inflight 0
parallellives_stream_ingest_lag_days 5
parallellives_serve_request_seconds_bucket{endpoint="/v1/asn/{n}",le="0.001"} 10
parallellives_serve_request_seconds_bucket{endpoint="/v1/asn/{n}",le="0.01"} 40
parallellives_serve_request_seconds_bucket{endpoint="/v1/asn/{n}",le="+Inf"} 40
`

// TestFederatedMetricsGolden pins the federation rollup byte-for-byte:
// two healthy fake shards plus one that stops answering mid-flight must
// produce exactly the fleet series in testdata/federated_metrics.golden
// — (shard, replica) labels, the generation-skew and lag-max gauges,
// the scrape-failure counter, and nothing of unbounded cardinality.
func TestFederatedMetricsGolden(t *testing.T) {
	s0, _ := fakeShard(t, 0, 3, 0, 1000, 3, fakeShardMetrics0)
	s1, _ := fakeShard(t, 1, 3, 1001, 2000, 3, fakeShardMetrics1)
	s2, f2 := fakeShard(t, 2, 3, 2001, maxASN, 1, "")

	rt, err := New(context.Background(), Options{
		Shards:           []string{s0.URL, s1.URL, s2.URL},
		ScrapeInterval:   time.Hour, // enables federation; the test scrapes by hand
		HandshakeTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.fed.clock = obs.NewFakeClock(time.Unix(1700000000, 0))

	f2.broken.Store(true) // shard 2 goes dark after the handshake
	rt.ScrapeFleet(context.Background())

	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf, rt.obs.Registry); err != nil {
		t.Fatal(err)
	}
	var fleet []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.Contains(line, "parallellives_fleet") {
			fleet = append(fleet, line)
		}
	}
	got := strings.Join(fleet, "\n") + "\n"

	goldenPath := filepath.Join("testdata", "federated_metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("federated metrics drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Spot-check the derived semantics behind the bytes, so a legitimate
	// -update can't silently bless nonsense.
	samples, err := obs.ParseExposition([]byte(got))
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name  string
		match map[string]string
		want  float64
	}{
		{MetricFleetRequests, map[string]string{"shard": "0"}, 120},
		{MetricFleetErrors, map[string]string{"shard": "0"}, 3},
		{MetricFleetRequests, map[string]string{"shard": "1"}, 40},
		{MetricFleetUp, map[string]string{"shard": "1"}, 1},
		{MetricFleetUp, map[string]string{"shard": "2"}, 0},
		{MetricFleetGen, map[string]string{"shard": "2"}, 1},
		{MetricFleetScrapes, map[string]string{"shard": "2", "outcome": "error"}, 1},
		{MetricFleetScrapes, map[string]string{"shard": "0", "outcome": "ok"}, 1},
		{MetricFleetLag, map[string]string{"shard": "1"}, 5},
		{MetricFleetGenSkew, nil, 2},
		{MetricFleetLagMax, nil, 5},
		{MetricFleetBreakersOpen, nil, 0},
		{MetricFleetShards, nil, 3},
		{MetricFleetReplicas, nil, 3},
	}
	for _, c := range checks {
		if v, ok := samples.Value(c.name, c.match); !ok || v != c.want {
			t.Errorf("%s%v = %v (present=%v), want %v", c.name, c.match, v, ok, c.want)
		}
	}
	// The dark shard must not pretend it was ever scraped.
	if _, ok := samples.Value(MetricFleetLastUnix, map[string]string{"shard": "2"}); ok {
		t.Errorf("stale shard has a last-scrape timestamp")
	}
	if v, ok := samples.Value(MetricFleetLastUnix, map[string]string{"shard": "0"}); !ok || v != 1700000000 {
		t.Errorf("shard 0 last scrape = %v, %v", v, ok)
	}
}

// TestFederationDisabled pins that a negative scrape interval keeps the
// fleet families off the router's exposition entirely — disabled means
// zero cardinality, not zeroed series.
func TestFederationDisabled(t *testing.T) {
	s0, _ := fakeShard(t, 0, 1, 0, maxASN, 1, "")
	rt, err := New(context.Background(), Options{
		Shards:           []string{s0.URL},
		ScrapeInterval:   -1,
		HandshakeTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.ScrapeFleet(context.Background()) // must no-op
	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf, rt.obs.Registry); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "parallellives_fleet") {
		t.Errorf("disabled federation still exports fleet series")
	}
}
