package collector

import (
	"testing"
)

// TestIterArenaRecyclingPreservesObservations pins the day-arena
// contract: within a day, every observation handed out by a
// continuously-advanced iterator (whose path arena and noise buffers are
// recycled day over day) must match what a fresh iterator advanced to
// the same day produces. Divergence would mean the arena reuse corrupts
// or cross-links the observations it backs.
func TestIterArenaRecyclingPreservesObservations(t *testing.T) {
	w := testWorld()
	inf := New(w)

	cont := inf.Iter()
	for day := 0; day < 10 && cont.Next(); day++ {
		fresh := inf.Iter()
		for i := 0; i <= day; i++ {
			if !fresh.Next() {
				t.Fatalf("fresh iterator exhausted at day %d", i)
			}
		}
		if cont.Day() != fresh.Day() {
			t.Fatalf("day %d: %v != %v", day, cont.Day(), fresh.Day())
		}
		got, want := cont.Observations(), fresh.Observations()
		if len(got) != len(want) {
			t.Fatalf("day %v: %d observations, want %d", cont.Day(), len(got), len(want))
		}
		for i := range got {
			if !equalObservation(got[i], want[i]) {
				t.Fatalf("day %v obs %d: %+v != %+v", cont.Day(), i, got[i], want[i])
			}
		}
	}
}

func equalObservation(a, b Observation) bool {
	if a.Collector != b.Collector || a.Peer != b.Peer ||
		len(a.Prefixes) != len(b.Prefixes) || len(a.Path) != len(b.Path) {
		return false
	}
	for i := range a.Prefixes {
		if a.Prefixes[i] != b.Prefixes[i] {
			return false
		}
	}
	for i := range a.Path {
		if a.Path[i] != b.Path[i] {
			return false
		}
	}
	return true
}
