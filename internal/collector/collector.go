// Package collector simulates the RouteViews / RIPE RIS collection
// infrastructure over the generated world: a set of collectors, each with
// full-feed peer ASes, that observe the announcements implied by the
// world's ground-truth BGP segments and export them as daily MRT archives
// (a TABLE_DUMP_V2 RIB dump per collector plus BGP4MP update dumps), the
// same shape the paper's pipeline consumes via BGPStream (§3.2).
//
// The infrastructure also exposes the observations directly (pre-wire),
// so large experiments can skip MRT encoding while the wire path stays
// covered by tests and the wire-mode pipeline.
package collector

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"

	"parallellives/internal/asn"
	"parallellives/internal/bgp"
	"parallellives/internal/dates"
	"parallellives/internal/intervals"
	"parallellives/internal/mrt"
	"parallellives/internal/worldsim"
)

// Observation is one peer's view of one origin's routes on one day: all
// prefixes sharing the same AS path are grouped, which keeps the
// observation stream (and the scanner's per-day work) proportional to
// routes rather than to prefixes.
type Observation struct {
	Collector int
	Peer      int // peer index within the collector
	Prefixes  []netip.Prefix
	Path      []asn.ASN
}

// PeerASN returns the AS of the observing peer.
func (o Observation) PeerASN() asn.ASN {
	if len(o.Path) == 0 {
		return 0
	}
	return o.Path[0]
}

// Collector describes one simulated collector.
type Collector struct {
	Name  string
	ID    [4]byte
	Peers []mrt.Peer
}

// Infrastructure is the simulated collection infrastructure.
type Infrastructure struct {
	world      *worldsim.World
	collectors []Collector
	segments   []worldsim.Segment // sorted by start (worldsim guarantees it)
	seed       int64
}

// New builds the infrastructure for a world using the world's collector
// configuration.
func New(w *worldsim.World) *Infrastructure {
	inf := &Infrastructure{world: w, segments: w.Segments, seed: w.Config.Seed}
	nPeers := w.Config.Collectors * w.Config.PeersPerCollector
	if nPeers > len(w.TransitASNs)-1 {
		nPeers = len(w.TransitASNs) - 1
	}
	peerIdx := 0
	for c := 0; c < w.Config.Collectors; c++ {
		col := Collector{
			Name: fmt.Sprintf("rrc%02d", c),
			ID:   [4]byte{198, 51, 100, byte(c + 1)},
		}
		for p := 0; p < w.Config.PeersPerCollector && peerIdx < nPeers; p++ {
			a := w.TransitASNs[peerIdx]
			col.Peers = append(col.Peers, mrt.Peer{
				BGPID: [4]byte{192, 0, 2, byte(peerIdx + 1)},
				Addr:  netip.AddrFrom4([4]byte{192, 0, 2, byte(peerIdx + 1)}),
				AS:    a,
			})
			peerIdx++
		}
		inf.collectors = append(inf.collectors, col)
	}
	return inf
}

// Collectors returns the simulated collectors.
func (inf *Infrastructure) Collectors() []Collector { return inf.collectors }

// hash64 is a seeded FNV-1a over (asn, day, salt) used for deterministic
// per-day jitter without shared RNG state.
func (inf *Infrastructure) hash64(a asn.ASN, d dates.Day, salt uint32) uint64 {
	h := uint64(14695981039346656037) ^ uint64(inf.seed)
	mix := func(v uint32) {
		for i := 0; i < 4; i++ {
			h ^= uint64(v & 0xff)
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(uint32(a))
	mix(uint32(d))
	mix(salt)
	return h
}

// outageSchedule derives a segment's transient disappearances — the
// per-ASN activity gaps behind Figure 3's CDF. Two populations exist:
// frequent 1–3 day flaps and rarer 4–28 day outages (both shorter than
// the 30-day lifetime timeout, which must bridge them; the mid-length
// ones are exactly what breaks apart under the 15-day timeout of the
// paper's sensitivity analysis).
func (inf *Infrastructure) outageSchedule(seg *worldsim.Segment) intervals.Set {
	rng := rand.New(rand.NewSource(int64(inf.hash64(seg.ASN, seg.Span.Start, 0x0bad))))
	var out []intervals.Interval
	cur := seg.Span.Start
	for {
		// Outage inter-arrival: exponential with a ~2200-day mean.
		cur = cur.AddDays(1 + int(rng.ExpFloat64()*2200))
		if cur > seg.Span.End {
			break
		}
		dur := 1 + rng.Intn(3)
		if rng.Float64() < 0.45 {
			dur = 4 + rng.Intn(25)
		}
		end := dates.Min(cur.AddDays(dur-1), seg.Span.End)
		out = append(out, intervals.New(cur, end))
		cur = end.AddDays(1)
	}
	return intervals.Normalize(out)
}

// attrsForPath encodes the raw path-attribute block for a RIB entry.
func attrsForPath(path []asn.ASN) []byte {
	u := bgp.Update{
		Path:      []bgp.Segment{{Type: bgp.SegmentSequence, ASNs: path}},
		NextHop:   netip.AddrFrom4([4]byte{192, 0, 2, 254}),
		HasOrigin: true,
	}
	return u.MarshalAttrs(true)
}

// updateForPath encodes a full BGP UPDATE message announcing prefix.
func updateForPath(path []asn.ASN, prefix netip.Prefix) ([]byte, error) {
	u := bgp.Update{
		Announced: []netip.Prefix{prefix},
		Path:      []bgp.Segment{{Type: bgp.SegmentSequence, ASNs: path}},
		HasOrigin: true,
	}
	return u.Marshal(true)
}

const prefixBitsDefault = 24

// prefixFor derives the i-th IPv4 prefix of an origin deterministically.
func prefixFor(owner asn.ASN, i int, bits int) netip.Prefix {
	v := uint32(owner)*2654435761 + uint32(i)*0x00010003 + 0x9e3779b9
	o1 := byte(1 + (v>>24)%126) // 1..126, stays within globally-routable-looking space
	o2 := byte(v >> 16)
	o3 := byte(v >> 8)
	addr := netip.AddrFrom4([4]byte{o1, o2, o3, 0})
	p, err := addr.Prefix(bits)
	if err != nil {
		panic(err)
	}
	return p
}

// prefix6For derives an IPv6 prefix for an origin.
func prefix6For(owner asn.ASN, i int) netip.Prefix {
	v := uint32(owner)*2654435761 + uint32(i)*40503
	var a [16]byte
	a[0], a[1] = 0x20, 0x01
	a[2], a[3] = 0x0d, 0xb8
	a[4], a[5] = byte(v>>24), byte(v>>16)
	a[6], a[7] = byte(v>>8), byte(v)
	p, err := netip.AddrFrom16(a).Prefix(48)
	if err != nil {
		panic(err)
	}
	return p
}

// pathFor builds the AS path a peer sees for a segment's announcements.
func (inf *Infrastructure) pathFor(seg *worldsim.Segment, peer asn.ASN, d dates.Day) []asn.ASN {
	return inf.appendPath(make([]asn.ASN, 0, 5), seg, peer, d)
}

// appendPath appends the AS path a peer sees for a segment's
// announcements to dst — the arena form of pathFor: the day iterator
// carves every observation's path out of one reused buffer.
func (inf *Infrastructure) appendPath(dst []asn.ASN, seg *worldsim.Segment, peer asn.ASN, d dates.Day) []asn.ASN {
	dst = append(dst, peer)
	if seg.Upstream != peer && seg.Upstream != seg.ASN {
		// Occasionally route through an extra transit hop.
		if inf.hash64(seg.ASN, d, uint32(peer))%5 == 0 {
			mid := inf.world.TransitASNs[inf.hash64(seg.ASN, d, 7)%uint64(len(inf.world.TransitASNs)-1)]
			if mid != peer && mid != seg.Upstream && mid != seg.ASN {
				dst = append(dst, mid)
			}
		}
		dst = append(dst, seg.Upstream)
	}
	// Prepending: some origins announce with the origin repeated.
	reps := 1
	if inf.hash64(seg.ASN, 0, 3)%10 == 0 {
		reps = 2 + int(inf.hash64(seg.ASN, 0, 4)%2)
	}
	for i := 0; i < reps; i++ {
		dst = append(dst, seg.ASN)
	}
	return dst
}

// Iter walks the window day by day.
type Iter struct {
	inf  *Infrastructure
	day  dates.Day
	end  dates.Day
	next int // index of first segment not yet activated
	// active segments, compacted lazily.
	active []int
	obs    []Observation
	// segCache holds each active segment's announced prefix set (constant
	// over the segment's life) and its outage schedule.
	segCache map[int]*segState
	// pathArena and noisePrefixes back the day's observation paths and
	// noise prefix sets. Both reset (len only) at the start of each day:
	// observations are consumed within their day, so the previous day's
	// views are dead by then, and growth mid-day leaves already-taken
	// views pointing at the old backing array, still valid and immutable.
	pathArena     []asn.ASN
	noisePrefixes []netip.Prefix
}

// segState is the cached per-segment rendering state.
type segState struct {
	prefixes []netip.Prefix
	outages  intervals.Set
}

// Iter returns a day iterator positioned before the window start.
func (inf *Infrastructure) Iter() *Iter {
	return inf.IterRange(inf.world.Config.Start, inf.world.Config.End)
}

// IterRange returns a day iterator over the window subrange
// [start, end], clamped to the window. A day's state is a pure function
// of the day — segment activation depends only on spans and the
// observation rendering only on (segment, day) — so an IterRange
// iterator yields on each day exactly what the full iterator yields
// there: the property the day-sharded scan relies on.
func (inf *Infrastructure) IterRange(start, end dates.Day) *Iter {
	if start < inf.world.Config.Start {
		start = inf.world.Config.Start
	}
	if end > inf.world.Config.End {
		end = inf.world.Config.End
	}
	return &Iter{
		inf:      inf,
		day:      start.AddDays(-1),
		end:      end,
		segCache: make(map[int]*segState),
	}
}

// Next advances to the next day; false past the iterator's end.
func (it *Iter) Next() bool {
	it.day = it.day.AddDays(1)
	if it.day > it.end {
		return false
	}
	for it.next < len(it.inf.segments) && it.inf.segments[it.next].Span.Start <= it.day {
		it.active = append(it.active, it.next)
		it.next++
	}
	// Compact expired segments.
	kept := it.active[:0]
	for _, si := range it.active {
		if it.inf.segments[si].Span.End >= it.day {
			kept = append(kept, si)
		} else {
			delete(it.segCache, si)
		}
	}
	it.active = kept
	it.obs = it.obs[:0]
	it.pathArena = it.pathArena[:0]
	it.noisePrefixes = it.noisePrefixes[:0]
	it.buildObservations()
	return true
}

// Day returns the current day.
func (it *Iter) Day() dates.Day { return it.day }

// Observations returns the day's per-peer route observations. The slice
// is reused across Next calls.
func (it *Iter) Observations() []Observation { return it.obs }

// buildObservations renders the active segments into per-peer routes,
// applying visibility classes and outage jitter, and appends the noise
// the sanitizer must reject.
func (it *Iter) buildObservations() {
	inf := it.inf
	d := it.day
	for _, si := range it.active {
		seg := &inf.segments[si]
		if !seg.Span.Contains(d) {
			continue
		}
		if seg.Vis == worldsim.VisNone {
			continue
		}
		st := it.segmentState(si, seg)
		if seg.Kind != worldsim.SegTransit && st.outages.Contains(d) {
			continue
		}
		prefixes := st.prefixes
		if len(prefixes) == 0 {
			// Pure carriers originate nothing; they appear on paths only
			// as upstreams of their customers.
			continue
		}
		for ci := range inf.collectors {
			col := &inf.collectors[ci]
			for pi := range col.Peers {
				if seg.Vis == worldsim.VisSinglePeer && (ci != 0 || pi != 0) {
					continue
				}
				peerAS := col.Peers[pi].AS
				if peerAS == seg.ASN {
					continue // a peer does not re-learn its own origin
				}
				start := len(it.pathArena)
				it.pathArena = inf.appendPath(it.pathArena, seg, peerAS, d)
				it.obs = append(it.obs, Observation{
					Collector: ci, Peer: pi,
					Prefixes: prefixes,
					Path:     it.pathArena[start:len(it.pathArena):len(it.pathArena)],
				})
			}
		}
	}
	it.appendNoise()
}

// segmentState returns (building once) a segment's rendering state: the
// prefix set it announces — PrefixCount IPv4 prefixes, from the victim's
// space for squats and MOAS fat-fingers, plus an IPv6 prefix for a share
// of origins — and its outage schedule.
func (it *Iter) segmentState(si int, seg *worldsim.Segment) *segState {
	if st, ok := it.segCache[si]; ok {
		return st
	}
	owner := seg.ASN
	bits := prefixBitsDefault
	if seg.Kind == worldsim.SegDormantSquat {
		// Squatters announce other organizations' idle space in larger
		// blocks (§6.1.2's /16s).
		owner = seg.VictimASN
		bits = 16
	}
	if seg.Kind == worldsim.SegFatFinger && seg.VictimASN != 0 {
		owner = seg.VictimASN
	}
	prefixes := make([]netip.Prefix, 0, seg.PrefixCount+1)
	for i := 0; i < seg.PrefixCount; i++ {
		prefixes = append(prefixes, prefixFor(owner, i, bits))
	}
	if seg.ASN%4 == 0 {
		prefixes = append(prefixes, prefix6For(owner, 0))
	}
	st := &segState{prefixes: prefixes, outages: it.inf.outageSchedule(seg)}
	it.segCache[si] = st
	return st
}

// appendNoise adds the daily junk the paper's sanitization discards:
// too-specific and too-broad prefixes, and a looped path (§3.2).
func (it *Iter) appendNoise() {
	inf := it.inf
	if len(inf.collectors) == 0 || len(inf.collectors[0].Peers) < 2 {
		return
	}
	d := it.day
	t := inf.world.TransitASNs
	junkOrigin := asn.ASN(64700 + inf.hash64(0, d, 1)%100) // varies daily
	mk := func(ci, pi int, prefix netip.Prefix, path ...asn.ASN) {
		ps := len(it.noisePrefixes)
		it.noisePrefixes = append(it.noisePrefixes, prefix)
		as := len(it.pathArena)
		it.pathArena = append(it.pathArena, path...)
		it.obs = append(it.obs, Observation{Collector: ci, Peer: pi,
			Prefixes: it.noisePrefixes[ps : ps+1 : ps+1],
			Path:     it.pathArena[as:len(it.pathArena):len(it.pathArena)]})
	}
	// Too-long IPv4 prefix (/25..). Both peers see it, so only the
	// prefix filter keeps it out.
	long, _ := netip.AddrFrom4([4]byte{203, 0, 113, 128}).Prefix(25)
	short, _ := netip.AddrFrom4([4]byte{12, 0, 0, 0}).Prefix(7)
	long6, _ := netip.MustParseAddr("2001:db8:1:2:3::").Prefix(80)
	for pi := 0; pi < 2; pi++ {
		peerAS := inf.collectors[0].Peers[pi].AS
		mk(0, pi, long, peerAS, t[0], junkOrigin)
		mk(0, pi, short, peerAS, t[0], junkOrigin)
		mk(0, pi, long6, peerAS, t[0], junkOrigin)
		// Looped path: the same transit appears in two non-adjacent
		// positions.
		loop, _ := netip.AddrFrom4([4]byte{198, 18, byte(d % 250), 0}).Prefix(24)
		mk(0, pi, loop, peerAS, t[0], t[1], t[0], junkOrigin)
	}
}

// MRT encodes the current day as MRT archives, one RIB dump per
// collector plus one update dump per collector, returned in collector
// order. The encoding is self-contained: each RIB starts with its
// PEER_INDEX_TABLE.
func (it *Iter) MRT() (ribs [][]byte, updates [][]byte, err error) {
	inf := it.inf
	ts := uint32(it.day.Unix())
	for ci := range inf.collectors {
		rib, upd, err := inf.encodeCollectorDay(ci, ts, it.obs)
		if err != nil {
			return nil, nil, err
		}
		ribs = append(ribs, rib)
		updates = append(updates, upd)
	}
	return ribs, updates, nil
}

// encodeCollectorDay renders one collector's observations for the day.
func (inf *Infrastructure) encodeCollectorDay(ci int, ts uint32, obs []Observation) (rib, upd []byte, err error) {
	col := &inf.collectors[ci]

	type routeKey struct {
		prefix netip.Prefix
		peer   int
	}
	// A RIB holds one best path per (prefix, peer); when several origins
	// announce the same prefix to the same peer during the day (MOAS and
	// churn), the first becomes the RIB entry and the rest are exported
	// in the update dump — exactly how a real collector's daily data
	// splits between its RIB snapshot and its update files.
	routes := make(map[routeKey][]asn.ASN)
	type loser struct {
		prefix netip.Prefix
		peer   int
		path   []asn.ASN
	}
	var losers []loser
	var prefixes []netip.Prefix
	seen := make(map[netip.Prefix]bool)
	for i := range obs {
		o := &obs[i]
		if o.Collector != ci {
			continue
		}
		for _, p := range o.Prefixes {
			k := routeKey{p, o.Peer}
			if _, ok := routes[k]; ok {
				losers = append(losers, loser{prefix: p, peer: o.Peer, path: o.Path})
			} else {
				routes[k] = o.Path
			}
			if !seen[p] {
				seen[p] = true
				prefixes = append(prefixes, p)
			}
		}
	}
	sort.Slice(prefixes, func(i, j int) bool {
		a, b := prefixes[i], prefixes[j]
		if c := a.Addr().Compare(b.Addr()); c != 0 {
			return c < 0
		}
		return a.Bits() < b.Bits()
	})

	ribBuf := &sliceWriter{}
	w := mrt.NewWriter(ribBuf)
	tbl := mrt.PeerIndexTable{CollectorID: col.ID, ViewName: col.Name, Peers: col.Peers}
	if err := w.WriteRecord(ts, mrt.TypeTableDumpV2, mrt.SubtypePeerIndexTable, tbl.Marshal()); err != nil {
		return nil, nil, err
	}
	var rec mrt.RIBRecord
	var seq uint32
	for _, p := range prefixes {
		rec.Prefix = p
		rec.Seq = seq
		seq++
		rec.Entries = rec.Entries[:0]
		for pi := range col.Peers {
			path, ok := routes[routeKey{p, pi}]
			if !ok {
				continue
			}
			rec.Entries = append(rec.Entries, mrt.RIBEntry{
				PeerIndex:      uint16(pi),
				OriginatedTime: ts,
				Attrs:          attrsForPath(path),
			})
		}
		if len(rec.Entries) == 0 {
			continue
		}
		if err := w.WriteRecord(ts, mrt.TypeTableDumpV2, rec.Subtype(), rec.Marshal()); err != nil {
			return nil, nil, err
		}
	}

	// Update dump: re-announce a deterministic slice of today's routes as
	// BGP4MP messages (the paper processes RIBs plus all updates; here
	// updates carry the same day's information, exercising the second
	// decode path).
	updBuf := &sliceWriter{}
	uw := mrt.NewWriter(updBuf)
	for _, l := range losers {
		if err := inf.writeUpdate(uw, col, ts, l.peer, l.path, l.prefix); err != nil {
			return nil, nil, err
		}
	}
	count := 0
	for _, p := range prefixes {
		if count >= 64 {
			break
		}
		for pi := range col.Peers {
			path, ok := routes[routeKey{p, pi}]
			if !ok {
				continue
			}
			if err := inf.writeUpdate(uw, col, ts, pi, path, p); err != nil {
				return nil, nil, err
			}
			count++
			break // one re-announcement per prefix suffices
		}
	}
	return ribBuf.b, updBuf.b, nil
}

// writeUpdate emits one BGP4MP UPDATE record for a route.
func (inf *Infrastructure) writeUpdate(w *mrt.Writer, col *Collector, ts uint32, pi int, path []asn.ASN, prefix netip.Prefix) error {
	msg, err := updateForPath(path, prefix)
	if err != nil {
		return err
	}
	m := mrt.BGP4MPMessage{
		PeerAS:   col.Peers[pi].AS,
		LocalAS:  65534,
		PeerIP:   col.Peers[pi].Addr,
		LocalIP:  netip.AddrFrom4([4]byte{203, 0, 113, 254}),
		Data:     msg,
		FourByte: true,
	}
	body, err := m.Marshal()
	if err != nil {
		return err
	}
	return w.WriteRecord(ts, mrt.TypeBGP4MP, m.Subtype(), body)
}

type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
