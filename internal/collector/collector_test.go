package collector

import (
	"testing"

	"parallellives/internal/asn"
	"parallellives/internal/dates"
	"parallellives/internal/worldsim"
)

func testWorld() *worldsim.World {
	cfg := worldsim.DefaultConfig()
	cfg.Scale = 0.01
	cfg.Start = dates.MustParse("2004-01-01")
	cfg.End = dates.MustParse("2004-12-31")
	return worldsim.Generate(cfg)
}

func TestInfrastructureSetup(t *testing.T) {
	w := testWorld()
	inf := New(w)
	cols := inf.Collectors()
	if len(cols) != w.Config.Collectors {
		t.Fatalf("collectors = %d", len(cols))
	}
	seen := map[asn.ASN]bool{}
	for _, c := range cols {
		if len(c.Peers) != w.Config.PeersPerCollector {
			t.Errorf("%s has %d peers", c.Name, len(c.Peers))
		}
		for _, p := range c.Peers {
			if seen[p.AS] {
				t.Errorf("peer AS %v assigned twice", p.AS)
			}
			seen[p.AS] = true
		}
	}
}

func TestIterCoversWindow(t *testing.T) {
	w := testWorld()
	inf := New(w)
	it := inf.Iter()
	n := 0
	var first, last dates.Day
	for it.Next() {
		if n == 0 {
			first = it.Day()
		}
		last = it.Day()
		n++
	}
	if first != w.Config.Start || last != w.Config.End {
		t.Errorf("window covered %v..%v", first, last)
	}
	if n != w.Config.End.Sub(w.Config.Start)+1 {
		t.Errorf("days = %d", n)
	}
}

func TestObservationsShape(t *testing.T) {
	w := testWorld()
	inf := New(w)
	it := inf.Iter()
	if !it.Next() {
		t.Fatal("no days")
	}
	obs := it.Observations()
	if len(obs) == 0 {
		t.Fatal("no observations on day 1")
	}
	for _, o := range obs {
		if len(o.Path) == 0 {
			t.Fatal("observation with empty path")
		}
		if len(o.Prefixes) == 0 {
			t.Fatal("observation with no prefixes")
		}
		if o.Collector >= len(inf.Collectors()) {
			t.Fatal("bad collector index")
		}
		if o.Peer >= len(inf.Collectors()[o.Collector].Peers) {
			t.Fatal("bad peer index")
		}
	}
}

func TestPathsStartAtPeerAndEndAtOrigin(t *testing.T) {
	w := testWorld()
	inf := New(w)
	segByASN := map[asn.ASN]worldsim.Segment{}
	for _, s := range w.Segments {
		segByASN[s.ASN] = s
	}
	it := inf.Iter()
	it.Next()
	for _, o := range it.Observations() {
		peerAS := inf.Collectors()[o.Collector].Peers[o.Peer].AS
		if o.Path[0] != peerAS {
			t.Fatalf("path %v does not start at peer %v", o.Path, peerAS)
		}
	}
}

func TestDeterministicAcrossIters(t *testing.T) {
	w := testWorld()
	inf := New(w)
	countDay := func() (int, int) {
		it := inf.Iter()
		days, obs := 0, 0
		for it.Next() {
			days++
			obs += len(it.Observations())
		}
		return days, obs
	}
	d1, o1 := countDay()
	d2, o2 := countDay()
	if d1 != d2 || o1 != o2 {
		t.Errorf("runs differ: %d/%d days, %d/%d observations", d1, d2, o1, o2)
	}
}

func TestMRTEncodesAllCollectors(t *testing.T) {
	w := testWorld()
	inf := New(w)
	it := inf.Iter()
	it.Next()
	ribs, updates, err := it.MRT()
	if err != nil {
		t.Fatal(err)
	}
	if len(ribs) != len(inf.Collectors()) || len(updates) != len(inf.Collectors()) {
		t.Fatalf("archives: %d ribs, %d updates", len(ribs), len(updates))
	}
	for i, rib := range ribs {
		if len(rib) == 0 {
			t.Errorf("collector %d: empty RIB", i)
		}
	}
}

func TestPrefixDerivationStable(t *testing.T) {
	a := prefixFor(64500, 0, 24)
	b := prefixFor(64500, 0, 24)
	if a != b {
		t.Error("prefixFor not deterministic")
	}
	if prefixFor(64500, 1, 24) == a {
		t.Error("distinct indices should give distinct prefixes")
	}
	if a.Bits() != 24 {
		t.Errorf("bits = %d", a.Bits())
	}
	v6 := prefix6For(64500, 0)
	if !v6.Addr().Is6() || v6.Bits() != 48 {
		t.Errorf("v6 prefix = %v", v6)
	}
}

func TestNoiseInjectedDaily(t *testing.T) {
	w := testWorld()
	inf := New(w)
	it := inf.Iter()
	it.Next()
	tooLong, looped := false, false
	for _, o := range it.Observations() {
		for _, p := range o.Prefixes {
			if p.Addr().Is4() && p.Bits() > 24 {
				tooLong = true
			}
		}
		seen := map[asn.ASN]int{}
		for i, a := range o.Path {
			if prev, ok := seen[a]; ok && i-prev > 1 {
				looped = true
			}
			seen[a] = i
		}
	}
	if !tooLong || !looped {
		t.Errorf("noise missing: tooLong=%v looped=%v", tooLong, looped)
	}
}
