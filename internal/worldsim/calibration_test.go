package worldsim

import (
	"testing"

	"parallellives/internal/asn"
	"parallellives/internal/dates"
)

// TestCalibrationShapes checks that the generated world reproduces the
// paper's headline distributional shapes at the default scale. Tolerances
// are deliberately loose: the goal is the shape, not the digit.
func TestCalibrationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation")
	}
	w := Generate(DefaultConfig())
	end := w.Config.End

	var perRIRAlive [asn.NumRIRs]int
	aliveASNs := make(map[asn.ASN]bool)
	unusedLives := 0
	cnLives, cnUnused := 0, 0
	totalLives := len(w.Lives)

	// Per-ASN observable activity.
	active := make(map[asn.ASN]bool)
	activeAtEnd := make(map[asn.ASN]bool)
	for _, s := range w.Segments {
		if s.Vis != VisFull {
			continue
		}
		active[s.ASN] = true
		if s.Span.Contains(end) {
			activeAtEnd[s.ASN] = true
		}
	}
	for _, l := range w.Lives {
		if l.Open {
			perRIRAlive[l.RIR]++
			aliveASNs[l.ASN] = true
		}
		// Observable activity overlapping the life?
		used := false
		for _, s := range w.Segments {
			if s.ASN == l.ASN && s.Vis == VisFull && s.Span.Overlaps(l.Alloc) {
				used = true
				break
			}
		}
		if !used {
			unusedLives++
		}
		if l.CC == "CN" {
			cnLives++
			if !used {
				cnUnused++
			}
		}
	}

	t.Logf("lives=%d orgs=%d segments=%d", totalLives, len(w.Orgs), len(w.Segments))
	t.Logf("alive at end per RIR: AfriNIC=%d APNIC=%d ARIN=%d LACNIC=%d RIPE=%d total=%d",
		perRIRAlive[asn.AfriNIC], perRIRAlive[asn.APNIC], perRIRAlive[asn.ARIN],
		perRIRAlive[asn.LACNIC], perRIRAlive[asn.RIPENCC], len(aliveASNs))
	t.Logf("BGP-active ASNs ever=%d, at end=%d", len(active), len(activeAtEnd))
	t.Logf("unused lives = %d (%.1f%%)", unusedLives, 100*float64(unusedLives)/float64(totalLives))
	t.Logf("CN lives = %d, unused = %d (%.1f%%)", cnLives, cnUnused, 100*float64(cnUnused)/float64(cnLives))
	t.Logf("planted: squats=%d hijacks=%d fatfingers=%d leaks=%d",
		len(w.DormantSquats), len(w.PostDeallocHijacks), len(w.FatFingers), len(w.LargeLeaks))

	if totalLives < 2000 || totalLives > 12000 {
		t.Errorf("total lives %d out of expected band", totalLives)
	}
	// RIPE overtakes ARIN by the end (Fig 4).
	if perRIRAlive[asn.RIPENCC] <= perRIRAlive[asn.ARIN] {
		t.Errorf("RIPE (%d) should exceed ARIN (%d) at window end",
			perRIRAlive[asn.RIPENCC], perRIRAlive[asn.ARIN])
	}
	// Roughly 28% of allocated ASNs not active at the end (§5).
	gap := 1 - float64(len(activeAtEnd))/float64(len(aliveASNs))
	t.Logf("allocated-but-inactive-at-end gap = %.1f%%", 100*gap)
	if gap < 0.15 || gap > 0.45 {
		t.Errorf("allocated-vs-BGP gap %.2f out of band", gap)
	}
	// Unused administrative lives near the paper's ~18%.
	frac := float64(unusedLives) / float64(totalLives)
	if frac < 0.10 || frac > 0.30 {
		t.Errorf("unused-life fraction %.2f out of band", frac)
	}
	// China disproportionately unobserved (§6.3: 50.6%).
	if cnLives > 20 {
		cnFrac := float64(cnUnused) / float64(cnLives)
		if cnFrac < 0.35 || cnFrac > 0.70 {
			t.Errorf("CN unused fraction %.2f out of band", cnFrac)
		}
	}
	if len(w.PostDeallocHijacks) == 0 || len(w.DormantSquats) < 12 ||
		len(w.FatFingers) < 10 || len(w.LargeLeaks) < 10 {
		t.Error("planted anomaly populations too small")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.01
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a.Lives) != len(b.Lives) || len(a.Segments) != len(b.Segments) {
		t.Fatalf("sizes differ: %d/%d lives, %d/%d segments",
			len(a.Lives), len(b.Lives), len(a.Segments), len(b.Segments))
	}
	for i := range a.Lives {
		if a.Lives[i] != b.Lives[i] {
			t.Fatalf("life %d differs: %+v vs %+v", i, a.Lives[i], b.Lives[i])
		}
	}
	for i := range a.Segments {
		if a.Segments[i] != b.Segments[i] {
			t.Fatalf("segment %d differs", i)
		}
	}
}

func TestLivesOfSameASNDoNotOverlap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.02
	w := Generate(cfg)
	byASN := make(map[asn.ASN][]Life)
	for _, l := range w.Lives {
		byASN[l.ASN] = append(byASN[l.ASN], l)
	}
	for a, lives := range byASN {
		for i := 1; i < len(lives); i++ {
			if lives[i].Alloc.Start <= lives[i-1].Alloc.End {
				t.Fatalf("ASN %v has overlapping lives: %v then %v",
					a, lives[i-1].Alloc, lives[i].Alloc)
			}
		}
	}
}

func TestPlantedEventsConsistency(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.02
	w := Generate(cfg)
	for _, s := range w.DormantSquats {
		lives := w.LivesOf(s.ASN)
		inside := false
		for _, l := range lives {
			if l.Alloc.ContainsInterval(s.Span) {
				inside = true
			}
		}
		if !inside {
			t.Errorf("dormant squat of %v at %v not inside any admin life", s.ASN, s.Span)
		}
	}
	for _, s := range w.PostDeallocHijacks {
		for _, l := range w.LivesOf(s.ASN) {
			if l.Alloc.Overlaps(s.Span) {
				t.Errorf("post-dealloc hijack of %v at %v overlaps admin life %v",
					s.ASN, s.Span, l.Alloc)
			}
		}
	}
	for _, s := range w.FatFingers {
		if len(w.LivesOf(s.ASN)) != 0 {
			t.Errorf("fat-finger origin %v is allocated", s.ASN)
		}
		if s.VictimASN == 0 {
			t.Errorf("fat-finger %v lacks a victim", s.ASN)
		}
		if !asn.ExactRepetition(s.ASN, s.VictimASN) && !asn.OneDigitOff(s.ASN, s.VictimASN) {
			t.Errorf("fat-finger %v does not resemble victim %v", s.ASN, s.VictimASN)
		}
	}
	for _, s := range w.LargeLeaks {
		if len(w.LivesOf(s.ASN)) != 0 {
			t.Errorf("large-leak origin %v is allocated", s.ASN)
		}
		if s.ASN < 100_000_000 {
			t.Errorf("large-leak ASN %v not large", s.ASN)
		}
		if s.ASN.Reserved() {
			t.Errorf("large-leak ASN %v is a bogon", s.ASN)
		}
	}
}

func TestSegmentsWithinWindowAndSorted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.02
	w := Generate(cfg)
	prev := dates.None
	for _, s := range w.Segments {
		if s.Span.Start < prev {
			t.Fatal("segments not sorted by start")
		}
		prev = s.Span.Start
		if s.Span.End < cfg.Start || s.Span.Start > cfg.End {
			t.Errorf("segment %v of %v fully outside window", s.Span, s.ASN)
		}
	}
}

func TestERXAndPlaceholderPopulationsExist(t *testing.T) {
	w := Generate(DefaultConfig())
	erx, placeholder, nir, failed32, transfers := 0, 0, 0, 0, 0
	for _, l := range w.Lives {
		switch l.Kind {
		case LifeERX:
			erx++
			if l.PlaceholderQuirk {
				placeholder++
			}
		case LifeNIRBlock:
			nir++
		case LifeFailed32:
			failed32++
		}
		if l.HasTransfer {
			transfers++
		}
	}
	t.Logf("erx=%d placeholder=%d nir=%d failed32=%d transfers=%d",
		erx, placeholder, nir, failed32, transfers)
	if erx == 0 || placeholder == 0 || nir == 0 || failed32 == 0 || transfers == 0 {
		t.Error("expected all special populations to be present at default scale")
	}
}
