package worldsim

import (
	"parallellives/internal/asn"
	"parallellives/internal/dates"
	"parallellives/internal/intervals"
)

// plantAnomalies injects the malicious and misconfigured behaviours the
// paper's joint lens surfaces: dormant-ASN squatting (§6.1.2),
// post-deallocation hijacks (§6.4), fat-finger origins (§6.4) and
// internal large-ASN leaks (§6.4). Every planted event is recorded in the
// World so detector tests can measure recall.
func (g *generator) plantAnomalies() {
	lastEnd := make(map[asn.ASN]dates.Day)
	hasOp := make(map[asn.ASN]bool)
	for _, s := range g.world.Segments {
		if s.Vis != VisFull {
			continue
		}
		hasOp[s.ASN] = true
		if cur, ok := lastEnd[s.ASN]; !ok || s.Span.End > cur {
			lastEnd[s.ASN] = s.Span.End
		}
	}
	livesByASN := make(map[asn.ASN][]int)
	for i, l := range g.world.Lives {
		livesByASN[l.ASN] = append(livesByASN[l.ASN], i)
	}

	g.plantDormantSquats(lastEnd, hasOp)
	g.plantPostDeallocHijacks(lastEnd, hasOp, livesByASN)
	g.plantFatFingers()
	g.plantLargeLeaks()
	g.plantNeverAllocatedNoise()
}

// dormancyWindow computes when a life's window-visible dormancy begins.
func (g *generator) dormancyWindow(l *Life, lastEnd map[asn.ASN]dates.Day, hasOp map[asn.ASN]bool) (dates.Day, bool) {
	dormSince := dates.Max(l.Alloc.Start, g.cfg.Start)
	if hasOp[l.ASN] {
		le := lastEnd[l.ASN]
		if le >= l.Alloc.End.AddDays(-60) {
			return 0, false // active to the end; nothing dormant
		}
		if le.AddDays(1) > dormSince {
			dormSince = le.AddDays(1)
		}
	}
	return dormSince, true
}

func (g *generator) plantDormantSquats(lastEnd map[asn.ASN]dates.Day, hasOp map[asn.ASN]bool) {
	var cands []int
	for i := range g.world.Lives {
		l := &g.world.Lives[i]
		if l.Kind == LifeTransit || l.Kind == LifeFailed32 {
			continue
		}
		dormSince, ok := g.dormancyWindow(l, lastEnd, hasOp)
		if !ok {
			continue
		}
		allocEnd := dates.Min(l.Alloc.End, g.cfg.End)
		if allocEnd.Sub(dormSince) > 1150 {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return
	}
	perm := g.rng.Perm(len(cands))
	want := scaleCount(110, g.cfg.Scale, 12)
	planted := 0
	for _, pi := range perm {
		if planted >= want {
			break
		}
		l := &g.world.Lives[cands[pi]]
		dormSince, _ := g.dormancyWindow(l, lastEnd, hasOp)
		allocEnd := dates.Min(l.Alloc.End, g.cfg.End)
		slack := allocEnd.Sub(dormSince) - 1001
		if slack < 10 {
			continue
		}
		wake := dormSince.AddDays(1001 + g.rng.Intn(slack))
		burst := 5 + g.rng.Intn(36)
		// Keep the burst under 4% of the administrative life so the
		// paper's 5% relative-duration filter catches it.
		if maxBurst := l.Alloc.Days() / 25; burst > maxBurst {
			burst = maxBurst
		}
		if burst < 3 {
			burst = 3
		}
		if wake.AddDays(burst) > allocEnd {
			burst = allocEnd.Sub(wake)
			if burst < 3 {
				continue
			}
		}
		upstream := g.world.HijackFactory
		if g.rng.Float64() > 0.6 {
			upstream = g.pickTransit(l.ASN)
		}
		seg := Segment{
			ASN:  l.ASN,
			Span: intervals.New(wake, wake.AddDays(burst-1)),
			Kind: SegDormantSquat, Vis: VisFull,
			Upstream:    upstream,
			PrefixCount: 30 + g.rng.Intn(170),
			VictimASN:   g.pickTransit(l.ASN), // prefix holder being squatted
		}
		g.world.Segments = append(g.world.Segments, seg)
		g.world.DormantSquats = append(g.world.DormantSquats, seg)
		lastEnd[l.ASN] = seg.Span.End
		hasOp[l.ASN] = true
		planted++
	}

	// The coordinated 2020 wave: ASNs waking almost simultaneously after
	// years of inactivity, announcing a few prefixes each through the
	// same upstream (§6.1.2's April–July 2020 case).
	waveStart := dates.MustParse("2020-04-05")
	waveWant := 10
	for _, pi := range perm {
		if waveWant == 0 {
			break
		}
		l := &g.world.Lives[cands[pi]]
		dormSince, ok := g.dormancyWindow(l, lastEnd, hasOp)
		if !ok {
			continue
		}
		wake := waveStart.AddDays(g.rng.Intn(80))
		allocEnd := dates.Min(l.Alloc.End, g.cfg.End)
		if wake.Sub(dormSince) < 1001 || wake.AddDays(30) > allocEnd {
			continue
		}
		seg := Segment{
			ASN:  l.ASN,
			Span: intervals.New(wake, wake.AddDays(10+g.rng.Intn(20))),
			Kind: SegDormantSquat, Vis: VisFull,
			Upstream:    g.world.HijackFactory,
			PrefixCount: 3 + g.rng.Intn(4),
			VictimASN:   g.pickTransit(l.ASN),
		}
		g.world.Segments = append(g.world.Segments, seg)
		g.world.DormantSquats = append(g.world.DormantSquats, seg)
		lastEnd[l.ASN] = seg.Span.End
		hasOp[l.ASN] = true
		waveWant--
	}
}

func (g *generator) plantPostDeallocHijacks(lastEnd map[asn.ASN]dates.Day, hasOp map[asn.ASN]bool, livesByASN map[asn.ASN][]int) {
	want := 9
	for i := range g.world.Lives {
		if want == 0 {
			break
		}
		l := &g.world.Lives[i]
		if l.Open || l.HasTransfer || l.Kind == LifeTransit || l.Kind == LifeFailed32 {
			continue
		}
		if l.Alloc.End < g.cfg.Start || l.Alloc.End.AddDays(90) > g.cfg.End {
			continue
		}
		if hasOp[l.ASN] && lastEnd[l.ASN] > l.Alloc.End.AddDays(-3000) {
			continue // recently active; the paper's cases were long-quiet
		}
		// Reject ASNs that get reallocated right after this life: the
		// hijack must fall outside any administrative lifetime.
		start := l.Alloc.End.AddDays(3 + g.rng.Intn(40))
		end := start.AddDays(3 + g.rng.Intn(27))
		clash := false
		for _, li := range livesByASN[l.ASN] {
			o := &g.world.Lives[li]
			if li != i && o.Alloc.Start <= end.AddDays(30) && o.Alloc.End >= start {
				clash = true
				break
			}
		}
		if clash || g.rng.Float64() > 0.3 {
			continue
		}
		seg := Segment{
			ASN: l.ASN, Span: intervals.New(start, end),
			Kind: SegPostDeallocHijack, Vis: VisFull,
			Upstream:    g.world.HijackFactory,
			PrefixCount: 3 + g.rng.Intn(10),
			VictimASN:   g.pickTransit(l.ASN),
		}
		g.world.Segments = append(g.world.Segments, seg)
		g.world.PostDeallocHijacks = append(g.world.PostDeallocHijacks, seg)
		lastEnd[l.ASN] = seg.Span.End
		hasOp[l.ASN] = true
		want--
	}
}

// neverAllocatable reports whether a could plausibly never be allocated
// in this world: outside every registry pool and not reserved.
func (g *generator) neverAllocatable(a asn.ASN) bool {
	if a == 0 || a.Reserved() || g.allocated[a] {
		return false
	}
	for _, m := range g.models {
		if a >= m.pool16Lo && a <= m.pool16Hi {
			return false
		}
		if a >= m.pool32Base && a < m.pool32Base+60000 {
			return false
		}
	}
	return true
}

// activeVictims returns full-visibility normal segments usable as
// fat-finger victims, in deterministic order.
func (g *generator) activeVictims() []Segment {
	var out []Segment
	for _, s := range g.world.Segments {
		if s.Vis == VisFull && (s.Kind == SegNormal || s.Kind == SegTransit) &&
			s.Span.Days() > 200 {
			out = append(out, s)
		}
	}
	return out
}

func (g *generator) plantFatFingers() {
	victims := g.activeVictims()
	if len(victims) == 0 {
		return
	}
	want := scaleCount(260, g.cfg.Scale, 14)
	perm := g.rng.Perm(len(victims))
	planted := 0
	for _, vi := range perm {
		if planted >= want {
			break
		}
		v := victims[vi]
		doubled := g.rng.Float64() < 0.76
		var bogus asn.ASN
		var upstream asn.ASN
		if doubled {
			// Failed prepend: origin is the victim's ASN written twice,
			// first hop is the victim itself.
			d, err := asn.Parse(v.ASN.String() + v.ASN.String())
			if err != nil || !g.neverAllocatable(d) {
				continue
			}
			bogus, upstream = d, v.ASN
		} else {
			// Mistyped origin causing a MOAS with the victim.
			bogus = g.mutateDigit(v.ASN)
			if bogus == 0 {
				continue
			}
			upstream = v.Upstream
		}
		// Duration mixture from §6.4: many one-day events, a tail of
		// months-long ones.
		var durDays int
		switch x := g.rng.Float64(); {
		case x < 0.5:
			durDays = 1
		case x < 0.8:
			durDays = 2 + g.rng.Intn(29)
		case x < 0.96:
			durDays = 31 + g.rng.Intn(270)
		default:
			durDays = 366 + g.rng.Intn(365)
		}
		maxStart := v.Span.Days() - durDays
		if maxStart < 1 {
			continue
		}
		start := v.Span.Start.AddDays(g.rng.Intn(maxStart))
		seg := Segment{
			ASN: bogus, Span: intervals.New(start, start.AddDays(durDays-1)),
			Kind: SegFatFinger, Vis: VisFull,
			Upstream: upstream, PrefixCount: 1 + g.rng.Intn(3),
			VictimASN: v.ASN,
		}
		g.allocated[bogus] = true // reserve the number against later picks
		g.world.Segments = append(g.world.Segments, seg)
		g.world.FatFingers = append(g.world.FatFingers, seg)
		planted++
	}
}

// mutateDigit returns a never-allocatable ASN differing from a in exactly
// one digit, or 0 if none is found quickly.
func (g *generator) mutateDigit(a asn.ASN) asn.ASN {
	s := []byte(a.String())
	for try := 0; try < 20; try++ {
		i := g.rng.Intn(len(s))
		c := byte('0' + g.rng.Intn(10))
		if c == s[i] || (i == 0 && c == '0') {
			continue
		}
		mut := append([]byte(nil), s...)
		mut[i] = c
		v, err := asn.Parse(string(mut))
		if err == nil && g.neverAllocatable(v) && asn.OneDigitOff(a, v) {
			return v
		}
	}
	return 0
}

func (g *generator) plantLargeLeaks() {
	want := scaleCount(470, g.cfg.Scale, 10)
	planted := 0
	for planted < want {
		// Large internal numbers leaking to the global table: more
		// digits than any allocated ASN (the paper's AS290012147 case).
		a := asn.ASN(100_000_000 + g.rng.Int63n(4_000_000_000))
		if !g.neverAllocatable(a) {
			continue
		}
		start := g.cfg.Start.AddDays(g.rng.Intn(g.cfg.End.Sub(g.cfg.Start) - 40))
		dur := g.lognormDays(300, 1.2, 30, 2500)
		end := start.AddDays(dur)
		if end > g.cfg.End {
			end = g.cfg.End
		}
		seg := Segment{
			ASN: a, Span: intervals.New(start, end),
			Kind: SegLargeLeak, Vis: VisFull,
			Upstream: g.pickTransit(0), PrefixCount: 1,
		}
		g.allocated[a] = true
		g.world.Segments = append(g.world.Segments, seg)
		g.world.LargeLeaks = append(g.world.LargeLeaks, seg)
		planted++
	}
}

// plantNeverAllocatedNoise emits short-lived never-allocated origins with
// no clean explanation — most last a single day (§6.4: only 427 of 868
// never-allocated ASNs were active more than one day).
func (g *generator) plantNeverAllocatedNoise() {
	want := scaleCount(140, g.cfg.Scale, 8)
	planted := 0
	for planted < want {
		a := asn.ASN(400_000 + g.rng.Int63n(60_000_000))
		if !g.neverAllocatable(a) {
			continue
		}
		start := g.cfg.Start.AddDays(g.rng.Intn(g.cfg.End.Sub(g.cfg.Start) - 10))
		dur := 1
		if g.rng.Float64() < 0.3 {
			dur = 2 + g.rng.Intn(20)
		}
		seg := Segment{
			ASN: a, Span: intervals.New(start, start.AddDays(dur-1)),
			Kind: SegFatFinger, Vis: VisFull,
			Upstream: g.pickTransit(0), PrefixCount: 1,
		}
		g.allocated[a] = true
		g.world.Segments = append(g.world.Segments, seg)
		planted++
	}
}

// plantNoise emits spurious single-peer observations that the scanner's
// >1-peer visibility rule must reject (§3.2).
func (g *generator) plantNoise() {
	n := 80
	span := g.cfg.End.Sub(g.cfg.Start)
	for i := 0; i < n; i++ {
		day := g.cfg.Start.AddDays(g.rng.Intn(span))
		var a asn.ASN
		if g.rng.Float64() < 0.5 && len(g.world.Lives) > 0 {
			a = g.world.Lives[g.rng.Intn(len(g.world.Lives))].ASN
		} else {
			a = asn.ASN(900_000 + g.rng.Int63n(1_000_000))
		}
		g.world.Segments = append(g.world.Segments, Segment{
			ASN: a, Span: intervals.New(day, day),
			Kind: SegNormal, Vis: VisSinglePeer,
			Upstream: g.pickTransit(a), PrefixCount: 1,
		})
	}
}
