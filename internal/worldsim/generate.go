package worldsim

import (
	"math"
	"math/rand"
	"sort"

	"parallellives/internal/asn"
	"parallellives/internal/dates"
	"parallellives/internal/intervals"
)

// generator carries the state threaded through world generation.
type generator struct {
	cfg    Config
	rng    *rand.Rand
	models [asn.NumRIRs]rirModel
	world  *World

	next16 [asn.NumRIRs]asn.ASN
	next32 [asn.NumRIRs]asn.ASN

	// allocated tracks every ASN ever used by the generator, so planted
	// never-allocated origins can be checked against it.
	allocated map[asn.ASN]bool

	// reuseQueue holds deallocated ASNs waiting for reallocation.
	reuseQueue []reuseCandidate

	// siblingOrgs are the large multi-ASN organizations.
	siblingOrgs []int
}

type reuseCandidate struct {
	a             asn.ASN
	rir           asn.RIR
	availableFrom dates.Day
	prevOrg       int
	prevRegDate   dates.Day
	prevCC        string
}

// Generate builds the deterministic ground-truth world for cfg.
func Generate(cfg Config) *World {
	if cfg.Scale <= 0 {
		panic("worldsim: Scale must be positive")
	}
	g := &generator{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		models:    models(),
		world:     &World{Config: cfg},
		allocated: make(map[asn.ASN]bool),
	}
	for _, r := range asn.All() {
		g.next16[r] = g.models[r].pool16Lo
		g.next32[r] = g.models[r].pool32Base
	}
	g.world.rng = g.rng

	g.buildTransitBackbone()
	g.buildSiblingOrgs()
	for _, r := range asn.All() {
		g.buildHistoric(r)
	}
	g.buildInWindowBirths()
	g.buildInterRIRTransfers()
	g.buildOperationalLives()
	g.plantAnomalies()
	g.plantNoise()

	sort.SliceStable(g.world.Segments, func(i, j int) bool {
		a, b := g.world.Segments[i], g.world.Segments[j]
		if a.Span.Start != b.Span.Start {
			return a.Span.Start < b.Span.Start
		}
		return a.ASN < b.ASN
	})
	sort.SliceStable(g.world.Lives, func(i, j int) bool {
		a, b := g.world.Lives[i], g.world.Lives[j]
		if a.ASN != b.ASN {
			return a.ASN < b.ASN
		}
		return a.Alloc.Start < b.Alloc.Start
	})
	return g.world
}

// lognormDays samples a lognormal day count with the given median and
// shape, clipped to [lo, hi].
func (g *generator) lognormDays(median float64, sigma float64, lo, hi int) int {
	v := int(math.Round(median * math.Exp(g.rng.NormFloat64()*sigma)))
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

func (g *generator) newOrg(rir asn.RIR, cc string, sibling bool) int {
	id := len(g.world.Orgs)
	cone := 0
	switch x := g.rng.Float64(); {
	case x < 0.85:
		cone = 0
	case x < 0.95:
		cone = 1 + g.rng.Intn(10)
	case x < 0.99:
		cone = 10 + g.rng.Intn(90)
	default:
		cone = 100 + g.rng.Intn(4900)
	}
	g.world.Orgs = append(g.world.Orgs, Org{
		ID: id, CC: cc, RIR: rir, ConeSize: cone, SiblingGroup: sibling,
	})
	return id
}

func (g *generator) take16(r asn.RIR) asn.ASN {
	a := g.next16[r]
	g.next16[r]++
	g.allocated[a] = true
	return a
}

func (g *generator) take32(r asn.RIR) asn.ASN {
	a := g.next32[r]
	g.next32[r]++
	g.allocated[a] = true
	return a
}

// buildTransitBackbone creates the always-on transit ASNs that serve as
// collector peers and upstreams.
func (g *generator) buildTransitBackbone() {
	w := g.world
	type seatT struct {
		rir asn.RIR
		cc  string
	}
	seats := []seatT{
		{asn.ARIN, "US"}, {asn.ARIN, "US"}, {asn.ARIN, "US"}, {asn.ARIN, "CA"},
		{asn.RIPENCC, "DE"}, {asn.RIPENCC, "GB"}, {asn.RIPENCC, "NL"}, {asn.RIPENCC, "SE"},
		{asn.APNIC, "JP"}, {asn.APNIC, "AU"}, {asn.APNIC, "SG"},
		{asn.LACNIC, "BR"}, {asn.LACNIC, "AR"},
		{asn.AfriNIC, "ZA"},
	}
	for _, s := range seats {
		a := g.take16(s.rir)
		org := g.newOrg(s.rir, s.cc, false)
		w.Orgs[org].ConeSize = 2000 + g.rng.Intn(30000)
		reg := dates.FromYMD(1990+g.rng.Intn(10), 1+g.rng.Intn(12), 1+g.rng.Intn(28))
		w.Lives = append(w.Lives, Life{
			ASN: a, OrgID: org, RIR: s.rir, CC: s.cc, Kind: LifeTransit,
			RegDate: reg,
			Alloc:   intervals.New(reg, g.cfg.End),
			Open:    true,
		})
		w.TransitASNs = append(w.TransitASNs, a)
	}
	// The hijack factory is a smaller RIPE transit allocated mid-window
	// (the paper's AS203040 was a 32-bit RIPE resource).
	fac := g.take32(asn.RIPENCC)
	org := g.newOrg(asn.RIPENCC, "BG", false)
	facStart := dates.MustParse("2013-05-14")
	if facStart >= g.cfg.End {
		facStart = g.cfg.Start // short test windows: factory exists throughout
	}
	w.Lives = append(w.Lives, Life{
		ASN: fac, OrgID: org, RIR: asn.RIPENCC, CC: "BG", Kind: LifeTransit,
		RegDate: facStart, Alloc: intervals.New(facStart, g.cfg.End), Open: true,
	})
	w.TransitASNs = append(w.TransitASNs, fac)
	w.HijackFactory = fac
}

// buildSiblingOrgs creates the large organizations that hold many ASNs
// and announce only a minority of them (§6.3).
func (g *generator) buildSiblingOrgs() {
	type group struct {
		rir   asn.RIR
		cc    string
		count int
	}
	groups := []group{
		{asn.ARIN, "US", 40}, // defense-department analogue
		{asn.ARIN, "US", 18}, // large registry-operator analogue
		{asn.RIPENCC, "FR", 20},
		{asn.APNIC, "JP", 10},
	}
	for _, grp := range groups {
		n := scaleCount(grp.count, g.cfg.Scale, 4)
		org := g.newOrg(grp.rir, grp.cc, true)
		g.siblingOrgs = append(g.siblingOrgs, org)
		for i := 0; i < n; i++ {
			a := g.take16(grp.rir)
			reg := dates.FromYMD(1992+g.rng.Intn(8), 1+g.rng.Intn(12), 1+g.rng.Intn(28))
			g.world.Lives = append(g.world.Lives, Life{
				ASN: a, OrgID: org, RIR: grp.rir, CC: grp.cc, Kind: LifeHistoric,
				RegDate: reg, Alloc: intervals.New(reg, g.cfg.End), Open: true,
			})
		}
	}
}

// scaleCount scales an unscaled real-world count, enforcing a floor so
// rare-but-load-bearing populations survive small scales.
func scaleCount(real int, scale float64, floor int) int {
	n := int(math.Round(float64(real) * scale))
	if n < floor {
		n = floor
	}
	return n
}

// historicRegDate draws a pre-window registration date with the dot-com
// spike around 1999–2001 (Fig 10's left edge).
func (g *generator) historicRegDate() dates.Day {
	var year int
	switch x := g.rng.Float64(); {
	case x < 0.08:
		year = 1984 + g.rng.Intn(8) // 1984-1991
	case x < 0.25:
		year = 1992 + g.rng.Intn(6) // 1992-1997
	case x < 0.62:
		year = 1998 + g.rng.Intn(4) // the bubble: 1998-2001
	default:
		year = 2002 + g.rng.Intn(2) // 2002-2003
	}
	return dates.FromYMD(year, 1+g.rng.Intn(12), 1+g.rng.Intn(28))
}

// buildHistoric creates the ASNs already allocated when the window opens.
func (g *generator) buildHistoric(r asn.RIR) {
	m := &g.models[r]
	n := scaleCount(m.historicCount, g.cfg.Scale, 10)
	// ERX populations: shares of the 5,026 transfers from ARIN, plus the
	// 204-ASN AfriNIC second phase.
	erxShare := map[asn.RIR]float64{asn.RIPENCC: 0.14, asn.APNIC: 0.10, asn.LACNIC: 0.08, asn.AfriNIC: 0.03}
	for i := 0; i < n; i++ {
		a := g.take16(r)
		reg := g.historicRegDate()
		cc := m.pickCountry(g.rng, reg.Year()).cc
		org := g.newOrg(r, cc, false)
		kind := LifeHistoric
		placeholder := false
		if share, ok := erxShare[r]; ok && g.rng.Float64() < share {
			kind = LifeERX
			// ERX resources are old early registrations.
			reg = dates.FromYMD(1985+g.rng.Intn(10), 1+g.rng.Intn(12), 1+g.rng.Intn(28))
			if r == asn.RIPENCC && g.rng.Float64() < 0.35 {
				placeholder = true // files will show 1993-09-01
			}
		}
		life := Life{
			ASN: a, OrgID: org, RIR: r, CC: cc, Kind: kind,
			RegDate: reg, PlaceholderQuirk: placeholder,
		}
		// Most historic lives survive far into the window; some end.
		switch x := g.rng.Float64(); {
		case x < 0.55:
			life.Alloc = intervals.New(reg, g.cfg.End)
			life.Open = true
		default:
			// Dies somewhere inside the window. Late-2003 registrations
			// can postdate an early death day; clamp to a one-day life
			// rather than an inverted interval.
			endOffset := g.rng.Intn(g.cfg.End.Sub(g.cfg.Start))
			end := g.cfg.Start.AddDays(endOffset + 1)
			if end < reg {
				end = reg
			}
			life.Alloc = intervals.New(reg, end)
			life.QuarantineDays = 30 + g.rng.Intn(150)
			g.maybeScheduleReuse(&life)
		}
		g.world.Lives = append(g.world.Lives, life)
	}
}

// maybeScheduleReuse enqueues a just-closed life's ASN for reallocation.
func (g *generator) maybeScheduleReuse(l *Life) {
	m := &g.models[l.RIR]
	if g.rng.Float64() >= m.pReuse {
		return
	}
	g.reuseQueue = append(g.reuseQueue, reuseCandidate{
		a:             l.ASN,
		rir:           l.RIR,
		availableFrom: l.Alloc.End.AddDays(l.QuarantineDays),
		prevOrg:       l.OrgID,
		prevRegDate:   l.RegDate,
		prevCC:        l.CC,
	})
}

// sampleDuration draws an in-window life duration class; returns
// (durationDays, open). reused biases the mixture toward shorter lives:
// numbers that already churned once tend to churn again (the registries
// reclaiming them are the same ones reassigning them).
func (g *generator) sampleDuration(r asn.RIR, year int, reused bool) (int, bool) {
	m := &g.models[r]
	pShort := m.pShortLife
	if year >= 2010 {
		// Life expectancy converges across registries in the last decade
		// (Fig 14 discussion).
		pShort = 0.10
	}
	pLongOpen := m.pLongOpen
	if reused {
		pShort += 0.08
		pLongOpen -= 0.15
		if pLongOpen < 0.2 {
			pLongOpen = 0.2
		}
	}
	midYears := 8
	if r == asn.ARIN || r == asn.RIPENCC {
		// The two registries with active reclaim policies churn their
		// mid-length allocations faster (Appendix B), which is what
		// makes second and third lives of the same number common there
		// (Table 2).
		midYears = 4
	}
	switch x := g.rng.Float64(); {
	case x < pShort:
		return 10 + g.rng.Intn(350), false
	case x < pShort+(1-pLongOpen-pShort)*0.9:
		return 365 + g.rng.Intn(365*midYears), false
	default:
		return 0, true
	}
}

// buildInWindowBirths walks the window day by day allocating new ASNs per
// the registry rate curves, and services the reallocation queue.
func (g *generator) buildInWindowBirths() {
	var acc [asn.NumRIRs]float64
	// nirAcc throttles APNIC NIR block delegations.
	nirGap := int(90 / math.Max(g.cfg.Scale*25, 0.25)) // scale-adjusted cadence
	if nirGap < 30 {
		nirGap = 30
	}
	nextNIR := g.cfg.Start.AddDays(g.rng.Intn(nirGap))

	for d := g.cfg.Start; d <= g.cfg.End; d = d.AddDays(1) {
		year := d.Year()
		for _, r := range asn.All() {
			m := &g.models[r]
			if r == asn.AfriNIC && year < 2005 {
				continue // AfriNIC files begin in 2005
			}
			acc[r] += float64(m.annualRate[year]) * g.cfg.Scale / 365.0
			for acc[r] >= 1 {
				acc[r]--
				g.birth(r, d, year)
			}
		}
		if d >= nextNIR && year >= 2004 {
			g.nirBlock(d, year)
			nextNIR = d.AddDays(nirGap + g.rng.Intn(nirGap))
		}
		g.serviceReuseQueue(d)
	}
}

// birth creates one fresh allocation at day d.
func (g *generator) birth(r asn.RIR, d dates.Day, year int) {
	m := &g.models[r]
	use32 := g.rng.Float64() < m.share32[year]
	var a asn.ASN
	if use32 {
		a = g.take32(r)
	} else {
		a = g.take16(r)
	}
	cwt := m.pickCountry(g.rng, year)
	// A few allocations go to existing sibling organizations.
	var org int
	if len(g.siblingOrgs) > 0 && g.rng.Float64() < 0.02 {
		org = g.siblingOrgs[g.rng.Intn(len(g.siblingOrgs))]
	} else {
		org = g.newOrg(r, cwt.cc, false)
	}

	// Failed 32-bit deployment: a short unused life replaced by a 16-bit
	// number days later (§6.3).
	if use32 && year >= 2010 && g.rng.Float64() < m.fail32 {
		dur := 5 + g.rng.Intn(26)
		end := d.AddDays(dur)
		if end > g.cfg.End {
			end = g.cfg.End
		}
		g.world.Lives = append(g.world.Lives, Life{
			ASN: a, OrgID: org, RIR: r, CC: cwt.cc, Kind: LifeFailed32,
			RegDate: d, Alloc: intervals.New(d, end),
			QuarantineDays: 60 + g.rng.Intn(120),
		})
		// Replacement 16-bit allocation for the same organization.
		rd := end.AddDays(1 + g.rng.Intn(10))
		if rd < g.cfg.End {
			b := g.take16(r)
			g.finishBirth(b, org, r, cwt, rd, rd.Year(), LifeNormal)
		}
		return
	}
	g.finishBirth(a, org, r, cwt, d, year, LifeNormal)
}

// finishBirth creates a life with a sampled duration and schedules reuse.
func (g *generator) finishBirth(a asn.ASN, org int, r asn.RIR, cwt countryWeight, d dates.Day, year int, kind LifeKind) {
	g.finishBirthDur(a, org, r, cwt, d, year, kind, false)
}

// finishBirthDur is finishBirth with an explicit reused-duration bias.
func (g *generator) finishBirthDur(a asn.ASN, org int, r asn.RIR, cwt countryWeight, d dates.Day, year int, kind LifeKind, reused bool) {
	dur, open := g.sampleDuration(r, year, reused)
	life := Life{ASN: a, OrgID: org, RIR: r, CC: cwt.cc, Kind: kind, RegDate: d}
	if open || d.AddDays(dur) >= g.cfg.End {
		life.Alloc = intervals.New(d, g.cfg.End)
		life.Open = true
	} else {
		life.Alloc = intervals.New(d, d.AddDays(dur))
		life.QuarantineDays = 30 + g.rng.Intn(150)
		g.maybeScheduleReuse(&life)
	}
	g.world.Lives = append(g.world.Lives, life)
}

// nirBlock creates an APNIC block delegation routed through a National
// Internet Registry (§2, §4.1): several consecutive ASNs allocated on the
// same day with the same registration date.
func (g *generator) nirBlock(d dates.Day, year int) {
	m := &g.models[asn.APNIC]
	nirCCs := []string{"JP", "ID", "CN", "IN", "KR", "VN"}
	cc := nirCCs[g.rng.Intn(len(nirCCs))]
	size := 3 + g.rng.Intn(6)
	use32 := g.rng.Float64() < m.share32[year]
	org := g.newOrg(asn.APNIC, cc, false)
	for i := 0; i < size; i++ {
		var a asn.ASN
		if use32 {
			a = g.take32(asn.APNIC)
		} else {
			a = g.take16(asn.APNIC)
		}
		g.world.Lives = append(g.world.Lives, Life{
			ASN: a, OrgID: org, RIR: asn.APNIC, CC: cc, Kind: LifeNIRBlock,
			RegDate: d, Alloc: intervals.New(d, g.cfg.End), Open: true,
		})
	}
}

// serviceReuseQueue reallocates quarantine-expired ASNs. Reallocations
// created during the sweep can themselves schedule future reuse, so the
// queue is detached before filtering and the survivors appended after.
func (g *generator) serviceReuseQueue(d dates.Day) {
	queue := g.reuseQueue
	g.reuseQueue = nil
	kept := queue[:0]
	for _, c := range queue {
		if c.availableFrom > d {
			kept = append(kept, c)
			continue
		}
		// Some candidates linger in the pool before reallocation.
		if g.rng.Float64() < 0.97 {
			if c.availableFrom.AddDays(900) > d { // still plausibly waiting
				kept = append(kept, c)
				continue
			}
			// Waited too long: drop (never reused).
			continue
		}
		m := &g.models[c.rir]
		year := d.Year()
		if g.rng.Float64() < m.pReturnSame {
			// Returned to the previous holder. Every registry but
			// AfriNIC keeps the original registration date (§2).
			reg := c.prevRegDate
			kind := LifeReturnSame
			if c.rir == asn.AfriNIC {
				reg = d
			}
			dur, open := g.sampleDuration(c.rir, year, true)
			life := Life{ASN: c.a, OrgID: c.prevOrg, RIR: c.rir, CC: c.prevCC,
				Kind: kind, RegDate: reg}
			if open || d.AddDays(dur) >= g.cfg.End {
				life.Alloc = intervals.New(d, g.cfg.End)
				life.Open = true
			} else {
				life.Alloc = intervals.New(d, d.AddDays(dur))
				life.QuarantineDays = 30 + g.rng.Intn(150)
				g.maybeScheduleReuse(&life)
			}
			g.world.Lives = append(g.world.Lives, life)
			continue
		}
		// Fresh holder, fresh registration date.
		cwt := m.pickCountry(g.rng, year)
		org := g.newOrg(c.rir, cwt.cc, false)
		g.finishBirthDur(c.a, org, c.rir, cwt, d, year, LifeNormal, true)
	}
	g.reuseQueue = append(g.reuseQueue, kept...)
}

// buildInterRIRTransfers splits a handful of open lives across two RIRs
// (§4.1: 342 real transfers).
func (g *generator) buildInterRIRTransfers() {
	want := scaleCount(342, g.cfg.Scale, 6)
	transferred := 0
	for i := range g.world.Lives {
		if transferred >= want {
			break
		}
		l := &g.world.Lives[i]
		if !l.Open || l.Kind != LifeNormal || l.Alloc.Start <= g.cfg.Start {
			continue
		}
		// Transfer roughly the right number by sampling sparsely.
		if g.rng.Float64() > 0.01 {
			continue
		}
		span := l.Alloc.End.Sub(l.Alloc.Start)
		if span < 700 {
			continue
		}
		cut := l.Alloc.Start.AddDays(300 + g.rng.Intn(span-400))
		var dst asn.RIR
		for {
			dst = asn.RIR(g.rng.Intn(int(asn.NumRIRs)))
			if dst != l.RIR {
				break
			}
		}
		gap := 0
		if g.rng.Float64() < 0.25 {
			gap = 3 + g.rng.Intn(25) // gapped transfer: two lifetimes
		}
		l.Open = false
		l.Alloc = intervals.New(l.Alloc.Start, cut)
		l.HasTransfer = true
		l.TransferredTo = dst
		g.world.Lives = append(g.world.Lives, Life{
			ASN: l.ASN, OrgID: l.OrgID, RIR: dst, CC: l.CC, Kind: LifeNormal,
			RegDate: l.RegDate, // transfers preserve registration dates
			Alloc:   intervals.New(cut.AddDays(1+gap), g.cfg.End),
			Open:    true,
		})
		transferred++
	}
}
