// Package worldsim generates a deterministic synthetic ground truth of
// the Internet's ASN ecosystem over the paper's 2003–2021 window: who
// allocated which AS number when (per-RIR policies, quarantine,
// reallocation, ERX and inter-RIR transfers, NIR blocks, the 16→32-bit
// transition) and how each ASN behaved in BGP (start-up delays, outages,
// intermittent use, dangling announcements) — including the malicious and
// misconfigured behaviours the paper surfaces (dormant-ASN squatting,
// post-deallocation hijacks, fat-finger origins, internal-ASN leaks).
//
// The simulator replaces the paper's archival inputs (RIR FTP sites,
// RouteViews/RIS collectors), which are unavailable offline. Downstream
// packages never read the ground truth directly for analysis: the
// registry package renders it into delegation-file text with the §3.1
// error classes injected, and the collector package renders it into MRT
// archives — the restoration and scanning pipelines then recover what the
// paper recovers. Ground truth is retained only for validation: tests
// measure how much of it the pipeline reconstructs.
package worldsim

import (
	"math/rand"

	"parallellives/internal/asn"
	"parallellives/internal/dates"
	"parallellives/internal/intervals"
)

// Config controls world generation. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	// Seed drives all randomness; equal configs generate equal worlds.
	Seed int64

	// Start and End bound the observation window (delegation files and
	// BGP data exist only inside it). Ground-truth registration dates may
	// precede Start, as in the real data.
	Start, End dates.Day

	// Scale multiplies real-world allocation volumes. 1.0 would simulate
	// the full ~127k lifetimes; the default 0.04 yields a few thousand,
	// which preserves every distributional shape the paper reports while
	// keeping experiments laptop-sized.
	Scale float64

	// Collectors is the number of simulated collectors; each gets
	// PeersPerCollector full-feed peers.
	Collectors        int
	PeersPerCollector int
}

// DefaultConfig returns the paper-window configuration at the default
// scale.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		Start:             dates.MustParse("2003-10-09"),
		End:               dates.MustParse("2021-03-01"),
		Scale:             0.04,
		Collectors:        2,
		PeersPerCollector: 4,
	}
}

// Visibility classifies how widely an ASN's announcements propagate to
// the collector infrastructure.
type Visibility uint8

// Visibility classes.
const (
	// VisFull: announcements reach every collector peer.
	VisFull Visibility = iota
	// VisSinglePeer: announcements reach exactly one peer — below the
	// paper's >1-peer threshold, so the scanner must discard them.
	VisSinglePeer
	// VisNone: announcements are stripped before reaching any peer
	// (the China-style aggregation case of §6.3).
	VisNone
)

// Org is an organization holding number resources.
type Org struct {
	ID       int
	CC       string
	RIR      asn.RIR
	ConeSize int // customer-cone size (ASRank substitute)
	// Sibling organizations hold many ASNs and routinely leave a large
	// fraction of them unannounced (the DoD/Verisign pattern of §6.3).
	SiblingGroup bool
}

// LifeKind tags why a ground-truth administrative life exists, so tests
// and experiment reports can break results down by cause.
type LifeKind uint8

// Administrative life kinds.
const (
	LifeNormal LifeKind = iota
	LifeHistoric
	LifeERX        // early-registration transfer from ARIN
	LifeNIRBlock   // part of an APNIC block delegated via an NIR
	LifeFailed32   // short-lived 32-bit allocation abandoned by the org
	LifeTransit    // backbone/transit AS, alive for the whole window
	LifeReturnSame // re-allocation of the same ASN to the same org
)

// Life is one ground-truth administrative lifetime of an ASN.
type Life struct {
	ASN     asn.ASN
	OrgID   int
	RIR     asn.RIR
	CC      string
	Kind    LifeKind
	RegDate dates.Day
	// Alloc is the allocated interval, clipped to nothing: End carries
	// the true deallocation day even when it is past the window end.
	Alloc intervals.Interval
	// Open reports the life is still allocated at the window end.
	Open bool
	// QuarantineDays is how long the ASN sits reserved after
	// deallocation before returning to the available pool.
	QuarantineDays int
	// TransferredTo, when set, records an inter-RIR transfer: the life
	// continues under another RIR with a contiguous follow-on Life.
	TransferredTo    asn.RIR
	HasTransfer      bool
	PlaceholderQuirk bool // RIPE ERX: registration date replaced by 1993-09-01 in files

	// FileFrom is the first day the allocation appears in delegation
	// files — usually Alloc.Start plus a 0–1 day publication delay, but
	// much later for the RIPE bulk-imported legacy resources (§6.2
	// footnote 12). The registry emitter additionally clamps it to the
	// registry's first file date.
	FileFrom dates.Day
}

// SegmentKind tags ground-truth operational segments.
type SegmentKind uint8

// Operational segment kinds.
const (
	SegNormal SegmentKind = iota
	SegIntermittent
	SegConference
	SegDangling   // continues past deallocation
	SegEarlyStart // begins before the allocation is published
	SegDormantSquat
	SegPostDeallocHijack
	SegFatFinger
	SegLargeLeak
	SegTransit
)

// Segment is one ground-truth span of BGP presence for an ASN.
type Segment struct {
	ASN      asn.ASN
	Span     intervals.Interval
	Kind     SegmentKind
	Vis      Visibility
	Upstream asn.ASN // first transit hop carrying the announcements
	// PrefixCount is the number of prefixes originated per day during
	// the segment (0 for pure-transit presence).
	PrefixCount int
	// VictimASN, for SegFatFinger, is the legitimate ASN whose identity
	// the bogus origin resembles; for SegDormantSquat/SegPostDeallocHijack
	// it is the organization whose prefixes were squatted (0 if none).
	VictimASN asn.ASN
}

// World is the generated ground truth.
type World struct {
	Config Config
	Orgs   []Org
	Lives  []Life
	// Segments hold all BGP ground truth, sorted by segment start.
	Segments []Segment
	// TransitASNs are the backbone ASNs present every day (and on every
	// path as upstreams).
	TransitASNs []asn.ASN
	// HijackFactory is the transit ASN used as shared upstream by the
	// coordinated squatting events (the paper's AS203040 analogue).
	HijackFactory asn.ASN

	// Planted ground-truth events for detector validation.
	DormantSquats      []Segment
	PostDeallocHijacks []Segment
	FatFingers         []Segment
	LargeLeaks         []Segment

	rng *rand.Rand
}

// LivesOf returns all ground-truth lives of an ASN in chronological order.
func (w *World) LivesOf(a asn.ASN) []Life {
	var out []Life
	for _, l := range w.Lives {
		if l.ASN == a {
			out = append(out, l)
		}
	}
	return out
}

// SegmentsOf returns all ground-truth segments of an ASN in order.
func (w *World) SegmentsOf(a asn.ASN) []Segment {
	var out []Segment
	for _, s := range w.Segments {
		if s.ASN == a {
			out = append(out, s)
		}
	}
	return out
}
