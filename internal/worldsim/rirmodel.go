package worldsim

import (
	"math/rand"

	"parallellives/internal/asn"
)

// rirModel captures the per-registry behaviour knobs, calibrated to the
// real-world totals and trends the paper reports so that the generated
// world reproduces the paper's distributional shapes (§5, Appendix A/B).
type rirModel struct {
	// pool16 is the registry's 16-bit ASN range [lo, hi]; pool32 the base
	// of its 32-bit range. Both are consumed sequentially, mirroring how
	// IANA block delegations appear in practice.
	pool16Lo, pool16Hi asn.ASN
	pool32Base         asn.ASN

	// historicCount is the (unscaled) number of ASNs already allocated
	// and alive when the observation window opens in late 2003.
	historicCount int

	// annualRate maps calendar year to (unscaled) new allocations.
	annualRate map[int]int

	// share32 maps calendar year to the fraction of new allocations that
	// are 32-bit numbers (Fig 12's per-RIR transition shapes).
	share32 map[int]float64

	// fail32 is the probability that a 32-bit allocation fails
	// deployment: a short unused life followed by a 16-bit replacement
	// (§6.3's "challenging deployments").
	fail32 float64

	// pShortLife is the probability an in-window allocation lasts under
	// a year (Fig 5's zoom); pLongOpen the probability it stays open to
	// the window end. The remainder gets a mid-length life.
	pShortLife, pLongOpen float64

	// pReuse is the probability a deallocated ASN is reallocated once
	// its quarantine ends (Table 2's re-allocation contrast); pReturnSame
	// the probability the reallocation goes back to the same holder.
	pReuse, pReturnSame float64

	// deallocLagMedianDays is the typical delay between an ASN's last
	// BGP activity and its deallocation (§6.1 "late deallocations").
	deallocLagMedianDays int

	// pSlowPublish is the probability a new allocation takes more than a
	// day to appear in delegation files (between 0.65% for ARIN and 9.9%
	// for AfriNIC in the real data, §4.1 footnote 6).
	pSlowPublish float64

	// countries lists the registry's country mix; weights may shift by
	// era to reproduce Table 4 / Appendix A trends.
	countries []countryWeight
}

// countryWeight gives one country's share of a registry's allocations in
// three eras: up to 2009, 2010–2014, and 2015 onward.
type countryWeight struct {
	cc                  string
	early, mid, late    float64
	pNeverAnnounce      float64 // probability an allocation is never seen in BGP
	pNeverAnnounceIsSet bool
}

func cw(cc string, early, mid, late float64) countryWeight {
	return countryWeight{cc: cc, early: early, mid: mid, late: late}
}

func cwNever(cc string, early, mid, late, never float64) countryWeight {
	return countryWeight{cc: cc, early: early, mid: mid, late: late,
		pNeverAnnounce: never, pNeverAnnounceIsSet: true}
}

// defaultNeverAnnounce is the baseline probability that an allocated ASN
// is never observed in global BGP, tuned so the world-wide share of
// unused administrative lives lands near the paper's ~18–21%.
const defaultNeverAnnounce = 0.065

func (c countryWeight) neverAnnounce() float64 {
	if c.pNeverAnnounceIsSet {
		return c.pNeverAnnounce
	}
	return defaultNeverAnnounce
}

func (c countryWeight) weight(year int) float64 {
	switch {
	case year < 2010:
		return c.early
	case year < 2015:
		return c.mid
	default:
		return c.late
	}
}

// models returns the five registry models indexed by asn.RIR.
func models() [asn.NumRIRs]rirModel {
	var m [asn.NumRIRs]rirModel

	m[asn.AfriNIC] = rirModel{
		pool16Lo: 36000, pool16Hi: 37999, pool32Base: 327680,
		historicCount: 300,
		annualRate: rateCurve(map[int]int{
			2005: 60, 2008: 100, 2011: 150, 2014: 200, 2017: 260, 2020: 300,
		}),
		share32: share32Curve(0.0, map[int]float64{
			2007: 0.03, 2010: 0.3, 2012: 0.7, 2015: 0.9, 2020: 0.983,
		}),
		fail32:     0.05,
		pShortLife: 0.09, pLongOpen: 0.55,
		pReuse: 0.22, pReturnSame: 0.2,
		deallocLagMedianDays: 530,
		pSlowPublish:         0.099,
		countries: []countryWeight{
			cw("ZA", 0.34, 0.33, 0.32), cw("NG", 0.08, 0.1, 0.12),
			cw("KE", 0.07, 0.08, 0.09), cw("EG", 0.08, 0.07, 0.07),
			cw("TZ", 0.04, 0.05, 0.06), cw("GH", 0.04, 0.05, 0.05),
			cw("MU", 0.05, 0.04, 0.03), cw("AO", 0.03, 0.04, 0.05),
			cw("ZZ", 0.27, 0.24, 0.21), // rest of region
		},
	}

	m[asn.APNIC] = rirModel{
		pool16Lo: 38000, pool16Hi: 45999, pool32Base: 131072,
		historicCount: 3300,
		annualRate: rateCurve(map[int]int{
			2004: 500, 2008: 560, 2012: 640, 2013: 700, 2014: 1200,
			2015: 1400, 2017: 1600, 2019: 1800, 2020: 1800,
		}),
		share32: share32Curve(0.0, map[int]float64{
			2007: 0.04, 2009: 0.5, 2010: 0.85, 2013: 0.95, 2020: 0.99,
		}),
		fail32:     0.06,
		pShortLife: 0.11, pLongOpen: 0.5,
		pReuse: 0.4, pReturnSame: 0.2,
		deallocLagMedianDays: 190,
		pSlowPublish:         0.05,
		countries: []countryWeight{
			cw("AU", 0.18, 0.16, 0.12), cw("KR", 0.15, 0.09, 0.04),
			cw("JP", 0.13, 0.1, 0.06), cwNever("CN", 0.08, 0.11, 0.1, 0.40),
			cw("ID", 0.07, 0.08, 0.13), cw("IN", 0.04, 0.1, 0.2),
			cw("HK", 0.06, 0.06, 0.06), cw("TW", 0.05, 0.04, 0.03),
			cw("TH", 0.04, 0.04, 0.04), cw("ZZ", 0.2, 0.22, 0.22),
		},
	}

	m[asn.ARIN] = rirModel{
		pool16Lo: 1000, pool16Hi: 19999, pool32Base: 393216,
		historicCount: 16000,
		annualRate: rateCurve(map[int]int{
			2004: 1000, 2009: 1000, 2015: 950, 2020: 950,
		}),
		share32: share32Curve(0.0, map[int]float64{
			2007: 0.02, 2010: 0.1, 2013: 0.15, 2014: 0.35, 2016: 0.55, 2020: 0.7,
		}),
		fail32:     0.02,
		pShortLife: 0.06, pLongOpen: 0.65,
		pReuse: 0.8, pReturnSame: 0.12,
		deallocLagMedianDays: 320,
		pSlowPublish:         0.0065,
		countries: []countryWeight{
			cwNever("US", 0.92, 0.92, 0.92, 0.14), cw("CA", 0.06, 0.06, 0.06),
			cw("ZZ", 0.02, 0.02, 0.02),
		},
	}

	m[asn.LACNIC] = rirModel{
		pool16Lo: 46000, pool16Hi: 52999, pool32Base: 262144,
		historicCount: 1100,
		annualRate: rateCurve(map[int]int{
			2004: 250, 2008: 350, 2012: 480, 2013: 500, 2014: 900,
			2015: 1100, 2017: 1400, 2019: 1600, 2020: 1600,
		}),
		share32: share32Curve(0.0, map[int]float64{
			2007: 0.03, 2010: 0.6, 2012: 0.85, 2015: 0.95, 2020: 0.99,
		}),
		fail32:     0.015,
		pShortLife: 0.13, pLongOpen: 0.44,
		pReuse: 0.08, pReturnSame: 0.2,
		deallocLagMedianDays: 330,
		pSlowPublish:         0.04,
		countries: []countryWeight{
			cw("BR", 0.58, 0.64, 0.72), cw("AR", 0.11, 0.1, 0.09),
			cw("MX", 0.06, 0.05, 0.04), cw("CL", 0.05, 0.04, 0.03),
			cw("CO", 0.04, 0.04, 0.04), cw("ZZ", 0.16, 0.13, 0.08),
		},
	}

	m[asn.RIPENCC] = rirModel{
		pool16Lo: 20000, pool16Hi: 35999, pool32Base: 196608,
		historicCount: 6500,
		annualRate: rateCurve(map[int]int{
			2004: 1800, 2006: 2400, 2008: 2900, 2010: 3100, 2012: 3200,
			2014: 2900, 2016: 2600, 2018: 2400, 2020: 2200,
		}),
		share32: share32Curve(0.0, map[int]float64{
			2006: 0.001, 2007: 0.03, 2010: 0.45, 2013: 0.7, 2016: 0.85, 2020: 0.9,
		}),
		fail32:     0.05,
		pShortLife: 0.08, pLongOpen: 0.55,
		pReuse: 0.62, pReturnSame: 0.12,
		deallocLagMedianDays: 310,
		pSlowPublish:         0.03,
		countries: []countryWeight{
			cwNever("RU", 0.17, 0.17, 0.16, 0.06), cw("GB", 0.09, 0.08, 0.08),
			cw("DE", 0.08, 0.07, 0.07), cwNever("FR", 0.05, 0.05, 0.05, 0.25),
			cw("NL", 0.05, 0.05, 0.05), cw("IT", 0.05, 0.05, 0.04),
			cw("UA", 0.05, 0.06, 0.05), cw("PL", 0.04, 0.05, 0.05),
			cw("ZZ", 0.42, 0.42, 0.45),
		},
	}

	return m
}

// rateCurve expands sparse {year: rate} anchor points into a dense map by
// holding the most recent anchor (step interpolation), covering 2004-2021.
func rateCurve(anchors map[int]int) map[int]int {
	out := make(map[int]int, 2021-2003+1)
	cur := 0
	for y := 2003; y <= 2021; y++ {
		if v, ok := anchors[y]; ok {
			cur = v
		}
		out[y] = cur
	}
	return out
}

// share32Curve expands sparse {year: share} anchors with linear
// interpolation between anchors and the initial value before the first.
func share32Curve(initial float64, anchors map[int]float64) map[int]float64 {
	years := make([]int, 0, len(anchors))
	for y := range anchors {
		years = append(years, y)
	}
	// insertion sort; tiny input
	for i := 1; i < len(years); i++ {
		for j := i; j > 0 && years[j] < years[j-1]; j-- {
			years[j], years[j-1] = years[j-1], years[j]
		}
	}
	out := make(map[int]float64)
	for y := 2003; y <= 2021; y++ {
		v := initial
		for i, ay := range years {
			if y < ay {
				break
			}
			if i == len(years)-1 || y < years[i+1] {
				if i == len(years)-1 {
					v = anchors[ay]
				} else {
					ny := years[i+1]
					frac := float64(y-ay) / float64(ny-ay)
					v = anchors[ay] + frac*(anchors[ny]-anchors[ay])
				}
			}
		}
		out[y] = v
	}
	return out
}

// pickCountry draws a country code for an allocation made in year.
func (m *rirModel) pickCountry(rng *rand.Rand, year int) countryWeight {
	total := 0.0
	for _, c := range m.countries {
		total += c.weight(year)
	}
	x := rng.Float64() * total
	for _, c := range m.countries {
		x -= c.weight(year)
		if x <= 0 {
			return c
		}
	}
	return m.countries[len(m.countries)-1]
}
