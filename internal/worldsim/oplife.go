package worldsim

import (
	"parallellives/internal/asn"
	"parallellives/internal/dates"
	"parallellives/internal/intervals"
)

// buildOperationalLives generates the BGP ground truth for every
// administrative life: start-up delays, late deallocations, inactivity
// gaps, intermittent behaviours, dangling announcements and early starts.
// It also assigns each life's delegation-file publication date.
func (g *generator) buildOperationalLives() {
	for i := range g.world.Lives {
		l := &g.world.Lives[i]
		g.assignPublication(l)
		switch l.Kind {
		case LifeTransit:
			// Every fourth backbone AS is a pure carrier: it appears on
			// paths as transit but originates no prefixes of its own —
			// the population that makes the §9 origination/transit role
			// split non-trivial.
			prefixes := 3 + g.rng.Intn(8)
			if l.ASN%4 == 3 {
				prefixes = 0
			}
			g.world.Segments = append(g.world.Segments, Segment{
				ASN:  l.ASN,
				Span: intervals.New(g.cfg.Start, g.cfg.End),
				Kind: SegTransit, Vis: VisFull,
				Upstream:    g.pickTransit(l.ASN),
				PrefixCount: prefixes,
			})
		case LifeFailed32:
			// Abandoned deployments never reach BGP.
		default:
			g.opForLife(l)
		}
	}
}

// assignPublication sets the day the life's record first appears in
// delegation files.
func (g *generator) assignPublication(l *Life) {
	m := &g.models[l.RIR]
	delay := 0
	switch x := g.rng.Float64(); {
	case x < m.pSlowPublish:
		delay = 2 + g.rng.Intn(6)
	case x < m.pSlowPublish+0.3:
		delay = 1
	}
	l.FileFrom = l.Alloc.Start.AddDays(delay)
	// RIPE's bulk-imported legacy resources only entered the files in
	// 2005, hundreds of days after the window (and their BGP activity)
	// began (§6.2 footnote 12).
	if l.RIR == asn.RIPENCC && l.Kind == LifeERX && g.rng.Float64() < 0.5 {
		l.FileFrom = dates.MustParse("2005-04-27").AddDays(g.rng.Intn(40))
	}
}

// pickTransit draws an upstream transit ASN different from self and from
// the hijack factory (which only anomalies use, keeping detector
// validation clean).
func (g *generator) pickTransit(self asn.ASN) asn.ASN {
	pool := g.world.TransitASNs[:len(g.world.TransitASNs)-1] // exclude factory
	for {
		a := pool[g.rng.Intn(len(pool))]
		if a != self {
			return a
		}
	}
}

// pUnused returns the probability the life is genuinely never announced.
func (g *generator) pUnused(l *Life) float64 {
	org := g.world.Orgs[l.OrgID]
	switch {
	case org.SiblingGroup:
		return 0.55
	case l.Kind == LifeNIRBlock:
		return 0.25
	}
	m := &g.models[l.RIR]
	for _, c := range m.countries {
		if c.cc == l.CC && c.cc != "CN" {
			return c.neverAnnounce()
		}
	}
	return defaultNeverAnnounce
}

// opForLife generates the operational segments of one administrative life.
func (g *generator) opForLife(l *Life) {
	if g.rng.Float64() < g.pUnused(l) {
		return // genuinely unused
	}
	vis := VisFull
	if l.CC == "CN" && g.rng.Float64() < 0.42 {
		// Used inside the national topology but stripped before reaching
		// any collector peer (§6.3).
		vis = VisNone
	} else if g.rng.Float64() < 0.01 {
		vis = VisSinglePeer // below the >1-peer visibility threshold
	}

	// Operational start: typically a few weeks after allocation.
	var opStart dates.Day
	switch {
	case l.Alloc.Start < g.cfg.Start:
		// Historic life: already active when the window opens.
		opStart = g.cfg.Start
		if g.rng.Float64() < 0.15 {
			opStart = g.cfg.Start.AddDays(g.rng.Intn(2000))
		}
	case g.rng.Float64() < 0.013:
		// Early start: announcements precede the registration date
		// itself (§6.2 "late allocations by RIRs").
		opStart = l.Alloc.Start.AddDays(-(1 + g.rng.Intn(7)))
	case g.rng.Float64() < 0.03:
		// Immediate start: precedes file publication when the registry
		// publishes with a delay.
		opStart = l.Alloc.Start.AddDays(g.rng.Intn(2))
	default:
		opStart = l.Alloc.Start.AddDays(g.lognormDays(35, 1.1, 0, 900))
	}

	// Operational end: the org stops announcing, then the registry
	// deallocates months later — or keeps announcing past deallocation
	// (dangling).
	var opEnd dates.Day
	kind := SegNormal
	if l.Open {
		opEnd = g.cfg.End
		pDormantTail := 0.10
		if l.RIR == asn.ARIN {
			// ARIN's operational line trails its administrative line
			// hardest (Fig. 4's 2009-vs-2012 crossover contrast): more
			// of its long-held legacy allocations go quiet.
			pDormantTail = 0.20
		}
		if g.rng.Float64() < pDormantTail {
			// Went quiet while staying allocated: dormant tail.
			stop := g.lognormDays(500, 1.0, 30, l.Alloc.End.Sub(opStart))
			opEnd = l.Alloc.End.AddDays(-stop)
		}
	} else {
		m := &g.models[l.RIR]
		org := g.world.Orgs[l.OrgID]
		if org.ConeSize == 0 && g.rng.Float64() < 0.09 {
			// Dangling announcements persisting past deallocation. The
			// activity must begin inside the allocation — a dangling
			// route is one nobody reconfigured, so it was up before the
			// deallocation.
			opEnd = l.Alloc.End.AddDays(30 + g.rng.Intn(670))
			kind = SegDangling
			if opStart > l.Alloc.End.AddDays(-10) {
				opStart = dates.Max(l.Alloc.Start, l.Alloc.End.AddDays(-(30 + g.rng.Intn(300))))
			}
		} else {
			lag := g.lognormDays(float64(m.deallocLagMedianDays), 0.9, 0, 4000)
			opEnd = l.Alloc.End.AddDays(-lag)
		}
	}
	if opEnd > g.cfg.End {
		opEnd = g.cfg.End
	}
	if opStart < g.cfg.Start {
		opStart = g.cfg.Start
	}
	if opEnd <= opStart {
		return // activity fell entirely outside the window or vanished
	}
	if kind == SegNormal && opStart < l.FileFrom {
		kind = SegEarlyStart
	}

	org := g.world.Orgs[l.OrgID]
	switch {
	case kind == SegDangling:
		// A dangling announcement is a route nobody withdrew: one
		// continuous run straddling the deallocation.
		g.emitSegments(l.ASN, opStart, opEnd, 1, kind, vis)
		return
	case g.rng.Float64() < 0.0015:
		g.conferenceSegments(l, opStart, opEnd, vis)
		return
	case org.SiblingGroup && g.rng.Float64() < 0.35:
		g.rotationSegments(l, opStart, opEnd, vis)
		return
	}

	// Number of operational lives within the span (§6.1: 84.1% one,
	// 10.4% two, the rest more).
	k := 1
	switch x := g.rng.Float64(); {
	case x < 0.841:
		k = 1
	case x < 0.946:
		k = 2
	case x < 0.996:
		k = 3 + g.rng.Intn(5)
	default:
		k = 11 + g.rng.Intn(8)
	}
	g.emitSegments(l.ASN, opStart, opEnd, k, kind, vis)
}

// emitSegments splits [opStart, opEnd] into k activity runs separated by
// gaps exceeding the 30-day lifetime threshold. Positional kinds apply
// to the boundary run only: with SegDangling the last run is the one
// extending past deallocation, with SegEarlyStart the first run is the
// one preceding publication; interior runs are ordinary activity.
func (g *generator) emitSegments(a asn.ASN, opStart, opEnd dates.Day, k int, kind SegmentKind, vis Visibility) {
	span := opEnd.Sub(opStart) + 1
	upstream := g.pickTransit(a)
	prefixes := 1 + min(g.rng.Intn(6), g.rng.Intn(6))
	kindAt := func(i, k int) SegmentKind {
		switch kind {
		case SegDangling:
			if i < k-1 {
				return SegNormal
			}
		case SegEarlyStart:
			if i > 0 {
				return SegNormal
			}
		}
		return kind
	}

	// Reduce k if the span cannot fit k runs with >30-day gaps.
	for k > 1 && span < k*40+(k-1)*31 {
		k--
	}
	if k == 1 {
		g.world.Segments = append(g.world.Segments, Segment{
			ASN: a, Span: intervals.New(opStart, opEnd), Kind: kind, Vis: vis,
			Upstream: upstream, PrefixCount: prefixes,
		})
		return
	}
	// Draw k-1 gaps; with probability 0.24 one gap exceeds a year
	// (§6.1 "largely spaced operational lives").
	gaps := make([]int, k-1)
	total := 0
	for i := range gaps {
		gaps[i] = g.lognormDays(90, 0.8, 31, 600)
		total += gaps[i]
	}
	if g.rng.Float64() < 0.24 {
		gaps[g.rng.Intn(len(gaps))] = 366 + g.rng.Intn(1200)
		total = 0
		for _, gp := range gaps {
			total += gp
		}
	}
	active := span - total
	if active < k { // gaps ate the span; shrink them proportionally
		scale := float64(span-k*10) / float64(total)
		total = 0
		for i := range gaps {
			gaps[i] = int(float64(gaps[i]) * scale)
			if gaps[i] < 31 {
				gaps[i] = 31
			}
			total += gaps[i]
		}
		active = span - total
		if active < k {
			g.world.Segments = append(g.world.Segments, Segment{
				ASN: a, Span: intervals.New(opStart, opEnd), Kind: kind, Vis: vis,
				Upstream: upstream, PrefixCount: prefixes,
			})
			return
		}
	}
	// Distribute active days across runs.
	cur := opStart
	remaining := active
	for i := 0; i < k; i++ {
		runLen := remaining / (k - i)
		if i < k-1 && runLen > 1 {
			runLen = 1 + g.rng.Intn(runLen)
		}
		if runLen < 1 {
			runLen = 1
		}
		end := cur.AddDays(runLen - 1)
		g.world.Segments = append(g.world.Segments, Segment{
			ASN: a, Span: intervals.New(cur, end), Kind: kindAt(i, k), Vis: vis,
			Upstream: upstream, PrefixCount: prefixes,
		})
		remaining -= runLen
		if i < k-1 {
			cur = end.AddDays(1 + gaps[i])
		}
	}
}

// conferenceSegments emits the NOG-style pattern: a short burst around
// the same time every year (§6.1's AFNOG/APNOG examples).
func (g *generator) conferenceSegments(l *Life, opStart, opEnd dates.Day, vis Visibility) {
	upstream := g.pickTransit(l.ASN)
	month := 1 + g.rng.Intn(12)
	for year := opStart.Year(); year <= opEnd.Year(); year++ {
		day := dates.FromYMD(year, month, 1+g.rng.Intn(20))
		if day < opStart || day.AddDays(10) > opEnd {
			continue
		}
		g.world.Segments = append(g.world.Segments, Segment{
			ASN:  l.ASN,
			Span: intervals.New(day, day.AddDays(4+g.rng.Intn(6))),
			Kind: SegConference, Vis: vis,
			Upstream: upstream, PrefixCount: 1,
		})
	}
}

// rotationSegments emits the sibling-rotation pattern: many short runs as
// the organization shifts routes between its sibling ASNs (§6.1).
func (g *generator) rotationSegments(l *Life, opStart, opEnd dates.Day, vis Visibility) {
	k := 8 + g.rng.Intn(13)
	g.emitSegments(l.ASN, opStart, opEnd, k, SegIntermittent, vis)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
