package worldsim

import (
	"testing"

	"parallellives/internal/asn"
	"parallellives/internal/dates"
)

func defaultWorld(t *testing.T) *World {
	t.Helper()
	return Generate(DefaultConfig())
}

func TestPublicationDelays(t *testing.T) {
	w := defaultWorld(t)
	// §4.1 fn 6: between 90.1% (AfriNIC) and 99.35% (ARIN) of ASNs appear
	// in the files the same day or the day after registration.
	var quick, total [asn.NumRIRs]int
	for _, l := range w.Lives {
		if l.Kind == LifeERX || l.Alloc.Start < w.Config.Start {
			continue // ERX bulk imports and historic lives are special
		}
		total[l.RIR]++
		if l.FileFrom.Sub(l.Alloc.Start) <= 1 {
			quick[l.RIR]++
		}
	}
	for _, r := range asn.All() {
		if total[r] < 50 {
			continue
		}
		frac := float64(quick[r]) / float64(total[r])
		if frac < 0.85 {
			t.Errorf("%v: only %.1f%% of allocations published within a day", r, 100*frac)
		}
	}
	// ARIN publishes fastest.
	arin := float64(quick[asn.ARIN]) / float64(total[asn.ARIN])
	afrinic := float64(quick[asn.AfriNIC]) / float64(max(1, total[asn.AfriNIC]))
	if total[asn.AfriNIC] > 50 && arin <= afrinic {
		t.Errorf("ARIN (%.3f) should publish faster than AfriNIC (%.3f)", arin, afrinic)
	}
}

func TestRIPEBulkImportQuirk(t *testing.T) {
	w := defaultWorld(t)
	late := 0
	for _, l := range w.Lives {
		if l.RIR == asn.RIPENCC && l.Kind == LifeERX &&
			l.FileFrom >= dates.MustParse("2005-04-27") {
			late++
		}
	}
	if late == 0 {
		t.Error("expected some RIPE ERX lives published in the 2005 bulk import")
	}
}

func TestDanglingAndEarlyStartPopulations(t *testing.T) {
	w := defaultWorld(t)
	dangling, early, conference, rotation := 0, 0, 0, 0
	for _, s := range w.Segments {
		switch s.Kind {
		case SegDangling:
			dangling++
			// A dangling segment must extend past its life's end.
			lives := w.LivesOf(s.ASN)
			past := false
			for _, l := range lives {
				if s.Span.End > l.Alloc.End && s.Span.Start <= l.Alloc.End {
					past = true
				}
			}
			if !past {
				t.Errorf("dangling segment of %v (%v) does not extend past deallocation",
					s.ASN, s.Span)
			}
		case SegEarlyStart:
			early++
		case SegConference:
			conference++
		case SegIntermittent:
			rotation++
		}
	}
	t.Logf("dangling=%d early=%d conference=%d rotation=%d", dangling, early, conference, rotation)
	if dangling == 0 || early == 0 {
		t.Error("expected dangling and early-start populations")
	}
	if conference == 0 {
		t.Error("expected conference-style segments (NOG pattern)")
	}
	if rotation == 0 {
		t.Error("expected sibling-rotation segments")
	}
}

func TestConferencePatternIsYearly(t *testing.T) {
	w := defaultWorld(t)
	byASN := map[asn.ASN][]Segment{}
	for _, s := range w.Segments {
		if s.Kind == SegConference {
			byASN[s.ASN] = append(byASN[s.ASN], s)
		}
	}
	for a, segs := range byASN {
		if len(segs) < 3 {
			continue
		}
		for _, s := range segs {
			if s.Span.Days() > 15 {
				t.Errorf("conference burst of %v too long: %v", a, s.Span)
			}
		}
		for i := 1; i < len(segs); i++ {
			gap := segs[i].Span.Start.Sub(segs[i-1].Span.End)
			if gap < 200 {
				t.Errorf("conference bursts of %v only %d days apart", a, gap)
			}
		}
	}
}

func TestPureCarrierTransits(t *testing.T) {
	w := defaultWorld(t)
	carriers := 0
	for _, s := range w.Segments {
		if s.Kind == SegTransit && s.PrefixCount == 0 {
			carriers++
		}
	}
	if carriers == 0 {
		t.Error("expected pure-carrier transit segments")
	}
}

func TestEarlyStartsPrecedePublication(t *testing.T) {
	w := defaultWorld(t)
	checked := 0
	for _, s := range w.Segments {
		if s.Kind != SegEarlyStart {
			continue
		}
		for _, l := range w.LivesOf(s.ASN) {
			if l.Alloc.Overlaps(s.Span) && s.Span.Start < l.FileFrom {
				checked++
			}
		}
	}
	if checked == 0 {
		t.Error("early-start segments should begin before file publication")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
