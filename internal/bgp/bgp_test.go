package bgp

import (
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"

	"parallellives/internal/asn"
)

func mustPrefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func seq(asns ...asn.ASN) Segment { return Segment{Type: SegmentSequence, ASNs: asns} }

func TestMarshalDecodeRoundTripIPv4(t *testing.T) {
	for _, fourByte := range []bool{false, true} {
		u := &Update{
			Announced: []netip.Prefix{mustPrefix("203.0.113.0/24"), mustPrefix("198.51.0.0/16")},
			Withdrawn: []netip.Prefix{mustPrefix("192.0.2.0/24")},
			Path:      []Segment{seq(64500, 64501, 64502)},
			Origin:    OriginIGP,
			HasOrigin: true,
			NextHop:   netip.MustParseAddr("10.0.0.1"),
		}
		msg, err := u.Marshal(fourByte)
		if err != nil {
			t.Fatal(err)
		}
		var got Update
		if err := DecodeUpdate(&got, msg, fourByte); err != nil {
			t.Fatalf("fourByte=%v: %v", fourByte, err)
		}
		if !reflect.DeepEqual(got.Announced, u.Announced) {
			t.Errorf("Announced = %v, want %v", got.Announced, u.Announced)
		}
		if !reflect.DeepEqual(got.Withdrawn, u.Withdrawn) {
			t.Errorf("Withdrawn = %v, want %v", got.Withdrawn, u.Withdrawn)
		}
		if !reflect.DeepEqual(got.Path, u.Path) {
			t.Errorf("Path = %v, want %v", got.Path, u.Path)
		}
		if got.NextHop != u.NextHop {
			t.Errorf("NextHop = %v", got.NextHop)
		}
	}
}

func TestMarshalDecodeRoundTripIPv6(t *testing.T) {
	u := &Update{
		Announced: []netip.Prefix{mustPrefix("2001:db8:1::/48")},
		Withdrawn: []netip.Prefix{mustPrefix("2001:db8:2::/48")},
		Path:      []Segment{seq(64500, 64501)},
		HasOrigin: true,
	}
	msg, err := u.Marshal(true)
	if err != nil {
		t.Fatal(err)
	}
	var got Update
	if err := DecodeUpdate(&got, msg, true); err != nil {
		t.Fatal(err)
	}
	if len(got.Announced) != 1 || got.Announced[0] != u.Announced[0] {
		t.Errorf("Announced = %v", got.Announced)
	}
	if len(got.Withdrawn) != 1 || got.Withdrawn[0] != u.Withdrawn[0] {
		t.Errorf("Withdrawn = %v", got.Withdrawn)
	}
}

func TestTwoByteEncodingSubstitutesASTrans(t *testing.T) {
	u := &Update{
		Announced: []netip.Prefix{mustPrefix("203.0.113.0/24")},
		Path:      []Segment{seq(64500, 4200000100)},
		HasOrigin: true,
	}
	msg, err := u.Marshal(false)
	if err != nil {
		t.Fatal(err)
	}
	var got Update
	if err := DecodeUpdate(&got, msg, false); err != nil {
		t.Fatal(err)
	}
	want := []Segment{seq(64500, asn.ASTrans)}
	if !reflect.DeepEqual(got.Path, want) {
		t.Errorf("Path = %v, want %v (AS_TRANS substitution)", got.Path, want)
	}
}

func TestOriginAS(t *testing.T) {
	u := &Update{Path: []Segment{seq(1, 2, 3)}}
	o, ok := u.OriginAS()
	if !ok || o != 3 {
		t.Errorf("OriginAS = %v, %v", o, ok)
	}
	f, ok := u.FirstAS()
	if !ok || f != 1 {
		t.Errorf("FirstAS = %v, %v", f, ok)
	}
	// Path ending in AS_SET: ambiguous origin.
	u = &Update{Path: []Segment{seq(1, 2), {Type: SegmentSet, ASNs: []asn.ASN{3, 4}}}}
	if _, ok := u.OriginAS(); ok {
		t.Error("AS_SET origin should be ambiguous")
	}
	if _, ok := (&Update{}).OriginAS(); ok {
		t.Error("empty path has no origin")
	}
}

func TestHasLoop(t *testing.T) {
	cases := []struct {
		path []asn.ASN
		want bool
	}{
		{[]asn.ASN{1, 2, 3}, false},
		{[]asn.ASN{1, 2, 2, 2, 3}, false},       // prepending
		{[]asn.ASN{1, 2, 3, 2}, true},           // loop
		{[]asn.ASN{5, 1, 2, 1, 3}, true},        // loop
		{[]asn.ASN{7, 7, 7}, false},             // pure prepend
		{[]asn.ASN{1}, false},                   // single hop
		{nil, false},                            // empty
		{[]asn.ASN{9, 8, 9, 8}, true},           // alternation
		{[]asn.ASN{1, 2, 3, 3, 3, 4, 3}, true},  // prepend then loop back
		{[]asn.ASN{1, 2, 3, 3, 3, 4, 5}, false}, // prepend mid-path
	}
	for _, c := range cases {
		u := &Update{Path: []Segment{seq(c.path...)}}
		if got := u.HasLoop(); got != c.want {
			t.Errorf("HasLoop(%v) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	var u Update
	if err := DecodeUpdate(&u, []byte{1, 2, 3}, true); err == nil {
		t.Error("expected error for short message")
	}
	// Valid header claiming a longer body than present.
	msg := make([]byte, HeaderLen)
	for i := 0; i < 16; i++ {
		msg[i] = 0xff
	}
	msg[16], msg[17] = 0x01, 0x00 // length 256
	msg[18] = TypeUpdate
	if err := DecodeUpdate(&u, msg, true); err == nil {
		t.Error("expected truncation error")
	}
	// KEEPALIVE is not an UPDATE.
	msg[16], msg[17] = 0, HeaderLen
	msg[18] = TypeKeepalive
	if err := DecodeUpdate(&u, msg, true); err == nil {
		t.Error("expected type error")
	}
}

func TestDecodeRejectsBadPrefixLength(t *testing.T) {
	u := &Update{Announced: []netip.Prefix{mustPrefix("203.0.113.0/24")}, HasOrigin: true,
		Path: []Segment{seq(64500)}}
	msg, err := u.Marshal(true)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the NLRI prefix length byte (last prefix is at the tail).
	msg[len(msg)-4] = 96 // impossible for IPv4
	var got Update
	if err := DecodeUpdate(&got, msg, true); err == nil {
		t.Error("expected malformed-prefix error")
	}
}

func TestUpdateReuseResets(t *testing.T) {
	u1 := &Update{
		Announced: []netip.Prefix{mustPrefix("203.0.113.0/24")},
		Path:      []Segment{seq(64500, 64501)},
		HasOrigin: true,
	}
	msg1, _ := u1.Marshal(true)
	u2 := &Update{
		Withdrawn: []netip.Prefix{mustPrefix("192.0.2.0/24")},
	}
	msg2, _ := u2.Marshal(true)

	var got Update
	if err := DecodeUpdate(&got, msg1, true); err != nil {
		t.Fatal(err)
	}
	if err := DecodeUpdate(&got, msg2, true); err != nil {
		t.Fatal(err)
	}
	if len(got.Announced) != 0 || len(got.Path) != 0 || got.HasOrigin {
		t.Error("Update not reset between decodes")
	}
	if len(got.Withdrawn) != 1 {
		t.Error("second decode lost withdrawal")
	}
}

func randomPrefix(r *rand.Rand, v6 bool) netip.Prefix {
	if v6 {
		var a [16]byte
		r.Read(a[:])
		a[0] = 0x20
		bits := 8 + r.Intn(57) // /8../64
		return netip.PrefixFrom(netip.AddrFrom16(a), bits).Masked()
	}
	var a [4]byte
	r.Read(a[:])
	if a[0] == 0 {
		a[0] = 10
	}
	bits := 8 + r.Intn(17) // /8../24
	return netip.PrefixFrom(netip.AddrFrom4(a), bits).Masked()
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		u := &Update{HasOrigin: true, Origin: byte(r.Intn(3))}
		for i, n := 0, r.Intn(5); i < n; i++ {
			u.Announced = append(u.Announced, randomPrefix(r, r.Intn(2) == 0))
		}
		for i, n := 0, r.Intn(3); i < n; i++ {
			u.Withdrawn = append(u.Withdrawn, randomPrefix(r, r.Intn(2) == 0))
		}
		nhops := 1 + r.Intn(6)
		hops := make([]asn.ASN, nhops)
		for i := range hops {
			hops[i] = asn.ASN(r.Intn(400000) + 1)
		}
		u.Path = []Segment{seq(hops...)}

		msg, err := u.Marshal(true)
		if err != nil {
			return false
		}
		var got Update
		if err := DecodeUpdate(&got, msg, true); err != nil {
			return false
		}
		// Announced/Withdrawn preserved as sets (v4 and v6 may reorder
		// relative to each other since v6 travels in MP attributes).
		if !samePrefixSet(got.Announced, u.Announced) || !samePrefixSet(got.Withdrawn, u.Withdrawn) {
			return false
		}
		return reflect.DeepEqual(got.Path, u.Path)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func samePrefixSet(a, b []netip.Prefix) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[netip.Prefix]int{}
	for _, p := range a {
		m[p]++
	}
	for _, p := range b {
		m[p]--
		if m[p] < 0 {
			return false
		}
	}
	return true
}
