// Package bgp implements the subset of the BGP-4 wire protocol (RFC 4271,
// RFC 4760, RFC 6793) needed to produce and analyze routing data: UPDATE
// message encoding and decoding with 2- and 4-octet AS paths, IPv4 NLRI,
// and IPv6 reachability via MP_REACH_NLRI / MP_UNREACH_NLRI.
//
// In the style of gopacket's DecodingLayerParser, decoding fills a
// caller-owned Update value in place so that a scanner processing millions
// of MRT records performs no per-message allocations beyond slice growth
// on the reused buffers.
package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"

	"parallellives/internal/asn"
)

// Message types (RFC 4271 §4.1).
const (
	TypeOpen         = 1
	TypeUpdate       = 2
	TypeNotification = 3
	TypeKeepalive    = 4
)

// Path attribute type codes.
const (
	AttrOrigin         = 1
	AttrASPath         = 2
	AttrNextHop        = 3
	AttrMED            = 4
	AttrLocalPref      = 5
	AttrAtomicAggr     = 6
	AttrAggregator     = 7
	AttrCommunities    = 8
	AttrMPReachNLRI    = 14
	AttrMPUnreachNLRI  = 15
	AttrAS4Path        = 17
	AttrAS4Aggregator  = 18
	AttrLargeCommunity = 32
)

// Origin attribute values.
const (
	OriginIGP        = 0
	OriginEGP        = 1
	OriginIncomplete = 2
)

// AS_PATH segment types.
const (
	SegmentSet      = 1
	SegmentSequence = 2
)

// AFI/SAFI values used by MP-BGP attributes.
const (
	AFIIPv4     = 1
	AFIIPv6     = 2
	SAFIUnicast = 1
)

// HeaderLen is the fixed BGP message header size.
const HeaderLen = 19

// MaxMessageLen is the largest legal BGP message (RFC 4271).
const MaxMessageLen = 4096

var (
	// ErrTruncated is returned when a message or attribute is shorter
	// than its declared length.
	ErrTruncated = errors.New("bgp: truncated message")
	// ErrMalformed is returned for structurally invalid data.
	ErrMalformed = errors.New("bgp: malformed message")
)

// Segment is one AS_PATH segment.
type Segment struct {
	Type byte // SegmentSet or SegmentSequence
	ASNs []asn.ASN
}

// Update is a decoded BGP UPDATE message. The slices are reused across
// Decode calls on the same value; callers must copy anything they retain.
type Update struct {
	Withdrawn []netip.Prefix
	Announced []netip.Prefix // IPv4 NLRI plus MP_REACH_NLRI prefixes
	Path      []Segment
	Origin    byte
	HasOrigin bool
	NextHop   netip.Addr
}

// Reset clears the update for reuse without freeing slice capacity.
// DecodeUpdate and DecodeUpdateBody call it implicitly; callers feeding
// raw attribute blocks to DecodeAttrs must call it themselves.
func (u *Update) Reset() { u.reset() }

// reset clears the update for reuse without freeing capacity.
func (u *Update) reset() {
	u.Withdrawn = u.Withdrawn[:0]
	u.Announced = u.Announced[:0]
	u.Path = u.Path[:0]
	u.Origin = 0
	u.HasOrigin = false
	u.NextHop = netip.Addr{}
}

// OriginAS returns the origin AS of the update — the last ASN of the last
// AS_SEQUENCE segment — and false if the path is empty or ends in an
// AS_SET (in which case the origin is ambiguous, per RFC 4271 aggregation
// semantics; the paper's pipeline skips those for origination analysis).
func (u *Update) OriginAS() (asn.ASN, bool) {
	if len(u.Path) == 0 {
		return 0, false
	}
	last := u.Path[len(u.Path)-1]
	if last.Type != SegmentSequence || len(last.ASNs) == 0 {
		return 0, false
	}
	return last.ASNs[len(last.ASNs)-1], true
}

// FirstAS returns the neighbor-most ASN on the path (the peer that sent
// the route to the collector) and false for an empty path.
func (u *Update) FirstAS() (asn.ASN, bool) {
	if len(u.Path) == 0 || len(u.Path[0].ASNs) == 0 {
		return 0, false
	}
	return u.Path[0].ASNs[0], true
}

// FlatPath appends all ASNs on the path, in order, to dst and returns it.
func (u *Update) FlatPath(dst []asn.ASN) []asn.ASN {
	for _, seg := range u.Path {
		dst = append(dst, seg.ASNs...)
	}
	return dst
}

// HasLoop reports whether any ASN appears in two non-adjacent positions
// of the flattened path. Legitimate prepending repeats an ASN in adjacent
// positions only; a non-adjacent repeat is a routing loop, which the
// paper's sanitization discards (§3.2).
func (u *Update) HasLoop() bool {
	var flat [64]asn.ASN
	path := u.FlatPath(flat[:0])
	for i := 0; i < len(path); i++ {
		for j := i + 1; j < len(path); j++ {
			if path[i] == path[j] && j != i+1 {
				// Allow runs of the same ASN (prepending): the repeat is
				// benign if every element between i and j equals path[i].
				run := true
				for k := i + 1; k < j; k++ {
					if path[k] != path[i] {
						run = false
						break
					}
				}
				if !run {
					return true
				}
			}
		}
	}
	return false
}

// appendPrefix encodes one NLRI prefix.
func appendPrefix(dst []byte, p netip.Prefix) []byte {
	bits := p.Bits()
	dst = append(dst, byte(bits))
	nbytes := (bits + 7) / 8
	addr := p.Addr().AsSlice()
	return append(dst, addr[:nbytes]...)
}

// decodePrefix reads one NLRI prefix for the given address family.
func decodePrefix(b []byte, v6 bool) (netip.Prefix, int, error) {
	if len(b) < 1 {
		return netip.Prefix{}, 0, ErrTruncated
	}
	bits := int(b[0])
	maxBits := 32
	if v6 {
		maxBits = 128
	}
	if bits > maxBits {
		return netip.Prefix{}, 0, fmt.Errorf("%w: prefix length %d", ErrMalformed, bits)
	}
	nbytes := (bits + 7) / 8
	if len(b) < 1+nbytes {
		return netip.Prefix{}, 0, ErrTruncated
	}
	var addr netip.Addr
	if v6 {
		var a [16]byte
		copy(a[:], b[1:1+nbytes])
		addr = netip.AddrFrom16(a)
	} else {
		var a [4]byte
		copy(a[:], b[1:1+nbytes])
		addr = netip.AddrFrom4(a)
	}
	p, err := addr.Prefix(bits)
	if err != nil {
		return netip.Prefix{}, 0, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return p, 1 + nbytes, nil
}

// Marshal encodes the update as a full BGP message (header included).
// fourByte selects 4-octet AS number encoding in AS_PATH, as negotiated
// by the capability in real sessions and recorded by MRT subtypes.
// IPv6 prefixes in Announced are carried in an MP_REACH_NLRI attribute;
// IPv6 prefixes in Withdrawn in MP_UNREACH_NLRI.
func (u *Update) Marshal(fourByte bool) ([]byte, error) {
	body := make([]byte, 0, 128)

	// Withdrawn routes (IPv4 only in the classic field).
	var withdrawn4, withdrawn6 []netip.Prefix
	for _, p := range u.Withdrawn {
		if p.Addr().Is4() {
			withdrawn4 = append(withdrawn4, p)
		} else {
			withdrawn6 = append(withdrawn6, p)
		}
	}
	var announced4, announced6 []netip.Prefix
	for _, p := range u.Announced {
		if p.Addr().Is4() {
			announced4 = append(announced4, p)
		} else {
			announced6 = append(announced6, p)
		}
	}

	var wbuf []byte
	for _, p := range withdrawn4 {
		wbuf = appendPrefix(wbuf, p)
	}
	body = binary.BigEndian.AppendUint16(body, uint16(len(wbuf)))
	body = append(body, wbuf...)

	// Path attributes.
	var attrs []byte
	if u.HasOrigin || len(u.Path) > 0 || len(announced4) > 0 || len(announced6) > 0 {
		attrs = appendAttr(attrs, 0x40, AttrOrigin, []byte{u.Origin})
	}
	if len(u.Path) > 0 || len(announced4) > 0 || len(announced6) > 0 {
		attrs = appendAttr(attrs, 0x40, AttrASPath, marshalASPath(u.Path, fourByte))
	}
	if len(announced4) > 0 {
		nh := u.NextHop
		if !nh.IsValid() || !nh.Is4() {
			nh = netip.AddrFrom4([4]byte{192, 0, 2, 1})
		}
		a := nh.As4()
		attrs = appendAttr(attrs, 0x40, AttrNextHop, a[:])
	}
	if len(announced6) > 0 {
		var mp []byte
		mp = binary.BigEndian.AppendUint16(mp, AFIIPv6)
		mp = append(mp, SAFIUnicast)
		nh := u.NextHop
		if !nh.IsValid() || !nh.Is6() || nh.Is4() {
			nh = netip.MustParseAddr("2001:db8::1")
		}
		nh16 := nh.As16()
		mp = append(mp, 16)
		mp = append(mp, nh16[:]...)
		mp = append(mp, 0) // reserved / SNPA count
		for _, p := range announced6 {
			mp = appendPrefix(mp, p)
		}
		attrs = appendAttr(attrs, 0x80, AttrMPReachNLRI, mp)
	}
	if len(withdrawn6) > 0 {
		var mp []byte
		mp = binary.BigEndian.AppendUint16(mp, AFIIPv6)
		mp = append(mp, SAFIUnicast)
		for _, p := range withdrawn6 {
			mp = appendPrefix(mp, p)
		}
		attrs = appendAttr(attrs, 0x80, AttrMPUnreachNLRI, mp)
	}
	body = binary.BigEndian.AppendUint16(body, uint16(len(attrs)))
	body = append(body, attrs...)

	for _, p := range announced4 {
		body = appendPrefix(body, p)
	}

	total := HeaderLen + len(body)
	if total > MaxMessageLen {
		return nil, fmt.Errorf("%w: message length %d exceeds %d", ErrMalformed, total, MaxMessageLen)
	}
	msg := make([]byte, HeaderLen, total)
	for i := 0; i < 16; i++ {
		msg[i] = 0xff
	}
	binary.BigEndian.PutUint16(msg[16:18], uint16(total))
	msg[18] = TypeUpdate
	return append(msg, body...), nil
}

// MarshalAttrs encodes just the ORIGIN, AS_PATH and (for an IPv4 next
// hop) NEXT_HOP attributes of u as a raw attribute block — the form MRT
// TABLE_DUMP_V2 RIB entries embed. RIB entries always use the 4-octet
// AS_PATH encoding, but the parameter is exposed for symmetric testing.
func (u *Update) MarshalAttrs(fourByte bool) []byte {
	var attrs []byte
	attrs = appendAttr(attrs, 0x40, AttrOrigin, []byte{u.Origin})
	attrs = appendAttr(attrs, 0x40, AttrASPath, marshalASPath(u.Path, fourByte))
	if u.NextHop.IsValid() && u.NextHop.Is4() {
		a := u.NextHop.As4()
		attrs = appendAttr(attrs, 0x40, AttrNextHop, a[:])
	}
	return attrs
}

// appendAttr encodes one path attribute, using the extended-length form
// when the value exceeds 255 bytes.
func appendAttr(dst []byte, flags, typ byte, val []byte) []byte {
	if len(val) > 255 {
		flags |= 0x10 // extended length
		dst = append(dst, flags, typ)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(val)))
	} else {
		dst = append(dst, flags, typ, byte(len(val)))
	}
	return append(dst, val...)
}

func marshalASPath(segs []Segment, fourByte bool) []byte {
	var out []byte
	for _, s := range segs {
		out = append(out, s.Type, byte(len(s.ASNs)))
		for _, a := range s.ASNs {
			if fourByte {
				out = binary.BigEndian.AppendUint32(out, uint32(a))
			} else {
				v := a
				if v.Is32Bit() {
					v = asn.ASTrans // RFC 6793 substitution
				}
				out = binary.BigEndian.AppendUint16(out, uint16(v))
			}
		}
	}
	return out
}

// DecodeUpdate parses a full BGP message (with header) into u, resetting
// it first. It returns an error for non-UPDATE message types.
func DecodeUpdate(u *Update, msg []byte, fourByte bool) error {
	if len(msg) < HeaderLen {
		return ErrTruncated
	}
	l := int(binary.BigEndian.Uint16(msg[16:18]))
	if l < HeaderLen || l > len(msg) {
		return fmt.Errorf("%w: declared %d, have %d", ErrTruncated, l, len(msg))
	}
	if msg[18] != TypeUpdate {
		return fmt.Errorf("%w: message type %d is not UPDATE", ErrMalformed, msg[18])
	}
	return DecodeUpdateBody(u, msg[HeaderLen:l], fourByte)
}

// DecodeUpdateBody parses an UPDATE body (header stripped) into u.
func DecodeUpdateBody(u *Update, b []byte, fourByte bool) error {
	u.reset()
	if len(b) < 2 {
		return ErrTruncated
	}
	wlen := int(binary.BigEndian.Uint16(b[:2]))
	b = b[2:]
	if len(b) < wlen {
		return ErrTruncated
	}
	wd := b[:wlen]
	b = b[wlen:]
	for len(wd) > 0 {
		p, n, err := decodePrefix(wd, false)
		if err != nil {
			return err
		}
		u.Withdrawn = append(u.Withdrawn, p)
		wd = wd[n:]
	}

	if len(b) < 2 {
		return ErrTruncated
	}
	alen := int(binary.BigEndian.Uint16(b[:2]))
	b = b[2:]
	if len(b) < alen {
		return ErrTruncated
	}
	attrs := b[:alen]
	nlri := b[alen:]

	if err := DecodeAttrs(u, attrs, fourByte); err != nil {
		return err
	}

	for len(nlri) > 0 {
		p, n, err := decodePrefix(nlri, false)
		if err != nil {
			return err
		}
		u.Announced = append(u.Announced, p)
		nlri = nlri[n:]
	}
	return nil
}

// DecodeAttrs parses a raw path-attribute block into u without resetting
// it. It is used both for UPDATE bodies and for the attribute blocks
// embedded in MRT TABLE_DUMP_V2 RIB entries (which always use 4-octet AS
// numbers, so those callers pass fourByte=true).
func DecodeAttrs(u *Update, attrs []byte, fourByte bool) error {
	for len(attrs) > 0 {
		if len(attrs) < 3 {
			return ErrTruncated
		}
		flags, typ := attrs[0], attrs[1]
		var vlen, hlen int
		if flags&0x10 != 0 { // extended length
			if len(attrs) < 4 {
				return ErrTruncated
			}
			vlen = int(binary.BigEndian.Uint16(attrs[2:4]))
			hlen = 4
		} else {
			vlen = int(attrs[2])
			hlen = 3
		}
		if len(attrs) < hlen+vlen {
			return ErrTruncated
		}
		val := attrs[hlen : hlen+vlen]
		attrs = attrs[hlen+vlen:]

		switch typ {
		case AttrOrigin:
			if vlen != 1 {
				return fmt.Errorf("%w: ORIGIN length %d", ErrMalformed, vlen)
			}
			u.Origin = val[0]
			u.HasOrigin = true
		case AttrASPath:
			if err := decodeASPath(u, val, fourByte); err != nil {
				return err
			}
		case AttrNextHop:
			if vlen == 4 {
				u.NextHop = netip.AddrFrom4([4]byte(val))
			}
		case AttrMPReachNLRI:
			if err := decodeMPReach(u, val); err != nil {
				return err
			}
		case AttrMPUnreachNLRI:
			if err := decodeMPUnreach(u, val); err != nil {
				return err
			}
		default:
			// Unrecognized attributes are skipped; the analysis pipeline
			// only consumes paths and prefixes.
		}
	}
	return nil
}

func decodeASPath(u *Update, b []byte, fourByte bool) error {
	width := 2
	if fourByte {
		width = 4
	}
	for len(b) > 0 {
		if len(b) < 2 {
			return ErrTruncated
		}
		segType, count := b[0], int(b[1])
		if segType != SegmentSet && segType != SegmentSequence {
			return fmt.Errorf("%w: AS_PATH segment type %d", ErrMalformed, segType)
		}
		need := 2 + count*width
		if len(b) < need {
			return ErrTruncated
		}
		seg := Segment{Type: segType, ASNs: make([]asn.ASN, count)}
		for i := 0; i < count; i++ {
			off := 2 + i*width
			if fourByte {
				seg.ASNs[i] = asn.ASN(binary.BigEndian.Uint32(b[off:]))
			} else {
				seg.ASNs[i] = asn.ASN(binary.BigEndian.Uint16(b[off:]))
			}
		}
		u.Path = append(u.Path, seg)
		b = b[need:]
	}
	return nil
}

func decodeMPReach(u *Update, b []byte) error {
	if len(b) < 4 {
		return ErrTruncated
	}
	afi := binary.BigEndian.Uint16(b[:2])
	safi := b[2]
	nhLen := int(b[3])
	if len(b) < 4+nhLen+1 {
		return ErrTruncated
	}
	if nhLen == 16 || nhLen == 32 { // global (+ link-local)
		u.NextHop = netip.AddrFrom16([16]byte(b[4:20]))
	}
	rest := b[4+nhLen+1:] // skip reserved byte
	if safi != SAFIUnicast {
		return nil
	}
	v6 := afi == AFIIPv6
	for len(rest) > 0 {
		p, n, err := decodePrefix(rest, v6)
		if err != nil {
			return err
		}
		u.Announced = append(u.Announced, p)
		rest = rest[n:]
	}
	return nil
}

func decodeMPUnreach(u *Update, b []byte) error {
	if len(b) < 3 {
		return ErrTruncated
	}
	afi := binary.BigEndian.Uint16(b[:2])
	safi := b[2]
	rest := b[3:]
	if safi != SAFIUnicast {
		return nil
	}
	v6 := afi == AFIIPv6
	for len(rest) > 0 {
		p, n, err := decodePrefix(rest, v6)
		if err != nil {
			return err
		}
		u.Withdrawn = append(u.Withdrawn, p)
		rest = rest[n:]
	}
	return nil
}
