package bgp

import (
	"net/netip"
	"testing"

	"parallellives/internal/asn"
)

func benchUpdate(b *testing.B) []byte {
	b.Helper()
	u := &Update{
		Announced: []netip.Prefix{
			netip.MustParsePrefix("203.0.113.0/24"),
			netip.MustParsePrefix("198.51.100.0/24"),
			netip.MustParsePrefix("2001:db8::/32"),
		},
		Path:      []Segment{{Type: SegmentSequence, ASNs: []asn.ASN{3356, 174, 2914, 64500}}},
		HasOrigin: true,
	}
	msg, err := u.Marshal(true)
	if err != nil {
		b.Fatal(err)
	}
	return msg
}

func BenchmarkUpdateDecode(b *testing.B) {
	msg := benchUpdate(b)
	var u Update
	b.ReportAllocs()
	b.SetBytes(int64(len(msg)))
	for i := 0; i < b.N; i++ {
		if err := DecodeUpdate(&u, msg, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUpdateEncode(b *testing.B) {
	msg := benchUpdate(b)
	var u Update
	if err := DecodeUpdate(&u, msg, true); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := u.Marshal(true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHasLoop(b *testing.B) {
	u := &Update{Path: []Segment{{Type: SegmentSequence,
		ASNs: []asn.ASN{3356, 174, 2914, 64500, 64500, 64500}}}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if u.HasLoop() {
			b.Fatal("unexpected loop")
		}
	}
}
