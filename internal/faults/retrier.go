package faults

import (
	"context"
	"io"
	"time"

	"parallellives/internal/asn"
	"parallellives/internal/registry"
)

// RetryPolicy bounds the Retrier's attempts and backoff. The zero value
// selects the defaults noted per field.
type RetryPolicy struct {
	// MaxAttempts is the total reads tried per snapshot, the first
	// included (default 4).
	MaxAttempts int
	// BaseBackoff is the wait before the first retry; it doubles per
	// attempt up to MaxBackoff (defaults 25ms and 2s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Sleep, when set, is called with each backoff (tests inject a fake
	// clock; production passes time.Sleep). Nil records virtual backoff
	// in the stats without waiting, keeping runs deterministic in time.
	Sleep func(time.Duration)
}

// DefaultRetryPolicy returns the default bounded policy.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseBackoff: 25 * time.Millisecond, MaxBackoff: 2 * time.Second}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = d.BaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = d.MaxBackoff
	}
	return p
}

// Backoff returns the deterministic wait before retry attempt n (1-based):
// BaseBackoff doubled per attempt, capped at MaxBackoff.
func (p RetryPolicy) Backoff(n int) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < n; i++ {
		d *= 2
		if d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if d > p.MaxBackoff {
		return p.MaxBackoff
	}
	return d
}

// RetryStats counts the Retrier's recoveries.
type RetryStats struct {
	Retries   int64         // failed reads that were retried
	Abandoned int64         // snapshots given up on after MaxAttempts
	Backoff   time.Duration // total backoff waited (virtual when Sleep is nil)
}

// Retrier adapts a FallibleSource back into an infallible
// registry.Source by retrying transient failures with bounded,
// deterministic backoff. Reads that keep failing are abandoned: the day
// is yielded with no files, which the restoration pipeline bridges like
// any other missing day — skip-and-continue rather than abort.
type Retrier struct {
	src   FallibleSource
	pol   RetryPolicy
	stats RetryStats
}

// NewRetrier wraps src with the policy (zero fields take defaults).
func NewRetrier(src FallibleSource, pol RetryPolicy) *Retrier {
	return &Retrier{src: src, pol: pol.withDefaults()}
}

// Registry implements registry.Source.
func (r *Retrier) Registry() asn.RIR { return r.src.Registry() }

// Stats returns the recovery counters accumulated so far.
func (r *Retrier) Stats() RetryStats { return r.stats }

// Next implements registry.Source. With no Sleep injected the backoff
// is virtual (recorded, not waited), which keeps batch pipeline runs
// deterministic in time; long-lived services that need real, cancellable
// waits use NextContext instead.
func (r *Retrier) Next() (registry.Snapshot, bool) {
	snap, ok, _ := r.next(nil)
	return snap, ok
}

// NextContext is Next with real, cancellable backoff: with no Sleep
// injected each wait really sleeps, and cancelling ctx mid-backoff
// returns promptly with ctx.Err() — the pending day is neither consumed
// nor abandoned, so a later call can resume it. The error is non-nil
// only when ctx ended the wait.
func (r *Retrier) NextContext(ctx context.Context) (registry.Snapshot, bool, error) {
	return r.next(ctx)
}

// next runs the retry loop. A nil ctx selects virtual backoff (the
// legacy Next semantics); a real ctx selects cancellable sleeping.
func (r *Retrier) next(ctx context.Context) (registry.Snapshot, bool, error) {
	for attempt := 1; ; attempt++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return registry.Snapshot{}, false, err
			}
		}
		snap, ok, err := r.src.Next()
		if err == nil {
			return snap, ok, nil
		}
		if attempt >= r.pol.MaxAttempts {
			r.stats.Abandoned++
			if lost, ok := r.src.Abandon(); ok {
				return lost, true, nil
			}
			return registry.Snapshot{}, false, nil
		}
		r.stats.Retries++
		d := r.pol.Backoff(attempt)
		r.stats.Backoff += d
		switch {
		case r.pol.Sleep != nil:
			r.pol.Sleep(d)
		case ctx != nil:
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return registry.Snapshot{}, false, ctx.Err()
			case <-t.C:
			}
		}
	}
}

// FlakyReader wraps an io.Reader with deterministic short reads and
// recorded stalls — the slow, bursty transport shape of remote archive
// mirrors. The byte stream itself is unchanged, which is the point:
// consumers built on io.ReadFull/bufio must be insensitive to read
// fragmentation, and tests wrap their inputs in a FlakyReader to prove
// it.
type FlakyReader struct {
	in   *Injector
	r    io.Reader
	salt uint64
	pos  uint64
	// Sleep, when set, receives each stall's duration; nil records the
	// stall without waiting.
	Sleep func(time.Duration)
}

// WrapReader wraps r with the plan's short-read and stall faults. salt
// must be stable per stream.
func (in *Injector) WrapReader(salt uint64, r io.Reader) *FlakyReader {
	return &FlakyReader{in: in, r: r, salt: salt}
}

// Read implements io.Reader.
func (f *FlakyReader) Read(p []byte) (int, error) {
	f.pos++
	if f.in.coin(f.in.plan.StallRate, saltStall, f.salt, f.pos) {
		f.in.rep.stalls.Add(1)
		if f.Sleep != nil {
			d := f.in.plan.StallDuration
			if d <= 0 {
				d = 50 * time.Millisecond
			}
			f.Sleep(d)
		}
	}
	if len(p) > 1 && f.in.coin(f.in.plan.ShortReadRate, saltShortRead, f.salt, f.pos) {
		f.in.rep.shortReads.Add(1)
		cut := 1 + int(f.in.hash(saltShortRead, f.salt, f.pos, 0xfeed)%uint64(len(p)-1))
		p = p[:cut]
	}
	return f.r.Read(p)
}
