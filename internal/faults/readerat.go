package faults

import (
	"fmt"
	"io"
	"sync/atomic"
)

// FlakyReaderAt wraps an io.ReaderAt with deterministic transient read
// errors and single-bit corruption — the random-access counterpart of
// FlakyReader, shaped for snapshot stores whose lookups go through
// io.ReaderAt. Each injection decision is a pure function of (plan
// seed, salt, offset, length), so the same read always faults the same
// way and two runs over the same access pattern inject identically.
//
// Unlike the Injector's streaming methods, a FlakyReaderAt is safe for
// concurrent use: a serving layer issues lookups from many goroutines
// at once, so decisions stay pure and the counters are atomics held on
// the wrapper itself (they are not mirrored into the Injector's
// Report).
type FlakyReaderAt struct {
	in      *Injector
	r       io.ReaderAt
	salt    uint64
	enabled atomic.Bool
	errs    atomic.Int64
	flips   atomic.Int64
}

// WrapReaderAt wraps r with the plan's ReadAt faults, initially
// enabled. salt must be stable per underlying reader.
func (in *Injector) WrapReaderAt(salt uint64, r io.ReaderAt) *FlakyReaderAt {
	f := &FlakyReaderAt{in: in, r: r, salt: salt}
	f.enabled.Store(true)
	return f
}

// SetEnabled switches injection on or off atomically. Chaos tests use
// this to open and close fault windows mid-soak without replacing the
// reader under a live store.
func (f *FlakyReaderAt) SetEnabled(on bool) { f.enabled.Store(on) }

// Errs returns the transient errors injected so far.
func (f *FlakyReaderAt) Errs() int64 { return f.errs.Load() }

// Flips returns the bit-flipped reads served so far.
func (f *FlakyReaderAt) Flips() int64 { return f.flips.Load() }

// ReadAt implements io.ReaderAt. A read either fails outright with an
// ErrTransient-classified error, succeeds with exactly one bit flipped
// somewhere in the returned buffer (which a checksummed consumer must
// catch), or passes through untouched.
func (f *FlakyReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if !f.enabled.Load() || len(p) == 0 {
		return f.r.ReadAt(p, off)
	}
	key := []uint64{f.salt, uint64(off), uint64(len(p))}
	if f.in.coin(f.in.plan.ReadAtErrorRate, append([]uint64{saltReadAtErr}, key...)...) {
		f.errs.Add(1)
		return 0, fmt.Errorf("%w: read of %d bytes at offset %d", ErrTransient, len(p), off)
	}
	n, err := f.r.ReadAt(p, off)
	if err == nil && n > 0 && f.in.coin(f.in.plan.ReadAtFlipRate, append([]uint64{saltReadAtFlip}, key...)...) {
		bit := f.in.hash(append([]uint64{saltReadAtFlip, 0xb17}, key...)...) % uint64(n*8)
		p[bit/8] ^= 1 << (bit % 8)
		f.flips.Add(1)
	}
	return n, err
}
