// Package faults is a seeded, deterministic fault injector for the
// ingest layer. Real archival inputs exhibit a small set of recurring
// failure classes — truncated MRT records, interrupted transfers that cut
// an archive mid-record, bit-flipped delegation files, missing days,
// transient I/O errors, short reads and stalls (§3.1 of the paper
// catalogues the delegation side; RouteViews/RIS mirrors exhibit the MRT
// side) — and this package re-creates all of them on demand so the
// pipeline's degrade behaviour is testable bit-for-bit reproducibly.
//
// Every injection decision is a pure function of (Plan.Seed, stable
// identifiers of the item), never of shared RNG state, so injection is
// order-independent and two runs over the same inputs mangle exactly the
// same bytes. The Injector counts everything it injects in a Report, by
// class, which lets tests assert that the pipeline's Health report
// accounts for every planted fault.
package faults

import (
	"encoding/binary"
	"sync/atomic"
	"time"

	"parallellives/internal/mrt"
)

// Plan configures which fault classes the injector produces and at what
// rates. The zero value injects nothing.
type Plan struct {
	// Seed drives every injection decision; equal plans over equal
	// inputs inject identical faults.
	Seed int64

	// TruncateRecordRate is the fraction of MRT route records (RIB and
	// BGP4MP update records; never PEER_INDEX_TABLE) whose body is cut
	// in half with the framing length rewritten to match — the record
	// decodes as truncated while the rest of the stream stays readable.
	TruncateRecordRate float64
	// TailChopRate is the fraction of MRT archives whose final record's
	// body is emitted only partially with the framing left claiming the
	// full length — the interrupted-transfer shape, which breaks the
	// stream's framing at the point of the cut.
	TailChopRate float64

	// CorruptDayRate is the fraction of delegation file-days whose bytes
	// are bit-flipped until unparseable (both formats of the day).
	CorruptDayRate float64
	// DropDayRate is the fraction of delegation file-days dropped
	// entirely, as if the archive never stored them.
	DropDayRate float64

	// TransientRate is the fraction of snapshot reads that start a
	// transient-error episode: TransientBurst consecutive reads fail
	// before the data comes through, modelling flaky transport.
	TransientRate float64
	// TransientBurst is the episode length (default 2). Keep it below
	// the retrier's attempt budget for faults that recover.
	TransientBurst int

	// ShortReadRate is the fraction of FlakyReader reads served
	// partially; StallRate the fraction preceded by a recorded stall of
	// StallDuration (default 50ms of virtual time).
	ShortReadRate float64
	StallRate     float64
	StallDuration time.Duration

	// ReadAtErrorRate is the fraction of FlakyReaderAt reads that fail
	// with a transient error; ReadAtFlipRate the fraction served with a
	// single bit flipped — the random-access fault classes a snapshot
	// store's checksum and retry layers must absorb. Counted on the
	// FlakyReaderAt itself (see its doc), not in the Report.
	ReadAtErrorRate float64
	ReadAtFlipRate  float64
}

// DefaultStorm is the acceptance-level fault storm: well above the
// paper's observed archive dirt on every class, yet fully recoverable by
// a Degrade-mode run.
func DefaultStorm(seed int64) Plan {
	return Plan{
		Seed:               seed,
		TruncateRecordRate: 0.08,
		TailChopRate:       0.05,
		CorruptDayRate:     0.03,
		DropDayRate:        0.02,
		TransientRate:      0.02,
		TransientBurst:     2,
	}
}

// Report counts every fault injected, by class.
type Report struct {
	TruncatedRecords int64 // MRT record bodies cut with framing rewritten
	TailChops        int64 // MRT archives cut mid-record at the end
	CorruptDays      int64 // delegation file-days bit-flipped unparseable
	DroppedDays      int64 // delegation file-days removed outright
	TransientErrs    int64 // failed snapshot reads (pre-retry)
	ShortReads       int64 // partial reads served by FlakyReader
	Stalls           int64 // stalls recorded by FlakyReader
}

// Total returns the number of injected faults across all classes.
func (r Report) Total() int64 {
	return r.TruncatedRecords + r.TailChops + r.CorruptDays +
		r.DroppedDays + r.TransientErrs + r.ShortReads + r.Stalls
}

// Injector plants the Plan's faults into streams and sources. Every
// injection decision is a pure function of identity-derived salts, so
// one injector may be shared by concurrently running shards: the only
// mutable state is the report tallies, which are atomic. (Derived
// per-stream wrappers — SourceInjector, FlakyReader — carry their own
// single-stream state and stay one-goroutine-per-stream.)
type Injector struct {
	plan Plan
	rep  reportCounters
}

// reportCounters is the Report held as atomics — the merge-safe form the
// day-sharded scan increments from several goroutines at once.
type reportCounters struct {
	truncatedRecords atomic.Int64
	tailChops        atomic.Int64
	corruptDays      atomic.Int64
	droppedDays      atomic.Int64
	transientErrs    atomic.Int64
	shortReads       atomic.Int64
	stalls           atomic.Int64
}

// NewInjector returns an injector for the plan.
func NewInjector(plan Plan) *Injector { return &Injector{plan: plan} }

// Plan returns the injector's configuration.
func (in *Injector) Plan() Plan { return in.plan }

// Report returns the faults injected so far.
func (in *Injector) Report() Report {
	return Report{
		TruncatedRecords: in.rep.truncatedRecords.Load(),
		TailChops:        in.rep.tailChops.Load(),
		CorruptDays:      in.rep.corruptDays.Load(),
		DroppedDays:      in.rep.droppedDays.Load(),
		TransientErrs:    in.rep.transientErrs.Load(),
		ShortReads:       in.rep.shortReads.Load(),
		Stalls:           in.rep.stalls.Load(),
	}
}

// Per-class hash salts keep decision streams independent.
const (
	saltTruncate uint64 = iota + 1
	saltTail
	saltCorrupt
	saltDrop
	saltTransient
	saltShortRead
	saltStall
	saltReadAtErr
	saltReadAtFlip
)

// hash is seeded FNV-1a over the keys, the same shared-state-free idiom
// the collector uses for outage jitter.
func (in *Injector) hash(keys ...uint64) uint64 {
	h := uint64(14695981039346656037) ^ uint64(in.plan.Seed)
	h *= 1099511628211
	for _, k := range keys {
		for i := 0; i < 8; i++ {
			h ^= k & 0xff
			h *= 1099511628211
			k >>= 8
		}
	}
	return h
}

// coin returns true with probability rate, deterministically in the keys.
func (in *Injector) coin(rate float64, keys ...uint64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	return float64(in.hash(keys...)>>11)/(1<<53) < rate
}

// mrtRouteRecord reports whether an MRT record carries route data the
// scanner quarantines individually. PEER_INDEX_TABLE records are never
// mangled: losing one invalidates every RIB record that follows, which
// would smear a single injected fault across the whole archive and make
// per-class accounting meaningless.
func mrtRouteRecord(typ mrt.Type, subtype uint16) bool {
	switch typ {
	case mrt.TypeTableDumpV2:
		return subtype == mrt.SubtypeRIBIPv4Unicast || subtype == mrt.SubtypeRIBIPv6Unicast
	case mrt.TypeBGP4MP, mrt.TypeBGP4MPET:
		return subtype == mrt.SubtypeBGP4MPMessage || subtype == mrt.SubtypeBGP4MPMessageAS4
	}
	return false
}

const mrtHeaderLen = 12

// MangleMRT applies the plan's MRT faults to one archive. salt must be
// stable and unique per archive (e.g. a hash of day, collector and
// rib/update kind) so rerunning the pipeline mangles identically. The
// input slice is never modified; when no fault hits, it is returned
// as-is.
func (in *Injector) MangleMRT(salt uint64, data []byte) []byte {
	if in.plan.TruncateRecordRate <= 0 && in.plan.TailChopRate <= 0 {
		return data
	}
	type recInfo struct {
		off, bodyLen int
		eligible     bool
	}
	var recs []recInfo
	for off := 0; off+mrtHeaderLen <= len(data); {
		typ := mrt.Type(binary.BigEndian.Uint16(data[off+4 : off+6]))
		subtype := binary.BigEndian.Uint16(data[off+6 : off+8])
		bodyLen := int(binary.BigEndian.Uint32(data[off+8 : off+12]))
		if off+mrtHeaderLen+bodyLen > len(data) {
			return data // already truncated upstream; nothing to add
		}
		recs = append(recs, recInfo{off, bodyLen, mrtRouteRecord(typ, subtype) && bodyLen >= 16})
		off += mrtHeaderLen + bodyLen
	}
	if len(recs) == 0 {
		return data
	}
	out := make([]byte, 0, len(data))
	last := len(recs) - 1
	for i, rc := range recs {
		hdr := data[rc.off : rc.off+mrtHeaderLen]
		body := data[rc.off+mrtHeaderLen : rc.off+mrtHeaderLen+rc.bodyLen]
		if i == last {
			// The final record is reserved for the interrupted-transfer
			// fault (and excluded from body truncation, so each archive
			// observes at most one framing-level fault).
			if rc.bodyLen >= 4 && in.coin(in.plan.TailChopRate, saltTail, salt) {
				out = append(out, hdr...)
				out = append(out, body[:rc.bodyLen/2]...)
				in.rep.tailChops.Add(1)
				return out
			}
		} else if rc.eligible && in.coin(in.plan.TruncateRecordRate, saltTruncate, salt, uint64(i)) {
			cut := rc.bodyLen / 2
			var h2 [mrtHeaderLen]byte
			copy(h2[:], hdr)
			binary.BigEndian.PutUint32(h2[8:12], uint32(cut))
			out = append(out, h2[:]...)
			out = append(out, body[:cut]...)
			in.rep.truncatedRecords.Add(1)
			continue
		}
		out = append(out, hdr...)
		out = append(out, body...)
	}
	return out
}
