package faults

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"sync"
	"testing"
	"time"

	"parallellives/internal/asn"
	"parallellives/internal/registry"
)

// alwaysFailSource is a FallibleSource whose reads never succeed — the
// shape of a mirror that is down, for exercising backoff in isolation.
type alwaysFailSource struct{ nexts, abandons int }

func (s *alwaysFailSource) Registry() asn.RIR { return asn.ARIN }

func (s *alwaysFailSource) Next() (registry.Snapshot, bool, error) {
	s.nexts++
	return registry.Snapshot{}, false, fmt.Errorf("%w: mirror down", ErrTransient)
}

func (s *alwaysFailSource) Abandon() (registry.Snapshot, bool) {
	s.abandons++
	return registry.Snapshot{}, false
}

// TestRetrierContextCancelMidBackoff pins the serving-path contract:
// cancelling the context while NextContext is asleep in a backoff
// returns promptly with ctx.Err() instead of overrunning the sleep, and
// the pending read is neither consumed nor abandoned.
func TestRetrierContextCancelMidBackoff(t *testing.T) {
	src := &alwaysFailSource{}
	// A backoff far longer than the test's patience: any return before
	// the deadline below proves the sleep was interrupted, not served.
	ret := NewRetrier(src, RetryPolicy{MaxAttempts: 4, BaseBackoff: 30 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(50*time.Millisecond, cancel)

	start := time.Now()
	_, ok, err := ret.NextContext(ctx)
	elapsed := time.Since(start)

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("NextContext returned err=%v, want context.Canceled", err)
	}
	if ok {
		t.Error("cancelled NextContext claimed a snapshot")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("NextContext took %v to notice cancellation (sleep overrun)", elapsed)
	}
	if src.abandons != 0 {
		t.Errorf("cancellation abandoned the pending read (%d abandons)", src.abandons)
	}
	if st := ret.Stats(); st.Abandoned != 0 {
		t.Errorf("cancellation counted as abandonment: %+v", st)
	}

	// An already-expired context returns before touching the source.
	before := src.nexts
	expired, cancel2 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel2()
	<-expired.Done()
	if _, _, err := ret.NextContext(expired); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired context: err=%v, want DeadlineExceeded", err)
	}
	if src.nexts != before {
		t.Errorf("expired context still read the source (%d reads)", src.nexts-before)
	}
}

// erroringReader fails exactly one Read call (failOn, 1-based) with a
// transient error, passing everything else through.
type erroringReader struct {
	r      io.Reader
	calls  int
	failOn int
}

func (e *erroringReader) Read(p []byte) (int, error) {
	e.calls++
	if e.calls == e.failOn {
		return 0, fmt.Errorf("%w: interrupted", ErrTransient)
	}
	return e.r.Read(p)
}

// readFragments drains r through a FlakyReader with the given plan and
// salt, recording each Read's size. It returns the reassembled bytes
// and the fragment-size sequence.
func readFragments(t *testing.T, plan Plan, salt uint64, r io.Reader) ([]byte, []int) {
	t.Helper()
	fr := NewInjector(plan).WrapReader(salt, r)
	var out bytes.Buffer
	var frags []int
	buf := make([]byte, 64)
	for {
		n, err := fr.Read(buf)
		if n > 0 {
			frags = append(frags, n)
			out.Write(buf[:n])
		}
		if err == io.EOF {
			return out.Bytes(), frags
		}
		if err != nil {
			t.Fatalf("unexpected read error: %v", err)
		}
	}
}

// TestFlakyReaderSeekAfterErrorDeterminism pins that injection decisions
// are a pure function of (seed, salt, position): after an underlying
// transient error, seeking the stream back to the start and re-reading
// through a fresh wrapper reproduces the clean run's fragmentation and
// bytes exactly. Remote-mirror consumers rely on this to resume a
// failed transfer and still exercise identical fault sequences.
func TestFlakyReaderSeekAfterErrorDeterminism(t *testing.T) {
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 7)
	}
	plan := Plan{Seed: 11, ShortReadRate: 0.5}

	cleanBytes, cleanFrags := readFragments(t, plan, 3, bytes.NewReader(data))
	if !bytes.Equal(cleanBytes, data) {
		t.Fatal("FlakyReader changed the byte stream")
	}
	againBytes, againFrags := readFragments(t, plan, 3, bytes.NewReader(data))
	if !bytes.Equal(againBytes, cleanBytes) || len(againFrags) != len(cleanFrags) {
		t.Fatal("two identical runs fragmented differently")
	}
	for i := range cleanFrags {
		if cleanFrags[i] != againFrags[i] {
			t.Fatalf("fragment %d: %d vs %d across identical runs", i, cleanFrags[i], againFrags[i])
		}
	}

	// A mid-stream underlying error surfaces through the wrapper...
	under := &erroringReader{r: bytes.NewReader(data), failOn: 5}
	fr := NewInjector(plan).WrapReader(3, under)
	buf := make([]byte, 64)
	var sawErr bool
	for i := 0; i < 64; i++ {
		if _, err := fr.Read(buf); err != nil {
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("underlying error class changed in transit: %v", err)
			}
			sawErr = true
			break
		}
	}
	if !sawErr {
		t.Fatal("planted underlying error never surfaced")
	}
	// ...and "seek to zero, rewrap, retry" — the remote-mirror resume
	// idiom — replays the identical fragment sequence.
	resumeBytes, resumeFrags := readFragments(t, plan, 3, bytes.NewReader(data))
	if !bytes.Equal(resumeBytes, data) {
		t.Fatal("resumed read changed the byte stream")
	}
	if len(resumeFrags) != len(cleanFrags) {
		t.Fatalf("resumed run fragmented into %d reads, clean run %d", len(resumeFrags), len(cleanFrags))
	}
	for i := range cleanFrags {
		if resumeFrags[i] != cleanFrags[i] {
			t.Fatalf("fragment %d: resumed %d vs clean %d", i, resumeFrags[i], cleanFrags[i])
		}
	}
}

// TestFlakyReaderAtFaultClasses drives the random-access injector over
// every outcome class and pins determinism per (offset, length).
func TestFlakyReaderAtFaultClasses(t *testing.T) {
	data := make([]byte, 8192)
	for i := range data {
		data[i] = byte(i)
	}
	in := NewInjector(Plan{Seed: 21, ReadAtErrorRate: 0.3, ReadAtFlipRate: 0.3})
	fra := in.WrapReaderAt(9, bytes.NewReader(data))

	type outcome struct {
		errored bool
		flipped bool
	}
	reads := []struct{ off, n int }{{0, 100}, {64, 64}, {500, 256}, {1000, 1}, {4096, 2048}, {8000, 192}}
	first := make([]outcome, len(reads))
	var errs, flips int
	for round := 0; round < 3; round++ {
		for i, rd := range reads {
			buf := make([]byte, rd.n)
			var o outcome
			_, err := fra.ReadAt(buf, int64(rd.off))
			switch {
			case err != nil:
				if !errors.Is(err, ErrTransient) {
					t.Fatalf("ReadAt error not ErrTransient-classified: %v", err)
				}
				o.errored = true
			default:
				diff := 0
				for j := range buf {
					diff += bits.OnesCount8(buf[j] ^ data[rd.off+j])
				}
				if diff > 1 {
					t.Fatalf("read [%d,%d): %d bits differ, want at most one flipped", rd.off, rd.off+rd.n, diff)
				}
				o.flipped = diff == 1
			}
			if round == 0 {
				first[i] = o
				if o.errored {
					errs++
				}
				if o.flipped {
					flips++
				}
			} else if o != first[i] {
				t.Fatalf("read [%d,%d): outcome %+v on round %d, %+v on round 0", rd.off, rd.off+rd.n, o, round, first[i])
			}
		}
	}
	if errs == 0 && flips == 0 {
		t.Fatal("no faults injected at 30%+30% over six reads; seed choice is broken")
	}
	if got := fra.Errs() + fra.Flips(); got == 0 {
		t.Error("fault counters stayed zero")
	}

	fra.SetEnabled(false)
	for _, rd := range reads {
		buf := make([]byte, rd.n)
		if _, err := fra.ReadAt(buf, int64(rd.off)); err != nil {
			t.Fatalf("disabled injector errored: %v", err)
		}
		if !bytes.Equal(buf, data[rd.off:rd.off+rd.n]) {
			t.Fatal("disabled injector corrupted a read")
		}
	}
}

// TestFlakyReaderAtConcurrent hammers one wrapper from many goroutines;
// under -race this is the concurrency contract check.
func TestFlakyReaderAtConcurrent(t *testing.T) {
	data := make([]byte, 4096)
	in := NewInjector(Plan{Seed: 3, ReadAtErrorRate: 0.5, ReadAtFlipRate: 0.5})
	fra := in.WrapReaderAt(1, bytes.NewReader(data))
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 128)
			for i := 0; i < 200; i++ {
				if g%4 == 0 && i == 100 {
					fra.SetEnabled(i%2 == 0)
				}
				_, _ = fra.ReadAt(buf, int64((g*37+i*13)%3968))
			}
		}(g)
	}
	wg.Wait()
}
