package faults

import (
	"context"
	"errors"
	"time"
)

// ErrRetriesExhausted reports that a Reconnector paced MaxAttempts
// consecutive failures without an intervening Reset — the bounded-retry
// giving-up signal a streaming consumer turns into a hard error.
var ErrRetriesExhausted = errors.New("faults: reconnect attempts exhausted")

// Reconnector paces a streaming source's reconnect loop with the
// Retrier's bounded deterministic backoff: each consecutive failure
// waits Backoff(n) before the next attempt, a success resets the
// ladder, and MaxAttempts consecutive failures exhaust the budget. It
// is the connection-level sibling of Retrier, which paces individual
// reads — a live tail holds one Reconnector for the lifetime of its
// source and Waits once per staleness or transport error.
type Reconnector struct {
	pol     RetryPolicy
	attempt int
	stats   RetryStats
}

// NewReconnector returns a reconnector with the policy (zero fields
// take the Retrier defaults).
func NewReconnector(pol RetryPolicy) *Reconnector {
	return &Reconnector{pol: pol.withDefaults()}
}

// Wait blocks for the backoff preceding the next reconnect attempt.
// With Sleep injected the wait is delegated to it (tests pass a fake
// clock); otherwise the wait really sleeps and cancelling ctx returns
// ctx.Err() promptly. Once MaxAttempts consecutive Waits have run
// without a Reset, further calls return ErrRetriesExhausted without
// waiting.
func (r *Reconnector) Wait(ctx context.Context) error {
	if r.attempt >= r.pol.MaxAttempts {
		r.stats.Abandoned++
		return ErrRetriesExhausted
	}
	r.attempt++
	r.stats.Retries++
	d := r.pol.Backoff(r.attempt)
	r.stats.Backoff += d
	if r.pol.Sleep != nil {
		r.pol.Sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Reset marks a successful (re)connection: the backoff ladder and the
// attempt budget start over.
func (r *Reconnector) Reset() { r.attempt = 0 }

// Attempt returns the current consecutive-failure count.
func (r *Reconnector) Attempt() int { return r.attempt }

// Stats returns the pacing counters accumulated so far.
func (r *Reconnector) Stats() RetryStats { return r.stats }
