package faults

import (
	"bytes"
	"errors"
	"fmt"

	"parallellives/internal/asn"
	"parallellives/internal/delegation"
	"parallellives/internal/registry"
)

// ErrTransient marks a source failure that a retry may recover from —
// the class the Retrier exists for.
var ErrTransient = errors.New("faults: transient source error")

// FallibleSource is a registry.Source whose reads can fail. A failed
// Next leaves the pending snapshot in place, so a retry re-reads the
// same day; Abandon gives up on it, yielding the day as missing — the
// remote-archive semantics a Retrier needs.
type FallibleSource interface {
	Registry() asn.RIR
	// Next returns the next snapshot; ok is false at end of stream. On
	// error, the read can be retried (same day) or Abandoned.
	Next() (registry.Snapshot, bool, error)
	// Abandon consumes the pending (failing) snapshot as a lost day.
	Abandon() (registry.Snapshot, bool)
}

// SourceInjector wraps a registry.Source, injecting transient read
// errors, dropped days and bit-flip corruption. It does not implement
// registry.Source itself (its Next can fail); wrap it in a Retrier to
// feed the restoration pipeline.
type SourceInjector struct {
	in  *Injector
	src registry.Source

	// One-snapshot lookahead: the window's final day is never content-
	// mangled, so injected faults cannot silently truncate the archive
	// window itself (which would shift every OpenAtEnd decision rather
	// than exercising degrade paths).
	peek   registry.Snapshot
	peekOK bool
	primed bool

	held     registry.Snapshot
	heldOK   bool
	heldLast bool
	failLeft int
	pos      uint64
}

// WrapSource wraps src with the injector's delegation-side faults.
func (in *Injector) WrapSource(src registry.Source) *SourceInjector {
	return &SourceInjector{in: in, src: src}
}

// Registry implements FallibleSource.
func (s *SourceInjector) Registry() asn.RIR { return s.src.Registry() }

// pull fetches the next underlying snapshot, maintaining the lookahead.
func (s *SourceInjector) pull() (snap registry.Snapshot, isLast, ok bool) {
	if !s.primed {
		s.peek, s.peekOK = s.src.Next()
		s.primed = true
	}
	if !s.peekOK {
		return registry.Snapshot{}, false, false
	}
	snap = s.peek
	s.peek, s.peekOK = s.src.Next()
	return snap, !s.peekOK, true
}

// Next returns the next snapshot or a transient error. After an error
// the same snapshot stays pending: a successful retry returns the real
// data. Drop and corruption faults are applied on successful reads.
func (s *SourceInjector) Next() (registry.Snapshot, bool, error) {
	if !s.heldOK {
		snap, isLast, ok := s.pull()
		if !ok {
			return registry.Snapshot{}, false, nil
		}
		s.held, s.heldLast, s.heldOK = snap, isLast, true
		s.pos++
		if s.in.coin(s.in.plan.TransientRate, saltTransient, rirKey(s.src), s.pos) {
			burst := s.in.plan.TransientBurst
			if burst <= 0 {
				burst = 2
			}
			s.failLeft = burst
		}
	}
	if s.failLeft > 0 {
		s.failLeft--
		s.in.rep.transientErrs.Add(1)
		return registry.Snapshot{}, false, fmt.Errorf("%w: %s day %s",
			ErrTransient, s.src.Registry().Token(), s.held.Day)
	}
	snap := s.held
	s.heldOK = false
	if !s.heldLast {
		snap = s.mangle(snap)
	}
	return snap, true, nil
}

// Abandon consumes the pending snapshot after repeated failures,
// returning it with its files dropped — the day is lost, but the stream
// continues. ok is false when nothing is pending.
func (s *SourceInjector) Abandon() (registry.Snapshot, bool) {
	if !s.heldOK {
		return registry.Snapshot{}, false
	}
	s.heldOK = false
	s.failLeft = 0
	return registry.Snapshot{Day: s.held.Day}, true
}

// mangle applies drop and corruption faults to one snapshot. Days that
// are already damaged (missing or corrupt upstream) are left untouched,
// so each injected fault maps to exactly one newly damaged day.
func (s *SourceInjector) mangle(snap registry.Snapshot) registry.Snapshot {
	if snap.Regular == nil && snap.Extended == nil {
		return snap
	}
	if snap.RegularCorrupt || snap.ExtendedCorrupt {
		return snap
	}
	day := uint64(uint32(snap.Day))
	rir := rirKey(s.src)
	if s.in.coin(s.in.plan.DropDayRate, saltDrop, rir, day) {
		snap.Regular, snap.Extended = nil, nil
		s.in.rep.droppedDays.Add(1)
		return snap
	}
	if s.in.coin(s.in.plan.CorruptDayRate, saltCorrupt, rir, day) {
		if snap.Regular != nil {
			snap.Regular = corruptFile(snap.Regular)
			snap.RegularCorrupt = snap.Regular == nil
		}
		if snap.Extended != nil {
			snap.Extended = corruptFile(snap.Extended)
			snap.ExtendedCorrupt = snap.Extended == nil
		}
		s.in.rep.corruptDays.Add(1)
	}
	return snap
}

// corruptFile serializes the file, flips bits across its header line and
// re-parses leniently — the same damage shape real mirrors serve
// (mangled separators, chopped lines). The header damage makes the file
// unusable, so the result is nil in practice; the lenient re-parse keeps
// the byte-level contract honest rather than assuming.
func corruptFile(f *delegation.File) *delegation.File {
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		return nil
	}
	b := buf.Bytes()
	n := len(b)
	if n > 48 {
		n = 48
	}
	for i := 0; i < n; i++ {
		b[i] ^= 0x10 // flips '|' field separators and digits alike
	}
	parsed, _ := delegation.ParseLenient(bytes.NewReader(b))
	if parsed == nil || (len(parsed.ASNs) == 0 && len(parsed.Other) == 0) {
		return nil
	}
	return parsed
}

// rirKey derives a stable per-registry hash key.
func rirKey(src registry.Source) uint64 { return uint64(src.Registry()) }
