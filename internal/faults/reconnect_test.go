package faults

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestReconnectorBackoffLadder checks the deterministic doubling and
// the exhaustion bound.
func TestReconnectorBackoffLadder(t *testing.T) {
	var waits []time.Duration
	r := NewReconnector(RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  25 * time.Millisecond,
		Sleep:       func(d time.Duration) { waits = append(waits, d) },
	})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := r.Wait(ctx); err != nil {
			t.Fatalf("Wait %d: %v", i, err)
		}
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 25 * time.Millisecond}
	if len(waits) != len(want) {
		t.Fatalf("got %d waits, want %d", len(waits), len(want))
	}
	for i := range want {
		if waits[i] != want[i] {
			t.Errorf("wait %d = %v, want %v", i, waits[i], want[i])
		}
	}
	if err := r.Wait(ctx); !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("4th Wait = %v, want ErrRetriesExhausted", err)
	}
	st := r.Stats()
	if st.Retries != 3 || st.Abandoned != 1 {
		t.Errorf("stats = %+v, want 3 retries / 1 abandoned", st)
	}
}

// TestReconnectorReset proves a success restarts both the ladder and
// the attempt budget.
func TestReconnectorReset(t *testing.T) {
	var waits []time.Duration
	r := NewReconnector(RetryPolicy{
		MaxAttempts: 2,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  time.Second,
		Sleep:       func(d time.Duration) { waits = append(waits, d) },
	})
	ctx := context.Background()
	r.Wait(ctx)
	r.Wait(ctx)
	r.Reset()
	if r.Attempt() != 0 {
		t.Fatalf("Attempt after Reset = %d, want 0", r.Attempt())
	}
	if err := r.Wait(ctx); err != nil {
		t.Fatalf("Wait after Reset: %v", err)
	}
	if last := waits[len(waits)-1]; last != 5*time.Millisecond {
		t.Errorf("backoff after Reset = %v, want base again", last)
	}
}

// TestReconnectorCancel proves a real (no injected Sleep) wait honours
// ctx cancellation promptly.
func TestReconnectorCancel(t *testing.T) {
	r := NewReconnector(RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Minute, MaxBackoff: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	start := time.Now()
	err := r.Wait(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("cancelled Wait blocked for the full backoff")
	}
}
