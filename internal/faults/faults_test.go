package faults

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"parallellives/internal/asn"
	"parallellives/internal/bgp"
	"parallellives/internal/bgpscan"
	"parallellives/internal/dates"
	"parallellives/internal/delegation"
	"parallellives/internal/mrt"
	"parallellives/internal/registry"
)

func d(s string) dates.Day { return dates.MustParse(s) }

// buildRIBArchive encodes a PEER_INDEX_TABLE plus n RIB records, two
// peers each — the minimal archive the scanner fully accepts.
func buildRIBArchive(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	tbl := mrt.PeerIndexTable{
		Peers: []mrt.Peer{
			{Addr: netip.MustParseAddr("192.0.2.1"), AS: 64500},
			{Addr: netip.MustParseAddr("192.0.2.2"), AS: 64501},
		},
	}
	if err := w.WriteRecord(0, mrt.TypeTableDumpV2, mrt.SubtypePeerIndexTable, tbl.Marshal()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		u := bgp.Update{
			Path: []bgp.Segment{{Type: bgp.SegmentSequence,
				ASNs: []asn.ASN{64500, asn.ASN(65000 + i)}}},
			NextHop:   netip.AddrFrom4([4]byte{192, 0, 2, 254}),
			HasOrigin: true,
		}
		rec := mrt.RIBRecord{
			Seq:    uint32(i),
			Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24),
			Entries: []mrt.RIBEntry{
				{PeerIndex: 0, Attrs: u.MarshalAttrs(true)},
				{PeerIndex: 1, Attrs: u.MarshalAttrs(true)},
			},
		}
		if err := w.WriteRecord(0, mrt.TypeTableDumpV2, rec.Subtype(), rec.Marshal()); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// scanArchive runs one archive through a quarantining scanner.
func scanArchive(t *testing.T, data []byte) bgpscan.Stats {
	t.Helper()
	s := bgpscan.NewScanner()
	s.Quarantine = true
	if err := s.BeginDay(d("2010-01-01")); err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveMRT(data); err != nil {
		t.Fatalf("quarantining scan failed: %v", err)
	}
	if err := s.EndDay(); err != nil {
		t.Fatal(err)
	}
	return s.Finish().Stats
}

func TestMangleMRTDeterministic(t *testing.T) {
	data := buildRIBArchive(t, 50)
	plan := Plan{Seed: 3, TruncateRecordRate: 0.3, TailChopRate: 1}
	a := NewInjector(plan).MangleMRT(7, data)
	b := NewInjector(plan).MangleMRT(7, data)
	if !bytes.Equal(a, b) {
		t.Fatal("same plan and salt mangled differently")
	}
	if bytes.Equal(a, data) {
		t.Fatal("storm-level plan left the archive untouched")
	}
	if c := NewInjector(Plan{Seed: 4, TruncateRecordRate: 0.3, TailChopRate: 1}).MangleMRT(7, data); bytes.Equal(a, c) {
		t.Fatal("different seeds mangled identically")
	}
	if c := NewInjector(plan).MangleMRT(8, data); bytes.Equal(a, c) {
		t.Fatal("different salts mangled identically")
	}
}

// TestMangleMRTAccounting proves the 1:1 fault-to-quarantine contract:
// every injected truncation surfaces as exactly one quarantined record,
// every tail chop as exactly one quarantined tail, and nothing else is
// lost.
func TestMangleMRTAccounting(t *testing.T) {
	const n = 200
	data := buildRIBArchive(t, n)
	if st := scanArchive(t, data); st.RIBRecords != n || st.QuarantinedTruncated != 0 || st.QuarantinedTails != 0 {
		t.Fatalf("clean archive stats = %+v", st)
	}
	in := NewInjector(Plan{Seed: 11, TruncateRecordRate: 0.1, TailChopRate: 1})
	mangled := in.MangleMRT(1, data)
	rep := in.Report()
	if rep.TruncatedRecords == 0 || rep.TailChops != 1 {
		t.Fatalf("injector report = %+v", rep)
	}
	st := scanArchive(t, mangled)
	if st.QuarantinedTruncated != rep.TruncatedRecords {
		t.Errorf("QuarantinedTruncated = %d, injected %d", st.QuarantinedTruncated, rep.TruncatedRecords)
	}
	if st.QuarantinedTails != rep.TailChops {
		t.Errorf("QuarantinedTails = %d, injected %d", st.QuarantinedTails, rep.TailChops)
	}
	// The tail chop eats the final record; truncated ones are skipped.
	want := int64(n) - rep.TruncatedRecords - rep.TailChops
	if st.RIBRecords != want {
		t.Errorf("RIBRecords = %d, want %d", st.RIBRecords, want)
	}
	if st.DropMalformed != 0 {
		t.Errorf("DropMalformed = %d, want 0 (all injected damage is truncation)", st.DropMalformed)
	}
}

// TestMangleMRTFailFast: without quarantine the tail chop is a hard
// framing error, the seed behaviour.
func TestMangleMRTFailFast(t *testing.T) {
	data := buildRIBArchive(t, 10)
	in := NewInjector(Plan{Seed: 2, TailChopRate: 1})
	mangled := in.MangleMRT(1, data)
	s := bgpscan.NewScanner()
	if err := s.BeginDay(d("2010-01-01")); err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveMRT(mangled); err == nil {
		t.Fatal("fail-fast scan of a tail-chopped archive succeeded")
	}
}

// delegationDays scripts one registry's present snapshot days.
func delegationDays(rir asn.RIR, start string, n int) *fakeSource {
	src := &fakeSource{rir: rir}
	first := d(start)
	for i := 0; i < n; i++ {
		day := first.AddDays(i)
		f := &delegation.File{
			Registry: rir, Serial: day.Compact(), Extended: true,
			Start: day, End: day, UTCOffset: "+0000",
			ASNs: []delegation.Record{{
				Registry: rir, CC: "US", ASN: 1500, Count: 1,
				Date: d(start), Status: delegation.StatusAllocated, OpaqueID: "o-1",
			}},
		}
		src.snaps = append(src.snaps, registry.Snapshot{Day: day, Extended: f})
	}
	return src
}

type fakeSource struct {
	rir   asn.RIR
	snaps []registry.Snapshot
	i     int
}

func (f *fakeSource) Registry() asn.RIR { return f.rir }

func (f *fakeSource) Next() (registry.Snapshot, bool) {
	if f.i >= len(f.snaps) {
		return registry.Snapshot{}, false
	}
	s := f.snaps[f.i]
	f.i++
	return s, true
}

// drain pulls every snapshot through a Retrier-wrapped injector.
func drain(src registry.Source) []registry.Snapshot {
	var out []registry.Snapshot
	for {
		snap, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, snap)
	}
}

func TestSourceInjectorRecoversThroughRetrier(t *testing.T) {
	const n = 400
	in := NewInjector(Plan{Seed: 5, TransientRate: 0.1, TransientBurst: 2,
		CorruptDayRate: 0.05, DropDayRate: 0.05})
	ret := NewRetrier(in.WrapSource(delegationDays(asn.ARIN, "2010-01-01", n)), RetryPolicy{})
	got := drain(ret)
	if len(got) != n {
		t.Fatalf("yielded %d snapshots, want %d", len(got), n)
	}
	for i, snap := range got {
		if want := d("2010-01-01").AddDays(i); snap.Day != want {
			t.Fatalf("snapshot %d is day %s, want %s (order broken by faults)", i, snap.Day, want)
		}
	}
	rep, st := in.Report(), ret.Stats()
	if rep.TransientErrs == 0 || rep.CorruptDays == 0 || rep.DroppedDays == 0 {
		t.Fatalf("storm injected nothing: %+v", rep)
	}
	// Burst 2 < the 4-attempt budget: every failure is retried, none
	// abandoned, and the retry count matches the injected errors exactly.
	if st.Retries != rep.TransientErrs || st.Abandoned != 0 {
		t.Errorf("retrier stats %+v vs injected %+v", st, rep)
	}
	if st.Backoff <= 0 {
		t.Errorf("no virtual backoff recorded: %+v", st)
	}
	var missing, corrupt int64
	for _, snap := range got {
		if snap.Regular == nil && snap.Extended == nil {
			missing++
			if snap.RegularCorrupt || snap.ExtendedCorrupt {
				corrupt++
			}
		}
	}
	if corrupt != rep.CorruptDays {
		t.Errorf("corrupt-flagged days = %d, injected %d", corrupt, rep.CorruptDays)
	}
	if missing != rep.CorruptDays+rep.DroppedDays {
		t.Errorf("fileless days = %d, injected %d corrupt + %d dropped",
			missing, rep.CorruptDays, rep.DroppedDays)
	}
	if last := got[n-1]; last.Extended == nil {
		t.Error("lookahead failed: the stream's final day was mangled")
	}
}

func TestRetrierAbandonsPersistentFailure(t *testing.T) {
	const n = 60
	// Burst far beyond the attempt budget: hit days cannot be recovered.
	in := NewInjector(Plan{Seed: 9, TransientRate: 0.1, TransientBurst: 100})
	ret := NewRetrier(in.WrapSource(delegationDays(asn.ARIN, "2010-01-01", n)), RetryPolicy{MaxAttempts: 3})
	got := drain(ret)
	if len(got) != n {
		t.Fatalf("yielded %d snapshots, want %d", len(got), n)
	}
	st := ret.Stats()
	if st.Abandoned == 0 {
		t.Fatal("storm hit no day at 10% over 60 days")
	}
	var lost int64
	for _, snap := range got {
		if snap.Regular == nil && snap.Extended == nil {
			if snap.Day == dates.None {
				t.Fatal("abandoned snapshot lost its day")
			}
			lost++
		}
	}
	if lost != st.Abandoned {
		t.Errorf("fileless days = %d, abandoned = %d", lost, st.Abandoned)
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 35 * time.Millisecond}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond,
		35 * time.Millisecond, 35 * time.Millisecond}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

// TestFlakyReaderPreservesStream: short reads and stalls change only the
// read fragmentation, never the bytes, so an MRT reader over a
// FlakyReader decodes the archive unchanged.
func TestFlakyReaderPreservesStream(t *testing.T) {
	// Rate 1 faults every Read call: the buffered MRT reader issues few,
	// large reads, so fractional rates would make the test flaky-by-seed.
	data := buildRIBArchive(t, 200)
	in := NewInjector(Plan{Seed: 6, ShortReadRate: 1, StallRate: 1})
	var stalled time.Duration
	fr := in.WrapReader(1, bytes.NewReader(data))
	fr.Sleep = func(d time.Duration) { stalled += d }
	r := mrt.NewReader(fr)
	var rebuilt bytes.Buffer
	w := mrt.NewWriter(&rebuilt)
	for {
		h, body, err := r.Next()
		if err != nil {
			break
		}
		if err := w.WriteRecord(h.Timestamp, h.Type, h.Subtype, body); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(rebuilt.Bytes(), data) {
		t.Fatal("stream bytes changed under short reads")
	}
	rep := in.Report()
	if rep.ShortReads == 0 {
		t.Error("no short reads at 50% rate")
	}
	if rep.Stalls == 0 || stalled == 0 {
		t.Errorf("no stalls recorded (report %+v, slept %v)", rep, stalled)
	}
}

func TestZeroPlanInjectsNothing(t *testing.T) {
	data := buildRIBArchive(t, 20)
	in := NewInjector(Plan{Seed: 1})
	if got := in.MangleMRT(1, data); !bytes.Equal(got, data) {
		t.Error("zero-rate plan changed MRT bytes")
	}
	ret := NewRetrier(in.WrapSource(delegationDays(asn.ARIN, "2010-01-01", 30)), RetryPolicy{})
	got := drain(ret)
	if len(got) != 30 {
		t.Fatalf("yielded %d snapshots, want 30", len(got))
	}
	for _, snap := range got {
		if snap.Extended == nil || snap.RegularCorrupt || snap.ExtendedCorrupt {
			t.Fatalf("zero-rate plan damaged day %s", snap.Day)
		}
	}
	if tot := in.Report().Total(); tot != 0 {
		t.Errorf("zero plan reported %d faults", tot)
	}
	if st := ret.Stats(); st.Retries != 0 || st.Abandoned != 0 {
		t.Errorf("zero plan caused retries: %+v", st)
	}
}
