// Package asn defines Autonomous System Number types and registries.
//
// It carries the vocabulary shared by every other package: the ASN value
// type, the 16/32-bit split introduced by RFC 6793, the special-purpose
// ("bogon") number registry the paper excludes from its §6.4 analysis, the
// five Regional Internet Registries, and the digit-similarity predicates
// behind the fat-finger misconfiguration classifier.
package asn

import (
	"fmt"
	"strconv"
)

// ASN is an Autonomous System Number. BGP has carried 4-octet AS numbers
// since RFC 6793, so the full uint32 range is valid on the wire.
type ASN uint32

// ASTrans is AS_TRANS (RFC 6793), the 2-octet placeholder substituted for
// 4-octet ASNs when speaking to OLD BGP speakers.
const ASTrans ASN = 23456

// Max16Bit is the largest 2-octet AS number.
const Max16Bit ASN = 65535

// Is32Bit reports whether a requires the 4-octet encoding (i.e. it does
// not fit in 16 bits). The paper calls these "32-bit ASNs".
func (a ASN) Is32Bit() bool { return a > Max16Bit }

// String renders the ASN in "asplain" notation (RFC 5396), e.g. "64501".
func (a ASN) String() string { return strconv.FormatUint(uint64(a), 10) }

// ASDot renders the ASN in "asdot" notation, e.g. "1.10" for 65546;
// 16-bit numbers render as plain decimal, per RFC 5396 asdot rules.
func (a ASN) ASDot() string {
	if !a.Is32Bit() {
		return a.String()
	}
	return fmt.Sprintf("%d.%d", uint32(a)>>16, uint32(a)&0xffff)
}

// Parse parses an asplain ASN string.
func Parse(s string) (ASN, error) {
	v, err := strconv.ParseUint(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("asn: invalid ASN %q: %w", s, err)
	}
	return ASN(v), nil
}

// DigitLen returns the number of decimal digits of the ASN.
func (a ASN) DigitLen() int { return len(a.String()) }

// Reserved reports whether a is a special-purpose AS number that operators
// conventionally filter as a "bogon". The registry follows IANA's
// Special-Purpose AS Numbers registry and the RFCs the paper cites
// (RFC 1930/5398/6996/7300/7607 and AS112 operations, RFC 7534):
//
//	0                        RFC 7607  (may not be used)
//	112                      RFC 7534  (AS112 project)
//	23456                    RFC 6793  (AS_TRANS)
//	64496–64511              RFC 5398  (documentation)
//	64512–65534              RFC 6996  (private use, 16-bit)
//	65535                    RFC 7300  (last 16-bit)
//	65536–65551              RFC 5398  (documentation, 32-bit)
//	4200000000–4294967294    RFC 6996  (private use, 32-bit)
//	4294967295               RFC 7300  (last 32-bit)
func (a ASN) Reserved() bool {
	switch {
	case a == 0:
		return true
	case a == 112:
		return true
	case a == ASTrans:
		return true
	case a >= 64496 && a <= 64511:
		return true
	case a >= 64512 && a <= 65534:
		return true
	case a == 65535:
		return true
	case a >= 65536 && a <= 65551:
		return true
	case a >= 4200000000 && a <= 4294967294:
		return true
	case a == 4294967295:
		return true
	}
	return false
}

// RIR identifies one of the five Regional Internet Registries.
type RIR uint8

// The five RIRs, in the order the paper's tables list them.
const (
	AfriNIC RIR = iota
	APNIC
	ARIN
	LACNIC
	RIPENCC
	NumRIRs = 5
)

// All lists the RIRs in canonical (paper table) order.
func All() []RIR { return []RIR{AfriNIC, APNIC, ARIN, LACNIC, RIPENCC} }

var rirNames = [NumRIRs]string{"AfriNIC", "APNIC", "ARIN", "LACNIC", "RIPE NCC"}

// delegation-file registry tokens, lower case (column 1 of the files).
var rirTokens = [NumRIRs]string{"afrinic", "apnic", "arin", "lacnic", "ripencc"}

// String returns the display name, e.g. "RIPE NCC".
func (r RIR) String() string {
	if int(r) < len(rirNames) {
		return rirNames[r]
	}
	return fmt.Sprintf("RIR(%d)", uint8(r))
}

// Token returns the registry token used in delegation files, e.g. "ripencc".
func (r RIR) Token() string {
	if int(r) < len(rirTokens) {
		return rirTokens[r]
	}
	return "unknown"
}

// ParseRIR maps a delegation-file registry token to an RIR.
func ParseRIR(token string) (RIR, error) {
	for i, t := range rirTokens {
		if t == token {
			return RIR(i), nil
		}
	}
	return 0, fmt.Errorf("asn: unknown registry %q", token)
}

// ExactRepetition reports whether candidate's decimal form is the decimal
// form of reference written exactly twice — e.g. 3202632026 vs 32026 —
// the digit-doubling signature of a failed AS-path prepend (§6.4).
func ExactRepetition(candidate, reference ASN) bool {
	if candidate == reference {
		return false
	}
	r := reference.String()
	return candidate.String() == r+r
}

// OneDigitOff reports whether the decimal forms of a and b have the same
// length and differ in exactly one digit position — e.g. 419333 vs 41933
// is NOT (length differs) but 363690 vs 393690 is. This is the §6.4
// signature of a mistyped origin causing a MOAS conflict.
func OneDigitOff(a, b ASN) bool {
	sa, sb := a.String(), b.String()
	if len(sa) != len(sb) || a == b {
		return false
	}
	diff := 0
	for i := 0; i < len(sa); i++ {
		if sa[i] != sb[i] {
			diff++
			if diff > 1 {
				return false
			}
		}
	}
	return diff == 1
}

// DigitInsertion reports whether candidate can be produced from reference
// by inserting exactly one decimal digit anywhere — e.g. 419333 from
// 41933. Together with OneDigitOff it covers the two fat-finger shapes
// §6.4 describes for never-allocated origins.
func DigitInsertion(candidate, reference ASN) bool {
	c, r := candidate.String(), reference.String()
	if len(c) != len(r)+1 {
		return false
	}
	// Standard one-edit check specialized to insertion.
	i, j := 0, 0
	skipped := false
	for i < len(c) && j < len(r) {
		if c[i] == r[j] {
			i++
			j++
			continue
		}
		if skipped {
			return false
		}
		skipped = true
		i++
	}
	return true
}
