package asn

import (
	"testing"
	"testing/quick"
)

func TestIs32Bit(t *testing.T) {
	if ASN(65535).Is32Bit() {
		t.Error("65535 is 16-bit")
	}
	if !ASN(65536).Is32Bit() {
		t.Error("65536 is 32-bit")
	}
	if ASN(1).Is32Bit() {
		t.Error("1 is 16-bit")
	}
	if !ASN(4200000000).Is32Bit() {
		t.Error("4200000000 is 32-bit")
	}
}

func TestASDot(t *testing.T) {
	cases := map[ASN]string{
		64512:  "64512",
		65536:  "1.0",
		65546:  "1.10",
		131072: "2.0",
	}
	for a, want := range cases {
		if got := a.ASDot(); got != want {
			t.Errorf("ASDot(%d) = %q, want %q", a, got, want)
		}
	}
}

func TestParse(t *testing.T) {
	a, err := Parse("205334")
	if err != nil || a != 205334 {
		t.Errorf("Parse = %v, %v", a, err)
	}
	if _, err := Parse("4294967296"); err == nil {
		t.Error("expected overflow error")
	}
	if _, err := Parse("-1"); err == nil {
		t.Error("expected sign error")
	}
	if _, err := Parse("1.10"); err == nil {
		t.Error("asdot should not parse as asplain")
	}
}

func TestReserved(t *testing.T) {
	reserved := []ASN{0, 112, 23456, 64496, 64511, 64512, 65000, 65534, 65535,
		65536, 65551, 4200000000, 4294967294, 4294967295}
	for _, a := range reserved {
		if !a.Reserved() {
			t.Errorf("ASN %d should be reserved", a)
		}
	}
	unreserved := []ASN{1, 111, 113, 23455, 23457, 64495, 65552, 131072,
		4199999999, 3356, 205334}
	for _, a := range unreserved {
		if a.Reserved() {
			t.Errorf("ASN %d should not be reserved", a)
		}
	}
}

func TestRIRRoundTrip(t *testing.T) {
	for _, r := range All() {
		got, err := ParseRIR(r.Token())
		if err != nil || got != r {
			t.Errorf("ParseRIR(%q) = %v, %v", r.Token(), got, err)
		}
	}
	if _, err := ParseRIR("iana"); err == nil {
		t.Error("expected error for unknown registry")
	}
	if RIPENCC.String() != "RIPE NCC" || AfriNIC.String() != "AfriNIC" {
		t.Error("display names wrong")
	}
}

func TestExactRepetition(t *testing.T) {
	// The paper's example: AS3202632026 where the first hop is AS32026.
	if !ExactRepetition(3202632026, 32026) {
		t.Error("3202632026 is 32026 doubled")
	}
	if ExactRepetition(32026, 32026) {
		t.Error("identity is not a repetition")
	}
	if ExactRepetition(3202632027, 32026) {
		t.Error("3202632027 is not 32026 doubled")
	}
	if !ExactRepetition(701701, 701) {
		t.Error("701701 is 701 doubled")
	}
}

func TestOneDigitOff(t *testing.T) {
	// Paper example: AS363690 MOAS with AS393690.
	if !OneDigitOff(363690, 393690) {
		t.Error("363690 vs 393690 differ by one digit")
	}
	if OneDigitOff(363690, 363690) {
		t.Error("equal ASNs are not one digit off")
	}
	if OneDigitOff(419333, 41933) {
		t.Error("different lengths are not one-digit-off")
	}
	if OneDigitOff(363690, 393790) {
		t.Error("two digits differ")
	}
}

func TestDigitInsertion(t *testing.T) {
	// Paper example: AS419333 vs AS41933 (IPRAGAZ).
	if !DigitInsertion(419333, 41933) {
		t.Error("419333 is 41933 with an inserted digit")
	}
	if !DigitInsertion(141933, 41933) {
		t.Error("prefix insertion")
	}
	if DigitInsertion(41933, 41933) {
		t.Error("same length is not insertion")
	}
	if DigitInsertion(519444, 41933) {
		t.Error("too many edits")
	}
}

func TestQuickOneDigitOffSymmetric(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := ASN(a), ASN(b)
		return OneDigitOff(x, y) == OneDigitOff(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickRepetitionImpliesDoubleLength(t *testing.T) {
	f := func(a uint16) bool {
		ref := ASN(a%60000 + 1)
		doubled := ref.String() + ref.String()
		cand, err := Parse(doubled)
		if err != nil {
			return true // doubling overflowed 32 bits; nothing to check
		}
		return ExactRepetition(cand, ref) && cand.DigitLen() == 2*ref.DigitLen()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
