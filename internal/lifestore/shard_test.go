package lifestore

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"parallellives/internal/asn"
	"parallellives/internal/core"
	"parallellives/internal/dates"
	"parallellives/internal/intervals"
)

// shardFixtureASNs is the sorted ASN population of the shard fixture,
// chosen to cross the 16/32-bit boundary and leave gaps for miss tests.
var shardFixtureASNs = []asn.ASN{10, 20, 30, 100, 200, 300, 1000, 2000, 64496, 4200000000}

// shardFixture hand-builds a deterministic snapshot over
// shardFixtureASNs without running the pipeline.
func shardFixture() *Snapshot {
	day := dates.MustParse
	snap := &Snapshot{
		Meta: Meta{
			FormatVersion: FormatVersion,
			Start:         day("2004-01-01"),
			End:           day("2006-01-01"),
			Timeout:       365,
			Visibility:    2,
			Scale:         0.01,
			Seed:          7,
		},
		Taxonomy: core.TaxonomyCounts{AdminComplete: 6, AdminPartial: 4, OpComplete: 5, OpPartial: 5},
	}
	for i, a := range shardFixtureASNs {
		start := day("2004-02-01").AddDays(11 * i)
		snap.Lives = append(snap.Lives, ASNLives{
			ASN: a,
			Admin: []AdminLife{{
				RIR:      asn.RIPENCC,
				CC:       "NL",
				OpaqueID: fmt.Sprintf("org-%d", i),
				RegDate:  start,
				Span:     intervals.Interval{Start: start, End: start.AddDays(200)},
				Pieces:   1,
				Category: core.CatComplete,
			}},
			Op: []OpLife{{
				Span:     intervals.Interval{Start: start.AddDays(5), End: start.AddDays(150)},
				Category: core.CatPartial,
			}},
		})
	}
	snap.Meta.ASNCount = len(snap.Lives)
	snap.Meta.AdminLives = len(snap.Lives)
	snap.Meta.OpLives = len(snap.Lives)
	return snap
}

// TestShardPlanGolden pins the exact cut a 4-way plan makes over the
// fixture: the plan is part of the on-disk contract (shard files record
// the ranges), so it must never drift between versions.
func TestShardPlanGolden(t *testing.T) {
	plan, err := PlanShards(shardFixture(), 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []ShardRange{
		{Lo: 0, Hi: 99, ASNs: 3},                          // 10, 20, 30
		{Lo: 100, Hi: 999, ASNs: 3},                       // 100, 200, 300
		{Lo: 1000, Hi: 64495, ASNs: 2},                    // 1000, 2000
		{Lo: 64496, Hi: asn.ASN(math.MaxUint32), ASNs: 2}, // 64496, 4200000000
	}
	if plan.Count != 4 {
		t.Fatalf("plan.Count = %d, want 4", plan.Count)
	}
	if !reflect.DeepEqual(plan.Ranges, want) {
		t.Fatalf("plan ranges drifted:\n got %+v\nwant %+v", plan.Ranges, want)
	}

	// Determinism: the same snapshot and count always produce the same
	// plan and fingerprint; a different count or snapshot identity does
	// not share the fingerprint.
	again, err := PlanShards(shardFixture(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan, again) {
		t.Fatalf("plan is not deterministic: %+v vs %+v", plan, again)
	}
	two, err := PlanShards(shardFixture(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if two.Sum == plan.Sum {
		t.Fatalf("2-way and 4-way plans share fingerprint %08x", plan.Sum)
	}
	other := shardFixture()
	other.Meta.Seed++
	reseeded, err := PlanShards(other, 4)
	if err != nil {
		t.Fatal(err)
	}
	if reseeded.Sum == plan.Sum {
		t.Fatalf("plans over different snapshots share fingerprint %08x", plan.Sum)
	}
}

// TestShardForCoversEverything checks that every ASN — populated,
// absent, boundary — maps to exactly one shard, and exactly the shard
// whose inclusive range contains it.
func TestShardForCoversEverything(t *testing.T) {
	plan, err := PlanShards(shardFixture(), 4)
	if err != nil {
		t.Fatal(err)
	}
	probes := []struct {
		a    asn.ASN
		want int
	}{
		{0, 0}, {10, 0}, {99, 0},
		{100, 1},   // exactly on a range cut: first ASN of shard 1
		{999, 1},   // last value before the next cut
		{1000, 2},  // exactly on the next cut
		{64495, 2}, // absent, still owned
		{64496, 3},
		{4200000000, 3},
		{asn.ASN(math.MaxUint32), 3},
	}
	for _, p := range probes {
		if got := plan.ShardFor(p.a); got != p.want {
			t.Errorf("ShardFor(AS%s) = %d, want %d", p.a, got, p.want)
		}
		for i, r := range plan.Ranges {
			si := ShardInfo{Index: i, Count: plan.Count, Lo: r.Lo, Hi: r.Hi}
			if si.Contains(p.a) != (i == p.want) {
				t.Errorf("shard %d Contains(AS%s) = %v, want %v", i, p.a, si.Contains(p.a), i == p.want)
			}
		}
	}
}

// TestSaveShardedRoundTrip writes a 4-way shard set and proves each
// shard is a complete self-contained snapshot: the global sections ride
// along unchanged, the shard owns exactly its slice of ASNs, and an ASN
// absent from the whole dataset is a definitive miss on its owner.
func TestSaveShardedRoundTrip(t *testing.T) {
	snap := shardFixture()
	dir := t.TempDir()
	plan, paths, err := SaveSharded(snap, 4, filepath.Join(dir, "lives.%d.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("SaveSharded wrote %d files, want 4", len(paths))
	}

	seen := make(map[asn.ASN]int)
	for i, path := range paths {
		st, si, err := OpenShard(path)
		if err != nil {
			t.Fatalf("OpenShard(%s): %v", path, err)
		}
		defer st.Close()
		want := plan.Ranges[i]
		if si.Index != i || si.Count != 4 || si.Lo != want.Lo || si.Hi != want.Hi || si.Sum != plan.Sum {
			t.Errorf("shard %d identity %+v does not match plan range %+v (sum %08x)", i, si, want, plan.Sum)
		}
		// Global sections are carried whole by every shard.
		if st.Meta() != snap.Meta {
			t.Errorf("shard %d meta differs from global: %+v", i, st.Meta())
		}
		if st.Taxonomy() != snap.Taxonomy {
			t.Errorf("shard %d taxonomy differs from global", i)
		}
		if !reflect.DeepEqual(st.Health(), snap.Health) {
			t.Errorf("shard %d health differs from global", i)
		}
		for _, a := range st.ASNs() {
			if !si.Contains(a) {
				t.Errorf("shard %d holds AS%s outside its range", i, a)
			}
			seen[a]++
		}
		// An ASN absent from the entire dataset is still owned by
		// exactly one shard, which answers with a clean miss.
		if si.Contains(55) {
			if _, ok, err := st.Lookup(55); err != nil || ok {
				t.Errorf("shard %d Lookup(absent AS55) = ok=%v err=%v, want definitive miss", i, ok, err)
			}
		}
	}
	for _, a := range shardFixtureASNs {
		if seen[a] != 1 {
			t.Errorf("AS%s appears in %d shards, want exactly 1", a, seen[a])
		}
	}
}

// TestOneShardPlanDegenerates proves the N=1 plan is the unsharded file
// plus only the shard-identity section: stripping the identity yields
// byte-for-byte the bytes Save would have written.
func TestOneShardPlanDegenerates(t *testing.T) {
	snap := shardFixture()
	dir := t.TempDir()
	plan, paths, err := SaveSharded(snap, 1, filepath.Join(dir, "lives.%d.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Count != 1 || plan.Ranges[0].Lo != 0 || plan.Ranges[0].Hi != asn.ASN(math.MaxUint32) {
		t.Fatalf("1-way plan = %+v, want the full ASN space", plan)
	}
	st, si, err := OpenShard(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if si.Index != 0 || si.Count != 1 {
		t.Fatalf("1-way shard identity = %+v", si)
	}
	got, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	got.Shard = nil
	gotBytes, err := Encode(got)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Fatalf("1-way shard (identity stripped) re-encodes to %d bytes differing from the unsharded %d bytes",
			len(gotBytes), len(wantBytes))
	}
}

// TestOpenShardRejectsUnsharded pins the error classification for
// pointing a shard open at a plain snapshot.
func TestOpenShardRejectsUnsharded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plain.snap")
	if err := SaveSnapshot(shardFixture(), path); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenShard(path); !errors.Is(err, ErrNotSharded) {
		t.Fatalf("OpenShard(unsharded) = %v, want ErrNotSharded", err)
	}
	// The plain reader, conversely, reports no shard identity.
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Shard() != nil {
		t.Fatalf("unsharded Store.Shard() = %+v, want nil", st.Shard())
	}
}

// TestOpenMapped proves the memory-mapped open is observably identical
// to the descriptor-backed one: same shard identity, same lookups, same
// full-fidelity snapshot, and VerifyBlocks still proves the lazy region.
func TestOpenMapped(t *testing.T) {
	snap := shardFixture()
	dir := t.TempDir()
	_, paths, err := SaveSharded(snap, 2, filepath.Join(dir, "lives.%d.snap"))
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range paths {
		plain, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		mapped, err := OpenMapped(path)
		if err != nil {
			t.Fatalf("OpenMapped(%s): %v", path, err)
		}
		if !reflect.DeepEqual(plain.Shard(), mapped.Shard()) {
			t.Errorf("%s: mapped shard identity differs", path)
		}
		for _, a := range append(append([]asn.ASN{}, shardFixtureASNs...), 55, 64495) {
			pl, pok, perr := plain.Lookup(a)
			ml, mok, merr := mapped.Lookup(a)
			if pok != mok || (perr == nil) != (merr == nil) || !reflect.DeepEqual(pl, ml) {
				t.Errorf("%s: Lookup(AS%s) diverges between mapped and plain", path, a)
			}
		}
		if err := mapped.VerifyBlocks(); err != nil {
			t.Errorf("%s: mapped VerifyBlocks: %v", path, err)
		}
		ps, err := plain.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		ms, err := mapped.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if diffs := Diff(ps, ms); len(diffs) > 0 {
			t.Errorf("%s: mapped snapshot differs: %v", path, diffs)
		}
		if err := mapped.Close(); err != nil {
			t.Errorf("%s: mapped Close: %v", path, err)
		}
		plain.Close()
	}
}
