package lifestore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"parallellives/internal/dates"
	"parallellives/internal/faults"
	"parallellives/internal/pipeline"
)

// testOptions is a reduced world that still exercises every mechanism:
// multiple registries, reallocation, operational churn.
func testOptions(seed int64, chaos bool) pipeline.Options {
	opts := pipeline.DefaultOptions()
	opts.World.Scale = 0.02
	opts.World.Seed = seed
	opts.World.Start = dates.MustParse("2004-01-01")
	opts.World.End = dates.MustParse("2005-12-31")
	if chaos {
		opts.FaultPolicy = pipeline.Degrade
		plan := faults.DefaultStorm(seed)
		opts.Inject = &plan
		opts.Wire = true // MRT faults only exist on the wire
	}
	return opts
}

var dsCache = map[string]*pipeline.Dataset{}

func testDataset(t testing.TB, seed int64, chaos bool) *pipeline.Dataset {
	t.Helper()
	key := fmt.Sprintf("%d/%v", seed, chaos)
	if ds, ok := dsCache[key]; ok {
		return ds
	}
	ds, err := pipeline.Run(testOptions(seed, chaos))
	if err != nil {
		t.Fatal(err)
	}
	dsCache[key] = ds
	return ds
}

// TestRoundTrip is the acceptance property: Save then Open reproduces
// the dataset exactly, for a clean run and a chaos degrade run, at two
// seeds.
func TestRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-year pipeline runs")
	}
	for _, seed := range []int64{1, 7} {
		for _, chaos := range []bool{false, true} {
			t.Run(fmt.Sprintf("seed=%d,chaos=%v", seed, chaos), func(t *testing.T) {
				ds := testDataset(t, seed, chaos)
				want := Capture(ds)
				path := filepath.Join(t.TempDir(), "lives.snap")
				if err := SaveSnapshot(want, path); err != nil {
					t.Fatal(err)
				}
				st, err := Open(path)
				if err != nil {
					t.Fatal(err)
				}
				defer st.Close()
				got, err := st.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				if diffs := Diff(want, got); len(diffs) > 0 {
					for i, d := range diffs {
						if i >= 10 {
							t.Errorf("... and %d more", len(diffs)-i)
							break
						}
						t.Error(d)
					}
				}
				if chaos && got.Health.Injected == nil {
					t.Error("chaos run round-tripped without its injection report")
				}
			})
		}
	}
}

// TestEncodeDeterministic pins Save's byte-level determinism: the same
// dataset encodes to identical bytes, and capturing twice changes
// nothing.
func TestEncodeDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-year pipeline run")
	}
	ds := testDataset(t, 1, false)
	a, err := Encode(Capture(ds))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(Capture(ds))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two captures of the same dataset encoded differently")
	}
}

// TestLazyLookup checks the per-ASN path against the full decode and the
// in-memory adapter.
func TestLazyLookup(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-year pipeline run")
	}
	ds := testDataset(t, 1, false)
	snap := Capture(ds)
	img, err := Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	st, err := OpenBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	if st.ASNCount() != len(snap.Lives) {
		t.Fatalf("store has %d ASNs, snapshot %d", st.ASNCount(), len(snap.Lives))
	}
	mem := NewInMemory(snap)
	for _, want := range snap.Lives {
		got, ok, err := st.Lookup(want.ASN)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("AS%s missing from store", want.ASN)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("AS%s: lazy decode differs from capture:\n got %+v\nwant %+v", want.ASN, got, want)
		}
		memGot, ok, _ := mem.Lookup(want.ASN)
		if !ok || !reflect.DeepEqual(memGot, want) {
			t.Fatalf("AS%s: in-memory adapter differs from capture", want.ASN)
		}
	}
	// An ASN that never lived: present in neither.
	const ghost = 4199999999
	if _, ok, err := st.Lookup(ghost); err != nil || ok {
		t.Fatalf("ghost ASN: ok=%v err=%v, want absent", ok, err)
	}
}

// TestCorruptionDetected flips bytes across the file and asserts every
// region is covered by a checksum on the read path that touches it.
func TestCorruptionDetected(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-year pipeline run")
	}
	ds := testDataset(t, 1, false)
	snap := Capture(ds)
	img, err := Encode(snap)
	if err != nil {
		t.Fatal(err)
	}

	flip := func(off int) []byte {
		c := append([]byte(nil), img...)
		c[off] ^= 0x40
		return c
	}

	if _, err := OpenBytes(flip(0)); err == nil {
		t.Error("corrupt magic accepted")
	}
	if _, err := OpenBytes(flip(8)); err == nil {
		t.Error("corrupt version accepted")
	}
	// A damaged section-table offset must fail the header checksum.
	if _, err := OpenBytes(flip(headerFixedLen + 4)); err == nil {
		t.Error("corrupt section table accepted")
	}
	// A flipped byte in an eager section must fail its section checksum.
	metaOff := headerFixedLen + sectionEntryLen*6 + 4
	if _, err := OpenBytes(flip(metaOff)); err == nil {
		t.Error("corrupt meta section accepted")
	}
	// A flipped byte inside a block must fail that block's checksum on
	// Lookup (Open itself stays lazy and succeeds).
	st, err := OpenBytes(flip(len(img) - 10))
	if err != nil {
		t.Fatalf("lazy open rejected block damage eagerly: %v", err)
	}
	last := snap.Lives[len(snap.Lives)-1].ASN
	if _, _, err := st.Lookup(last); err == nil {
		t.Error("corrupt block decoded without error")
	}
	if _, err := st.Snapshot(); err == nil {
		t.Error("full decode missed blocks-section damage")
	}
}

// TestVersionRejected pins the compat rule: a reader refuses a snapshot
// written with a different format version.
func TestVersionRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-year pipeline run")
	}
	img, err := Encode(Capture(testDataset(t, 1, false)))
	if err != nil {
		t.Fatal(err)
	}
	c := append([]byte(nil), img...)
	binary.LittleEndian.PutUint16(c[8:10], FormatVersion+1)
	// Reseal the header so only the version check can reject it.
	nsec := int(binary.LittleEndian.Uint16(c[10:12]))
	tableEnd := headerFixedLen + sectionEntryLen*nsec
	binary.LittleEndian.PutUint32(c[tableEnd:tableEnd+4], checksum(c[:tableEnd]))
	if _, err := OpenBytes(c); err == nil {
		t.Fatal("future-version snapshot accepted")
	}
}

// TestDiffReportsDivergence makes sure the round-trip oracle can
// actually see differences.
func TestDiffReportsDivergence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-year pipeline run")
	}
	snap := Capture(testDataset(t, 1, false))
	other := Capture(testDataset(t, 1, false))
	if diffs := Diff(snap, other); len(diffs) != 0 {
		t.Fatalf("identical captures diff: %v", diffs)
	}
	other.Taxonomy.AdminComplete++
	other.Lives[0].Admin[0].Pieces++
	diffs := Diff(snap, other)
	if len(diffs) != 2 {
		t.Fatalf("expected 2 diffs, got %d: %v", len(diffs), diffs)
	}
}
