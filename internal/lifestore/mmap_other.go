//go:build !linux && !darwin

package lifestore

import "parallellives/internal/obs"

// OpenMapped falls back to a plain descriptor-backed Open on platforms
// without the unix mmap path. The query surface is identical; only the
// read mechanism differs.
func OpenMapped(path string) (*Store, error) { return Open(path) }

// OpenMappedObserved falls back to OpenObserved.
func OpenMappedObserved(path string, reg *obs.Registry) (*Store, error) {
	return OpenObserved(path, reg)
}
