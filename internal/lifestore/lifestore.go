// Package lifestore persists a computed dual-lens dataset — the
// administrative and operational lives of every ASN, their joint
// taxonomy, the daily alive series, per-RIR coverage and the pipeline
// health report — in a versioned, checksummed binary snapshot.
//
// A snapshot turns a batch pipeline.Run into a servable artifact: the
// expensive 17-year computation happens once (Save), and any number of
// later processes answer per-ASN queries from the file (Open) without
// recomputing anything. The file carries a sorted per-ASN index so a
// single-ASN lookup decodes only that ASN's block; everything else —
// metadata, health, taxonomy, series — is small and loaded eagerly.
//
// See DESIGN.md §7 for the file layout, versioning rules and checksum
// policy.
package lifestore

import (
	"context"
	"fmt"
	"reflect"
	"sort"

	"parallellives/internal/asn"
	"parallellives/internal/core"
	"parallellives/internal/dates"
	"parallellives/internal/intervals"
	"parallellives/internal/pipeline"
)

// Meta identifies a snapshot: the format version it was written with,
// the run configuration it captures, and the dataset's headline counts.
type Meta struct {
	FormatVersion uint16
	// Start and End bound the observation window.
	Start, End dates.Day
	// Timeout, Visibility, Policy, Wire and TextFiles echo the pipeline
	// options of the run.
	Timeout    int
	Visibility int
	Policy     pipeline.FaultPolicy
	Wire       bool
	TextFiles  bool
	// Scale and Seed identify the simulated world.
	Scale             float64
	Seed              int64
	Collectors        int
	PeersPerCollector int
	// Chaos records whether deterministic faults were injected.
	Chaos bool
	// Dataset sizes.
	ASNCount   int
	AdminLives int
	OpLives    int
}

// AdminLife is one administrative life as stored: the §4.1 lifetime plus
// its joint-taxonomy category.
type AdminLife struct {
	RIR         asn.RIR
	CC          string
	OpaqueID    string
	RegDate     dates.Day
	Span        intervals.Interval
	Open        bool
	Transferred bool
	Pieces      int
	Category    core.Category
}

// OpLife is one operational life as stored.
type OpLife struct {
	Span     intervals.Interval
	Category core.Category
}

// ASNLives is one ASN's block: both dimensions in chronological order.
type ASNLives struct {
	ASN   asn.ASN
	Admin []AdminLife
	Op    []OpLife
}

// Snapshot is the fully decoded in-memory form of a snapshot file.
type Snapshot struct {
	Meta     Meta
	Health   pipeline.Health
	Taxonomy core.TaxonomyCounts
	Series   *core.AliveSeries
	// Shard identifies a sharded snapshot's cut; nil for unsharded.
	Shard *ShardInfo
	// Lives is sorted by ASN.
	Lives []ASNLives
}

// Capture builds the serializable view of a dataset. The per-ASN lives
// are ordered exactly as the dataset's indexes hold them (ASN, then span
// start), so Capture is deterministic for a deterministic run.
func Capture(ds *pipeline.Dataset) *Snapshot {
	start, end := ds.Window()
	snap := &Snapshot{
		Meta: Meta{
			FormatVersion:     FormatVersion,
			Start:             start,
			End:               end,
			Timeout:           ds.Options.Timeout,
			Visibility:        ds.Options.Visibility,
			Policy:            ds.Options.FaultPolicy,
			Wire:              ds.Options.Wire,
			TextFiles:         ds.Options.TextFiles,
			Scale:             ds.Options.World.Scale,
			Seed:              ds.Options.World.Seed,
			Collectors:        ds.Options.World.Collectors,
			PeersPerCollector: ds.Options.World.PeersPerCollector,
			Chaos:             ds.Options.Inject != nil,
			AdminLives:        len(ds.Admin.Lifetimes),
			OpLives:           len(ds.Ops.Lifetimes),
		},
		Health:   *ds.Health,
		Taxonomy: ds.Joint.Taxonomy(),
		Series:   ds.AliveSeries(),
	}

	byASN := make(map[asn.ASN]*ASNLives)
	var order []asn.ASN
	get := func(a asn.ASN) *ASNLives {
		if l, ok := byASN[a]; ok {
			return l
		}
		l := &ASNLives{ASN: a}
		byASN[a] = l
		order = append(order, a)
		return l
	}
	for i, l := range ds.Admin.Lifetimes {
		get(l.ASN).Admin = append(get(l.ASN).Admin, AdminLife{
			RIR:         l.RIR,
			CC:          l.CC,
			OpaqueID:    l.OpaqueID,
			RegDate:     l.RegDate,
			Span:        l.Span,
			Open:        l.Open,
			Transferred: l.Transferred,
			Pieces:      l.Pieces,
			Category:    ds.Joint.AdminCat[i],
		})
	}
	for i, l := range ds.Ops.Lifetimes {
		get(l.ASN).Op = append(get(l.ASN).Op, OpLife{
			Span:     l.Span,
			Category: ds.Joint.OpCat[i],
		})
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	snap.Lives = make([]ASNLives, len(order))
	for i, a := range order {
		snap.Lives[i] = *byASN[a]
	}
	snap.Meta.ASNCount = len(snap.Lives)
	return snap
}

// Lookup returns one ASN's lives from the in-memory snapshot.
func (s *Snapshot) Lookup(a asn.ASN) (ASNLives, bool) {
	i := sort.Search(len(s.Lives), func(i int) bool { return s.Lives[i].ASN >= a })
	if i < len(s.Lives) && s.Lives[i].ASN == a {
		return s.Lives[i], true
	}
	return ASNLives{}, false
}

// InMemory adapts a Snapshot to the same query surface a Store offers,
// so a freshly computed dataset can be served without touching disk (and
// so tests can compare served responses against the in-memory truth).
type InMemory struct{ snap *Snapshot }

// NewInMemory wraps a snapshot.
func NewInMemory(s *Snapshot) *InMemory { return &InMemory{snap: s} }

// Meta returns the snapshot metadata.
func (m *InMemory) Meta() Meta { return m.snap.Meta }

// Health returns the captured pipeline health report.
func (m *InMemory) Health() pipeline.Health { return m.snap.Health }

// Taxonomy returns the Table-3 counts.
func (m *InMemory) Taxonomy() core.TaxonomyCounts { return m.snap.Taxonomy }

// Series returns the daily alive series.
func (m *InMemory) Series() *core.AliveSeries { return m.snap.Series }

// Shard returns the shard identity, or nil for an unsharded snapshot.
func (m *InMemory) Shard() *ShardInfo { return m.snap.Shard }

// Lookup returns one ASN's lives.
func (m *InMemory) Lookup(a asn.ASN) (ASNLives, bool, error) {
	l, ok := m.snap.Lookup(a)
	return l, ok, nil
}

// LookupContext is Lookup honouring request cancellation, matching the
// Store's context-aware surface so servers treat both sources alike.
func (m *InMemory) LookupContext(ctx context.Context, a asn.ASN) (ASNLives, bool, error) {
	if err := ctx.Err(); err != nil {
		return ASNLives{}, false, err
	}
	return m.Lookup(a)
}

// ASNCount returns the number of distinct ASNs with at least one life.
func (m *InMemory) ASNCount() int { return len(m.snap.Lives) }

// Diff compares two snapshots and describes every difference, one string
// per divergent component or ASN. An empty result means the snapshots
// are identical — the property Save/Open round-trip tests assert.
func Diff(a, b *Snapshot) []string {
	var out []string
	if a.Meta != b.Meta {
		out = append(out, fmt.Sprintf("meta differs: %+v vs %+v", a.Meta, b.Meta))
	}
	if !reflect.DeepEqual(a.Health, b.Health) {
		out = append(out, fmt.Sprintf("health differs: %+v vs %+v", a.Health, b.Health))
	}
	if a.Taxonomy != b.Taxonomy {
		out = append(out, fmt.Sprintf("taxonomy differs: %+v vs %+v", a.Taxonomy, b.Taxonomy))
	}
	if !reflect.DeepEqual(a.Series, b.Series) {
		out = append(out, "alive series differs")
	}
	if !reflect.DeepEqual(a.Shard, b.Shard) {
		out = append(out, fmt.Sprintf("shard identity differs: %v vs %v", a.Shard, b.Shard))
	}
	i, j := 0, 0
	for i < len(a.Lives) || j < len(b.Lives) {
		switch {
		case j >= len(b.Lives) || (i < len(a.Lives) && a.Lives[i].ASN < b.Lives[j].ASN):
			out = append(out, fmt.Sprintf("AS%s only in first snapshot", a.Lives[i].ASN))
			i++
		case i >= len(a.Lives) || a.Lives[i].ASN > b.Lives[j].ASN:
			out = append(out, fmt.Sprintf("AS%s only in second snapshot", b.Lives[j].ASN))
			j++
		default:
			if !reflect.DeepEqual(a.Lives[i], b.Lives[j]) {
				out = append(out, fmt.Sprintf("AS%s lives differ", a.Lives[i].ASN))
			}
			i++
			j++
		}
	}
	return out
}
