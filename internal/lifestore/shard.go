package lifestore

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"parallellives/internal/asn"
	"parallellives/internal/parallel"
)

// ErrNotSharded reports that a snapshot opened as a shard carries no
// shard section — it is a plain unsharded snapshot.
var ErrNotSharded = errors.New("snapshot is not a shard")

// ShardInfo identifies one shard of a sharded snapshot: its position in
// the plan, the contiguous ASN range it owns, and the plan fingerprint
// every sibling shard shares. The range bounds are inclusive and the
// ranges of a plan partition the whole ASN space, so any ASN maps to
// exactly one shard — lookups for ASNs the dataset never saw still have
// a well-defined owner, which answers them with a definitive miss.
type ShardInfo struct {
	// Index is the 0-based shard position; Count the plan's shard total.
	Index int
	Count int
	// Lo and Hi bound the owned ASN range, inclusive.
	Lo, Hi asn.ASN
	// Sum is the CRC-32C plan fingerprint, identical across all shards
	// cut from one snapshot by one plan. A router refuses to assemble
	// shards whose fingerprints disagree.
	Sum uint32
}

// Contains reports whether a falls in the shard's owned range.
func (si ShardInfo) Contains(a asn.ASN) bool { return a >= si.Lo && a <= si.Hi }

// String renders the shard identity for logs.
func (si ShardInfo) String() string {
	return fmt.Sprintf("shard %d/%d [AS%s..AS%s]", si.Index+1, si.Count, si.Lo, si.Hi)
}

// ShardRange is one plan entry: the inclusive ASN range of a shard and
// how many of the snapshot's ASNs fall inside it.
type ShardRange struct {
	Lo, Hi asn.ASN
	ASNs   int
}

// ShardPlan is a deterministic cut of a snapshot's sorted per-ASN index
// into Count contiguous ranges. For a given (snapshot, Count) the plan
// is a pure function: the populated ASNs are split into near-equal
// contiguous runs (parallel.Shards semantics — the first len%count runs
// are one ASN longer), then each boundary is widened so the ranges
// partition the entire ASN space: shard 0 starts at 0, the last shard
// ends at MaxUint32, and each interior boundary sits immediately before
// the first ASN of the next shard.
type ShardPlan struct {
	Count  int
	Ranges []ShardRange
	// Sum fingerprints the plan together with the identity of the
	// snapshot it was cut from.
	Sum uint32
}

// ShardFor returns the index of the shard owning a. Every ASN has an
// owner by construction.
func (p ShardPlan) ShardFor(a asn.ASN) int {
	return sort.Search(len(p.Ranges), func(i int) bool { return p.Ranges[i].Hi >= a })
}

// PlanShards cuts a snapshot into count contiguous ASN ranges. It fails
// on an empty snapshot or a non-positive count; count larger than the
// ASN population is clamped to it, so every shard owns at least one
// populated ASN.
func PlanShards(snap *Snapshot, count int) (ShardPlan, error) {
	if count < 1 {
		return ShardPlan{}, fmt.Errorf("lifestore: shard count %d < 1", count)
	}
	if len(snap.Lives) == 0 {
		return ShardPlan{}, fmt.Errorf("lifestore: cannot shard an empty snapshot")
	}
	if count > len(snap.Lives) {
		count = len(snap.Lives)
	}
	cuts := parallel.Shards(len(snap.Lives), count)
	plan := ShardPlan{Count: len(cuts), Ranges: make([]ShardRange, 0, len(cuts))}
	for i, c := range cuts {
		r := ShardRange{ASNs: c.Len()}
		if i == 0 {
			r.Lo = 0
		} else {
			r.Lo = snap.Lives[c.Lo].ASN
		}
		if i == len(cuts)-1 {
			r.Hi = asn.ASN(math.MaxUint32)
		} else {
			r.Hi = snap.Lives[cuts[i+1].Lo].ASN - 1
		}
		plan.Ranges = append(plan.Ranges, r)
	}
	plan.Sum = plan.fingerprint(snap.Meta)
	return plan, nil
}

// fingerprint seals the plan's ranges together with the snapshot
// identity, so shards from different snapshots (or different counts)
// can never be mistaken for siblings.
func (p ShardPlan) fingerprint(m Meta) uint32 {
	var e enc
	e.count(p.Count)
	for _, r := range p.Ranges {
		e.uvarint(uint64(r.Lo))
		e.uvarint(uint64(r.Hi))
		e.count(r.ASNs)
	}
	e.day(m.Start)
	e.day(m.End)
	e.varint(m.Seed)
	e.float(m.Scale)
	e.count(m.ASNCount)
	e.count(m.AdminLives)
	e.count(m.OpLives)
	e.bool(m.Chaos)
	return checksum(e.b)
}

// ShardSnapshot builds the in-memory snapshot of one shard: the plan's
// slice of the per-ASN lives plus every global section — meta, health,
// taxonomy and series are copied whole, so any single shard can answer
// aggregate reads without consulting its siblings.
func ShardSnapshot(snap *Snapshot, plan ShardPlan, i int) (*Snapshot, error) {
	if i < 0 || i >= len(plan.Ranges) {
		return nil, fmt.Errorf("lifestore: shard index %d outside plan of %d", i, len(plan.Ranges))
	}
	r := plan.Ranges[i]
	lo := sort.Search(len(snap.Lives), func(k int) bool { return snap.Lives[k].ASN >= r.Lo })
	hi := sort.Search(len(snap.Lives), func(k int) bool { return snap.Lives[k].ASN > r.Hi })
	if hi-lo != r.ASNs {
		return nil, fmt.Errorf("lifestore: plan range %d covers %d ASNs, snapshot holds %d", i, r.ASNs, hi-lo)
	}
	part := &Snapshot{
		Meta:     snap.Meta,
		Health:   snap.Health,
		Taxonomy: snap.Taxonomy,
		Series:   snap.Series,
		Lives:    snap.Lives[lo:hi],
		Shard: &ShardInfo{
			Index: i,
			Count: len(plan.Ranges),
			Lo:    r.Lo,
			Hi:    r.Hi,
			Sum:   plan.Sum,
		},
	}
	return part, nil
}

// SaveSharded cuts the snapshot into count shards and writes each to
// the path produced by pattern, which must contain exactly one %d verb
// (the 0-based shard index). Every shard is a complete, self-contained
// ASNLIVES snapshot: a plain Store can open and serve it unaware of
// sharding, and OpenShard additionally surfaces its range. Returns the
// plan and the written paths in shard order.
func SaveSharded(snap *Snapshot, count int, pattern string) (ShardPlan, []string, error) {
	if strings.Count(pattern, "%") != 1 || !strings.Contains(pattern, "%d") {
		return ShardPlan{}, nil, fmt.Errorf("lifestore: shard pattern %q must contain exactly one %%d", pattern)
	}
	plan, err := PlanShards(snap, count)
	if err != nil {
		return ShardPlan{}, nil, err
	}
	paths := make([]string, 0, len(plan.Ranges))
	for i := range plan.Ranges {
		part, err := ShardSnapshot(snap, plan, i)
		if err != nil {
			return ShardPlan{}, nil, err
		}
		path := fmt.Sprintf(pattern, i)
		if err := SaveSnapshot(part, path); err != nil {
			return ShardPlan{}, nil, fmt.Errorf("writing shard %d: %w", i, err)
		}
		paths = append(paths, path)
	}
	return plan, paths, nil
}

// OpenShard opens one shard file, requiring the shard section a
// SaveSharded file carries. Plain unsharded snapshots are rejected with
// ErrNotSharded — open those with Open.
func OpenShard(path string) (*Store, ShardInfo, error) {
	st, err := Open(path)
	if err != nil {
		return nil, ShardInfo{}, err
	}
	si := st.Shard()
	if si == nil {
		st.Close()
		return nil, ShardInfo{}, fmt.Errorf("lifestore: opening %s: %w", path, ErrNotSharded)
	}
	return st, *si, nil
}
