package lifestore

import (
	"encoding/binary"
	"fmt"
	"time"

	"parallellives/internal/asn"
	"parallellives/internal/core"
	"parallellives/internal/faults"
	"parallellives/internal/intervals"
	"parallellives/internal/pipeline"
)

// FormatVersion is the snapshot format this package writes. Readers
// reject files with a different version: the format is small enough that
// cross-version migration is "rebuild the snapshot", not in-place compat.
const FormatVersion = 1

// magic opens every snapshot file.
const magic = "ASNLIVES"

// Section identifiers. A valid file contains each required section
// exactly once; readers ignore sections with unknown identifiers, which
// is the forward-compatibility room for additive extensions.
const (
	secMeta     uint16 = 1
	secHealth   uint16 = 2
	secTaxonomy uint16 = 3
	secSeries   uint16 = 4
	secIndex    uint16 = 5
	secBlocks   uint16 = 6
	// secShard is the optional shard-identity section a SaveSharded file
	// carries. Readers predating it skip unknown sections, so a shard
	// file is still a valid snapshot to an old reader — it simply serves
	// a contiguous subset of the ASNs.
	secShard uint16 = 7
)

const (
	headerFixedLen  = 12 // magic(8) + version(2) + section count(2)
	sectionEntryLen = 24 // id(2) + reserved(2) + offset(8) + length(8) + crc(4)
)

// indexEntry locates one ASN's block inside the blocks section.
type indexEntry struct {
	asn    asn.ASN
	off    uint64 // relative to the blocks section start
	length uint64 // block payload + trailing CRC
}

func encodeMeta(m Meta) []byte {
	var e enc
	e.day(m.Start)
	e.day(m.End)
	e.count(m.Timeout)
	e.count(m.Visibility)
	e.byte(uint8(m.Policy))
	e.bool(m.Wire)
	e.bool(m.TextFiles)
	e.float(m.Scale)
	e.varint(m.Seed)
	e.count(m.Collectors)
	e.count(m.PeersPerCollector)
	e.bool(m.Chaos)
	e.count(m.ASNCount)
	e.count(m.AdminLives)
	e.count(m.OpLives)
	return e.b
}

func decodeMeta(b []byte) (Meta, error) {
	d := dec{b: b}
	m := Meta{
		FormatVersion:     FormatVersion,
		Start:             d.day(),
		End:               d.day(),
		Timeout:           int(d.uvarint()),
		Visibility:        int(d.uvarint()),
		Policy:            pipeline.FaultPolicy(d.byte()),
		Wire:              d.bool(),
		TextFiles:         d.bool(),
		Scale:             d.float(),
		Seed:              d.varint(),
		Collectors:        int(d.uvarint()),
		PeersPerCollector: int(d.uvarint()),
		Chaos:             d.bool(),
		ASNCount:          int(d.uvarint()),
		AdminLives:        int(d.uvarint()),
		OpLives:           int(d.uvarint()),
	}
	return m, d.done()
}

func encodeHealth(h pipeline.Health) []byte {
	var e enc
	e.byte(uint8(h.Policy))
	e.count(h.DaysProcessed)
	e.varint(h.MRT.Archives)
	e.varint(h.MRT.Records)
	e.varint(h.MRT.QuarantinedTruncated)
	e.varint(h.MRT.QuarantinedTails)
	e.varint(h.MRT.Malformed)
	e.count(h.Delegation.FilesScanned)
	e.count(h.Delegation.MissingFileDays)
	e.count(h.Delegation.CorruptFileDays)
	e.varint(h.Delegation.Retries)
	e.varint(h.Delegation.AbandonedReads)
	e.varint(int64(h.Delegation.RetryBackoff))
	for _, c := range h.Coverage {
		e.count(c.Days)
		e.count(c.FileDays)
		e.count(c.MissingDays)
		e.count(c.CorruptDays)
	}
	e.bool(h.Injected != nil)
	if h.Injected != nil {
		i := h.Injected
		e.varint(i.TruncatedRecords)
		e.varint(i.TailChops)
		e.varint(i.CorruptDays)
		e.varint(i.DroppedDays)
		e.varint(i.TransientErrs)
		e.varint(i.ShortReads)
		e.varint(i.Stalls)
	}
	return e.b
}

func decodeHealth(b []byte) (pipeline.Health, error) {
	d := dec{b: b}
	var h pipeline.Health
	h.Policy = pipeline.FaultPolicy(d.byte())
	h.DaysProcessed = int(d.uvarint())
	h.MRT.Archives = d.varint()
	h.MRT.Records = d.varint()
	h.MRT.QuarantinedTruncated = d.varint()
	h.MRT.QuarantinedTails = d.varint()
	h.MRT.Malformed = d.varint()
	h.Delegation.FilesScanned = int(d.uvarint())
	h.Delegation.MissingFileDays = int(d.uvarint())
	h.Delegation.CorruptFileDays = int(d.uvarint())
	h.Delegation.Retries = d.varint()
	h.Delegation.AbandonedReads = d.varint()
	h.Delegation.RetryBackoff = time.Duration(d.varint())
	for r := range h.Coverage {
		h.Coverage[r].Days = int(d.uvarint())
		h.Coverage[r].FileDays = int(d.uvarint())
		h.Coverage[r].MissingDays = int(d.uvarint())
		h.Coverage[r].CorruptDays = int(d.uvarint())
	}
	if d.bool() {
		var rep faults.Report
		rep.TruncatedRecords = d.varint()
		rep.TailChops = d.varint()
		rep.CorruptDays = d.varint()
		rep.DroppedDays = d.varint()
		rep.TransientErrs = d.varint()
		rep.ShortReads = d.varint()
		rep.Stalls = d.varint()
		h.Injected = &rep
	}
	return h, d.done()
}

func encodeTaxonomy(t core.TaxonomyCounts) []byte {
	var e enc
	e.count(t.AdminComplete)
	e.count(t.AdminPartial)
	e.count(t.AdminUnused)
	e.count(t.OpComplete)
	e.count(t.OpPartial)
	e.count(t.OpOutside)
	return e.b
}

func decodeTaxonomy(b []byte) (core.TaxonomyCounts, error) {
	d := dec{b: b}
	t := core.TaxonomyCounts{
		AdminComplete: int(d.uvarint()),
		AdminPartial:  int(d.uvarint()),
		AdminUnused:   int(d.uvarint()),
		OpComplete:    int(d.uvarint()),
		OpPartial:     int(d.uvarint()),
		OpOutside:     int(d.uvarint()),
	}
	return t, d.done()
}

func encodeSeries(s *core.AliveSeries) []byte {
	var e enc
	e.bool(s != nil)
	if s == nil {
		return e.b
	}
	e.day(s.Start)
	e.day(s.End)
	for _, r := range asn.All() {
		e.ints(s.AdminPerRIR[r])
	}
	e.ints(s.AdminOverall)
	for _, r := range asn.All() {
		e.ints(s.OpPerRIR[r])
	}
	e.ints(s.OpOverall)
	return e.b
}

func decodeSeries(b []byte) (*core.AliveSeries, error) {
	d := dec{b: b}
	if !d.bool() {
		return nil, d.done()
	}
	s := &core.AliveSeries{Start: d.day(), End: d.day()}
	for _, r := range asn.All() {
		s.AdminPerRIR[r] = d.ints()
	}
	s.AdminOverall = d.ints()
	for _, r := range asn.All() {
		s.OpPerRIR[r] = d.ints()
	}
	s.OpOverall = d.ints()
	return s, d.done()
}

func encodeShard(si ShardInfo) []byte {
	var e enc
	e.count(si.Index)
	e.count(si.Count)
	e.uvarint(uint64(si.Lo))
	e.uvarint(uint64(si.Hi))
	e.uvarint(uint64(si.Sum))
	return e.b
}

func decodeShard(b []byte) (ShardInfo, error) {
	d := dec{b: b}
	si := ShardInfo{
		Index: int(d.uvarint()),
		Count: int(d.uvarint()),
		Lo:    asn.ASN(d.uvarint()),
		Hi:    asn.ASN(d.uvarint()),
		Sum:   uint32(d.uvarint()),
	}
	if err := d.done(); err != nil {
		return ShardInfo{}, err
	}
	if si.Count < 1 || si.Index < 0 || si.Index >= si.Count || si.Lo > si.Hi {
		return ShardInfo{}, corruptf("implausible shard identity %d/%d [AS%s..AS%s]", si.Index, si.Count, si.Lo, si.Hi)
	}
	return si, nil
}

const (
	flagOpen        = 1 << 0
	flagTransferred = 1 << 1
)

// encodeBlock renders one ASN's lives as payload + trailing CRC-32C, the
// unit a lazy lookup reads and verifies independently of the rest of the
// file.
func encodeBlock(l ASNLives) []byte {
	var e enc
	e.uvarint(uint64(l.ASN))
	e.count(len(l.Admin))
	for _, al := range l.Admin {
		e.byte(uint8(al.RIR))
		e.string(al.CC)
		e.string(al.OpaqueID)
		e.day(al.RegDate)
		e.day(al.Span.Start)
		e.uvarint(uint64(al.Span.End.Sub(al.Span.Start)))
		var flags uint8
		if al.Open {
			flags |= flagOpen
		}
		if al.Transferred {
			flags |= flagTransferred
		}
		e.byte(flags)
		e.count(al.Pieces)
		e.byte(al.Category.Code())
	}
	e.count(len(l.Op))
	for _, ol := range l.Op {
		e.day(ol.Span.Start)
		e.uvarint(uint64(ol.Span.End.Sub(ol.Span.Start)))
		e.byte(ol.Category.Code())
	}
	return binary.LittleEndian.AppendUint32(e.b, checksum(e.b))
}

func decodeBlock(b []byte) (ASNLives, error) {
	if len(b) < 4 {
		return ASNLives{}, corruptf("block shorter than its checksum")
	}
	payload, tail := b[:len(b)-4], b[len(b)-4:]
	if got, want := checksum(payload), binary.LittleEndian.Uint32(tail); got != want {
		return ASNLives{}, corruptf("block checksum mismatch (got %08x, want %08x)", got, want)
	}
	d := dec{b: payload}
	var l ASNLives
	l.ASN = asn.ASN(d.uvarint())
	if n := d.count(); d.err == nil && n > 0 {
		l.Admin = make([]AdminLife, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			al := AdminLife{
				RIR:      asn.RIR(d.byte()),
				CC:       d.string(),
				OpaqueID: d.string(),
				RegDate:  d.day(),
			}
			start := d.day()
			al.Span = intervals.Interval{Start: start, End: start.AddDays(int(d.uvarint()))}
			flags := d.byte()
			al.Open = flags&flagOpen != 0
			al.Transferred = flags&flagTransferred != 0
			al.Pieces = int(d.uvarint())
			if al.Category, d.err = categoryOrErr(d.byte(), d.err); d.err != nil {
				break
			}
			l.Admin = append(l.Admin, al)
		}
	}
	if n := d.count(); d.err == nil && n > 0 {
		l.Op = make([]OpLife, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			var ol OpLife
			start := d.day()
			ol.Span = intervals.Interval{Start: start, End: start.AddDays(int(d.uvarint()))}
			if ol.Category, d.err = categoryOrErr(d.byte(), d.err); d.err != nil {
				break
			}
			l.Op = append(l.Op, ol)
		}
	}
	if err := d.done(); err != nil {
		return ASNLives{}, fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	return l, nil
}

// categoryOrErr decodes a category code without clobbering an earlier
// decoder error.
func categoryOrErr(code uint8, prev error) (core.Category, error) {
	if prev != nil {
		return 0, prev
	}
	return core.CategoryFromCode(code)
}

func encodeIndex(entries []indexEntry) []byte {
	var e enc
	e.count(len(entries))
	prev := uint64(0)
	for _, ent := range entries {
		e.uvarint(uint64(ent.asn) - prev)
		prev = uint64(ent.asn)
		e.uvarint(ent.off)
		e.uvarint(ent.length)
	}
	return e.b
}

func decodeIndex(b []byte) ([]indexEntry, error) {
	d := dec{b: b}
	n := d.count()
	var entries []indexEntry
	if d.err == nil && n > 0 {
		entries = make([]indexEntry, 0, n)
		prev := uint64(0)
		for i := 0; i < n && d.err == nil; i++ {
			prev += d.uvarint()
			entries = append(entries, indexEntry{
				asn:    asn.ASN(prev),
				off:    d.uvarint(),
				length: d.uvarint(),
			})
		}
	}
	return entries, d.done()
}
