package lifestore

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"parallellives/internal/pipeline"
)

// Save captures a dataset and writes its snapshot to path atomically
// (write to a temp file in the same directory, then rename).
func Save(ds *pipeline.Dataset, path string) error {
	return SaveSnapshot(Capture(ds), path)
}

// SaveSnapshot writes an already-captured snapshot to path.
func SaveSnapshot(snap *Snapshot, path string) error {
	b, err := Encode(snap)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".lifestore-*")
	if err != nil {
		return fmt.Errorf("lifestore: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("lifestore: writing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("lifestore: writing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("lifestore: %w", err)
	}
	return nil
}

// Encode renders the snapshot in the versioned binary format. The output
// is a pure function of the snapshot: equal snapshots encode to equal
// bytes, which the determinism tests assert.
func Encode(snap *Snapshot) ([]byte, error) {
	// Per-ASN blocks and the index that locates them.
	var blocks []byte
	entries := make([]indexEntry, 0, len(snap.Lives))
	for _, l := range snap.Lives {
		blk := encodeBlock(l)
		entries = append(entries, indexEntry{
			asn:    l.ASN,
			off:    uint64(len(blocks)),
			length: uint64(len(blk)),
		})
		blocks = append(blocks, blk...)
	}

	type section struct {
		id      uint16
		payload []byte
	}
	sections := []section{
		{secMeta, encodeMeta(snap.Meta)},
		{secHealth, encodeHealth(snap.Health)},
		{secTaxonomy, encodeTaxonomy(snap.Taxonomy)},
		{secSeries, encodeSeries(snap.Series)},
		{secIndex, encodeIndex(entries)},
		{secBlocks, blocks},
	}
	if snap.Shard != nil {
		sections = append(sections, section{secShard, encodeShard(*snap.Shard)})
	}

	headerLen := headerFixedLen + sectionEntryLen*len(sections) + 4 // + table CRC
	total := headerLen
	for _, s := range sections {
		total += len(s.payload)
	}

	out := make([]byte, 0, total)
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint16(out, FormatVersion)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(sections)))
	offset := uint64(headerLen)
	for _, s := range sections {
		out = binary.LittleEndian.AppendUint16(out, s.id)
		out = binary.LittleEndian.AppendUint16(out, 0) // reserved
		out = binary.LittleEndian.AppendUint64(out, offset)
		out = binary.LittleEndian.AppendUint64(out, uint64(len(s.payload)))
		out = binary.LittleEndian.AppendUint32(out, checksum(s.payload))
		offset += uint64(len(s.payload))
	}
	// The table CRC seals the header and section table, so a reader
	// detects damaged offsets before following them.
	out = binary.LittleEndian.AppendUint32(out, checksum(out))
	for _, s := range sections {
		out = append(out, s.payload...)
	}
	if len(out) != total {
		return nil, fmt.Errorf("lifestore: layout error: wrote %d bytes, planned %d", len(out), total)
	}
	return out, nil
}
