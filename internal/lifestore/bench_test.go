package lifestore

import "testing"

// BenchmarkLifestoreOpenAndQuery measures the cold-start path a server
// pays per snapshot: open (header + eager sections + index) plus one
// lazy single-ASN lookup.
func BenchmarkLifestoreOpenAndQuery(b *testing.B) {
	ds := testDataset(b, 1, false)
	snap := Capture(ds)
	img, err := Encode(snap)
	if err != nil {
		b.Fatal(err)
	}
	target := snap.Lives[len(snap.Lives)/2].ASN
	b.ReportAllocs()
	b.SetBytes(int64(len(img)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := OpenBytes(img)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok, err := st.Lookup(target); err != nil || !ok {
			b.Fatalf("AS%s: ok=%v err=%v", target, ok, err)
		}
	}
}

// BenchmarkLookup isolates the steady-state per-query cost once the
// store is open.
func BenchmarkLookup(b *testing.B) {
	ds := testDataset(b, 1, false)
	snap := Capture(ds)
	img, err := Encode(snap)
	if err != nil {
		b.Fatal(err)
	}
	st, err := OpenBytes(img)
	if err != nil {
		b.Fatal(err)
	}
	asns := st.ASNs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := st.Lookup(asns[i%len(asns)]); err != nil || !ok {
			b.Fatalf("lookup failed: ok=%v err=%v", ok, err)
		}
	}
}
