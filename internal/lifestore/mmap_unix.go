//go:build linux || darwin

package lifestore

import (
	"bytes"
	"fmt"
	"os"
	"syscall"
	"time"

	"parallellives/internal/obs"
)

// OpenMapped opens a snapshot with the whole file memory-mapped
// read-only instead of read through the file descriptor. Lookups then
// cost no read syscalls — the block region is paged in on demand and
// the pages are shared between every process mapping the same file, so
// N shard servers over one snapshot directory cost one page cache's
// worth of memory, not N. The mapping is private to the store and is
// released by Close.
func OpenMapped(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("lifestore: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("lifestore: %w", err)
	}
	size := info.Size()
	if size <= 0 {
		f.Close()
		return nil, fmt.Errorf("lifestore: opening %s: %w", path, corruptf("empty snapshot file"))
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("lifestore: mmap %s: %w", path, err)
	}
	// The mapping outlives the descriptor; the file can be closed now.
	f.Close()
	st, err := NewStore(bytes.NewReader(data))
	if err != nil {
		syscall.Munmap(data)
		return nil, fmt.Errorf("lifestore: opening %s: %w", path, err)
	}
	st.closer = munmapCloser{data: data}
	return st, nil
}

// munmapCloser releases a Store's mapping.
type munmapCloser struct{ data []byte }

func (c munmapCloser) Close() error { return syscall.Munmap(c.data) }

// OpenMappedObserved is OpenMapped plus the same instrumentation
// OpenObserved attaches: the open is timed into reg and every lookup
// publishes latency, outcome and bytes read.
func OpenMappedObserved(path string, reg *obs.Registry) (*Store, error) {
	if reg == nil {
		return OpenMapped(path)
	}
	start := time.Now()
	st, err := OpenMapped(path)
	reg.Histogram(MetricOpenSeconds,
		"Time to open a snapshot: header, eager sections, checksums.",
		nil).Observe(time.Since(start).Seconds())
	if err != nil {
		return nil, err
	}
	st.Instrument(reg)
	return st, nil
}
