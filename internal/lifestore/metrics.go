package lifestore

import (
	"time"

	"parallellives/internal/obs"
)

// Registry metric names the store publishes. Exported so servers and
// tests can read them back without string drift.
const (
	// MetricOpenSeconds times a snapshot open: header + eager-section
	// decode and checksum verification.
	MetricOpenSeconds = "parallellives_lifestore_open_seconds"
	// MetricLookupSeconds times one Lookup end to end (index search,
	// block read, checksum, decode).
	MetricLookupSeconds = "parallellives_lifestore_lookup_seconds"
	// MetricLookups counts lookups by outcome ("hit", "miss", "error").
	MetricLookups = "parallellives_lifestore_lookups_total"
	// MetricBlockBytes counts life-block bytes read off the snapshot.
	MetricBlockBytes = "parallellives_lifestore_block_read_bytes_total"
)

// storeMetrics holds the pre-resolved instrument handles for one store.
type storeMetrics struct {
	lookupSeconds *obs.Histogram
	hits          *obs.Counter
	misses        *obs.Counter
	errors        *obs.Counter
	blockBytes    *obs.Counter
}

// lookupBuckets spans the cold-read latency range: a block lookup is an
// index binary search plus one small ReadAt, so it sits in the µs–ms
// band rather than DefBuckets' ms–s band.
func lookupBuckets() []float64 { return obs.ExpBuckets(0.000001, 10, 8) }

// Instrument attaches a metrics registry to the store: every subsequent
// Lookup publishes its latency, outcome and bytes read. Safe to call
// while lookups are in flight (the handle swaps atomically); a nil
// registry detaches.
func (st *Store) Instrument(reg *obs.Registry) {
	if reg == nil {
		st.met.Store(nil)
		return
	}
	outcomes := reg.CounterVec(MetricLookups,
		"Snapshot lookups by outcome.", "outcome")
	st.met.Store(&storeMetrics{
		lookupSeconds: reg.Histogram(MetricLookupSeconds,
			"Latency of one snapshot lookup (index search, block read, checksum, decode).",
			lookupBuckets()),
		hits:   outcomes.With("hit"),
		misses: outcomes.With("miss"),
		errors: outcomes.With("error"),
		blockBytes: reg.Counter(MetricBlockBytes,
			"Life-block bytes read off the snapshot."),
	})
}

// OpenObserved is Open plus instrumentation: the open itself is timed
// into the registry and the returned store publishes its lookups there.
func OpenObserved(path string, reg *obs.Registry) (*Store, error) {
	if reg == nil {
		return Open(path)
	}
	start := time.Now()
	st, err := Open(path)
	reg.Histogram(MetricOpenSeconds,
		"Time to open a snapshot: header, eager sections, checksums.",
		nil).Observe(time.Since(start).Seconds())
	if err != nil {
		return nil, err
	}
	st.Instrument(reg)
	return st, nil
}
