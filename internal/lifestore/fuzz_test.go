package lifestore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"parallellives/internal/asn"
	"parallellives/internal/core"
	"parallellives/internal/dates"
	"parallellives/internal/intervals"
)

// fuzzSnapshot builds a small but fully featured snapshot by hand — a
// few ASNs with both admin and op lives — without running the pipeline,
// so the fuzz seeds are cheap and deterministic.
func fuzzSnapshot() *Snapshot {
	day := dates.MustParse
	snap := &Snapshot{
		Meta: Meta{
			FormatVersion: FormatVersion,
			Start:         day("2004-01-01"),
			End:           day("2006-01-01"),
			Timeout:       365,
			Visibility:    2,
			Scale:         0.01,
			Seed:          7,
		},
		Taxonomy: core.TaxonomyCounts{AdminComplete: 2, AdminPartial: 1, OpComplete: 2, OpPartial: 1},
	}
	for i, a := range []asn.ASN{64496, 64500, 65550} {
		start := day("2004-03-01").AddDays(40 * i)
		snap.Lives = append(snap.Lives, ASNLives{
			ASN: a,
			Admin: []AdminLife{{
				RIR:      asn.RIPENCC,
				CC:       "NL",
				OpaqueID: fmt.Sprintf("org-%d", i),
				RegDate:  start,
				Span:     intervals.Interval{Start: start, End: start.AddDays(300)},
				Open:     i == 2,
				Pieces:   1,
				Category: core.CatComplete,
			}},
			Op: []OpLife{{
				Span:     intervals.Interval{Start: start.AddDays(10), End: start.AddDays(250)},
				Category: core.CatPartial,
			}},
		})
	}
	snap.Meta.ASNCount = len(snap.Lives)
	snap.Meta.AdminLives = len(snap.Lives)
	snap.Meta.OpLives = len(snap.Lives)
	return snap
}

// fuzzImage is the encoded form of fuzzSnapshot.
func fuzzImage(tb testing.TB) []byte {
	tb.Helper()
	img, err := Encode(fuzzSnapshot())
	if err != nil {
		tb.Fatal(err)
	}
	return img
}

// FuzzOpenBytes pins the corruption contract of the whole open path: no
// input may panic OpenBytes, and every rejected input must carry the
// ErrCorrupt classification so callers (the reload path, the serve
// circuit breaker) can tell permanent damage from transient read
// errors. Inputs that do open are walked end to end — every indexed
// lookup plus the full Snapshot decode — which additionally must not
// panic, whatever the blocks contain.
func FuzzOpenBytes(f *testing.F) {
	img, err := Encode(fuzzSnapshot())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img)
	f.Add([]byte{})
	f.Add([]byte("ASNLIVES"))
	for _, cut := range []int{1, len(img) / 2, len(img) - 1} {
		f.Add(img[:cut])
	}
	for _, flip := range []int{9, headerFixedLen + 3, len(img) / 2, len(img) - 3} {
		mut := append([]byte(nil), img...)
		mut[flip] ^= 0x40
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := OpenBytes(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("OpenBytes error not ErrCorrupt-classified: %v", err)
			}
			return
		}
		for _, a := range st.ASNs() {
			_, _, _ = st.Lookup(a)
		}
		_ = st.VerifyBlocks()
		_, _ = st.Snapshot()
	})
}

// TestRegenerateFuzzCorpus rewrites the committed FuzzOpenBytes corpus
// from the current encoder when LIFESTORE_REGEN_CORPUS=1 is set, and is
// skipped otherwise. The corpus pins the truncated and bit-flipped
// shapes of a real encoded snapshot, so it must be refreshed whenever
// the format changes.
func TestRegenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("LIFESTORE_REGEN_CORPUS") == "" {
		t.Skip("set LIFESTORE_REGEN_CORPUS=1 to rewrite testdata/fuzz/FuzzOpenBytes")
	}
	img := fuzzImage(t)
	dir := filepath.Join("testdata", "fuzz", "FuzzOpenBytes")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("valid", img)
	write("truncated-header", img[:headerFixedLen-2])
	write("truncated-half", img[:len(img)/2])
	write("truncated-tail", img[:len(img)-1])
	flipped := append([]byte(nil), img...)
	flipped[headerFixedLen+5] ^= 0x08 // inside the section table
	write("bitflip-table", flipped)
	flipped = append([]byte(nil), img...)
	flipped[len(img)-6] ^= 0x80 // inside the last block
	write("bitflip-block", flipped)
}
