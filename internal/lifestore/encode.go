package lifestore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"parallellives/internal/dates"
)

// All checksums in the format are CRC-32C (Castagnoli).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

func checksum(b []byte) uint32 { return crc32.Checksum(b, crcTable) }

// enc accumulates a varint-encoded section payload.
type enc struct{ b []byte }

func (e *enc) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) varint(v int64)   { e.b = binary.AppendVarint(e.b, v) }
func (e *enc) byte(v uint8)     { e.b = append(e.b, v) }
func (e *enc) day(d dates.Day)  { e.varint(int64(d)) }
func (e *enc) count(n int)      { e.uvarint(uint64(n)) }
func (e *enc) float(f float64)  { e.uvarint(math.Float64bits(f)) }
func (e *enc) bool(v bool)      { e.byte(boolByte(v)) }

func (e *enc) string(s string) {
	e.count(len(s))
	e.b = append(e.b, s...)
}

// ints delta-encodes an integer series; daily alive counts move slowly,
// so deltas keep the series section small.
func (e *enc) ints(vs []int) {
	e.count(len(vs))
	prev := int64(0)
	for _, v := range vs {
		e.varint(int64(v) - prev)
		prev = int64(v)
	}
}

func boolByte(v bool) uint8 {
	if v {
		return 1
	}
	return 0
}

// dec consumes a varint-encoded section payload with a sticky error.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("lifestore: "+format, args...)
	}
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("truncated uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("truncated varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *dec) byte() uint8 {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("truncated byte at offset %d", d.off)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) day() dates.Day { return dates.Day(d.varint()) }
func (d *dec) float() float64 { return math.Float64frombits(d.uvarint()) }
func (d *dec) bool() bool     { return d.byte() != 0 }

// count reads a collection length and bounds it against the remaining
// payload so corrupt sizes cannot drive huge allocations.
func (d *dec) count() int {
	v := d.uvarint()
	if d.err == nil && v > uint64(len(d.b)-d.off) {
		d.fail("count %d exceeds remaining payload %d", v, len(d.b)-d.off)
		return 0
	}
	return int(v)
}

func (d *dec) string() string {
	n := d.count()
	if d.err != nil {
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *dec) ints() []int {
	n := d.count()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int, n)
	prev := int64(0)
	for i := range out {
		prev += d.varint()
		out[i] = int(prev)
	}
	return out
}

// done reports whether the whole payload was consumed cleanly.
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("lifestore: %d trailing bytes in section payload", len(d.b)-d.off)
	}
	return nil
}
