package lifestore

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"parallellives/internal/asn"
	"parallellives/internal/core"
	"parallellives/internal/pipeline"
)

// ErrCorrupt classifies every structural snapshot failure — bad magic,
// version or section-table shape, checksum mismatches, and block decode
// errors. Callers branch on it with errors.Is: corruption is permanent
// (reload or rebuild the snapshot), unlike a transient read error which
// a retry or circuit-breaker half-open may clear.
var ErrCorrupt = errors.New("corrupt snapshot")

// corruptf builds an ErrCorrupt-classified error.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Store is an opened snapshot. The small sections (metadata, health,
// taxonomy, series, index) are decoded eagerly at Open; per-ASN life
// blocks stay on disk and are read and checksummed individually on
// Lookup, so a cold single-ASN query touches only its own bytes.
//
// A Store is safe for concurrent use: all mutable state is built at Open
// and lookups go through io.ReaderAt.
type Store struct {
	r      io.ReaderAt
	closer io.Closer

	// met is the optional metrics attachment (see Instrument). An
	// atomic pointer so instrumentation can be added or removed while
	// concurrent lookups are in flight.
	met atomic.Pointer[storeMetrics]

	meta     Meta
	health   pipeline.Health
	taxonomy core.TaxonomyCounts
	series   *core.AliveSeries
	index    []indexEntry
	shard    *ShardInfo

	blocksOff uint64
	blocksLen uint64
	blocksCRC uint32
}

// Open opens a snapshot file for querying.
func Open(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("lifestore: %w", err)
	}
	st, err := NewStore(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("lifestore: opening %s: %w", path, err)
	}
	st.closer = f
	return st, nil
}

// OpenBytes opens an in-memory snapshot image, mostly for tests. Every
// failure is ErrCorrupt-classified: with the whole image in memory there
// are no transient reads, so any error — including a short read past the
// end of a truncated image — means the bytes themselves are damaged.
func OpenBytes(b []byte) (*Store, error) {
	st, err := NewStore(bytes.NewReader(b))
	if err != nil && !errors.Is(err, ErrCorrupt) {
		err = fmt.Errorf("%w: %w", ErrCorrupt, err)
	}
	return st, err
}

// NewStore reads the header, section table and eager sections from r,
// verifying every checksum it crosses. r must remain valid for the
// lifetime of the store.
func NewStore(r io.ReaderAt) (*Store, error) {
	fixed := make([]byte, headerFixedLen)
	if _, err := r.ReadAt(fixed, 0); err != nil {
		return nil, fmt.Errorf("reading header: %w", err)
	}
	if string(fixed[:8]) != magic {
		return nil, corruptf("not a lifestore snapshot (bad magic %q)", fixed[:8])
	}
	if v := binary.LittleEndian.Uint16(fixed[8:10]); v != FormatVersion {
		return nil, corruptf("unsupported snapshot format version %d (reader supports %d)", v, FormatVersion)
	}
	nsec := int(binary.LittleEndian.Uint16(fixed[10:12]))
	table := make([]byte, sectionEntryLen*nsec+4)
	if _, err := r.ReadAt(table, headerFixedLen); err != nil {
		return nil, fmt.Errorf("reading section table: %w", err)
	}
	sealed := append(append([]byte{}, fixed...), table[:len(table)-4]...)
	if got, want := checksum(sealed), binary.LittleEndian.Uint32(table[len(table)-4:]); got != want {
		return nil, corruptf("header checksum mismatch (got %08x, want %08x)", got, want)
	}

	st := &Store{r: r}
	seen := make(map[uint16]bool)
	for i := 0; i < nsec; i++ {
		entry := table[sectionEntryLen*i : sectionEntryLen*(i+1)]
		id := binary.LittleEndian.Uint16(entry[0:2])
		off := binary.LittleEndian.Uint64(entry[4:12])
		length := binary.LittleEndian.Uint64(entry[12:20])
		crc := binary.LittleEndian.Uint32(entry[20:24])
		if seen[id] {
			return nil, corruptf("duplicate section %d", id)
		}
		seen[id] = true

		if id == secBlocks {
			// The blocks section is the lazy one: record where it lives;
			// each block carries its own CRC, verified on Lookup.
			st.blocksOff, st.blocksLen, st.blocksCRC = off, length, crc
			continue
		}
		if id > secShard {
			continue // unknown additive section from a newer writer
		}
		payload := make([]byte, length)
		if _, err := r.ReadAt(payload, int64(off)); err != nil {
			return nil, fmt.Errorf("reading section %d: %w", id, err)
		}
		if got := checksum(payload); got != crc {
			return nil, corruptf("section %d checksum mismatch (got %08x, want %08x)", id, got, crc)
		}
		var err error
		switch id {
		case secMeta:
			st.meta, err = decodeMeta(payload)
		case secHealth:
			st.health, err = decodeHealth(payload)
		case secTaxonomy:
			st.taxonomy, err = decodeTaxonomy(payload)
		case secSeries:
			st.series, err = decodeSeries(payload)
		case secIndex:
			st.index, err = decodeIndex(payload)
		case secShard:
			var si ShardInfo
			if si, err = decodeShard(payload); err == nil {
				st.shard = &si
			}
		}
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				err = fmt.Errorf("%w: %w", ErrCorrupt, err)
			}
			return nil, err
		}
	}
	for id := secMeta; id <= secBlocks; id++ {
		if !seen[id] {
			return nil, corruptf("missing section %d", id)
		}
	}
	return st, nil
}

// Close releases the underlying file, if the store owns one.
func (st *Store) Close() error {
	if st.closer == nil {
		return nil
	}
	return st.closer.Close()
}

// Meta returns the snapshot metadata.
func (st *Store) Meta() Meta { return st.meta }

// Health returns the captured pipeline health report.
func (st *Store) Health() pipeline.Health { return st.health }

// Taxonomy returns the Table-3 counts.
func (st *Store) Taxonomy() core.TaxonomyCounts { return st.taxonomy }

// Series returns the daily alive series over the snapshot window.
func (st *Store) Series() *core.AliveSeries { return st.series }

// Shard returns the shard identity of a SaveSharded file, or nil for a
// plain unsharded snapshot.
func (st *Store) Shard() *ShardInfo { return st.shard }

// ASNCount returns the number of distinct ASNs with at least one life.
func (st *Store) ASNCount() int { return len(st.index) }

// ASNs lists every ASN in the snapshot in ascending order.
func (st *Store) ASNs() []asn.ASN {
	out := make([]asn.ASN, len(st.index))
	for i, e := range st.index {
		out[i] = e.asn
	}
	return out
}

// Lookup reads, verifies and decodes one ASN's block. The second result
// reports whether the ASN exists in the snapshot.
func (st *Store) Lookup(a asn.ASN) (ASNLives, bool, error) {
	m := st.met.Load()
	if m == nil {
		l, ok, _, err := st.lookup(a)
		return l, ok, err
	}
	start := time.Now()
	l, ok, n, err := st.lookup(a)
	m.lookupSeconds.Observe(time.Since(start).Seconds())
	switch {
	case err != nil:
		m.errors.Inc()
	case !ok:
		m.misses.Inc()
	default:
		m.hits.Inc()
		m.blockBytes.Add(int64(n))
	}
	return l, ok, err
}

// LookupContext is Lookup with cancellation: a request whose deadline
// already expired (or whose client went away) returns ctx.Err() before
// paying for the block read, so an overloaded server sheds dead work
// instead of decoding blocks nobody is waiting for.
func (st *Store) LookupContext(ctx context.Context, a asn.ASN) (ASNLives, bool, error) {
	if err := ctx.Err(); err != nil {
		return ASNLives{}, false, err
	}
	return st.Lookup(a)
}

// lookup is the uninstrumented read; n is the block bytes read.
func (st *Store) lookup(a asn.ASN) (l ASNLives, ok bool, n int, err error) {
	i := sort.Search(len(st.index), func(i int) bool { return st.index[i].asn >= a })
	if i >= len(st.index) || st.index[i].asn != a {
		return ASNLives{}, false, 0, nil
	}
	e := st.index[i]
	if e.off+e.length > st.blocksLen {
		return ASNLives{}, false, 0, fmt.Errorf("lifestore: %w", corruptf("AS%s block [%d,%d) outside blocks section of %d bytes",
			a, e.off, e.off+e.length, st.blocksLen))
	}
	buf := make([]byte, e.length)
	if _, err := st.r.ReadAt(buf, int64(st.blocksOff+e.off)); err != nil {
		return ASNLives{}, false, 0, fmt.Errorf("lifestore: reading AS%s block: %w", a, err)
	}
	l, err = decodeBlock(buf)
	if err != nil {
		return ASNLives{}, false, 0, fmt.Errorf("lifestore: AS%s block: %w", a, err)
	}
	if l.ASN != a {
		return ASNLives{}, false, 0, fmt.Errorf("lifestore: %w", corruptf("index points AS%s at a block for AS%s", a, l.ASN))
	}
	return l, true, len(buf), nil
}

// Snapshot decodes the entire store back into memory, verifying the
// whole-section blocks checksum on the way — the full-fidelity read that
// Diff-based round-trip proofs use.
func (st *Store) Snapshot() (*Snapshot, error) {
	blocks, err := st.readBlocks()
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{
		Meta:     st.meta,
		Health:   st.health,
		Taxonomy: st.taxonomy,
		Series:   st.series,
		Shard:    st.shard,
		Lives:    make([]ASNLives, 0, len(st.index)),
	}
	for _, e := range st.index {
		l, err := st.decodeIndexed(blocks, e)
		if err != nil {
			return nil, err
		}
		snap.Lives = append(snap.Lives, l)
	}
	return snap, nil
}

// readBlocks loads the whole blocks section and verifies its section
// checksum.
func (st *Store) readBlocks() ([]byte, error) {
	blocks := make([]byte, st.blocksLen)
	if _, err := st.r.ReadAt(blocks, int64(st.blocksOff)); err != nil {
		return nil, fmt.Errorf("lifestore: reading blocks section: %w", err)
	}
	if got := checksum(blocks); got != st.blocksCRC {
		return nil, fmt.Errorf("lifestore: %w", corruptf("blocks section checksum mismatch (got %08x, want %08x)", got, st.blocksCRC))
	}
	return blocks, nil
}

// decodeIndexed decodes one index entry's block out of the loaded
// blocks section.
func (st *Store) decodeIndexed(blocks []byte, e indexEntry) (ASNLives, error) {
	if e.off+e.length > st.blocksLen {
		return ASNLives{}, fmt.Errorf("lifestore: %w", corruptf("AS%s block outside blocks section", e.asn))
	}
	l, err := decodeBlock(blocks[e.off : e.off+e.length])
	if err != nil {
		return ASNLives{}, fmt.Errorf("lifestore: AS%s block: %w", e.asn, err)
	}
	if l.ASN != e.asn {
		return ASNLives{}, fmt.Errorf("lifestore: %w", corruptf("index points AS%s at a block for AS%s", e.asn, l.ASN))
	}
	return l, nil
}

// VerifyBlocks proves every byte of the lazy blocks section is intact:
// the whole-section checksum matches and each indexed block reads,
// checksums and decodes to the ASN the index claims. Open verifies only
// the eager sections; a hot reload calls VerifyBlocks before swapping a
// new snapshot in, so a half-written or bit-rotted file is rejected
// while the old generation keeps serving.
func (st *Store) VerifyBlocks() error {
	blocks, err := st.readBlocks()
	if err != nil {
		return err
	}
	for _, e := range st.index {
		if _, err := st.decodeIndexed(blocks, e); err != nil {
			return err
		}
	}
	return nil
}
