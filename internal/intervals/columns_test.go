package intervals

import (
	"math/rand"
	"testing"

	"parallellives/internal/dates"
)

// TestColumnsMatchSetAlgebra proves the columnar walks reproduce the AoS
// set operations exactly: for random sets, AppendSegments equals
// SplitByTimeout and AppendGaps equals GapLengths, row range by row
// range, across a spread of timeouts.
func TestColumnsMatchSetAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := dates.MustParse("2004-01-01")

	var cols Columns
	type rng2 struct{ lo, hi int }
	var ranges []rng2
	var sets []Set
	for i := 0; i < 200; i++ {
		var days []dates.Day
		d := base.AddDays(rng.Intn(50))
		for n := rng.Intn(40); n > 0; n-- {
			d = d.AddDays(1 + rng.Intn(60))
			days = append(days, d)
		}
		s := FromDays(days)
		lo := cols.Len()
		cols.AppendSet(s)
		ranges = append(ranges, rng2{lo: lo, hi: cols.Len()})
		sets = append(sets, s)
	}

	for i, s := range sets {
		lo, hi := ranges[i].lo, ranges[i].hi
		for r := lo; r < hi; r++ {
			if cols.At(r) != s[r-lo] {
				t.Fatalf("set %d row %d: %v != %v", i, r, cols.At(r), s[r-lo])
			}
		}
		gotGaps := cols.AppendGaps(nil, lo, hi)
		wantGaps := s.GapLengths()
		if len(gotGaps) != len(wantGaps) {
			t.Fatalf("set %d: %d gaps, want %d", i, len(gotGaps), len(wantGaps))
		}
		for k := range gotGaps {
			if gotGaps[k] != wantGaps[k] {
				t.Fatalf("set %d gap %d: %d != %d", i, k, gotGaps[k], wantGaps[k])
			}
		}
		for _, timeout := range []int{0, 1, 5, 30, 100, 10000} {
			got := cols.AppendSegments(nil, lo, hi, timeout)
			want := s.SplitByTimeout(timeout)
			if len(got) != len(want) {
				t.Fatalf("set %d timeout %d: %d segments, want %d", i, timeout, len(got), len(want))
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("set %d timeout %d seg %d: %v != %v", i, timeout, k, got[k], want[k])
				}
			}
		}
	}

	// Empty row ranges yield nothing.
	if got := cols.AppendSegments(nil, 3, 3, 30); got != nil {
		t.Fatalf("empty range segments = %v", got)
	}
	if got := cols.AppendGaps(nil, 3, 3); got != nil {
		t.Fatalf("empty range gaps = %v", got)
	}
}
