package intervals

import (
	"math/rand"
	"testing"
	"testing/quick"

	"parallellives/internal/dates"
)

func day(n int) dates.Day { return dates.Day(50000 + n) }

func iv(a, b int) Interval { return Interval{Start: day(a), End: day(b)} }

func TestNewPanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for inverted interval")
		}
	}()
	New(day(5), day(4))
}

func TestIntervalBasics(t *testing.T) {
	a := iv(10, 20)
	if a.Days() != 11 {
		t.Errorf("Days = %d, want 11", a.Days())
	}
	if !a.Contains(day(10)) || !a.Contains(day(20)) || a.Contains(day(21)) || a.Contains(day(9)) {
		t.Error("Contains wrong at boundaries")
	}
	if !a.Overlaps(iv(20, 30)) || a.Overlaps(iv(21, 30)) {
		t.Error("Overlaps wrong at boundary")
	}
	if !a.ContainsInterval(iv(10, 20)) || a.ContainsInterval(iv(10, 21)) {
		t.Error("ContainsInterval wrong")
	}
	x, ok := a.Intersect(iv(15, 30))
	if !ok || x != iv(15, 20) {
		t.Errorf("Intersect = %v, %v", x, ok)
	}
	if _, ok := a.Intersect(iv(25, 30)); ok {
		t.Error("Intersect of disjoint should be empty")
	}
}

func TestNormalize(t *testing.T) {
	s := Normalize([]Interval{iv(10, 12), iv(14, 16), iv(13, 13), iv(30, 35), iv(31, 32)})
	want := Set{iv(10, 16), iv(30, 35)}
	if !s.Equal(want) {
		t.Errorf("Normalize = %v, want %v", s, want)
	}
	if !s.Valid() {
		t.Error("Normalize result invalid")
	}
	if Normalize(nil) != nil {
		t.Error("Normalize(nil) should be nil")
	}
}

func TestSetOps(t *testing.T) {
	a := Normalize([]Interval{iv(0, 10), iv(20, 30)})
	b := Normalize([]Interval{iv(5, 25), iv(40, 45)})

	if got := a.Union(b); !got.Equal(Set{iv(0, 30), iv(40, 45)}) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(Set{iv(5, 10), iv(20, 25)}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Subtract(b); !got.Equal(Set{iv(0, 4), iv(26, 30)}) {
		t.Errorf("Subtract = %v", got)
	}
	if got := b.Subtract(a); !got.Equal(Set{iv(11, 19), iv(40, 45)}) {
		t.Errorf("Subtract reverse = %v", got)
	}
}

func TestSubtractSplitsMiddle(t *testing.T) {
	a := Set{iv(0, 100)}
	b := Set{iv(10, 20), iv(40, 50)}
	got := a.Subtract(b)
	want := Set{iv(0, 9), iv(21, 39), iv(51, 100)}
	if !got.Equal(want) {
		t.Errorf("Subtract = %v, want %v", got, want)
	}
}

func TestGapsAndCoverage(t *testing.T) {
	s := Set{iv(0, 9), iv(20, 29), iv(40, 49)}
	gaps := s.Gaps()
	if len(gaps) != 2 || gaps[0] != iv(10, 19) || gaps[1] != iv(30, 39) {
		t.Errorf("Gaps = %v", gaps)
	}
	gl := s.GapLengths()
	if len(gl) != 2 || gl[0] != 10 || gl[1] != 10 {
		t.Errorf("GapLengths = %v", gl)
	}
	if c := s.CoverageOf(iv(0, 49)); c != 0.6 {
		t.Errorf("CoverageOf = %v, want 0.6", c)
	}
	if c := s.CoverageOf(iv(0, 9)); c != 1.0 {
		t.Errorf("full coverage = %v", c)
	}
	if c := Set(nil).CoverageOf(iv(0, 9)); c != 0 {
		t.Errorf("empty coverage = %v", c)
	}
}

func TestContainsBinarySearch(t *testing.T) {
	s := Set{iv(0, 9), iv(20, 29), iv(40, 49)}
	for n := -5; n < 60; n++ {
		want := (n >= 0 && n <= 9) || (n >= 20 && n <= 29) || (n >= 40 && n <= 49)
		if got := s.Contains(day(n)); got != want {
			t.Errorf("Contains(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestFromDays(t *testing.T) {
	days := []dates.Day{day(3), day(1), day(2), day(2), day(10), day(11), day(20)}
	s := FromDays(days)
	want := Set{iv(1, 3), iv(10, 11), iv(20, 20)}
	if !s.Equal(want) {
		t.Errorf("FromDays = %v, want %v", s, want)
	}
	if FromDays(nil) != nil {
		t.Error("FromDays(nil) should be nil")
	}
}

func TestSplitByTimeout(t *testing.T) {
	// Activity runs with gaps of 5, 30 and 31 days.
	s := Set{iv(0, 10), iv(16, 20), iv(51, 60), iv(92, 95)}
	// timeout 30: gap of 5 bridged, gap of 30 bridged, gap of 31 splits.
	got := s.SplitByTimeout(30)
	if len(got) != 2 || got[0] != iv(0, 60) || got[1] != iv(92, 95) {
		t.Errorf("SplitByTimeout(30) = %v", got)
	}
	// timeout 4: all gaps split.
	got = s.SplitByTimeout(4)
	if len(got) != 4 {
		t.Errorf("SplitByTimeout(4) = %v", got)
	}
	// timeout large: single segment.
	got = s.SplitByTimeout(1000)
	if len(got) != 1 || got[0] != iv(0, 95) {
		t.Errorf("SplitByTimeout(1000) = %v", got)
	}
	if Set(nil).SplitByTimeout(30) != nil {
		t.Error("empty set should split to nil")
	}
}

func TestSpan(t *testing.T) {
	s := Set{iv(5, 9), iv(20, 29)}
	sp, ok := s.Span()
	if !ok || sp != iv(5, 29) {
		t.Errorf("Span = %v, %v", sp, ok)
	}
	if _, ok := Set(nil).Span(); ok {
		t.Error("empty span should be not-ok")
	}
}

// randomSet builds a small random set of days for property tests.
func randomDays(r *rand.Rand) []dates.Day {
	n := r.Intn(40)
	out := make([]dates.Day, n)
	for i := range out {
		out[i] = day(r.Intn(120))
	}
	return out
}

func TestQuickAlgebraLaws(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	// For sets built from day lists, set algebra must agree with the
	// equivalent day-by-day boolean operations.
	f := func(seedA, seedB int64) bool {
		ra, rb := rand.New(rand.NewSource(seedA)), rand.New(rand.NewSource(seedB))
		a, b := FromDays(randomDays(ra)), FromDays(randomDays(rb))
		if !a.Valid() || !b.Valid() {
			return false
		}
		u, x, sub := a.Union(b), a.Intersect(b), a.Subtract(b)
		if !u.Valid() || !x.Valid() || !sub.Valid() {
			return false
		}
		for n := -1; n <= 121; n++ {
			d := day(n)
			ina, inb := a.Contains(d), b.Contains(d)
			if u.Contains(d) != (ina || inb) {
				return false
			}
			if x.Contains(d) != (ina && inb) {
				return false
			}
			if sub.Contains(d) != (ina && !inb) {
				return false
			}
		}
		// Cardinality laws.
		if u.TotalDays() != a.TotalDays()+b.TotalDays()-x.TotalDays() {
			return false
		}
		if sub.TotalDays() != a.TotalDays()-x.TotalDays() {
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSplitByTimeoutCoversSameSpanDays(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64, timeoutRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		s := FromDays(randomDays(r))
		timeout := int(timeoutRaw % 40)
		segs := s.SplitByTimeout(timeout)
		// Segments must be ordered, disjoint, each containing at least one
		// original covered day at both ends, with inter-segment gaps
		// strictly greater than the timeout.
		for i, sg := range segs {
			if !s.Contains(sg.Start) || !s.Contains(sg.End) {
				return false
			}
			if i > 0 {
				gap := sg.Start.Sub(segs[i-1].End) - 1
				if gap <= timeout {
					return false
				}
			}
		}
		// Union of segments must cover every original day.
		cover := Normalize(segs)
		for _, ivl := range s {
			for d := ivl.Start; d <= ivl.End; d++ {
				if !cover.Contains(d) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
