package intervals

import "parallellives/internal/dates"

// Columns is the structure-of-arrays form of many interval sequences
// flattened into parallel start/end day arrays. Aggregations that walk
// millions of intervals — timeout segmentation, gap statistics — touch
// two dense day arrays instead of chasing one small heap slice per ASN,
// and reuse one backing allocation for the whole corpus.
//
// Rows are grouped by the caller (typically one contiguous row range per
// ASN, tracked in an external offset table); within a group rows must
// keep the Set invariants: ascending, disjoint, non-adjacent. The AoS
// Interval stays the boundary type — At converts a row back.
type Columns struct {
	Start []dates.Day
	End   []dates.Day
}

// Len returns the number of rows.
func (c *Columns) Len() int { return len(c.Start) }

// Reset empties the columns, keeping their backing arrays for reuse.
func (c *Columns) Reset() {
	c.Start = c.Start[:0]
	c.End = c.End[:0]
}

// Grow ensures capacity for n additional rows.
func (c *Columns) Grow(n int) {
	if cap(c.Start)-len(c.Start) < n {
		next := make([]dates.Day, len(c.Start), len(c.Start)+n)
		copy(next, c.Start)
		c.Start = next
	}
	if cap(c.End)-len(c.End) < n {
		next := make([]dates.Day, len(c.End), len(c.End)+n)
		copy(next, c.End)
		c.End = next
	}
}

// Append adds one interval as a new row.
func (c *Columns) Append(iv Interval) {
	c.Start = append(c.Start, iv.Start)
	c.End = append(c.End, iv.End)
}

// AppendSet adds every interval of a normalized set as consecutive rows.
func (c *Columns) AppendSet(s Set) {
	for _, iv := range s {
		c.Start = append(c.Start, iv.Start)
		c.End = append(c.End, iv.End)
	}
}

// At returns row i as an interval.
func (c *Columns) At(i int) Interval { return Interval{Start: c.Start[i], End: c.End[i]} }

// AppendGaps appends to dst the lengths, in days, of the gaps between
// consecutive rows of [lo, hi) — the columnar equivalent of GapLengths
// for the set stored in that row range, allocating only when dst grows.
func (c *Columns) AppendGaps(dst []int, lo, hi int) []int {
	for r := lo + 1; r < hi; r++ {
		dst = append(dst, c.Start[r].Sub(c.End[r-1])-1)
	}
	return dst
}

// AppendSegments appends to dst the timeout-bridged segments of rows
// [lo, hi) — the columnar equivalent of Set.SplitByTimeout for the set
// stored in that row range, allocating only when dst grows.
func (c *Columns) AppendSegments(dst []Interval, lo, hi, timeout int) []Interval {
	if lo >= hi {
		return dst
	}
	cur := Interval{Start: c.Start[lo], End: c.End[lo]}
	for r := lo + 1; r < hi; r++ {
		if c.Start[r].Sub(cur.End)-1 > timeout {
			dst = append(dst, cur)
			cur = Interval{Start: c.Start[r], End: c.End[r]}
		} else {
			cur.End = c.End[r]
		}
	}
	return append(dst, cur)
}
