package intervals

import (
	"math/rand"
	"testing"

	"parallellives/internal/dates"
)

func benchSets(n int) (Set, Set) {
	r := rand.New(rand.NewSource(1))
	mk := func() Set {
		days := make([]dates.Day, n)
		for i := range days {
			days[i] = dates.Day(50000 + r.Intn(n*3))
		}
		return FromDays(days)
	}
	return mk(), mk()
}

func BenchmarkIntersect(b *testing.B) {
	x, y := benchSets(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Intersect(y)
	}
}

func BenchmarkSubtract(b *testing.B) {
	x, y := benchSets(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Subtract(y)
	}
}

func BenchmarkSplitByTimeout(b *testing.B) {
	x, _ := benchSets(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.SplitByTimeout(30)
	}
}
