// Package intervals implements closed day-interval sets.
//
// Both the administrative and the operational life of an ASN are unions of
// day intervals, and the paper's joint analysis (§6) is interval algebra:
// containment, overlap, gaps, and coverage ratios. Intervals are closed on
// both ends — an allocation that starts and ends on the same day lasted
// one day — which matches the day granularity of delegation files and of
// daily BGP activity.
package intervals

import (
	"fmt"
	"sort"

	"parallellives/internal/dates"
)

// Interval is a closed range of days [Start, End], End >= Start.
type Interval struct {
	Start, End dates.Day
}

// New returns the closed interval [start, end]; it panics if end < start,
// which always indicates a programming error upstream.
func New(start, end dates.Day) Interval {
	if end < start {
		panic(fmt.Sprintf("intervals: end %s before start %s", end, start))
	}
	return Interval{Start: start, End: end}
}

// Days returns the number of days covered (inclusive of both ends).
func (iv Interval) Days() int { return iv.End.Sub(iv.Start) + 1 }

// Contains reports whether day d falls within the interval.
func (iv Interval) Contains(d dates.Day) bool { return d >= iv.Start && d <= iv.End }

// ContainsInterval reports whether other lies entirely within iv.
func (iv Interval) ContainsInterval(other Interval) bool {
	return other.Start >= iv.Start && other.End <= iv.End
}

// Overlaps reports whether iv and other share at least one day.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Start <= other.End && other.Start <= iv.End
}

// Intersect returns the overlap of two intervals and whether it is non-empty.
func (iv Interval) Intersect(other Interval) (Interval, bool) {
	s := dates.Max(iv.Start, other.Start)
	e := dates.Min(iv.End, other.End)
	if e < s {
		return Interval{}, false
	}
	return Interval{Start: s, End: e}, true
}

// String renders the interval as "start..end".
func (iv Interval) String() string {
	return iv.Start.String() + ".." + iv.End.String()
}

// Set is a normalized sequence of intervals: sorted by Start, pairwise
// disjoint, and non-adjacent (adjacent intervals are merged). The zero
// value is an empty set ready to use.
type Set []Interval

// Normalize sorts and coalesces an arbitrary interval slice into a Set.
// Overlapping and adjacent (gap of zero days) intervals are merged.
func Normalize(ivs []Interval) Set {
	if len(ivs) == 0 {
		return nil
	}
	s := make([]Interval, len(ivs))
	copy(s, ivs)
	sort.Slice(s, func(i, j int) bool {
		if s[i].Start != s[j].Start {
			return s[i].Start < s[j].Start
		}
		return s[i].End < s[j].End
	})
	out := s[:1]
	for _, iv := range s[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End+1 { // overlapping or adjacent
			if iv.End > last.End {
				last.End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return Set(out)
}

// Add returns the set with iv merged in.
func (s Set) Add(iv Interval) Set {
	return Normalize(append(append([]Interval(nil), s...), iv))
}

// Contains reports whether any interval in the set covers day d.
func (s Set) Contains(d dates.Day) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i].End >= d })
	return i < len(s) && s[i].Contains(d)
}

// TotalDays returns the number of distinct days covered by the set.
func (s Set) TotalDays() int {
	n := 0
	for _, iv := range s {
		n += iv.Days()
	}
	return n
}

// Span returns the interval from the first covered day to the last, and
// false if the set is empty.
func (s Set) Span() (Interval, bool) {
	if len(s) == 0 {
		return Interval{}, false
	}
	return Interval{Start: s[0].Start, End: s[len(s)-1].End}, true
}

// Union merges two sets.
func (s Set) Union(other Set) Set {
	return Normalize(append(append([]Interval(nil), s...), other...))
}

// Intersect returns the set of days covered by both sets.
func (s Set) Intersect(other Set) Set {
	var out []Interval
	i, j := 0, 0
	for i < len(s) && j < len(other) {
		if iv, ok := s[i].Intersect(other[j]); ok {
			out = append(out, iv)
		}
		if s[i].End < other[j].End {
			i++
		} else {
			j++
		}
	}
	return Set(out)
}

// Subtract returns the days covered by s but not by other.
func (s Set) Subtract(other Set) Set {
	var out []Interval
	j := 0
	for _, iv := range s {
		cur := iv
		for j < len(other) && other[j].End < cur.Start {
			j++
		}
		k := j
		for k < len(other) && other[k].Start <= cur.End {
			o := other[k]
			if o.Start > cur.Start {
				out = append(out, Interval{Start: cur.Start, End: o.Start - 1})
			}
			if o.End >= cur.End {
				cur.Start = cur.End + 1 // fully consumed
				break
			}
			cur.Start = o.End + 1
			k++
		}
		if cur.Start <= cur.End {
			out = append(out, cur)
		}
	}
	return Set(out)
}

// Gaps returns the maximal uncovered intervals strictly between covered
// intervals of the set (not the open space before the first or after the
// last interval).
func (s Set) Gaps() []Interval {
	if len(s) < 2 {
		return nil
	}
	out := make([]Interval, 0, len(s)-1)
	for i := 1; i < len(s); i++ {
		out = append(out, Interval{Start: s[i-1].End + 1, End: s[i].Start - 1})
	}
	return out
}

// CoverageOf returns the fraction of the days of outer covered by s,
// counting only days inside outer. Returns 0 for an empty outer interval.
func (s Set) CoverageOf(outer Interval) float64 {
	total := outer.Days()
	if total <= 0 {
		return 0
	}
	covered := s.Intersect(Set{outer}).TotalDays()
	return float64(covered) / float64(total)
}

// FromDays builds a Set out of an unsorted list of individual active days,
// merging consecutive days into runs. This is how daily BGP activity is
// compacted into interval form.
func FromDays(days []dates.Day) Set {
	if len(days) == 0 {
		return nil
	}
	d := make([]dates.Day, len(days))
	copy(d, days)
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	var out []Interval
	run := Interval{Start: d[0], End: d[0]}
	for _, x := range d[1:] {
		switch {
		case x == run.End || x == run.End+1:
			run.End = x
		default:
			out = append(out, run)
			run = Interval{Start: x, End: x}
		}
	}
	out = append(out, run)
	return Set(out)
}

// SplitByTimeout re-segments the set using an inactivity timeout: runs
// separated by a gap of strictly more than timeout days are distinct
// segments, while smaller gaps are bridged. This implements the paper's
// §4.2 rule: "an ASN starts a new operational lifespan only if it
// reappears in BGP after > timeout days of inactivity."
func (s Set) SplitByTimeout(timeout int) []Interval {
	if len(s) == 0 {
		return nil
	}
	out := make([]Interval, 0, len(s))
	cur := s[0]
	for _, iv := range s[1:] {
		gap := iv.Start.Sub(cur.End) - 1
		if gap > timeout {
			out = append(out, cur)
			cur = iv
		} else {
			cur.End = iv.End
		}
	}
	out = append(out, cur)
	return out
}

// GapLengths returns the lengths, in days, of all gaps in the set.
func (s Set) GapLengths() []int {
	gaps := s.Gaps()
	out := make([]int, len(gaps))
	for i, g := range gaps {
		out[i] = g.Days()
	}
	return out
}

// Equal reports whether two sets cover exactly the same days.
func (s Set) Equal(other Set) bool {
	if len(s) != len(other) {
		return false
	}
	for i := range s {
		if s[i] != other[i] {
			return false
		}
	}
	return true
}

// Valid reports whether the set upholds its normalization invariants.
// Intended for tests and debugging.
func (s Set) Valid() bool {
	for i, iv := range s {
		if iv.End < iv.Start {
			return false
		}
		if i > 0 && iv.Start <= s[i-1].End+1 {
			return false
		}
	}
	return true
}
