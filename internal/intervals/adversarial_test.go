package intervals

import (
	"testing"

	"parallellives/internal/dates"
)

// These tests poke the interval algebra at its boundaries: empty sets,
// single-day intervals, and spans that touch without overlapping. Bugs
// here would surface as off-by-one-day errors in lifetime taxonomy.

func onDay(s string) dates.Day { return dates.MustParse(s) }

func one(s string) Interval { return New(onDay(s), onDay(s)) }

func TestEmptySetAlgebra(t *testing.T) {
	var empty Set
	full := Normalize([]Interval{{onDay("2010-01-01"), onDay("2010-12-31")}})

	if got := empty.Union(empty); len(got) != 0 {
		t.Errorf("empty ∪ empty = %v, want empty", got)
	}
	if got := empty.Union(full); !got.Equal(full) {
		t.Errorf("empty ∪ full = %v, want full", got)
	}
	if got := empty.Intersect(full); len(got) != 0 {
		t.Errorf("empty ∩ full = %v, want empty", got)
	}
	if got := full.Intersect(empty); len(got) != 0 {
		t.Errorf("full ∩ empty = %v, want empty", got)
	}
	if got := empty.Subtract(full); len(got) != 0 {
		t.Errorf("empty − full = %v, want empty", got)
	}
	if got := full.Subtract(empty); !got.Equal(full) {
		t.Errorf("full − empty = %v, want full", got)
	}
	if got := empty.Gaps(); got != nil {
		t.Errorf("gaps of empty = %v, want nil", got)
	}
	if got := empty.SplitByTimeout(30); got != nil {
		t.Errorf("timeout split of empty = %v, want nil", got)
	}
	if empty.Contains(onDay("2010-06-01")) {
		t.Error("empty set claims to contain a day")
	}
	if empty.TotalDays() != 0 {
		t.Errorf("empty TotalDays = %d", empty.TotalDays())
	}
	if _, ok := empty.Span(); ok {
		t.Error("empty set reports a span")
	}
	if got := empty.CoverageOf(New(onDay("2010-01-01"), onDay("2010-12-31"))); got != 0 {
		t.Errorf("empty coverage = %g, want 0", got)
	}
	if !empty.Valid() {
		t.Error("empty set is not Valid")
	}
	if Normalize(nil) != nil {
		t.Error("Normalize(nil) is not nil")
	}
	if FromDays(nil) != nil {
		t.Error("FromDays(nil) is not nil")
	}
}

func TestSingleDayIntervals(t *testing.T) {
	iv := one("2010-06-15")
	if iv.Days() != 1 {
		t.Fatalf("single-day interval spans %d days", iv.Days())
	}
	if !iv.Contains(onDay("2010-06-15")) {
		t.Error("single-day interval misses its own day")
	}
	if !iv.Overlaps(iv) {
		t.Error("single-day interval does not overlap itself")
	}

	// A set built purely of isolated days.
	s := Normalize([]Interval{one("2010-01-01"), one("2010-01-03"), one("2010-01-05")})
	if len(s) != 3 || s.TotalDays() != 3 {
		t.Fatalf("isolated days normalized to %v", s)
	}
	if got := s.GapLengths(); len(got) != 2 || got[0] != 1 || got[1] != 1 {
		t.Errorf("gap lengths = %v, want [1 1]", got)
	}
	// timeout 0 bridges nothing: three one-day segments survive.
	if got := s.SplitByTimeout(0); len(got) != 3 {
		t.Errorf("timeout 0 split = %v, want 3 segments", got)
	}
	// timeout 1 bridges the one-day gaps into a single segment.
	if got := s.SplitByTimeout(1); len(got) != 1 || got[0] != New(onDay("2010-01-01"), onDay("2010-01-05")) {
		t.Errorf("timeout 1 split = %v, want one 5-day segment", got)
	}
	// Subtracting the middle day splits nothing new but keeps 2 days.
	rest := s.Subtract(Set{one("2010-01-03")})
	if rest.TotalDays() != 2 || !rest.Valid() {
		t.Errorf("subtracting the middle isolated day left %v", rest)
	}
	// A single repeated day collapses.
	if got := FromDays([]dates.Day{onDay("2010-01-01"), onDay("2010-01-01")}); got.TotalDays() != 1 {
		t.Errorf("repeated day compacts to %v", got)
	}
	// Full self-coverage of a one-day window.
	if got := (Set{iv}).CoverageOf(iv); got != 1 {
		t.Errorf("one-day self coverage = %g, want 1", got)
	}
}

// TestTouchingNotOverlapping pins the closed-interval adjacency rules:
// [a,b] and [b+1,c] share no day, but normalization merges them because
// no gap separates them.
func TestTouchingNotOverlapping(t *testing.T) {
	a := New(onDay("2010-01-01"), onDay("2010-01-10"))
	b := New(onDay("2010-01-11"), onDay("2010-01-20"))
	if a.Overlaps(b) || b.Overlaps(a) {
		t.Error("adjacent intervals report overlap")
	}
	if _, ok := a.Intersect(b); ok {
		t.Error("adjacent intervals report a non-empty intersection")
	}

	// Union of adjacent spans coalesces into one interval, no gap.
	u := (Set{a}).Union(Set{b})
	if len(u) != 1 || u[0] != New(onDay("2010-01-01"), onDay("2010-01-20")) {
		t.Fatalf("adjacent union = %v, want one merged interval", u)
	}
	if got := u.Gaps(); got != nil {
		t.Errorf("merged adjacency has gaps %v", got)
	}
	// But set intersection of the two sides stays empty.
	if got := (Set{a}).Intersect(Set{b}); len(got) != 0 {
		t.Errorf("adjacent set intersection = %v, want empty", got)
	}
	// Subtracting one side of a merged run gives back exactly the other.
	if got := u.Subtract(Set{b}); !got.Equal(Set{a}) {
		t.Errorf("merged − right = %v, want %v", got, Set{a})
	}
	if got := u.Subtract(Set{a}); !got.Equal(Set{b}) {
		t.Errorf("merged − left = %v, want %v", got, Set{b})
	}

	// Sharing exactly one boundary day IS an overlap of one day.
	c := New(onDay("2010-01-10"), onDay("2010-01-15"))
	if !a.Overlaps(c) {
		t.Error("intervals sharing a boundary day do not overlap")
	}
	if got, ok := a.Intersect(c); !ok || got.Days() != 1 || got.Start != onDay("2010-01-10") {
		t.Errorf("boundary intersection = %v ok=%v, want the single shared day", got, ok)
	}

	// SplitByTimeout at the exact gap length: a ends 01-10, the next run
	// starts 01-21, a ten-day gap. Timeout strictly below keeps the
	// split; timeout equal to the gap bridges it.
	s := Normalize([]Interval{a, {onDay("2010-01-21"), onDay("2010-01-25")}})
	if len(s) != 2 {
		t.Fatalf("ten-day gap merged away: %v", s)
	}
	if got := s.SplitByTimeout(9); len(got) != 2 {
		t.Errorf("9-day timeout over 10-day gap = %v, want 2 segments", got)
	}
	if got := s.SplitByTimeout(10); len(got) != 1 {
		t.Errorf("10-day timeout over 10-day gap = %v, want 1 segment", got)
	}
}

// TestSubtractBoundaries exercises Subtract where the subtrahend clips
// exactly at interval edges.
func TestSubtractBoundaries(t *testing.T) {
	s := Set{New(onDay("2010-01-01"), onDay("2010-01-31"))}

	// Clip exactly the first day.
	got := s.Subtract(Set{one("2010-01-01")})
	if !got.Equal(Set{New(onDay("2010-01-02"), onDay("2010-01-31"))}) {
		t.Errorf("minus first day = %v", got)
	}
	// Clip exactly the last day.
	got = s.Subtract(Set{one("2010-01-31")})
	if !got.Equal(Set{New(onDay("2010-01-01"), onDay("2010-01-30"))}) {
		t.Errorf("minus last day = %v", got)
	}
	// Subtract the entire interval: empty.
	if got = s.Subtract(s); len(got) != 0 {
		t.Errorf("self-subtraction = %v", got)
	}
	// Subtract a superset: empty.
	if got = s.Subtract(Set{New(onDay("2009-12-01"), onDay("2010-02-28"))}); len(got) != 0 {
		t.Errorf("superset subtraction = %v", got)
	}
	// Subtrahend touching but outside (adjacent on both flanks): no-op.
	flanks := Normalize([]Interval{
		{onDay("2009-12-01"), onDay("2009-12-31")},
		{onDay("2010-02-01"), onDay("2010-02-28")},
	})
	if got = s.Subtract(flanks); !got.Equal(s) {
		t.Errorf("adjacent-outside subtraction = %v, want unchanged", got)
	}
	// Single interior day removed splits into two valid pieces.
	got = s.Subtract(Set{one("2010-01-15")})
	if len(got) != 2 || !got.Valid() || got.TotalDays() != 30 {
		t.Errorf("interior-day subtraction = %v", got)
	}
}
