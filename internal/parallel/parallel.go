// Package parallel provides the bounded worker-pool and deterministic
// ordered-merge primitives the pipeline's sharded stages are built on.
// The design contract, shared by every helper here, is that parallel
// execution must be *invisible in the output*: a computation split into
// shards and recombined with these primitives produces bit-for-bit the
// result of the sequential run, for any worker count and any goroutine
// schedule. The primitives therefore fix everything the scheduler could
// otherwise make nondeterministic — result order (index-addressed),
// error selection (lowest failing index wins), and merge tie-breaking
// (lower-indexed input first).
package parallel

import (
	"context"
	"errors"
	"sync"
)

// Range is one contiguous shard [Lo, Hi) of an indexed workload.
type Range struct {
	Lo, Hi int
}

// Len returns the number of items in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Shards splits n items into at most workers contiguous near-equal
// ranges, in order. Fewer ranges are returned when n < workers; zero or
// negative n yields nil. The first n%workers shards are one item longer,
// so shard sizes differ by at most one — the balanced static partition
// that suits uniform per-item cost (days of a scan, ASN groups of a
// segmentation).
func Shards(n, workers int) []Range {
	if n <= 0 {
		return nil
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	out := make([]Range, 0, workers)
	base, extra := n/workers, n%workers
	lo := 0
	for i := 0; i < workers; i++ {
		size := base
		if i < extra {
			size++
		}
		out = append(out, Range{Lo: lo, Hi: lo + size})
		lo += size
	}
	return out
}

// ForEach runs fn(ctx, i) for every i in [0, n) on at most workers
// goroutines (workers < 1 means 1; workers == 1 runs inline with no
// goroutines). The context passed to fn is cancelled as soon as any call
// returns an error or the caller's ctx ends; ForEach always waits for
// every started call to return before it does.
//
// Error selection is deterministic: when several shards fail, the error
// of the lowest failing index is returned, independent of which
// goroutine failed first on the clock. A caller's cancelled ctx returns
// ctx.Err() only when no shard error outranks it.
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	caller := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	var (
		next int
		mu   sync.Mutex
		wg   sync.WaitGroup
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				if ctx.Err() != nil {
					return // cancelled before this shard started
				}
				if err := fn(ctx, i); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
	wg.Wait()
	// Prefer the lowest-indexed real failure: shards that merely observed
	// the cancellation triggered by another shard's error must not mask
	// it, whatever order the scheduler ran them in.
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
	}
	if err := caller.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn over [0, n) under the ForEach execution contract and
// returns the results in index order — the shape a sharded stage uses to
// compute per-shard partials before a deterministic merge.
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, n, workers, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MergeSorted k-way merges already-sorted slices into one sorted slice.
// The merge is stable across inputs: on ties, the element from the
// lower-indexed part comes first. Combined with a stable per-part sort,
// this reproduces exactly what a sequential concatenate-then-stable-sort
// over the same parts would produce — the property the restore stage's
// by-ASN run merge relies on for byte-identical output.
func MergeSorted[T any](less func(a, b T) bool, parts ...[]T) []T {
	total := 0
	nonEmpty := 0
	for _, p := range parts {
		total += len(p)
		if len(p) > 0 {
			nonEmpty++
		}
	}
	if total == 0 {
		return nil
	}
	if nonEmpty == 1 {
		for _, p := range parts {
			if len(p) > 0 {
				return append(make([]T, 0, len(p)), p...)
			}
		}
	}
	out := make([]T, 0, total)
	heads := make([]int, len(parts))
	for len(out) < total {
		best := -1
		for i, p := range parts {
			if heads[i] >= len(p) {
				continue
			}
			// Strict less keeps ties on the lower-indexed part.
			if best == -1 || less(p[heads[i]], parts[best][heads[best]]) {
				best = i
			}
		}
		out = append(out, parts[best][heads[best]])
		heads[best]++
	}
	return out
}
