package parallel

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
)

func TestShardsPartition(t *testing.T) {
	for _, tc := range []struct {
		n, workers int
		want       int // shard count
	}{
		{0, 4, 0}, {-3, 4, 0}, {1, 4, 1}, {4, 4, 4}, {5, 4, 4},
		{10, 3, 3}, {10, 1, 1}, {7, 0, 1}, {100, 8, 8},
	} {
		got := Shards(tc.n, tc.workers)
		if len(got) != tc.want {
			t.Fatalf("Shards(%d,%d): %d shards, want %d", tc.n, tc.workers, len(got), tc.want)
		}
		// Contiguous cover, sizes within one of each other.
		lo := 0
		minSize, maxSize := 1<<31, 0
		for _, r := range got {
			if r.Lo != lo {
				t.Fatalf("Shards(%d,%d): gap at %d (got Lo=%d)", tc.n, tc.workers, lo, r.Lo)
			}
			if r.Len() <= 0 {
				t.Fatalf("Shards(%d,%d): empty shard %+v", tc.n, tc.workers, r)
			}
			if r.Len() < minSize {
				minSize = r.Len()
			}
			if r.Len() > maxSize {
				maxSize = r.Len()
			}
			lo = r.Hi
		}
		if tc.want > 0 {
			if lo != tc.n {
				t.Fatalf("Shards(%d,%d): cover ends at %d", tc.n, tc.workers, lo)
			}
			if maxSize-minSize > 1 {
				t.Fatalf("Shards(%d,%d): unbalanced sizes %d..%d", tc.n, tc.workers, minSize, maxSize)
			}
		}
	}
}

func TestForEachRunsAll(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		var hits [100]atomic.Int32
		err := ForEach(context.Background(), len(hits), workers, func(_ context.Context, i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if n := hits[i].Load(); n != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, n)
			}
		}
	}
}

func TestForEachLowestErrorWins(t *testing.T) {
	// Whatever the schedule, the error of the lowest failing index must
	// come back — run many rounds to shake out timing luck.
	for round := 0; round < 50; round++ {
		failAt := map[int]bool{7: true, 23: true, 61: true}
		err := ForEach(context.Background(), 64, 8, func(_ context.Context, i int) error {
			if failAt[i] {
				return fmt.Errorf("shard %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "shard 7 failed" {
			t.Fatalf("round %d: got %v, want shard 7 failed", round, err)
		}
	}
}

func TestForEachCancelPropagates(t *testing.T) {
	var after atomic.Int32
	err := ForEach(context.Background(), 1000, 4, func(ctx context.Context, i int) error {
		if i == 0 {
			return errors.New("boom")
		}
		if ctx.Err() != nil {
			after.Add(1)
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("got %v", err)
	}
	// Not asserting a count — just that cancellation was observable and
	// did not panic or deadlock.
}

func TestForEachCallerCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEach(ctx, 10, 4, func(context.Context, int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestMapOrdered(t *testing.T) {
	got, err := Map(context.Background(), 50, 7, func(_ context.Context, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("index %d: got %d", i, v)
		}
	}
}

type kv struct{ k, part, seq int }

func TestMergeSortedMatchesStableSort(t *testing.T) {
	// Property: MergeSorted over per-part stable-sorted slices equals
	// stable-sorting the concatenation — including tie order.
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 200; round++ {
		nParts := 1 + rng.Intn(6)
		parts := make([][]kv, nParts)
		var concat []kv
		seq := 0
		for p := 0; p < nParts; p++ {
			n := rng.Intn(20)
			for i := 0; i < n; i++ {
				parts[p] = append(parts[p], kv{k: rng.Intn(8), part: p, seq: seq})
				seq++
			}
			concat = append(concat, parts[p]...)
			sort.SliceStable(parts[p], func(a, b int) bool { return parts[p][a].k < parts[p][b].k })
		}
		sort.SliceStable(concat, func(a, b int) bool { return concat[a].k < concat[b].k })
		got := MergeSorted(func(a, b kv) bool { return a.k < b.k }, parts...)
		if len(got) != len(concat) {
			t.Fatalf("round %d: len %d want %d", round, len(got), len(concat))
		}
		for i := range got {
			if got[i] != concat[i] {
				t.Fatalf("round %d: index %d: got %+v want %+v", round, i, got[i], concat[i])
			}
		}
	}
}

func TestMergeSortedEmpty(t *testing.T) {
	if got := MergeSorted(func(a, b int) bool { return a < b }); got != nil {
		t.Fatalf("got %v", got)
	}
	if got := MergeSorted(func(a, b int) bool { return a < b }, nil, nil); got != nil {
		t.Fatalf("got %v", got)
	}
	got := MergeSorted(func(a, b int) bool { return a < b }, nil, []int{1, 2}, nil)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v", got)
	}
}
