package pipeline

import (
	"testing"

	"parallellives/internal/asn"
	"parallellives/internal/core"
	"parallellives/internal/registry"
	"parallellives/internal/restore"
)

// directSources returns the dataset archive's direct (non-text) sources.
func directSources(ds *Dataset) []registry.Source {
	out := make([]registry.Source, 0, asn.NumRIRs)
	for _, r := range asn.All() {
		out = append(out, ds.Archive.Source(r))
	}
	return out
}

func TestAblationRestorationOffFragmentsLifetimes(t *testing.T) {
	ds := getSmall(t)
	raw := restore.RestoreWithOptions(directSources(ds), nil, restore.Options{
		NoGapBridging:     true,
		NoRegularRecovery: true,
		NoDateRepair:      true,
		NoInterRIRFix:     true,
	})
	rawLifetimes, rawStats := core.BuildAdminLifetimes(raw)
	t.Logf("restored: %d lifetimes; raw: %d lifetimes (stats %+v)",
		len(ds.Admin.Lifetimes), len(rawLifetimes), rawStats)
	// Without repairs the archive's corruption surfaces as extra
	// lifetimes (splits at dropped records and unreconciled dates) and
	// as kept mistaken records.
	if len(rawLifetimes) <= len(ds.Admin.Lifetimes) {
		t.Errorf("raw lifetimes (%d) should exceed restored (%d)",
			len(rawLifetimes), len(ds.Admin.Lifetimes))
	}
	// Mistaken allocations survive the raw pass as lifetimes of ASNs the
	// registry was never delegated.
	foundMistaken := false
	for _, l := range rawLifetimes {
		if !registry.IANABlockHolds(l.RIR, l.ASN) {
			foundMistaken = true
			break
		}
	}
	if !foundMistaken && ds.Archive.InjectionStats().MistakenAllocASNs > 0 {
		t.Error("raw pass should retain mistaken out-of-block records")
	}
}

func TestAblationNoDateRepairKeepsPlaceholders(t *testing.T) {
	ds := getSmall(t)
	if ds.Archive.InjectionStats().PlaceholderASNs == 0 {
		t.Skip("no placeholder quirks in this world")
	}
	raw := restore.RestoreWithOptions(directSources(ds), ds.Archive.ERXReference(),
		restore.Options{NoDateRepair: true})
	found := false
	for _, run := range raw.Runs {
		if run.RegDate.String() == "1993-09-01" {
			found = true
			break
		}
	}
	if !found {
		t.Error("placeholder dates should survive when date repair is off")
	}
}

func TestAblationVisibilityOneInflatesASNs(t *testing.T) {
	ds := getSmall(t)
	opts := ds.Options
	opts.Visibility = 1
	naive, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(naive.Activity.ASNs) <= len(ds.Activity.ASNs) {
		t.Errorf("visibility=1 (%d ASNs) should exceed visibility=2 (%d)",
			len(naive.Activity.ASNs), len(ds.Activity.ASNs))
	}
	// The single-peer noise the world plants must appear only in the
	// naive run.
	leaked := 0
	for _, seg := range ds.World.Segments {
		if seg.Vis != 1 { // worldsim.VisSinglePeer
			continue
		}
		if _, ok := naive.Activity.ASNs[seg.ASN]; ok {
			leaked++
		}
	}
	if leaked == 0 {
		t.Error("expected single-peer noise to leak into the naive run")
	}
}

func TestExtensionsOnPipeline(t *testing.T) {
	ds := getSmall(t)
	roles := ds.Ops.Roles()
	t.Logf("roles: %+v", roles)
	if roles.TransitOnly == 0 {
		t.Error("expected pure-carrier transit lifetimes")
	}
	if roles.OriginOnly == 0 {
		t.Error("expected origin-only lifetimes")
	}
	aware := core.BuildOpLifetimesPrefixAware(ds.Activity, 30, 5)
	if len(aware.Lifetimes) < len(ds.Ops.Lifetimes) {
		t.Errorf("prefix-aware lifetimes (%d) must not merge more than timeout-only (%d)",
			len(aware.Lifetimes), len(ds.Ops.Lifetimes))
	}
}
