package pipeline

import (
	"context"
	"strings"
	"testing"
	"time"

	"parallellives/internal/asn"
	"parallellives/internal/bgpscan"
	"parallellives/internal/dates"
	"parallellives/internal/faults"
	"parallellives/internal/obs"
	"parallellives/internal/restore"
)

// obsOptions is a deliberately small instrumented run: one simulated
// year keeps the test quick enough to run even under -short.
func obsOptions(wire bool) Options {
	opts := DefaultOptions()
	opts.World.Scale = 0.01
	opts.World.Seed = 1
	opts.World.Start = dates.MustParse("2006-01-01")
	opts.World.End = dates.MustParse("2007-01-01")
	opts.Wire = wire
	opts.Obs = obs.New()
	return opts
}

// TestStageReportReconciles is the acceptance check for the tentpole:
// every number the stage trace reports must equal the corresponding
// count in the finished dataset, and the registry totals must agree
// with the Health report — the trace is a view of the run, not a
// parallel bookkeeping that can drift.
func TestStageReportReconciles(t *testing.T) {
	opts := obsOptions(true) // wire mode so MRT archive/record counters move
	ds, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	root := ds.Trace
	if root == nil || root.Name() != "pipeline.run" {
		t.Fatalf("root span = %+v, want pipeline.run", root)
	}
	if root.Duration() <= 0 {
		t.Fatal("root span never ended")
	}
	for _, stage := range []string{"worldsim", "restore", "segment.admin", "bgpscan", "segment.op", "join"} {
		if root.Child(stage) == nil {
			t.Fatalf("stage span %q missing from trace", stage)
		}
	}

	attr := func(stage, key string) int64 {
		t.Helper()
		v, ok := root.Child(stage).Attr(key)
		if !ok {
			t.Fatalf("stage %q has no attr %q", stage, key)
		}
		return v
	}

	if got, want := attr("worldsim", obs.AttrOut), int64(len(ds.World.Lives)); got != want {
		t.Errorf("worldsim out = %d, want %d lives", got, want)
	}
	if got, want := attr("restore", obs.AttrOut), int64(len(ds.Restored.Runs)); got != want {
		t.Errorf("restore out = %d, want %d runs", got, want)
	}
	if got, want := attr("restore", obs.AttrIn), int64(ds.Restored.Report.FilesScanned); got != want {
		t.Errorf("restore in = %d, want %d files", got, want)
	}
	if got, want := attr("segment.admin", obs.AttrOut), int64(len(ds.Admin.Lifetimes)); got != want {
		t.Errorf("segment.admin out = %d, want %d admin lifetimes", got, want)
	}
	if got, want := attr("segment.op", obs.AttrOut), int64(len(ds.Ops.Lifetimes)); got != want {
		t.Errorf("segment.op out = %d, want %d op lifetimes", got, want)
	}
	st := ds.Activity.Stats
	if got, want := attr("bgpscan", obs.AttrOut), st.Routes; got != want {
		t.Errorf("bgpscan out = %d, want %d routes", got, want)
	}
	if got, want := attr("bgpscan", "records"), st.RIBRecords+st.UpdateMessages; got != want {
		t.Errorf("bgpscan records = %d, want %d", got, want)
	}
	if got, want := attr("bgpscan", obs.AttrQuarantined), st.QuarantinedTruncated+st.QuarantinedTails; got != want {
		t.Errorf("bgpscan quarantined = %d, want %d", got, want)
	}
	if got, want := attr("bgpscan", obs.AttrIn), ds.Health.MRT.Archives; got != want {
		t.Errorf("bgpscan in = %d, want %d archives", got, want)
	}

	// The registry's cumulative counters (published per day during the
	// scan) must land on the same totals as the Health report.
	reg := opts.Obs.Registry
	regval := func(name string, labels ...string) float64 {
		t.Helper()
		v, ok := reg.Value(name, labels...)
		if !ok {
			t.Fatalf("metric %s%v not in registry", name, labels)
		}
		return v
	}
	if got, want := regval(MetricDaysProcessed), float64(ds.Health.DaysProcessed); got != want {
		t.Errorf("%s = %v, want %v", MetricDaysProcessed, got, want)
	}
	if got, want := regval(MetricMRTArchives), float64(ds.Health.MRT.Archives); got != want {
		t.Errorf("%s = %v, want %v", MetricMRTArchives, got, want)
	}
	if got, want := regval(MetricMRTRecords), float64(ds.Health.MRT.Records); got != want {
		t.Errorf("%s = %v, want %v", MetricMRTRecords, got, want)
	}
	if got, want := regval(MetricRoutes), float64(st.Routes); got != want {
		t.Errorf("%s = %v, want %v", MetricRoutes, got, want)
	}
	if got, want := regval(MetricQuarantined, "truncated"), float64(st.QuarantinedTruncated); got != want {
		t.Errorf("%s{truncated} = %v, want %v", MetricQuarantined, got, want)
	}

	// Each stage observed exactly one duration into the stage histogram.
	for _, f := range reg.Gather() {
		if f.Name != MetricStageSeconds {
			continue
		}
		if len(f.Series) != 6 {
			t.Errorf("stage histogram has %d series, want 6", len(f.Series))
		}
		for _, s := range f.Series {
			if s.Count != 1 {
				t.Errorf("stage %v observed %d durations, want 1", s.LabelValues, s.Count)
			}
		}
	}

	table := obs.StageTable(root)
	for _, want := range []string{"STAGE", "pipeline.run", "bgpscan", "segment.admin"} {
		if !strings.Contains(table, want) {
			t.Errorf("stage table missing %q:\n%s", want, table)
		}
	}
}

// TestRunWithoutObsCarriesNoTrace pins the off switch: a plain run has
// a nil trace and pays no instrumentation.
func TestRunWithoutObsCarriesNoTrace(t *testing.T) {
	opts := obsOptions(false)
	opts.Obs = nil
	ds, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Trace != nil {
		t.Fatalf("uninstrumented run produced a trace: %+v", ds.Trace)
	}
}

// TestObsDoesNotChangeResults proves instrumentation is a pure
// observer: the same options with and without Obs build identical
// datasets.
func TestObsDoesNotChangeResults(t *testing.T) {
	withObs, err := Run(obsOptions(false))
	if err != nil {
		t.Fatal(err)
	}
	plain := obsOptions(false)
	plain.Obs = nil
	without, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(withObs.Admin.Lifetimes), len(without.Admin.Lifetimes); got != want {
		t.Errorf("admin lifetimes %d with obs vs %d without", got, want)
	}
	if got, want := len(withObs.Ops.Lifetimes), len(without.Ops.Lifetimes); got != want {
		t.Errorf("op lifetimes %d with obs vs %d without", got, want)
	}
	if got, want := withObs.Joint.Taxonomy(), without.Joint.Taxonomy(); got != want {
		t.Errorf("taxonomy %+v with obs vs %+v without", got, want)
	}
}

// TestHealthExport checks the Health→registry bridge field by field.
func TestHealthExport(t *testing.T) {
	h := &Health{
		Policy:        Degrade,
		DaysProcessed: 42,
		MRT: MRTHealth{
			Archives:             10,
			Records:              900,
			QuarantinedTruncated: 100,
			QuarantinedTails:     3,
			Malformed:            7,
		},
		Delegation: DelegationHealth{
			FilesScanned:    55,
			MissingFileDays: 6,
			CorruptFileDays: 2,
			Retries:         4,
			AbandonedReads:  1,
			RetryBackoff:    1500 * time.Millisecond,
		},
		Injected: &faults.Report{TruncatedRecords: 100, Stalls: 2},
	}
	h.Coverage[asn.ARIN] = restore.Coverage{Days: 100, FileDays: 80, MissingDays: 20}
	h.Coverage[asn.RIPENCC] = restore.Coverage{Days: 100, FileDays: 95, MissingDays: 5}

	reg := obs.NewRegistry()
	h.Export(reg)

	want := map[string]float64{
		"parallellives_pipeline_health_days_processed":        42,
		"parallellives_pipeline_health_quarantined_frac":      float64(100) / float64(1000),
		"parallellives_pipeline_health_retry_backoff_seconds": 1.5,
		"parallellives_pipeline_health_worst_lost_day_frac":   0.2,
	}
	for name, w := range want {
		got, ok := reg.Value(name)
		if !ok || got != w {
			t.Errorf("%s = %v,%v, want %v", name, got, ok, w)
		}
	}
	wantLabeled := []struct {
		name, label string
		v           float64
	}{
		{"parallellives_pipeline_health_policy", "degrade", 1},
		{"parallellives_pipeline_health_mrt", "archives", 10},
		{"parallellives_pipeline_health_mrt", "records", 900},
		{"parallellives_pipeline_health_mrt", "quarantined_tails", 3},
		{"parallellives_pipeline_health_mrt", "malformed", 7},
		{"parallellives_pipeline_health_delegation", "files_scanned", 55},
		{"parallellives_pipeline_health_delegation", "abandoned_reads", 1},
		{"parallellives_pipeline_health_coverage_file_days", "arin", 80},
		{"parallellives_pipeline_health_coverage_missing_days", "ripencc", 5},
		{"parallellives_pipeline_health_injected_faults", "truncated_records", 100},
		{"parallellives_pipeline_health_injected_faults", "stalls", 2},
	}
	for _, c := range wantLabeled {
		got, ok := reg.Value(c.name, c.label)
		if !ok || got != c.v {
			t.Errorf("%s{%s} = %v,%v, want %v", c.name, c.label, got, ok, c.v)
		}
	}

	// Re-export after another run overwrites rather than accumulates.
	h.DaysProcessed = 50
	h.Export(reg)
	if got, _ := reg.Value("parallellives_pipeline_health_days_processed"); got != 50 {
		t.Errorf("re-export days = %v, want 50 (gauges must overwrite)", got)
	}
}

// TestRunMetricsNilSafe pins the observability-off contract explicitly:
// every method on the metric types must no-op on a nil receiver, because
// Run calls them unconditionally and m is nil whenever Options.Obs is.
// The contract used to be incidental; this test makes it load-bearing.
func TestRunMetricsNilSafe(t *testing.T) {
	if m := newRunMetrics(nil); m != nil {
		t.Fatal("newRunMetrics(nil) must return nil")
	}
	var m *runMetrics
	m.observeStages(nil) // nil receiver AND nil root
	sm := m.shard()
	if sm != nil {
		t.Fatal("(*runMetrics)(nil).shard() must return nil")
	}
	sm.archive()
	sm.endOfDay(bgpscan.Stats{})

	// A live root span with a nil metrics sink must also be harmless —
	// the shape Run hits when tracing is on but the registry is absent.
	ctx := obs.WithTracer(context.Background(), obs.NewTracer())
	ctx, root := obs.StartSpan(ctx, "pipeline.run")
	_, child := obs.StartSpan(ctx, "stage")
	child.End()
	root.End()
	m.observeStages(root)
}
