// Parallel/sequential equivalence property — the contract of the
// internal/parallel rewiring: for any worker count, on clean and chaos
// inputs, a Run produces byte-identical Listing-1 JSON outputs and an
// identical lifestore snapshot encoding. External test package because
// lifestore imports pipeline.
package pipeline_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"parallellives/internal/dates"
	"parallellives/internal/faults"
	"parallellives/internal/lifestore"
	"parallellives/internal/pipeline"
)

// equivOptions is a reduced window sized so the whole worker sweep stays
// fast under -race while still producing non-trivial lifetimes in every
// taxonomy class.
func equivOptions() pipeline.Options {
	opts := pipeline.DefaultOptions()
	opts.World.Scale = 0.01
	opts.World.Start = dates.MustParse("2004-01-01")
	opts.World.End = dates.MustParse("2004-06-30")
	return opts
}

// runFingerprint runs the pipeline and returns the byte-identity
// witnesses: both Listing-1 JSON documents and the encoded lifestore
// snapshot.
func runFingerprint(t *testing.T, opts pipeline.Options) (admin, op, snap []byte) {
	t.Helper()
	ds, err := pipeline.Run(opts)
	if err != nil {
		t.Fatalf("workers=%d: %v", opts.Workers, err)
	}
	var ab, ob bytes.Buffer
	if err := ds.WriteAdminJSON(&ab); err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteOpJSON(&ob); err != nil {
		t.Fatal(err)
	}
	enc, err := lifestore.Encode(lifestore.Capture(ds))
	if err != nil {
		t.Fatal(err)
	}
	return ab.Bytes(), ob.Bytes(), enc
}

func TestParallelEquivalence(t *testing.T) {
	storm := faults.DefaultStorm(7)
	chaos := equivOptions()
	chaos.Wire = true
	chaos.Inject = &storm
	chaos.FaultPolicy = pipeline.Degrade

	cases := []struct {
		name string
		opts pipeline.Options
	}{
		{"clean", equivOptions()},
		{"chaos", chaos},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var refAdmin, refOp, refSnap []byte
			for _, workers := range []int{1, 2, 4, 8} {
				opts := tc.opts
				opts.Workers = workers
				admin, op, snap := runFingerprint(t, opts)
				if workers == 1 {
					if len(admin) == 0 || len(op) == 0 {
						t.Fatal("sequential reference run produced empty datasets")
					}
					refAdmin, refOp, refSnap = admin, op, snap
					continue
				}
				if !bytes.Equal(admin, refAdmin) {
					t.Errorf("workers=%d: admin JSON differs from sequential run", workers)
				}
				if !bytes.Equal(op, refOp) {
					t.Errorf("workers=%d: op JSON differs from sequential run", workers)
				}
				if !bytes.Equal(snap, refSnap) {
					t.Errorf("workers=%d: lifestore snapshot differs from sequential run (%s vs %s)",
						workers, shortSum(snap), shortSum(refSnap))
				}
			}
		})
	}
}

func shortSum(b []byte) string {
	s := sha256.Sum256(b)
	return hex.EncodeToString(s[:8])
}
