package pipeline

import (
	"parallellives/internal/bgpscan"
	"parallellives/internal/obs"
)

// Registry metric names the pipeline publishes. Exported so commands and
// progress reporters can read them back without string drift.
const (
	// MetricDaysProcessed counts operational-side days scanned; it rises
	// once per day during the scan, so samplers see liveness mid-run.
	MetricDaysProcessed = "parallellives_pipeline_days_processed_total"
	// MetricMRTArchives counts MRT archives fed to the scanner (wire mode).
	MetricMRTArchives = "parallellives_pipeline_mrt_archives_total"
	// MetricMRTRecords counts accepted MRT route records (RIB + updates).
	MetricMRTRecords = "parallellives_pipeline_mrt_records_total"
	// MetricRoutes counts sanitized route observations accepted into day
	// state — the record stream in both wire and direct modes.
	MetricRoutes = "parallellives_pipeline_routes_total"
	// MetricQuarantined counts quarantined/skipped records by damage
	// class ("truncated", "tail", "malformed").
	MetricQuarantined = "parallellives_pipeline_mrt_quarantined_total"
	// MetricStageSeconds is the per-stage wall-clock histogram ("stage"
	// label), observed once per stage per run.
	MetricStageSeconds = "parallellives_pipeline_stage_duration_seconds"
)

// runMetrics holds the pre-resolved instrument handles one Run updates.
// A nil *runMetrics (observability off) no-ops everywhere, so the hot
// loops carry a single pointer test. The registry counters themselves
// are atomic, so shards publish through them concurrently; the per-day
// delta bookkeeping lives in per-shard shardMetrics views (see shard).
type runMetrics struct {
	days          *obs.Counter
	archives      *obs.Counter
	records       *obs.Counter
	routes        *obs.Counter
	quarTruncated *obs.Counter
	quarTails     *obs.Counter
	malformed     *obs.Counter
	stageSeconds  *obs.HistogramVec
	runtime       *obs.RuntimeStats
}

func newRunMetrics(reg *obs.Registry) *runMetrics {
	if reg == nil {
		return nil
	}
	quar := reg.CounterVec(MetricQuarantined,
		"Route records quarantined or skipped by the scanner, by damage class.", "class")
	return &runMetrics{
		days:          reg.Counter(MetricDaysProcessed, "Operational-side days scanned."),
		archives:      reg.Counter(MetricMRTArchives, "MRT archives fed to the scanner."),
		records:       reg.Counter(MetricMRTRecords, "MRT route records accepted (RIB entries + update messages)."),
		routes:        reg.Counter(MetricRoutes, "Sanitized route observations accepted into day state."),
		quarTruncated: quar.With("truncated"),
		quarTails:     quar.With("tail"),
		malformed:     quar.With("malformed"),
		stageSeconds: reg.HistogramVec(MetricStageSeconds,
			"Wall-clock duration of each pipeline stage.", nil, "stage"),
		runtime: obs.RegisterRuntime(reg),
	}
}

// collect refreshes the shared runtime gauges (heap, GC, goroutines).
// Called at stage boundaries, never inside hot loops: ReadMemStats
// stops the world briefly, so a sampler watching a long scan sees the
// memory profile move stage by stage at zero per-record cost.
func (m *runMetrics) collect() {
	if m == nil {
		return
	}
	m.runtime.Collect()
}

// shardMetrics is one scan shard's single-goroutine view of the shared
// run metrics: the shard's scanner stats are cumulative, so each shard
// tracks its own previous snapshot and publishes per-day deltas into the
// shared (atomic) counters. Deltas from concurrent shards interleave,
// but sums are exact — a sampler sees the same totals a sequential run
// publishes, just accumulated from several scanners. A nil receiver
// (observability off) no-ops.
type shardMetrics struct {
	m    *runMetrics
	prev bgpscan.Stats // this shard's last published scanner snapshot
}

// shard returns a fresh per-shard delta view, nil when observability is
// off.
func (m *runMetrics) shard() *shardMetrics {
	if m == nil {
		return nil
	}
	return &shardMetrics{m: m}
}

// archive counts one MRT archive handed to the shard's scanner.
func (sm *shardMetrics) archive() {
	if sm == nil {
		return
	}
	sm.m.archives.Inc()
}

// endOfDay publishes the day's scanner-stat deltas so samplers watching
// the registry see records and quarantines grow while the scan runs.
func (sm *shardMetrics) endOfDay(st bgpscan.Stats) {
	if sm == nil {
		return
	}
	sm.m.days.Inc()
	sm.m.records.Add((st.RIBRecords + st.UpdateMessages) - (sm.prev.RIBRecords + sm.prev.UpdateMessages))
	sm.m.routes.Add(st.Routes - sm.prev.Routes)
	sm.m.quarTruncated.Add(st.QuarantinedTruncated - sm.prev.QuarantinedTruncated)
	sm.m.quarTails.Add(st.QuarantinedTails - sm.prev.QuarantinedTails)
	sm.m.malformed.Add(st.DropMalformed - sm.prev.DropMalformed)
	sm.prev = st
}

// observeStages records every stage span's duration into the stage
// histogram once the run's root span has ended.
func (m *runMetrics) observeStages(root *obs.Span) {
	if m == nil || root == nil {
		return
	}
	for _, stage := range root.Children() {
		m.stageSeconds.With(stage.Name()).ObserveDuration(stage.Duration())
	}
}
