package pipeline

import (
	"parallellives/internal/bgpscan"
	"parallellives/internal/obs"
)

// Registry metric names the pipeline publishes. Exported so commands and
// progress reporters can read them back without string drift.
const (
	// MetricDaysProcessed counts operational-side days scanned; it rises
	// once per day during the scan, so samplers see liveness mid-run.
	MetricDaysProcessed = "parallellives_pipeline_days_processed_total"
	// MetricMRTArchives counts MRT archives fed to the scanner (wire mode).
	MetricMRTArchives = "parallellives_pipeline_mrt_archives_total"
	// MetricMRTRecords counts accepted MRT route records (RIB + updates).
	MetricMRTRecords = "parallellives_pipeline_mrt_records_total"
	// MetricRoutes counts sanitized route observations accepted into day
	// state — the record stream in both wire and direct modes.
	MetricRoutes = "parallellives_pipeline_routes_total"
	// MetricQuarantined counts quarantined/skipped records by damage
	// class ("truncated", "tail", "malformed").
	MetricQuarantined = "parallellives_pipeline_mrt_quarantined_total"
	// MetricStageSeconds is the per-stage wall-clock histogram ("stage"
	// label), observed once per stage per run.
	MetricStageSeconds = "parallellives_pipeline_stage_duration_seconds"
)

// runMetrics holds the pre-resolved instrument handles one Run updates.
// A nil *runMetrics (observability off) no-ops everywhere, so the hot
// loops carry a single pointer test.
type runMetrics struct {
	days          *obs.Counter
	archives      *obs.Counter
	records       *obs.Counter
	routes        *obs.Counter
	quarTruncated *obs.Counter
	quarTails     *obs.Counter
	malformed     *obs.Counter
	stageSeconds  *obs.HistogramVec

	prev bgpscan.Stats // last published scanner snapshot, for deltas
}

func newRunMetrics(reg *obs.Registry) *runMetrics {
	if reg == nil {
		return nil
	}
	quar := reg.CounterVec(MetricQuarantined,
		"Route records quarantined or skipped by the scanner, by damage class.", "class")
	return &runMetrics{
		days:          reg.Counter(MetricDaysProcessed, "Operational-side days scanned."),
		archives:      reg.Counter(MetricMRTArchives, "MRT archives fed to the scanner."),
		records:       reg.Counter(MetricMRTRecords, "MRT route records accepted (RIB entries + update messages)."),
		routes:        reg.Counter(MetricRoutes, "Sanitized route observations accepted into day state."),
		quarTruncated: quar.With("truncated"),
		quarTails:     quar.With("tail"),
		malformed:     quar.With("malformed"),
		stageSeconds: reg.HistogramVec(MetricStageSeconds,
			"Wall-clock duration of each pipeline stage.", nil, "stage"),
	}
}

// archive counts one MRT archive handed to the scanner.
func (m *runMetrics) archive() {
	if m == nil {
		return
	}
	m.archives.Inc()
}

// endOfDay publishes the day's scanner-stat deltas so samplers watching
// the registry see records and quarantines grow while the scan runs.
func (m *runMetrics) endOfDay(st bgpscan.Stats) {
	if m == nil {
		return
	}
	m.days.Inc()
	m.records.Add((st.RIBRecords + st.UpdateMessages) - (m.prev.RIBRecords + m.prev.UpdateMessages))
	m.routes.Add(st.Routes - m.prev.Routes)
	m.quarTruncated.Add(st.QuarantinedTruncated - m.prev.QuarantinedTruncated)
	m.quarTails.Add(st.QuarantinedTails - m.prev.QuarantinedTails)
	m.malformed.Add(st.DropMalformed - m.prev.DropMalformed)
	m.prev = st
}

// observeStages records every stage span's duration into the stage
// histogram once the run's root span has ended.
func (m *runMetrics) observeStages(root *obs.Span) {
	if m == nil || root == nil {
		return
	}
	for _, stage := range root.Children() {
		m.stageSeconds.With(stage.Name()).ObserveDuration(stage.Duration())
	}
}
