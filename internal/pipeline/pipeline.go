// Package pipeline wires the full Figure 1 flow together: world
// simulation → delegation archive (+restoration) on the administrative
// side, collector rendering (+scanning) on the operational side, then
// lifetime construction and the joint analysis. Commands, examples,
// tests and benchmarks all drive the system through this package.
package pipeline

import (
	"encoding/json"
	"fmt"
	"io"

	"parallellives/internal/asn"
	"parallellives/internal/bgpscan"
	"parallellives/internal/collector"
	"parallellives/internal/core"
	"parallellives/internal/registry"
	"parallellives/internal/restore"
	"parallellives/internal/worldsim"
)

// Options selects the data fidelity and thresholds of a run.
type Options struct {
	// World configures the simulated ground truth.
	World worldsim.Config
	// Wire routes all BGP data through binary MRT encode/decode; off, the
	// scanner consumes the collector's observations directly (identical
	// results, verified by tests — wire mode simply exercises the codec).
	Wire bool
	// TextFiles routes all delegation data through file-text
	// serialization and lenient re-parsing.
	TextFiles bool
	// Timeout is the operational inactivity timeout (0 = the paper's 30).
	Timeout int
	// Visibility is the minimum distinct-peer threshold (0 = the
	// paper's 2).
	Visibility int
}

// DefaultOptions runs the paper's configuration at the default scale.
func DefaultOptions() Options {
	return Options{
		World:      worldsim.DefaultConfig(),
		Wire:       false,
		TextFiles:  true,
		Timeout:    core.DefaultInactivityTimeout,
		Visibility: bgpscan.MinPeerVisibility,
	}
}

// Dataset is the fully built dual-lens dataset.
type Dataset struct {
	Options    Options
	World      *worldsim.World
	Archive    *registry.Archive
	Restored   *restore.Result
	Activity   *bgpscan.Activity
	Admin      *core.AdminIndex
	AdminStats core.AdminStats
	Ops        *core.OpIndex
	Joint      *core.Joint
}

// Run executes the full pipeline.
func Run(opts Options) (*Dataset, error) {
	if opts.Timeout == 0 {
		opts.Timeout = core.DefaultInactivityTimeout
	}
	if opts.Visibility == 0 {
		opts.Visibility = bgpscan.MinPeerVisibility
	}
	ds := &Dataset{Options: opts}
	ds.World = worldsim.Generate(opts.World)
	ds.Archive = registry.Build(ds.World)

	// Administrative dimension: restore the archive, build lifetimes.
	sources := make([]registry.Source, 0, asn.NumRIRs)
	for _, r := range asn.All() {
		if opts.TextFiles {
			sources = append(sources, ds.Archive.TextSource(r))
		} else {
			sources = append(sources, ds.Archive.Source(r))
		}
	}
	ds.Restored = restore.Restore(sources, ds.Archive.ERXReference())
	lifetimes, stats := core.BuildAdminLifetimes(ds.Restored)
	ds.Admin = core.NewAdminIndex(lifetimes)
	ds.AdminStats = stats

	// Operational dimension: scan the collectors.
	act, err := scan(ds.World, opts)
	if err != nil {
		return nil, err
	}
	ds.Activity = act
	ds.Ops = core.BuildOpLifetimes(act, opts.Timeout)

	ds.Joint = core.Analyze(ds.Admin, ds.Ops)
	return ds, nil
}

// scan runs the operational side of the pipeline.
func scan(w *worldsim.World, opts Options) (*bgpscan.Activity, error) {
	inf := collector.New(w)
	s := bgpscan.NewScannerWithVisibility(opts.Visibility)
	it := inf.Iter()
	for it.Next() {
		if err := s.BeginDay(it.Day()); err != nil {
			return nil, err
		}
		if opts.Wire {
			ribs, updates, err := it.MRT()
			if err != nil {
				return nil, err
			}
			for _, rib := range ribs {
				if err := s.ObserveMRT(rib); err != nil {
					return nil, err
				}
			}
			for _, upd := range updates {
				if err := s.ObserveMRT(upd); err != nil {
					return nil, err
				}
			}
		} else {
			for _, o := range it.Observations() {
				s.ObserveRoutes(o.Prefixes, o.Path)
			}
		}
		if err := s.EndDay(); err != nil {
			return nil, err
		}
	}
	return s.Finish(), nil
}

// Cones exposes the world's customer-cone ground truth as the ASRank
// substitute consumed by the §6.2 analysis.
type Cones struct {
	sizes map[asn.ASN]int
}

// Cones builds the cone table for the dataset's world.
func (ds *Dataset) Cones() *Cones {
	c := &Cones{sizes: make(map[asn.ASN]int)}
	for _, l := range ds.World.Lives {
		c.sizes[l.ASN] = ds.World.Orgs[l.OrgID].ConeSize
	}
	return c
}

// ConeSize implements core.ConeProvider.
func (c *Cones) ConeSize(a asn.ASN) (int, bool) {
	n, ok := c.sizes[a]
	return n, ok
}

// adminRecord matches the paper's Listing 1 administrative dataset.
type adminRecord struct {
	ASN       asn.ASN `json:"ASN"`
	RegDate   string  `json:"regDate"`
	StartDate string  `json:"startdate"`
	EndDate   string  `json:"enddate"`
	Status    string  `json:"status"`
	Registry  string  `json:"registry"`
}

// opRecord matches the paper's Listing 1 operational dataset.
type opRecord struct {
	ASN       asn.ASN `json:"ASN"`
	StartDate string  `json:"startdate"`
	EndDate   string  `json:"enddate"`
}

// WriteAdminJSON writes the administrative dataset in the paper's
// published JSON shape (Listing 1).
func (ds *Dataset) WriteAdminJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, l := range ds.Admin.Lifetimes {
		rec := adminRecord{
			ASN:       l.ASN,
			RegDate:   l.RegDate.String(),
			StartDate: l.Span.Start.String(),
			EndDate:   l.Span.End.String(),
			Status:    "allocated",
			Registry:  l.RIR.Token(),
		}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("pipeline: encoding admin dataset: %w", err)
		}
	}
	return nil
}

// WriteOpJSON writes the operational dataset (Listing 1).
func (ds *Dataset) WriteOpJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, l := range ds.Ops.Lifetimes {
		rec := opRecord{
			ASN:       l.ASN,
			StartDate: l.Span.Start.String(),
			EndDate:   l.Span.End.String(),
		}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("pipeline: encoding op dataset: %w", err)
		}
	}
	return nil
}
