// Package pipeline wires the full Figure 1 flow together: world
// simulation → delegation archive (+restoration) on the administrative
// side, collector rendering (+scanning) on the operational side, then
// lifetime construction and the joint analysis. Commands, examples,
// tests and benchmarks all drive the system through this package.
package pipeline

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"

	"parallellives/internal/asn"
	"parallellives/internal/bgpscan"
	"parallellives/internal/collector"
	"parallellives/internal/core"
	"parallellives/internal/dates"
	"parallellives/internal/faults"
	"parallellives/internal/obs"
	"parallellives/internal/parallel"
	"parallellives/internal/registry"
	"parallellives/internal/restore"
	"parallellives/internal/worldsim"
)

// Options selects the data fidelity and thresholds of a run.
type Options struct {
	// World configures the simulated ground truth.
	World worldsim.Config
	// Wire routes all BGP data through binary MRT encode/decode; off, the
	// scanner consumes the collector's observations directly (identical
	// results, verified by tests — wire mode simply exercises the codec).
	Wire bool
	// TextFiles routes all delegation data through file-text
	// serialization and lenient re-parsing.
	TextFiles bool
	// Timeout is the operational inactivity timeout (0 = the paper's 30).
	Timeout int
	// Visibility is the minimum distinct-peer threshold (0 = the
	// paper's 2).
	Visibility int

	// FaultPolicy selects FailFast (zero value, the seed behaviour) or
	// Degrade handling of damaged inputs; see the policy docs.
	FaultPolicy FaultPolicy
	// Budget bounds how much damage a Degrade run absorbs before failing
	// anyway (zero fields take defaults).
	Budget ErrorBudget
	// Inject, when non-nil, plants the plan's deterministic faults into
	// the run's sources and MRT streams (chaos mode). MRT faults need
	// Wire; delegation faults apply either way.
	Inject *faults.Plan

	// Obs, when non-nil, instruments the run: each stage becomes a span
	// on Obs.Tracer (the tree behind -stage-report and /v1/stages), and
	// record/quarantine counters are published to Obs.Registry per day,
	// so progress reporters and /metrics scrapes observe the run live.
	// Nil costs nothing on the hot paths.
	Obs *obs.Obs

	// Workers bounds the goroutines each parallelizable stage uses:
	// restoration runs the five RIR sources concurrently, the scan shards
	// the day range, and the segmentation/join passes shard per ASN. 0
	// means runtime.GOMAXPROCS(0); 1 runs fully sequentially. The output
	// is bit-for-bit identical for every value — parallelism here is a
	// wall-clock knob, never a results knob (pinned by the equivalence
	// property test).
	Workers int
}

// DefaultOptions runs the paper's configuration at the default scale.
func DefaultOptions() Options {
	return Options{
		World:      worldsim.DefaultConfig(),
		Wire:       false,
		TextFiles:  true,
		Timeout:    core.DefaultInactivityTimeout,
		Visibility: bgpscan.MinPeerVisibility,
	}
}

// Dataset is the fully built dual-lens dataset.
type Dataset struct {
	Options    Options
	World      *worldsim.World
	Archive    *registry.Archive
	Restored   *restore.Result
	Activity   *bgpscan.Activity
	Admin      *core.AdminIndex
	AdminStats core.AdminStats
	Ops        *core.OpIndex
	Joint      *core.Joint
	Health     *Health
	// Trace is the run's root span when Options.Obs was set (nil
	// otherwise): one child span per stage, carrying the record-flow
	// attributes the -stage-report table renders.
	Trace *obs.Span
}

// Run executes the full pipeline.
func Run(opts Options) (*Dataset, error) {
	return RunContext(context.Background(), opts)
}

// RunContext is Run with cooperative cancellation: a cancelled ctx
// aborts the build promptly — between stages, between restoration
// sources, and day-by-day inside the scan shards — returning ctx's
// error instead of running the window to completion. Output is
// unaffected for a ctx that never cancels.
func RunContext(ctx context.Context, opts Options) (*Dataset, error) {
	var m *runMetrics
	if opts.Obs != nil {
		ctx = obs.WithTracer(ctx, opts.Obs.Tracer)
		m = newRunMetrics(opts.Obs.Registry)
	}
	ctx, root := obs.StartSpan(ctx, "pipeline.run")

	base, err := BuildBase(ctx, opts)
	if err != nil {
		return nil, err
	}
	m.collect()

	// Operational dimension: scan the collectors.
	sctx, spScan := obs.StartSpan(ctx, "bgpscan")
	act, op, err := scan(sctx, base, m)
	if err != nil {
		return nil, err
	}
	spScan.SetAttr("days", int64(op.Days))
	spScan.SetAttr(obs.AttrIn, op.Archives)
	spScan.SetAttr(obs.AttrOut, act.Stats.Routes)
	spScan.SetAttr("records", act.Stats.RIBRecords+act.Stats.UpdateMessages)
	spScan.SetAttr(obs.AttrDrops, act.Stats.DropPrefixLen+act.Stats.DropLoop+
		act.Stats.DropMalformed+act.Stats.DropLowVis)
	spScan.SetAttr(obs.AttrQuarantined, act.Stats.QuarantinedTruncated+act.Stats.QuarantinedTails)
	spScan.End()
	m.collect()

	ds, err := base.Complete(ctx, act, op)
	if err != nil {
		return nil, err
	}
	ds.Trace = root
	root.End()
	m.observeStages(root)
	m.collect()
	return ds, nil
}

// Base is the window-static front half of a run: the simulated world,
// its delegation archive, the restored administrative view and its
// lifetimes — everything that depends only on Options, not on how much
// of the BGP window has been scanned yet. A batch run builds it once
// and scans the whole window; the streaming tailer builds it once per
// process start and replays the operational side one day at a time,
// calling Complete whenever it wants a full Dataset of the days
// ingested so far.
type Base struct {
	// Options is the run configuration with zero Timeout/Visibility
	// resolved to their defaults (the form Dataset.Options carries).
	Options Options
	// Workers is the resolved stage parallelism (Options.Workers with 0
	// mapped to GOMAXPROCS).
	Workers    int
	World      *worldsim.World
	Archive    *registry.Archive
	Restored   *restore.Result
	Admin      *core.AdminIndex
	AdminStats core.AdminStats
	// Injector is the run's fault injector (nil without Options.Inject).
	// Its delegation-side tallies are already accumulated into the base
	// health; MRT-side tallies accrue as archives are mangled.
	Injector *faults.Injector

	// health holds the delegation/coverage half of the final Health;
	// Complete copies it and fills in the scan-dependent fields.
	health Health
}

// OpAccount carries the scan-side tallies Complete needs to finish the
// Health report: how many days and archives went through the scanner,
// and how many MRT-side faults the injector planted while they did. The
// streaming tailer persists these in its checkpoint so that after a
// crash-and-resume every committed day is accounted exactly once, even
// though re-scanned days re-mangle (deterministically) on the live
// injector.
type OpAccount struct {
	Days     int
	Archives int64
	// InjectedTruncatedRecords/InjectedTailChops are the MRT-side fault
	// counts attributable to the accounted days. Ignored when the run
	// has no injector.
	InjectedTruncatedRecords int64
	InjectedTailChops        int64
}

// BuildBase runs the administrative (window-static) half of the
// pipeline: world simulation, delegation archive, restoration and admin
// lifetime segmentation, with the same spans and fault plumbing as a
// full run. The returned Base is ready for the operational side —
// either the batch scan or the tailer's day-append loop.
func BuildBase(ctx context.Context, opts Options) (*Base, error) {
	if opts.Timeout == 0 {
		opts.Timeout = core.DefaultInactivityTimeout
	}
	if opts.Visibility == 0 {
		opts.Visibility = bgpscan.MinPeerVisibility
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	b := &Base{Options: opts, Workers: workers}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	_, spSim := obs.StartSpan(ctx, "worldsim")
	b.World = worldsim.Generate(opts.World)
	b.Archive = registry.Build(b.World)
	spSim.SetAttr(obs.AttrOut, int64(len(b.World.Lives)))
	spSim.SetAttr("orgs", int64(len(b.World.Orgs)))
	spSim.End()

	if opts.Inject != nil {
		b.Injector = faults.NewInjector(*opts.Inject)
	}
	b.health = Health{Policy: opts.FaultPolicy}

	// Administrative dimension: restore the archive, build lifetimes.
	_, spRestore := obs.StartSpan(ctx, "restore")
	sources := make([]registry.Source, 0, asn.NumRIRs)
	var retriers []*faults.Retrier
	for _, r := range asn.All() {
		var src registry.Source
		if opts.TextFiles {
			src = b.Archive.TextSource(r)
		} else {
			src = b.Archive.Source(r)
		}
		if b.Injector != nil {
			// Chaos mode: the source becomes fallible; a Retrier recovers
			// transient errors with bounded deterministic backoff and
			// abandons days that keep failing.
			ret := faults.NewRetrier(b.Injector.WrapSource(src), faults.RetryPolicy{})
			retriers = append(retriers, ret)
			src = ret
		}
		sources = append(sources, src)
	}
	restored, err := restore.RestoreParallelContext(ctx, sources, b.Archive.ERXReference(), restore.Options{}, workers)
	if err != nil {
		return nil, err
	}
	b.Restored = restored
	for _, ret := range retriers {
		st := ret.Stats()
		b.health.Delegation.Retries += st.Retries
		b.health.Delegation.AbandonedReads += st.Abandoned
		b.health.Delegation.RetryBackoff += st.Backoff
	}
	b.health.Delegation.FilesScanned = b.Restored.Report.FilesScanned
	b.health.Delegation.MissingFileDays = b.Restored.Report.MissingFileDays
	b.health.Delegation.CorruptFileDays = b.Restored.Report.CorruptFileDays
	b.health.Coverage = b.Restored.Coverage
	spRestore.SetAttr(obs.AttrIn, int64(b.Restored.Report.FilesScanned))
	spRestore.SetAttr(obs.AttrOut, int64(len(b.Restored.Runs)))
	spRestore.SetAttr(obs.AttrDrops, int64(b.Restored.Report.MistakenRecordsDropped))
	spRestore.SetAttr("missing_file_days", int64(b.Restored.Report.MissingFileDays))
	spRestore.SetAttr("corrupt_file_days", int64(b.Restored.Report.CorruptFileDays))
	spRestore.SetAttr("retries", b.health.Delegation.Retries)
	spRestore.End()
	if opts.FaultPolicy == FailFast && b.health.Delegation.AbandonedReads > 0 {
		return nil, fmt.Errorf("pipeline: %d delegation day reads abandoned after retries (policy failfast)",
			b.health.Delegation.AbandonedReads)
	}
	_, spAdmin := obs.StartSpan(ctx, "segment.admin")
	lifetimes, stats, err := core.BuildAdminLifetimesParallelContext(ctx, b.Restored, workers)
	if err != nil {
		return nil, err
	}
	b.Admin = core.NewAdminIndex(lifetimes)
	b.AdminStats = stats
	spAdmin.SetAttr(obs.AttrIn, int64(len(b.Restored.Runs)))
	spAdmin.SetAttr(obs.AttrOut, int64(len(b.Admin.Lifetimes)))
	spAdmin.SetAttr("asns", int64(stats.ASNs))
	spAdmin.End()
	return b, nil
}

// Complete assembles the full Dataset from the base and a finalized
// activity: operational lifetime segmentation, the Health report
// (delegation half from the base, scan half from act and op) and the
// joint analysis. It does not consume the base — the streaming tailer
// calls it repeatedly over a growing activity, once per published
// snapshot, and the produced Dataset for the full window is bit-for-bit
// what a batch Run over the same Options yields.
func (b *Base) Complete(ctx context.Context, act *bgpscan.Activity, op OpAccount) (*Dataset, error) {
	ds := &Dataset{
		Options:    b.Options,
		World:      b.World,
		Archive:    b.Archive,
		Restored:   b.Restored,
		Admin:      b.Admin,
		AdminStats: b.AdminStats,
		Activity:   act,
	}
	health := b.health // copy: the base stays reusable
	health.DaysProcessed = op.Days
	health.MRT.Archives = op.Archives

	_, spOp := obs.StartSpan(ctx, "segment.op")
	ops, err := core.BuildOpLifetimesParallelContext(ctx, act, b.Options.Timeout, b.Workers)
	if err != nil {
		return nil, err
	}
	ds.Ops = ops
	spOp.SetAttr(obs.AttrIn, int64(len(act.ASNs)))
	spOp.SetAttr(obs.AttrOut, int64(len(ds.Ops.Lifetimes)))
	spOp.End()
	health.MRT.Records = act.Stats.RIBRecords + act.Stats.UpdateMessages
	health.MRT.QuarantinedTruncated = act.Stats.QuarantinedTruncated
	health.MRT.QuarantinedTails = act.Stats.QuarantinedTails
	health.MRT.Malformed = act.Stats.DropMalformed
	if b.Injector != nil {
		// The delegation-side classes come from the live injector (they
		// are re-accumulated deterministically by every BuildBase); the
		// MRT-side classes come from the account, which the caller keeps
		// per committed day.
		rep := b.Injector.Report()
		rep.TruncatedRecords = op.InjectedTruncatedRecords
		rep.TailChops = op.InjectedTailChops
		health.Injected = &rep
	}
	ds.Health = &health
	if b.Options.FaultPolicy == Degrade {
		if err := health.checkBudget(b.Options.Budget); err != nil {
			return nil, err
		}
	}

	_, spJoin := obs.StartSpan(ctx, "join")
	joint, err := core.AnalyzeParallelContext(ctx, ds.Admin, ds.Ops, b.Workers)
	if err != nil {
		return nil, err
	}
	ds.Joint = joint
	tax := ds.Joint.Taxonomy()
	spJoin.SetAttr(obs.AttrIn, int64(len(ds.Admin.Lifetimes)+len(ds.Ops.Lifetimes)))
	spJoin.SetAttr(obs.AttrOut, int64(tax.AdminComplete+tax.AdminPartial+tax.AdminUnused))
	spJoin.SetAttr("admin_complete", int64(tax.AdminComplete))
	spJoin.SetAttr("op_outside", int64(tax.OpOutside))
	spJoin.End()
	return ds, nil
}

// scan runs the operational side of the pipeline, sharding the day
// range across workers scanners. Each day is self-contained (per-day
// peer bitmaps), the collector renders any day identically from any
// iterator position, and chaos-mode injection salts are identity-derived
// (mrtSalt), so per-shard partials merge into bit-for-bit the sequential
// activity. Day-granular spans would explode the trace tree, so each
// shard gets one span (bgpscan.shard[i]) and publishes per-day registry
// deltas through its shardMetrics view; m may be nil (observability
// off).
func scan(ctx context.Context, b *Base, m *runMetrics) (*bgpscan.Activity, OpAccount, error) {
	w, opts, inj, workers := b.World, b.Options, b.Injector, b.Workers
	inf := collector.New(w)
	start, end := w.Config.Start, w.Config.End
	shards := parallel.Shards(end.Sub(start)+1, workers)

	// Per-shard tallies, reduced in shard order after the scan so the
	// Health accounting is schedule-independent.
	type shardTally struct {
		days     int
		archives int64
	}
	parts := make([]*bgpscan.Activity, len(shards))
	tallies := make([]shardTally, len(shards))

	err := parallel.ForEach(ctx, len(shards), workers, func(ctx context.Context, si int) error {
		r := shards[si]
		_, sp := obs.StartSpanf(ctx, "bgpscan.shard[%d]", si)
		defer sp.End()
		s := bgpscan.NewScannerWithVisibility(opts.Visibility)
		s.Quarantine = opts.FaultPolicy == Degrade
		sm := m.shard()
		tally := &tallies[si]
		it := inf.IterRange(start.AddDays(r.Lo), start.AddDays(r.Hi-1))
		for it.Next() {
			if err := ctx.Err(); err != nil {
				return err // cancelled mid-shard: abandon the remaining days
			}
			day := it.Day()
			if err := s.BeginDay(day); err != nil {
				return err
			}
			tally.days++
			if opts.Wire {
				ribs, updates, err := it.MRT()
				if err != nil {
					return fmt.Errorf("pipeline: encoding day %s: %w", day, err)
				}
				for ci, rib := range ribs {
					if inj != nil {
						rib = inj.MangleMRT(MRTSalt(day, ci, 0), rib)
					}
					tally.archives++
					sm.archive()
					if err := s.ObserveMRT(rib); err != nil {
						return fmt.Errorf("pipeline: scanning day %s collector rrc%02d rib dump: %w", day, ci, err)
					}
				}
				for ci, upd := range updates {
					if inj != nil {
						upd = inj.MangleMRT(MRTSalt(day, ci, 1), upd)
					}
					tally.archives++
					sm.archive()
					if err := s.ObserveMRT(upd); err != nil {
						return fmt.Errorf("pipeline: scanning day %s collector rrc%02d update dump: %w", day, ci, err)
					}
				}
			} else {
				for _, o := range it.Observations() {
					s.ObserveRoutes(o.Prefixes, o.Path)
				}
			}
			if err := s.EndDay(); err != nil {
				return err
			}
			sm.endOfDay(s.Stats())
		}
		part := s.FinishPartial()
		parts[si] = part
		sp.SetAttr("days", int64(tally.days))
		sp.SetAttr(obs.AttrIn, tally.archives)
		sp.SetAttr(obs.AttrOut, part.Stats.Routes)
		sp.SetAttr(obs.AttrDrops, part.Stats.DropPrefixLen+part.Stats.DropLoop+
			part.Stats.DropMalformed+part.Stats.DropLowVis)
		sp.SetAttr(obs.AttrQuarantined, part.Stats.QuarantinedTruncated+part.Stats.QuarantinedTails)
		return nil
	})
	if err != nil {
		return nil, OpAccount{}, err
	}
	var op OpAccount
	for _, t := range tallies {
		op.Days += t.days
		op.Archives += t.archives
	}
	if inj != nil {
		// The batch scan mangles every archive exactly once, so the
		// injector's running MRT tallies are the whole-window account.
		rep := inj.Report()
		op.InjectedTruncatedRecords = rep.TruncatedRecords
		op.InjectedTailChops = rep.TailChops
	}
	return bgpscan.MergeActivities(parts...), op, nil
}

// MRTSalt derives the stable per-archive injection salt from the
// archive's identity (day, collector index, rib(0)-or-update(1) kind),
// so reruns mangle exactly the same bytes. The streaming tailer salts
// its per-day archives with the same identity, which makes a chaos-mode
// tail re-create the batch scan's faults bit-for-bit — including on
// days re-scanned after a crash.
func MRTSalt(d dates.Day, ci, kind int) uint64 {
	return uint64(uint32(d))<<16 | uint64(ci)<<1 | uint64(kind)
}

// Cones exposes the world's customer-cone ground truth as the ASRank
// substitute consumed by the §6.2 analysis.
type Cones struct {
	sizes map[asn.ASN]int
}

// Cones builds the cone table for the dataset's world.
func (ds *Dataset) Cones() *Cones {
	c := &Cones{sizes: make(map[asn.ASN]int)}
	for _, l := range ds.World.Lives {
		c.sizes[l.ASN] = ds.World.Orgs[l.OrgID].ConeSize
	}
	return c
}

// ConeSize implements core.ConeProvider.
func (c *Cones) ConeSize(a asn.ASN) (int, bool) {
	n, ok := c.sizes[a]
	return n, ok
}

// Window returns the observation window the dataset was built over.
func (ds *Dataset) Window() (start, end dates.Day) {
	return ds.World.Config.Start, ds.World.Config.End
}

// AliveSeries computes the daily alive counts over the full observation
// window — the series a snapshot stores so a served dataset can answer
// /v1/rir/{r}/series without the activity data the computation needs.
func (ds *Dataset) AliveSeries() *core.AliveSeries {
	return ds.Joint.Alive(ds.World.Config.Start, ds.World.Config.End)
}

// adminRecord matches the paper's Listing 1 administrative dataset.
type adminRecord struct {
	ASN       asn.ASN `json:"ASN"`
	RegDate   string  `json:"regDate"`
	StartDate string  `json:"startdate"`
	EndDate   string  `json:"enddate"`
	Status    string  `json:"status"`
	Registry  string  `json:"registry"`
}

// opRecord matches the paper's Listing 1 operational dataset.
type opRecord struct {
	ASN       asn.ASN `json:"ASN"`
	StartDate string  `json:"startdate"`
	EndDate   string  `json:"enddate"`
}

// WriteAdminJSON writes the administrative dataset in the paper's
// published JSON shape (Listing 1). The output order is pinned — sorted
// by ASN, then span start, then registry — independent of the index's
// in-memory order, so the encoding is a stable identity for lives that
// the snapshot store and its golden tests can rely on.
func (ds *Dataset) WriteAdminJSON(w io.Writer) error {
	lives := make([]core.AdminLifetime, len(ds.Admin.Lifetimes))
	copy(lives, ds.Admin.Lifetimes)
	sort.SliceStable(lives, func(a, b int) bool {
		if lives[a].ASN != lives[b].ASN {
			return lives[a].ASN < lives[b].ASN
		}
		if lives[a].Span.Start != lives[b].Span.Start {
			return lives[a].Span.Start < lives[b].Span.Start
		}
		return lives[a].RIR < lives[b].RIR
	})
	enc := json.NewEncoder(w)
	for _, l := range lives {
		rec := adminRecord{
			ASN:       l.ASN,
			RegDate:   l.RegDate.String(),
			StartDate: l.Span.Start.String(),
			EndDate:   l.Span.End.String(),
			Status:    "allocated",
			Registry:  l.RIR.Token(),
		}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("pipeline: encoding admin dataset: %w", err)
		}
	}
	return nil
}

// WriteOpJSON writes the operational dataset (Listing 1), sorted by ASN
// then span start regardless of the index's in-memory order.
func (ds *Dataset) WriteOpJSON(w io.Writer) error {
	lives := make([]core.OpLifetime, len(ds.Ops.Lifetimes))
	copy(lives, ds.Ops.Lifetimes)
	sort.SliceStable(lives, func(a, b int) bool {
		if lives[a].ASN != lives[b].ASN {
			return lives[a].ASN < lives[b].ASN
		}
		return lives[a].Span.Start < lives[b].Span.Start
	})
	enc := json.NewEncoder(w)
	for _, l := range lives {
		rec := opRecord{
			ASN:       l.ASN,
			StartDate: l.Span.Start.String(),
			EndDate:   l.Span.End.String(),
		}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("pipeline: encoding op dataset: %w", err)
		}
	}
	return nil
}
