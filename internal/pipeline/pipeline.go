// Package pipeline wires the full Figure 1 flow together: world
// simulation → delegation archive (+restoration) on the administrative
// side, collector rendering (+scanning) on the operational side, then
// lifetime construction and the joint analysis. Commands, examples,
// tests and benchmarks all drive the system through this package.
package pipeline

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"

	"parallellives/internal/asn"
	"parallellives/internal/bgpscan"
	"parallellives/internal/collector"
	"parallellives/internal/core"
	"parallellives/internal/dates"
	"parallellives/internal/faults"
	"parallellives/internal/obs"
	"parallellives/internal/parallel"
	"parallellives/internal/registry"
	"parallellives/internal/restore"
	"parallellives/internal/worldsim"
)

// Options selects the data fidelity and thresholds of a run.
type Options struct {
	// World configures the simulated ground truth.
	World worldsim.Config
	// Wire routes all BGP data through binary MRT encode/decode; off, the
	// scanner consumes the collector's observations directly (identical
	// results, verified by tests — wire mode simply exercises the codec).
	Wire bool
	// TextFiles routes all delegation data through file-text
	// serialization and lenient re-parsing.
	TextFiles bool
	// Timeout is the operational inactivity timeout (0 = the paper's 30).
	Timeout int
	// Visibility is the minimum distinct-peer threshold (0 = the
	// paper's 2).
	Visibility int

	// FaultPolicy selects FailFast (zero value, the seed behaviour) or
	// Degrade handling of damaged inputs; see the policy docs.
	FaultPolicy FaultPolicy
	// Budget bounds how much damage a Degrade run absorbs before failing
	// anyway (zero fields take defaults).
	Budget ErrorBudget
	// Inject, when non-nil, plants the plan's deterministic faults into
	// the run's sources and MRT streams (chaos mode). MRT faults need
	// Wire; delegation faults apply either way.
	Inject *faults.Plan

	// Obs, when non-nil, instruments the run: each stage becomes a span
	// on Obs.Tracer (the tree behind -stage-report and /v1/stages), and
	// record/quarantine counters are published to Obs.Registry per day,
	// so progress reporters and /metrics scrapes observe the run live.
	// Nil costs nothing on the hot paths.
	Obs *obs.Obs

	// Workers bounds the goroutines each parallelizable stage uses:
	// restoration runs the five RIR sources concurrently, the scan shards
	// the day range, and the segmentation/join passes shard per ASN. 0
	// means runtime.GOMAXPROCS(0); 1 runs fully sequentially. The output
	// is bit-for-bit identical for every value — parallelism here is a
	// wall-clock knob, never a results knob (pinned by the equivalence
	// property test).
	Workers int
}

// DefaultOptions runs the paper's configuration at the default scale.
func DefaultOptions() Options {
	return Options{
		World:      worldsim.DefaultConfig(),
		Wire:       false,
		TextFiles:  true,
		Timeout:    core.DefaultInactivityTimeout,
		Visibility: bgpscan.MinPeerVisibility,
	}
}

// Dataset is the fully built dual-lens dataset.
type Dataset struct {
	Options    Options
	World      *worldsim.World
	Archive    *registry.Archive
	Restored   *restore.Result
	Activity   *bgpscan.Activity
	Admin      *core.AdminIndex
	AdminStats core.AdminStats
	Ops        *core.OpIndex
	Joint      *core.Joint
	Health     *Health
	// Trace is the run's root span when Options.Obs was set (nil
	// otherwise): one child span per stage, carrying the record-flow
	// attributes the -stage-report table renders.
	Trace *obs.Span
}

// Run executes the full pipeline.
func Run(opts Options) (*Dataset, error) {
	if opts.Timeout == 0 {
		opts.Timeout = core.DefaultInactivityTimeout
	}
	if opts.Visibility == 0 {
		opts.Visibility = bgpscan.MinPeerVisibility
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ds := &Dataset{Options: opts}

	ctx := context.Background()
	var m *runMetrics
	if opts.Obs != nil {
		ctx = obs.WithTracer(ctx, opts.Obs.Tracer)
		m = newRunMetrics(opts.Obs.Registry)
	}
	ctx, root := obs.StartSpan(ctx, "pipeline.run")
	ds.Trace = root

	_, spSim := obs.StartSpan(ctx, "worldsim")
	ds.World = worldsim.Generate(opts.World)
	ds.Archive = registry.Build(ds.World)
	spSim.SetAttr(obs.AttrOut, int64(len(ds.World.Lives)))
	spSim.SetAttr("orgs", int64(len(ds.World.Orgs)))
	spSim.End()

	var inj *faults.Injector
	if opts.Inject != nil {
		inj = faults.NewInjector(*opts.Inject)
	}
	health := &Health{Policy: opts.FaultPolicy}

	// Administrative dimension: restore the archive, build lifetimes.
	_, spRestore := obs.StartSpan(ctx, "restore")
	sources := make([]registry.Source, 0, asn.NumRIRs)
	var retriers []*faults.Retrier
	for _, r := range asn.All() {
		var src registry.Source
		if opts.TextFiles {
			src = ds.Archive.TextSource(r)
		} else {
			src = ds.Archive.Source(r)
		}
		if inj != nil {
			// Chaos mode: the source becomes fallible; a Retrier recovers
			// transient errors with bounded deterministic backoff and
			// abandons days that keep failing.
			ret := faults.NewRetrier(inj.WrapSource(src), faults.RetryPolicy{})
			retriers = append(retriers, ret)
			src = ret
		}
		sources = append(sources, src)
	}
	ds.Restored = restore.RestoreParallel(sources, ds.Archive.ERXReference(), workers)
	for _, ret := range retriers {
		st := ret.Stats()
		health.Delegation.Retries += st.Retries
		health.Delegation.AbandonedReads += st.Abandoned
		health.Delegation.RetryBackoff += st.Backoff
	}
	health.Delegation.FilesScanned = ds.Restored.Report.FilesScanned
	health.Delegation.MissingFileDays = ds.Restored.Report.MissingFileDays
	health.Delegation.CorruptFileDays = ds.Restored.Report.CorruptFileDays
	health.Coverage = ds.Restored.Coverage
	spRestore.SetAttr(obs.AttrIn, int64(ds.Restored.Report.FilesScanned))
	spRestore.SetAttr(obs.AttrOut, int64(len(ds.Restored.Runs)))
	spRestore.SetAttr(obs.AttrDrops, int64(ds.Restored.Report.MistakenRecordsDropped))
	spRestore.SetAttr("missing_file_days", int64(ds.Restored.Report.MissingFileDays))
	spRestore.SetAttr("corrupt_file_days", int64(ds.Restored.Report.CorruptFileDays))
	spRestore.SetAttr("retries", health.Delegation.Retries)
	spRestore.End()
	if opts.FaultPolicy == FailFast && health.Delegation.AbandonedReads > 0 {
		return nil, fmt.Errorf("pipeline: %d delegation day reads abandoned after retries (policy failfast)",
			health.Delegation.AbandonedReads)
	}
	_, spAdmin := obs.StartSpan(ctx, "segment.admin")
	lifetimes, stats := core.BuildAdminLifetimesParallel(ds.Restored, workers)
	ds.Admin = core.NewAdminIndex(lifetimes)
	ds.AdminStats = stats
	spAdmin.SetAttr(obs.AttrIn, int64(len(ds.Restored.Runs)))
	spAdmin.SetAttr(obs.AttrOut, int64(len(ds.Admin.Lifetimes)))
	spAdmin.SetAttr("asns", int64(stats.ASNs))
	spAdmin.End()

	// Operational dimension: scan the collectors.
	sctx, spScan := obs.StartSpan(ctx, "bgpscan")
	act, err := scan(sctx, ds.World, opts, inj, health, m, workers)
	if err != nil {
		return nil, err
	}
	ds.Activity = act
	spScan.SetAttr("days", int64(health.DaysProcessed))
	spScan.SetAttr(obs.AttrIn, health.MRT.Archives)
	spScan.SetAttr(obs.AttrOut, act.Stats.Routes)
	spScan.SetAttr("records", act.Stats.RIBRecords+act.Stats.UpdateMessages)
	spScan.SetAttr(obs.AttrDrops, act.Stats.DropPrefixLen+act.Stats.DropLoop+
		act.Stats.DropMalformed+act.Stats.DropLowVis)
	spScan.SetAttr(obs.AttrQuarantined, act.Stats.QuarantinedTruncated+act.Stats.QuarantinedTails)
	spScan.End()
	_, spOp := obs.StartSpan(ctx, "segment.op")
	ds.Ops = core.BuildOpLifetimesParallel(act, opts.Timeout, workers)
	spOp.SetAttr(obs.AttrIn, int64(len(act.ASNs)))
	spOp.SetAttr(obs.AttrOut, int64(len(ds.Ops.Lifetimes)))
	spOp.End()
	health.MRT.Records = act.Stats.RIBRecords + act.Stats.UpdateMessages
	health.MRT.QuarantinedTruncated = act.Stats.QuarantinedTruncated
	health.MRT.QuarantinedTails = act.Stats.QuarantinedTails
	health.MRT.Malformed = act.Stats.DropMalformed
	if inj != nil {
		rep := inj.Report()
		health.Injected = &rep
	}
	ds.Health = health
	if opts.FaultPolicy == Degrade {
		if err := health.checkBudget(opts.Budget); err != nil {
			return nil, err
		}
	}

	_, spJoin := obs.StartSpan(ctx, "join")
	ds.Joint = core.AnalyzeParallel(ds.Admin, ds.Ops, workers)
	tax := ds.Joint.Taxonomy()
	spJoin.SetAttr(obs.AttrIn, int64(len(ds.Admin.Lifetimes)+len(ds.Ops.Lifetimes)))
	spJoin.SetAttr(obs.AttrOut, int64(tax.AdminComplete+tax.AdminPartial+tax.AdminUnused))
	spJoin.SetAttr("admin_complete", int64(tax.AdminComplete))
	spJoin.SetAttr("op_outside", int64(tax.OpOutside))
	spJoin.End()
	root.End()
	m.observeStages(root)
	return ds, nil
}

// scan runs the operational side of the pipeline, sharding the day
// range across workers scanners. Each day is self-contained (per-day
// peer bitmaps), the collector renders any day identically from any
// iterator position, and chaos-mode injection salts are identity-derived
// (mrtSalt), so per-shard partials merge into bit-for-bit the sequential
// activity. Day-granular spans would explode the trace tree, so each
// shard gets one span (bgpscan.shard[i]) and publishes per-day registry
// deltas through its shardMetrics view; m may be nil (observability
// off).
func scan(ctx context.Context, w *worldsim.World, opts Options, inj *faults.Injector, health *Health, m *runMetrics, workers int) (*bgpscan.Activity, error) {
	inf := collector.New(w)
	start, end := w.Config.Start, w.Config.End
	shards := parallel.Shards(end.Sub(start)+1, workers)

	// Per-shard tallies, reduced in shard order after the scan so the
	// Health accounting is schedule-independent.
	type shardTally struct {
		days     int
		archives int64
	}
	parts := make([]*bgpscan.Activity, len(shards))
	tallies := make([]shardTally, len(shards))

	err := parallel.ForEach(ctx, len(shards), workers, func(ctx context.Context, si int) error {
		r := shards[si]
		_, sp := obs.StartSpan(ctx, fmt.Sprintf("bgpscan.shard[%d]", si))
		defer sp.End()
		s := bgpscan.NewScannerWithVisibility(opts.Visibility)
		s.Quarantine = opts.FaultPolicy == Degrade
		sm := m.shard()
		tally := &tallies[si]
		it := inf.IterRange(start.AddDays(r.Lo), start.AddDays(r.Hi-1))
		for it.Next() {
			day := it.Day()
			if err := s.BeginDay(day); err != nil {
				return err
			}
			tally.days++
			if opts.Wire {
				ribs, updates, err := it.MRT()
				if err != nil {
					return fmt.Errorf("pipeline: encoding day %s: %w", day, err)
				}
				for ci, rib := range ribs {
					if inj != nil {
						rib = inj.MangleMRT(mrtSalt(day, ci, 0), rib)
					}
					tally.archives++
					sm.archive()
					if err := s.ObserveMRT(rib); err != nil {
						return fmt.Errorf("pipeline: scanning day %s collector rrc%02d rib dump: %w", day, ci, err)
					}
				}
				for ci, upd := range updates {
					if inj != nil {
						upd = inj.MangleMRT(mrtSalt(day, ci, 1), upd)
					}
					tally.archives++
					sm.archive()
					if err := s.ObserveMRT(upd); err != nil {
						return fmt.Errorf("pipeline: scanning day %s collector rrc%02d update dump: %w", day, ci, err)
					}
				}
			} else {
				for _, o := range it.Observations() {
					s.ObserveRoutes(o.Prefixes, o.Path)
				}
			}
			if err := s.EndDay(); err != nil {
				return err
			}
			sm.endOfDay(s.Stats())
		}
		part := s.FinishPartial()
		parts[si] = part
		sp.SetAttr("days", int64(tally.days))
		sp.SetAttr(obs.AttrIn, tally.archives)
		sp.SetAttr(obs.AttrOut, part.Stats.Routes)
		sp.SetAttr(obs.AttrDrops, part.Stats.DropPrefixLen+part.Stats.DropLoop+
			part.Stats.DropMalformed+part.Stats.DropLowVis)
		sp.SetAttr(obs.AttrQuarantined, part.Stats.QuarantinedTruncated+part.Stats.QuarantinedTails)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, t := range tallies {
		health.DaysProcessed += t.days
		health.MRT.Archives += t.archives
	}
	return bgpscan.MergeActivities(parts...), nil
}

// mrtSalt derives the stable per-archive injection salt from the
// archive's identity (day, collector, rib-or-update kind), so reruns
// mangle exactly the same bytes.
func mrtSalt(d dates.Day, ci, kind int) uint64 {
	return uint64(uint32(d))<<16 | uint64(ci)<<1 | uint64(kind)
}

// Cones exposes the world's customer-cone ground truth as the ASRank
// substitute consumed by the §6.2 analysis.
type Cones struct {
	sizes map[asn.ASN]int
}

// Cones builds the cone table for the dataset's world.
func (ds *Dataset) Cones() *Cones {
	c := &Cones{sizes: make(map[asn.ASN]int)}
	for _, l := range ds.World.Lives {
		c.sizes[l.ASN] = ds.World.Orgs[l.OrgID].ConeSize
	}
	return c
}

// ConeSize implements core.ConeProvider.
func (c *Cones) ConeSize(a asn.ASN) (int, bool) {
	n, ok := c.sizes[a]
	return n, ok
}

// Window returns the observation window the dataset was built over.
func (ds *Dataset) Window() (start, end dates.Day) {
	return ds.World.Config.Start, ds.World.Config.End
}

// AliveSeries computes the daily alive counts over the full observation
// window — the series a snapshot stores so a served dataset can answer
// /v1/rir/{r}/series without the activity data the computation needs.
func (ds *Dataset) AliveSeries() *core.AliveSeries {
	return ds.Joint.Alive(ds.World.Config.Start, ds.World.Config.End)
}

// adminRecord matches the paper's Listing 1 administrative dataset.
type adminRecord struct {
	ASN       asn.ASN `json:"ASN"`
	RegDate   string  `json:"regDate"`
	StartDate string  `json:"startdate"`
	EndDate   string  `json:"enddate"`
	Status    string  `json:"status"`
	Registry  string  `json:"registry"`
}

// opRecord matches the paper's Listing 1 operational dataset.
type opRecord struct {
	ASN       asn.ASN `json:"ASN"`
	StartDate string  `json:"startdate"`
	EndDate   string  `json:"enddate"`
}

// WriteAdminJSON writes the administrative dataset in the paper's
// published JSON shape (Listing 1). The output order is pinned — sorted
// by ASN, then span start, then registry — independent of the index's
// in-memory order, so the encoding is a stable identity for lives that
// the snapshot store and its golden tests can rely on.
func (ds *Dataset) WriteAdminJSON(w io.Writer) error {
	lives := make([]core.AdminLifetime, len(ds.Admin.Lifetimes))
	copy(lives, ds.Admin.Lifetimes)
	sort.SliceStable(lives, func(a, b int) bool {
		if lives[a].ASN != lives[b].ASN {
			return lives[a].ASN < lives[b].ASN
		}
		if lives[a].Span.Start != lives[b].Span.Start {
			return lives[a].Span.Start < lives[b].Span.Start
		}
		return lives[a].RIR < lives[b].RIR
	})
	enc := json.NewEncoder(w)
	for _, l := range lives {
		rec := adminRecord{
			ASN:       l.ASN,
			RegDate:   l.RegDate.String(),
			StartDate: l.Span.Start.String(),
			EndDate:   l.Span.End.String(),
			Status:    "allocated",
			Registry:  l.RIR.Token(),
		}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("pipeline: encoding admin dataset: %w", err)
		}
	}
	return nil
}

// WriteOpJSON writes the operational dataset (Listing 1), sorted by ASN
// then span start regardless of the index's in-memory order.
func (ds *Dataset) WriteOpJSON(w io.Writer) error {
	lives := make([]core.OpLifetime, len(ds.Ops.Lifetimes))
	copy(lives, ds.Ops.Lifetimes)
	sort.SliceStable(lives, func(a, b int) bool {
		if lives[a].ASN != lives[b].ASN {
			return lives[a].ASN < lives[b].ASN
		}
		return lives[a].Span.Start < lives[b].Span.Start
	})
	enc := json.NewEncoder(w)
	for _, l := range lives {
		rec := opRecord{
			ASN:       l.ASN,
			StartDate: l.Span.Start.String(),
			EndDate:   l.Span.End.String(),
		}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("pipeline: encoding op dataset: %w", err)
		}
	}
	return nil
}
