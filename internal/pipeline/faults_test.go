package pipeline

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"parallellives/internal/dates"
	"parallellives/internal/faults"
)

// faultOptions is the reduced wire-mode world the fault tests run over.
func faultOptions(end string) Options {
	opts := smallOptions()
	opts.World.Scale = 0.01
	opts.World.End = dates.MustParse(end)
	opts.Wire = true
	return opts
}

// datasetBytes serializes both Listing-1 outputs — the byte-identity
// witness for the degrade-is-a-no-op property.
func datasetBytes(t *testing.T, ds *Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ds.WriteAdminJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteOpJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDegradeIsNoOpOnCleanInput is the safety property behind making
// Degrade a reasonable default for dirty archives: with zero faults the
// two policies produce byte-identical datasets.
func TestDegradeIsNoOpOnCleanInput(t *testing.T) {
	if testing.Short() {
		t.Skip("full wire-mode pipeline runs")
	}
	for _, seed := range []int64{1, 5} {
		opts := faultOptions("2005-12-31")
		opts.World.Seed = seed
		ff, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.FaultPolicy = Degrade
		dg, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(datasetBytes(t, ff), datasetBytes(t, dg)) {
			t.Fatalf("seed %d: degrade over clean input changed the dataset bytes", seed)
		}
		if ft, dt := ff.Joint.Taxonomy(), dg.Joint.Taxonomy(); ft != dt {
			t.Fatalf("seed %d: taxonomies differ: failfast %+v degrade %+v", seed, ft, dt)
		}
		if h := dg.Health; h.MRT.QuarantinedTruncated != 0 || h.MRT.QuarantinedTails != 0 ||
			h.Delegation.Retries != 0 || h.Delegation.AbandonedReads != 0 {
			t.Fatalf("seed %d: clean degrade run reports damage: %+v", seed, h)
		}
	}
}

// TestFaultStormDegrade is the acceptance storm: MRT truncation and tail
// chops, corrupt and dropped delegation days, and transient source
// errors, all at once. The Degrade run must complete, the Health report
// must account for every injected fault by class, and the Table 3
// taxonomy must stay within 2 percentage points of the clean run.
func TestFaultStormDegrade(t *testing.T) {
	if testing.Short() {
		t.Skip("full wire-mode pipeline runs")
	}
	opts := faultOptions("2006-12-31")
	clean, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}

	plan := faults.DefaultStorm(7)
	opts.Inject = &plan
	opts.FaultPolicy = Degrade
	storm, err := Run(opts)
	if err != nil {
		t.Fatalf("degrade run under fault storm failed: %v", err)
	}
	inj := storm.Health.Injected
	if inj == nil {
		t.Fatal("storm run carries no injection report")
	}
	if inj.TruncatedRecords == 0 || inj.TailChops == 0 || inj.CorruptDays == 0 ||
		inj.DroppedDays == 0 || inj.TransientErrs == 0 {
		t.Fatalf("storm left a fault class empty: %+v", inj)
	}

	// Every injected fault is accounted for by class, exactly.
	h, ch := storm.Health, clean.Health
	if h.MRT.QuarantinedTruncated != inj.TruncatedRecords {
		t.Errorf("quarantined %d truncated records, injected %d",
			h.MRT.QuarantinedTruncated, inj.TruncatedRecords)
	}
	if h.MRT.QuarantinedTails != inj.TailChops {
		t.Errorf("quarantined %d tails, injected %d", h.MRT.QuarantinedTails, inj.TailChops)
	}
	if h.MRT.Malformed != ch.MRT.Malformed {
		t.Errorf("malformed count moved under the storm: %d vs clean %d",
			h.MRT.Malformed, ch.MRT.Malformed)
	}
	if got := h.Delegation.CorruptFileDays - ch.Delegation.CorruptFileDays; int64(got) != inj.CorruptDays {
		t.Errorf("corrupt file days grew by %d, injected %d", got, inj.CorruptDays)
	}
	if got := h.Delegation.MissingFileDays - ch.Delegation.MissingFileDays; int64(got) != inj.CorruptDays+inj.DroppedDays {
		t.Errorf("missing file days grew by %d, injected %d corrupt + %d dropped",
			got, inj.CorruptDays, inj.DroppedDays)
	}
	if h.Delegation.Retries != inj.TransientErrs {
		t.Errorf("retries = %d, injected transient errors = %d",
			h.Delegation.Retries, inj.TransientErrs)
	}
	if h.Delegation.AbandonedReads != 0 {
		t.Errorf("%d reads abandoned; burst 2 must stay within the 4-attempt budget",
			h.Delegation.AbandonedReads)
	}
	if h.DaysProcessed != ch.DaysProcessed {
		t.Errorf("storm changed the scanned day count: %d vs %d",
			h.DaysProcessed, ch.DaysProcessed)
	}

	// The collector redundancy (2 collectors × multiple peers) absorbs the
	// storm: taxonomy proportions stay within 2pp of clean.
	ct, st := clean.Joint.Taxonomy(), storm.Joint.Taxonomy()
	cTot := float64(ct.AdminComplete + ct.AdminPartial + ct.AdminUnused)
	sTot := float64(st.AdminComplete + st.AdminPartial + st.AdminUnused)
	for _, p := range []struct {
		name           string
		clean, stormed float64
	}{
		{"complete", float64(ct.AdminComplete) / cTot, float64(st.AdminComplete) / sTot},
		{"partial", float64(ct.AdminPartial) / cTot, float64(st.AdminPartial) / sTot},
		{"unused", float64(ct.AdminUnused) / cTot, float64(st.AdminUnused) / sTot},
	} {
		if math.Abs(p.clean-p.stormed) > 0.02 {
			t.Errorf("%s share drifted beyond 2pp: clean %.4f storm %.4f",
				p.name, p.clean, p.stormed)
		}
	}

	// Bit-for-bit reproducibility: the same plan injects the same faults
	// and yields the same dataset.
	again, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if *again.Health.Injected != *inj {
		t.Errorf("injection reports differ across identical runs: %+v vs %+v",
			*again.Health.Injected, *inj)
	}
	if !bytes.Equal(datasetBytes(t, storm), datasetBytes(t, again)) {
		t.Error("identical storm runs produced different dataset bytes")
	}
}

// TestFailFastStormErrors: under the same storm the seed policy aborts,
// and the error names the day and collector that broke (the satellite
// error-context requirement).
func TestFailFastStormErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("full wire-mode pipeline run")
	}
	opts := faultOptions("2005-12-31")
	plan := faults.DefaultStorm(7)
	opts.Inject = &plan
	_, err := Run(opts)
	if err == nil {
		t.Fatal("fail-fast run under fault storm succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, "pipeline: scanning day ") || !strings.Contains(msg, "collector rrc") {
		t.Errorf("error lacks day/collector context: %v", err)
	}
}

// TestErrorBudgetBacksStop: a storm beyond the budget fails even in
// Degrade mode — mostly-quarantined input must not silently pass.
func TestErrorBudgetBackstop(t *testing.T) {
	if testing.Short() {
		t.Skip("full wire-mode pipeline run")
	}
	opts := faultOptions("2004-06-30")
	plan := faults.Plan{Seed: 3, TruncateRecordRate: 0.9}
	opts.Inject = &plan
	opts.FaultPolicy = Degrade
	if _, err := Run(opts); err == nil {
		t.Fatal("degrade run with 90% truncation passed the error budget")
	} else if !strings.Contains(err.Error(), "error budget exceeded") {
		t.Errorf("unexpected failure: %v", err)
	}
}
