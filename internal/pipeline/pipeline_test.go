package pipeline

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"parallellives/internal/asn"
	"parallellives/internal/core"
	"parallellives/internal/dates"
	"parallellives/internal/worldsim"
)

// smallOptions runs the full pipeline over a reduced world: a shorter
// window keeps the day loops fast while all mechanisms stay exercised.
func smallOptions() Options {
	opts := DefaultOptions()
	opts.World.Scale = 0.02
	opts.World.Start = dates.MustParse("2004-01-01")
	opts.World.End = dates.MustParse("2009-12-31")
	return opts
}

func runSmall(t *testing.T) *Dataset {
	t.Helper()
	ds, err := Run(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

var smallDS *Dataset

func getSmall(t *testing.T) *Dataset {
	if testing.Short() {
		t.Skip("multi-year pipeline run")
	}
	if smallDS == nil {
		smallDS = runSmall(t)
	}
	return smallDS
}

func TestPipelineRecoversGroundTruthLifetimes(t *testing.T) {
	ds := getSmall(t)
	w := ds.World

	// Every ground-truth life published in the files must be covered by
	// some reconstructed lifetime, with a start close to its publication
	// date (file granularity + registry adoption dates allow slack).
	missed, total := 0, 0
	for _, l := range w.Lives {
		if l.FileFrom > w.Config.End {
			continue
		}
		mid := dates.Max(l.FileFrom, w.Config.Start).AddDays(l.Alloc.End.Sub(l.FileFrom) / 2)
		if mid > w.Config.End {
			mid = w.Config.End
		}
		total++
		found := false
		for _, ai := range ds.Admin.Of(l.ASN) {
			if ds.Admin.Lifetimes[ai].Span.Contains(mid) {
				found = true
				break
			}
		}
		if !found {
			missed++
		}
	}
	if total == 0 {
		t.Fatal("no ground-truth lives to check")
	}
	// AfriNIC publishes only from 2005; everything else should be found.
	if frac := float64(missed) / float64(total); frac > 0.06 {
		t.Errorf("%d/%d (%.1f%%) ground-truth lives not covered by reconstructed lifetimes",
			missed, total, 100*frac)
	}
}

func TestPipelineRegDatesRestored(t *testing.T) {
	ds := getSmall(t)
	w := ds.World

	// The RIPE placeholder quirk must be repaired: reconstructed
	// lifetimes of placeholder lives must carry the true old date, not
	// 1993-09-01 — unless the true date IS close to the placeholder.
	placeholder := dates.MustParse("1993-09-01")
	checked := 0
	for _, l := range w.Lives {
		if !l.PlaceholderQuirk || l.RegDate == placeholder {
			continue
		}
		for _, ai := range ds.Admin.Of(l.ASN) {
			al := ds.Admin.Lifetimes[ai]
			if !al.Span.Contains(dates.Max(l.FileFrom, w.Config.Start)) {
				continue
			}
			checked++
			if al.RegDate == placeholder {
				t.Errorf("ASN %v still shows the placeholder date", l.ASN)
			} else if al.RegDate != l.RegDate {
				t.Errorf("ASN %v regdate = %v, want %v", l.ASN, al.RegDate, l.RegDate)
			}
		}
	}
	if checked == 0 {
		t.Skip("no placeholder lives in this world")
	}
}

func TestPipelineMistakenAllocationsDropped(t *testing.T) {
	ds := getSmall(t)
	if ds.Restored.Report.MistakenRecordsDropped == 0 {
		t.Error("expected mistaken allocations to be dropped")
	}
	st := ds.Archive.InjectionStats()
	if ds.Restored.Report.MistakenRecordsDropped < st.MistakenAllocASNs {
		t.Errorf("dropped %d mistaken records, archive injected %d ASNs",
			ds.Restored.Report.MistakenRecordsDropped, st.MistakenAllocASNs)
	}
}

func TestPipelineTaxonomyShapes(t *testing.T) {
	ds := getSmall(t)
	tx := ds.Joint.Taxonomy()
	adminTotal := tx.AdminComplete + tx.AdminPartial + tx.AdminUnused
	if adminTotal != len(ds.Admin.Lifetimes) {
		t.Fatalf("taxonomy does not partition admin lives: %d vs %d",
			adminTotal, len(ds.Admin.Lifetimes))
	}
	opTotal := tx.OpComplete + tx.OpPartial + tx.OpOutside
	if opTotal != len(ds.Ops.Lifetimes) {
		t.Fatalf("taxonomy does not partition op lives: %d vs %d",
			opTotal, len(ds.Ops.Lifetimes))
	}
	t.Logf("taxonomy: %+v", tx)
	// Complete overlap dominates (paper: 78.6%); unused is substantial
	// (paper: ~18%); partial is small (paper: 3.4%).
	fc := float64(tx.AdminComplete) / float64(adminTotal)
	fu := float64(tx.AdminUnused) / float64(adminTotal)
	fp := float64(tx.AdminPartial) / float64(adminTotal)
	if fc < 0.5 {
		t.Errorf("complete-overlap share %.2f too low", fc)
	}
	if fu < 0.08 || fu > 0.45 {
		t.Errorf("unused share %.2f out of band", fu)
	}
	if fp > 0.2 {
		t.Errorf("partial share %.2f too high", fp)
	}
}

func TestPipelineDetectsPlantedHijacks(t *testing.T) {
	ds := getSmall(t)
	out := ds.Joint.Outside()
	planted := ds.World.PostDeallocHijacks
	if len(planted) == 0 {
		t.Skip("no planted post-dealloc hijacks in this window")
	}
	detected := 0
	for _, seg := range planted {
		for _, f := range out.Findings {
			if f.ASN == seg.ASN && f.Kind == core.OutPostDealloc && f.Hijack &&
				f.Span.Overlaps(seg.Span) {
				detected++
				break
			}
		}
	}
	if detected < len(planted)*2/3 {
		t.Errorf("detected %d/%d planted post-dealloc hijacks", detected, len(planted))
	}
}

func TestPipelineDetectsPlantedSquats(t *testing.T) {
	ds := getSmall(t)
	planted := ds.World.DormantSquats
	if len(planted) == 0 {
		t.Skip("no squats planted in this window")
	}
	findings := ds.Joint.DetectDormantSquats(core.DefaultSquatParams())
	detected := 0
	for _, seg := range planted {
		for _, f := range findings {
			if f.ASN == seg.ASN && f.OpSpan.Overlaps(seg.Span) {
				detected++
				break
			}
		}
	}
	if detected < len(planted)*2/3 {
		t.Errorf("detected %d/%d planted dormant squats", detected, len(planted))
	}
}

func TestPipelineClassifiesFatFingers(t *testing.T) {
	ds := getSmall(t)
	planted := ds.World.FatFingers
	if len(planted) == 0 {
		t.Skip("no fat fingers in this window")
	}
	out := ds.Joint.Outside()
	matched, totalVisible := 0, 0
	for _, seg := range planted {
		if seg.VictimASN == 0 {
			continue // unexplained noise population
		}
		totalVisible++
		for _, f := range out.Findings {
			if f.ASN == seg.ASN &&
				(f.Kind == core.OutFatFingerPrepend || f.Kind == core.OutFatFingerMOAS) {
				matched++
				break
			}
		}
	}
	if totalVisible > 0 && matched < totalVisible/2 {
		t.Errorf("classified %d/%d planted fat-finger origins", matched, totalVisible)
	}
	if out.LargeLeaks == 0 && len(ds.World.LargeLeaks) > 0 {
		t.Error("no large leaks classified despite planted population")
	}
}

func TestPipelineWireAndDirectAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("wire mode is slow")
	}
	opts := smallOptions()
	opts.World.Scale = 0.01
	opts.World.End = dates.MustParse("2005-12-31")
	direct, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Wire = true
	wire, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Ops.Lifetimes) != len(wire.Ops.Lifetimes) {
		t.Fatalf("op lifetime counts differ: %d vs %d",
			len(direct.Ops.Lifetimes), len(wire.Ops.Lifetimes))
	}
	dt, wt := direct.Joint.Taxonomy(), wire.Joint.Taxonomy()
	if dt != wt {
		t.Errorf("taxonomies differ: direct %+v wire %+v", dt, wt)
	}
}

func TestListingOneJSONShape(t *testing.T) {
	ds := getSmall(t)
	var buf bytes.Buffer
	if err := ds.WriteAdminJSON(&buf); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(strings.NewReader(buf.String()))
	var rec map[string]any
	if err := dec.Decode(&rec); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"ASN", "regDate", "startdate", "enddate", "status", "registry"} {
		if _, ok := rec[k]; !ok {
			t.Errorf("admin record missing %q", k)
		}
	}
	buf.Reset()
	if err := ds.WriteOpJSON(&buf); err != nil {
		t.Fatal(err)
	}
	dec = json.NewDecoder(strings.NewReader(buf.String()))
	if err := dec.Decode(&rec); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"ASN", "startdate", "enddate"} {
		if _, ok := rec[k]; !ok {
			t.Errorf("op record missing %q", k)
		}
	}
}

func TestConesProvider(t *testing.T) {
	ds := getSmall(t)
	cones := ds.Cones()
	found := false
	for _, a := range ds.World.TransitASNs {
		if n, ok := cones.ConeSize(a); ok && n > 0 {
			found = true
		}
	}
	if !found {
		t.Error("transit ASNs should have non-zero cones")
	}
	if _, ok := cones.ConeSize(asn.ASN(4_000_000_123)); ok {
		t.Error("unknown ASN should have no cone")
	}
}

func TestAliveSeriesMonotonicOverall(t *testing.T) {
	ds := getSmall(t)
	s := ds.Joint.Alive(ds.World.Config.Start, ds.World.Config.End)
	// The overall administrative count grows strongly over the window.
	n := len(s.AdminOverall)
	first := avgInts(s.AdminOverall[100:200])
	last := avgInts(s.AdminOverall[n-100:])
	if last <= first {
		t.Errorf("admin alive count did not grow: %.0f -> %.0f", first, last)
	}
	// The operational line sits below the administrative line.
	opLast := avgInts(s.OpOverall[n-100:])
	if opLast >= last {
		t.Errorf("op alive (%.0f) should be below admin alive (%.0f)", opLast, last)
	}
	// Per-RIR admin sums to slightly more than overall (transfers can
	// double-count at boundaries) but must be close.
	sum := 0
	for r := range s.AdminPerRIR {
		sum += s.AdminPerRIR[r][n-1]
	}
	if sum < s.AdminOverall[n-1] {
		t.Errorf("per-RIR sum %d below overall %d", sum, s.AdminOverall[n-1])
	}
}

func avgInts(xs []int) float64 {
	t := 0
	for _, x := range xs {
		t += x
	}
	return float64(t) / float64(len(xs))
}

func TestTimeoutSweepShapes(t *testing.T) {
	ds := getSmall(t)
	sweep := core.SweepTimeouts(ds.Activity, ds.Admin, []int{1, 15, 30, 50, 100})
	for i := 1; i < len(sweep); i++ {
		if sweep[i].GapFractionBelow < sweep[i-1].GapFractionBelow {
			t.Error("gap CDF must be non-decreasing in the timeout")
		}
		if sweep[i].OpLifetimes > sweep[i-1].OpLifetimes {
			t.Error("op lifetime count must be non-increasing in the timeout")
		}
		if sweep[i].AdminWithOneOrLessOpLives < sweep[i-1].AdminWithOneOrLessOpLives {
			t.Error("one-or-less fraction must be non-decreasing in the timeout")
		}
	}
	t.Logf("sweep: %+v", sweep)
}

func TestPipelineDeterministic(t *testing.T) {
	opts := smallOptions()
	opts.World.Scale = 0.005
	opts.World.End = dates.MustParse("2005-12-31")
	a, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Admin.Lifetimes) != len(b.Admin.Lifetimes) {
		t.Fatal("admin lifetime counts differ between identical runs")
	}
	for i := range a.Admin.Lifetimes {
		if a.Admin.Lifetimes[i] != b.Admin.Lifetimes[i] {
			t.Fatalf("lifetime %d differs", i)
		}
	}
	if len(a.Ops.Lifetimes) != len(b.Ops.Lifetimes) {
		t.Fatal("op lifetime counts differ")
	}
}

// worldsimSanity double-checks the reduced-window world is non-trivial.
func TestSmallWorldNonTrivial(t *testing.T) {
	ds := getSmall(t)
	if len(ds.Admin.Lifetimes) < 300 {
		t.Errorf("only %d admin lifetimes; world too small to be meaningful",
			len(ds.Admin.Lifetimes))
	}
	if len(ds.Ops.Lifetimes) < 200 {
		t.Errorf("only %d op lifetimes", len(ds.Ops.Lifetimes))
	}
	var _ = worldsim.VisFull // keep import
}
