package pipeline

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"parallellives/internal/dates"
)

var update = flag.Bool("update", false, "rewrite the golden JSON datasets")

// goldenOptions is deliberately tiny: the golden files live in the repo,
// so the world must stay small while still producing both datasets.
func goldenOptions() Options {
	opts := DefaultOptions()
	opts.World.Scale = 0.01
	opts.World.Seed = 1
	opts.World.Start = dates.MustParse("2004-01-01")
	opts.World.End = dates.MustParse("2005-12-31")
	return opts
}

// TestJSONGolden pins the exact bytes of WriteAdminJSON and WriteOpJSON.
// The encoding is a published interchange shape (Listing 1 of the
// paper), so any drift — field order, date format, record order — is a
// compatibility break and must show up as a diff here. Regenerate with
//
//	go test ./internal/pipeline/ -run TestJSONGolden -update
func TestJSONGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-year pipeline run")
	}
	ds, err := Run(goldenOptions())
	if err != nil {
		t.Fatal(err)
	}
	writers := []struct {
		name  string
		write func(ds *Dataset, buf *bytes.Buffer) error
	}{
		{"admin_golden.jsonl", func(ds *Dataset, buf *bytes.Buffer) error { return ds.WriteAdminJSON(buf) }},
		{"op_golden.jsonl", func(ds *Dataset, buf *bytes.Buffer) error { return ds.WriteOpJSON(buf) }},
	}
	for _, w := range writers {
		t.Run(w.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := w.write(ds, &buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", w.name)
			if *update {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create it)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("output drifted from golden file %s (%d vs %d bytes); if the change is intentional, rerun with -update", path, buf.Len(), len(want))
			}
		})
	}
}

// TestJSONDeterministic proves the writers are order-independent: two
// runs of the same world encode identically.
func TestJSONDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-year pipeline runs")
	}
	var outs [2][]byte
	for i := range outs {
		ds, err := Run(goldenOptions())
		if err != nil {
			t.Fatal(err)
		}
		var admin, op bytes.Buffer
		if err := ds.WriteAdminJSON(&admin); err != nil {
			t.Fatal(err)
		}
		if err := ds.WriteOpJSON(&op); err != nil {
			t.Fatal(err)
		}
		outs[i] = append(admin.Bytes(), op.Bytes()...)
	}
	if !bytes.Equal(outs[0], outs[1]) {
		t.Fatal("two identical runs produced different JSON datasets")
	}
}
