package pipeline

import (
	"fmt"
	"strings"
	"time"

	"parallellives/internal/asn"
	"parallellives/internal/faults"
	"parallellives/internal/obs"
	"parallellives/internal/restore"
)

// FaultPolicy selects how Run reacts to damaged inputs.
type FaultPolicy int

const (
	// FailFast aborts the run on the first input error — the seed
	// behaviour, and the zero value.
	FailFast FaultPolicy = iota
	// Degrade quarantines damaged records, keeps damaged days, and
	// completes the run as long as the ErrorBudget holds, reporting
	// everything it skipped in the Health report.
	Degrade
)

// String implements fmt.Stringer.
func (p FaultPolicy) String() string {
	if p == Degrade {
		return "degrade"
	}
	return "failfast"
}

// ParseFaultPolicy parses a policy name ("failfast" or "degrade").
func ParseFaultPolicy(s string) (FaultPolicy, error) {
	switch strings.ToLower(s) {
	case "", "failfast":
		return FailFast, nil
	case "degrade":
		return Degrade, nil
	}
	return FailFast, fmt.Errorf("pipeline: unknown fault policy %q (want failfast or degrade)", s)
}

// ErrorBudget bounds how much damage a Degrade run may absorb before it
// fails anyway: a dataset built from mostly-quarantined inputs is worse
// than no dataset. Zero fields take the defaults noted.
type ErrorBudget struct {
	// MaxQuarantinedFrac is the largest tolerated fraction of MRT route
	// records quarantined, over records seen (default 0.25).
	MaxQuarantinedFrac float64
	// MaxLostDayFrac is the largest tolerated fraction of delegation days
	// with no usable file, in any one registry (default 0.60 — delegation
	// archives start sparse, and step (i) bridges long runs of holes).
	MaxLostDayFrac float64
}

func (b ErrorBudget) withDefaults() ErrorBudget {
	if b.MaxQuarantinedFrac <= 0 {
		b.MaxQuarantinedFrac = 0.25
	}
	if b.MaxLostDayFrac <= 0 {
		b.MaxLostDayFrac = 0.60
	}
	return b
}

// MRTHealth is the operational side of the Health report.
type MRTHealth struct {
	Archives             int64 // MRT archives fed to the scanner
	Records              int64 // route records accepted (RIB + updates)
	QuarantinedTruncated int64 // records skipped as truncated
	QuarantinedTails     int64 // archives cut short by a framing break
	Malformed            int64 // records skipped as generically malformed
}

// QuarantinedFrac returns the fraction of route records quarantined.
func (m MRTHealth) QuarantinedFrac() float64 {
	total := m.Records + m.QuarantinedTruncated
	if total == 0 {
		return 0
	}
	return float64(m.QuarantinedTruncated) / float64(total)
}

// DelegationHealth is the administrative side of the Health report.
type DelegationHealth struct {
	FilesScanned    int
	MissingFileDays int           // days bridged with no usable file
	CorruptFileDays int           // of those, days lost to corrupt retrievals
	Retries         int64         // transient source errors recovered by retry
	AbandonedReads  int64         // days given up on after the retry budget
	RetryBackoff    time.Duration // total (virtual) backoff spent retrying
}

// Health is Run's account of what the pipeline ingested, skipped and
// recovered — the report that makes a Degrade run auditable instead of
// silently lossy.
type Health struct {
	Policy        FaultPolicy
	DaysProcessed int // days scanned on the operational side
	MRT           MRTHealth
	Delegation    DelegationHealth
	// Coverage is the per-RIR usable-file inventory of this run.
	Coverage [asn.NumRIRs]restore.Coverage
	// Injected echoes the fault injector's report when Options.Inject was
	// set (nil otherwise), so tests and chaos runs can reconcile planted
	// faults against observed quarantines.
	Injected *faults.Report
}

// checkBudget returns an error when the damage absorbed exceeds the
// budget — the Degrade-mode backstop.
func (h *Health) checkBudget(b ErrorBudget) error {
	b = b.withDefaults()
	if f := h.MRT.QuarantinedFrac(); f > b.MaxQuarantinedFrac {
		return fmt.Errorf("pipeline: error budget exceeded: %.1f%% of MRT route records quarantined (budget %.1f%%)",
			f*100, b.MaxQuarantinedFrac*100)
	}
	for _, r := range asn.All() {
		c := h.Coverage[r]
		if c.Days == 0 {
			continue
		}
		if f := float64(c.MissingDays) / float64(c.Days); f > b.MaxLostDayFrac {
			return fmt.Errorf("pipeline: error budget exceeded: %.1f%% of %s delegation days unusable (budget %.1f%%)",
				f*100, r.Token(), b.MaxLostDayFrac*100)
		}
	}
	return nil
}

// Export publishes the report as gauges under
// parallellives_pipeline_health_*, bridging a finished (or snapshot-
// restored) run's account into a registry so /metrics scrapes carry the
// build's health next to live serving metrics. Gauges, not counters:
// the report is a state to republish, not an event stream — calling
// Export again after another Run overwrites rather than double-counts.
func (h *Health) Export(reg *obs.Registry) {
	if h == nil || reg == nil {
		return
	}
	reg.GaugeVec("parallellives_pipeline_health_policy",
		"Fault policy the dataset was built under (value 1 on the active policy).",
		"policy").With(h.Policy.String()).Set(1)
	reg.Gauge("parallellives_pipeline_health_days_processed",
		"Operational-side days scanned by the build.").Set(float64(h.DaysProcessed))

	mrt := reg.GaugeVec("parallellives_pipeline_health_mrt",
		"Operational-side ingest account of the build, by field.", "field")
	mrt.With("archives").Set(float64(h.MRT.Archives))
	mrt.With("records").Set(float64(h.MRT.Records))
	mrt.With("quarantined_truncated").Set(float64(h.MRT.QuarantinedTruncated))
	mrt.With("quarantined_tails").Set(float64(h.MRT.QuarantinedTails))
	mrt.With("malformed").Set(float64(h.MRT.Malformed))
	reg.Gauge("parallellives_pipeline_health_quarantined_frac",
		"Fraction of MRT route records quarantined during the build.").Set(h.MRT.QuarantinedFrac())

	del := reg.GaugeVec("parallellives_pipeline_health_delegation",
		"Administrative-side ingest account of the build, by field.", "field")
	del.With("files_scanned").Set(float64(h.Delegation.FilesScanned))
	del.With("missing_file_days").Set(float64(h.Delegation.MissingFileDays))
	del.With("corrupt_file_days").Set(float64(h.Delegation.CorruptFileDays))
	del.With("retries").Set(float64(h.Delegation.Retries))
	del.With("abandoned_reads").Set(float64(h.Delegation.AbandonedReads))
	reg.Gauge("parallellives_pipeline_health_retry_backoff_seconds",
		"Total virtual backoff spent retrying delegation reads.").Set(h.Delegation.RetryBackoff.Seconds())

	fileDays := reg.GaugeVec("parallellives_pipeline_health_coverage_file_days",
		"Delegation days with a usable file, per registry.", "rir")
	missDays := reg.GaugeVec("parallellives_pipeline_health_coverage_missing_days",
		"Delegation days bridged with no usable file, per registry.", "rir")
	var worstLost float64
	for _, r := range asn.All() {
		c := h.Coverage[r]
		if c.Days == 0 {
			continue
		}
		fileDays.With(r.Token()).Set(float64(c.FileDays))
		missDays.With(r.Token()).Set(float64(c.MissingDays))
		if f := float64(c.MissingDays) / float64(c.Days); f > worstLost {
			worstLost = f
		}
	}
	reg.Gauge("parallellives_pipeline_health_worst_lost_day_frac",
		"Largest per-registry fraction of unusable delegation days.").Set(worstLost)

	if h.Injected != nil {
		inj := reg.GaugeVec("parallellives_pipeline_health_injected_faults",
			"Faults planted by the chaos injector, by class.", "class")
		inj.With("truncated_records").Set(float64(h.Injected.TruncatedRecords))
		inj.With("tail_chops").Set(float64(h.Injected.TailChops))
		inj.With("corrupt_days").Set(float64(h.Injected.CorruptDays))
		inj.With("dropped_days").Set(float64(h.Injected.DroppedDays))
		inj.With("transient_errs").Set(float64(h.Injected.TransientErrs))
		inj.With("short_reads").Set(float64(h.Injected.ShortReads))
		inj.With("stalls").Set(float64(h.Injected.Stalls))
	}
}

// Summary returns a one-line digest for command output.
func (h *Health) Summary() string {
	return fmt.Sprintf("health: policy=%s days=%d records=%d quarantined=%d tails=%d malformed=%d missing-file-days=%d (corrupt %d) retries=%d abandoned=%d",
		h.Policy, h.DaysProcessed, h.MRT.Records,
		h.MRT.QuarantinedTruncated, h.MRT.QuarantinedTails, h.MRT.Malformed,
		h.Delegation.MissingFileDays, h.Delegation.CorruptFileDays,
		h.Delegation.Retries, h.Delegation.AbandonedReads)
}

// Text renders the full report, one aligned block per side.
func (h *Health) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault policy            %s\n", h.Policy)
	fmt.Fprintf(&b, "Days processed          %d\n", h.DaysProcessed)
	fmt.Fprintf(&b, "MRT archives            %d\n", h.MRT.Archives)
	fmt.Fprintf(&b, "  route records         %d\n", h.MRT.Records)
	fmt.Fprintf(&b, "  quarantined truncated %d (%.2f%%)\n", h.MRT.QuarantinedTruncated, h.MRT.QuarantinedFrac()*100)
	fmt.Fprintf(&b, "  quarantined tails     %d\n", h.MRT.QuarantinedTails)
	fmt.Fprintf(&b, "  malformed skipped     %d\n", h.MRT.Malformed)
	fmt.Fprintf(&b, "Delegation files        %d\n", h.Delegation.FilesScanned)
	fmt.Fprintf(&b, "  missing file days     %d\n", h.Delegation.MissingFileDays)
	fmt.Fprintf(&b, "  corrupt file days     %d\n", h.Delegation.CorruptFileDays)
	fmt.Fprintf(&b, "  retries / abandoned   %d / %d (backoff %v)\n",
		h.Delegation.Retries, h.Delegation.AbandonedReads, h.Delegation.RetryBackoff)
	for _, r := range asn.All() {
		c := h.Coverage[r]
		if c.Days == 0 {
			continue
		}
		fmt.Fprintf(&b, "Coverage %-8s       %d/%d file days (%d missing, %d corrupt)\n",
			r.Token(), c.FileDays, c.Days, c.MissingDays, c.CorruptDays)
	}
	if h.Injected != nil {
		i := h.Injected
		fmt.Fprintf(&b, "Injected faults         %d (trunc %d, tails %d, corrupt %d, dropped %d, transient %d, short %d, stalls %d)\n",
			i.Total(), i.TruncatedRecords, i.TailChops, i.CorruptDays,
			i.DroppedDays, i.TransientErrs, i.ShortReads, i.Stalls)
	}
	return b.String()
}
