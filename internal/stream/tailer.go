package stream

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"parallellives/internal/bgpscan"
	"parallellives/internal/core"
	"parallellives/internal/dates"
	"parallellives/internal/faults"
	"parallellives/internal/lifestore"
	"parallellives/internal/obs"
	"parallellives/internal/pipeline"
)

// Options configures a Tailer.
type Options struct {
	// Pipeline is the run configuration the tail must converge with: the
	// final snapshot of a full tail is byte-identical to pipeline.Run
	// over these options. Wire is forced on — a tailer consumes MRT
	// bytes, there is no direct-observation streaming path.
	Pipeline pipeline.Options
	// Source yields complete days. Required.
	Source Source
	// CheckpointDir holds the checkpoint journal. Required.
	CheckpointDir string
	// SnapshotPath, when set, is where each published snapshot is saved
	// (atomically, via lifestore.SaveSnapshot).
	SnapshotPath string
	// SnapshotEvery publishes a full snapshot every N committed days
	// (default 1). The final day of the window always publishes.
	SnapshotEvery int
	// Reconnect paces Source.Reconnect after staleness or transport
	// errors (zero fields take faults defaults). When the policy's
	// attempts run out the tailer gives up and Run returns
	// faults.ErrRetriesExhausted.
	Reconnect faults.RetryPolicy
	// Obs, when non-nil, publishes the stream metrics and traces the
	// per-snapshot Complete stages.
	Obs *obs.Obs
	// OnSnapshot, when non-nil, receives every published snapshot (after
	// SnapshotPath is written). Called from the tail loop goroutine.
	OnSnapshot func(day dates.Day, snap *lifestore.Snapshot)
}

// Status is the tailer's externally visible state, rendered under
// "ingest" in /v1/health and retrievable via Tailer.Status.
type Status struct {
	// Healthy is false while the source is stale (watchdog tripped) and
	// the tailer is inside its reconnect ladder.
	Healthy bool `json:"healthy"`
	// Draining is true once shutdown has been requested and the tailer
	// is committing/publishing its final state.
	Draining bool `json:"draining"`

	LastCommittedDay string `json:"last_committed_day,omitempty"`
	// IngestLagDays is window-end minus last committed day.
	IngestLagDays int    `json:"ingest_lag_days"`
	CheckpointSeq uint64 `json:"checkpoint_seq"`
	// CheckpointAgeSeconds is the time since the last commit (0 before
	// the first commit of this process).
	CheckpointAgeSeconds float64 `json:"checkpoint_age_seconds"`

	DaysCommitted int64 `json:"days_committed"`
	DaysSkipped   int64 `json:"days_skipped"`
	StaleReads    int64 `json:"stale_reads"`
	Reconnects    int64 `json:"reconnects"`

	// Recovery evidence from this process's startup.
	TornWriteRecoveries int  `json:"torn_write_recoveries"`
	CorruptCheckpoints  int  `json:"corrupt_checkpoints"`
	UsedPrevCheckpoint  bool `json:"used_prev_checkpoint,omitempty"`
	FreshStart          bool `json:"fresh_start,omitempty"`
}

// Tailer follows a Source one complete day at a time, folding each day
// into a running activity carry and committing its position to the
// checkpoint journal after every day. Construct with NewTailer, drive
// with Run; Status and Snapshot may be called concurrently with Run.
type Tailer struct {
	opt      Options
	journal  *Journal
	ckpt     *Checkpoint // adopted checkpoint (nil on fresh start)
	recovery RecoveryReport
	fp       uint64
	m        *tailMetrics

	// Tail-loop state (owned by Run's goroutine).
	base     *pipeline.Base
	carry    *bgpscan.Activity
	last     dates.Day
	days     int
	archives int64
	injTrunc int64
	injChops int64

	mu         sync.Mutex
	status     Status
	lastCommit time.Time
	snap       *lifestore.Snapshot
	snapDay    dates.Day

	// afterCommit, when set by tests, runs right after each checkpoint
	// commit; a non-nil return aborts Run with that error — the hook the
	// crash-equivalence test uses to kill the tailer at exact day
	// boundaries.
	afterCommit func(dates.Day) error
}

// Fingerprint derives the identity a checkpoint binds to: everything in
// the options that shapes the carried state. Resuming a journal written
// under a different fingerprint is a configuration error, not
// corruption — the carry would silently diverge from the batch result —
// so NewTailer rejects it outright.
func Fingerprint(opts pipeline.Options) uint64 {
	if opts.Timeout == 0 {
		opts.Timeout = core.DefaultInactivityTimeout
	}
	if opts.Visibility == 0 {
		opts.Visibility = bgpscan.MinPeerVisibility
	}
	h := fnv.New64a()
	inject := ""
	if opts.Inject != nil {
		inject = fmt.Sprintf("%+v", *opts.Inject)
	}
	fmt.Fprintf(h, "world=%+v wire=%t text=%t timeout=%d vis=%d policy=%d inject=%s",
		opts.World, true, opts.TextFiles, opts.Timeout, opts.Visibility, opts.FaultPolicy, inject)
	return h.Sum64()
}

// NewTailer opens (or creates) the checkpoint journal under
// opt.CheckpointDir, recovers past any torn or corrupt checkpoints, and
// verifies the adopted checkpoint matches opt.Pipeline's fingerprint.
func NewTailer(opt Options) (*Tailer, error) {
	if opt.Source == nil {
		return nil, errors.New("stream: tailer needs a Source")
	}
	if opt.CheckpointDir == "" {
		return nil, errors.New("stream: tailer needs a CheckpointDir")
	}
	opt.Pipeline.Wire = true
	if opt.SnapshotEvery <= 0 {
		opt.SnapshotEvery = 1
	}

	j, ckpt, rec, err := OpenJournal(opt.CheckpointDir)
	if err != nil {
		return nil, err
	}
	fp := Fingerprint(opt.Pipeline)
	if ckpt != nil && ckpt.Fingerprint != fp {
		return nil, fmt.Errorf("stream: checkpoint %s was written by a different configuration (fingerprint %016x, want %016x); move it aside or match the options",
			j.Path(), ckpt.Fingerprint, fp)
	}

	t := &Tailer{opt: opt, journal: j, ckpt: ckpt, recovery: rec, fp: fp}
	var reg *obs.Registry
	if opt.Obs != nil {
		reg = opt.Obs.Registry
	}
	t.m = newTailMetrics(reg)
	torn := rec.TornTemps
	if rec.UsedPrev {
		torn++
	}
	t.m.counter(t.m.tornRecoveries, int64(torn))
	t.m.counter(t.m.corruptCkpts, int64(rec.CorruptCheckpoints))
	t.status = Status{
		Healthy:             true,
		TornWriteRecoveries: torn,
		CorruptCheckpoints:  rec.CorruptCheckpoints,
		UsedPrevCheckpoint:  rec.UsedPrev,
		FreshStart:          rec.Fresh,
	}
	if ckpt != nil {
		t.status.LastCommittedDay = ckpt.LastDay.String()
		t.status.CheckpointSeq = ckpt.Seq
		t.status.DaysCommitted = int64(ckpt.Days)
	}
	return t, nil
}

// Recovery reports what NewTailer found (and survived) in the
// checkpoint directory.
func (t *Tailer) Recovery() RecoveryReport { return t.recovery }

// Status returns a point-in-time copy of the tailer's state.
func (t *Tailer) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.status
	if !t.lastCommit.IsZero() {
		s.CheckpointAgeSeconds = time.Since(t.lastCommit).Seconds()
	}
	return s
}

// Snapshot returns the latest published snapshot and its last day
// (nil, dates.None before the first publish).
func (t *Tailer) Snapshot() (*lifestore.Snapshot, dates.Day) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.snap == nil {
		return nil, dates.None
	}
	return t.snap, t.snapDay
}

// Run builds the window-static base, adopts the recovered checkpoint,
// and tails the source until the configured window's end day has been
// committed and published. It returns nil on completion and on a
// graceful drain (ctx cancelled: the in-flight day is committed, the
// committed state is published, then Run exits); any other return is a
// hard failure. Run must not be called twice.
func (t *Tailer) Run(ctx context.Context) error {
	if t.opt.Obs != nil {
		ctx = obs.WithTracer(ctx, t.opt.Obs.Tracer)
	}
	base, err := pipeline.BuildBase(ctx, t.opt.Pipeline)
	if err != nil {
		return err
	}
	t.base = base
	start, end := base.World.Config.Start, base.World.Config.End

	// Adopt the recovered position, or start fresh one day before the
	// window so Next asks for the first day.
	if t.ckpt != nil {
		t.carry = t.ckpt.Carry
		t.last = t.ckpt.LastDay
		t.days = t.ckpt.Days
		t.archives = t.ckpt.Archives
		t.injTrunc = t.ckpt.InjTruncatedRecords
		t.injChops = t.ckpt.InjTailChops
	} else {
		t.carry = bgpscan.NewPartial()
		t.last = start.AddDays(-1)
	}
	t.gauges(end)

	rec := faults.NewReconnector(t.opt.Reconnect)
	sincePublish := 0
	published := t.last // last day included in a published snapshot

	for t.last < end {
		if ctx.Err() != nil {
			return t.drain(published)
		}
		dd, err := t.opt.Source.Next(ctx, t.last)
		switch {
		case err == nil:
			// Healthy read: reset the watchdog and the backoff ladder.
			rec.Reset()
			t.setHealthy(true)
		case ctx.Err() != nil:
			return t.drain(published)
		case errors.Is(err, ErrStale):
			// Watchdog: the source is wedged. Flag unhealthy, pace a
			// reconnect, try again; give up when the ladder runs out.
			t.setHealthy(false)
			t.m.counter(t.m.staleReads, 1)
			t.bumpStatus(func(s *Status) { s.StaleReads++ })
			if werr := rec.Wait(ctx); werr != nil {
				if ctx.Err() != nil {
					return t.drain(published)
				}
				return fmt.Errorf("stream: source stayed stale through %d reconnects: %w", rec.Stats().Retries, werr)
			}
			t.m.counter(t.m.reconnects, 1)
			t.bumpStatus(func(s *Status) { s.Reconnects++ })
			if rerr := t.opt.Source.Reconnect(ctx); rerr != nil && ctx.Err() == nil {
				// A failed reconnect burns an attempt and loops back into
				// the next paced Wait via another stale read.
				continue
			}
			continue
		default:
			return fmt.Errorf("stream: reading next day after %s: %w", t.last, err)
		}

		if dd.Day <= t.last {
			// Re-delivery of a committed day (source rewound after a
			// reconnect, or a restart re-reading the directory): an
			// idempotent no-op by design.
			t.m.counter(t.m.daysSkipped, 1)
			t.bumpStatus(func(s *Status) { s.DaysSkipped++ })
			continue
		}
		if dd.Day != t.last.AddDays(1) {
			return fmt.Errorf("stream: source skipped from %s to %s; days must arrive contiguously", t.last, dd.Day)
		}

		if err := t.ingestDay(dd); err != nil {
			return err
		}
		sincePublish++
		if t.afterCommit != nil {
			if err := t.afterCommit(dd.Day); err != nil {
				return err
			}
		}
		if sincePublish >= t.opt.SnapshotEvery || t.last == end {
			if err := t.publish(ctx); err != nil {
				return err
			}
			sincePublish, published = 0, t.last
		}
	}
	return nil
}

// ingestDay scans one day through the partial-merge path, folds it into
// the carry and commits the checkpoint.
func (t *Tailer) ingestDay(dd *Day) error {
	opts, inj := t.base.Options, t.base.Injector
	s := bgpscan.NewScannerWithVisibility(opts.Visibility)
	s.Quarantine = opts.FaultPolicy == pipeline.Degrade

	var before faults.Report
	if inj != nil {
		before = inj.Report()
	}
	if err := s.BeginDay(dd.Day); err != nil {
		return err
	}
	for _, ar := range dd.Archives {
		data := ar.Data
		if inj != nil {
			// Identity-derived salt: the same archive mangles the same way
			// here as in the batch scan, and again on a post-crash rescan.
			data = inj.MangleMRT(pipeline.MRTSalt(dd.Day, ar.CollectorIdx, int(ar.Kind)), data)
		}
		t.archives++
		if err := s.ObserveMRT(data); err != nil {
			return fmt.Errorf("stream: scanning day %s collector %s %s dump: %w", dd.Day, ar.Collector, ar.Kind, err)
		}
	}
	if err := s.EndDay(); err != nil {
		return err
	}
	t.carry.Absorb(s.FinishPartial())
	if inj != nil {
		// Only the delta is credited to this day: a day re-scanned after
		// a crash re-mangles on the live injector, but its faults were
		// already committed, so absolute tallies would double-count.
		after := inj.Report()
		t.injTrunc += after.TruncatedRecords - before.TruncatedRecords
		t.injChops += after.TailChops - before.TailChops
	}
	t.last = dd.Day
	t.days++

	ckpt := &Checkpoint{
		Fingerprint:         t.fp,
		LastDay:             t.last,
		Days:                t.days,
		Archives:            t.archives,
		InjTruncatedRecords: t.injTrunc,
		InjTailChops:        t.injChops,
		Carry:               t.carry,
	}
	if err := t.journal.Commit(ckpt); err != nil {
		return err
	}
	t.m.counter(t.m.daysCommitted, 1)
	t.m.gauge(t.m.ckptSeq, float64(ckpt.Seq))
	now := time.Now()
	t.m.gauge(t.m.lastCommit, float64(now.Unix()))
	t.gauges(t.base.World.Config.End)
	t.mu.Lock()
	t.status.DaysCommitted++
	t.status.LastCommittedDay = t.last.String()
	t.status.CheckpointSeq = ckpt.Seq
	t.lastCommit = now
	t.mu.Unlock()
	return nil
}

// publish assembles the full Dataset for the days committed so far and
// captures it as a snapshot.
func (t *Tailer) publish(ctx context.Context) error {
	act := bgpscan.Finalize(t.carry)
	op := pipeline.OpAccount{
		Days:                     t.days,
		Archives:                 t.archives,
		InjectedTruncatedRecords: t.injTrunc,
		InjectedTailChops:        t.injChops,
	}
	ds, err := t.base.Complete(ctx, act, op)
	if err != nil {
		return err
	}
	snap := lifestore.Capture(ds)
	if t.opt.SnapshotPath != "" {
		if err := lifestore.SaveSnapshot(snap, t.opt.SnapshotPath); err != nil {
			return err
		}
	}
	t.mu.Lock()
	t.snap, t.snapDay = snap, t.last
	t.mu.Unlock()
	t.m.counter(t.m.snapshots, 1)
	t.m.gauge(t.m.lastPublish, float64(time.Now().Unix()))
	if t.opt.OnSnapshot != nil {
		t.opt.OnSnapshot(t.last, snap)
	}
	return nil
}

// drain is the graceful-shutdown tail: the in-flight day (if any) has
// already been committed by the loop body, so all that remains is to
// publish the committed state — with a fresh context, since the run's
// is cancelled — and report a clean exit.
func (t *Tailer) drain(published dates.Day) error {
	t.bumpStatus(func(s *Status) { s.Draining = true })
	if t.days == 0 || t.last == published {
		return nil // nothing committed, or latest state already out
	}
	return t.publish(context.Background())
}

func (t *Tailer) setHealthy(h bool) {
	v := 0.0
	if h {
		v = 1.0
	}
	t.m.gauge(t.m.healthy, v)
	t.bumpStatus(func(s *Status) { s.Healthy = h })
}

func (t *Tailer) gauges(end dates.Day) {
	lag := 0
	if t.last < end {
		lag = end.Sub(t.last)
	}
	t.m.gauge(t.m.lagDays, float64(lag))
	t.bumpStatus(func(s *Status) { s.IngestLagDays = lag })
}

func (t *Tailer) bumpStatus(f func(*Status)) {
	t.mu.Lock()
	f(&t.status)
	t.mu.Unlock()
}
