// Package stream is the crash-safe streaming ingestion layer: a Tailer
// follows a growing collector archive one complete day at a time, folds
// each day into a running activity carry via the bgpscan partial-merge
// path (no recompute of prior days), and records its position and
// carry-state in a CRC-checksummed checkpoint journal written with
// write-temp-fsync-rename discipline. A crash — of the process or of a
// checkpoint write — resumes from the last committed day, and the tail
// of a full window converges on a lifestore snapshot byte-identical to
// a single batch pipeline.Run over the same options (the
// crash-equivalence property test pins this, on clean and chaos
// inputs).
//
// The Source abstraction follows bgpipe's ris-live stage: messages
// (here: whole days) carry their collector identity, reads have a
// deadline, staleness is an error (ErrStale) that triggers the Tailer's
// reconnect path, and reconnects are paced by the bounded deterministic
// backoff of faults.Reconnector.
package stream

import (
	"context"
	"errors"
	"fmt"
	"io"

	"parallellives/internal/dates"
)

// ArchiveKind distinguishes a day's RIB snapshot from its update dump.
// The numeric values are the MRT injection-salt kinds (pipeline.MRTSalt),
// so a chaos-mode tail mangles archives identically to the batch scan.
type ArchiveKind uint8

const (
	KindRIB ArchiveKind = iota
	KindUpdates
)

func (k ArchiveKind) String() string {
	if k == KindRIB {
		return "rib"
	}
	return "upd"
}

// Archive is one collector's MRT archive for one day, tagged with the
// identity the scan keys on: the collector's name and index (the
// ris-live COLLECTOR tag) and the rib/update kind.
type Archive struct {
	Collector    string
	CollectorIdx int
	Kind         ArchiveKind
	Data         []byte
}

// Day is one complete day of collector data. Archives must be ordered
// exactly as the batch scan feeds them — all RIB dumps in collector
// order, then all update dumps in collector order. The order is
// load-bearing: the scanner clamps >64 distinct peers per day onto one
// bit, so observation order affects visibility masks, and equivalence
// with the batch pipeline requires feeding identical order.
type Day struct {
	Day      dates.Day
	Archives []Archive
}

// DayFromMRT assembles a Day from per-collector RIB and update archives
// (the shape collector.Iter.MRT returns), naming collectors rrc%02d as
// the simulated infrastructure does.
func DayFromMRT(d dates.Day, ribs, updates [][]byte) *Day {
	day := &Day{Day: d, Archives: make([]Archive, 0, len(ribs)+len(updates))}
	for ci, rib := range ribs {
		day.Archives = append(day.Archives, Archive{
			Collector: fmt.Sprintf("rrc%02d", ci), CollectorIdx: ci, Kind: KindRIB, Data: rib,
		})
	}
	for ci, upd := range updates {
		day.Archives = append(day.Archives, Archive{
			Collector: fmt.Sprintf("rrc%02d", ci), CollectorIdx: ci, Kind: KindUpdates, Data: upd,
		})
	}
	return day
}

// ErrStale reports that a source produced no complete day within its
// read deadline — staleness-as-error (ris-live's --delay-err), the
// signal that sends the Tailer into its reconnect path instead of
// blocking forever on a wedged source.
var ErrStale = errors.New("stream: source stale: no complete day within the read deadline")

// Source yields complete days of collector data in ascending day order.
// Implementations are used by one goroutine at a time.
type Source interface {
	// Next returns the first complete day after `after`, blocking until
	// one is available, the read deadline passes (ErrStale), or ctx is
	// cancelled. A source that re-delivers a day at or before `after`
	// (e.g. after a reconnect rewound its cursor) is tolerated: the
	// Tailer skips already-committed days idempotently.
	Next(ctx context.Context, after dates.Day) (*Day, error)
	// Reconnect re-establishes the source after ErrStale or a transport
	// error. It is paced externally (faults.Reconnector); a failed
	// reconnect just triggers another paced attempt.
	Reconnect(ctx context.Context) error
	io.Closer
}
