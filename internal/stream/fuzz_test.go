package stream

import (
	"errors"
	"reflect"
	"testing"

	"parallellives/internal/bgpscan"
	"parallellives/internal/lifestore"
)

// FuzzCheckpointDecode throws arbitrary bytes at the checkpoint
// decoder. Invariants: never a panic; every failure carries
// lifestore.ErrCorrupt; every success re-encodes to something that
// decodes back equal (the codec is a bijection on its valid range).
func FuzzCheckpointDecode(f *testing.F) {
	valid := testCheckpoint().Encode()
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // torn write
	f.Add(valid[:ckptFixedLen]) // header only
	f.Add([]byte(ckptMagic))
	f.Add([]byte{})
	empty := (&Checkpoint{Carry: bgpscan.NewPartial()}).Encode()
	f.Add(empty)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCheckpoint(data)
		if err != nil {
			if !errors.Is(err, lifestore.ErrCorrupt) {
				t.Fatalf("decode error %v does not carry lifestore.ErrCorrupt", err)
			}
			return
		}
		re, err := DecodeCheckpoint(c.Encode())
		if err != nil {
			t.Fatalf("re-decoding a re-encoded valid checkpoint: %v", err)
		}
		if !reflect.DeepEqual(re, c) {
			t.Fatalf("re-encode round trip drift:\nfirst  %+v\nsecond %+v", c, re)
		}
	})
}
