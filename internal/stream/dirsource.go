package stream

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"time"

	"parallellives/internal/dates"
)

// Directory layout: one file per archive plus a marker per complete day.
//
//	2006-01-02.rrc00.rib.mrt
//	2006-01-02.rrc00.upd.mrt
//	2006-01-02.ok          ← "<kind> <collector> <filename>" per line
//
// The writer publishes every archive with write-temp-rename and writes
// the marker last, so marker presence implies the day is complete and
// the marker's line order is the scan feeding order (RIBs in collector
// order, then updates). A reader never observes a half-written day.

// markerName returns the completeness marker's filename for a day.
func markerName(d dates.Day) string { return d.String() + ".ok" }

// archiveName returns an archive's filename.
func archiveName(d dates.Day, collector string, kind ArchiveKind) string {
	return fmt.Sprintf("%s.%s.%s.mrt", d, collector, kind)
}

// DirWriter publishes complete days into a collector directory — the
// feed side of the live-tail simulation (asnwatch -sim-feed) and of the
// stream tests.
type DirWriter struct {
	dir string
}

// NewDirWriter creates (if needed) and wraps the day directory.
func NewDirWriter(dir string) (*DirWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("stream: dir writer: %w", err)
	}
	return &DirWriter{dir: dir}, nil
}

// WriteDay publishes one day: each archive atomically, then the marker
// atomically. Re-writing an already-published day is a no-op.
func (w *DirWriter) WriteDay(d *Day) error {
	marker := filepath.Join(w.dir, markerName(d.Day))
	if _, err := os.Stat(marker); err == nil {
		return nil
	}
	var manifest strings.Builder
	for _, ar := range d.Archives {
		name := archiveName(d.Day, ar.Collector, ar.Kind)
		if err := writeFileAtomic(filepath.Join(w.dir, name), ar.Data); err != nil {
			return err
		}
		fmt.Fprintf(&manifest, "%s %s %s\n", ar.Kind, ar.Collector, name)
	}
	return writeFileAtomic(marker, []byte(manifest.String()))
}

func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".day-*.tmp")
	if err != nil {
		return fmt.Errorf("stream: dir writer: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("stream: writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("stream: writing %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("stream: writing %s: %w", path, err)
	}
	return nil
}

// DirOptions tunes a DirSource's read behaviour.
type DirOptions struct {
	// ReadTimeout bounds one Next call's wait for the day marker to
	// appear (ris-live's --read-timeout); expiry returns ErrStale.
	// Default 30s.
	ReadTimeout time.Duration
	// Poll is the marker re-check interval. Default 25ms.
	Poll time.Duration
}

func (o DirOptions) withDefaults() DirOptions {
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 30 * time.Second
	}
	if o.Poll <= 0 {
		o.Poll = 25 * time.Millisecond
	}
	return o
}

// DirSource tails a growing day directory. Days must appear
// contiguously (the writer publishes them in order); Next waits for
// exactly the next one.
type DirSource struct {
	dir string
	opt DirOptions
}

// NewDirSource wraps the day directory.
func NewDirSource(dir string, opt DirOptions) *DirSource {
	return &DirSource{dir: dir, opt: opt.withDefaults()}
}

// Next implements Source: it waits for the marker of day after+1,
// polling until the read deadline (ErrStale) or ctx cancellation.
func (s *DirSource) Next(ctx context.Context, after dates.Day) (*Day, error) {
	day := after.AddDays(1)
	deadline := time.NewTimer(s.opt.ReadTimeout)
	defer deadline.Stop()
	tick := time.NewTicker(s.opt.Poll)
	defer tick.Stop()
	for {
		d, err := s.load(day)
		if err == nil {
			return d, nil
		}
		if !errors.Is(err, fs.ErrNotExist) {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-deadline.C:
			return nil, fmt.Errorf("%w (day %s after %v)", ErrStale, day, s.opt.ReadTimeout)
		case <-tick.C:
		}
	}
}

// load reads one complete day, returning fs.ErrNotExist while the
// marker is absent.
func (s *DirSource) load(day dates.Day) (*Day, error) {
	mf, err := os.Open(filepath.Join(s.dir, markerName(day)))
	if err != nil {
		return nil, err
	}
	defer mf.Close()
	d := &Day{Day: day}
	collectorIdx := map[string]map[string]int{"rib": {}, "upd": {}}
	sc := bufio.NewScanner(mf)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var kindTok, collector, name string
		if _, err := fmt.Sscanf(line, "%s %s %s", &kindTok, &collector, &name); err != nil {
			return nil, corruptf("day marker %s: bad line %q", markerName(day), line)
		}
		var kind ArchiveKind
		switch kindTok {
		case "rib":
			kind = KindRIB
		case "upd":
			kind = KindUpdates
		default:
			return nil, corruptf("day marker %s: unknown kind %q", markerName(day), kindTok)
		}
		idxs := collectorIdx[kindTok]
		ci, ok := idxs[collector]
		if !ok {
			ci = len(idxs)
			idxs[collector] = ci
		}
		data, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			return nil, fmt.Errorf("stream: reading %s: %w", name, err)
		}
		d.Archives = append(d.Archives, Archive{
			Collector: collector, CollectorIdx: ci, Kind: kind, Data: data,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("stream: reading %s: %w", markerName(day), err)
	}
	return d, nil
}

// Reconnect implements Source: for a directory the connection is the
// directory's existence.
func (s *DirSource) Reconnect(context.Context) error {
	if _, err := os.Stat(s.dir); err != nil {
		return fmt.Errorf("stream: reconnect: %w", err)
	}
	return nil
}

// Close implements io.Closer.
func (s *DirSource) Close() error { return nil }
