package stream

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"parallellives/internal/collector"
	"parallellives/internal/dates"
	"parallellives/internal/faults"
	"parallellives/internal/lifestore"
	"parallellives/internal/pipeline"
	"parallellives/internal/worldsim"
)

// tinyWorld is a 60-day window (worldsim needs > 40 days to plant its
// anomalies) small enough for unit tests to tail and batch-build
// repeatedly.
func tinyWorld() worldsim.Config {
	return worldsim.Config{
		Seed:              7,
		Start:             dates.MustParse("2006-01-01"),
		End:               dates.MustParse("2006-03-01"),
		Scale:             0.05,
		Collectors:        2,
		PeersPerCollector: 3,
	}
}

func tinyOptions() pipeline.Options {
	return pipeline.Options{World: tinyWorld(), Wire: true, Workers: 2}
}

// renderWindow renders every day of the config's window the way the
// simulated collector infrastructure publishes it.
func renderWindow(t *testing.T, cfg worldsim.Config) []*Day {
	t.Helper()
	inf := collector.New(worldsim.Generate(cfg))
	var days []*Day
	it := inf.IterRange(cfg.Start, cfg.End)
	for it.Next() {
		ribs, upds, err := it.MRT()
		if err != nil {
			t.Fatalf("rendering day %s: %v", it.Day(), err)
		}
		days = append(days, DayFromMRT(it.Day(), ribs, upds))
	}
	return days
}

// batchBytes is the ground truth: the encoded snapshot of a single
// batch pipeline.Run over the options.
func batchBytes(t *testing.T, opts pipeline.Options) []byte {
	t.Helper()
	ds, err := pipeline.Run(opts)
	if err != nil {
		t.Fatalf("batch run: %v", err)
	}
	b, err := lifestore.Encode(lifestore.Capture(ds))
	if err != nil {
		t.Fatalf("encoding batch snapshot: %v", err)
	}
	return b
}

func snapshotBytes(t *testing.T, tl *Tailer) []byte {
	t.Helper()
	snap, _ := tl.Snapshot()
	if snap == nil {
		t.Fatal("tailer published no snapshot")
	}
	b, err := lifestore.Encode(snap)
	if err != nil {
		t.Fatalf("encoding tailer snapshot: %v", err)
	}
	return b
}

// fakeEvent scripts one Next call: an error to return, or a specific
// day to (re-)deliver instead of the natural next one.
type fakeEvent struct {
	err error
	day *Day
}

// fakeSource serves rendered days from memory, optionally detouring
// through a script of faults and re-deliveries first.
type fakeSource struct {
	days       map[dates.Day]*Day
	script     []fakeEvent
	reconnects int
	closed     bool
}

func newFakeSource(days []*Day, script ...fakeEvent) *fakeSource {
	m := make(map[dates.Day]*Day, len(days))
	for _, d := range days {
		m[d.Day] = d
	}
	return &fakeSource{days: m, script: script}
}

func (f *fakeSource) Next(ctx context.Context, after dates.Day) (*Day, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(f.script) > 0 {
		ev := f.script[0]
		f.script = f.script[1:]
		if ev.err != nil {
			return nil, ev.err
		}
		if ev.day != nil {
			return ev.day, nil
		}
	}
	d, ok := f.days[after.AddDays(1)]
	if !ok {
		return nil, ErrStale
	}
	return d, nil
}

func (f *fakeSource) Reconnect(context.Context) error {
	f.reconnects++
	return nil
}

func (f *fakeSource) Close() error {
	f.closed = true
	return nil
}

// fastReconnect is a reconnect policy whose waits are injected no-ops.
func fastReconnect(attempts int) faults.RetryPolicy {
	return faults.RetryPolicy{
		MaxAttempts: attempts,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
		Sleep:       func(time.Duration) {},
	}
}

func TestTailerMatchesBatch(t *testing.T) {
	opts := tinyOptions()
	days := renderWindow(t, opts.World)
	want := batchBytes(t, opts)

	var published int
	tl, err := NewTailer(Options{
		Pipeline:      opts,
		Source:        newFakeSource(days),
		CheckpointDir: t.TempDir(),
		SnapshotEvery: 4,
		Reconnect:     fastReconnect(3),
		OnSnapshot:    func(dates.Day, *lifestore.Snapshot) { published++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tl.Recovery().Fresh {
		t.Fatalf("fresh dir recovery = %+v", tl.Recovery())
	}
	if err := tl.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := snapshotBytes(t, tl); !bytes.Equal(got, want) {
		t.Fatalf("tailed snapshot differs from batch: %d vs %d bytes", len(got), len(want))
	}
	// 60 days at every-4 cadence: the final day lands on the cadence.
	if published != 15 {
		t.Errorf("published %d snapshots, want 15", published)
	}
	st := tl.Status()
	if st.DaysCommitted != 60 || st.IngestLagDays != 0 || !st.Healthy {
		t.Errorf("final status = %+v", st)
	}
}

func TestTailerStaleTriggersReconnect(t *testing.T) {
	opts := tinyOptions()
	days := renderWindow(t, opts.World)
	want := batchBytes(t, opts)

	src := newFakeSource(days,
		fakeEvent{err: ErrStale},
		fakeEvent{err: ErrStale},
	)
	tl, err := NewTailer(Options{
		Pipeline:      opts,
		Source:        src,
		CheckpointDir: t.TempDir(),
		SnapshotEvery: 100, // only the final publish
		Reconnect:     fastReconnect(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tl.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if src.reconnects != 2 {
		t.Errorf("source reconnects = %d, want 2", src.reconnects)
	}
	st := tl.Status()
	if st.StaleReads != 2 || st.Reconnects != 2 {
		t.Errorf("status = %+v, want 2 stale reads / 2 reconnects", st)
	}
	if !st.Healthy {
		t.Error("tailer unhealthy after recovering from staleness")
	}
	if got := snapshotBytes(t, tl); !bytes.Equal(got, want) {
		t.Fatal("snapshot after reconnects differs from batch")
	}
}

// TestTailerGivesUpWhenStaleForever proves the watchdog's bound: a
// source that never recovers exhausts the reconnect ladder and Run
// fails with faults.ErrRetriesExhausted instead of spinning.
func TestTailerGivesUpWhenStaleForever(t *testing.T) {
	tl, err := NewTailer(Options{
		Pipeline:      tinyOptions(),
		Source:        newFakeSource(nil), // no days: every read is stale
		CheckpointDir: t.TempDir(),
		Reconnect:     fastReconnect(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	err = tl.Run(context.Background())
	if !errors.Is(err, faults.ErrRetriesExhausted) {
		t.Fatalf("Run over dead source = %v, want ErrRetriesExhausted", err)
	}
	if tl.Status().Healthy {
		t.Error("tailer still marked healthy after giving up")
	}
}

// TestTailerSkipsRedeliveredDays proves idempotency: a source that
// rewinds and re-delivers committed days changes nothing but the skip
// counter.
func TestTailerSkipsRedeliveredDays(t *testing.T) {
	opts := tinyOptions()
	days := renderWindow(t, opts.World)
	want := batchBytes(t, opts)

	// After days 1..3 are served naturally, re-deliver day 1 and day 3,
	// then resume the natural feed.
	src := newFakeSource(days,
		fakeEvent{}, fakeEvent{}, fakeEvent{},
		fakeEvent{day: days[0]},
		fakeEvent{day: days[2]},
	)
	tl, err := NewTailer(Options{
		Pipeline:      opts,
		Source:        src,
		CheckpointDir: t.TempDir(),
		SnapshotEvery: 100,
		Reconnect:     fastReconnect(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tl.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st := tl.Status(); st.DaysSkipped != 2 || st.DaysCommitted != 60 {
		t.Errorf("status = %+v, want 2 skipped / 60 committed", st)
	}
	if got := snapshotBytes(t, tl); !bytes.Equal(got, want) {
		t.Fatal("snapshot after re-deliveries differs from batch")
	}
}

// TestTailerRejectsGap: a source that jumps over a day is broken, not
// recoverable — the carry would silently miss data.
func TestTailerRejectsGap(t *testing.T) {
	opts := tinyOptions()
	days := renderWindow(t, opts.World)
	src := newFakeSource(days, fakeEvent{day: days[5]}) // first delivery skips days 1-5
	tl, err := NewTailer(Options{
		Pipeline:      opts,
		Source:        src,
		CheckpointDir: t.TempDir(),
		Reconnect:     fastReconnect(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	err = tl.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "skipped") {
		t.Fatalf("Run over gapped source = %v, want contiguity error", err)
	}
}

// TestTailerFingerprintMismatch: resuming a checkpoint written under a
// different configuration must fail loudly at construction.
func TestTailerFingerprintMismatch(t *testing.T) {
	opts := tinyOptions()
	days := renderWindow(t, opts.World)
	dir := t.TempDir()

	tl, err := NewTailer(Options{
		Pipeline:      opts,
		Source:        newFakeSource(days),
		CheckpointDir: dir,
		Reconnect:     fastReconnect(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tl.Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}

	other := opts
	other.World.Seed = 99
	_, err = NewTailer(Options{
		Pipeline:      other,
		Source:        newFakeSource(days),
		CheckpointDir: dir,
		Reconnect:     fastReconnect(2),
	})
	if err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("NewTailer over foreign checkpoint = %v, want fingerprint error", err)
	}
}

// TestTailerDrain: cancelling the context mid-tail commits what is in
// flight, publishes the committed state, and returns nil.
func TestTailerDrain(t *testing.T) {
	opts := tinyOptions()
	days := renderWindow(t, opts.World)

	ctx, cancel := context.WithCancel(context.Background())
	tl, err := NewTailer(Options{
		Pipeline:      opts,
		Source:        newFakeSource(days),
		CheckpointDir: t.TempDir(),
		SnapshotEvery: 100,
		Reconnect:     fastReconnect(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cancel after the 5th committed day.
	tl.afterCommit = func(d dates.Day) error {
		if d == opts.World.Start.AddDays(4) {
			cancel()
		}
		return nil
	}
	if err := tl.Run(ctx); err != nil {
		t.Fatalf("drained Run = %v, want nil", err)
	}
	st := tl.Status()
	if !st.Draining || st.DaysCommitted != 5 {
		t.Fatalf("post-drain status = %+v, want draining with 5 committed", st)
	}
	snap, day := tl.Snapshot()
	if snap == nil || day != opts.World.Start.AddDays(4) {
		t.Fatalf("drain published day %v, want the 5th day", day)
	}
}
