package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"parallellives/internal/asn"
	"parallellives/internal/bgpscan"
	"parallellives/internal/dates"
	"parallellives/internal/intervals"
	"parallellives/internal/lifestore"
)

// Checkpoint file format (little-endian, CRC-32C sealed):
//
//	magic   "ASNTAILC"                    8 bytes
//	version uint16                        (CheckpointVersion)
//	_       uint16                        reserved, zero
//	len     uint32                        payload length
//	payload len bytes                     (see Encode)
//	crc     uint32                        CRC-32C of everything above
//
// The trailing CRC makes a torn write (any prefix of the file) and a
// bit flip equally detectable; decode failures carry the
// lifestore.ErrCorrupt sentinel so recovery code classifies them with
// the same taxonomy as snapshot damage.

// CheckpointVersion is the current checkpoint format version.
const CheckpointVersion = 1

const (
	ckptMagic    = "ASNTAILC"
	ckptName     = "tail.ckpt"
	ckptPrevName = "tail.ckpt.prev"
	ckptTmpGlob  = ".tail-*.tmp"
	ckptFixedLen = len(ckptMagic) + 2 + 2 + 4 // header before payload
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// corruptf wraps a checkpoint-damage description in the
// lifestore.ErrCorrupt taxonomy.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("stream: %w: %s", lifestore.ErrCorrupt, fmt.Sprintf(format, args...))
}

// Checkpoint is the tail's durable position: the last committed day,
// the whole-run scan accounting, and the activity carry-state an
// incremental scan needs to continue appending days. Re-loading a
// checkpoint and resuming from LastDay+1 reproduces exactly the state
// a never-crashed tail would hold.
type Checkpoint struct {
	// Fingerprint identifies the run configuration (world, window,
	// thresholds, fault plan). A checkpoint from a different
	// configuration must not be resumed — its carry would silently
	// diverge from the batch equivalent.
	Fingerprint uint64
	// Seq increments per commit; the journal uses it for monotonicity.
	Seq uint64
	// LastDay is the newest committed day.
	LastDay dates.Day
	// Days and Archives mirror pipeline.OpAccount for the committed
	// range, as do the injected-MRT-fault tallies.
	Days                int
	Archives            int64
	InjTruncatedRecords int64
	InjTailChops        int64
	// Carry is the absorbed partial activity of all committed days
	// (invisible ASNs kept — see bgpscan.Finalize).
	Carry *bgpscan.Activity
}

// Encode renders the checkpoint. The encoding is a pure function of the
// logical state: ASNs and upstream keys are emitted in ascending order,
// so equal checkpoints encode to equal bytes.
func (c *Checkpoint) Encode() []byte {
	p := make([]byte, 0, 1024)
	p = binary.LittleEndian.AppendUint64(p, c.Fingerprint)
	p = binary.LittleEndian.AppendUint64(p, c.Seq)
	p = binary.LittleEndian.AppendUint32(p, uint32(int32(c.LastDay)))
	p = binary.LittleEndian.AppendUint32(p, uint32(c.Days))
	p = binary.LittleEndian.AppendUint64(p, uint64(c.Archives))
	p = binary.LittleEndian.AppendUint64(p, uint64(c.InjTruncatedRecords))
	p = binary.LittleEndian.AppendUint64(p, uint64(c.InjTailChops))
	p = appendActivity(p, c.Carry)

	out := make([]byte, 0, ckptFixedLen+len(p)+4)
	out = append(out, ckptMagic...)
	out = binary.LittleEndian.AppendUint16(out, CheckpointVersion)
	out = binary.LittleEndian.AppendUint16(out, 0)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(p)))
	out = append(out, p...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, crcTable))
	return out
}

func appendActivity(p []byte, a *bgpscan.Activity) []byte {
	p = binary.LittleEndian.AppendUint32(p, uint32(int32(a.Start)))
	p = binary.LittleEndian.AppendUint32(p, uint32(int32(a.End)))
	for _, v := range []int64{
		a.Stats.RIBRecords, a.Stats.UpdateMessages, a.Stats.Routes,
		a.Stats.DropPrefixLen, a.Stats.DropLoop, a.Stats.DropMalformed,
		a.Stats.DropLowVis, a.Stats.QuarantinedTruncated, a.Stats.QuarantinedTails,
	} {
		p = binary.LittleEndian.AppendUint64(p, uint64(v))
	}
	asns := make([]asn.ASN, 0, len(a.ASNs))
	for x := range a.ASNs {
		asns = append(asns, x)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	p = binary.LittleEndian.AppendUint32(p, uint32(len(asns)))
	for _, x := range asns {
		aa := a.ASNs[x]
		p = binary.LittleEndian.AppendUint32(p, uint32(x))
		p = appendIntervals(p, aa.Days)
		p = appendIntervals(p, aa.OriginDays)
		p = binary.LittleEndian.AppendUint32(p, uint32(len(aa.PrefixRuns)))
		for _, r := range aa.PrefixRuns {
			p = binary.LittleEndian.AppendUint32(p, uint32(int32(r.From)))
			p = binary.LittleEndian.AppendUint32(p, uint32(int32(r.To)))
			p = binary.LittleEndian.AppendUint32(p, uint32(r.Count))
			p = binary.LittleEndian.AppendUint64(p, r.Sig)
		}
		ups := make([]asn.ASN, 0, len(aa.Upstreams))
		for u := range aa.Upstreams {
			ups = append(ups, u)
		}
		sort.Slice(ups, func(i, j int) bool { return ups[i] < ups[j] })
		p = binary.LittleEndian.AppendUint32(p, uint32(len(ups)))
		for _, u := range ups {
			p = binary.LittleEndian.AppendUint32(p, uint32(u))
			p = binary.LittleEndian.AppendUint64(p, uint64(aa.Upstreams[u]))
		}
	}
	return p
}

func appendIntervals(p []byte, set intervals.Set) []byte {
	p = binary.LittleEndian.AppendUint32(p, uint32(len(set)))
	for _, iv := range set {
		p = binary.LittleEndian.AppendUint32(p, uint32(int32(iv.Start)))
		p = binary.LittleEndian.AppendUint32(p, uint32(int32(iv.End)))
	}
	return p
}

// ckptReader is a bounds-checked cursor over the payload; every read
// failure is a corruption classification, never a panic.
type ckptReader struct {
	b   []byte
	off int
	err error
}

func (r *ckptReader) fail(what string) {
	if r.err == nil {
		r.err = corruptf("checkpoint payload truncated reading %s at offset %d", what, r.off)
	}
}

func (r *ckptReader) u32(what string) uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *ckptReader) u64(what string) uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *ckptReader) day(what string) dates.Day { return dates.Day(int32(r.u32(what))) }

// count reads a length prefix and rejects values the remaining bytes
// cannot possibly satisfy (minSize bytes per element), so a corrupt
// length cannot drive a huge allocation.
func (r *ckptReader) count(what string, minSize int) int {
	n := int(r.u32(what))
	if r.err == nil && n*minSize > len(r.b)-r.off {
		r.err = corruptf("checkpoint %s count %d exceeds remaining %d bytes", what, n, len(r.b)-r.off)
		return 0
	}
	return n
}

func (r *ckptReader) intervals(what string) intervals.Set {
	n := r.count(what, 8)
	if r.err != nil || n == 0 {
		return nil
	}
	set := make(intervals.Set, n)
	for i := range set {
		set[i] = intervals.Interval{Start: r.day(what), End: r.day(what)}
	}
	return set
}

// DecodeCheckpoint parses and verifies one checkpoint file's bytes.
// Every failure — short file, bad magic, version skew, length
// mismatch, CRC mismatch, payload truncation — satisfies
// errors.Is(err, lifestore.ErrCorrupt).
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	if len(b) < ckptFixedLen+4 {
		return nil, corruptf("checkpoint too short: %d bytes", len(b))
	}
	if string(b[:len(ckptMagic)]) != ckptMagic {
		return nil, corruptf("bad checkpoint magic %q", b[:len(ckptMagic)])
	}
	ver := binary.LittleEndian.Uint16(b[8:10])
	if ver != CheckpointVersion {
		return nil, corruptf("unsupported checkpoint version %d", ver)
	}
	plen := int(binary.LittleEndian.Uint32(b[12:16]))
	if ckptFixedLen+plen+4 != len(b) {
		return nil, corruptf("checkpoint length mismatch: header claims %d payload bytes in a %d-byte file", plen, len(b))
	}
	body := b[:ckptFixedLen+plen]
	want := binary.LittleEndian.Uint32(b[ckptFixedLen+plen:])
	if got := crc32.Checksum(body, crcTable); got != want {
		return nil, corruptf("checkpoint CRC mismatch: %08x != %08x", got, want)
	}

	r := &ckptReader{b: b[ckptFixedLen : ckptFixedLen+plen]}
	c := &Checkpoint{
		Fingerprint:         r.u64("fingerprint"),
		Seq:                 r.u64("seq"),
		LastDay:             r.day("lastDay"),
		Days:                int(r.u32("days")),
		Archives:            int64(r.u64("archives")),
		InjTruncatedRecords: int64(r.u64("injTruncatedRecords")),
		InjTailChops:        int64(r.u64("injTailChops")),
	}
	act := bgpscan.NewPartial()
	act.Start = r.day("activity.start")
	act.End = r.day("activity.end")
	for _, v := range []*int64{
		&act.Stats.RIBRecords, &act.Stats.UpdateMessages, &act.Stats.Routes,
		&act.Stats.DropPrefixLen, &act.Stats.DropLoop, &act.Stats.DropMalformed,
		&act.Stats.DropLowVis, &act.Stats.QuarantinedTruncated, &act.Stats.QuarantinedTails,
	} {
		*v = int64(r.u64("activity.stats"))
	}
	nASN := r.count("asn", 4+4*4)
	for i := 0; i < nASN && r.err == nil; i++ {
		x := asn.ASN(r.u32("asn"))
		aa := &bgpscan.ASNActivity{
			Days:       r.intervals("days"),
			OriginDays: r.intervals("originDays"),
		}
		if n := r.count("prefixRuns", 20); n > 0 && r.err == nil {
			aa.PrefixRuns = make([]bgpscan.PrefixRun, n)
			for j := range aa.PrefixRuns {
				aa.PrefixRuns[j] = bgpscan.PrefixRun{
					From:  r.day("prefixRun.from"),
					To:    r.day("prefixRun.to"),
					Count: int(r.u32("prefixRun.count")),
					Sig:   r.u64("prefixRun.sig"),
				}
			}
		}
		if n := r.count("upstreams", 12); n > 0 && r.err == nil {
			aa.Upstreams = make(map[asn.ASN]int64, n)
			for j := 0; j < n; j++ {
				u := asn.ASN(r.u32("upstream.asn"))
				aa.Upstreams[u] = int64(r.u64("upstream.count"))
			}
		}
		act.ASNs[x] = aa
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.b) {
		return nil, corruptf("checkpoint payload has %d trailing bytes", len(r.b)-r.off)
	}
	c.Carry = act
	return c, nil
}

// RecoveryReport describes what the journal found (and survived) while
// opening its directory — the torn-write accounting /v1/health and the
// stream metrics expose.
type RecoveryReport struct {
	// TornTemps counts abandoned temp files from interrupted commits,
	// removed on open.
	TornTemps int
	// CorruptCheckpoints counts checkpoint files rejected as torn or
	// corrupt (errors carrying lifestore.ErrCorrupt, or unreadable).
	CorruptCheckpoints int
	// UsedPrev reports that the main checkpoint was unusable and the
	// previous generation was recovered instead.
	UsedPrev bool
	// Fresh reports that no usable checkpoint existed: the tail starts
	// from the beginning of the window.
	Fresh bool
}

// Journal is the checkpoint's home directory and commit discipline.
// Exactly one Tailer owns a journal at a time.
type Journal struct {
	dir string
	seq uint64

	// failpoint, when set, is consulted at named stages of Commit; a
	// non-nil return abandons the commit at that point with no cleanup,
	// simulating a crash. Stages: "temp" (temp file half-written),
	// "rotate" (previous generation rotated away, new file not yet in
	// place). Test-only.
	failpoint func(stage string) error
}

// OpenJournal opens (creating if needed) the checkpoint directory,
// cleans up debris from interrupted commits, and loads the newest
// usable checkpoint: the main file if it verifies, else the rotated
// previous generation, else nil (fresh start). Corruption never fails
// the open — it is counted, classified and recovered past; only I/O
// errors surface.
func OpenJournal(dir string) (*Journal, *Checkpoint, RecoveryReport, error) {
	var rec RecoveryReport
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, rec, fmt.Errorf("stream: opening journal: %w", err)
	}
	// Interrupted commits leave temp files; they were never part of the
	// committed state, so removal is always safe.
	temps, _ := filepath.Glob(filepath.Join(dir, ckptTmpGlob))
	for _, t := range temps {
		if os.Remove(t) == nil {
			rec.TornTemps++
		}
	}
	j := &Journal{dir: dir}
	load := func(name string) *Checkpoint {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			if !errors.Is(err, fs.ErrNotExist) {
				rec.CorruptCheckpoints++
			}
			return nil
		}
		c, err := DecodeCheckpoint(b)
		if err != nil {
			rec.CorruptCheckpoints++
			return nil
		}
		return c
	}
	c := load(ckptName)
	if c == nil {
		if c = load(ckptPrevName); c != nil {
			rec.UsedPrev = true
		}
	}
	if c == nil {
		rec.Fresh = true
	} else {
		j.seq = c.Seq
	}
	return j, c, rec, nil
}

// Path returns the main checkpoint file's path.
func (j *Journal) Path() string { return filepath.Join(j.dir, ckptName) }

// PrevPath returns the rotated previous checkpoint's path.
func (j *Journal) PrevPath() string { return filepath.Join(j.dir, ckptPrevName) }

func (j *Journal) fail(stage string) error {
	if j.failpoint == nil {
		return nil
	}
	return j.failpoint(stage)
}

// Commit durably replaces the checkpoint: encode, write to a temp file
// in the same directory, fsync, rotate the current checkpoint to the
// previous generation, rename the temp into place, fsync the
// directory. A crash at any point leaves either the old checkpoint or
// the rotated previous one intact — never zero recoverable states
// after a first successful commit. Sets c.Seq.
func (j *Journal) Commit(c *Checkpoint) error {
	c.Seq = j.seq + 1
	b := c.Encode()

	f, err := os.CreateTemp(j.dir, strings.Replace(ckptTmpGlob, "*", "commit-*", 1))
	if err != nil {
		return fmt.Errorf("stream: checkpoint commit: %w", err)
	}
	tmp := f.Name()
	half := len(b) / 2
	if _, err := f.Write(b[:half]); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("stream: checkpoint commit: %w", err)
	}
	if err := j.fail("temp"); err != nil {
		f.Close() // crash simulation: leave the torn temp behind
		return err
	}
	if _, err := f.Write(b[half:]); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("stream: checkpoint commit: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("stream: checkpoint commit: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("stream: checkpoint commit: %w", err)
	}

	main, prev := j.Path(), j.PrevPath()
	if _, err := os.Stat(main); err == nil {
		if err := os.Rename(main, prev); err != nil {
			os.Remove(tmp)
			return fmt.Errorf("stream: checkpoint rotate: %w", err)
		}
	}
	if err := j.fail("rotate"); err != nil {
		return err // crash simulation: only the prev generation remains
	}
	if err := os.Rename(tmp, main); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("stream: checkpoint commit: %w", err)
	}
	syncDir(j.dir)
	j.seq = c.Seq
	return nil
}

// syncDir fsyncs a directory so the renames inside it are durable.
// Best-effort: filesystems that refuse directory fsync are tolerated.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
