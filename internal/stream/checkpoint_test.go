package stream

import (
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"parallellives/internal/asn"
	"parallellives/internal/bgpscan"
	"parallellives/internal/dates"
	"parallellives/internal/intervals"
	"parallellives/internal/lifestore"
)

// testCheckpoint builds a nontrivial checkpoint: two ASNs, one with
// every optional section populated, one minimal (invisible-style: no
// origin days, no runs).
func testCheckpoint() *Checkpoint {
	d := func(s string) dates.Day { return dates.MustParse(s) }
	carry := bgpscan.NewPartial()
	carry.Start, carry.End = d("2006-01-01"), d("2006-01-20")
	carry.Stats.RIBRecords = 1000
	carry.Stats.UpdateMessages = 500
	carry.Stats.Routes = 1200
	carry.Stats.DropLowVis = 7
	carry.Stats.QuarantinedTruncated = 2
	carry.ASNs[asn.ASN(65001)] = &bgpscan.ASNActivity{
		Days:       intervals.Set{{Start: d("2006-01-01"), End: d("2006-01-10")}, {Start: d("2006-01-15"), End: d("2006-01-20")}},
		OriginDays: intervals.Set{{Start: d("2006-01-02"), End: d("2006-01-09")}},
		PrefixRuns: []bgpscan.PrefixRun{{From: d("2006-01-02"), To: d("2006-01-09"), Count: 3, Sig: 0xdeadbeef}},
		Upstreams:  map[asn.ASN]int64{65002: 12, 65003: 4},
	}
	carry.ASNs[asn.ASN(65002)] = &bgpscan.ASNActivity{
		Days: intervals.Set{{Start: d("2006-01-01"), End: d("2006-01-20")}},
	}
	return &Checkpoint{
		Fingerprint:         0x0123456789abcdef,
		Seq:                 42,
		LastDay:             d("2006-01-20"),
		Days:                20,
		Archives:            80,
		InjTruncatedRecords: 3,
		InjTailChops:        1,
		Carry:               carry,
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	want := testCheckpoint()
	got, err := DecodeCheckpoint(want.Encode())
	if err != nil {
		t.Fatalf("DecodeCheckpoint: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestCheckpointEncodeDeterministic(t *testing.T) {
	c := testCheckpoint()
	a, b := c.Encode(), c.Encode()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two encodes of the same checkpoint differ")
	}
}

// TestCheckpointTornWriteEveryOffset is the torn-write table test: every
// strict prefix of a valid checkpoint — the file shape a crash mid-write
// leaves behind — must decode to a classified corruption, never a panic
// and never a silently wrong checkpoint.
func TestCheckpointTornWriteEveryOffset(t *testing.T) {
	full := testCheckpoint().Encode()
	for cut := 0; cut < len(full); cut++ {
		_, err := DecodeCheckpoint(full[:cut])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(full))
		}
		if !errors.Is(err, lifestore.ErrCorrupt) {
			t.Fatalf("prefix of %d bytes: error %v does not carry lifestore.ErrCorrupt", cut, err)
		}
	}
}

// TestCheckpointBitFlipEveryByte proves the CRC seal: any single-bit
// flip anywhere in the file is rejected as corrupt.
func TestCheckpointBitFlipEveryByte(t *testing.T) {
	full := testCheckpoint().Encode()
	for i := range full {
		mut := make([]byte, len(full))
		copy(mut, full)
		mut[i] ^= 0x01
		if _, err := DecodeCheckpoint(mut); !errors.Is(err, lifestore.ErrCorrupt) {
			t.Fatalf("bit flip at byte %d: error %v does not carry lifestore.ErrCorrupt", i, err)
		}
	}
}

func TestCheckpointTrailingBytes(t *testing.T) {
	b := append(testCheckpoint().Encode(), 0x00)
	if _, err := DecodeCheckpoint(b); !errors.Is(err, lifestore.ErrCorrupt) {
		t.Fatalf("trailing byte: error %v does not carry lifestore.ErrCorrupt", err)
	}
}

// TestCheckpointHugeCountRejected proves a corrupt length prefix cannot
// drive a giant allocation: the count guard trips before make().
func TestCheckpointHugeCountRejected(t *testing.T) {
	c := testCheckpoint()
	c.Carry = bgpscan.NewPartial()
	b := c.Encode()
	// The ASN count is the last u32 of this payload (empty activity).
	// Rewrite it to an absurd value and re-seal the CRC.
	off := len(b) - 4 - 4
	b[off], b[off+1], b[off+2], b[off+3] = 0xff, 0xff, 0xff, 0x7f
	reseal(b)
	_, err := DecodeCheckpoint(b)
	if err == nil || !errors.Is(err, lifestore.ErrCorrupt) {
		t.Fatalf("huge count: err = %v, want ErrCorrupt", err)
	}
}

// reseal recomputes the trailing CRC over a mutated checkpoint file so
// tests can damage the payload without tripping the checksum first.
func reseal(b []byte) {
	body := b[:len(b)-4]
	crc := crc32.Checksum(body, crcTable)
	b[len(b)-4] = byte(crc)
	b[len(b)-3] = byte(crc >> 8)
	b[len(b)-2] = byte(crc >> 16)
	b[len(b)-1] = byte(crc >> 24)
}

func TestJournalCommitReopen(t *testing.T) {
	dir := t.TempDir()
	j, c, rec, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c != nil || !rec.Fresh {
		t.Fatalf("fresh dir: checkpoint %v, report %+v", c, rec)
	}

	c1 := testCheckpoint()
	if err := j.Commit(c1); err != nil {
		t.Fatal(err)
	}
	if c1.Seq != 1 {
		t.Fatalf("first commit seq = %d, want 1", c1.Seq)
	}
	c2 := testCheckpoint()
	c2.LastDay = c2.LastDay.AddDays(1)
	c2.Days++
	if err := j.Commit(c2); err != nil {
		t.Fatal(err)
	}
	if c2.Seq != 2 {
		t.Fatalf("second commit seq = %d, want 2", c2.Seq)
	}

	j2, got, rec, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Fresh || rec.UsedPrev || rec.CorruptCheckpoints != 0 {
		t.Fatalf("clean reopen report = %+v", rec)
	}
	if !reflect.DeepEqual(got, c2) {
		t.Fatalf("reopen got %+v, want %+v", got, c2)
	}
	if _, err := os.Stat(j2.PrevPath()); err != nil {
		t.Fatalf("previous generation missing after rotation: %v", err)
	}
	// Re-commit idempotency of the sequence: the reopened journal
	// continues from the stored seq.
	c3 := testCheckpoint()
	if err := j2.Commit(c3); err != nil {
		t.Fatal(err)
	}
	if c3.Seq != 3 {
		t.Fatalf("post-reopen commit seq = %d, want 3", c3.Seq)
	}
}

// TestJournalCrashAtTemp simulates dying with the temp file half
// written: recovery must discard the torn temp and keep the previous
// commit.
func TestJournalCrashAtTemp(t *testing.T) {
	dir := t.TempDir()
	j, _, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1 := testCheckpoint()
	if err := j.Commit(c1); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("simulated crash")
	j.failpoint = func(stage string) error {
		if stage == "temp" {
			return boom
		}
		return nil
	}
	c2 := testCheckpoint()
	c2.LastDay = c2.LastDay.AddDays(1)
	if err := j.Commit(c2); !errors.Is(err, boom) {
		t.Fatalf("Commit with temp failpoint = %v, want crash", err)
	}
	temps, _ := filepath.Glob(filepath.Join(dir, ckptTmpGlob))
	if len(temps) != 1 {
		t.Fatalf("torn temp files = %d, want 1", len(temps))
	}

	_, got, rec, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.TornTemps != 1 || rec.UsedPrev || rec.CorruptCheckpoints != 0 {
		t.Fatalf("recovery report = %+v, want exactly one torn temp", rec)
	}
	if !reflect.DeepEqual(got, c1) {
		t.Fatalf("recovered %+v, want the pre-crash commit %+v", got, c1)
	}
	if temps, _ := filepath.Glob(filepath.Join(dir, ckptTmpGlob)); len(temps) != 0 {
		t.Fatal("torn temp survived recovery")
	}
}

// TestJournalCrashAtRotate simulates dying after the old checkpoint was
// rotated away but before the new one landed: recovery must fall back
// to the previous generation.
func TestJournalCrashAtRotate(t *testing.T) {
	dir := t.TempDir()
	j, _, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1 := testCheckpoint()
	if err := j.Commit(c1); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("simulated crash")
	j.failpoint = func(stage string) error {
		if stage == "rotate" {
			return boom
		}
		return nil
	}
	c2 := testCheckpoint()
	c2.LastDay = c2.LastDay.AddDays(1)
	if err := j.Commit(c2); !errors.Is(err, boom) {
		t.Fatalf("Commit with rotate failpoint = %v, want crash", err)
	}

	_, got, rec, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.UsedPrev {
		t.Fatalf("recovery report = %+v, want UsedPrev", rec)
	}
	if !reflect.DeepEqual(got, c1) {
		t.Fatalf("recovered %+v, want the rotated previous commit %+v", got, c1)
	}
}

// TestJournalCorruptMainFallsBack damages the committed checkpoint on
// disk (bit flip — a decode failure, not a missing file) and proves
// recovery classifies it and uses the previous generation.
func TestJournalCorruptMainFallsBack(t *testing.T) {
	dir := t.TempDir()
	j, _, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1 := testCheckpoint()
	if err := j.Commit(c1); err != nil {
		t.Fatal(err)
	}
	c2 := testCheckpoint()
	c2.LastDay = c2.LastDay.AddDays(1)
	if err := j.Commit(c2); err != nil {
		t.Fatal(err)
	}

	b, err := os.ReadFile(j.Path())
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(j.Path(), b, 0o644); err != nil {
		t.Fatal(err)
	}

	_, got, rec, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.CorruptCheckpoints != 1 || !rec.UsedPrev {
		t.Fatalf("recovery report = %+v, want 1 corrupt + UsedPrev", rec)
	}
	if !reflect.DeepEqual(got, c1) {
		t.Fatalf("recovered %+v, want previous generation %+v", got, c1)
	}
}

// TestJournalBothGenerationsCorrupt proves total loss degrades to a
// fresh start, never an open failure.
func TestJournalBothGenerationsCorrupt(t *testing.T) {
	dir := t.TempDir()
	j, _, _, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1 := testCheckpoint()
	if err := j.Commit(c1); err != nil {
		t.Fatal(err)
	}
	c2 := testCheckpoint()
	if err := j.Commit(c2); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{j.Path(), j.PrevPath()} {
		if err := os.WriteFile(p, []byte("not a checkpoint"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, got, rec, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil || !rec.Fresh || rec.CorruptCheckpoints != 2 {
		t.Fatalf("recovery = ckpt %v report %+v, want fresh start with 2 corrupt", got, rec)
	}
}
