package stream

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"parallellives/internal/dates"
)

func fastDirOptions() DirOptions {
	return DirOptions{ReadTimeout: 80 * time.Millisecond, Poll: time.Millisecond}
}

func testDay(d dates.Day, tag byte) *Day {
	return DayFromMRT(d,
		[][]byte{{tag, 0x01}, {tag, 0x02}},
		[][]byte{{tag, 0x11}, {tag, 0x12}})
}

func TestDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := NewDirWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	start := dates.MustParse("2006-01-01")
	for i := 0; i < 3; i++ {
		if err := w.WriteDay(testDay(start.AddDays(i), byte(i))); err != nil {
			t.Fatal(err)
		}
	}

	s := NewDirSource(dir, fastDirOptions())
	defer s.Close()
	last := start.AddDays(-1)
	for i := 0; i < 3; i++ {
		got, err := s.Next(context.Background(), last)
		if err != nil {
			t.Fatalf("Next after %s: %v", last, err)
		}
		want := testDay(start.AddDays(i), byte(i))
		if got.Day != want.Day || len(got.Archives) != len(want.Archives) {
			t.Fatalf("day %d: got %s/%d archives, want %s/%d", i, got.Day, len(got.Archives), want.Day, len(want.Archives))
		}
		for j, ar := range got.Archives {
			w := want.Archives[j]
			if ar.Collector != w.Collector || ar.CollectorIdx != w.CollectorIdx || ar.Kind != w.Kind || !bytes.Equal(ar.Data, w.Data) {
				t.Fatalf("day %d archive %d: got %+v, want %+v", i, j, ar, w)
			}
		}
		last = got.Day
	}
}

func TestDirSourceStale(t *testing.T) {
	s := NewDirSource(t.TempDir(), fastDirOptions())
	_, err := s.Next(context.Background(), dates.MustParse("2006-01-01"))
	if !errors.Is(err, ErrStale) {
		t.Fatalf("Next on empty dir = %v, want ErrStale", err)
	}
}

// TestDirSourceIncompleteDayInvisible proves the marker protocol: a day
// whose archives exist but whose marker has not landed is not delivered.
func TestDirSourceIncompleteDayInvisible(t *testing.T) {
	dir := t.TempDir()
	day := dates.MustParse("2006-01-01")
	if err := os.WriteFile(filepath.Join(dir, archiveName(day, "rrc00", KindRIB)), []byte{1}, 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewDirSource(dir, fastDirOptions())
	if _, err := s.Next(context.Background(), day.AddDays(-1)); !errors.Is(err, ErrStale) {
		t.Fatalf("Next with archives but no marker = %v, want ErrStale", err)
	}
}

func TestDirSourceCancel(t *testing.T) {
	s := NewDirSource(t.TempDir(), DirOptions{ReadTimeout: time.Hour, Poll: time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	if _, err := s.Next(ctx, dates.MustParse("2006-01-01")); !errors.Is(err, context.Canceled) {
		t.Fatalf("Next with cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestDirWriterIdempotent(t *testing.T) {
	dir := t.TempDir()
	w, err := NewDirWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	day := testDay(dates.MustParse("2006-01-01"), 9)
	if err := w.WriteDay(day); err != nil {
		t.Fatal(err)
	}
	before, _ := os.ReadDir(dir)
	if err := w.WriteDay(day); err != nil {
		t.Fatalf("re-writing a published day: %v", err)
	}
	after, _ := os.ReadDir(dir)
	if len(before) != len(after) {
		t.Fatalf("re-write changed the directory: %d -> %d entries", len(before), len(after))
	}
}

func TestDirSourceCorruptMarker(t *testing.T) {
	dir := t.TempDir()
	day := dates.MustParse("2006-01-01")
	if err := os.WriteFile(filepath.Join(dir, markerName(day)), []byte("rib only-two-fields\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewDirSource(dir, fastDirOptions())
	_, err := s.Next(context.Background(), day.AddDays(-1))
	if err == nil || errors.Is(err, ErrStale) {
		t.Fatalf("Next over corrupt marker = %v, want a hard parse error", err)
	}
}

func TestDirSourceReconnect(t *testing.T) {
	dir := t.TempDir()
	s := NewDirSource(dir, fastDirOptions())
	if err := s.Reconnect(context.Background()); err != nil {
		t.Fatalf("Reconnect over live dir: %v", err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := s.Reconnect(context.Background()); err == nil {
		t.Fatal("Reconnect over removed dir succeeded")
	}
}
