package stream

import (
	"bytes"
	"context"
	"errors"
	"os"
	"testing"

	"parallellives/internal/dates"
	"parallellives/internal/faults"
	"parallellives/internal/pipeline"
)

// TestCrashEquivalence is the robustness property this package exists
// for: tailing a window one day at a time — killed and restarted at
// arbitrary day boundaries, killed mid-checkpoint-write at both commit
// stages, and recovering from a corrupted-on-disk checkpoint — produces
// a lifestore snapshot byte-identical to a single batch pipeline.Run
// over the same options. Verified on clean inputs and with the fault
// storm injected (chaos mode), where the crash-restart accounting is
// hardest: re-scanned days re-mangle on the live injector, and the
// checkpointed per-day deltas must keep the Health report exact.
func TestCrashEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("crash equivalence tails a 60-day window several times")
	}
	clean := tinyOptions()
	chaos := clean
	storm := faults.DefaultStorm(11)
	chaos.Inject = &storm
	chaos.FaultPolicy = pipeline.Degrade

	t.Run("clean", func(t *testing.T) { crashEquivalence(t, clean) })
	t.Run("chaos", func(t *testing.T) { crashEquivalence(t, chaos) })
}

func crashEquivalence(t *testing.T, opts pipeline.Options) {
	want := batchBytes(t, opts)

	// Render the whole window into a day directory up front — the feed
	// the killed-and-restarted tailers keep coming back to.
	feedDir := t.TempDir()
	w, err := NewDirWriter(feedDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range renderWindow(t, opts.World) {
		if err := w.WriteDay(d); err != nil {
			t.Fatal(err)
		}
	}

	ckptDir := t.TempDir()
	day := func(n int) dates.Day { return opts.World.Start.AddDays(n - 1) } // day(1) = first day
	errKill := errors.New("kill -9")

	newTailer := func() *Tailer {
		t.Helper()
		tl, err := NewTailer(Options{
			Pipeline:      opts,
			Source:        NewDirSource(feedDir, fastDirOptions()),
			CheckpointDir: ckptDir,
			SnapshotEvery: 100, // only the final day publishes
			Reconnect:     fastReconnect(3),
		})
		if err != nil {
			t.Fatal(err)
		}
		return tl
	}
	killAt := func(d dates.Day) func(dates.Day) error {
		return func(committed dates.Day) error {
			if committed == d {
				return errKill
			}
			return nil
		}
	}

	// Incarnation 1: killed cleanly at the day-10 boundary.
	tl := newTailer()
	tl.afterCommit = killAt(day(10))
	if err := tl.Run(context.Background()); !errors.Is(err, errKill) {
		t.Fatalf("incarnation 1 = %v, want kill", err)
	}

	// Bit-rot between incarnations: the committed checkpoint is damaged
	// on disk. Recovery must classify it and fall back to the previous
	// generation (day 9), then re-scan day 10 idempotently.
	b, err := os.ReadFile(tl.journal.Path())
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(tl.journal.Path(), b, 0o644); err != nil {
		t.Fatal(err)
	}

	// Incarnation 2: recovers from the corruption, then dies mid-commit
	// with the temp file half-written (crash stage "temp") at day 20.
	tl = newTailer()
	if rec := tl.Recovery(); rec.CorruptCheckpoints != 1 || !rec.UsedPrev {
		t.Fatalf("incarnation 2 recovery = %+v, want corrupt main + prev fallback", rec)
	}
	if got := tl.ckpt.LastDay; got != day(9) {
		t.Fatalf("incarnation 2 resumes after %s, want day 9 %s", got, day(9))
	}
	tl.journal.failpoint = func(stage string) error {
		if stage == "temp" && tl.last == day(20) {
			return errKill
		}
		return nil
	}
	if err := tl.Run(context.Background()); !errors.Is(err, errKill) {
		t.Fatalf("incarnation 2 = %v, want kill", err)
	}

	// Incarnation 3: sweeps up the torn temp (day 20 was never
	// committed, so it is re-scanned), then dies mid-commit after the
	// rotate (crash stage "rotate") at day 30 — the window where the
	// directory holds only the previous generation.
	tl = newTailer()
	if rec := tl.Recovery(); rec.TornTemps != 1 || rec.UsedPrev || rec.Fresh {
		t.Fatalf("incarnation 3 recovery = %+v, want one torn temp", rec)
	}
	if got := tl.ckpt.LastDay; got != day(19) {
		t.Fatalf("incarnation 3 resumes after %s, want day 19 %s", got, day(19))
	}
	tl.journal.failpoint = func(stage string) error {
		if stage == "rotate" && tl.last == day(30) {
			return errKill
		}
		return nil
	}
	if err := tl.Run(context.Background()); !errors.Is(err, errKill) {
		t.Fatalf("incarnation 3 = %v, want kill", err)
	}

	// Incarnation 4: only the rotated previous generation (day 29)
	// survived the rotate crash; day 30 re-scans. Killed once more at an
	// arbitrary later boundary for good measure.
	tl = newTailer()
	if rec := tl.Recovery(); !rec.UsedPrev {
		t.Fatalf("incarnation 4 recovery = %+v, want prev fallback", rec)
	}
	if got := tl.ckpt.LastDay; got != day(29) {
		t.Fatalf("incarnation 4 resumes after %s, want day 29 %s", got, day(29))
	}
	tl.afterCommit = killAt(day(47))
	if err := tl.Run(context.Background()); !errors.Is(err, errKill) {
		t.Fatalf("incarnation 4 = %v, want kill", err)
	}

	// Incarnation 5: runs the window out.
	tl = newTailer()
	if rec := tl.Recovery(); rec.Fresh || rec.UsedPrev || rec.TornTemps != 0 || rec.CorruptCheckpoints != 0 {
		t.Fatalf("incarnation 5 recovery = %+v, want clean resume", rec)
	}
	if err := tl.Run(context.Background()); err != nil {
		t.Fatalf("final incarnation: %v", err)
	}
	st := tl.Status()
	if st.IngestLagDays != 0 {
		t.Errorf("final lag = %d days, want 0", st.IngestLagDays)
	}

	got := snapshotBytes(t, tl)
	if !bytes.Equal(got, want) {
		t.Fatalf("crash-restart tail diverged from batch: %d vs %d bytes", len(got), len(want))
	}
}
