package stream

import "parallellives/internal/obs"

// Metric names exported by the tailer. Counters are monotone within a
// process; gauges describe the current tail position. The recovery
// counters include damage found at startup (a crash is usually in a
// previous process), so a restart carries the evidence forward.
const (
	MetricDaysCommitted   = "parallellives_stream_days_committed_total"
	MetricDaysSkipped     = "parallellives_stream_days_skipped_total"
	MetricStaleReads      = "parallellives_stream_stale_reads_total"
	MetricReconnects      = "parallellives_stream_reconnects_total"
	MetricTornRecoveries  = "parallellives_stream_torn_write_recoveries_total"
	MetricCorruptCkpts    = "parallellives_stream_corrupt_checkpoints_total"
	MetricSnapshotsPushed = "parallellives_stream_snapshots_published_total"
	MetricCheckpointSeq   = "parallellives_stream_checkpoint_seq"
	MetricLastCommitUnix  = "parallellives_stream_last_commit_unix_seconds"
	MetricLastPublishUnix = "parallellives_stream_last_publish_unix_seconds"
	MetricIngestLagDays   = "parallellives_stream_ingest_lag_days"
	MetricSourceHealthy   = "parallellives_stream_source_healthy"
)

// tailMetrics is the tailer's registry view. With observability off the
// struct exists but every handle is nil; the counter/gauge helpers
// no-op on nil handles, so call sites never branch.
type tailMetrics struct {
	daysCommitted  *obs.Counter
	daysSkipped    *obs.Counter
	staleReads     *obs.Counter
	reconnects     *obs.Counter
	tornRecoveries *obs.Counter
	corruptCkpts   *obs.Counter
	snapshots      *obs.Counter
	ckptSeq        *obs.Gauge
	lastCommit     *obs.Gauge
	lastPublish    *obs.Gauge
	lagDays        *obs.Gauge
	healthy        *obs.Gauge
}

func newTailMetrics(reg *obs.Registry) *tailMetrics {
	if reg == nil {
		return &tailMetrics{}
	}
	return &tailMetrics{
		daysCommitted: reg.Counter(MetricDaysCommitted,
			"Days scanned, absorbed and checkpoint-committed by the tailer."),
		daysSkipped: reg.Counter(MetricDaysSkipped,
			"Already-committed days re-delivered by the source and skipped (idempotent no-ops)."),
		staleReads: reg.Counter(MetricStaleReads,
			"Source reads that exceeded the read deadline (staleness-as-error)."),
		reconnects: reg.Counter(MetricReconnects,
			"Source reconnect attempts triggered by staleness or transport errors."),
		tornRecoveries: reg.Counter(MetricTornRecoveries,
			"Torn checkpoint writes recovered past: abandoned temp files plus prev-generation fallbacks."),
		corruptCkpts: reg.Counter(MetricCorruptCkpts,
			"Checkpoint files rejected as torn or corrupt during recovery."),
		snapshots: reg.Counter(MetricSnapshotsPushed,
			"Full lifestore snapshots assembled and published by the tailer."),
		ckptSeq: reg.Gauge(MetricCheckpointSeq,
			"Sequence number of the last committed checkpoint."),
		lastCommit: reg.Gauge(MetricLastCommitUnix,
			"Wall-clock time of the last checkpoint commit (unix seconds); checkpoint age = now - this."),
		lastPublish: reg.Gauge(MetricLastPublishUnix,
			"Wall-clock time of the last published snapshot (unix seconds); publish age = now - this."),
		lagDays: reg.Gauge(MetricIngestLagDays,
			"Days between the configured window end and the last committed day."),
		healthy: reg.Gauge(MetricSourceHealthy,
			"1 while the source is producing days within the staleness threshold, 0 while stalled."),
	}
}

func (m *tailMetrics) counter(c *obs.Counter, n int64) {
	if c != nil && n > 0 {
		c.Add(n)
	}
}

func (m *tailMetrics) gauge(g *obs.Gauge, v float64) {
	if g != nil {
		g.Set(v)
	}
}
