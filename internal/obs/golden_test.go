package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden exposition file")

// TestPrometheusGolden pins the exact bytes of the exposition format.
// Any drift — ordering, escaping, float rendering, histogram layout —
// is a scrape-compatibility break and must show up as a diff here.
// Regenerate with
//
//	go test ./internal/obs/ -run TestPrometheusGolden -update
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("parallellives_serve_requests_total",
		"HTTP requests served, by endpoint.", "endpoint").With("/v1/asn/{n}").Add(42)
	r.CounterVec("parallellives_serve_requests_total",
		"HTTP requests served, by endpoint.", "endpoint").With("/v1/health").Add(7)
	r.Gauge("parallellives_pipeline_health_mrt_quarantined_frac",
		"Fraction of MRT route records quarantined.").Set(0.0625)
	r.Gauge("parallellives_serve_cache_entries", "Response cache entries.").Set(3)
	h := r.Histogram("parallellives_lifestore_block_read_seconds",
		"Per-ASN block read+decode time.", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.0005)
	h.Observe(0.05)
	hv := r.HistogramVec("parallellives_serve_request_seconds",
		"Request latency by endpoint.", []float64{0.005, 0.05}, "endpoint")
	hv.With(`odd"label\value`).Observe(0.001) // escaping must round-trip
	r.CounterVec("parallellives_pipeline_mrt_quarantined_total",
		"MRT records quarantined, by damage class.", "class").With("truncated").Add(9)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file %s; if intentional, rerun with -update.\ngot:\n%s\nwant:\n%s",
			path, buf.Bytes(), want)
	}
}
