package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind distinguishes the three metric families.
type Kind uint8

const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE token.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds metric families. Registration and series creation take
// locks; updating a resolved instrument handle is atomic-only. All
// methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one metric name: its metadata plus the labeled series.
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string
	bounds []float64 // histogram bucket upper bounds

	mu     sync.RWMutex
	series map[string]any // label key → *Counter | *Gauge | *Histogram
}

// labelKey joins label values into the series map key. 0x1f (unit
// separator) cannot collide with printable label values in practice and
// keeps the key order-sensitive.
func labelKey(values []string) string {
	return strings.Join(values, "\x1f")
}

// getFamily registers (or finds) a family, enforcing that re-registration
// agrees on kind and label names — the merge rule that lets independent
// subsystems share one registry.
func (r *Registry) getFamily(name, help string, kind Kind, labels []string, bounds []float64) *family {
	checkName(name)
	checkLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different kind or label set", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %s re-registered with different labels", name))
			}
		}
		return f
	}
	f := &family{
		name:   name,
		help:   help,
		kind:   kind,
		labels: append([]string(nil), labels...),
		bounds: append([]float64(nil), bounds...),
		series: make(map[string]any),
	}
	r.families[name] = f
	return f
}

// drop removes one labeled series from the family. A later with()
// recreates it from zero. This is how layers whose label population can
// change at runtime (the router's per-replica fleet rollup across
// topology swaps) keep the exposition bounded to the live set instead
// of accumulating every label pair ever seen.
func (f *family) drop(values []string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.series, labelKey(values))
}

// with returns (creating if needed) the series for the given label
// values. The read path is an RLock + map hit; creation takes the write
// lock once per distinct label set.
func (f *family) with(values []string, make func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.RLock()
	m, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m
	}
	m = make()
	f.series[key] = m
	return m
}

// --- Counter ---------------------------------------------------------

// Counter is a monotonically increasing int64. The update path is a
// single atomic add.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the counter contract to hold;
// this is not checked on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With resolves the counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.with(values, func() any { return &Counter{} }).(*Counter)
}

// Drop removes the series with the given label values; a later With
// recreates it at zero. Dropping a counter mid-scrape makes its value
// appear to reset, which Prometheus-style consumers already tolerate
// (process restarts look the same) — use it only for series whose
// labeled entity is gone for good.
func (v *CounterVec) Drop(values ...string) { v.f.drop(values) }

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.getFamily(name, help, KindCounter, nil, nil)
	return f.with(nil, func() any { return &Counter{} }).(*Counter)
}

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.getFamily(name, help, KindCounter, labels, nil)}
}

// --- Gauge -----------------------------------------------------------

// Gauge is a float64 that may go up and down, stored as atomic bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d with a CAS loop.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With resolves the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.with(values, func() any { return &Gauge{} }).(*Gauge)
}

// Drop removes the series with the given label values; a later With
// recreates it at zero.
func (v *GaugeVec) Drop(values ...string) { v.f.drop(values) }

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.getFamily(name, help, KindGauge, nil, nil)
	return f.with(nil, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.getFamily(name, help, KindGauge, labels, nil)}
}

// --- Histogram -------------------------------------------------------

// DefBuckets are the default duration buckets in seconds: 1ms to ~100s
// in quarter-decade steps — wide enough for both a block decode and a
// full pipeline stage.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// ExpBuckets returns n buckets growing geometrically from start.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Histogram is a fixed-bucket histogram. Observe is lock-free: a binary
// search over the (immutable) bounds plus three atomic updates.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; implicit +Inf bucket at the end
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram buckets must be sorted")
	}
	return &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = +Inf
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the bucket holding it — the usual Prometheus-side estimate,
// computed here so callers without a query engine can report p50/p99.
// The buckets are snapshotted first and the total derived from the
// snapshot (not the live count, which can tear against concurrent
// Observes), so a quantile computed here agrees exactly with one
// computed from the same Gather/exposition state — the /v1/health ↔
// /metrics agreement contract. Values in the +Inf bucket clamp to the
// highest finite bound. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	buckets := make([]int64, len(h.buckets))
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
	}
	return QuantileFromBuckets(h.bounds, buckets, q)
}

// QuantileFromBuckets estimates the q-quantile from a frozen bucket
// snapshot: bounds are the sorted finite upper bounds, buckets the
// per-bucket (not cumulative) counts — one per bound plus the +Inf
// bucket. This is the single interpolation routine shared by
// Histogram.Quantile, the health report and the federation layer, so
// every consumer of the same bucket state reports the same number.
func QuantileFromBuckets(bounds []float64, buckets []int64, q float64) float64 {
	var total int64
	for _, n := range buckets {
		total += n
	}
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, n := range buckets {
		if float64(cum+n) >= rank && n > 0 {
			if i >= len(bounds) {
				return bounds[len(bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(n)
			return lo + (bounds[i]-lo)*frac
		}
		cum += n
	}
	return bounds[len(bounds)-1]
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With resolves the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.with(values, func() any { return newHistogram(v.f.bounds) }).(*Histogram)
}

// Histogram registers (or finds) an unlabeled histogram with the given
// bucket upper bounds (nil = DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	f := r.getFamily(name, help, KindHistogram, nil, bounds)
	return f.with(nil, func() any { return newHistogram(f.bounds) }).(*Histogram)
}

// HistogramVec registers (or finds) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &HistogramVec{f: r.getFamily(name, help, KindHistogram, labels, bounds)}
}

// --- Snapshots -------------------------------------------------------

// SeriesSnapshot is one labeled series' frozen state.
type SeriesSnapshot struct {
	LabelValues []string
	// Value holds the counter or gauge value (counters as exact integers
	// within float64 range).
	Value float64
	// Histogram state; Buckets are per-bucket (not cumulative) counts,
	// one per bound plus the +Inf bucket.
	Buckets []int64
	Count   int64
	Sum     float64
}

// FamilySnapshot is one metric family's frozen state, series sorted by
// label values.
type FamilySnapshot struct {
	Name   string
	Help   string
	Kind   Kind
	Labels []string
	Bounds []float64
	Series []SeriesSnapshot
}

// Gather freezes the registry. Families sort by name and series by label
// values, so two Gathers over the same state render identically.
func (r *Registry) Gather() []FamilySnapshot {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{
			Name:   f.name,
			Help:   f.help,
			Kind:   f.kind,
			Labels: f.labels,
			Bounds: f.bounds,
		}
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			var values []string
			if k != "" || len(f.labels) > 0 {
				values = strings.Split(k, "\x1f")
			}
			ss := SeriesSnapshot{LabelValues: values}
			switch m := f.series[k].(type) {
			case *Counter:
				ss.Value = float64(m.Value())
			case *Gauge:
				ss.Value = m.Value()
			case *Histogram:
				ss.Buckets = make([]int64, len(m.buckets))
				for i := range m.buckets {
					ss.Buckets[i] = m.buckets[i].Load()
				}
				ss.Count = m.Count()
				ss.Sum = m.Sum()
			}
			fs.Series = append(fs.Series, ss)
		}
		f.mu.RUnlock()
		out = append(out, fs)
	}
	return out
}

// Value returns one series' current value (counter or gauge) by name and
// label values. The bool reports whether the series exists.
func (r *Registry) Value(name string, labelValues ...string) (float64, bool) {
	r.mu.Lock()
	f, ok := r.families[name]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	f.mu.RLock()
	m, ok := f.series[labelKey(labelValues)]
	f.mu.RUnlock()
	if !ok {
		return 0, false
	}
	switch m := m.(type) {
	case *Counter:
		return float64(m.Value()), true
	case *Gauge:
		return m.Value(), true
	case *Histogram:
		return m.Sum(), true
	}
	return 0, false
}

// Sum returns the sum of all series of one family (counter/gauge values,
// histogram sums). The bool reports whether the family exists.
func (r *Registry) Sum(name string) (float64, bool) {
	r.mu.Lock()
	f, ok := r.families[name]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	var total float64
	f.mu.RLock()
	defer f.mu.RUnlock()
	for _, m := range f.series {
		switch m := m.(type) {
		case *Counter:
			total += float64(m.Value())
		case *Gauge:
			total += m.Value()
		case *Histogram:
			total += m.Sum()
		}
	}
	return total, true
}
