package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestSpanTreeDeterministicDurations drives the tracer off a fake clock
// and pins the exact span tree: names, parent/child structure, durations
// and attributes are all reproducible, which is what lets the
// deterministic worldsim keep stage reports stable across runs.
func TestSpanTreeDeterministicDurations(t *testing.T) {
	clk := NewFakeClock(time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC))
	tr := NewTracerWithClock(clk)
	ctx := WithTracer(context.Background(), tr)

	ctx, root := StartSpan(ctx, "pipeline.run")
	clk.Advance(10 * time.Millisecond)

	_, restore := StartSpan(ctx, "restore")
	restore.SetAttr(AttrIn, 100)
	restore.AddAttr(AttrOut, 90)
	restore.AddAttr(AttrOut, 5)
	clk.Advance(250 * time.Millisecond)
	restore.End()

	childCtx, scan := StartSpan(ctx, "bgpscan")
	scan.SetAttr(AttrQuarantined, 7)
	clk.Advance(100 * time.Millisecond)
	_, day := StartSpan(childCtx, "day")
	clk.Advance(50 * time.Millisecond)
	day.End()
	scan.End()

	clk.Advance(5 * time.Millisecond)
	root.End()

	if got, want := root.Duration(), 415*time.Millisecond; got != want {
		t.Fatalf("root duration = %v, want %v", got, want)
	}
	if got, want := restore.Duration(), 250*time.Millisecond; got != want {
		t.Fatalf("restore duration = %v, want %v", got, want)
	}
	if got, want := scan.Duration(), 150*time.Millisecond; got != want {
		t.Fatalf("bgpscan duration = %v, want %v", got, want)
	}
	if got, want := day.Duration(), 50*time.Millisecond; got != want {
		t.Fatalf("day duration = %v, want %v", got, want)
	}
	if out, _ := restore.Attr(AttrOut); out != 95 {
		t.Fatalf("restore out attr = %d, want 95 (AddAttr accumulates)", out)
	}

	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "restore" || kids[1].Name() != "bgpscan" {
		t.Fatalf("unexpected children: %v", kids)
	}
	if root.Child("bgpscan") != kids[1] {
		t.Fatal("Child lookup by name failed")
	}
	if grand := kids[1].Children(); len(grand) != 1 || grand[0].Name() != "day" {
		t.Fatalf("unexpected grandchildren: %v", grand)
	}

	// The JSON summary is stable (maps marshal with sorted keys).
	b1, err := json.Marshal(tr.Summary())
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := json.Marshal(tr.Summary())
	if string(b1) != string(b2) {
		t.Fatal("span summary JSON not deterministic")
	}
	if !strings.Contains(string(b1), `"durationNs":250000000`) {
		t.Fatalf("summary lost the fake-clock duration: %s", b1)
	}

	table := StageTable(root)
	for _, want := range []string{"pipeline.run", "  restore", "  bgpscan", "    day", "250ms", "100", "95", "7"} {
		if !strings.Contains(table, want) {
			t.Fatalf("stage table missing %q:\n%s", want, table)
		}
	}
}

// TestNilSpanSafety proves instrumented code runs untraced for free: no
// tracer in context ⇒ nil spans, and every method no-ops.
func TestNilSpanSafety(t *testing.T) {
	ctx, span := StartSpan(context.Background(), "ghost")
	if span != nil {
		t.Fatal("StartSpan without a tracer should return a nil span")
	}
	if TracerFrom(ctx) != nil {
		t.Fatal("context should carry no tracer")
	}
	span.SetAttr("x", 1)
	span.AddAttr("x", 1)
	span.End()
	if span.Duration() != 0 || span.Name() != "" || span.Children() != nil {
		t.Fatal("nil span accessors should return zero values")
	}
	if _, ok := span.Attr("x"); ok {
		t.Fatal("nil span should hold no attrs")
	}
	if StageTable(nil) != "" {
		t.Fatal("StageTable(nil) should be empty")
	}
	if s := Summarize(nil); s.Name != "" {
		t.Fatal("Summarize(nil) should be zero")
	}
}

func TestSpanDoubleEndKeepsFirst(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	tr := NewTracerWithClock(clk)
	ctx := WithTracer(context.Background(), tr)
	_, s := StartSpan(ctx, "once")
	clk.Advance(time.Second)
	s.End()
	clk.Advance(time.Hour)
	s.End()
	if got := s.Duration(); got != time.Second {
		t.Fatalf("duration after double End = %v, want 1s", got)
	}
}

func TestUnendedSpanDurationZero(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	_, s := StartSpan(ctx, "open")
	if s.Duration() != 0 {
		t.Fatal("unended span should report zero duration")
	}
	if len(tr.Roots()) != 1 {
		t.Fatal("root span not recorded")
	}
}
