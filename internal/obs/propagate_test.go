package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

// seqIDs returns a deterministic IDSource: 0000000000000001,
// 0000000000000002, ...
func seqIDs() IDSource {
	n := 0
	return func() string {
		n++
		return fmt.Sprintf("%016x", n)
	}
}

func TestParseTraceparent(t *testing.T) {
	tid := strings.Repeat("ab", 16)
	sid := strings.Repeat("cd", 8)
	cases := []struct {
		in string
		ok bool
	}{
		{"00-" + tid + "-" + sid + "-01", true},
		{"  00-" + tid + "-" + sid + "-00  ", true},                  // unsampled flag still parses
		{"01-" + tid + "-" + sid + "-01", false},                     // unknown version
		{"00-" + tid + "-" + sid, false},                             // missing flags
		{"00-" + strings.Repeat("0", 32) + "-" + sid + "-01", false}, // zero trace ID
		{"00-" + tid + "-" + strings.Repeat("0", 16) + "-01", false}, // zero span ID
		{"00-" + strings.ToUpper(tid) + "-" + sid + "-01", false},    // uppercase hex
		{"00-" + tid[:30] + "-" + sid + "-01", false},                // short trace ID
		{"00-" + tid + "-" + sid + "-zz", false},                     // bad flags
		{"", false},
		{"garbage", false},
	}
	for _, c := range cases {
		sc, ok := ParseTraceparent(c.in)
		if ok != c.ok {
			t.Errorf("ParseTraceparent(%q) ok = %v, want %v", c.in, ok, c.ok)
		}
		if ok && (sc.TraceID != tid || sc.SpanID != sid) {
			t.Errorf("ParseTraceparent(%q) = %+v", c.in, sc)
		}
	}
	// Round trip.
	sc := SpanContext{TraceID: tid, SpanID: sid}
	got, ok := ParseTraceparent(sc.Traceparent())
	if !ok || got != sc {
		t.Fatalf("round trip = %+v, %v", got, ok)
	}
}

func TestTracerSpanIDs(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	tr := NewTracerWithIDs(clock, seqIDs())
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "root")
	_, child := StartSpan(ctx, "child")
	clock.Advance(time.Millisecond)
	child.End()
	root.End()

	if root.ID() != "0000000000000001" {
		t.Fatalf("root span ID = %q", root.ID())
	}
	wantTrace := "00000000000000020000000000000003"
	if root.TraceID() != wantTrace {
		t.Fatalf("root trace ID = %q", root.TraceID())
	}
	if child.TraceID() != wantTrace {
		t.Fatalf("child must inherit the trace ID, got %q", child.TraceID())
	}
	if child.ID() == root.ID() {
		t.Fatalf("child reused the root's span ID")
	}
	sum := Summarize(root)
	if sum.TraceID != wantTrace || sum.SpanID != root.ID() || sum.ParentID != "" {
		t.Fatalf("root summary identity = %+v", sum)
	}
	if sum.Children[0].TraceID != "" {
		t.Fatalf("child summaries must omit the trace ID, got %q", sum.Children[0].TraceID)
	}
	if sum.Children[0].SpanID != child.ID() {
		t.Fatalf("child summary span ID = %q", sum.Children[0].SpanID)
	}
}

func TestRemoteParentContinuation(t *testing.T) {
	tr := NewTracerWithIDs(NewFakeClock(time.Unix(0, 0)), seqIDs())
	parent := SpanContext{TraceID: strings.Repeat("ab", 16), SpanID: strings.Repeat("cd", 8)}
	ctx := WithRemoteParent(WithTracer(context.Background(), tr), parent)
	_, root := StartSpan(ctx, "serve asn")
	root.End()

	if root.TraceID() != parent.TraceID {
		t.Fatalf("root must join the remote trace, got %q", root.TraceID())
	}
	sum := Summarize(root)
	if sum.ParentID != parent.SpanID {
		t.Fatalf("root summary parent = %q, want %q", sum.ParentID, parent.SpanID)
	}
	if sum.SpanID == parent.SpanID {
		t.Fatalf("continued root must mint its own span ID")
	}
}

func TestAttachRemote(t *testing.T) {
	tr := NewTracerWithIDs(NewFakeClock(time.Unix(0, 0)), seqIDs())
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "route asn")
	_, local := StartSpan(ctx, "shard[0]")
	local.End()
	remote := SpanSummary{
		Name: "serve asn", TraceID: root.TraceID(),
		SpanID: strings.Repeat("ee", 8), ParentID: local.ID(), DurationNs: 42,
	}
	local.AttachRemote(remote)
	root.End()

	sum := Summarize(root)
	if len(sum.Children) != 1 || len(sum.Children[0].Children) != 1 {
		t.Fatalf("tree shape = %+v", sum)
	}
	got := sum.Children[0].Children[0]
	if got.Name != "serve asn" || got.TraceID != root.TraceID() || got.ParentID != local.ID() {
		t.Fatalf("stitched remote = %+v", got)
	}
}

// TestIDLessSummaryStable pins that tracers without an IDSource (the
// pipeline stage tracer behind /v1/stages) emit exactly the historical
// JSON shape — no identity keys.
func TestIDLessSummaryStable(t *testing.T) {
	clock := NewFakeClock(time.Unix(0, 0))
	tr := NewTracerWithClock(clock)
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "stage")
	_, child := StartSpan(ctx, "inner")
	clock.Advance(2 * time.Millisecond)
	child.End()
	root.End()
	root.SetAttr("in", 7)

	b, err := json.Marshal(Summarize(root))
	if err != nil {
		t.Fatal(err)
	}
	want := `{"name":"stage","durationNs":2000000,"attrs":{"in":7},"children":[{"name":"inner","durationNs":2000000}]}`
	if string(b) != want {
		t.Fatalf("ID-less summary changed:\n got %s\nwant %s", b, want)
	}
}

func TestRandomIDsWellFormed(t *testing.T) {
	tr := NewTracerWithIDs(nil, nil)
	ctx := WithTracer(context.Background(), tr)
	_, root := StartSpan(ctx, "r")
	root.End()
	if !root.SpanContext().Valid() {
		t.Fatalf("random span context invalid: %+v", root.SpanContext())
	}
	if _, ok := ParseTraceparent(root.SpanContext().Traceparent()); !ok {
		t.Fatalf("random traceparent does not parse: %q", root.SpanContext().Traceparent())
	}
}
