package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"
	"time"
)

// Clock abstracts time for the tracer. The real clock is the default;
// tests and deterministic harnesses plug a FakeClock so span durations
// are reproducible.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// FakeClock is a manually advanced Clock.
type FakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewFakeClock starts a fake clock at t.
func NewFakeClock(t time.Time) *FakeClock { return &FakeClock{t: t} }

// Now returns the fake time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the fake time forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// Tracer records span trees. It is safe for concurrent use; spans are
// cheap (one small allocation each) and the tracer keeps every root it
// started, so long-running processes should scope tracers per run.
type Tracer struct {
	clock Clock

	mu    sync.Mutex
	roots []*Span
}

// NewTracer returns a tracer on the wall clock.
func NewTracer() *Tracer { return NewTracerWithClock(realClock{}) }

// NewTracerWithClock returns a tracer reading time from c.
func NewTracerWithClock(c Clock) *Tracer { return &Tracer{clock: c} }

// Roots returns the root spans started so far, in start order.
// Nil-safe, so a hand-built Obs with no tracer can still be queried.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// Attr is one span attribute — an integer measure such as records
// parsed, records quarantined, or bytes read.
type Attr struct {
	Key   string
	Value int64
}

// Span is one timed operation. All methods are nil-safe: a nil *Span
// (what StartSpan returns without a tracer in context) no-ops, so
// instrumented code needs no conditionals.
type Span struct {
	tracer *Tracer
	name   string
	start  time.Time

	mu       sync.Mutex
	end      time.Time
	ended    bool
	attrs    []Attr
	children []*Span
}

func (t *Tracer) startSpan(name string, parent *Span) *Span {
	s := &Span{tracer: t, name: name, start: t.clock.Now()}
	if parent == nil {
		t.mu.Lock()
		t.roots = append(t.roots, s)
		t.mu.Unlock()
	} else {
		parent.mu.Lock()
		parent.children = append(parent.children, s)
		parent.mu.Unlock()
	}
	return s
}

type tracerKey struct{}
type spanKey struct{}

// WithTracer attaches a tracer to the context; subsequent StartSpan
// calls on that context record into it.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the tracer attached to the context, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// StartSpan starts a span named name as a child of the context's current
// span (or as a root). Without a tracer in the context it returns the
// context unchanged and a nil span whose methods all no-op, so
// instrumentation costs nothing when observability is off.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	s := t.startSpan(name, parent)
	return context.WithValue(ctx, spanKey{}, s), s
}

// End closes the span. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.tracer.clock.Now()
	s.mu.Lock()
	if !s.ended {
		s.end = now
		s.ended = true
	}
	s.mu.Unlock()
}

// SetAttr sets (or replaces) an attribute.
func (s *Span) SetAttr(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = v
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
}

// AddAttr adds delta to an attribute, creating it at delta.
func (s *Span) AddAttr(key string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value += delta
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: delta})
}

// Name returns the span name. Nil-safe.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns end−start for an ended span, 0 otherwise. Nil-safe.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return 0
	}
	return s.end.Sub(s.start)
}

// Attrs returns a copy of the attributes in insertion order. Nil-safe.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Attr returns one attribute's value (0, false when absent). Nil-safe.
func (s *Span) Attr(key string) (int64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return 0, false
}

// Children returns a copy of the child spans in start order. Nil-safe.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Child returns the first child with the given name, or nil. Nil-safe.
func (s *Span) Child(name string) *Span {
	for _, c := range s.Children() {
		if c.name == name {
			return c
		}
	}
	return nil
}

// SpanSummary is the JSON form of a span tree. Attribute maps marshal
// with sorted keys, so the encoding is deterministic.
type SpanSummary struct {
	Name       string           `json:"name"`
	DurationNs int64            `json:"durationNs"`
	Attrs      map[string]int64 `json:"attrs,omitempty"`
	Children   []SpanSummary    `json:"children,omitempty"`
}

// Summarize converts a span tree into its JSON form. Nil-safe (returns
// the zero summary).
func Summarize(s *Span) SpanSummary {
	if s == nil {
		return SpanSummary{}
	}
	sum := SpanSummary{Name: s.Name(), DurationNs: s.Duration().Nanoseconds()}
	if attrs := s.Attrs(); len(attrs) > 0 {
		sum.Attrs = make(map[string]int64, len(attrs))
		for _, a := range attrs {
			sum.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.Children() {
		sum.Children = append(sum.Children, Summarize(c))
	}
	return sum
}

// Summary returns every root span's JSON form.
func (t *Tracer) Summary() []SpanSummary {
	roots := t.Roots()
	out := make([]SpanSummary, 0, len(roots))
	for _, r := range roots {
		out = append(out, Summarize(r))
	}
	return out
}

// Well-known attribute keys the stage table renders as columns. Stages
// set these for their record flow; anything else lands in the detail
// column.
const (
	AttrIn          = "in"          // records entering the stage
	AttrOut         = "out"         // records leaving the stage
	AttrDrops       = "drops"       // records discarded by sanitization
	AttrQuarantined = "quarantined" // records quarantined as damaged
)

// StageTable renders a span tree as an aligned per-stage table: one row
// per span with its duration, the well-known record-flow attributes as
// columns, and remaining attributes as key=value detail. Nil-safe
// (returns an empty string).
func StageTable(root *Span) string {
	if root == nil {
		return ""
	}
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "STAGE\tDURATION\tIN\tOUT\tDROPS\tQUARANTINED\tDETAIL")
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		cell := func(key string) string {
			if v, ok := s.Attr(key); ok {
				return fmt.Sprintf("%d", v)
			}
			return "-"
		}
		var detail []string
		for _, a := range s.Attrs() {
			switch a.Key {
			case AttrIn, AttrOut, AttrDrops, AttrQuarantined:
			default:
				detail = append(detail, fmt.Sprintf("%s=%d", a.Key, a.Value))
			}
		}
		sort.Strings(detail)
		fmt.Fprintf(w, "%s%s\t%v\t%s\t%s\t%s\t%s\t%s\n",
			strings.Repeat("  ", depth), s.Name(),
			s.Duration().Round(time.Microsecond),
			cell(AttrIn), cell(AttrOut), cell(AttrDrops), cell(AttrQuarantined),
			strings.Join(detail, " "))
		for _, c := range s.Children() {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	w.Flush()
	return b.String()
}
