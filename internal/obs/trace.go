package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"
	"time"
)

// Clock abstracts time for the tracer. The real clock is the default;
// tests and deterministic harnesses plug a FakeClock so span durations
// are reproducible.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// FakeClock is a manually advanced Clock.
type FakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewFakeClock starts a fake clock at t.
func NewFakeClock(t time.Time) *FakeClock { return &FakeClock{t: t} }

// Now returns the fake time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the fake time forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// Tracer records span trees. It is safe for concurrent use; spans are
// cheap (one small allocation each) and the tracer keeps every root it
// started, so long-running processes should scope tracers per run (the
// serving tier creates one per request).
type Tracer struct {
	clock Clock
	ids   IDSource // nil: spans carry no IDs (stage traces stay byte-stable)

	mu    sync.Mutex
	roots []*Span
}

// NewTracer returns a tracer on the wall clock.
func NewTracer() *Tracer { return NewTracerWithClock(realClock{}) }

// NewTracerWithClock returns a tracer reading time from c.
func NewTracerWithClock(c Clock) *Tracer { return &Tracer{clock: c} }

// NewTracerWithIDs returns a tracer that stamps every span with an ID
// from ids and every root with a trace ID — the form the serving tier
// uses so request traces can be propagated and stitched across
// processes. A nil clock means the wall clock; a nil ids means the
// process-wide random source.
func NewTracerWithIDs(c Clock, ids IDSource) *Tracer {
	if c == nil {
		c = realClock{}
	}
	if ids == nil {
		ids = randomID
	}
	return &Tracer{clock: c, ids: ids}
}

// Roots returns the root spans started so far, in start order.
// Nil-safe, so a hand-built Obs with no tracer can still be queried.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// Attr is one span attribute — an integer measure such as records
// parsed, records quarantined, or bytes read.
type Attr struct {
	Key   string
	Value int64
}

// Span is one timed operation. All methods are nil-safe: a nil *Span
// (what StartSpan returns without a tracer in context) no-ops, so
// instrumented code needs no conditionals.
type Span struct {
	tracer   *Tracer
	name     string
	start    time.Time
	id       string // empty on ID-less tracers
	traceID  string // root: own or inherited from a remote parent; child: copied from parent
	parentID string // remote parent span ID, set only on roots continuing an incoming trace

	mu       sync.Mutex
	end      time.Time
	ended    bool
	attrs    []Attr
	children []*Span
	remote   []SpanSummary // wire summaries stitched in from other processes
}

func (t *Tracer) startSpan(name string, parent *Span, remote *SpanContext) *Span {
	s := &Span{tracer: t, name: name, start: t.clock.Now()}
	if t.ids != nil {
		s.id = t.ids()
	}
	if parent == nil {
		if t.ids != nil {
			if remote != nil && remote.Valid() {
				s.traceID, s.parentID = remote.TraceID, remote.SpanID
			} else {
				s.traceID = t.ids() + t.ids()
			}
		}
		t.mu.Lock()
		t.roots = append(t.roots, s)
		t.mu.Unlock()
	} else {
		s.traceID = parent.traceID
		parent.mu.Lock()
		parent.children = append(parent.children, s)
		parent.mu.Unlock()
	}
	return s
}

type tracerKey struct{}
type spanKey struct{}

// WithTracer attaches a tracer to the context; subsequent StartSpan
// calls on that context record into it.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the tracer attached to the context, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// StartSpan starts a span named name as a child of the context's current
// span (or as a root). Without a tracer in the context it returns the
// context unchanged and a nil span whose methods all no-op, so
// instrumentation costs nothing when observability is off.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	var remote *SpanContext
	if parent == nil {
		if rp, ok := RemoteParentFrom(ctx); ok {
			remote = &rp
		}
	}
	s := t.startSpan(name, parent, remote)
	return context.WithValue(ctx, spanKey{}, s), s
}

// StartSpanf is StartSpan with a formatted name. The formatting is
// skipped entirely when no tracer is attached, so instrumented hot paths
// cost one context lookup — not an fmt.Sprintf — with observability off.
func StartSpanf(ctx context.Context, format string, args ...any) (context.Context, *Span) {
	if TracerFrom(ctx) == nil {
		return ctx, nil
	}
	return StartSpan(ctx, fmt.Sprintf(format, args...))
}

// SpanFrom returns the context's current span, or nil. Nil-safe callers
// can interrogate it for trace identity without starting a child.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// End closes the span. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.tracer.clock.Now()
	s.mu.Lock()
	if !s.ended {
		s.end = now
		s.ended = true
	}
	s.mu.Unlock()
}

// SetAttr sets (or replaces) an attribute.
func (s *Span) SetAttr(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = v
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
}

// AddAttr adds delta to an attribute, creating it at delta.
func (s *Span) AddAttr(key string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value += delta
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: delta})
}

// Name returns the span name. Nil-safe.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// ID returns the span ID (empty on ID-less tracers). Nil-safe.
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// TraceID returns the trace ID the span belongs to (empty on ID-less
// tracers). Children inherit their root's trace ID. Nil-safe.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

// SpanContext returns the span's wire identity — what a caller injects
// as the traceparent of an outbound request so the next process joins
// this trace. Invalid (zero) on ID-less tracers. Nil-safe.
func (s *Span) SpanContext() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.traceID, SpanID: s.id}
}

// AttachRemote stitches a span summary received from another process
// (over the X-Parallellives-Span response header) under this span. The
// summary renders after the local children. Nil-safe.
func (s *Span) AttachRemote(sum SpanSummary) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.remote = append(s.remote, sum)
	s.mu.Unlock()
}

// Remote returns a copy of the stitched-in remote summaries. Nil-safe.
func (s *Span) Remote() []SpanSummary {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SpanSummary(nil), s.remote...)
}

// Duration returns end−start for an ended span, 0 otherwise. Nil-safe.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return 0
	}
	return s.end.Sub(s.start)
}

// Attrs returns a copy of the attributes in insertion order. Nil-safe.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Attr returns one attribute's value (0, false when absent). Nil-safe.
func (s *Span) Attr(key string) (int64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return 0, false
}

// Children returns a copy of the child spans in start order. Nil-safe.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Child returns the first child with the given name, or nil. Nil-safe.
func (s *Span) Child(name string) *Span {
	for _, c := range s.Children() {
		if c.name == name {
			return c
		}
	}
	return nil
}

// SpanSummary is the JSON form of a span tree. Attribute maps marshal
// with sorted keys, so the encoding is deterministic. The identity
// fields are only populated by ID-carrying tracers (request traces):
// TraceID and ParentID appear on roots, SpanID on every span — so the
// ID-less stage traces behind /v1/stages keep their historical bytes.
type SpanSummary struct {
	Name       string           `json:"name"`
	TraceID    string           `json:"traceId,omitempty"`
	SpanID     string           `json:"spanId,omitempty"`
	ParentID   string           `json:"parentId,omitempty"`
	DurationNs int64            `json:"durationNs"`
	Attrs      map[string]int64 `json:"attrs,omitempty"`
	Children   []SpanSummary    `json:"children,omitempty"`
}

// Summarize converts a span tree into its JSON form. Nil-safe (returns
// the zero summary). Remote summaries stitched in with AttachRemote
// render after the local children and keep their own root identity, so
// a cross-process tree shows every process's trace ID (all equal when
// propagation worked).
func Summarize(s *Span) SpanSummary {
	return summarize(s, true)
}

func summarize(s *Span, root bool) SpanSummary {
	if s == nil {
		return SpanSummary{}
	}
	sum := SpanSummary{Name: s.Name(), SpanID: s.ID(), DurationNs: s.Duration().Nanoseconds()}
	if root {
		sum.TraceID = s.TraceID()
		sum.ParentID = s.parentID
	}
	if attrs := s.Attrs(); len(attrs) > 0 {
		sum.Attrs = make(map[string]int64, len(attrs))
		for _, a := range attrs {
			sum.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.Children() {
		sum.Children = append(sum.Children, summarize(c, false))
	}
	sum.Children = append(sum.Children, s.Remote()...)
	return sum
}

// Summary returns every root span's JSON form.
func (t *Tracer) Summary() []SpanSummary {
	roots := t.Roots()
	out := make([]SpanSummary, 0, len(roots))
	for _, r := range roots {
		out = append(out, Summarize(r))
	}
	return out
}

// Well-known attribute keys the stage table renders as columns. Stages
// set these for their record flow; anything else lands in the detail
// column.
const (
	AttrIn          = "in"          // records entering the stage
	AttrOut         = "out"         // records leaving the stage
	AttrDrops       = "drops"       // records discarded by sanitization
	AttrQuarantined = "quarantined" // records quarantined as damaged
)

// StageTable renders a span tree as an aligned per-stage table: one row
// per span with its duration, the well-known record-flow attributes as
// columns, and remaining attributes as key=value detail. Nil-safe
// (returns an empty string).
func StageTable(root *Span) string {
	if root == nil {
		return ""
	}
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "STAGE\tDURATION\tIN\tOUT\tDROPS\tQUARANTINED\tDETAIL")
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		cell := func(key string) string {
			if v, ok := s.Attr(key); ok {
				return fmt.Sprintf("%d", v)
			}
			return "-"
		}
		var detail []string
		for _, a := range s.Attrs() {
			switch a.Key {
			case AttrIn, AttrOut, AttrDrops, AttrQuarantined:
			default:
				detail = append(detail, fmt.Sprintf("%s=%d", a.Key, a.Value))
			}
		}
		sort.Strings(detail)
		fmt.Fprintf(w, "%s%s\t%v\t%s\t%s\t%s\t%s\t%s\n",
			strings.Repeat("  ", depth), s.Name(),
			s.Duration().Round(time.Microsecond),
			cell(AttrIn), cell(AttrOut), cell(AttrDrops), cell(AttrQuarantined),
			strings.Join(detail, " "))
		for _, c := range s.Children() {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	w.Flush()
	return b.String()
}
