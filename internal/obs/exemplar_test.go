package obs

import (
	"sort"
	"sync"
	"testing"
)

func TestExemplarRingSlowest(t *testing.T) {
	r := NewExemplarRing(4)
	// Offer 1..10ms in shuffled order; the ring must keep 7,8,9,10.
	for _, ms := range []int64{3, 9, 1, 7, 5, 10, 2, 8, 4, 6} {
		r.Offer(Exemplar{Endpoint: "asn", DurationNs: ms * 1e6, Status: 200})
	}
	snap := r.Snapshot()
	if snap.Capacity != 4 || snap.Seen != 10 {
		t.Fatalf("snapshot meta = %+v", snap)
	}
	var got []int64
	for _, e := range snap.Slowest {
		got = append(got, e.DurationNs/1e6)
	}
	want := []int64{10, 9, 8, 7}
	if len(got) != len(want) {
		t.Fatalf("slowest = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slowest = %v, want %v (descending)", got, want)
		}
	}
	if len(snap.Errors) != 0 {
		t.Fatalf("no errors were offered, got %d", len(snap.Errors))
	}
}

func TestExemplarRingErrors(t *testing.T) {
	r := NewExemplarRing(3)
	for i := 1; i <= 5; i++ {
		r.Offer(Exemplar{Status: 500, DurationNs: int64(i)})
	}
	snap := r.Snapshot()
	var got []int64
	for _, e := range snap.Errors {
		got = append(got, e.DurationNs)
	}
	// Last 3 errors, newest first.
	want := []int64{5, 4, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("errors = %v, want %v", got, want)
		}
	}
	// Errors also compete on the slow side.
	if len(snap.Slowest) != 3 || snap.Slowest[0].DurationNs != 5 {
		t.Fatalf("slowest = %+v", snap.Slowest)
	}
}

func TestExemplarRingDisabled(t *testing.T) {
	r := NewExemplarRing(0)
	if r != nil {
		t.Fatalf("capacity 0 must return a nil ring")
	}
	r.Offer(Exemplar{DurationNs: 1}) // must not panic
	snap := r.Snapshot()
	if snap.Capacity != 0 || snap.Slowest != nil || snap.Errors != nil {
		t.Fatalf("nil snapshot = %+v", snap)
	}
}

// TestExemplarRingRace hammers Offer and Snapshot from many goroutines
// under -race, then checks the ring still holds exactly the global
// slowest-N of everything offered.
func TestExemplarRingRace(t *testing.T) {
	const (
		workers = 16
		perG    = 2000
		cap     = 32
	)
	r := NewExemplarRing(cap)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Deterministic per-goroutine LCG so the expected top-N is
			// computable without coordination.
			x := uint64(g)*2654435761 + 1
			for i := 0; i < perG; i++ {
				x = x*6364136223846793005 + 1442695040888963407
				d := int64(x%1_000_000) + 1
				status := 200
				if d%97 == 0 {
					status = 503
				}
				r.Offer(Exemplar{Endpoint: "asn", DurationNs: d, Status: status})
				if i%257 == 0 {
					snap := r.Snapshot()
					if len(snap.Slowest) > cap || len(snap.Errors) > cap {
						panic("ring exceeded capacity")
					}
					for j := 1; j < len(snap.Slowest); j++ {
						if snap.Slowest[j].DurationNs > snap.Slowest[j-1].DurationNs {
							panic("slowest not sorted descending")
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Recompute the expected global slowest-N.
	var all []int64
	for g := 0; g < workers; g++ {
		x := uint64(g)*2654435761 + 1
		for i := 0; i < perG; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			all = append(all, int64(x%1_000_000)+1)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] > all[j] })
	snap := r.Snapshot()
	if snap.Seen != workers*perG {
		t.Fatalf("seen = %d, want %d", snap.Seen, workers*perG)
	}
	if len(snap.Slowest) != cap {
		t.Fatalf("kept %d slowest, want %d", len(snap.Slowest), cap)
	}
	for i := 0; i < cap; i++ {
		if snap.Slowest[i].DurationNs != all[i] {
			t.Fatalf("slowest[%d] = %d, want %d", i, snap.Slowest[i].DurationNs, all[i])
		}
	}
}
