package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Output is deterministic: families sort by
// name, series by label values, histogram buckets by bound.
func WritePrometheus(w io.Writer, r *Registry) error {
	for _, f := range r.Gather() {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, s := range f.Series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f FamilySnapshot, s SeriesSnapshot) error {
	switch f.Kind {
	case KindHistogram:
		var cum int64
		for i, n := range s.Buckets {
			cum += n
			le := "+Inf"
			if i < len(f.Bounds) {
				le = formatFloat(f.Bounds[i])
			}
			lbl := labelString(f.Labels, s.LabelValues, "le", le)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, lbl, cum); err != nil {
				return err
			}
		}
		lbl := labelString(f.Labels, s.LabelValues, "", "")
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.Name, lbl, formatFloat(s.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.Name, lbl, s.Count)
		return err
	default:
		lbl := labelString(f.Labels, s.LabelValues, "", "")
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, lbl, formatFloat(s.Value))
		return err
	}
}

// labelString renders {a="x",b="y"} with an optional extra label (the
// histogram le), or "" with no labels at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(v))
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraName, escapeLabel(extraValue))
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the exposition-format label value escapes:
// backslash, double quote and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// escapeHelp escapes HELP text (backslash and newline only, per spec).
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// formatFloat renders a sample value: integers without an exponent,
// everything else in Go's shortest form, infinities as +Inf/-Inf.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
