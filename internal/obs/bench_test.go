package obs

import (
	"context"
	"testing"
)

// BenchmarkRegistryCounterParallel is the acceptance benchmark for the
// metric hot path: a resolved counter handle increments with a single
// atomic add — no locks, no map lookups — and must stay around or below
// ~20ns/op so instrumenting per-record paths is free in practice.
func BenchmarkRegistryCounterParallel(b *testing.B) {
	r := NewRegistry()
	c := r.CounterVec("parallellives_bench_events_total", "", "worker").With("w0")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	if c.Value() != int64(b.N) {
		b.Fatalf("lost increments: %d != %d", c.Value(), b.N)
	}
}

// BenchmarkRegistryVecLookup measures the labeled lookup path (RLock +
// map hit) for callers that cannot pre-resolve handles.
func BenchmarkRegistryVecLookup(b *testing.B) {
	r := NewRegistry()
	v := r.CounterVec("parallellives_bench_lookup_total", "", "endpoint")
	v.With("/v1/asn/{n}")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("/v1/asn/{n}").Inc()
	}
}

// BenchmarkHistogramObserve measures the histogram hot path: binary
// search over immutable bounds plus three atomic updates.
func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("parallellives_bench_latency_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) / 1000)
	}
}

// BenchmarkSpanOverhead measures one start/attr/end cycle, bounding what
// a per-stage (not per-record) trace costs. The tracer retains spans, so
// it is recycled periodically to keep the benchmark memory-flat.
func BenchmarkSpanOverhead(b *testing.B) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%4096 == 0 {
			tr = NewTracer()
			ctx = WithTracer(context.Background(), tr)
		}
		_, sp := StartSpan(ctx, "stage")
		sp.SetAttr(AttrOut, int64(i))
		sp.End()
	}
}
