// Package obs is the repository's observability core: a dependency-free
// metrics registry (counters, gauges, fixed-bucket histograms, all with
// label support and lock-free hot paths), a lightweight span tracer with
// a pluggable clock, and exposition helpers (Prometheus text format, a
// JSON span summary, and a per-stage text table).
//
// The package deliberately imports nothing from the rest of the
// repository, so every layer — parsers, the pipeline, the snapshot
// store, the HTTP service and the commands — can instrument itself
// without import cycles. The conventions it enforces:
//
//   - metric names follow parallellives_<subsystem>_<name>_<unit>
//     (Prometheus naming rules are validated at registration time and
//     violations panic, because a bad name is a programmer error);
//   - label sets are fixed per metric family and must stay low
//     cardinality (endpoints, stages, registries, error classes — never
//     ASNs, days or paths);
//   - snapshots (Gather) are deterministic: families sort by name,
//     series by label values, so exposition output is testable byte for
//     byte.
//
// Instrument handles (Counter, Gauge, Histogram) are resolved once —
// at registration or via a Vec lookup — and then updated with pure
// atomics; no lock is taken on the update path.
package obs

import "regexp"

// Obs bundles the two halves of one run's observability: the metrics
// registry and the span tracer. Commands create one and thread it into
// the subsystems they drive.
type Obs struct {
	Registry *Registry
	Tracer   *Tracer
}

// New returns an Obs with a fresh registry and a wall-clock tracer.
func New() *Obs {
	return &Obs{Registry: NewRegistry(), Tracer: NewTracer()}
}

// NewWithClock returns an Obs whose tracer reads time from c — the form
// tests and the deterministic worldsim use to keep span durations
// reproducible.
func NewWithClock(c Clock) *Obs {
	return &Obs{Registry: NewRegistry(), Tracer: NewTracerWithClock(c)}
}

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// checkName panics on an invalid Prometheus metric name.
func checkName(name string) {
	if !nameRe.MatchString(name) {
		panic("obs: invalid metric name " + name)
	}
}

// checkLabels panics on an invalid Prometheus label name.
func checkLabels(labels []string) {
	for _, l := range labels {
		if !labelRe.MatchString(l) {
			panic("obs: invalid label name " + l)
		}
	}
}
