package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndVec(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("parallellives_test_events_total", "events")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	v := r.CounterVec("parallellives_test_reqs_total", "requests", "endpoint")
	v.With("/a").Add(2)
	v.With("/b").Inc()
	v.With("/a").Inc()
	if got, ok := r.Value("parallellives_test_reqs_total", "/a"); !ok || got != 3 {
		t.Fatalf("Value(/a) = %v,%v, want 3,true", got, ok)
	}
	if sum, ok := r.Sum("parallellives_test_reqs_total"); !ok || sum != 4 {
		t.Fatalf("Sum = %v,%v, want 4,true", sum, ok)
	}
	// Re-registration with identical shape returns the same family.
	if got := r.CounterVec("parallellives_test_reqs_total", "requests", "endpoint").With("/a").Value(); got != 3 {
		t.Fatalf("re-registered counter = %d, want 3", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("parallellives_test_temp", "temperature")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Fatalf("gauge = %v, want 2.0", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("parallellives_test_latency_seconds", "latency", []float64{0.1, 0.2, 0.4})
	for _, v := range []float64{0.05, 0.15, 0.15, 0.3, 0.9} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.15+0.15+0.3+0.9; got < want-1e-12 || got > want+1e-12 {
		t.Fatalf("sum = %v, want ≈%v", got, want)
	}
	snap := r.Gather()
	if len(snap) != 1 || snap[0].Kind != KindHistogram {
		t.Fatalf("unexpected gather: %+v", snap)
	}
	wantBuckets := []int64{1, 2, 1, 1} // ≤0.1, ≤0.2, ≤0.4, +Inf
	for i, n := range snap[0].Series[0].Buckets {
		if n != wantBuckets[i] {
			t.Fatalf("bucket %d = %d, want %d", i, n, wantBuckets[i])
		}
	}
	p50 := h.Quantile(0.5)
	if p50 < 0.1 || p50 > 0.2 {
		t.Fatalf("p50 = %v, want within (0.1, 0.2]", p50)
	}
	if p99 := h.Quantile(0.99); p99 != 0.4 {
		t.Fatalf("p99 = %v, want clamp to highest finite bound 0.4", p99)
	}
	if empty := NewRegistry().Histogram("parallellives_test_empty_seconds", "", nil); empty.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

func TestBoundaryValueLandsInInclusiveBucket(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	if got := h.buckets[0].Load(); got != 1 {
		t.Fatalf("boundary observation in bucket 0 = %d, want 1", got)
	}
}

func TestRegistrationConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("parallellives_test_x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge should panic")
		}
	}()
	r.Gauge("parallellives_test_x_total", "")
}

func TestInvalidNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name should panic")
		}
	}()
	NewRegistry().Counter("bad name!", "")
}

// TestRegistryHammer is the concurrency acceptance check: 64 goroutines
// hammer labeled counters, a gauge and a histogram while a reader
// gathers snapshots. Run under -race via make verify.
func TestRegistryHammer(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("parallellives_test_hammer_total", "", "worker")
	gv := r.GaugeVec("parallellives_test_hammer_depth", "", "worker")
	hv := r.HistogramVec("parallellives_test_hammer_seconds", "", []float64{0.001, 0.01, 0.1}, "worker")

	const goroutines = 64
	const perGoroutine = 1000
	labels := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lbl := labels[g%len(labels)]
			c := cv.With(lbl)
			h := hv.With(lbl)
			for i := 0; i < perGoroutine; i++ {
				c.Inc()
				gv.With(lbl).Set(float64(i))
				h.Observe(float64(i%100) / 1000)
				if i%100 == 0 {
					r.Gather() // concurrent snapshotting must be safe
				}
			}
		}(g)
	}
	wg.Wait()

	if sum, _ := r.Sum("parallellives_test_hammer_total"); sum != goroutines*perGoroutine {
		t.Fatalf("hammer counter sum = %v, want %d", sum, goroutines*perGoroutine)
	}
	var count int64
	for _, f := range r.Gather() {
		if f.Name == "parallellives_test_hammer_seconds" {
			for _, s := range f.Series {
				count += s.Count
			}
		}
	}
	if count != goroutines*perGoroutine {
		t.Fatalf("hammer histogram count = %d, want %d", count, goroutines*perGoroutine)
	}
}

func TestGatherDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Insertion order deliberately scrambled vs name order.
		r.CounterVec("parallellives_test_z_total", "z", "k").With("v2").Add(2)
		r.CounterVec("parallellives_test_z_total", "z", "k").With("v1").Add(1)
		r.Gauge("parallellives_test_a_ratio", "a").Set(0.5)
		return r
	}
	var outs [2]string
	for i := range outs {
		var b strings.Builder
		if err := WritePrometheus(&b, build()); err != nil {
			t.Fatal(err)
		}
		outs[i] = b.String()
	}
	if outs[0] != outs[1] {
		t.Fatalf("non-deterministic exposition:\n%s\nvs\n%s", outs[0], outs[1])
	}
	if !strings.Contains(outs[0], `parallellives_test_z_total{k="v1"} 1`) {
		t.Fatalf("missing series in exposition:\n%s", outs[0])
	}
	// Families must appear in name order.
	if strings.Index(outs[0], "parallellives_test_a_ratio") > strings.Index(outs[0], "parallellives_test_z_total") {
		t.Fatalf("families not sorted by name:\n%s", outs[0])
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if diff := got[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("ExpBuckets[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestObserveDuration(t *testing.T) {
	h := newHistogram([]float64{0.5, 1.5})
	h.ObserveDuration(time.Second)
	if got := h.buckets[1].Load(); got != 1 {
		t.Fatalf("1s landed in bucket %v, want index 1", got)
	}
}
