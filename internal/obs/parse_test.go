package obs

import (
	"bytes"
	"math"
	"testing"
)

// TestParseExpositionRoundTrip writes a registry with WritePrometheus
// and requires the parser to recover every series exactly — the two
// halves of the text format must stay inverse.
func TestParseExpositionRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("parallellives_test_events_total", "Events.").Add(7)
	reg.CounterVec("parallellives_test_by_kind_total", "By kind.", "kind").With("a\\b\"c\nd").Add(3)
	reg.Gauge("parallellives_test_level", "Level.").Set(-2.5)
	h := reg.Histogram("parallellives_test_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("parse own exposition: %v", err)
	}

	if v, ok := samples.Value("parallellives_test_events_total", nil); !ok || v != 7 {
		t.Fatalf("events_total = %v, %v", v, ok)
	}
	if v, ok := samples.Value("parallellives_test_by_kind_total", map[string]string{"kind": "a\\b\"c\nd"}); !ok || v != 3 {
		t.Fatalf("escaped label value = %v, %v", v, ok)
	}
	if v, ok := samples.Value("parallellives_test_level", nil); !ok || v != -2.5 {
		t.Fatalf("gauge = %v, %v", v, ok)
	}
	if v, ok := samples.Value("parallellives_test_latency_seconds_count", nil); !ok || v != 3 {
		t.Fatalf("histogram count = %v, %v", v, ok)
	}
	if v, ok := samples.Value("parallellives_test_latency_seconds_bucket", map[string]string{"le": "+Inf"}); !ok || v != 3 {
		t.Fatalf("+Inf bucket = %v, %v", v, ok)
	}
}

// TestParsedQuantileAgrees pins the satellite contract: a quantile
// interpolated from scraped exposition text equals the one computed
// in-process by Histogram.Quantile over the same state.
func TestParsedQuantileAgrees(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("parallellives_test_latency_seconds", "Latency.", ExpBuckets(0.000001, 10, 8))
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i%37) * 0.0001)
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		want := h.Quantile(q)
		got := samples.Quantile("parallellives_test_latency_seconds", q, nil)
		if got != want {
			t.Fatalf("q=%v: parsed %v != in-process %v", q, got, want)
		}
	}
}

func TestParseExpositionErrors(t *testing.T) {
	bad := []string{
		"no_value",
		"name{unterminated=\"x\" 1",
		"name{le=\"0.1} 1",
		"name{=\"v\"} 1",
		"1name 2",
		"name notanumber",
	}
	for _, line := range bad {
		if _, err := ParseExposition([]byte(line)); err == nil {
			t.Errorf("ParseExposition(%q): want error", line)
		}
	}
	// Timestamps are tolerated; comments and blanks skipped.
	doc := "# HELP x y\n\nparallellives_ok_total 4 1712000000\n"
	samples, err := ParseExposition([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := samples.Value("parallellives_ok_total", nil); !ok || v != 4 {
		t.Fatalf("timestamped sample = %v, %v", v, ok)
	}
}

func TestQuantileFromBucketsEdges(t *testing.T) {
	if v := QuantileFromBuckets(nil, nil, 0.5); v != 0 {
		t.Fatalf("empty = %v", v)
	}
	if v := QuantileFromBuckets([]float64{1, 2}, []int64{0, 0, 0}, 0.5); v != 0 {
		t.Fatalf("no observations = %v", v)
	}
	// Everything in +Inf clamps to the top finite bound.
	if v := QuantileFromBuckets([]float64{1, 2}, []int64{0, 0, 5}, 0.5); v != 2 {
		t.Fatalf("+Inf clamp = %v", v)
	}
	if v := QuantileFromBuckets([]float64{1}, []int64{4, 0}, 0.5); math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("interpolation = %v", v)
	}
}
