package obs

import "runtime"

// Runtime gauge names — the Go memory/scheduler state of one process,
// sampled at scrape time (and at pipeline stage boundaries) so every
// process in the fleet reports the same families. These are the
// evidence trail for allocation-bound performance work: heap growth and
// GC cadence show up next to the stage and request metrics they explain.
const (
	MetricRuntimeGoroutines      = "parallellives_runtime_goroutines"
	MetricRuntimeHeapAllocBytes  = "parallellives_runtime_heap_alloc_bytes"
	MetricRuntimeHeapObjects     = "parallellives_runtime_heap_objects"
	MetricRuntimeTotalAllocBytes = "parallellives_runtime_total_alloc_bytes"
	MetricRuntimeSysBytes        = "parallellives_runtime_sys_bytes"
	MetricRuntimeNextGCBytes     = "parallellives_runtime_next_gc_bytes"
	MetricRuntimeGCCycles        = "parallellives_runtime_gc_cycles"
	MetricRuntimeGCPauseSeconds  = "parallellives_runtime_gc_pause_seconds"
)

// RuntimeStats holds resolved handles for the runtime gauges of one
// registry. Collect is pull-driven: call it just before rendering
// /metrics (or at a stage boundary) rather than on a timer, so idle
// processes pay nothing.
type RuntimeStats struct {
	goroutines *Gauge
	heapAlloc  *Gauge
	heapObjs   *Gauge
	totalAlloc *Gauge
	sys        *Gauge
	nextGC     *Gauge
	gcCycles   *Gauge
	gcPause    *Gauge
}

// RegisterRuntime registers the runtime gauges on reg and returns the
// collector. A nil registry returns a nil collector whose Collect
// no-ops, matching the package's nil-safe instrumentation idiom.
func RegisterRuntime(reg *Registry) *RuntimeStats {
	if reg == nil {
		return nil
	}
	return &RuntimeStats{
		goroutines: reg.Gauge(MetricRuntimeGoroutines, "Live goroutines."),
		heapAlloc:  reg.Gauge(MetricRuntimeHeapAllocBytes, "Bytes of allocated heap objects."),
		heapObjs:   reg.Gauge(MetricRuntimeHeapObjects, "Number of allocated heap objects."),
		totalAlloc: reg.Gauge(MetricRuntimeTotalAllocBytes, "Cumulative bytes allocated for heap objects."),
		sys:        reg.Gauge(MetricRuntimeSysBytes, "Total bytes obtained from the OS."),
		nextGC:     reg.Gauge(MetricRuntimeNextGCBytes, "Heap size target of the next GC cycle."),
		gcCycles:   reg.Gauge(MetricRuntimeGCCycles, "Completed GC cycles."),
		gcPause:    reg.Gauge(MetricRuntimeGCPauseSeconds, "Cumulative GC stop-the-world pause time."),
	}
}

// Collect samples the runtime into the gauges. Nil-safe.
func (r *RuntimeStats) Collect() {
	if r == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.goroutines.Set(float64(runtime.NumGoroutine()))
	r.heapAlloc.Set(float64(ms.HeapAlloc))
	r.heapObjs.Set(float64(ms.HeapObjects))
	r.totalAlloc.Set(float64(ms.TotalAlloc))
	r.sys.Set(float64(ms.Sys))
	r.nextGC.Set(float64(ms.NextGC))
	r.gcCycles.Set(float64(ms.NumGC))
	r.gcPause.Set(float64(ms.PauseTotalNs) / 1e9)
}
