package obs

import (
	"context"
	"fmt"
	"math/rand/v2"
	"strings"
)

// Trace-context wire format (DESIGN.md §13). Requests opt into
// cross-process tracing by sending a W3C-style traceparent header:
//
//	traceparent: 00-<32 hex trace-id>-<16 hex span-id>-01
//
// A process that serves a traced request returns its span tree as JSON
// in the X-Parallellives-Span response header, so the caller can stitch
// it under its own client span with Span.AttachRemote.
const (
	// TraceparentHeader is the inbound trace-context request header.
	TraceparentHeader = "traceparent"
	// SpanHeader is the response header carrying a SpanSummary JSON
	// document back to a traced caller.
	SpanHeader = "X-Parallellives-Span"
)

// IDSource yields one fresh 16-lower-hex-character identifier per call.
// Span IDs are one draw; trace IDs are two draws concatenated. Tests
// inject sequential sources for deterministic trees.
type IDSource func() string

// randomID is the process-wide default IDSource.
func randomID() string {
	v := rand.Uint64()
	for v == 0 { // the all-zero ID is invalid in the wire format
		v = rand.Uint64()
	}
	return fmt.Sprintf("%016x", v)
}

// SpanContext is the wire identity of one span: the trace it belongs to
// and its own ID. The zero value is invalid.
type SpanContext struct {
	TraceID string // 32 lowercase hex chars, not all zero
	SpanID  string // 16 lowercase hex chars, not all zero
}

// Valid reports whether both IDs are well-formed and non-zero.
func (sc SpanContext) Valid() bool {
	return isHexID(sc.TraceID, 32) && isHexID(sc.SpanID, 16)
}

// Traceparent renders the header value for this context (version 00,
// sampled flag set). Call only on a valid context.
func (sc SpanContext) Traceparent() string {
	return "00-" + sc.TraceID + "-" + sc.SpanID + "-01"
}

// ParseTraceparent parses a traceparent header value. Only version 00
// with well-formed, non-zero IDs is accepted; anything else reports
// false and the request is served untraced — a malformed header must
// never change the response.
func ParseTraceparent(v string) (SpanContext, bool) {
	v = strings.TrimSpace(v)
	if v == "" {
		// The common case — no trace context on the request — must not
		// allocate: this runs on every request the server answers.
		return SpanContext{}, false
	}
	parts := strings.Split(v, "-")
	if len(parts) != 4 || parts[0] != "00" || !isHexID(parts[3], 2) {
		return SpanContext{}, false
	}
	sc := SpanContext{TraceID: parts[1], SpanID: parts[2]}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// isHexID reports whether s is exactly n lowercase hex chars and (for
// ID fields) not all zero. The 2-char flags field may be all zero.
func isHexID(s string, n int) bool {
	if len(s) != n {
		return false
	}
	zero := true
	for i := 0; i < n; i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			zero = false
		}
	}
	return !zero || n == 2
}

type remoteParentKey struct{}

// WithRemoteParent marks the context as continuing an incoming trace:
// the next root span started on it joins sc's trace as a child of
// sc.SpanID (given an ID-carrying tracer). The mark also tells outbound
// clients (the router's scatter-gather fetch) to propagate trace
// context upstream — untraced requests never pay for propagation.
func WithRemoteParent(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, remoteParentKey{}, sc)
}

// RemoteParentFrom returns the incoming trace context, if any.
func RemoteParentFrom(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(remoteParentKey{}).(SpanContext)
	return sc, ok
}
