package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Exemplar is one captured request: its outcome plus the full span tree
// that explains where the time went.
type Exemplar struct {
	CapturedUnixNs int64       `json:"capturedUnixNs"`
	Endpoint       string      `json:"endpoint"` // bounded endpoint label, not the raw path
	Path           string      `json:"path"`     // raw path+query, for operators reading one entry
	Status         int         `json:"status"`
	DurationNs     int64       `json:"durationNs"`
	TraceID        string      `json:"traceId,omitempty"`
	Trace          SpanSummary `json:"trace"`
}

// ExemplarRing keeps the most interesting recent requests: the
// slowest-N ever offered (a min-floor set) and the last-N that failed
// server-side (status >= 500, a circular buffer). The hot path is
// lock-cheap by design: once the slow side is full, a request that is
// neither slow enough nor an error is rejected with a single atomic
// load — the mutex is only taken for requests that will actually be
// kept, which by construction become rarer as the floor rises.
//
// A nil ring no-ops everywhere, so capture can be disabled without
// conditionals at call sites.
type ExemplarRing struct {
	cap   int
	floor atomic.Int64 // admission threshold for the slow side, ns
	seen  atomic.Int64

	mu      sync.Mutex
	slow    []Exemplar // sorted ascending by DurationNs; slow[0] is the next evictee
	errs    []Exemplar // circular once full
	errNext int
}

// NewExemplarRing returns a ring keeping up to capacity exemplars per
// side. capacity <= 0 returns nil (capture disabled).
func NewExemplarRing(capacity int) *ExemplarRing {
	if capacity <= 0 {
		return nil
	}
	return &ExemplarRing{cap: capacity}
}

// Offer submits one finished request. Nil-safe.
func (r *ExemplarRing) Offer(e Exemplar) { r.offer(e, nil) }

// Arming reports whether the slow side is still filling: until the ring
// has seen cap requests, every offer is admitted, so callers should
// capture full detail (span trees) up front. Once the floor is set,
// steady-state traffic is rejected with one atomic load and callers can
// skip capture work for requests they expect to be fast — late outliers
// are still admitted, just with outcome-only detail. Nil-safe.
func (r *ExemplarRing) Arming() bool { return r != nil && r.floor.Load() == 0 }

// OfferLazy submits one finished request but defers building the span
// summary to fill, which only runs when the request survives the
// admission fast path — so the per-request cost of capture on a hot,
// healthy endpoint stays a counter bump and one atomic load.
func (r *ExemplarRing) OfferLazy(e Exemplar, fill func() SpanSummary) { r.offer(e, fill) }

func (r *ExemplarRing) offer(e Exemplar, fill func() SpanSummary) {
	if r == nil {
		return
	}
	r.seen.Add(1)
	isErr := e.Status >= 500
	if !isErr && e.DurationNs <= r.floor.Load() {
		return // full slow side and too fast to qualify: one atomic load
	}
	if fill != nil {
		e.Trace = fill() // outside the lock; the floor recheck below still guards
		if e.TraceID == "" {
			e.TraceID = e.Trace.TraceID
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if isErr {
		if len(r.errs) < r.cap {
			r.errs = append(r.errs, e)
			r.errNext = len(r.errs) % r.cap
		} else {
			r.errs[r.errNext] = e
			r.errNext = (r.errNext + 1) % r.cap
		}
	}
	// Slow side. Re-check under the lock: the floor may have risen since
	// the fast-path load.
	if len(r.slow) == r.cap && e.DurationNs <= r.slow[0].DurationNs {
		return
	}
	idx := sort.Search(len(r.slow), func(i int) bool {
		return r.slow[i].DurationNs >= e.DurationNs
	})
	if len(r.slow) < r.cap {
		r.slow = append(r.slow, Exemplar{})
		copy(r.slow[idx+1:], r.slow[idx:])
		r.slow[idx] = e
	} else {
		// Evict the minimum (index 0) and insert; idx >= 1 here because
		// e outlasts slow[0].
		copy(r.slow, r.slow[1:idx])
		r.slow[idx-1] = e
	}
	if len(r.slow) == r.cap {
		r.floor.Store(r.slow[0].DurationNs)
	}
}

// ExemplarSnapshot is the JSON form of the ring's current contents.
type ExemplarSnapshot struct {
	Capacity int        `json:"capacity"`
	Seen     int64      `json:"seen"`    // requests offered since start
	Slowest  []Exemplar `json:"slowest"` // descending by duration
	Errors   []Exemplar `json:"errors"`  // newest first
}

// Snapshot freezes the ring. Nil-safe (returns the zero snapshot).
func (r *ExemplarRing) Snapshot() ExemplarSnapshot {
	if r == nil {
		return ExemplarSnapshot{}
	}
	snap := ExemplarSnapshot{Capacity: r.cap, Seen: r.seen.Load()}
	r.mu.Lock()
	defer r.mu.Unlock()
	snap.Slowest = make([]Exemplar, 0, len(r.slow))
	for i := len(r.slow) - 1; i >= 0; i-- {
		snap.Slowest = append(snap.Slowest, r.slow[i])
	}
	snap.Errors = make([]Exemplar, 0, len(r.errs))
	for i := 0; i < len(r.errs); i++ {
		// errNext-1 is the newest entry; walk backwards through the ring.
		j := (r.errNext - 1 - i + 2*len(r.errs)) % len(r.errs)
		snap.Errors = append(snap.Errors, r.errs[j])
	}
	return snap
}
