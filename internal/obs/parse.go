package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a series name, its label set
// and value. This is the read half of the Prometheus text format —
// WritePrometheus is the write half — used by the router's federation
// scraper, the asnstat dashboard and tests that assert on exposition
// output.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Samples is a parsed exposition document with lookup helpers.
type Samples []Sample

// ParseExposition parses a Prometheus text-format (0.0.4) document.
// Comment and blank lines are skipped; a malformed series line is an
// error. Histogram series parse as their underlying _bucket/_count/_sum
// samples (use Quantile to interpolate).
func ParseExposition(data []byte) (Samples, error) {
	var out Samples
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: exposition line %d: %w", ln+1, err)
		}
		out = append(out, s)
	}
	return out, nil
}

func parseSampleLine(line string) (Sample, error) {
	s := Sample{}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		s.Name = line[:i]
		end := strings.LastIndexByte(line, '}')
		if end < i {
			return s, fmt.Errorf("unterminated label block")
		}
		labels, err := parseLabels(line[i+1 : end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = strings.TrimSpace(line[end+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return s, fmt.Errorf("want 'name value', got %q", line)
		}
		s.Name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	if s.Name == "" || !nameRe.MatchString(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	// rest is "value" or "value timestamp"; we never emit timestamps but
	// tolerate them.
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return s, fmt.Errorf("missing value")
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	s.Value = v
	return s, nil
}

// parseLabels scans `k1="v1",k2="v2"` honoring the \\, \" and \n
// escapes WritePrometheus emits.
func parseLabels(in string) (map[string]string, error) {
	labels := make(map[string]string)
	i := 0
	for i < len(in) {
		eq := strings.IndexByte(in[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without '=' in %q", in[i:])
		}
		key := strings.TrimSpace(in[i : i+eq])
		if !labelRe.MatchString(key) {
			return nil, fmt.Errorf("invalid label name %q", key)
		}
		i += eq + 1
		if i >= len(in) || in[i] != '"' {
			return nil, fmt.Errorf("label %s: unquoted value", key)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(in) {
				return nil, fmt.Errorf("label %s: unterminated value", key)
			}
			c := in[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' && i+1 < len(in) {
				switch in[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(c)
					b.WriteByte(in[i+1])
				}
				i += 2
				continue
			}
			b.WriteByte(c)
			i++
		}
		labels[key] = b.String()
		if i < len(in) && in[i] == ',' {
			i++
		}
	}
	return labels, nil
}

// matches reports whether the sample's labels agree with every
// constraint in match (a subset match: extra sample labels are fine).
func (s Sample) matches(match map[string]string) bool {
	for k, v := range match {
		if s.Labels[k] != v {
			return false
		}
	}
	return true
}

// Value returns the first sample with the given name whose labels
// satisfy match. The bool reports whether one exists.
func (s Samples) Value(name string, match map[string]string) (float64, bool) {
	for _, smp := range s {
		if smp.Name == name && smp.matches(match) {
			return smp.Value, true
		}
	}
	return 0, false
}

// Sum adds every sample with the given name whose labels satisfy match.
func (s Samples) Sum(name string, match map[string]string) float64 {
	var total float64
	for _, smp := range s {
		if smp.Name == name && smp.matches(match) {
			total += smp.Value
		}
	}
	return total
}

// Quantile estimates the q-quantile of the histogram family name from
// its _bucket samples satisfying match, merging buckets across all
// matching series (the "le" label is excluded from matching). It uses
// the same interpolation as Histogram.Quantile — QuantileFromBuckets —
// so a value computed from scraped text agrees exactly with one
// computed in-process from the same state. Returns 0 when no buckets
// match.
func (s Samples) Quantile(name string, q float64, match map[string]string) float64 {
	cum := make(map[float64]float64)
	for _, smp := range s {
		if smp.Name != name+"_bucket" || !smp.matches(match) {
			continue
		}
		le := smp.Labels["le"]
		var bound float64
		switch le {
		case "+Inf":
			bound = math.Inf(1)
		default:
			v, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			bound = v
		}
		cum[bound] += smp.Value
	}
	if len(cum) == 0 {
		return 0
	}
	all := make([]float64, 0, len(cum))
	for b := range cum {
		all = append(all, b)
	}
	sort.Float64s(all)
	bounds := all
	if math.IsInf(all[len(all)-1], 1) {
		bounds = all[:len(all)-1]
	}
	buckets := make([]int64, len(all))
	var prev float64
	for i, b := range all {
		buckets[i] = int64(cum[b] - prev)
		prev = cum[b]
	}
	if len(buckets) == len(bounds) {
		buckets = append(buckets, 0) // no +Inf series scraped; treat as empty
	}
	return QuantileFromBuckets(bounds, buckets, q)
}
