package dates

import (
	"testing"
	"testing/quick"
	"time"
)

func TestKnownDates(t *testing.T) {
	cases := []struct {
		y, m, d int
		mjd     Day
	}{
		{1858, 11, 17, 0},
		{1858, 11, 18, 1},
		{1970, 1, 1, 40587},
		{2000, 1, 1, 51544},
		{2003, 10, 9, 52921},
		{2021, 3, 1, 59274},
	}
	for _, c := range cases {
		if got := FromYMD(c.y, c.m, c.d); got != c.mjd {
			t.Errorf("FromYMD(%d,%d,%d) = %d, want %d", c.y, c.m, c.d, got, c.mjd)
		}
		y, m, d := c.mjd.YMD()
		if y != c.y || m != c.m || d != c.d {
			t.Errorf("YMD(%d) = %d-%d-%d, want %d-%d-%d", c.mjd, y, m, d, c.y, c.m, c.d)
		}
	}
}

func TestPaperTimeframeSpan(t *testing.T) {
	start := MustParse("2003-10-09")
	end := MustParse("2021-03-01")
	if got := end.Sub(start); got != 6353 {
		t.Errorf("paper time frame spans %d days, want 6353", got)
	}
}

func TestRoundTripAgainstTimePackage(t *testing.T) {
	// Walk every day across the paper's range plus margins and compare
	// with the standard library's calendar.
	start := time.Date(1980, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 20000; i += 1 {
		tm := start.AddDate(0, 0, i)
		d := FromYMD(tm.Year(), int(tm.Month()), tm.Day())
		y, m, dd := d.YMD()
		if y != tm.Year() || m != int(tm.Month()) || dd != tm.Day() {
			t.Fatalf("mismatch at %v: got %d-%d-%d", tm, y, m, dd)
		}
		if d.Unix() != tm.Unix() {
			t.Fatalf("Unix mismatch at %v: got %d want %d", tm, d.Unix(), tm.Unix())
		}
		if FromUnix(tm.Unix()) != d {
			t.Fatalf("FromUnix mismatch at %v", tm)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(n uint32) bool {
		d := Day(20000 + n%40000) // years ~1913..2022
		y, m, dd := d.YMD()
		return FromYMD(y, m, dd) == d && Valid(y, m, dd)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickUnixRoundTrip(t *testing.T) {
	f := func(n uint32) bool {
		d := Day(30000 + n%40000)
		return FromUnix(d.Unix()) == d && FromUnix(d.Unix()+86399) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParse(t *testing.T) {
	d, err := Parse("2017-09-20")
	if err != nil {
		t.Fatal(err)
	}
	if d.String() != "2017-09-20" {
		t.Errorf("String() = %q", d.String())
	}
	if d.Compact() != "20170920" {
		t.Errorf("Compact() = %q", d.Compact())
	}
	if _, err := Parse("2017-9-20"); err == nil {
		t.Error("expected error for short month")
	}
	if _, err := Parse("2017-13-01"); err == nil {
		t.Error("expected error for month 13")
	}
	if _, err := Parse("2017-02-29"); err == nil {
		t.Error("expected error for Feb 29 in non-leap year")
	}
	if _, err := Parse("2016-02-29"); err != nil {
		t.Error("2016-02-29 is valid (leap year)")
	}
}

func TestParseCompact(t *testing.T) {
	d, err := ParseCompact("19930901")
	if err != nil {
		t.Fatal(err)
	}
	if d.String() != "1993-09-01" {
		t.Errorf("got %s", d)
	}
	d, err = ParseCompact("00000000")
	if err != nil || d != None {
		t.Errorf("placeholder should parse to None, got %v, %v", d, err)
	}
	if _, err := ParseCompact("2021031"); err == nil {
		t.Error("expected error for 7-digit date")
	}
	if _, err := ParseCompact("20210231"); err == nil {
		t.Error("expected error for Feb 31")
	}
}

func TestNoneString(t *testing.T) {
	if None.String() != "-" {
		t.Errorf("None.String() = %q", None.String())
	}
	if None.Compact() != "00000000" {
		t.Errorf("None.Compact() = %q", None.Compact())
	}
}

func TestQuarter(t *testing.T) {
	d := MustParse("2014-05-10")
	if q := d.Quarter(); q != 2014*4+1 {
		t.Errorf("Quarter = %d", q)
	}
	if QuarterStart(2014*4+1) != MustParse("2014-04-01") {
		t.Errorf("QuarterStart wrong: %s", QuarterStart(2014*4+1))
	}
	// Quarter boundaries.
	if MustParse("2014-03-31").Quarter() == MustParse("2014-04-01").Quarter() {
		t.Error("Q1/Q2 boundary not detected")
	}
	if MustParse("2013-12-31").Quarter()+1 != MustParse("2014-01-01").Quarter() {
		t.Error("year boundary quarters not consecutive")
	}
}

func TestMinMax(t *testing.T) {
	a, b := MustParse("2010-01-01"), MustParse("2011-01-01")
	if Min(a, b) != a || Min(b, a) != a || Max(a, b) != b || Max(b, a) != b {
		t.Error("Min/Max broken")
	}
}

func TestAddSub(t *testing.T) {
	a := MustParse("2020-02-28")
	if a.AddDays(1).String() != "2020-02-29" {
		t.Error("leap day add failed")
	}
	if a.AddDays(2).String() != "2020-03-01" {
		t.Error("leap rollover failed")
	}
	if a.AddDays(2).Sub(a) != 2 {
		t.Error("Sub failed")
	}
	if !a.Before(a.AddDays(1)) || !a.AddDays(1).After(a) {
		t.Error("Before/After failed")
	}
}
