// Package dates provides day-granularity civil-date arithmetic.
//
// All datasets in this project — RIR delegation files and daily BGP
// activity — have day resolution, so the package represents a date as a
// single integer Day (days since the modified Julian epoch, 1858-11-17).
// Day values are cheap to compare, subtract, and use as map keys or slice
// indexes, which matters when sweeping 17 years of daily records.
//
// The civil-calendar conversion uses Howard Hinnant's algorithms
// (days_from_civil / civil_from_days), valid for all proleptic Gregorian
// dates handled here (1900–2100 and far beyond).
package dates

import (
	"errors"
	"fmt"
)

// Day counts days since the modified Julian epoch 1858-11-17 (MJD 0).
// The zero value is therefore a valid date far before any dataset used by
// this project; callers that need a "no date" sentinel should use None.
type Day int32

// None is a sentinel meaning "no date". It is far before any valid record
// date in the datasets (it corresponds to a date deep in the past).
const None Day = -1 << 30

// daysFromCivilToMJD is the value of days_from_civil(1858, 11, 17), the
// day offset of the MJD epoch from the 0000-03-01 era used by the
// conversion algorithm.
const mjdEpochFromEra = 678881

// FromYMD converts a civil date to a Day. Months are 1–12 and days 1–31;
// out-of-range inputs follow the proleptic Gregorian rollover rules of the
// underlying algorithm (use Valid to reject them beforehand).
func FromYMD(year, month, day int) Day {
	y := year
	if month <= 2 {
		y--
	}
	var era int
	if y >= 0 {
		era = y / 400
	} else {
		era = (y - 399) / 400
	}
	yoe := y - era*400 // [0, 399]
	var mp int
	if month > 2 {
		mp = month - 3
	} else {
		mp = month + 9
	}
	doy := (153*mp+2)/5 + day - 1          // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy // [0, 146096]
	return Day(era*146097 + doe - mjdEpochFromEra)
}

// YMD converts a Day back to its civil year, month and day.
func (d Day) YMD() (year, month, day int) {
	z := int(d) + mjdEpochFromEra
	var era int
	if z >= 0 {
		era = z / 146097
	} else {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097                                  // [0, 146096]
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365 // [0, 399]
	y := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100) // [0, 365]
	mp := (5*doy + 2) / 153                  // [0, 11]
	day = doy - (153*mp+2)/5 + 1             // [1, 31]
	if mp < 10 {
		month = mp + 3
	} else {
		month = mp - 9
	}
	if month <= 2 {
		y++
	}
	return y, month, day
}

// Year returns the civil year of d.
func (d Day) Year() int {
	y, _, _ := d.YMD()
	return y
}

// Quarter returns an absolute quarter index (year*4 + quarter-within-year),
// suitable for 3-month binning across year boundaries.
func (d Day) Quarter() int {
	y, m, _ := d.YMD()
	return y*4 + (m-1)/3
}

// QuarterStart returns the first day of the absolute quarter index q.
func QuarterStart(q int) Day {
	return FromYMD(q/4, (q%4)*3+1, 1)
}

// AddDays returns d shifted by n days.
func (d Day) AddDays(n int) Day { return d + Day(n) }

// Sub returns the number of days from other to d (d - other).
func (d Day) Sub(other Day) int { return int(d) - int(other) }

// Before reports whether d is strictly before other.
func (d Day) Before(other Day) bool { return d < other }

// After reports whether d is strictly after other.
func (d Day) After(other Day) bool { return d > other }

// String renders the date as YYYY-MM-DD, or "-" for None.
func (d Day) String() string {
	if d == None {
		return "-"
	}
	y, m, dd := d.YMD()
	return fmt.Sprintf("%04d-%02d-%02d", y, m, dd)
}

// Compact renders the date as YYYYMMDD (the delegation-file date format),
// or the conventional placeholder "00000000" for None.
func (d Day) Compact() string {
	var buf [8]byte
	return string(d.AppendCompact(buf[:0]))
}

// AppendCompact appends the YYYYMMDD form of d to dst and returns the
// extended slice — the allocation-free form of Compact for render loops
// that serialize one line per record.
func (d Day) AppendCompact(dst []byte) []byte {
	if d == None {
		return append(dst, "00000000"...)
	}
	y, m, dd := d.YMD()
	return append(dst,
		byte('0'+y/1000%10), byte('0'+y/100%10), byte('0'+y/10%10), byte('0'+y%10),
		byte('0'+m/10), byte('0'+m%10),
		byte('0'+dd/10), byte('0'+dd%10))
}

var errBadDate = errors.New("dates: malformed date")

// Valid reports whether (year, month, day) is a real calendar date.
func Valid(year, month, day int) bool {
	if month < 1 || month > 12 || day < 1 {
		return false
	}
	return day <= DaysInMonth(year, month)
}

// DaysInMonth returns the number of days in the given month.
func DaysInMonth(year, month int) int {
	switch month {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	case 2:
		if IsLeap(year) {
			return 29
		}
		return 28
	}
	return 0
}

// IsLeap reports whether year is a Gregorian leap year.
func IsLeap(year int) bool {
	return year%4 == 0 && (year%100 != 0 || year%400 == 0)
}

func digits[T string | []byte](s T) (int, bool) {
	n := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// Parse parses YYYY-MM-DD.
func Parse(s string) (Day, error) {
	if len(s) != 10 || s[4] != '-' || s[7] != '-' {
		return None, fmt.Errorf("%w: %q", errBadDate, s)
	}
	y, ok1 := digits(s[:4])
	m, ok2 := digits(s[5:7])
	d, ok3 := digits(s[8:])
	if !ok1 || !ok2 || !ok3 || !Valid(y, m, d) {
		return None, fmt.Errorf("%w: %q", errBadDate, s)
	}
	return FromYMD(y, m, d), nil
}

// ParseCompact parses YYYYMMDD, the date format used inside RIR delegation
// files. The all-zero placeholder "00000000" parses to None with no error,
// matching how the files use it for resources with unknown dates.
func ParseCompact(s string) (Day, error) { return parseCompact(s) }

// ParseCompactBytes is ParseCompact over a byte slice, allocating only on
// the error path.
func ParseCompactBytes(s []byte) (Day, error) { return parseCompact(s) }

func parseCompact[T string | []byte](s T) (Day, error) {
	if len(s) != 8 {
		return None, fmt.Errorf("%w: %q", errBadDate, s)
	}
	if string(s) == "00000000" {
		return None, nil
	}
	y, ok1 := digits(s[:4])
	m, ok2 := digits(s[4:6])
	d, ok3 := digits(s[6:])
	if !ok1 || !ok2 || !ok3 || !Valid(y, m, d) {
		return None, fmt.Errorf("%w: %q", errBadDate, s)
	}
	return FromYMD(y, m, d), nil
}

// MustParse is Parse that panics on error; for tests and fixed constants.
func MustParse(s string) Day {
	d, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return d
}

// Unix returns the Unix timestamp (seconds) of midnight UTC on d.
// MJD 40587 is 1970-01-01.
func (d Day) Unix() int64 { return int64(d-40587) * 86400 }

// FromUnix converts a Unix timestamp to the Day containing it (UTC).
func FromUnix(sec int64) Day {
	days := sec / 86400
	if sec < 0 && sec%86400 != 0 {
		days--
	}
	return Day(days + 40587)
}

// Min returns the earlier of a and b.
func Min(a, b Day) Day {
	if a < b {
		return a
	}
	return b
}

// Max returns the later of a and b.
func Max(a, b Day) Day {
	if a > b {
		return a
	}
	return b
}
