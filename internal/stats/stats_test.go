package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCDFAt(t *testing.T) {
	c := NewCDFInts([]int{1, 2, 2, 3, 10})
	cases := []struct {
		x    float64
		want float64
	}{
		{0, 0}, {1, 0.2}, {1.5, 0.2}, {2, 0.6}, {3, 0.8}, {9.99, 0.8}, {10, 1}, {100, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); math.Abs(got-cse.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
}

func TestEmptyCDF(t *testing.T) {
	c := NewCDF(nil)
	if c.At(5) != 0 || c.N() != 0 {
		t.Error("empty CDF At should be 0")
	}
	if !math.IsNaN(c.Quantile(0.5)) || !math.IsNaN(c.Min()) || !math.IsNaN(c.Max()) {
		t.Error("empty CDF quantiles should be NaN")
	}
	if c.Points(10) != nil {
		t.Error("empty CDF Points should be nil")
	}
}

func TestQuantile(t *testing.T) {
	c := NewCDFInts([]int{10, 20, 30, 40})
	if c.Quantile(0) != 10 || c.Quantile(1) != 40 {
		t.Error("extremes wrong")
	}
	if c.Quantile(0.25) != 10 || c.Quantile(0.5) != 20 || c.Quantile(0.75) != 30 {
		t.Errorf("nearest-rank quantiles wrong: %v %v %v",
			c.Quantile(0.25), c.Quantile(0.5), c.Quantile(0.75))
	}
	if c.Median() != 20 {
		t.Error("median wrong")
	}
}

func TestSummary(t *testing.T) {
	s := SummaryInts([]int{5, 1, 3, 2, 4})
	if s.Min != 1 || s.Max != 5 || s.Median != 3 || s.N != 5 {
		t.Errorf("Summary = %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Errorf("quartiles = %v %v", s.Q1, s.Q3)
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean of empty should be NaN")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0, 0.5, 1, 1.5, 9.9, 10, 11, -5}, 0, 10, 10)
	if len(h) != 10 {
		t.Fatalf("bins = %d", len(h))
	}
	total := 0
	for _, n := range h {
		total += n
	}
	if total != 8 {
		t.Errorf("histogram loses samples: total = %d", total)
	}
	if h[0] != 3 { // 0, 0.5, -5 (clamped)
		t.Errorf("bin 0 = %d, want 3", h[0])
	}
	if h[9] != 3 { // 9.9, 10 (clamped), 11 (clamped)
		t.Errorf("bin 9 = %d, want 3", h[9])
	}
}

func TestPointsMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = r.NormFloat64() * 10
	}
	pts := NewCDF(samples).Points(50)
	if len(pts) != 50 {
		t.Fatalf("got %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y || pts[i].X <= pts[i-1].X {
			t.Fatalf("CDF points not monotone at %d", i)
		}
	}
	if pts[len(pts)-1].Y != 1 {
		t.Error("last point should be 1")
	}
}

func TestQuickQuantileWithinRangeAndMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = r.Float64() * 1000
		}
		c := NewCDF(samples)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := c.Quantile(q)
			if v < c.Min() || v > c.Max() || v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickCDFAtMatchesDirectCount(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(60)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = float64(r.Intn(20))
		}
		c := NewCDF(samples)
		x := float64(r.Intn(25)) - 2
		count := 0
		for _, v := range samples {
			if v <= x {
				count++
			}
		}
		return math.Abs(c.At(x)-float64(count)/float64(n)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSortedInputUnmodified(t *testing.T) {
	in := []float64{3, 1, 2}
	NewCDF(in)
	if sort.Float64sAreSorted(in) {
		t.Error("NewCDF must not sort the caller's slice")
	}
}
