// Package stats provides the small set of descriptive statistics the
// paper's figures are built from: empirical CDFs, quantiles, histograms
// and boxplot five-number summaries. It deliberately implements only what
// the report layer needs, with deterministic results for fixed inputs.
package stats

import (
	"math"
	"sort"
)

// CDF is an empirical cumulative distribution function over float64
// samples. It is immutable once built.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from samples (copied and sorted).
func NewCDF(samples []float64) *CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// NewCDFInts builds a CDF from integer samples.
func NewCDFInts(samples []int) *CDF {
	s := make([]float64, len(samples))
	for i, v := range samples {
		s[i] = float64(v)
	}
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x), the fraction of samples at or below x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0 <= q <= 1) using the nearest-rank
// method; q=0 yields the minimum and q=1 the maximum.
func (c *CDF) Quantile(q float64) float64 {
	n := len(c.sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[n-1]
	}
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return c.sorted[rank-1]
}

// Median returns the 0.5 quantile.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Min and Max return the extremes; NaN when empty.
func (c *CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[0]
}

// Max returns the largest sample; NaN when empty.
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[len(c.sorted)-1]
}

// Points samples the CDF at n evenly spaced x positions across
// [Min, Max], returning (x, F(x)) pairs — the series a plotted CDF line
// is made of. n must be >= 2 when the CDF is non-empty.
func (c *CDF) Points(n int) []Point {
	if len(c.sorted) == 0 || n < 2 {
		return nil
	}
	lo, hi := c.Min(), c.Max()
	out := make([]Point, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		out[i] = Point{X: x, Y: c.At(x)}
	}
	return out
}

// Point is one (x, y) sample of a plotted series.
type Point struct{ X, Y float64 }

// Mean returns the arithmetic mean of samples (NaN when empty).
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range samples {
		sum += v
	}
	return sum / float64(len(samples))
}

// FiveNum is the boxplot five-number summary.
type FiveNum struct {
	Min, Q1, Median, Q3, Max float64
	N                        int
}

// Summary computes the five-number summary of samples.
func Summary(samples []float64) FiveNum {
	c := NewCDF(samples)
	return FiveNum{
		Min:    c.Min(),
		Q1:     c.Quantile(0.25),
		Median: c.Median(),
		Q3:     c.Quantile(0.75),
		Max:    c.Max(),
		N:      c.N(),
	}
}

// SummaryInts computes the five-number summary of integer samples.
func SummaryInts(samples []int) FiveNum {
	f := make([]float64, len(samples))
	for i, v := range samples {
		f[i] = float64(v)
	}
	return Summary(f)
}

// Histogram counts samples into fixed-width bins covering [lo, hi); values
// outside the range are clamped into the first/last bin so totals are
// preserved.
func Histogram(samples []float64, lo, hi float64, bins int) []int {
	out := make([]int, bins)
	if bins == 0 || hi <= lo {
		return out
	}
	w := (hi - lo) / float64(bins)
	for _, v := range samples {
		i := int((v - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		out[i]++
	}
	return out
}
