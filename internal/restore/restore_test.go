package restore

import (
	"testing"

	"parallellives/internal/asn"
	"parallellives/internal/dates"
	"parallellives/internal/delegation"
	"parallellives/internal/intervals"
	"parallellives/internal/registry"
)

func d(s string) dates.Day { return dates.MustParse(s) }

// fakeSource replays scripted snapshots.
type fakeSource struct {
	rir   asn.RIR
	snaps []registry.Snapshot
	i     int
}

func (f *fakeSource) Registry() asn.RIR { return f.rir }

func (f *fakeSource) Next() (registry.Snapshot, bool) {
	if f.i >= len(f.snaps) {
		return registry.Snapshot{}, false
	}
	s := f.snaps[f.i]
	f.i++
	return s, true
}

// file builds an extended delegation file holding the given records.
func file(rir asn.RIR, recs ...delegation.Record) *delegation.File {
	return &delegation.File{Registry: rir, Extended: true, ASNs: recs}
}

// rec builds one allocated record.
func rec(rir asn.RIR, a asn.ASN, cc, reg string) delegation.Record {
	return delegation.Record{
		Registry: rir, CC: cc, ASN: a, Count: 1,
		Date: d(reg), Status: delegation.StatusAllocated, OpaqueID: "o-1",
	}
}

func recStatus(rir asn.RIR, a asn.ASN, reg string, st delegation.Status) delegation.Record {
	r := rec(rir, a, "US", reg)
	r.Status = st
	return r
}

// days builds consecutive snapshots starting at start; nil file entries
// model missing days.
func days(rir asn.RIR, start string, files ...*delegation.File) *fakeSource {
	s := &fakeSource{rir: rir}
	day := d(start)
	for i, f := range files {
		s.snaps = append(s.snaps, registry.Snapshot{Day: day.AddDays(i), Extended: f})
	}
	return s
}

func restoreOne(src registry.Source, erx ...registry.ERXEntry) *Result {
	return Restore([]registry.Source{src}, erx)
}

func TestBasicRun(t *testing.T) {
	// ARIN pool starts at 1000 in the simulated IANA table.
	src := days(asn.ARIN, "2010-01-01",
		file(asn.ARIN, rec(asn.ARIN, 1500, "US", "2010-01-01")),
		file(asn.ARIN, rec(asn.ARIN, 1500, "US", "2010-01-01")),
		file(asn.ARIN, rec(asn.ARIN, 1500, "US", "2010-01-01")),
	)
	res := restoreOne(src)
	runs := res.RunsOf(1500)
	if len(runs) != 1 {
		t.Fatalf("runs = %+v", runs)
	}
	r := runs[0]
	if r.Span.Start != d("2010-01-01") || r.Span.End != d("2010-01-03") || !r.OpenAtEnd {
		t.Errorf("run = %+v", r)
	}
	if r.CC != "US" || r.OpaqueID != "o-1" || r.RegDate != d("2010-01-01") {
		t.Errorf("run fields = %+v", r)
	}
}

func TestMissingFileBridged(t *testing.T) {
	src := days(asn.ARIN, "2010-01-01",
		file(asn.ARIN, rec(asn.ARIN, 1500, "US", "2010-01-01")),
		nil, // missing day
		file(asn.ARIN, rec(asn.ARIN, 1500, "US", "2010-01-01")),
	)
	res := restoreOne(src)
	runs := res.RunsOf(1500)
	if len(runs) != 1 || runs[0].Span.End != d("2010-01-03") {
		t.Fatalf("runs = %+v", runs)
	}
	if res.Report.MissingFileDays != 1 || res.Report.GapBridgedASNDays != 1 {
		t.Errorf("report = %+v", res.Report)
	}
}

func TestCorruptFileDaysClassified(t *testing.T) {
	// A retrieved-but-unusable day bridges like a missing day but is
	// classified as corrupt, in both the report and the coverage table.
	src := days(asn.ARIN, "2010-01-01",
		file(asn.ARIN, rec(asn.ARIN, 1500, "US", "2010-01-01")),
		nil, // corrupt retrieval (flag set below)
		nil, // genuinely absent day
		file(asn.ARIN, rec(asn.ARIN, 1500, "US", "2010-01-01")),
	)
	src.snaps[1].ExtendedCorrupt = true
	res := restoreOne(src)
	runs := res.RunsOf(1500)
	if len(runs) != 1 || runs[0].Span.End != d("2010-01-04") {
		t.Fatalf("runs = %+v", runs)
	}
	if res.Report.MissingFileDays != 2 || res.Report.CorruptFileDays != 1 {
		t.Errorf("report = %+v", res.Report)
	}
	cov := res.Coverage[asn.ARIN]
	if cov.Days != 4 || cov.FileDays != 2 || cov.MissingDays != 2 || cov.CorruptDays != 1 {
		t.Errorf("coverage = %+v", cov)
	}
}

func TestMissingFileNotBridgedWhenGone(t *testing.T) {
	// The ASN does not reappear after the gap: the run ends at its last
	// day actually seen (§3.1 step i).
	src := days(asn.ARIN, "2010-01-01",
		file(asn.ARIN, rec(asn.ARIN, 1500, "US", "2010-01-01")),
		nil,
		file(asn.ARIN), // present file without the record
	)
	res := restoreOne(src)
	runs := res.RunsOf(1500)
	if len(runs) != 1 || runs[0].Span.End != d("2010-01-01") || runs[0].OpenAtEnd {
		t.Fatalf("runs = %+v", runs)
	}
}

func TestRecordRecoveredFromRegular(t *testing.T) {
	ext := file(asn.ARIN, rec(asn.ARIN, 1500, "US", "2010-01-01"))
	extMissingRecord := file(asn.ARIN) // dropped group
	regular := &delegation.File{Registry: asn.ARIN, ASNs: []delegation.Record{
		rec(asn.ARIN, 1500, "US", "2010-01-01"),
	}}
	src := &fakeSource{rir: asn.ARIN, snaps: []registry.Snapshot{
		{Day: d("2010-01-01"), Extended: ext, Regular: regular},
		{Day: d("2010-01-02"), Extended: extMissingRecord, Regular: regular},
		{Day: d("2010-01-03"), Extended: ext, Regular: regular},
	}}
	res := restoreOne(src)
	runs := res.RunsOf(1500)
	if len(runs) != 1 || runs[0].Span.Days() != 3 {
		t.Fatalf("runs = %+v (report %+v)", runs, res.Report)
	}
	if res.Report.RecoveredFromRegular == 0 {
		t.Errorf("report = %+v", res.Report)
	}
}

func TestDuplicateResolvedTowardDelegated(t *testing.T) {
	dup := file(asn.AfriNIC,
		recStatus(asn.AfriNIC, 36500, "2010-01-01", delegation.StatusAllocated),
		recStatus(asn.AfriNIC, 36500, "2010-01-01", delegation.StatusReserved),
	)
	src := days(asn.AfriNIC, "2010-01-01", dup, dup)
	res := restoreOne(src)
	runs := res.RunsOf(36500)
	if len(runs) != 1 || !runs[0].Delegated() {
		t.Fatalf("runs = %+v", runs)
	}
	if res.Report.DuplicatesResolved == 0 {
		t.Errorf("report = %+v", res.Report)
	}
}

func TestFutureRegDateFixed(t *testing.T) {
	src := days(asn.AfriNIC, "2010-01-01",
		file(asn.AfriNIC, rec(asn.AfriNIC, 36500, "ZA", "2010-01-04")), // future!
		file(asn.AfriNIC, rec(asn.AfriNIC, 36500, "ZA", "2010-01-04")),
	)
	res := restoreOne(src)
	runs := res.RunsOf(36500)
	if len(runs) != 1 || runs[0].RegDate != d("2010-01-01") {
		t.Fatalf("runs = %+v", runs)
	}
	if res.Report.FutureDatesFixed == 0 {
		t.Errorf("report = %+v", res.Report)
	}
}

func TestPlaceholderRestoredFromERX(t *testing.T) {
	erx := registry.ERXEntry{ASN: 20500, RegDate: d("1995-04-10")}
	// Day 1 shows the true date, then it travels back to the placeholder.
	src := days(asn.RIPENCC, "2010-01-01",
		file(asn.RIPENCC, rec(asn.RIPENCC, 20500, "FR", "1995-04-10")),
		file(asn.RIPENCC, rec(asn.RIPENCC, 20500, "FR", "1993-09-01")),
		file(asn.RIPENCC, rec(asn.RIPENCC, 20500, "FR", "1993-09-01")),
	)
	res := restoreOne(src, erx)
	runs := res.RunsOf(20500)
	if len(runs) != 1 || runs[0].RegDate != d("1995-04-10") {
		t.Fatalf("runs = %+v", runs)
	}
	if res.Report.PlaceholdersRestored == 0 {
		t.Errorf("report = %+v", res.Report)
	}
	// A run that starts directly on the placeholder is also restored.
	src2 := days(asn.RIPENCC, "2010-01-01",
		file(asn.RIPENCC, rec(asn.RIPENCC, 20500, "FR", "1993-09-01")),
	)
	res2 := restoreOne(src2, erx)
	if res2.RunsOf(20500)[0].RegDate != d("1995-04-10") {
		t.Errorf("open-on-placeholder not restored: %+v", res2.RunsOf(20500))
	}
}

func TestBackTravelKeepsEarliest(t *testing.T) {
	src := days(asn.ARIN, "2010-01-01",
		file(asn.ARIN, rec(asn.ARIN, 1500, "US", "2009-05-05")),
		file(asn.ARIN, rec(asn.ARIN, 1500, "US", "2008-01-01")), // travels back
		file(asn.ARIN, rec(asn.ARIN, 1500, "US", "2009-05-05")), // travels forward again
	)
	res := restoreOne(src)
	runs := res.RunsOf(1500)
	if len(runs) != 1 {
		t.Fatalf("runs = %+v", runs)
	}
	if runs[0].RegDate != d("2009-05-05") {
		// After back-travel the earliest (2008-01-01) is held; the later
		// forward change is an administrative correction adopted per
		// §4.1. The final value is therefore 2009-05-05.
		t.Errorf("regDate = %v", runs[0].RegDate)
	}
	if res.Report.BackTravelFixed == 0 {
		t.Errorf("report = %+v", res.Report)
	}
}

func TestRegDateCorrectionDoesNotSplit(t *testing.T) {
	src := days(asn.ARIN, "2010-01-01",
		file(asn.ARIN, rec(asn.ARIN, 1500, "US", "2010-01-01")),
		file(asn.ARIN, rec(asn.ARIN, 1500, "US", "2010-01-03")), // forward correction
		file(asn.ARIN, rec(asn.ARIN, 1500, "US", "2010-01-03")),
	)
	res := restoreOne(src)
	runs := res.RunsOf(1500)
	if len(runs) != 1 {
		t.Fatalf("correction split the run: %+v", runs)
	}
	if runs[0].RegDate != d("2010-01-03") || res.Report.RegDateCorrections == 0 {
		t.Errorf("run = %+v report = %+v", runs[0], res.Report)
	}
}

func TestStatusFlipClosesRun(t *testing.T) {
	src := days(asn.ARIN, "2010-01-01",
		file(asn.ARIN, recStatus(asn.ARIN, 1500, "2010-01-01", delegation.StatusAllocated)),
		file(asn.ARIN, recStatus(asn.ARIN, 1500, "2010-01-01", delegation.StatusReserved)),
		file(asn.ARIN, recStatus(asn.ARIN, 1500, "2010-01-01", delegation.StatusReserved)),
	)
	res := restoreOne(src)
	runs := res.RunsOf(1500)
	if len(runs) != 2 {
		t.Fatalf("runs = %+v", runs)
	}
	if !runs[0].Delegated() || runs[1].Delegated() {
		t.Errorf("statuses = %v %v", runs[0].Status, runs[1].Status)
	}
}

func TestMistakenAllocationDropped(t *testing.T) {
	// ASN 36500 belongs to AfriNIC's block; a record for it in LACNIC's
	// files is evidently erroneous.
	src := days(asn.LACNIC, "2010-01-01",
		file(asn.LACNIC, rec(asn.LACNIC, 36500, "BR", "2010-01-01")),
	)
	res := restoreOne(src)
	if len(res.RunsOf(36500)) != 0 {
		t.Errorf("mistaken record kept: %+v", res.RunsOf(36500))
	}
	if res.Report.MistakenRecordsDropped != 1 {
		t.Errorf("report = %+v", res.Report)
	}
}

func TestStaleTransferTruncated(t *testing.T) {
	// ARIN keeps the record after the ASN moved to RIPE... but the ASN
	// must be inside both IANA blocks to survive the block filter, which
	// is impossible for 16-bit pools — the paper's real overlaps involve
	// transfers where both registries list the same number. Our IANA
	// table assigns each 16-bit ASN to one registry, so use a 32-bit
	// number near a pool boundary... instead, verify via two registries
	// sharing the ERX-era number inside the origin's block: the origin
	// retains it, the destination lists it too. The block filter drops
	// the destination record; the origin keeps it. To exercise span
	// truncation, place both runs in the same registry pair where the
	// filter keeps both: that requires the same RIR, which the overlap
	// pass skips. Hence we test truncation directly on crafted runs.
	res := &Result{Runs: []Run{
		{ASN: 1500, RIR: asn.ARIN, Status: delegation.StatusAllocated,
			Span: span("2010-01-01", "2012-06-01")},
		{ASN: 1500, RIR: asn.RIPENCC, Status: delegation.StatusAllocated,
			Span: span("2012-01-01", "2015-01-01")},
	}}
	truncateOverlaps(res)
	if res.Runs[0].Span.End != d("2011-12-31") {
		t.Errorf("origin run not truncated: %+v", res.Runs[0])
	}
	if res.Report.StaleTransferRunsCut != 1 {
		t.Errorf("report = %+v", res.Report)
	}
}

func TestDailyAliveCounts(t *testing.T) {
	res := &Result{Runs: []Run{
		{ASN: 1500, RIR: asn.ARIN, Status: delegation.StatusAllocated,
			Span: span("2010-01-01", "2010-01-05")},
		{ASN: 1501, RIR: asn.ARIN, Status: delegation.StatusAllocated,
			Span: span("2010-01-03", "2010-01-10")},
		{ASN: 1502, RIR: asn.ARIN, Status: delegation.StatusReserved,
			Span: span("2010-01-01", "2010-01-10")},
	}}
	counts := res.DailyAliveCounts(d("2010-01-01"), d("2010-01-06"))
	want := []int{1, 1, 2, 2, 2, 1}
	for i, w := range want {
		if counts[asn.ARIN][i] != w {
			t.Fatalf("day %d = %d, want %d", i, counts[asn.ARIN][i], w)
		}
	}
}

// span is a test shorthand for a day interval.
func span(a, b string) intervals.Interval { return intervals.New(d(a), d(b)) }

func TestTransferredRunKeptDespiteBlockMismatch(t *testing.T) {
	// ASN 1500 belongs to ARIN's block. It is transferred to RIPE NCC:
	// the RIPE run is out-of-block but corroborated by the adjacent ARIN
	// run, so it must survive — unlike a mistaken allocation.
	res := &Result{Runs: []Run{
		{ASN: 1500, RIR: asn.ARIN, Status: delegation.StatusAllocated,
			RegDate: d("2005-01-01"), Span: span("2005-01-01", "2012-01-01")},
		{ASN: 1500, RIR: asn.RIPENCC, Status: delegation.StatusAllocated,
			RegDate: d("2005-01-01"), Span: span("2012-01-02", "2018-01-01"), OpenAtEnd: true},
	}}
	fixInterRIR(res)
	if len(res.Runs) != 2 {
		t.Fatalf("transferred run dropped: %+v (report %+v)", res.Runs, res.Report)
	}
	if res.Report.MistakenRecordsDropped != 0 {
		t.Errorf("report = %+v", res.Report)
	}
}

func TestPlaceholderCountedOncePerRun(t *testing.T) {
	erx := registry.ERXEntry{ASN: 20500, RegDate: d("1995-04-10")}
	files := []*delegation.File{
		file(asn.RIPENCC, rec(asn.RIPENCC, 20500, "FR", "1995-04-10")),
	}
	for i := 0; i < 10; i++ {
		files = append(files, file(asn.RIPENCC, rec(asn.RIPENCC, 20500, "FR", "1993-09-01")))
	}
	res := restoreOne(days(asn.RIPENCC, "2010-01-01", files...), erx)
	if res.Report.PlaceholdersRestored != 1 {
		t.Errorf("PlaceholdersRestored = %d, want 1", res.Report.PlaceholdersRestored)
	}
	if res.RunsOf(20500)[0].RegDate != d("1995-04-10") {
		t.Errorf("regDate = %v", res.RunsOf(20500)[0].RegDate)
	}
}
