// Package restore implements the paper's §3.1 restoration of delegation
// archives: it scans each registry's daily files in order and rebuilds
// per-ASN status timelines while repairing the archive's error classes —
//
//	(i)   bridging missing or corrupted file days,
//	(ii)  recovering record groups that vanish from extended files by
//	      falling back to the same day's regular file,
//	(iii) reconciling same-day regular/extended divergence in favour of
//	      the newer (extended) file,
//	(iv)  resolving duplicate records with inconsistent status by
//	      continuity with the previous day,
//	(v)   repairing registration dates that sit in the future, travel
//	      back in time, or show the RIPE 1993-09-01 placeholder (using
//	      the ERX reference data), and
//	(vi)  removing inter-RIR inconsistencies: stale records kept by the
//	      origin registry after a transfer, and mistaken allocations of
//	      ASNs outside the registry's IANA blocks.
//
// The output is a set of status runs — the cleaned daily view the §4.1
// lifetime construction consumes — plus a report counting every repair.
package restore

import (
	"context"
	"sort"

	"parallellives/internal/asn"
	"parallellives/internal/dates"
	"parallellives/internal/delegation"
	"parallellives/internal/intervals"
	"parallellives/internal/parallel"
	"parallellives/internal/registry"
)

// ripePlaceholder is the placeholder registration date of §3.1 step (v).
var ripePlaceholder = dates.MustParse("1993-09-01")

// Run is one contiguous span of days over which an ASN held a constant
// delegation status in one registry's (restored) files.
type Run struct {
	ASN      asn.ASN
	RIR      asn.RIR
	Status   delegation.Status // StatusAllocated/StatusAssigned/StatusReserved
	CC       string
	OpaqueID string
	// RegDate is the restored registration date; FirstRegDate is the
	// earliest raw date observed before repair, kept for auditability.
	RegDate      dates.Day
	FirstRegDate dates.Day
	Span         intervals.Interval
	// OpenAtEnd marks runs still present in the last file scanned.
	OpenAtEnd bool
}

// Delegated reports whether the run represents a held resource.
func (r Run) Delegated() bool { return r.Status.Delegated() }

// Report counts the repairs performed, mirroring §3.1's inventory.
type Report struct {
	FilesScanned    int
	MissingFileDays int
	// CorruptFileDays counts missing days whose files were retrieved but
	// unusable (a subset of MissingFileDays): classified separately so the
	// Health report can distinguish archive holes from damaged downloads.
	CorruptFileDays        int
	GapBridgedASNDays      int64
	RecoveredFromRegular   int64
	DivergenceReconciled   int64
	DuplicatesResolved     int
	FutureDatesFixed       int
	PlaceholdersRestored   int
	BackTravelFixed        int
	RegDateCorrections     int
	StaleTransferRunsCut   int
	MistakenRecordsDropped int
}

// add accumulates another report's counts — the reduce step when
// per-source reports from a parallel restoration are combined.
func (r *Report) add(o Report) {
	r.FilesScanned += o.FilesScanned
	r.MissingFileDays += o.MissingFileDays
	r.CorruptFileDays += o.CorruptFileDays
	r.GapBridgedASNDays += o.GapBridgedASNDays
	r.RecoveredFromRegular += o.RecoveredFromRegular
	r.DivergenceReconciled += o.DivergenceReconciled
	r.DuplicatesResolved += o.DuplicatesResolved
	r.FutureDatesFixed += o.FutureDatesFixed
	r.PlaceholdersRestored += o.PlaceholdersRestored
	r.BackTravelFixed += o.BackTravelFixed
	r.RegDateCorrections += o.RegDateCorrections
	r.StaleTransferRunsCut += o.StaleTransferRunsCut
	r.MistakenRecordsDropped += o.MistakenRecordsDropped
}

// Coverage is one registry's share of usable archive days — the per-RIR
// file inventory behind the pipeline Health report (Table 1's coverage
// column, kept per run instead of recomputed from the archive).
type Coverage struct {
	Days        int // days the source yielded
	FileDays    int // days with at least one usable file
	MissingDays int // days with no usable file
	CorruptDays int // missing days caused by corrupt retrievals
}

// Result is the restored archive view.
type Result struct {
	Start, End dates.Day
	Runs       []Run // sorted by ASN, then span start
	Report     Report
	Coverage   [asn.NumRIRs]Coverage
}

// RunsOf returns the restored runs of one ASN in chronological order.
func (res *Result) RunsOf(a asn.ASN) []Run {
	i := sort.Search(len(res.Runs), func(i int) bool { return res.Runs[i].ASN >= a })
	j := i
	for j < len(res.Runs) && res.Runs[j].ASN == a {
		j++
	}
	return res.Runs[i:j]
}

// Options selectively disables restoration steps — the ablation knobs
// behind the "restoration on/off" benchmarks. The zero value enables
// every repair.
type Options struct {
	// NoGapBridging closes runs across missing-file days instead of
	// carrying state forward (disables step i).
	NoGapBridging bool
	// NoRegularRecovery ignores the regular files when the extended file
	// is present (disables steps ii/iii).
	NoRegularRecovery bool
	// NoDateRepair keeps registration dates as published (disables
	// step v).
	NoDateRepair bool
	// NoInterRIRFix keeps cross-registry inconsistencies (disables
	// step vi).
	NoInterRIRFix bool
}

// Restore scans every source and produces the cleaned status runs with
// every repair enabled. The erx table carries original registration
// dates for early-registration transfers, used to repair placeholder
// dates.
func Restore(sources []registry.Source, erx []registry.ERXEntry) *Result {
	return RestoreWithOptions(sources, erx, Options{})
}

// RestoreWithOptions is Restore with selected repairs disabled.
func RestoreWithOptions(sources []registry.Source, erx []registry.ERXEntry, opts Options) *Result {
	return RestoreParallelWithOptions(sources, erx, opts, 1)
}

// RestoreParallel is Restore with the per-registry scans running on up
// to workers goroutines. Each source's day stream is consumed by one
// goroutine (sources never share state), so the result is bit-for-bit
// the sequential one for any worker count.
func RestoreParallel(sources []registry.Source, erx []registry.ERXEntry, workers int) *Result {
	return RestoreParallelWithOptions(sources, erx, Options{}, workers)
}

// runLess is the canonical (ASN, span start) run order the restored view
// is published in.
func runLess(a, b Run) bool {
	if a.ASN != b.ASN {
		return a.ASN < b.ASN
	}
	return a.Span.Start < b.Span.Start
}

// RestoreParallelWithOptions is RestoreParallel with selected repairs
// disabled. Every source is restored into its own sub-result; the merge
// stable-sorts each source's runs and k-way merges them with ties kept
// in source order, which reproduces exactly the sequential
// append-all-then-stable-sort ordering. The cross-registry repair (step
// vi) needs the merged by-ASN view, so it stays a sequential epilogue.
func RestoreParallelWithOptions(sources []registry.Source, erx []registry.ERXEntry, opts Options, workers int) *Result {
	res, _ := RestoreParallelContext(context.Background(), sources, erx, opts, workers)
	return res
}

// RestoreParallelContext is RestoreParallelWithOptions with cooperative
// cancellation: a cancelled ctx abandons the sources not yet scanned
// and returns ctx's error instead of a partial result. Restoration
// itself is infallible — the only possible error is ctx's.
func RestoreParallelContext(ctx context.Context, sources []registry.Source, erx []registry.ERXEntry, opts Options, workers int) (*Result, error) {
	erxDates := make(map[asn.ASN]dates.Day, len(erx))
	for _, e := range erx {
		erxDates[e.ASN] = e.RegDate
	}
	parts := make([]*Result, len(sources))
	err := parallel.ForEach(ctx, len(sources), workers, func(_ context.Context, i int) error {
		sub := &Result{Start: dates.None, End: dates.None}
		scanSource(sub, sources[i], erxDates, opts)
		sort.SliceStable(sub.Runs, func(a, b int) bool { return runLess(sub.Runs[a], sub.Runs[b]) })
		parts[i] = sub
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := mergeResults(parts)
	if !opts.NoInterRIRFix {
		fixInterRIR(res)
	}
	return res, nil
}

// mergeResults reduces per-source restoration results into one, in
// source order.
func mergeResults(parts []*Result) *Result {
	res := &Result{Start: dates.None, End: dates.None}
	runParts := make([][]Run, len(parts))
	for i, p := range parts {
		runParts[i] = p.Runs
		res.Report.add(p.Report)
		for r := range p.Coverage {
			res.Coverage[r].Days += p.Coverage[r].Days
			res.Coverage[r].FileDays += p.Coverage[r].FileDays
			res.Coverage[r].MissingDays += p.Coverage[r].MissingDays
			res.Coverage[r].CorruptDays += p.Coverage[r].CorruptDays
		}
		if p.Start != dates.None && (res.Start == dates.None || p.Start < res.Start) {
			res.Start = p.Start
		}
		if p.End != dates.None && (res.End == dates.None || p.End > res.End) {
			res.End = p.End
		}
	}
	res.Runs = parallel.MergeSorted(runLess, runParts...)
	return res
}

// sortedKeys returns map keys in ascending order for deterministic
// iteration.
func sortedKeys(m map[asn.ASN]*liveState) []asn.ASN {
	out := make([]asn.ASN, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// liveState tracks one ASN's open run while scanning a registry.
type liveState struct {
	status          delegation.Status
	cc, opaque      string
	regDate         dates.Day
	firstRegDate    dates.Day
	start           dates.Day
	lastSeen        dates.Day
	placeholderSeen bool
}

// scanSource walks one registry's days, maintaining per-ASN state.
func scanSource(res *Result, src registry.Source, erxDates map[asn.ASN]dates.Day, opts Options) {
	rir := src.Registry()
	state := make(map[asn.ASN]*liveState)
	var lastDay dates.Day = dates.None
	var firstFileDay dates.Day = dates.None
	gapOpen := false // true while file days are missing

	closeRun := func(a asn.ASN, st *liveState) {
		res.Runs = append(res.Runs, Run{
			ASN: a, RIR: rir, Status: st.status, CC: st.cc, OpaqueID: st.opaque,
			RegDate: st.regDate, FirstRegDate: st.firstRegDate,
			Span: intervals.New(st.start, st.lastSeen),
		})
		delete(state, a)
	}

	for {
		snap, ok := src.Next()
		if !ok {
			break
		}
		day := snap.Day
		if res.Start == dates.None || day < res.Start {
			res.Start = day
		}
		if res.End == dates.None || day > res.End {
			res.End = day
		}
		res.Coverage[rir].Days++
		if snap.Regular == nil && snap.Extended == nil {
			res.Report.MissingFileDays++
			res.Coverage[rir].MissingDays++
			if snap.RegularCorrupt || snap.ExtendedCorrupt {
				res.Report.CorruptFileDays++
				res.Coverage[rir].CorruptDays++
			}
			if opts.NoGapBridging {
				// Ablation: treat the missing day as an empty file,
				// terminating every open run.
				asns := sortedKeys(state)
				for _, a := range asns {
					closeRun(a, state[a])
				}
				lastDay = day
				continue
			}
			// Step (i): no usable file today. Carry all state forward;
			// runs are bridged if their ASNs reappear later, otherwise
			// they end at their last-seen day.
			gapOpen = true
			lastDay = day
			continue
		}
		res.Report.FilesScanned++
		res.Coverage[rir].FileDays++
		if firstFileDay == dates.None {
			firstFileDay = day
		}
		today := effectiveRecords(res, snap, opts)

		// Update or open runs for every ASN present today.
		for a, rec := range today {
			st := state[a]
			if st != nil && st.status.Delegated() == rec.Status.Delegated() &&
				(st.status == rec.Status || rec.Status.Delegated()) {
				// Same state (allocated/assigned treated as one class).
				if gapOpen || st.lastSeen != day.AddDays(-1) {
					res.Report.GapBridgedASNDays += int64(day.Sub(st.lastSeen) - 1)
				}
				st.lastSeen = day
				updateRegDate(res, st, a, rec, day, erxDates, opts)
				st.cc = rec.CC
				if rec.OpaqueID != "" {
					st.opaque = rec.OpaqueID
				}
				continue
			}
			if st != nil {
				closeRun(a, st) // status flip: allocated <-> reserved
			}
			reg := rec.Date
			if !opts.NoDateRepair && reg != dates.None && reg > day {
				// Step (v): future registration date; use the first
				// appearance day instead.
				reg = day
				res.Report.FutureDatesFixed++
			}
			if !opts.NoDateRepair && reg == ripePlaceholder {
				// Step (v): a run opening directly on the placeholder
				// date (the true date never visible in files) is
				// restored from the ERX reference data.
				if orig, ok := erxDates[a]; ok {
					reg = orig
					res.Report.PlaceholdersRestored++
				}
			}
			start := day
			if day == firstFileDay && reg != dates.None && reg < day && rec.Status.Delegated() {
				// An ASN already present in the registry's very first
				// file was allocated before the archive begins: its
				// administrative life starts at the registration date,
				// not at the archive boundary. (Without this, every
				// historic allocation would spuriously land in the
				// partial-overlap category once BGP data predates the
				// registry's first file.)
				start = reg
			}
			state[a] = &liveState{
				status: rec.Status, cc: rec.CC, opaque: rec.OpaqueID,
				regDate: reg, firstRegDate: rec.Date,
				start: start, lastSeen: day,
			}
		}
		// Close runs whose ASNs vanished from a present file.
		for a, st := range state {
			if _, ok := today[a]; !ok {
				closeRun(a, st)
			}
		}
		gapOpen = false
		lastDay = day
	}
	// End of stream: everything still open was alive on the last day.
	asns := make([]asn.ASN, 0, len(state))
	for a := range state {
		asns = append(asns, a)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	for _, a := range asns {
		st := state[a]
		res.Runs = append(res.Runs, Run{
			ASN: a, RIR: rir, Status: st.status, CC: st.cc, OpaqueID: st.opaque,
			RegDate: st.regDate, FirstRegDate: st.firstRegDate,
			Span:      intervals.New(st.start, st.lastSeen),
			OpenAtEnd: st.lastSeen == lastDay,
		})
	}
}

// effectiveRecords merges the day's regular and extended files per the
// paper's rules: the extended file is authoritative when present
// (step iii), records present only in the regular file are recovered
// (step ii), and duplicate records are resolved by preferring delegated
// status (step iv — matching the evidence-based disambiguation, which in
// the archives resolved in favour of the live allocation).
func effectiveRecords(res *Result, snap registry.Snapshot, opts Options) map[asn.ASN]delegation.Record {
	out := make(map[asn.ASN]delegation.Record, 1024)
	add := func(f *delegation.File, recovered bool) {
		if f == nil {
			return
		}
		for _, blk := range f.ASNs {
			if blk.Status == delegation.StatusAvailable {
				continue
			}
			for k := 0; k < blk.Count; k++ {
				rec := blk
				rec.ASN = blk.ASN + asn.ASN(k)
				rec.Count = 1
				addOne(res, out, rec, recovered)
			}
		}
	}
	switch {
	case snap.Extended != nil && snap.Regular != nil:
		add(snap.Extended, false)
		if opts.NoRegularRecovery {
			break
		}
		// Step (ii)/(iii): the regular file backfills records the newer
		// extended file dropped.
		before := len(out)
		add(snap.Regular, true)
		if len(out) != before {
			res.Report.DivergenceReconciled++
		}
	case snap.Extended != nil:
		add(snap.Extended, false)
	default:
		add(snap.Regular, false)
	}
	return out
}

// addOne merges one unit record into the day map, resolving duplicates.
func addOne(res *Result, out map[asn.ASN]delegation.Record, rec delegation.Record, recovered bool) {
	if prev, dup := out[rec.ASN]; dup {
		if !recovered {
			// Duplicate rows inside one file (step iv): keep the
			// delegated row over the reserved one.
			if !prev.Status.Delegated() && rec.Status.Delegated() {
				out[rec.ASN] = rec
			}
			res.Report.DuplicatesResolved++
		}
		return
	}
	if recovered {
		res.Report.RecoveredFromRegular++
	}
	out[rec.ASN] = rec
}

// updateRegDate applies the step (v) date repairs on a continuing run.
func updateRegDate(res *Result, st *liveState, a asn.ASN, rec delegation.Record, day dates.Day, erxDates map[asn.ASN]dates.Day, opts Options) {
	newDate := rec.Date
	if newDate == st.regDate || newDate == dates.None {
		return
	}
	if opts.NoDateRepair {
		st.regDate = newDate // take the files at face value
		return
	}
	switch {
	case newDate > day && st.regDate <= day:
		// Future date appearing mid-run: keep the existing sane date.
		res.Report.FutureDatesFixed++
	case newDate == ripePlaceholder:
		// Back-travel to the placeholder: restore from ERX reference
		// when available, else keep the earlier date already held.
		// Counted once per run; the placeholder persists in later files.
		if !st.placeholderSeen {
			if orig, ok := erxDates[a]; ok {
				st.regDate = orig
			}
			res.Report.PlaceholdersRestored++
			st.placeholderSeen = true
		}
	case newDate < st.regDate:
		// Generic back-travel: the paper keeps the earliest date found.
		st.regDate = newDate
		st.firstRegDate = newDate
		res.Report.BackTravelFixed++
	default:
		// Forward change while continuously allocated: an administrative
		// correction to the same allocation (§4.1); adopt it without
		// splitting the run.
		st.regDate = newDate
		res.Report.RegDateCorrections++
	}
}

// fixInterRIR removes cross-registry inconsistencies (step vi): records
// outside the registry's IANA blocks with no transfer evidence are
// dropped as mistaken allocations, and overlapping delegated runs from
// transfers are truncated in the origin registry.
func fixInterRIR(res *Result) {
	kept := res.Runs[:0]
	for i := 0; i < len(res.Runs); {
		j := i
		for j < len(res.Runs) && res.Runs[j].ASN == res.Runs[i].ASN {
			j++
		}
		group := res.Runs[i:j]
		for _, r := range group {
			if registry.IANABlockHolds(r.RIR, r.ASN) || transferEvidence(r, group) {
				kept = append(kept, r)
				continue
			}
			res.Report.MistakenRecordsDropped++
		}
		i = j
	}
	res.Runs = kept
	truncateOverlaps(res)
}

// transferEvidence reports whether an out-of-block run is corroborated
// by an inter-RIR transfer: another registry (the block holder) held the
// same ASN up to (or overlapping) this run's start. Mistaken apparent
// allocations have no such predecessor — the paper's §3.1 distinction
// between stale transfer data and allocations of blocks never assigned
// by IANA.
func transferEvidence(r Run, group []Run) bool {
	if !r.Delegated() {
		return false
	}
	for _, o := range group {
		if o.RIR == r.RIR || !o.Delegated() {
			continue
		}
		if o.Span.Start < r.Span.Start && o.Span.End >= r.Span.Start.AddDays(-90) {
			return true
		}
	}
	return false
}

// truncateOverlaps cuts overlapping delegated runs of the same ASN held
// in different registries: the later-starting registry wins (it received
// the transfer); the origin registry's stale tail is cut.
func truncateOverlaps(res *Result) {
	for i := 0; i < len(res.Runs); {
		j := i
		for j < len(res.Runs) && res.Runs[j].ASN == res.Runs[i].ASN {
			j++
		}
		group := res.Runs[i:j]
		for x := range group {
			for y := range group {
				a, b := &group[x], &group[y]
				if x == y || a.RIR == b.RIR || !a.Delegated() || !b.Delegated() {
					continue
				}
				if !a.Span.Overlaps(b.Span) {
					continue
				}
				// a is the origin if it started earlier.
				if a.Span.Start < b.Span.Start {
					a.Span.End = b.Span.Start.AddDays(-1)
					a.OpenAtEnd = false
					res.Report.StaleTransferRunsCut++
				}
			}
		}
		i = j
	}
	// Truncation can invert tiny runs; drop any that became empty.
	kept := res.Runs[:0]
	for _, r := range res.Runs {
		if r.Span.End >= r.Span.Start {
			kept = append(kept, r)
		}
	}
	res.Runs = kept
}

// DailyAliveCounts computes, for each day in [start, end], the number of
// delegated ASNs per RIR — the administrative series of Figure 4.
func (res *Result) DailyAliveCounts(start, end dates.Day) [asn.NumRIRs][]int {
	var out [asn.NumRIRs][]int
	n := end.Sub(start) + 1
	for r := range out {
		out[r] = make([]int, n)
	}
	for _, run := range res.Runs {
		if !run.Delegated() {
			continue
		}
		lo := dates.Max(run.Span.Start, start)
		hi := dates.Min(run.Span.End, end)
		for d := lo; d <= hi; d++ {
			out[run.RIR][d.Sub(start)]++
		}
	}
	return out
}
