package report

import (
	"parallellives/internal/asn"
	"parallellives/internal/core"
	"parallellives/internal/dates"
)

// SeriesSample is a stride-sampled view of a core.AliveSeries: one point
// every stride days, per registry and overall, in both dimensions. It is
// the common series shape behind Figure 4 and the query service's
// /v1/rir/{r}/series endpoint.
type SeriesSample struct {
	Stride   int
	Days     []dates.Day
	Admin    [asn.NumRIRs][]int
	Op       [asn.NumRIRs][]int
	AdminAll []int
	OpAll    []int
}

// SampleAlive downsamples a daily alive series to one point every stride
// days, always keeping the first day. stride <= 1 keeps every day.
func SampleAlive(s *core.AliveSeries, stride int) SeriesSample {
	if stride < 1 {
		stride = 1
	}
	out := SeriesSample{Stride: stride}
	for off := 0; off < len(s.AdminOverall); off += stride {
		out.Days = append(out.Days, s.Start.AddDays(off))
		for _, r := range asn.All() {
			out.Admin[r] = append(out.Admin[r], s.AdminPerRIR[r][off])
			out.Op[r] = append(out.Op[r], s.OpPerRIR[r][off])
		}
		out.AdminAll = append(out.AdminAll, s.AdminOverall[off])
		out.OpAll = append(out.OpAll, s.OpOverall[off])
	}
	return out
}
