// Package report regenerates every table and figure of the paper's
// evaluation from a built dataset: the same rows and series, printed as
// text. Each experiment has a typed result struct plus a Text renderer,
// so benchmarks, commands and tests can consume either form.
package report

import (
	"fmt"
	"strings"
)

// textTable renders rows with aligned columns.
func textTable(title string, header []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

func pct(x float64) string  { return fmt.Sprintf("%.1f%%", 100*x) }
func itoa(n int) string     { return fmt.Sprintf("%d", n) }
func f2(x float64) string   { return fmt.Sprintf("%.2f", x) }
func i64(n int64) string    { return fmt.Sprintf("%d", n) }
func day(n int) string      { return fmt.Sprintf("%dd", n) }
func fday(x float64) string { return fmt.Sprintf("%.0fd", x) }
