package report

import (
	"fmt"
	"strings"

	"parallellives/internal/asn"
	"parallellives/internal/dates"
	"parallellives/internal/restore"
)

// AppendixA16Bit is the Appendix A 16-bit exhaustion analysis: when each
// registry's count of allocated 16-bit ASNs peaked, and the global peak.
type AppendixA16Bit struct {
	PerRIR [asn.NumRIRs]struct {
		PeakDay   dates.Day
		PeakCount int
	}
	GlobalPeakDay   dates.Day
	GlobalPeakCount int
	// EndCounts are the final-day allocated 16-bit counts, showing how
	// much 16-bit space stays occupied after the 32-bit transition.
	EndCounts [asn.NumRIRs]int
}

// BuildAppendixA16Bit scans the restored runs for 16-bit occupancy.
func BuildAppendixA16Bit(res *restore.Result, start, end dates.Day) AppendixA16Bit {
	n := end.Sub(start) + 1
	var per [asn.NumRIRs][]int
	for r := range per {
		per[r] = make([]int, n)
	}
	for _, run := range res.Runs {
		if !run.Delegated() || run.ASN.Is32Bit() {
			continue
		}
		lo := dates.Max(run.Span.Start, start)
		hi := dates.Min(run.Span.End, end)
		for d := lo; d <= hi; d++ {
			per[run.RIR][d.Sub(start)]++
		}
	}
	var a AppendixA16Bit
	globalBest := -1
	for off := 0; off < n; off++ {
		total := 0
		for _, r := range asn.All() {
			c := per[r][off]
			total += c
			if c > a.PerRIR[r].PeakCount {
				a.PerRIR[r].PeakCount = c
				a.PerRIR[r].PeakDay = start.AddDays(off)
			}
		}
		if total > globalBest {
			globalBest = total
			a.GlobalPeakDay = start.AddDays(off)
			a.GlobalPeakCount = total
		}
	}
	for _, r := range asn.All() {
		a.EndCounts[r] = per[r][n-1]
	}
	return a
}

// Text renders the summary.
func (a AppendixA16Bit) Text() string {
	var b strings.Builder
	rows := make([][]string, 0, asn.NumRIRs)
	for _, r := range asn.All() {
		rows = append(rows, []string{
			r.String(), a.PerRIR[r].PeakDay.String(), itoa(a.PerRIR[r].PeakCount),
			itoa(a.EndCounts[r]),
		})
	}
	b.WriteString(textTable("Appendix A: 16-bit ASN occupancy peaks",
		[]string{"RIR", "Peak day", "Peak 16-bit allocated", "At window end"}, rows))
	fmt.Fprintf(&b, "global 16-bit peak: %d allocated on %s\n",
		a.GlobalPeakCount, a.GlobalPeakDay)
	return b.String()
}
