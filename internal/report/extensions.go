package report

import (
	"fmt"
	"strings"

	"parallellives/internal/bgpscan"
	"parallellives/internal/core"
)

// Extensions summarizes the §8/§9 methodology extensions implemented
// beyond the paper's headline pipeline: the origination/transit role
// split of operational lifetimes, and the prefix-aware lifetime
// segmentation.
type Extensions struct {
	Roles core.RoleProfile
	// TimeoutOnly / PrefixAware are the operational lifetime counts under
	// the plain 30-day rule and the prefix-turnover refinement.
	TimeoutOnly, PrefixAware int
	// ExtraSplits is how many additional lifetimes the refinement finds —
	// bridged gaps whose announced prefix set changed completely.
	ExtraSplits int
}

// BuildExtensions computes both extensions over the scanned activity.
func BuildExtensions(act *bgpscan.Activity, ops *core.OpIndex) Extensions {
	e := Extensions{
		Roles:       ops.Roles(),
		TimeoutOnly: len(ops.Lifetimes),
	}
	aware := core.BuildOpLifetimesPrefixAware(act, ops.Timeout, 5)
	e.PrefixAware = len(aware.Lifetimes)
	e.ExtraSplits = e.PrefixAware - e.TimeoutOnly
	return e
}

// Text renders the summary.
func (e Extensions) Text() string {
	var b strings.Builder
	b.WriteString("Extensions (paper §8/§9 future work)\n")
	fmt.Fprintf(&b, "operational lifetime roles: origin-only %d, transit-only %d, mixed %d (transit-day share %s)\n",
		e.Roles.OriginOnly, e.Roles.TransitOnly, e.Roles.Mixed, pct(e.Roles.TransitDaysShare))
	fmt.Fprintf(&b, "prefix-aware segmentation: %d lifetimes vs %d timeout-only (%d extra splits from prefix turnover)\n",
		e.PrefixAware, e.TimeoutOnly, e.ExtraSplits)
	return b.String()
}
