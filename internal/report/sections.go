package report

import (
	"fmt"
	"strings"

	"parallellives/internal/asn"
	"parallellives/internal/core"
	"parallellives/internal/dates"
	"parallellives/internal/stats"
)

// Section61 summarizes the §6.1 complete-overlap analysis: late
// deallocations, start delays, intermittent use and dormant squatting.
type Section61 struct {
	Profile         core.OverlapProfile
	MedianLag       [asn.NumRIRs]float64
	MedianStart     [asn.NumRIRs]float64
	SquatFindings   []core.SquatFinding
	Coordinated     map[asn.ASN][]core.SquatFinding
	OneLifeShare    float64
	TwoLivesShare   float64
	MoreLivesShare  float64
	LargelySpacedPc float64
}

// BuildSection61 profiles §6.1.
func BuildSection61(j *core.Joint, windowEnd dates.Day, squat core.SquatParams) Section61 {
	s := Section61{Profile: j.Overlap(windowEnd)}
	for _, r := range asn.All() {
		if len(s.Profile.DeallocLagDays[r]) > 0 {
			s.MedianLag[r] = stats.NewCDFInts(s.Profile.DeallocLagDays[r]).Median()
		}
		if len(s.Profile.StartDelayDays[r]) > 0 {
			s.MedianStart[r] = stats.NewCDFInts(s.Profile.StartDelayDays[r]).Median()
		}
	}
	total := s.Profile.OneLife + s.Profile.TwoLives + s.Profile.MoreLives
	if total > 0 {
		s.OneLifeShare = float64(s.Profile.OneLife) / float64(total)
		s.TwoLivesShare = float64(s.Profile.TwoLives) / float64(total)
		s.MoreLivesShare = float64(s.Profile.MoreLives) / float64(total)
	}
	if s.Profile.MultiLife > 0 {
		s.LargelySpacedPc = float64(s.Profile.LargelySpaced) / float64(s.Profile.MultiLife)
	}
	s.SquatFindings = j.DetectDormantSquats(squat)
	s.Coordinated = core.CoordinatedGroups(s.SquatFindings, 2)
	return s
}

// Text renders the summary.
func (s Section61) Text() string {
	var b strings.Builder
	b.WriteString("Section 6.1: complete overlap\n")
	rows := make([][]string, 0, asn.NumRIRs)
	for _, r := range asn.All() {
		rows = append(rows, []string{
			r.String(),
			fday(s.MedianLag[r]),
			fday(s.MedianStart[r]),
			itoa(len(s.Profile.DeallocLagDays[r])),
		})
	}
	b.WriteString(textTable("late deallocation / start delay medians",
		[]string{"RIR", "Median dealloc lag", "Median start delay", "Closed lives"}, rows))
	fmt.Fprintf(&b, "op lives per admin life: 1 life %s, 2 lives %s, >2 lives %s\n",
		pct(s.OneLifeShare), pct(s.TwoLivesShare), pct(s.MoreLivesShare))
	fmt.Fprintf(&b, ">10 op lives: %d (with siblings: %d)\n",
		s.Profile.TenPlus, s.Profile.TenPlusWithSiblings)
	fmt.Fprintf(&b, "largely spaced (gap > 365d): %d of %d multi-life (%s)\n",
		s.Profile.LargelySpaced, s.Profile.MultiLife, pct(s.LargelySpacedPc))
	fmt.Fprintf(&b, "dormant-squat filter matches: %d op lives; coordinated upstream groups: %d\n",
		len(s.SquatFindings), len(s.Coordinated))
	return b.String()
}

// Section62 summarizes §6.2 (partial overlap).
type Section62 struct {
	Profile           core.PartialProfile
	MedianDanglingDay float64
	NoCustomerShare   float64
}

// BuildSection62 profiles §6.2.
func BuildSection62(j *core.Joint, cones core.ConeProvider) Section62 {
	s := Section62{Profile: j.Partial(cones)}
	if len(s.Profile.DanglingDays) > 0 {
		s.MedianDanglingDay = stats.NewCDFInts(s.Profile.DanglingDays).Median()
	}
	if s.Profile.DanglingWithCone > 0 {
		s.NoCustomerShare = float64(s.Profile.DanglingNoCustomers) / float64(s.Profile.DanglingWithCone)
	}
	return s
}

// Text renders the summary.
func (s Section62) Text() string {
	var b strings.Builder
	b.WriteString("Section 6.2: partial overlap\n")
	p := s.Profile
	dangShare := 0.0
	if p.AdminLives > 0 {
		dangShare = float64(p.Dangling) / float64(p.AdminLives)
	}
	fmt.Fprintf(&b, "partial-overlap admin lives: %d\n", p.AdminLives)
	fmt.Fprintf(&b, "dangling announcements: %d (%s of category), median overrun %s, no-customer share %s\n",
		p.Dangling, pct(dangShare), fday(s.MedianDanglingDay), pct(s.NoCustomerShare))
	fmt.Fprintf(&b, "early starts (before allocation in files): %d, of which before registration date: %d\n",
		p.EarlyStart, p.EarlyBeforeReg)
	return b.String()
}

// Section63 summarizes §6.3 (unused administrative lives).
type Section63 struct {
	Profile      core.UnusedProfile
	TopCountries []core.CountryDisproportion
	// Short32Share per RIR: fraction of sub-month unused lives that are
	// 32-bit numbers.
	Short32Share   [asn.NumRIRs]float64
	Replaced16Rate float64
}

// BuildSection63 profiles §6.3.
func BuildSection63(j *core.Joint) Section63 {
	s := Section63{Profile: j.Unused()}
	s.TopCountries = s.Profile.TopUnusedCountries(10)
	for _, r := range asn.All() {
		if s.Profile.ShortUnusedTotal[r] > 0 {
			s.Short32Share[r] = float64(s.Profile.ShortUnused32[r]) / float64(s.Profile.ShortUnusedTotal[r])
		}
	}
	if s.Profile.ReplacedChecked > 0 {
		s.Replaced16Rate = float64(s.Profile.Replaced16) / float64(s.Profile.ReplacedChecked)
	}
	return s
}

// Text renders the summary.
func (s Section63) Text() string {
	var b strings.Builder
	b.WriteString("Section 6.3: allocated but unused\n")
	p := s.Profile
	fmt.Fprintf(&b, "unused admin lives: %d over %d ASNs (never used at all: %d ASNs)\n",
		p.Lives, p.ASNs, p.NeverUsedASNs)
	rows := make([][]string, 0, len(s.TopCountries))
	for _, c := range s.TopCountries {
		rows = append(rows, []string{c.CC, itoa(c.Unused), itoa(c.Total), pct(c.UnusedFraction)})
	}
	b.WriteString(textTable("top countries by unused administrative lives",
		[]string{"CC", "Unused", "Total", "Unused frac"}, rows))
	srows := make([][]string, 0, asn.NumRIRs)
	for _, r := range asn.All() {
		srows = append(srows, []string{
			r.String(), itoa(p.ShortUnusedTotal[r]), itoa(p.ShortUnused32[r]),
			pct(s.Short32Share[r]),
		})
	}
	b.WriteString(textTable("unused lives shorter than a month: 32-bit share",
		[]string{"RIR", "Short unused", "32-bit", "Share"}, srows))
	fmt.Fprintf(&b, "sibling-organization unused lives: %d\n", p.SiblingUnused)
	fmt.Fprintf(&b, "failed 32-bit deployments replaced by 16-bit within 30d: %d/%d (%s)\n",
		p.Replaced16, p.ReplacedChecked, pct(s.Replaced16Rate))
	return b.String()
}

// Section64 summarizes §6.4 (operational lives outside delegation).
type Section64 struct {
	Profile core.OutsideProfile
}

// BuildSection64 profiles §6.4.
func BuildSection64(j *core.Joint) Section64 {
	return Section64{Profile: j.Outside()}
}

// Text renders the summary.
func (s Section64) Text() string {
	var b strings.Builder
	p := s.Profile
	b.WriteString("Section 6.4: operational lives outside delegation\n")
	fmt.Fprintf(&b, "ASNs used after deallocation: %d (hijack-pattern events: %d)\n",
		p.ASNsPostDealloc, p.HijackEvents)
	fmt.Fprintf(&b, "never-allocated ASNs in BGP: %d (bogons excluded: %d)\n",
		p.ASNsNeverAllocated, p.BogonASNsExcluded)
	fmt.Fprintf(&b, "  active > 1 day: %d, > 1 month: %d, > 1 year: %d\n",
		p.NeverAllocOver1Day, p.NeverAllocOver1Mon, p.NeverAllocOver1Year)
	fmt.Fprintf(&b, "  fat-finger prepend (doubled origin): %d\n", p.PrependCases)
	fmt.Fprintf(&b, "  fat-finger MOAS (one digit off):     %d\n", p.MOASCases)
	fmt.Fprintf(&b, "  large internal leaks (> max digits): %d\n", p.LargeLeaks)
	fmt.Fprintf(&b, "  unexplained:                         %d\n", p.Unexplained)
	return b.String()
}
