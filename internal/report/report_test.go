package report

import (
	"strings"
	"sync"
	"testing"

	"parallellives/internal/asn"
	"parallellives/internal/core"
	"parallellives/internal/dates"
	"parallellives/internal/pipeline"
)

var (
	dsOnce sync.Once
	ds     *pipeline.Dataset
	dsErr  error
)

// dataset builds one shared reduced dataset for all report tests.
func dataset(t *testing.T) *pipeline.Dataset {
	t.Helper()
	if testing.Short() {
		t.Skip("multi-year pipeline run")
	}
	dsOnce.Do(func() {
		opts := pipeline.DefaultOptions()
		opts.World.Scale = 0.02
		opts.World.Start = dates.MustParse("2004-01-01")
		opts.World.End = dates.MustParse("2010-12-31")
		ds, dsErr = pipeline.Run(opts)
	})
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	return ds
}

func TestTable1(t *testing.T) {
	d := dataset(t)
	tbl := BuildTable1(d.Archive)
	if len(tbl.Rows) != int(asn.NumRIRs) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if r.FileCount <= 0 {
			t.Errorf("%v: no files", r.RIR)
		}
	}
	if !strings.Contains(tbl.Text(), "APNIC") {
		t.Error("Text missing APNIC row")
	}
}

func TestTable2SharesSumToOne(t *testing.T) {
	d := dataset(t)
	tbl := BuildTable2(d.Joint)
	for _, r := range append(tbl.Rows, tbl.Total) {
		if r.AdmASNCount == 0 {
			continue
		}
		if s := r.Adm1 + r.Adm2 + r.AdmMore; s < 0.999 || s > 1.001 {
			t.Errorf("%v: admin shares sum to %v", r.RIR, s)
		}
		if r.OpASNCount > 0 {
			if s := r.Op1 + r.Op2 + r.OpMore; s < 0.999 || s > 1.001 {
				t.Errorf("%v: op shares sum to %v", r.RIR, s)
			}
		}
	}
	// ARIN reallocates most aggressively in the simulated policies.
	var arin, lacnic Table2Row
	for _, r := range tbl.Rows {
		switch r.RIR {
		case asn.ARIN:
			arin = r
		case asn.LACNIC:
			lacnic = r
		}
	}
	if arin.Adm1 >= lacnic.Adm1 {
		t.Errorf("ARIN one-life share (%.2f) should be below LACNIC's (%.2f)",
			arin.Adm1, lacnic.Adm1)
	}
	_ = tbl.Text()
}

func TestTable3MatchesJoint(t *testing.T) {
	d := dataset(t)
	tbl := BuildTable3(d.Joint)
	if tbl.AdminTotal != len(d.Admin.Lifetimes) {
		t.Errorf("admin total %d != %d lifetimes", tbl.AdminTotal, len(d.Admin.Lifetimes))
	}
	if tbl.CompleteShare+tbl.PartialShare+tbl.UnusedShare < 0.999 {
		t.Error("admin shares do not sum to 1")
	}
	_ = tbl.Text()
}

func TestTable4CountryEvolution(t *testing.T) {
	d := dataset(t)
	tbl := BuildTable4(d.Joint, []dates.Day{
		dates.MustParse("2006-01-01"), dates.MustParse("2010-01-01"),
	}, 5)
	if len(tbl.Snapshots) != 2 {
		t.Fatalf("snapshots = %d", len(tbl.Snapshots))
	}
	for _, s := range tbl.Snapshots {
		if len(s.Rows) == 0 {
			t.Fatalf("no countries at %v", s.Date)
		}
		for i := 1; i < len(s.Rows); i++ {
			if s.Rows[i].Count > s.Rows[i-1].Count {
				t.Error("rows not sorted by count")
			}
		}
	}
	_ = tbl.Text()
}

func TestTable5SensitivitySmall(t *testing.T) {
	d := dataset(t)
	tbl := BuildTable5(d.Admin, d.Activity, []int{15, 30, 50}, 30)
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	var r15, r30, r50 Table5Row
	for _, r := range tbl.Rows {
		switch r.Timeout {
		case 15:
			r15 = r
		case 30:
			r30 = r
		case 50:
			r50 = r
		}
	}
	// Shorter timeouts split more op lives outside delegation; longer
	// timeouts merge them (paper Table 5's +4.9% / −4.4% pattern).
	if r15.Outside < r30.Outside || r50.Outside > r30.Outside {
		t.Errorf("outside counts not monotone: 15=%d 30=%d 50=%d",
			r15.Outside, r30.Outside, r50.Outside)
	}
	if r30.DeltaComplete != 0 || r30.DeltaOutside != 0 {
		t.Error("baseline deltas must be zero")
	}
	_ = tbl.Text()
}

func TestFigure3Monotone(t *testing.T) {
	d := dataset(t)
	f := BuildFigure3(d.Activity, d.Admin, []int{1, 5, 15, 30, 50, 100, 365}, 30)
	for i := 1; i < len(f.Points); i++ {
		if f.Points[i].GapFractionBelow < f.Points[i-1].GapFractionBelow {
			t.Error("gap CDF not monotone")
		}
	}
	if !strings.Contains(f.Text(), "<- chosen") {
		t.Error("chosen timeout not marked")
	}
	// The 30-day knee covers the bulk of gaps (paper: 70.1%).
	if f.AtKnee.GapFractionBelow < 0.4 {
		t.Errorf("gaps <= 30d = %v, suspiciously low", f.AtKnee.GapFractionBelow)
	}
}

func TestFigure4GapAndSeries(t *testing.T) {
	d := dataset(t)
	f := BuildFigure4(d.Joint, d.World.Config.Start, d.World.Config.End, 30)
	if len(f.Days) == 0 {
		t.Fatal("no sampled days")
	}
	if f.EndGap < 0.1 || f.EndGap > 0.5 {
		t.Errorf("end gap = %v out of band", f.EndGap)
	}
	// Admin overall must dominate op overall on every sampled day.
	for i := range f.Days {
		if f.OpAll[i] > f.AdminAll[i] {
			t.Errorf("day %v: op %d > admin %d", f.Days[i], f.OpAll[i], f.AdminAll[i])
		}
	}
	_ = f.Text()
}

func TestFigure5Consistency(t *testing.T) {
	d := dataset(t)
	f := BuildFigure5(d.Admin)
	total := 0
	for _, r := range asn.All() {
		total += f.CDFs[r].N()
		if f.Over10y[r] > f.Over5y[r] {
			t.Errorf("%v: >10y exceeds >5y", r)
		}
	}
	if total != len(d.Admin.Lifetimes) {
		t.Errorf("CDF sample total %d != %d lifetimes", total, len(d.Admin.Lifetimes))
	}
	_ = f.Text()
}

func TestFigure7Bounds(t *testing.T) {
	d := dataset(t)
	f := BuildFigure7(d.Joint)
	if f.CDF.N() == 0 {
		t.Fatal("no utilization samples")
	}
	if f.Over95 > f.Over75 {
		t.Error(">95% usage exceeds >75% usage")
	}
	if f.CDF.Max() > 1.0000001 || f.CDF.Min() < 0 {
		t.Errorf("utilization out of [0,1]: %v..%v", f.CDF.Min(), f.CDF.Max())
	}
	_ = f.Text()
}

func TestFigure8Series(t *testing.T) {
	d := dataset(t)
	findings := d.Joint.DetectDormantSquats(core.DefaultSquatParams())
	f := BuildFigure8(d.Joint, findings, 6, 30, d.World.Config.Start, d.World.Config.End)
	if len(findings) > 0 && len(f.Series) == 0 {
		t.Fatal("no series despite findings")
	}
	for _, s := range f.Series {
		if len(s.Days) != len(s.Counts) {
			t.Error("series length mismatch")
		}
	}
	_ = f.Text()
}

func TestFigure9(t *testing.T) {
	d := dataset(t)
	f := BuildFigure9(d.Joint.Unused())
	n := 0
	for _, r := range asn.All() {
		n += f.CDFs[r].N()
	}
	if n == 0 {
		t.Fatal("no unused lives")
	}
	_ = f.Text()
}

func TestFigure10And11(t *testing.T) {
	d := dataset(t)
	f10 := BuildFigure10(d.Admin)
	if len(f10.Quarters) == 0 {
		t.Fatal("no birth quarters")
	}
	total := 0
	for _, r := range asn.All() {
		for _, n := range f10.Births[r] {
			total += n
		}
	}
	if total != len(d.Admin.Lifetimes) {
		t.Errorf("birth total %d != %d lifetimes", total, len(d.Admin.Lifetimes))
	}
	// The dot-com spike: ARIN's peak quarter predates the window.
	peak, n := f10.PeakQuarter(asn.ARIN)
	if n <= 0 {
		t.Error("no ARIN peak")
	}
	if peak.Year() > 2004 {
		t.Errorf("ARIN peak quarter %v should reflect pre-window registrations", peak)
	}

	f11 := BuildFigure11(d.Admin, d.World.Config.Start, d.World.Config.End)
	if len(f11.Quarters) == 0 {
		t.Fatal("no balance quarters")
	}
	_ = f10.Text()
	_ = f11.Text()
}

func TestFigure12BitSplit(t *testing.T) {
	d := dataset(t)
	f := BuildFigure12(d.Restored, d.World.Config.Start, d.World.Config.End, 90)
	if len(f.Days) == 0 {
		t.Fatal("no sampled days")
	}
	last := len(f.Days) - 1
	// By end-2010, 32-bit allocations exist for RIPE/APNIC/LACNIC.
	if f.Bit32[asn.RIPENCC][last]+f.Bit32[asn.APNIC][last]+f.Bit32[asn.LACNIC][last] == 0 {
		t.Error("no 32-bit allocations by 2010")
	}
	// 16-bit dominates everywhere this early.
	for _, r := range asn.All() {
		if f.Bit32[r][last] > f.Bit16[r][last] {
			t.Errorf("%v: 32-bit (%d) exceeds 16-bit (%d) in 2010",
				r, f.Bit32[r][last], f.Bit16[r][last])
		}
	}
	_ = f.Text()
}

func TestFigure14(t *testing.T) {
	d := dataset(t)
	f := BuildFigure14(d.Admin, 2004, 2010)
	if len(f.Rows) == 0 {
		t.Fatal("no boxplot rows")
	}
	for _, r := range f.Rows {
		if r.Duration.Min > r.Duration.Median || r.Duration.Median > r.Duration.Max {
			t.Errorf("%v %d: malformed five-number summary %+v", r.RIR, r.Year, r.Duration)
		}
	}
	_ = f.Text()
}

func TestSections(t *testing.T) {
	d := dataset(t)
	end := d.World.Config.End
	s61 := BuildSection61(d.Joint, end, core.DefaultSquatParams())
	if s61.OneLifeShare < 0.5 {
		t.Errorf("one-op-life share = %v, paper reports 84.1%%", s61.OneLifeShare)
	}
	if !strings.Contains(s61.Text(), "dormant-squat") {
		t.Error("section text incomplete")
	}
	s62 := BuildSection62(d.Joint, d.Cones())
	if s62.Profile.AdminLives == 0 {
		t.Error("no partial-overlap lives")
	}
	_ = s62.Text()
	s63 := BuildSection63(d.Joint)
	if s63.Profile.Lives == 0 {
		t.Error("no unused lives")
	}
	_ = s63.Text()
	s64 := BuildSection64(d.Joint)
	if s64.Profile.ASNsNeverAllocated == 0 {
		t.Error("no never-allocated ASNs")
	}
	_ = s64.Text()
}

func TestTextTableAlignment(t *testing.T) {
	out := textTable("t", []string{"a", "bb"}, [][]string{{"xxx", "y"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %q", lines)
	}
	if !strings.HasPrefix(lines[3], "xxx  y") {
		t.Errorf("row = %q", lines[3])
	}
}

func TestAppendixA16Bit(t *testing.T) {
	d := dataset(t)
	a := BuildAppendixA16Bit(d.Restored, d.World.Config.Start, d.World.Config.End)
	total := 0
	for _, r := range asn.All() {
		if a.PerRIR[r].PeakCount < a.EndCounts[r] {
			t.Errorf("%v: peak %d below end count %d", r, a.PerRIR[r].PeakCount, a.EndCounts[r])
		}
		total += a.PerRIR[r].PeakCount
	}
	if a.GlobalPeakCount == 0 || a.GlobalPeakCount > total {
		t.Errorf("global peak %d vs per-RIR sum %d", a.GlobalPeakCount, total)
	}
	if !strings.Contains(a.Text(), "global 16-bit peak") {
		t.Error("text incomplete")
	}
}

func TestExtensionsReport(t *testing.T) {
	d := dataset(t)
	e := BuildExtensions(d.Activity, d.Ops)
	if e.TimeoutOnly == 0 || e.PrefixAware < e.TimeoutOnly {
		t.Errorf("extensions = %+v", e)
	}
	if !strings.Contains(e.Text(), "prefix-aware") {
		t.Error("text incomplete")
	}
}
