package report

import (
	"sort"

	"parallellives/internal/asn"
	"parallellives/internal/bgpscan"
	"parallellives/internal/core"
	"parallellives/internal/dates"
	"parallellives/internal/registry"
)

// Table1 is the delegation-file inventory (paper Table 1).
type Table1 struct {
	Rows []Table1Row
}

// Table1Row is one registry's archive inventory.
type Table1Row struct {
	RIR           asn.RIR
	FirstRegular  dates.Day
	FirstExtended dates.Day
	FileCount     int
}

// BuildTable1 inventories the archive.
func BuildTable1(a *registry.Archive) Table1 {
	var t Table1
	for _, r := range asn.All() {
		t.Rows = append(t.Rows, Table1Row{
			RIR:           r,
			FirstRegular:  registry.FirstRegular(r),
			FirstExtended: registry.FirstExtended(r),
			FileCount:     a.FileCount(r),
		})
	}
	return t
}

// Text renders the table.
func (t Table1) Text() string {
	rows := make([][]string, 0, len(t.Rows))
	for _, r := range t.Rows {
		rows = append(rows, []string{
			r.RIR.String(), r.FirstRegular.String(), r.FirstExtended.String(),
			itoa(r.FileCount),
		})
	}
	return textTable("Table 1: delegation files collected per RIR",
		[]string{"RIR", "First regular", "First extended", "Files"}, rows)
}

// Table2 is the lifetime-multiplicity table (paper Table 2): the share
// of ASNs with 1, 2 and more than 2 administrative and operational lives.
type Table2 struct {
	Rows  []Table2Row
	Total Table2Row
}

// Table2Row is one registry's multiplicity distribution.
type Table2Row struct {
	RIR                     asn.RIR
	Adm1, Adm2, AdmMore     float64
	Op1, Op2, OpMore        float64
	AdmASNCount, OpASNCount int
}

// BuildTable2 computes the lifetime-per-ASN distribution. Operational
// lives attribute each ASN to the registry of its (latest)
// administrative lifetime; ASNs never seen in delegation files are
// excluded from the per-RIR rows but counted in the total.
func BuildTable2(j *core.Joint) Table2 {
	admCount := make(map[asn.ASN]int)
	rirOf := make(map[asn.ASN]asn.RIR)
	for _, al := range j.Admin.Lifetimes {
		admCount[al.ASN]++
		rirOf[al.ASN] = al.RIR
	}
	opCount := make(map[asn.ASN]int)
	for _, ol := range j.Ops.Lifetimes {
		opCount[ol.ASN]++
	}

	type acc struct {
		a1, a2, aM int
		o1, o2, oM int
		aN, oN     int
	}
	var per [asn.NumRIRs]acc
	var tot acc
	bump := func(a *acc, admin bool, n int) {
		if admin {
			a.aN++
			switch {
			case n == 1:
				a.a1++
			case n == 2:
				a.a2++
			default:
				a.aM++
			}
		} else {
			a.oN++
			switch {
			case n == 1:
				a.o1++
			case n == 2:
				a.o2++
			default:
				a.oM++
			}
		}
	}
	for a, n := range admCount {
		bump(&per[rirOf[a]], true, n)
		bump(&tot, true, n)
	}
	for a, n := range opCount {
		if r, ok := rirOf[a]; ok {
			bump(&per[r], false, n)
		}
		bump(&tot, false, n)
	}

	mkRow := func(r asn.RIR, c acc) Table2Row {
		row := Table2Row{RIR: r, AdmASNCount: c.aN, OpASNCount: c.oN}
		if c.aN > 0 {
			row.Adm1 = float64(c.a1) / float64(c.aN)
			row.Adm2 = float64(c.a2) / float64(c.aN)
			row.AdmMore = float64(c.aM) / float64(c.aN)
		}
		if c.oN > 0 {
			row.Op1 = float64(c.o1) / float64(c.oN)
			row.Op2 = float64(c.o2) / float64(c.oN)
			row.OpMore = float64(c.oM) / float64(c.oN)
		}
		return row
	}
	var t Table2
	for _, r := range asn.All() {
		t.Rows = append(t.Rows, mkRow(r, per[r]))
	}
	t.Total = mkRow(0, tot)
	return t
}

// Text renders the table.
func (t Table2) Text() string {
	rows := make([][]string, 0, len(t.Rows)+1)
	render := func(name string, r Table2Row) []string {
		return []string{name,
			pct(r.Adm1), pct(r.Op1), pct(r.Adm2), pct(r.Op2), pct(r.AdmMore), pct(r.OpMore)}
	}
	for _, r := range t.Rows {
		rows = append(rows, render(r.RIR.String(), r))
	}
	rows = append(rows, render("Total", t.Total))
	return textTable("Table 2: number of administrative and operational lifetimes per ASN",
		[]string{"RIR", "1 adm", "1 op", "2 adm", "2 op", ">2 adm", ">2 op"}, rows)
}

// Table3 is the taxonomy distribution (paper Table 3).
type Table3 struct {
	Counts        core.TaxonomyCounts
	AdminTotal    int
	OpTotal       int
	CompleteShare float64
	PartialShare  float64
	UnusedShare   float64
}

// BuildTable3 tallies the four categories.
func BuildTable3(j *core.Joint) Table3 {
	return BuildTable3FromCounts(j.Taxonomy())
}

// BuildTable3FromCounts derives the table from pre-tallied taxonomy
// counts, as stored in a snapshot.
func BuildTable3FromCounts(c core.TaxonomyCounts) Table3 {
	t := Table3{Counts: c}
	t.AdminTotal = c.AdminComplete + c.AdminPartial + c.AdminUnused
	t.OpTotal = c.OpComplete + c.OpPartial + c.OpOutside
	if t.AdminTotal > 0 {
		t.CompleteShare = float64(c.AdminComplete) / float64(t.AdminTotal)
		t.PartialShare = float64(c.AdminPartial) / float64(t.AdminTotal)
		t.UnusedShare = float64(c.AdminUnused) / float64(t.AdminTotal)
	}
	return t
}

// Text renders the table.
func (t Table3) Text() string {
	rows := [][]string{
		{"complete overlap", itoa(t.Counts.AdminComplete), itoa(t.Counts.OpComplete), pct(t.CompleteShare)},
		{"partial overlap", itoa(t.Counts.AdminPartial), itoa(t.Counts.OpPartial), pct(t.PartialShare)},
		{"unused admin lives", itoa(t.Counts.AdminUnused), "0", pct(t.UnusedShare)},
		{"op lives outside delegation", "0", itoa(t.Counts.OpOutside), "-"},
		{"total", itoa(t.AdminTotal), itoa(t.OpTotal), "-"},
	}
	return textTable("Table 3: taxonomy distribution",
		[]string{"Category", "Adm. lives", "Op. lives", "Adm share"}, rows)
}

// Table4 is the APNIC country evolution (paper Table 4): top countries
// by alive allocations at successive snapshot dates.
type Table4 struct {
	Snapshots []Table4Snapshot
}

// Table4Snapshot is the top-N ranking at one date.
type Table4Snapshot struct {
	Date dates.Day
	Rows []CountryCount
}

// CountryCount is one country's count and share.
type CountryCount struct {
	CC    string
	Count int
	Share float64
}

// BuildTable4 ranks APNIC countries at each snapshot date.
func BuildTable4(j *core.Joint, snapshots []dates.Day, topN int) Table4 {
	var t Table4
	for _, snap := range snapshots {
		counts := make(map[string]int)
		total := 0
		for _, al := range j.Admin.Lifetimes {
			if al.RIR != asn.APNIC || !al.Span.Contains(snap) {
				continue
			}
			total++
			if al.CC == "ZZ" {
				continue // rest-of-region aggregate; not a country
			}
			counts[al.CC]++
		}
		rows := make([]CountryCount, 0, len(counts))
		for cc, n := range counts {
			share := 0.0
			if total > 0 {
				share = float64(n) / float64(total)
			}
			rows = append(rows, CountryCount{CC: cc, Count: n, Share: share})
		}
		sort.Slice(rows, func(i, k int) bool {
			if rows[i].Count != rows[k].Count {
				return rows[i].Count > rows[k].Count
			}
			return rows[i].CC < rows[k].CC
		})
		if topN < len(rows) {
			rows = rows[:topN]
		}
		t.Snapshots = append(t.Snapshots, Table4Snapshot{Date: snap, Rows: rows})
	}
	return t
}

// Text renders the table.
func (t Table4) Text() string {
	var rows [][]string
	maxLen := 0
	for _, s := range t.Snapshots {
		if len(s.Rows) > maxLen {
			maxLen = len(s.Rows)
		}
	}
	header := []string{"Pos."}
	for _, s := range t.Snapshots {
		header = append(header, s.Date.String())
	}
	for i := 0; i < maxLen; i++ {
		row := []string{itoa(i + 1)}
		for _, s := range t.Snapshots {
			if i < len(s.Rows) {
				r := s.Rows[i]
				row = append(row, r.CC+": "+itoa(r.Count)+" - "+pct(r.Share))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	return textTable("Table 4: APNIC countries evolution", header, rows)
}

// Table5 is the timeout-sensitivity table (paper Table 5): taxonomy
// counts under alternative inactivity timeouts.
type Table5 struct {
	Rows     []Table5Row
	Baseline int // the timeout the deltas are computed against
}

// Table5Row is the taxonomy at one timeout.
type Table5Row struct {
	Timeout                     int
	Complete, Partial, Outside  int
	DeltaComplete, DeltaPartial float64
	DeltaOutside                float64
}

// BuildTable5 re-runs the joint classification at each timeout.
func BuildTable5(admin *core.AdminIndex, act *bgpscan.Activity, timeouts []int, baseline int) Table5 {
	t := Table5{Baseline: baseline}
	var base *Table5Row
	for _, to := range timeouts {
		ops := core.BuildOpLifetimes(act, to)
		j := core.Analyze(admin, ops)
		c := j.Taxonomy()
		row := Table5Row{
			Timeout: to, Complete: c.AdminComplete, Partial: c.AdminPartial,
			Outside: c.OpOutside,
		}
		t.Rows = append(t.Rows, row)
		if to == baseline {
			base = &t.Rows[len(t.Rows)-1]
		}
	}
	if base != nil {
		for i := range t.Rows {
			r := &t.Rows[i]
			r.DeltaComplete = delta(r.Complete, base.Complete)
			r.DeltaPartial = delta(r.Partial, base.Partial)
			r.DeltaOutside = delta(r.Outside, base.Outside)
		}
	}
	return t
}

func delta(v, base int) float64 {
	if base == 0 {
		return 0
	}
	return float64(v-base)/float64(base)*100 - 0
}

// Text renders the table.
func (t Table5) Text() string {
	var rows [][]string
	for _, r := range t.Rows {
		rows = append(rows, []string{
			itoa(r.Timeout),
			itoa(r.Complete) + " (" + f2(r.DeltaComplete) + "%)",
			itoa(r.Partial) + " (" + f2(r.DeltaPartial) + "%)",
			itoa(r.Outside) + " (" + f2(r.DeltaOutside) + "%)",
		})
	}
	return textTable("Table 5: taxonomy sensitivity to the inactivity timeout",
		[]string{"Timeout", "Complete overlap", "Partial overlap", "Op lives outside delegation"}, rows)
}
